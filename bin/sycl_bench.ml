(* sycl-bench: run one reproduction workload under a chosen compiler
   configuration, print the simulated cost breakdown and validation —
   the reproduction's counterpart to the SYCL-Bench runner script.

     dune exec bin/sycl_bench.exe -- --list
     dune exec bin/sycl_bench.exe -- --benchmark GEMM --mode sycl-mlir
     dune exec bin/sycl_bench.exe -- --benchmark GEMM --compare --no-internalization *)

open Cmdliner
open Sycl_workloads
module Driver = Sycl_core.Driver

let list_workloads () =
  List.iter
    (fun (w : Common.workload) ->
      Printf.printf "%-26s %-14s size=%d (paper size %d)%s\n" w.Common.w_name
        (Common.category_to_string w.Common.w_category)
        w.Common.w_problem_size w.Common.w_paper_size
        (if w.Common.w_acpp_ok then "" else "  [AdaptiveCpp fails validation]"))
    (Suite.all () @ Suite.extensions ())

let mode_of_string = function
  | "dpcpp" -> Ok Driver.Dpcpp
  | "sycl-mlir" -> Ok Driver.Sycl_mlir
  | "acpp" | "adaptivecpp" -> Ok Driver.Adaptive_cpp
  | s -> Error (`Msg ("unknown mode " ^ s ^ " (dpcpp|sycl-mlir|acpp)"))

let report (w : Common.workload) (m : Common.measurement) =
  let r = m.Common.m_result in
  Printf.printf "%s under %s\n" w.Common.w_name (Driver.mode_to_string m.Common.m_mode);
  Printf.printf "  validation: %s\n" (if m.Common.m_valid then "PASSED" else "FAILED");
  Printf.printf "  total cycles: %d\n" m.Common.m_cycles;
  Printf.printf "    device:          %d\n" r.Sycl_runtime.Host_interp.device_cycles;
  Printf.printf "    launch overhead: %d (%d launches)\n"
    r.Sycl_runtime.Host_interp.launch_overhead_cycles
    r.Sycl_runtime.Host_interp.kernel_launches;
  Printf.printf "    transfers:       %d\n" r.Sycl_runtime.Host_interp.transfer_cycles;
  Printf.printf "    scheduler:       %d (%d dependency edges)\n"
    r.Sycl_runtime.Host_interp.scheduler_cycles
    r.Sycl_runtime.Host_interp.dependency_edges;
  List.iter
    (fun (name, s) ->
      Format.printf "  kernel %-18s %a@." name Sycl_sim.Cost.pp_launch_stats s)
    r.Sycl_runtime.Host_interp.per_kernel;
  if Mlir.Pass.Stats.to_list m.Common.m_stats <> [] then begin
    Printf.printf "  compile-time statistics:\n";
    Format.printf "%a@?" Mlir.Pass.Stats.pp m.Common.m_stats
  end

(** Write the run's charge timeline as Chrome-trace JSON and print the
    per-kernel profile table derived from the same events. *)
let write_profile (m : Common.measurement) path =
  let events = m.Common.m_result.Sycl_runtime.Host_interp.events in
  (try
     Out_channel.with_open_text path (fun oc ->
         output_string oc (Sycl_sim.Profile.to_chrome_json events))
   with Sys_error msg ->
     Printf.eprintf "error: cannot write trace: %s\n" msg;
     exit 1);
  Printf.printf "\nkernel profile (trace written to %s):\n" path;
  Format.printf "%a@?" Sycl_sim.Profile.pp_table
    (Sycl_sim.Profile.of_events events)

(** Write the merged compile + runtime + device trace: compile-phase
    spans from the pass-timing tree on the compile lane, then the run's
    charge timeline (shifted past them) on the host-runtime and device
    lanes — one chrome://tracing load shows parse -> passes -> queue ops
    -> kernel cycles. Under [--annotate] the top hotspot lines ride
    along as Chrome counter events on the device lane. *)
let write_trace ?attribution (m : Common.measurement)
    (tm : Mlir.Instrument.timer) path =
  let module Trace = Sycl_obs.Trace in
  let sink = Trace.global in
  Trace.reset sink;
  Trace.add_timing ~root_name:"compile" sink (Mlir.Instrument.timing_report tm);
  let base = Trace.span_end sink in
  Trace.add_all sink
    (Sycl_sim.Profile.trace_spans ~base
       m.Common.m_result.Sycl_runtime.Host_interp.events);
  (match attribution with
  | Some tab ->
    List.iteri
      (fun i (r : Sycl_sim.Attribution.line_row) ->
        if i < 5 then
          Trace.add_counter sink
            {
              Trace.ct_name = "hotspot " ^ r.Sycl_sim.Attribution.l_line;
              ct_lane = Trace.Device;
              ct_ts = base;
              ct_series = [ ("cycles", r.Sycl_sim.Attribution.l_cycles) ];
            })
      (Sycl_sim.Attribution.by_line tab)
  | None -> ());
  (* Per-kernel cache hit-rate counters (non-flat --cache-model only):
     one [ph:"C"] event per launch on the device lane. *)
  List.iter
    (fun (name, (s : Sycl_sim.Cost.launch_stats)) ->
      if Sycl_sim.Cost.cache_active s then
        Trace.add_counter sink
          {
            Trace.ct_name = "cache " ^ name;
            ct_lane = Trace.Device;
            ct_ts = base;
            ct_series =
              [
                ("hits", s.Sycl_sim.Cost.cache_hits);
                ("misses", s.Sycl_sim.Cost.cache_misses);
                ( "hit_rate_pct",
                  int_of_float
                    (100.0
                    *. Sycl_sim.Cache.hit_rate
                         ~hits:s.Sycl_sim.Cost.cache_hits
                         ~misses:s.Sycl_sim.Cost.cache_misses) );
              ];
          })
    m.Common.m_result.Sycl_runtime.Host_interp.per_kernel;
  try
    Out_channel.with_open_text path (fun oc ->
        output_string oc (Mlir.Json.to_string (Trace.export sink) ^ "\n"));
    Printf.printf "\nmerged trace written to %s\n" path
  with Sys_error msg ->
    Printf.eprintf "error: cannot write trace: %s\n" msg;
    exit 1

(** Write the run's metrics registry (runtime.* counters and the
    launch-latency histogram, sim.* device counters) as JSON. *)
let write_metrics (m : Common.measurement) path =
  let reg = m.Common.m_result.Sycl_runtime.Host_interp.metrics in
  try
    Out_channel.with_open_text path (fun oc ->
        output_string oc
          (Mlir.Json.to_string (Sycl_obs.Metrics.to_json reg) ^ "\n"));
    Printf.printf "metrics written to %s\n" path
  with Sys_error msg ->
    Printf.eprintf "error: cannot write metrics: %s\n" msg;
    exit 1

(** The attribution surfaces: hotspot report on stdout, attribution
    JSON, annotated IR dump. *)
let write_attribution_surfaces ~annotate ~attribution_json ~annotated_ir
    (tab : Sycl_sim.Attribution.table) (module_op : Mlir.Core.op) =
  if annotate then begin
    print_newline ();
    print_string (Sycl_sim.Attribution.hotspots_to_string tab)
  end;
  Option.iter
    (fun path ->
      try
        Out_channel.with_open_text path (fun oc ->
            output_string oc
              (Mlir.Json.to_string (Sycl_sim.Attribution.to_json tab) ^ "\n"));
        Printf.eprintf "attribution written to %s\n" path
      with Sys_error msg ->
        Printf.eprintf "error: cannot write attribution: %s\n" msg;
        exit 1)
    attribution_json;
  Option.iter
    (fun path ->
      Sycl_sim.Attribution.annotate_module tab module_op;
      try
        Out_channel.with_open_text path (fun oc ->
            output_string oc (Mlir.Printer.to_string module_op));
        Printf.eprintf "annotated IR written to %s\n" path
      with Sys_error msg ->
        Printf.eprintf "error: cannot write annotated IR: %s\n" msg;
        exit 1)
    annotated_ir

(** The cache surfaces: rendered hit/miss table under [--annotate], full
    JSON (per-op counters + reuse-distance histogram) via
    [--cache-json]. The flat model collects no table, so both are
    no-ops there — [--cache-json] without a cache model is an error. *)
let write_cache_surfaces ~annotate ~cache_json
    (r : Sycl_runtime.Host_interp.run_result) =
  (match Annotate.check_cache_conservation r with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "error: cache conservation violated: %s\n" msg;
    exit 1);
  match Annotate.merged_cache r with
  | None ->
    if cache_json <> None then begin
      Printf.eprintf
        "error: --cache-json requires a non-flat --cache-model (dm|assoc)\n";
      exit 2
    end
  | Some tab ->
    if annotate then begin
      print_newline ();
      print_string (Sycl_sim.Cache.render tab)
    end;
    Option.iter
      (fun path ->
        try
          (* Prepend the launch-side transaction total so the
             conservation invariant is checkable from this file alone:
             hits + misses = global_transactions, exactly. *)
          let transactions =
            List.fold_left
              (fun acc (_, s) ->
                acc + s.Sycl_sim.Cost.global_transactions)
              0 r.Sycl_runtime.Host_interp.per_kernel
          in
          let json =
            match Sycl_sim.Cache.to_json tab with
            | Mlir.Json.Obj kvs ->
              Mlir.Json.Obj
                (("global_transactions", Mlir.Json.Int transactions) :: kvs)
            | j -> j
          in
          Out_channel.with_open_text path (fun oc ->
              output_string oc (Mlir.Json.to_string json ^ "\n"));
          Printf.eprintf "cache counters written to %s\n" path
        with Sys_error msg ->
          Printf.eprintf "error: cannot write cache counters: %s\n" msg;
          exit 1)
      cache_json

let run_mlir_file cfg ~path ~size ~annotate ~attribution_json ~annotated_ir
    ~cache_json =
  match Annotate.run_file cfg ~size path with
  | exception Annotate.File_error msg ->
    Printf.eprintf "error: %s: %s\n" path msg;
    exit 2
  | m, r ->
    Printf.printf "%s (size %d)\n" path size;
    Printf.printf "  total cycles: %d\n" r.Sycl_runtime.Host_interp.total_cycles;
    Printf.printf "    device:          %d\n"
      r.Sycl_runtime.Host_interp.device_cycles;
    Printf.printf "    launch overhead: %d (%d launches)\n"
      r.Sycl_runtime.Host_interp.launch_overhead_cycles
      r.Sycl_runtime.Host_interp.kernel_launches;
    Printf.printf "    transfers:       %d\n"
      r.Sycl_runtime.Host_interp.transfer_cycles;
    List.iter
      (fun (name, s) ->
        Format.printf "  kernel %-18s %a@." name Sycl_sim.Cost.pp_launch_stats s)
      r.Sycl_runtime.Host_interp.per_kernel;
    (match Annotate.check_conservation r with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "error: attribution conservation violated: %s\n" msg;
      exit 1);
    write_attribution_surfaces ~annotate ~attribution_json ~annotated_ir
      (Annotate.merged_attribution r)
      m;
    write_cache_surfaces ~annotate ~cache_json r

let run list_flag bench mode compare no_licm no_reduction no_internalization
    no_hostdev fusion profile_json metrics_json trace_json sim_domains
    check_races cache_model cache_json annotate file_arg size attribution_json
    annotated_ir delta =
  if list_flag then (list_workloads (); exit 0);
  Option.iter Sycl_sim.Interp.set_default_domains sim_domains;
  if check_races then Sycl_sim.Interp.set_default_check_races true;
  Option.iter Sycl_sim.Interp.set_default_cache_model cache_model;
  let want_attribution =
    annotate || attribution_json <> None || annotated_ir <> None
  in
  try
  match file_arg with
  | Some path ->
    let cfg =
      Driver.config ~enable_licm:(not no_licm)
        ~enable_reduction:(not no_reduction)
        ~enable_internalization:(not no_internalization)
        ~enable_host_device:(not no_hostdev)
        ~enable_alias_refinement:(not no_hostdev) ~enable_fusion:fusion mode
    in
    run_mlir_file cfg ~path ~size ~annotate ~attribution_json ~annotated_ir
      ~cache_json
  | None ->
  match bench with
  | None ->
    prerr_endline "missing --benchmark (or use --list)";
    exit 2
  | Some name -> (
    match Suite.find name with
    | None ->
      Printf.eprintf "unknown benchmark %s (try --list)\n" name;
      exit 2
    | Some w ->
      (* The profiling surfaces report per source line, so they run a
         located copy of the workload: printed and re-parsed under a
         virtual file name (semantically identical — see Annotate). *)
      let orig_w = w in
      let w = if want_attribution then Annotate.located_workload w else w in
      let config mode =
        Driver.config ~enable_licm:(not no_licm)
          ~enable_reduction:(not no_reduction)
          ~enable_internalization:(not no_internalization)
          ~enable_host_device:(not no_hostdev)
          ~enable_alias_refinement:(not no_hostdev) ~enable_fusion:fusion mode
      in
      if delta then begin
        let ds, _remarks = Annotate.delta_report orig_w in
        print_string (Sycl_sim.Attribution.delta_to_string ds)
      end
      else if compare then begin
        let base = Common.measure (config Driver.Dpcpp) w in
        report w base;
        print_newline ();
        let opt = Common.measure (config Driver.Sycl_mlir) w in
        report w opt;
        Printf.printf "\nspeedup SYCL-MLIR over DPC++: %.2fx\n"
          (Common.speedup base opt);
        (match Common.measure (config Driver.Adaptive_cpp) w with
        | acpp when acpp.Common.m_valid ->
          Printf.printf "speedup AdaptiveCpp over DPC++: %.2fx\n"
            (Common.speedup base acpp)
        | _ -> print_endline "AdaptiveCpp: failed validation"
        | exception Common.Unsupported _ ->
          print_endline "AdaptiveCpp: unsupported (modeled validation failure)")
      end
      else
        let tm = Mlir.Instrument.timer () in
        let instrumentations =
          if trace_json <> None then [ Mlir.Instrument.timing tm ] else []
        in
        let m = Common.measure ~instrumentations (config mode) w in
        report w m;
        let attribution =
          if want_attribution then begin
            let tab =
              Annotate.merged_attribution m.Common.m_result
            in
            (match Annotate.check_conservation m.Common.m_result with
            | Ok () -> ()
            | Error msg ->
              Printf.eprintf "error: attribution conservation violated: %s\n"
                msg;
              exit 1);
            write_attribution_surfaces ~annotate ~attribution_json
              ~annotated_ir tab m.Common.m_module;
            Some tab
          end
          else None
        in
        write_cache_surfaces ~annotate ~cache_json m.Common.m_result;
        Option.iter (write_profile m) profile_json;
        Option.iter (write_trace ?attribution m tm) trace_json;
        Option.iter (write_metrics m) metrics_json;
        if not m.Common.m_valid then exit 1)
  with Sycl_sim.Interp.Race_detected races ->
    Printf.eprintf
      "RACE: %d pair(s) of work-groups wrote overlapping global locations\n"
      (List.length races);
    List.iter
      (fun r -> Printf.eprintf "  %s\n" (Sycl_sim.Interp.describe_race r))
      races;
    exit 1

let list_arg = Arg.(value & flag & info [ "list"; "l" ] ~doc:"List workloads.")

let bench_arg =
  Arg.(value & opt (some string) None
       & info [ "benchmark"; "b" ] ~docv:"NAME" ~doc:"Workload to run.")

let mode_conv =
  Arg.conv
    ( mode_of_string,
      fun fmt m -> Format.pp_print_string fmt (Driver.mode_to_string m) )

let mode_arg =
  Arg.(value & opt mode_conv Driver.Sycl_mlir
       & info [ "mode"; "m" ] ~docv:"MODE" ~doc:"dpcpp, sycl-mlir or acpp.")

let compare_arg =
  Arg.(value & flag & info [ "compare" ] ~doc:"Run all three configurations and report speedups.")

let flag name doc = Arg.(value & flag & info [ name ] ~doc)

let profile_json_arg =
  Arg.(value & opt (some string) None
       & info [ "profile-json" ] ~docv:"FILE"
           ~doc:
             "Write the simulated run's timeline to $(docv) in the Chrome \
              trace format (load in chrome://tracing or Perfetto) and print \
              a per-kernel profile table. Single-mode runs only (not \
              $(b,--compare)).")

let metrics_json_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-json" ] ~docv:"FILE"
           ~doc:
             "Write the run's metrics registry (runtime event counters, \
              transfer bytes, launch-latency histogram with p50/p90/p99) to \
              $(docv) as JSON. Single-mode runs only (not $(b,--compare)).")

let trace_json_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-json" ] ~docv:"FILE"
           ~doc:
             "Write one merged Chrome trace to $(docv): compile-phase spans, \
              runtime queue operations and device kernel execution on \
              separate lanes of a shared timeline. Single-mode runs only \
              (not $(b,--compare)).")

let sim_domains_arg =
  Arg.(value & opt (some int) None
       & info [ "sim-domains" ] ~docv:"N"
           ~doc:
             "Execute the simulated device's work-groups on $(docv) worker \
              domains (default: the recommended domain count). Results are \
              bit-identical to the sequential backend.")

let check_races_arg =
  Arg.(value & flag
       & info [ "sim-check-races" ]
           ~doc:
             "Record per-work-group write footprints and fail when two \
              work-groups of one launch write overlapping global locations \
              (a violation of SYCL's inter-group independence).")

let cache_model_conv =
  Arg.conv
    ( (fun s ->
        match Sycl_sim.Cost.model_of_string s with
        | Some m -> Ok m
        | None -> Error (`Msg ("unknown cache model " ^ s ^ " (flat|dm|assoc)"))),
      fun fmt m ->
        Format.pp_print_string fmt (Sycl_sim.Cost.model_to_string m) )

let cache_model_arg =
  Arg.(value & opt (some cache_model_conv) None
       & info [ "cache-model" ] ~docv:"MODEL"
           ~doc:
             "Simulate a per-core data cache over the coalesced global \
              transactions: $(b,dm) (direct-mapped), $(b,assoc) \
              (set-associative LRU) or $(b,flat) (no cache — the default, \
              byte-identical to previous releases). Launch statistics gain \
              hit/miss/eviction/memory-wait counters with \
              hits + misses = global transactions exactly.")

let cache_json_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-json" ] ~docv:"FILE"
           ~doc:
             "Write the merged per-op cache counters and the exact \
              reuse-distance histogram (p50/p90/p99) to $(docv) as JSON. \
              Requires a non-flat $(b,--cache-model).")

let annotate_arg =
  Arg.(value & flag
       & info [ "annotate" ]
           ~doc:
             "Print the source-attributed hotspot report after the run: the \
              top source lines by attributed device cycles, with share of \
              total, memory transactions and the coalescing ratio. Named \
              workloads are printed and re-parsed under a virtual file name \
              so every op carries a source location.")

let file_arg =
  Arg.(value & opt (some string) None
       & info [ "file" ] ~docv:"FILE"
           ~doc:
             "Run the textual MLIR module in $(docv) (instead of a named \
              benchmark) with synthesized arguments; its real file/line \
              positions feed the attribution surfaces.")

let size_arg =
  Arg.(value & opt int 16
       & info [ "size" ] ~docv:"N"
           ~doc:
             "Problem size for $(b,--file) runs: scalar main arguments are \
              bound to $(docv), memref arguments to NxN random buffers.")

let attribution_json_arg =
  Arg.(value & opt (some string) None
       & info [ "attribution-json" ] ~docv:"FILE"
           ~doc:
             "Write the full per-op attribution table (cycles, memory \
              transactions, barrier rounds per op and source location) to \
              $(docv) as JSON.")

let annotated_ir_arg =
  Arg.(value & opt (some string) None
       & info [ "annotated-ir" ] ~docv:"FILE"
           ~doc:
             "Write the compiled module with per-op sycl.cycles / \
              sycl.mem_cycles attributes recorded from the run to $(docv). \
              The attributes are discardable and round-trip through the \
              parser and verifier.")

let delta_arg =
  Arg.(value & flag
       & info [ "delta" ]
           ~doc:
             "Run the workload unoptimized (host raising only) and under the \
              full SYCL-MLIR pipeline, and print per-source-line cycle \
              deltas next to the optimization remarks that claimed them.")

let cmd =
  let doc = "run a SYCL-Bench reproduction workload on the simulated device" in
  Cmd.v (Cmd.info "sycl-bench" ~doc)
    Term.(const run $ list_arg $ bench_arg $ mode_arg $ compare_arg
          $ flag "no-licm" "Disable LICM."
          $ flag "no-reduction" "Disable reduction detection."
          $ flag "no-internalization" "Disable loop internalization."
          $ flag "no-host-device" "Disable host-device propagation."
          $ flag "fusion" "Enable compile-time kernel fusion."
          $ profile_json_arg $ metrics_json_arg $ trace_json_arg
          $ sim_domains_arg $ check_races_arg $ cache_model_arg
          $ cache_json_arg $ annotate_arg $ file_arg $ size_arg
          $ attribution_json_arg $ annotated_ir_arg $ delta_arg)

let () = exit (Cmd.eval cmd)
