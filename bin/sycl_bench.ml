(* sycl-bench: run one reproduction workload under a chosen compiler
   configuration, print the simulated cost breakdown and validation —
   the reproduction's counterpart to the SYCL-Bench runner script.

     dune exec bin/sycl_bench.exe -- --list
     dune exec bin/sycl_bench.exe -- --benchmark GEMM --mode sycl-mlir
     dune exec bin/sycl_bench.exe -- --benchmark GEMM --compare --no-internalization *)

open Cmdliner
open Sycl_workloads
module Driver = Sycl_core.Driver

let list_workloads () =
  List.iter
    (fun (w : Common.workload) ->
      Printf.printf "%-26s %-14s size=%d (paper size %d)%s\n" w.Common.w_name
        (Common.category_to_string w.Common.w_category)
        w.Common.w_problem_size w.Common.w_paper_size
        (if w.Common.w_acpp_ok then "" else "  [AdaptiveCpp fails validation]"))
    (Suite.all () @ Suite.extensions ())

let mode_of_string = function
  | "dpcpp" -> Ok Driver.Dpcpp
  | "sycl-mlir" -> Ok Driver.Sycl_mlir
  | "acpp" | "adaptivecpp" -> Ok Driver.Adaptive_cpp
  | s -> Error (`Msg ("unknown mode " ^ s ^ " (dpcpp|sycl-mlir|acpp)"))

let report (w : Common.workload) (m : Common.measurement) =
  let r = m.Common.m_result in
  Printf.printf "%s under %s\n" w.Common.w_name (Driver.mode_to_string m.Common.m_mode);
  Printf.printf "  validation: %s\n" (if m.Common.m_valid then "PASSED" else "FAILED");
  Printf.printf "  total cycles: %d\n" m.Common.m_cycles;
  Printf.printf "    device:          %d\n" r.Sycl_runtime.Host_interp.device_cycles;
  Printf.printf "    launch overhead: %d (%d launches)\n"
    r.Sycl_runtime.Host_interp.launch_overhead_cycles
    r.Sycl_runtime.Host_interp.kernel_launches;
  Printf.printf "    transfers:       %d\n" r.Sycl_runtime.Host_interp.transfer_cycles;
  Printf.printf "    scheduler:       %d (%d dependency edges)\n"
    r.Sycl_runtime.Host_interp.scheduler_cycles
    r.Sycl_runtime.Host_interp.dependency_edges;
  List.iter
    (fun (name, s) ->
      Format.printf "  kernel %-18s %a@." name Sycl_sim.Cost.pp_launch_stats s)
    r.Sycl_runtime.Host_interp.per_kernel;
  if Mlir.Pass.Stats.to_list m.Common.m_stats <> [] then begin
    Printf.printf "  compile-time statistics:\n";
    Format.printf "%a@?" Mlir.Pass.Stats.pp m.Common.m_stats
  end

(** Write the run's charge timeline as Chrome-trace JSON and print the
    per-kernel profile table derived from the same events. *)
let write_profile (m : Common.measurement) path =
  let events = m.Common.m_result.Sycl_runtime.Host_interp.events in
  (try
     Out_channel.with_open_text path (fun oc ->
         output_string oc (Sycl_sim.Profile.to_chrome_json events))
   with Sys_error msg ->
     Printf.eprintf "error: cannot write trace: %s\n" msg;
     exit 1);
  Printf.printf "\nkernel profile (trace written to %s):\n" path;
  Format.printf "%a@?" Sycl_sim.Profile.pp_table
    (Sycl_sim.Profile.of_events events)

(** Write the merged compile + runtime + device trace: compile-phase
    spans from the pass-timing tree on the compile lane, then the run's
    charge timeline (shifted past them) on the host-runtime and device
    lanes — one chrome://tracing load shows parse -> passes -> queue ops
    -> kernel cycles. *)
let write_trace (m : Common.measurement) (tm : Mlir.Instrument.timer) path =
  let module Trace = Sycl_obs.Trace in
  let sink = Trace.global in
  Trace.reset sink;
  Trace.add_timing ~root_name:"compile" sink (Mlir.Instrument.timing_report tm);
  Trace.add_all sink
    (Sycl_sim.Profile.trace_spans ~base:(Trace.span_end sink)
       m.Common.m_result.Sycl_runtime.Host_interp.events);
  try
    Out_channel.with_open_text path (fun oc ->
        output_string oc (Mlir.Json.to_string (Trace.export sink) ^ "\n"));
    Printf.printf "\nmerged trace written to %s\n" path
  with Sys_error msg ->
    Printf.eprintf "error: cannot write trace: %s\n" msg;
    exit 1

(** Write the run's metrics registry (runtime.* counters and the
    launch-latency histogram, sim.* device counters) as JSON. *)
let write_metrics (m : Common.measurement) path =
  let reg = m.Common.m_result.Sycl_runtime.Host_interp.metrics in
  try
    Out_channel.with_open_text path (fun oc ->
        output_string oc
          (Mlir.Json.to_string (Sycl_obs.Metrics.to_json reg) ^ "\n"));
    Printf.printf "metrics written to %s\n" path
  with Sys_error msg ->
    Printf.eprintf "error: cannot write metrics: %s\n" msg;
    exit 1

let run list_flag bench mode compare no_licm no_reduction no_internalization
    no_hostdev fusion profile_json metrics_json trace_json sim_domains
    check_races =
  if list_flag then (list_workloads (); exit 0);
  Option.iter Sycl_sim.Interp.set_default_domains sim_domains;
  if check_races then Sycl_sim.Interp.set_default_check_races true;
  try
  match bench with
  | None ->
    prerr_endline "missing --benchmark (or use --list)";
    exit 2
  | Some name -> (
    match Suite.find name with
    | None ->
      Printf.eprintf "unknown benchmark %s (try --list)\n" name;
      exit 2
    | Some w ->
      let config mode =
        Driver.config ~enable_licm:(not no_licm)
          ~enable_reduction:(not no_reduction)
          ~enable_internalization:(not no_internalization)
          ~enable_host_device:(not no_hostdev)
          ~enable_alias_refinement:(not no_hostdev) ~enable_fusion:fusion mode
      in
      if compare then begin
        let base = Common.measure (config Driver.Dpcpp) w in
        report w base;
        print_newline ();
        let opt = Common.measure (config Driver.Sycl_mlir) w in
        report w opt;
        Printf.printf "\nspeedup SYCL-MLIR over DPC++: %.2fx\n"
          (Common.speedup base opt);
        (match Common.measure (config Driver.Adaptive_cpp) w with
        | acpp when acpp.Common.m_valid ->
          Printf.printf "speedup AdaptiveCpp over DPC++: %.2fx\n"
            (Common.speedup base acpp)
        | _ -> print_endline "AdaptiveCpp: failed validation"
        | exception Common.Unsupported _ ->
          print_endline "AdaptiveCpp: unsupported (modeled validation failure)")
      end
      else
        let tm = Mlir.Instrument.timer () in
        let instrumentations =
          if trace_json <> None then [ Mlir.Instrument.timing tm ] else []
        in
        let m = Common.measure ~instrumentations (config mode) w in
        report w m;
        Option.iter (write_profile m) profile_json;
        Option.iter (write_trace m tm) trace_json;
        Option.iter (write_metrics m) metrics_json;
        if not m.Common.m_valid then exit 1)
  with Sycl_sim.Interp.Race_detected races ->
    Printf.eprintf
      "RACE: %d pair(s) of work-groups wrote overlapping global locations\n"
      (List.length races);
    List.iter
      (fun r -> Printf.eprintf "  %s\n" (Sycl_sim.Interp.describe_race r))
      races;
    exit 1

let list_arg = Arg.(value & flag & info [ "list"; "l" ] ~doc:"List workloads.")

let bench_arg =
  Arg.(value & opt (some string) None
       & info [ "benchmark"; "b" ] ~docv:"NAME" ~doc:"Workload to run.")

let mode_conv =
  Arg.conv
    ( mode_of_string,
      fun fmt m -> Format.pp_print_string fmt (Driver.mode_to_string m) )

let mode_arg =
  Arg.(value & opt mode_conv Driver.Sycl_mlir
       & info [ "mode"; "m" ] ~docv:"MODE" ~doc:"dpcpp, sycl-mlir or acpp.")

let compare_arg =
  Arg.(value & flag & info [ "compare" ] ~doc:"Run all three configurations and report speedups.")

let flag name doc = Arg.(value & flag & info [ name ] ~doc)

let profile_json_arg =
  Arg.(value & opt (some string) None
       & info [ "profile-json" ] ~docv:"FILE"
           ~doc:
             "Write the simulated run's timeline to $(docv) in the Chrome \
              trace format (load in chrome://tracing or Perfetto) and print \
              a per-kernel profile table. Single-mode runs only (not \
              $(b,--compare)).")

let metrics_json_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-json" ] ~docv:"FILE"
           ~doc:
             "Write the run's metrics registry (runtime event counters, \
              transfer bytes, launch-latency histogram with p50/p90/p99) to \
              $(docv) as JSON. Single-mode runs only (not $(b,--compare)).")

let trace_json_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-json" ] ~docv:"FILE"
           ~doc:
             "Write one merged Chrome trace to $(docv): compile-phase spans, \
              runtime queue operations and device kernel execution on \
              separate lanes of a shared timeline. Single-mode runs only \
              (not $(b,--compare)).")

let sim_domains_arg =
  Arg.(value & opt (some int) None
       & info [ "sim-domains" ] ~docv:"N"
           ~doc:
             "Execute the simulated device's work-groups on $(docv) worker \
              domains (default: the recommended domain count). Results are \
              bit-identical to the sequential backend.")

let check_races_arg =
  Arg.(value & flag
       & info [ "sim-check-races" ]
           ~doc:
             "Record per-work-group write footprints and fail when two \
              work-groups of one launch write overlapping global locations \
              (a violation of SYCL's inter-group independence).")

let cmd =
  let doc = "run a SYCL-Bench reproduction workload on the simulated device" in
  Cmd.v (Cmd.info "sycl-bench" ~doc)
    Term.(const run $ list_arg $ bench_arg $ mode_arg $ compare_arg
          $ flag "no-licm" "Disable LICM."
          $ flag "no-reduction" "Disable reduction detection."
          $ flag "no-internalization" "Disable loop internalization."
          $ flag "no-host-device" "Disable host-device propagation."
          $ flag "fusion" "Enable compile-time kernel fusion."
          $ profile_json_arg $ metrics_json_arg $ trace_json_arg
          $ sim_domains_arg $ check_races_arg)

let () = exit (Cmd.eval cmd)
