(* sycl-mlir-opt: the project's mlir-opt equivalent. Reads a module in the
   textual generic form, runs a named pass pipeline, prints the result.

     sycl-mlir-opt --passes canonicalize,cse,licm,detect-reduction foo.mlir
     echo '...' | sycl-mlir-opt --passes sycl-mlir  (full pipeline)

   Observability (all reports go to stderr, the module to stdout):
     --timing            per-pass wall-time tree (-mlir-timing style)
     --remarks[=REGEX]   optimization remarks (-Rpass style), filtered
                         by pass name
     --remarks-json=F    every remark, as a JSON document
     --stats             merged pass-statistics report (-stats style)
     --stats-json=F      per-pass statistics and wall time, as JSON
     --print-analysis=L  run analysis printers (alias, uniformity,
                         reaching-defs, memory-access) after the pipeline:
                         annotates the IR with sycl.* attributes and
                         reports to stderr
     --dump-after=P      print the IR after pass P ("all" for every pass)
     --dump-before=P     likewise, before
     --mlir-print-debuginfo  print a trailing loc(...) on every op *)

open Cmdliner
module Driver = Sycl_core.Driver

let pass_of_name = function
  | "canonicalize" -> Some Sycl_core.Canonicalize.pass
  | "cse" -> Some Sycl_core.Cse.pass
  | "dce" -> Some Sycl_core.Dce.pass
  | "inline" -> Some Sycl_core.Inline.pass
  | "loop-unroll" -> Some Sycl_core.Loop_unroll.pass
  | "licm" -> Some Sycl_core.Licm.pass
  | "detect-reduction" -> Some Sycl_core.Detect_reduction.pass
  | "loop-internalization" -> Some Sycl_core.Loop_internalization.pass
  | "host-raising" -> Some Sycl_core.Host_raising.pass
  | "host-device-propagation" -> Some (Sycl_core.Host_device_prop.pass ())
  | "dead-argument-elimination" -> Some Sycl_core.Dead_arg_elim.pass
  | "kernel-fusion" -> Some Sycl_core.Kernel_fusion.pass
  | "store-forwarding" -> Some Sycl_core.Store_forwarding.pass
  | "barrier-safety" -> Some Sycl_core.Barrier_safety.pass
  | "lower-sycl" -> Some Sycl_core.Lower_sycl.pass
  | "raise-affine" -> Some Sycl_core.Raise_affine.pass
  | _ -> None

let known_passes =
  "canonicalize, cse, dce, inline, loop-unroll, licm, detect-reduction, \
   loop-internalization, host-raising, host-device-propagation, \
   dead-argument-elimination, kernel-fusion, store-forwarding, \
   barrier-safety, lower-sycl, raise-affine, and the pipeline aliases sycl-mlir / dpcpp"

let resolve_pipeline names =
  List.concat_map
    (fun name ->
      match name with
      | "none" -> []  (* empty pipeline: parse, verify, print *)
      | "sycl-mlir" ->
        Driver.host_pipeline (Driver.config Driver.Sycl_mlir)
        @ Driver.device_pipeline (Driver.config Driver.Sycl_mlir)
      | "dpcpp" ->
        Driver.host_pipeline (Driver.config Driver.Dpcpp)
        @ Driver.device_pipeline (Driver.config Driver.Dpcpp)
      | name -> (
        match pass_of_name name with
        | Some p -> [ p ]
        | None ->
          Printf.eprintf "unknown pass %s; known: %s\n" name known_passes;
          exit 2))
    names

let read_input = function
  | None | Some "-" -> In_channel.input_all stdin
  | Some path -> In_channel.with_open_text path In_channel.input_all

let run passes verify stats stats_json timing remarks remarks_json
    metrics_json trace_json print_analysis dump_before dump_after debuginfo
    input =
  Dialects.Register.init ();
  Sycl_core.Sycl_ops.init ();
  Sycl_core.Sycl_host_ops.init ();
  Sycl_core.Licm.init ();
  (* `--remarks FILE` (unglued): cmdliner hands FILE to --remarks even
     though its value is optional. When it names an existing file and no
     positional input was given, the user meant it as the input. *)
  let remarks, input =
    match (remarks, input) with
    | Some s, None when Sys.file_exists s -> (Some "", Some s)
    | _ -> (remarks, input)
  in
  let src =
    match read_input input with
    | s -> s
    | exception Sys_error msg ->
      Printf.eprintf "error: cannot read input: %s\n" msg;
      exit 1
  in
  let file = match input with None | Some "-" -> "-" | Some path -> path in
  let parse_started = Unix.gettimeofday () in
  match Mlir.Parser.parse_module ~file src with
  | exception Mlir.Parser.Parse_error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    exit 1
  | m -> (
    let parse_seconds = Unix.gettimeofday () -. parse_started in
    let printers =
      List.map
        (fun name ->
          match Sycl_core.Analysis_printer.by_name name with
          | Some p -> p
          | None ->
            Printf.eprintf "unknown analysis %s; known: %s\n" name
              (String.concat ", " Sycl_core.Analysis_printer.known);
            exit 2)
        print_analysis
    in
    let pipeline = resolve_pipeline passes @ printers in
    (* Remarks stream to stderr as they are emitted (filtered like
       -Rpass=REGEX, matched against the pass name); the JSON document
       always carries every remark. *)
    let all_remarks = ref [] in
    let remark_filter =
      match Option.map Str.regexp remarks with
      | f -> f
      | exception Failure msg ->
        Printf.eprintf "error: bad --remarks regex: %s\n" msg;
        exit 2
    in
    (* The sink is scoped to exactly this pipeline run via
       Pass.run_pipeline, instead of being installed globally — a nested
       pipeline can no longer steal or drop it. *)
    let remarks_sink =
      if remarks <> None || remarks_json <> None then
        Some
          (fun r ->
            all_remarks := r :: !all_remarks;
            match remark_filter with
            | Some rx when Str.string_match rx r.Mlir.Remarks.r_pass 0 ->
              Printf.eprintf "%s\n%!" (Mlir.Remarks.to_string r)
            | _ -> ())
      else None
    in
    let tm = Mlir.Instrument.timer () in
    let lc = Mlir.Instrument.loc_coverage_log () in
    let instrumentations =
      (if timing || trace_json <> None then [ Mlir.Instrument.timing tm ]
       else [])
      @ (if stats || stats_json <> None then
           [ Mlir.Instrument.loc_coverage lc ]
         else [])
      @ (match dump_before with
        | Some f ->
          [ Mlir.Instrument.dump ~before:true ~after:false ~filter:f () ]
        | None -> [])
      @
      match dump_after with
      | Some f -> [ Mlir.Instrument.dump ~filter:f () ]
      | None -> []
    in
    match
      Mlir.Pass.run_pipeline ~verify_each:verify ~instrumentations
        ?remarks_sink pipeline m
    with
    | result ->
      Mlir.Printer.print ~debuginfo m;
      if timing then
        Format.eprintf "%a@?" Mlir.Instrument.pp_timing
          (Mlir.Instrument.timing_report tm);
      (match remarks_json with
      | Some path -> (
        try
          Out_channel.with_open_text path (fun oc ->
              output_string oc
                (Mlir.Remarks.list_to_json (List.rev !all_remarks)))
        with Sys_error msg ->
          Printf.eprintf "error: cannot write remarks JSON: %s\n" msg;
          exit 1)
      | None -> ());
      if stats then begin
        Printf.eprintf "// pass statistics:\n";
        Format.eprintf "%a@?" Mlir.Pass.Stats.pp (Mlir.Pass.merged_stats result);
        Format.eprintf "%a@?" Mlir.Instrument.pp_loc_coverage lc
      end;
      (match stats_json with
      | Some path -> (
        let stats_obj st =
          Mlir.Json.Obj
            (List.map
               (fun (k, v) -> (k, Mlir.Json.Int v))
               (Mlir.Pass.Stats.to_list st))
        in
        let doc =
          Mlir.Json.Obj
            [ ( "passes",
                Mlir.Json.List
                  (List.map2
                     (fun (name, st) (_, seconds) ->
                       Mlir.Json.Obj
                         [ ("pass", Mlir.Json.String name);
                           ("seconds", Mlir.Json.Float seconds);
                           ("stats", stats_obj st) ])
                     result.Mlir.Pass.per_pass_stats
                     result.Mlir.Pass.per_pass_time) );
              ("merged", stats_obj (Mlir.Pass.merged_stats result));
              ( "loc_coverage",
                Mlir.Json.List
                  (List.map
                     (fun e ->
                       Mlir.Json.Obj
                         [ ("pass", Mlir.Json.String e.Mlir.Instrument.lc_pass);
                           ( "before_known",
                             Mlir.Json.Int e.Mlir.Instrument.lc_before_known );
                           ( "before_total",
                             Mlir.Json.Int e.Mlir.Instrument.lc_before_total );
                           ( "after_known",
                             Mlir.Json.Int e.Mlir.Instrument.lc_after_known );
                           ( "after_total",
                             Mlir.Json.Int e.Mlir.Instrument.lc_after_total );
                           ( "lost",
                             Mlir.Json.Bool (Mlir.Instrument.loc_coverage_lost e)
                           ) ])
                     (Mlir.Instrument.loc_coverage_entries lc)) ) ]
        in
        try
          Out_channel.with_open_text path (fun oc ->
              output_string oc (Mlir.Json.to_string doc ^ "\n"))
        with Sys_error msg ->
          Printf.eprintf "error: cannot write stats JSON: %s\n" msg;
          exit 1)
      | None -> ());
      (match trace_json with
      | Some path -> (
        (* Compile-lane trace: a parse span, then the pass pipeline laid
           out from the timing tree — the compiler's side of the merged
           telemetry timeline. *)
        let module Trace = Sycl_obs.Trace in
        let sink = Trace.global in
        Trace.reset sink;
        Trace.add sink
          {
            Trace.sp_name = "parse";
            sp_cat = "frontend";
            sp_lane = Trace.Compile;
            sp_ts = 0;
            sp_dur = max 1 (int_of_float (Float.round (parse_seconds *. 1e6)));
            sp_args = [];
          };
        Trace.add_timing ~root_name:"passes" sink
          (Mlir.Instrument.timing_report tm);
        try
          Out_channel.with_open_text path (fun oc ->
              output_string oc
                (Mlir.Json.to_string (Trace.export sink) ^ "\n"))
        with Sys_error msg ->
          Printf.eprintf "error: cannot write trace JSON: %s\n" msg;
          exit 1)
      | None -> ());
      (match metrics_json with
      | Some path -> (
        (* Compile-side metrics registry: merged pass statistics as
           counters, per-pass wall time as a histogram, final location
           coverage as gauges. *)
        let module Metrics = Sycl_obs.Metrics in
        let reg = Metrics.create () in
        List.iter
          (fun (k, v) -> Metrics.incr reg ~by:v ("compile.stat." ^ k))
          (Mlir.Pass.Stats.to_list (Mlir.Pass.merged_stats result));
        List.iter
          (fun ((_ : string), seconds) ->
            Metrics.observe reg
              ~bounds:[| 10; 100; 1_000; 10_000; 100_000; 1_000_000 |]
              "compile.pass_wall_us"
              (int_of_float (Float.round (seconds *. 1e6))))
          result.Mlir.Pass.per_pass_time;
        let known, total = Mlir.Instrument.count_locs m in
        Metrics.set_gauge reg "compile.ops_located" known;
        Metrics.set_gauge reg "compile.ops_total" total;
        try
          Out_channel.with_open_text path (fun oc ->
              output_string oc
                (Mlir.Json.to_string (Metrics.to_json reg) ^ "\n"))
        with Sys_error msg ->
          Printf.eprintf "error: cannot write metrics JSON: %s\n" msg;
          exit 1)
      | None -> ())
    | exception Mlir.Pass.Pass_failed { pass; diagnostics } ->
      Printf.eprintf "pass %s failed verification:\n" pass;
      List.iter
        (fun d -> Printf.eprintf "  %s\n" (Mlir.Verifier.diag_to_string d))
        diagnostics;
      exit 1)

let passes_arg =
  let doc = "Comma-separated pass pipeline. Known passes: " ^ known_passes in
  Arg.(value & opt (list string) [ "canonicalize" ] & info [ "passes"; "p" ] ~doc)

let verify_arg =
  Arg.(value & flag & info [ "verify-each" ] ~doc:"Verify the IR after every pass.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print pass statistics to stderr.")

let stats_json_arg =
  Arg.(value & opt (some string) None
       & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write per-pass statistics and wall time to $(docv) as JSON.")

let print_analysis_arg =
  let doc =
    "Comma-separated analyses to run after the pipeline. Each annotates \
     the IR with discardable sycl.* attributes and prints a report to \
     stderr. Known: alias, uniformity, reaching-defs, memory-access."
  in
  Arg.(value & opt (list string) [] & info [ "print-analysis" ] ~docv:"LIST" ~doc)

let timing_arg =
  Arg.(value & flag
       & info [ "timing" ]
           ~doc:"Print a per-pass wall-time report to stderr (-mlir-timing style).")

let remarks_arg =
  Arg.(value
       & opt ~vopt:(Some "") (some string) None
       & info [ "remarks" ] ~docv:"REGEX"
           ~doc:
             "Print optimization remarks to stderr as passes emit them \
              (-Rpass style). The optional $(docv) filters by emitting pass \
              name; without it every remark prints.")

let remarks_json_arg =
  Arg.(value & opt (some string) None
       & info [ "remarks-json" ] ~docv:"FILE"
           ~doc:"Write every optimization remark to $(docv) as JSON.")

let metrics_json_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-json" ] ~docv:"FILE"
           ~doc:
             "Write compile-side metrics (merged pass statistics as \
              counters, per-pass wall-time histogram, final location \
              coverage) to $(docv) as JSON.")

let trace_json_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-json" ] ~docv:"FILE"
           ~doc:
             "Write a Chrome trace of the compile phase (parse span + pass \
              pipeline spans on the compile lane) to $(docv).")

let dump_before_arg =
  Arg.(value & opt (some string) None
       & info [ "dump-before" ] ~docv:"PASS"
           ~doc:"Print the IR to stderr before each run of $(docv) (\"all\" \
                 for every pass).")

let dump_after_arg =
  Arg.(value & opt (some string) None
       & info [ "dump-after" ] ~docv:"PASS"
           ~doc:"Print the IR to stderr after each run of $(docv) (\"all\" \
                 for every pass).")

let debuginfo_arg =
  Arg.(value & flag
       & info [ "mlir-print-debuginfo" ]
           ~doc:"Print a trailing loc(...) attribute on every operation \
                 (MLIR's -mlir-print-debuginfo). Off by default, so output \
                 is unchanged for tools that do not understand locations.")

let input_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Input file (default stdin).")

let cmd =
  let doc = "run SYCL-MLIR passes over textual IR" in
  Cmd.v
    (Cmd.info "sycl-mlir-opt" ~doc)
    Term.(const run $ passes_arg $ verify_arg $ stats_arg $ stats_json_arg
          $ timing_arg $ remarks_arg $ remarks_json_arg $ metrics_json_arg
          $ trace_json_arg $ print_analysis_arg $ dump_before_arg
          $ dump_after_arg $ debuginfo_arg $ input_arg)

let () = exit (Cmd.eval cmd)
