(* sycl-mlir-opt: the project's mlir-opt equivalent. Reads a module in the
   textual generic form, runs a named pass pipeline, prints the result.

     sycl-mlir-opt --passes canonicalize,cse,licm,detect-reduction foo.mlir
     echo '...' | sycl-mlir-opt --passes sycl-mlir  (full pipeline)

   Observability (all reports go to stderr, the module to stdout):
     --timing            per-pass wall-time tree (-mlir-timing style)
     --remarks[=REGEX]   optimization remarks (-Rpass style), filtered
                         by pass name
     --remarks-json=F    every remark, as a JSON document
     --stats             merged pass-statistics report (-stats style)
     --stats-json=F      per-pass statistics and wall time, as JSON
     --print-analysis=L  run analysis printers (alias, uniformity,
                         reaching-defs, memory-access, reuse) after the pipeline:
                         annotates the IR with sycl.* attributes and
                         reports to stderr
     --dump-after=P      print the IR after pass P ("all" for every pass)
     --dump-before=P     likewise, before
     --mlir-print-debuginfo  print a trailing loc(...) on every op

   Service modes (the long-lived compile service, lib/service):
     --batch             compile many modules concurrently through one
                         pipeline with a content-addressed result cache.
                         Inputs: files, directories (their *.mlir files,
                         sorted), or "-" (stdin split on `// -----` lines).
     --serve             read `// -----`-separated modules from stdin one
                         at a time, answer each on stdout (same cache)
     --jobs N            worker domains (default: recommended count)
     --repeat N          sweep the batch N times (cache-hit demo/CI)
     --cache-size N      result-cache capacity (LRU beyond it)
     --out-dir DIR       write each result to DIR/<basename> instead of
                         stdout; bytes identical to a single-shot run *)

open Cmdliner
module Driver = Sycl_core.Driver
module Service = Sycl_service.Service

let pass_of_name = function
  | "canonicalize" -> Some Sycl_core.Canonicalize.pass
  | "cse" -> Some Sycl_core.Cse.pass
  | "dce" -> Some Sycl_core.Dce.pass
  | "inline" -> Some Sycl_core.Inline.pass
  | "loop-unroll" -> Some Sycl_core.Loop_unroll.pass
  | "licm" -> Some Sycl_core.Licm.pass
  | "detect-reduction" -> Some Sycl_core.Detect_reduction.pass
  | "loop-internalization" -> Some Sycl_core.Loop_internalization.pass
  | "host-raising" -> Some Sycl_core.Host_raising.pass
  | "host-device-propagation" -> Some (Sycl_core.Host_device_prop.pass ())
  | "dead-argument-elimination" -> Some Sycl_core.Dead_arg_elim.pass
  | "kernel-fusion" -> Some Sycl_core.Kernel_fusion.pass
  | "store-forwarding" -> Some Sycl_core.Store_forwarding.pass
  | "barrier-safety" -> Some Sycl_core.Barrier_safety.pass
  | "lower-sycl" -> Some Sycl_core.Lower_sycl.pass
  | "raise-affine" -> Some Sycl_core.Raise_affine.pass
  | _ -> None

let known_passes =
  "canonicalize, cse, dce, inline, loop-unroll, licm, detect-reduction, \
   loop-internalization, host-raising, host-device-propagation, \
   dead-argument-elimination, kernel-fusion, store-forwarding, \
   barrier-safety, lower-sycl, raise-affine, and the pipeline aliases sycl-mlir / dpcpp"

let resolve_pipeline names =
  List.concat_map
    (fun name ->
      match name with
      | "none" -> []  (* empty pipeline: parse, verify, print *)
      | "sycl-mlir" ->
        Driver.host_pipeline (Driver.config Driver.Sycl_mlir)
        @ Driver.device_pipeline (Driver.config Driver.Sycl_mlir)
      | "dpcpp" ->
        Driver.host_pipeline (Driver.config Driver.Dpcpp)
        @ Driver.device_pipeline (Driver.config Driver.Dpcpp)
      | name -> (
        match pass_of_name name with
        | Some p -> [ p ]
        | None ->
          Printf.eprintf "unknown pass %s; known: %s\n" name known_passes;
          exit 2))
    names

let read_input = function
  | None | Some "-" -> In_channel.input_all stdin
  | Some path -> In_channel.with_open_text path In_channel.input_all

(* ---------------- service modes (--batch / --serve) ---------------- *)

let is_separator line = String.trim line = "// -----"

(* Split a multi-module stream on `// -----` lines (mlir-opt's
   -split-input-file convention). Blank chunks are dropped. *)
let split_modules src =
  let flush acc chunk =
    let text = String.concat "\n" (List.rev chunk) in
    if String.trim text = "" then acc else text :: acc
  in
  let rec go acc chunk = function
    | [] -> List.rev (flush acc chunk)
    | line :: rest ->
      if is_separator line then go (flush acc chunk) [] rest
      else go acc (line :: chunk) rest
  in
  go [] [] (String.split_on_char '\n' src)

let requests_of_inputs inputs =
  let of_file path =
    match In_channel.with_open_text path In_channel.input_all with
    | text -> [ { Service.rq_name = path; rq_text = text } ]
    | exception Sys_error msg ->
      Printf.eprintf "error: cannot read input: %s\n" msg;
      exit 1
  in
  let inputs = if inputs = [] then [ "-" ] else inputs in
  List.concat_map
    (fun input ->
      if input = "-" then
        List.mapi
          (fun i text ->
            { Service.rq_name = Printf.sprintf "<stdin>#%d" (i + 1);
              rq_text = text })
          (split_modules (In_channel.input_all stdin))
      else if Sys.file_exists input && Sys.is_directory input then
        Sys.readdir input |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".mlir")
        |> List.sort String.compare
        |> List.concat_map (fun f -> of_file (Filename.concat input f))
      else of_file input)
    inputs

let write_out_dir dir (rs : Service.response) text =
  (if not (Sys.file_exists dir) then
     try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let path = Filename.concat dir (Filename.basename rs.Service.rs_name) in
  try Out_channel.with_open_text path (fun oc -> output_string oc (text ^ "\n"))
  with Sys_error msg ->
    Printf.eprintf "error: cannot write %s: %s\n" path msg;
    exit 1

(* One line per round so CI (and humans) can grep the hit rate; counters
   are cumulative in the registry, so each round reports the delta. *)
let round_summary reg ~round ~modules ~wall_us ~before:(h0, m0, e0) =
  let module Metrics = Sycl_obs.Metrics in
  let hits = Metrics.counter_value reg "service.cache_hits" - h0 in
  let misses = Metrics.counter_value reg "service.cache_misses" - m0 in
  let evictions = Metrics.counter_value reg "service.cache_evictions" - e0 in
  let rate =
    if hits + misses = 0 then 0.0
    else 100.0 *. float_of_int hits /. float_of_int (hits + misses)
  in
  Printf.eprintf
    "// service: round %d: %d modules, %d hits / %d misses (hit rate \
     %.1f%%), %d evictions, wall %d us, %.1f modules/s\n\
     %!"
    round modules hits misses rate evictions wall_us
    (float_of_int modules *. 1e6 /. float_of_int (max 1 wall_us))

let counters reg =
  let module Metrics = Sycl_obs.Metrics in
  ( Metrics.counter_value reg "service.cache_hits",
    Metrics.counter_value reg "service.cache_misses",
    Metrics.counter_value reg "service.cache_evictions" )

let run_batch_mode service ~repeat ~out_dir inputs =
  let requests = requests_of_inputs inputs in
  if requests = [] then begin
    Printf.eprintf "error: no input modules\n";
    exit 1
  end;
  let reg = Service.metrics service in
  let failed = ref false in
  for round = 1 to max 1 repeat do
    let before = counters reg in
    let t0 = Unix.gettimeofday () in
    let responses = Service.run_batch service requests in
    let wall_us =
      max 1 (int_of_float (Float.round ((Unix.gettimeofday () -. t0) *. 1e6)))
    in
    round_summary reg ~round ~modules:(List.length requests) ~wall_us ~before;
    if round = 1 then
      List.iteri
        (fun i rs ->
          match rs.Service.rs_outcome with
          | Service.Success text -> (
            match out_dir with
            | Some dir -> write_out_dir dir rs text
            | None ->
              if i > 0 then print_string "// -----\n";
              print_string text;
              print_newline ())
          | Service.Failure msg ->
            failed := true;
            Printf.eprintf "// error: %s: %s\n" rs.Service.rs_name msg)
        responses
  done;
  !failed

let run_serve_mode service =
  let reg = Service.metrics service in
  let failed = ref false in
  let count = ref 0 in
  let eof = ref false in
  let t0 = Unix.gettimeofday () in
  while not !eof do
    let buf = Buffer.create 256 in
    let rec fill () =
      match In_channel.input_line stdin with
      | None -> eof := true
      | Some line when is_separator line -> ()
      | Some line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        fill ()
    in
    fill ();
    let text = Buffer.contents buf in
    if String.trim text <> "" then begin
      incr count;
      let rs =
        Service.compile_one service
          { Service.rq_name = Printf.sprintf "<stdin>#%d" !count;
            rq_text = text }
      in
      (match rs.Service.rs_outcome with
      | Service.Success s ->
        print_string s;
        print_newline ()
      | Service.Failure msg ->
        failed := true;
        Printf.printf "// error: %s\n" msg);
      print_string "// -----\n";
      flush stdout
    end
  done;
  let wall_us =
    max 1 (int_of_float (Float.round ((Unix.gettimeofday () -. t0) *. 1e6)))
  in
  if !count > 0 then
    round_summary reg ~round:1 ~modules:!count ~wall_us ~before:(0, 0, 0);
  !failed

let run_service ~serve ~jobs ~repeat ~cache_size ~out_dir ~metrics_json
    ~remarks ~remark_filter ~remarks_json ~verify pipeline inputs =
  let pipeline_key = Service.pipeline_key_of_passes pipeline in
  let service =
    Service.create ~cache_capacity:cache_size
      ?workers:(if jobs > 0 then Some jobs else None)
      ~verify_each:verify ~pipeline ~pipeline_key ()
  in
  let all_remarks = ref [] in
  let sink r =
    all_remarks := r :: !all_remarks;
    match remark_filter with
    | Some rx when Str.string_match rx r.Mlir.Remarks.r_pass 0 ->
      Printf.eprintf "%s\n%!" (Mlir.Remarks.to_string r)
    | _ -> ()
  in
  let body () =
    if serve then run_serve_mode service
    else run_batch_mode service ~repeat ~out_dir inputs
  in
  let failed =
    if remarks <> None || remarks_json <> None then
      Mlir.Remarks.with_sink sink body
    else body ()
  in
  (match remarks_json with
  | Some path -> (
    try
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Mlir.Remarks.list_to_json (List.rev !all_remarks)))
    with Sys_error msg ->
      Printf.eprintf "error: cannot write remarks JSON: %s\n" msg;
      exit 1)
  | None -> ());
  (match metrics_json with
  | Some path -> (
    let module Metrics = Sycl_obs.Metrics in
    try
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            (Mlir.Json.to_string (Metrics.to_json (Service.metrics service))
            ^ "\n"))
    with Sys_error msg ->
      Printf.eprintf "error: cannot write metrics JSON: %s\n" msg;
      exit 1)
  | None -> ());
  exit (if failed then 1 else 0)

let run passes verify stats stats_json timing remarks remarks_json
    metrics_json trace_json print_analysis dump_before dump_after debuginfo
    rewrite_driver batch serve jobs repeat cache_size out_dir inputs =
  (match Mlir.Rewrite.driver_of_string rewrite_driver with
  | Some d -> Mlir.Rewrite.set_default_driver d
  | None ->
    Printf.eprintf
      "error: unknown --rewrite-driver %s (expected worklist or legacy)\n"
      rewrite_driver;
    exit 2);
  Dialects.Register.init ();
  Sycl_core.Sycl_ops.init ();
  Sycl_core.Sycl_host_ops.init ();
  Sycl_core.Licm.init ();
  (* `--remarks FILE` (unglued): cmdliner hands FILE to --remarks even
     though its value is optional. When it names an existing file and no
     positional input was given, the user meant it as the input. *)
  let remarks, inputs =
    match (remarks, inputs) with
    | Some s, [] when Sys.file_exists s -> (Some "", [ s ])
    | _ -> (remarks, inputs)
  in
  let remark_filter =
    match Option.map Str.regexp remarks with
    | f -> f
    | exception Failure msg ->
      Printf.eprintf "error: bad --remarks regex: %s\n" msg;
      exit 2
  in
  if batch || serve then begin
    if batch && serve then begin
      Printf.eprintf "error: --batch and --serve are mutually exclusive\n";
      exit 2
    end;
    if debuginfo then begin
      Printf.eprintf
        "error: --mlir-print-debuginfo is not supported in service mode \
         (cached output must be canonical)\n";
      exit 2
    end;
    if print_analysis <> [] then begin
      Printf.eprintf "error: --print-analysis is not supported in service mode\n";
      exit 2
    end;
    run_service ~serve ~jobs ~repeat ~cache_size ~out_dir ~metrics_json
      ~remarks ~remark_filter ~remarks_json ~verify (resolve_pipeline passes)
      inputs
  end;
  let input =
    match inputs with
    | [] -> None
    | [ x ] -> Some x
    | _ ->
      Printf.eprintf
        "error: multiple input files need --batch (single-shot mode takes \
         one)\n";
      exit 2
  in
  let src =
    match read_input input with
    | s -> s
    | exception Sys_error msg ->
      Printf.eprintf "error: cannot read input: %s\n" msg;
      exit 1
  in
  let file = match input with None | Some "-" -> "-" | Some path -> path in
  let parse_started = Unix.gettimeofday () in
  match Mlir.Parser.parse_module ~file src with
  | exception Mlir.Parser.Parse_error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    exit 1
  | m -> (
    let parse_seconds = Unix.gettimeofday () -. parse_started in
    let printers =
      List.map
        (fun name ->
          match Sycl_core.Analysis_printer.by_name name with
          | Some p -> p
          | None ->
            Printf.eprintf "unknown analysis %s; known: %s\n" name
              (String.concat ", " Sycl_core.Analysis_printer.known);
            exit 2)
        print_analysis
    in
    let pipeline = resolve_pipeline passes @ printers in
    (* Remarks stream to stderr as they are emitted (filtered like
       -Rpass=REGEX, matched against the pass name); the JSON document
       always carries every remark. *)
    let all_remarks = ref [] in
    (* The sink is scoped to exactly this pipeline run via
       Pass.run_pipeline, instead of being installed globally — a nested
       pipeline can no longer steal or drop it. *)
    let remarks_sink =
      if remarks <> None || remarks_json <> None then
        Some
          (fun r ->
            all_remarks := r :: !all_remarks;
            match remark_filter with
            | Some rx when Str.string_match rx r.Mlir.Remarks.r_pass 0 ->
              Printf.eprintf "%s\n%!" (Mlir.Remarks.to_string r)
            | _ -> ())
      else None
    in
    let tm = Mlir.Instrument.timer () in
    let lc = Mlir.Instrument.loc_coverage_log () in
    let instrumentations =
      (if timing || trace_json <> None then [ Mlir.Instrument.timing tm ]
       else [])
      @ (if stats || stats_json <> None then
           [ Mlir.Instrument.loc_coverage lc ]
         else [])
      @ (match dump_before with
        | Some f ->
          [ Mlir.Instrument.dump ~before:true ~after:false ~filter:f () ]
        | None -> [])
      @
      match dump_after with
      | Some f -> [ Mlir.Instrument.dump ~filter:f () ]
      | None -> []
    in
    match
      Mlir.Pass.run_pipeline ~verify_each:verify ~instrumentations
        ?remarks_sink pipeline m
    with
    | result ->
      Mlir.Printer.print ~debuginfo m;
      if timing then
        Format.eprintf "%a@?" Mlir.Instrument.pp_timing
          (Mlir.Instrument.timing_report tm);
      (match remarks_json with
      | Some path -> (
        try
          Out_channel.with_open_text path (fun oc ->
              output_string oc
                (Mlir.Remarks.list_to_json (List.rev !all_remarks)))
        with Sys_error msg ->
          Printf.eprintf "error: cannot write remarks JSON: %s\n" msg;
          exit 1)
      | None -> ());
      if stats then begin
        Printf.eprintf "// pass statistics:\n";
        Format.eprintf "%a@?" Mlir.Pass.Stats.pp (Mlir.Pass.merged_stats result);
        Format.eprintf "%a@?" Mlir.Instrument.pp_loc_coverage lc
      end;
      (match stats_json with
      | Some path -> (
        let stats_obj st =
          Mlir.Json.Obj
            (List.map
               (fun (k, v) -> (k, Mlir.Json.Int v))
               (Mlir.Pass.Stats.to_list st))
        in
        let doc =
          Mlir.Json.Obj
            [ ( "passes",
                Mlir.Json.List
                  (List.map2
                     (fun (name, st) (_, seconds) ->
                       Mlir.Json.Obj
                         [ ("pass", Mlir.Json.String name);
                           ("seconds", Mlir.Json.Float seconds);
                           ("stats", stats_obj st) ])
                     result.Mlir.Pass.per_pass_stats
                     result.Mlir.Pass.per_pass_time) );
              ("merged", stats_obj (Mlir.Pass.merged_stats result));
              ( "loc_coverage",
                Mlir.Json.List
                  (List.map
                     (fun e ->
                       Mlir.Json.Obj
                         [ ("pass", Mlir.Json.String e.Mlir.Instrument.lc_pass);
                           ( "before_known",
                             Mlir.Json.Int e.Mlir.Instrument.lc_before_known );
                           ( "before_total",
                             Mlir.Json.Int e.Mlir.Instrument.lc_before_total );
                           ( "after_known",
                             Mlir.Json.Int e.Mlir.Instrument.lc_after_known );
                           ( "after_total",
                             Mlir.Json.Int e.Mlir.Instrument.lc_after_total );
                           ( "lost",
                             Mlir.Json.Bool (Mlir.Instrument.loc_coverage_lost e)
                           ) ])
                     (Mlir.Instrument.loc_coverage_entries lc)) ) ]
        in
        try
          Out_channel.with_open_text path (fun oc ->
              output_string oc (Mlir.Json.to_string doc ^ "\n"))
        with Sys_error msg ->
          Printf.eprintf "error: cannot write stats JSON: %s\n" msg;
          exit 1)
      | None -> ());
      (match trace_json with
      | Some path -> (
        (* Compile-lane trace: a parse span, then the pass pipeline laid
           out from the timing tree — the compiler's side of the merged
           telemetry timeline. *)
        let module Trace = Sycl_obs.Trace in
        let sink = Trace.global in
        Trace.reset sink;
        Trace.add sink
          {
            Trace.sp_name = "parse";
            sp_cat = "frontend";
            sp_lane = Trace.Compile;
            sp_ts = 0;
            sp_dur = max 1 (int_of_float (Float.round (parse_seconds *. 1e6)));
            sp_args = [];
          };
        Trace.add_timing ~root_name:"passes" sink
          (Mlir.Instrument.timing_report tm);
        try
          Out_channel.with_open_text path (fun oc ->
              output_string oc
                (Mlir.Json.to_string (Trace.export sink) ^ "\n"))
        with Sys_error msg ->
          Printf.eprintf "error: cannot write trace JSON: %s\n" msg;
          exit 1)
      | None -> ());
      (match metrics_json with
      | Some path -> (
        (* Compile-side metrics registry: merged pass statistics as
           counters, per-pass wall time as a histogram, final location
           coverage as gauges. *)
        let module Metrics = Sycl_obs.Metrics in
        let reg = Metrics.create () in
        List.iter
          (fun (k, v) -> Metrics.incr reg ~by:v ("compile.stat." ^ k))
          (Mlir.Pass.Stats.to_list (Mlir.Pass.merged_stats result));
        List.iter
          (fun ((_ : string), seconds) ->
            Metrics.observe reg
              ~bounds:[| 10; 100; 1_000; 10_000; 100_000; 1_000_000 |]
              "compile.pass_wall_us"
              (int_of_float (Float.round (seconds *. 1e6))))
          result.Mlir.Pass.per_pass_time;
        let known, total = Mlir.Instrument.count_locs m in
        Metrics.set_gauge reg "compile.ops_located" known;
        Metrics.set_gauge reg "compile.ops_total" total;
        try
          Out_channel.with_open_text path (fun oc ->
              output_string oc
                (Mlir.Json.to_string (Metrics.to_json reg) ^ "\n"))
        with Sys_error msg ->
          Printf.eprintf "error: cannot write metrics JSON: %s\n" msg;
          exit 1)
      | None -> ())
    | exception Mlir.Pass.Pass_failed { pass; diagnostics } ->
      Printf.eprintf "pass %s failed verification:\n" pass;
      List.iter
        (fun d -> Printf.eprintf "  %s\n" (Mlir.Verifier.diag_to_string d))
        diagnostics;
      exit 1)

let passes_arg =
  let doc = "Comma-separated pass pipeline. Known passes: " ^ known_passes in
  Arg.(value & opt (list string) [ "canonicalize" ] & info [ "passes"; "p" ] ~doc)

let verify_arg =
  Arg.(value & flag & info [ "verify-each" ] ~doc:"Verify the IR after every pass.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print pass statistics to stderr.")

let stats_json_arg =
  Arg.(value & opt (some string) None
       & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write per-pass statistics and wall time to $(docv) as JSON.")

let print_analysis_arg =
  let doc =
    "Comma-separated analyses to run after the pipeline. Each annotates \
     the IR with discardable sycl.* attributes and prints a report to \
     stderr. Known: alias, uniformity, reaching-defs, memory-access, reuse."
  in
  Arg.(value & opt (list string) [] & info [ "print-analysis" ] ~docv:"LIST" ~doc)

let timing_arg =
  Arg.(value & flag
       & info [ "timing" ]
           ~doc:"Print a per-pass wall-time report to stderr (-mlir-timing style).")

let remarks_arg =
  Arg.(value
       & opt ~vopt:(Some "") (some string) None
       & info [ "remarks" ] ~docv:"REGEX"
           ~doc:
             "Print optimization remarks to stderr as passes emit them \
              (-Rpass style). The optional $(docv) filters by emitting pass \
              name; without it every remark prints.")

let remarks_json_arg =
  Arg.(value & opt (some string) None
       & info [ "remarks-json" ] ~docv:"FILE"
           ~doc:"Write every optimization remark to $(docv) as JSON.")

let metrics_json_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-json" ] ~docv:"FILE"
           ~doc:
             "Write compile-side metrics (merged pass statistics as \
              counters, per-pass wall-time histogram, final location \
              coverage) to $(docv) as JSON.")

let trace_json_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-json" ] ~docv:"FILE"
           ~doc:
             "Write a Chrome trace of the compile phase (parse span + pass \
              pipeline spans on the compile lane) to $(docv).")

let dump_before_arg =
  Arg.(value & opt (some string) None
       & info [ "dump-before" ] ~docv:"PASS"
           ~doc:"Print the IR to stderr before each run of $(docv) (\"all\" \
                 for every pass).")

let dump_after_arg =
  Arg.(value & opt (some string) None
       & info [ "dump-after" ] ~docv:"PASS"
           ~doc:"Print the IR to stderr after each run of $(docv) (\"all\" \
                 for every pass).")

let debuginfo_arg =
  Arg.(value & flag
       & info [ "mlir-print-debuginfo" ]
           ~doc:"Print a trailing loc(...) attribute on every operation \
                 (MLIR's -mlir-print-debuginfo). Off by default, so output \
                 is unchanged for tools that do not understand locations.")

let rewrite_driver_arg =
  Arg.(value & opt string "worklist"
       & info [ "rewrite-driver" ] ~docv:"DRIVER"
           ~doc:
             "Greedy-rewrite driver: $(b,worklist) (use-def-driven, runs to \
              a true fixpoint; the default) or $(b,legacy) (the old bounded \
              whole-module re-walk, kept for before/after comparisons — it \
              can stop before fixpoint on deep fold chains).")

let batch_arg =
  Arg.(value & flag
       & info [ "batch" ]
           ~doc:
             "Compile service, batch mode: compile every input module \
              concurrently through the pipeline with a content-addressed \
              result cache. Inputs may be files, directories (their *.mlir \
              files, sorted) or - (stdin, split on // ----- lines).")

let serve_arg =
  Arg.(value & flag
       & info [ "serve" ]
           ~doc:
             "Compile service, stream mode: read // ------separated modules \
              from stdin one at a time and answer each on stdout, sharing \
              the batch-mode result cache.")

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:
             "Worker domains for --batch (0 = the runtime's recommended \
              domain count).")

let repeat_arg =
  Arg.(value & opt int 1
       & info [ "repeat" ] ~docv:"N"
           ~doc:
             "Sweep the batch $(docv) times; rounds after the first should \
              be pure cache hits. Each round reports hits/misses to stderr.")

let cache_size_arg =
  Arg.(value & opt int 256
       & info [ "cache-size" ] ~docv:"N"
           ~doc:
             "Result-cache capacity; least-recently-used entries are \
              evicted beyond it.")

let out_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "out-dir" ] ~docv:"DIR"
           ~doc:
             "In --batch mode, write each compiled module to \
              $(docv)/<basename> instead of stdout — byte-identical to the \
              single-shot output for the same input.")

let input_arg =
  Arg.(value & pos_all string []
       & info [] ~docv:"FILE"
           ~doc:
             "Input file (default stdin). --batch accepts several, plus \
              directories.")

let cmd =
  let doc = "run SYCL-MLIR passes over textual IR" in
  Cmd.v
    (Cmd.info "sycl-mlir-opt" ~doc)
    Term.(const run $ passes_arg $ verify_arg $ stats_arg $ stats_json_arg
          $ timing_arg $ remarks_arg $ remarks_json_arg $ metrics_json_arg
          $ trace_json_arg $ print_analysis_arg $ dump_before_arg
          $ dump_after_arg $ debuginfo_arg $ rewrite_driver_arg $ batch_arg
          $ serve_arg $ jobs_arg $ repeat_arg $ cache_size_arg $ out_dir_arg
          $ input_arg)

let () = exit (Cmd.eval cmd)
