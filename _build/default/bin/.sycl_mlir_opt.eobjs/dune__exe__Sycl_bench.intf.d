bin/sycl_bench.mli:
