bin/sycl_bench.ml: Arg Cmd Cmdliner Common Format List Mlir Printf Suite Sycl_core Sycl_runtime Sycl_sim Sycl_workloads Term
