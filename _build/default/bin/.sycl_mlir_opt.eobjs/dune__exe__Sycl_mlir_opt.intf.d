bin/sycl_mlir_opt.mli:
