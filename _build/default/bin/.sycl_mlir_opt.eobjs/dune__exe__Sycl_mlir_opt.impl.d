bin/sycl_mlir_opt.ml: Arg Cmd Cmdliner Dialects Format In_channel List Mlir Printf Sycl_core Term
