(* sycl-mlir-opt: the project's mlir-opt equivalent. Reads a module in the
   textual generic form, runs a named pass pipeline, prints the result.

     sycl-mlir-opt --passes canonicalize,cse,licm,detect-reduction foo.mlir
     echo '...' | sycl-mlir-opt --passes sycl-mlir  (full pipeline) *)

open Cmdliner
module Driver = Sycl_core.Driver

let pass_of_name = function
  | "canonicalize" -> Some Sycl_core.Canonicalize.pass
  | "cse" -> Some Sycl_core.Cse.pass
  | "dce" -> Some Sycl_core.Dce.pass
  | "inline" -> Some Sycl_core.Inline.pass
  | "loop-unroll" -> Some Sycl_core.Loop_unroll.pass
  | "licm" -> Some Sycl_core.Licm.pass
  | "detect-reduction" -> Some Sycl_core.Detect_reduction.pass
  | "loop-internalization" -> Some Sycl_core.Loop_internalization.pass
  | "host-raising" -> Some Sycl_core.Host_raising.pass
  | "host-device-propagation" -> Some (Sycl_core.Host_device_prop.pass ())
  | "dead-argument-elimination" -> Some Sycl_core.Dead_arg_elim.pass
  | "kernel-fusion" -> Some Sycl_core.Kernel_fusion.pass
  | "store-forwarding" -> Some Sycl_core.Store_forwarding.pass
  | "barrier-safety" -> Some Sycl_core.Barrier_safety.pass
  | "lower-sycl" -> Some Sycl_core.Lower_sycl.pass
  | "raise-affine" -> Some Sycl_core.Raise_affine.pass
  | _ -> None

let known_passes =
  "canonicalize, cse, dce, inline, loop-unroll, licm, detect-reduction, \
   loop-internalization, host-raising, host-device-propagation, \
   dead-argument-elimination, kernel-fusion, store-forwarding, \
   barrier-safety, lower-sycl, raise-affine, and the pipeline aliases sycl-mlir / dpcpp"

let resolve_pipeline names =
  List.concat_map
    (fun name ->
      match name with
      | "sycl-mlir" ->
        Driver.host_pipeline (Driver.config Driver.Sycl_mlir)
        @ Driver.device_pipeline (Driver.config Driver.Sycl_mlir)
      | "dpcpp" ->
        Driver.host_pipeline (Driver.config Driver.Dpcpp)
        @ Driver.device_pipeline (Driver.config Driver.Dpcpp)
      | name -> (
        match pass_of_name name with
        | Some p -> [ p ]
        | None ->
          Printf.eprintf "unknown pass %s; known: %s\n" name known_passes;
          exit 2))
    names

let read_input = function
  | None | Some "-" -> In_channel.input_all stdin
  | Some path -> In_channel.with_open_text path In_channel.input_all

let run passes verify stats input =
  Dialects.Register.init ();
  Sycl_core.Sycl_ops.init ();
  Sycl_core.Sycl_host_ops.init ();
  Sycl_core.Licm.init ();
  let src = read_input input in
  match Mlir.Parser.parse_module src with
  | exception Mlir.Parser.Parse_error msg ->
    Printf.eprintf "parse error: %s\n" msg;
    exit 1
  | m -> (
    let pipeline = resolve_pipeline passes in
    match Mlir.Pass.run_pipeline ~verify_each:verify pipeline m with
    | result ->
      Mlir.Printer.print m;
      if stats then begin
        Printf.eprintf "// pass statistics:\n";
        Format.eprintf "%a@?" Mlir.Pass.Stats.pp (Mlir.Pass.merged_stats result)
      end
    | exception Mlir.Pass.Pass_failed { pass; diagnostics } ->
      Printf.eprintf "pass %s failed verification:\n" pass;
      List.iter
        (fun d -> Printf.eprintf "  %s\n" (Mlir.Verifier.diag_to_string d))
        diagnostics;
      exit 1)

let passes_arg =
  let doc = "Comma-separated pass pipeline. Known passes: " ^ known_passes in
  Arg.(value & opt (list string) [ "canonicalize" ] & info [ "passes"; "p" ] ~doc)

let verify_arg =
  Arg.(value & flag & info [ "verify-each" ] ~doc:"Verify the IR after every pass.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print pass statistics to stderr.")

let input_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Input file (default stdin).")

let cmd =
  let doc = "run SYCL-MLIR passes over textual IR" in
  Cmd.v
    (Cmd.info "sycl-mlir-opt" ~doc)
    Term.(const run $ passes_arg $ verify_arg $ stats_arg $ input_arg)

let () = exit (Cmd.eval cmd)
