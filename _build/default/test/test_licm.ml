(* LICM tests (Section VI-A): pure-op hoisting, guarded load hoisting,
   refusal in the presence of clobbering stores, and runtime no-alias
   versioning. *)

open Mlir
module A = Dialects.Arith
module K = Sycl_frontend.Kernel
module S = Sycl_core.Sycl_types

let run_licm f =
  let stats = Pass.Stats.create () in
  Sycl_core.Licm.run_on_func f stats;
  stats

(* Is [op] (still) directly inside the body of [loop]? *)
let in_loop loop (op : Core.op) = Core.is_in_region loop.Core.regions.(0) op

let tests_list =
  [
    Alcotest.test_case "invariant pure ops hoist out of the loop" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.i64 ] (fun b vals ->
              let x = List.hd vals in
              let zero = A.const_index b 0 in
              let ten = A.const_index b 10 in
              let one = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:ten ~step:one (fun bb _iv _ ->
                     let y = A.muli bb x x in
                     ignore (A.addi bb y y);
                     [])))
        in
        ignore (run_licm f);
        Helpers.check_verifies m;
        let loop = List.hd (Core.collect_named f "scf.for") in
        let mul = List.hd (Core.collect_named f "arith.muli") in
        Alcotest.(check bool) "mul hoisted" false (in_loop loop mul));
    Alcotest.test_case "iv-dependent ops stay" `Quick (fun () ->
        let _m, f =
          Helpers.with_func (fun b _ ->
              let zero = A.const_index b 0 in
              let ten = A.const_index b 10 in
              let one = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:ten ~step:one (fun bb iv _ ->
                     ignore (A.addi bb iv iv);
                     [])))
        in
        ignore (run_licm f);
        let loop = List.hd (Core.collect_named f "scf.for") in
        let add = List.hd (Core.collect_named f "arith.addi") in
        Alcotest.(check bool) "stays in loop" true (in_loop loop add));
    Alcotest.test_case "invariant load hoists with a trip-count guard" `Quick
      (fun () ->
        (* Loop reads a[0] every iteration and writes b[iv]; a and b are
           proven disjoint (host facts), so the load hoists and the loop
           is wrapped in a versioning scf.if. *)
        let m, f =
          Helpers.with_kernel ~dims:1
            ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32);
                    K.Scal Types.Index ]
            (fun b ~item:_ ~args ->
              match args with
              | [ a; out; n ] ->
                let zero = A.const_index b 0 in
                let one = A.const_index b 1 in
                let a0 = K.acc_view b a [ zero ] in
                let _ = a0 in
                ignore
                  (Dialects.Scf.for_ b ~lb:zero ~ub:n ~step:one (fun bb iv _ ->
                       let v = Dialects.Memref.load bb a0 [ zero ] in
                       K.acc_set bb out [ iv ] v;
                       []))
              | _ -> assert false)
        in
        let k = Option.get (Core.lookup_func m "k") in
        Sycl_core.Alias.add_noalias_pair k 1 2;
        let stats = run_licm f in
        Helpers.check_verifies m;
        Alcotest.(check int) "one memory hoist" 1
          (Pass.Stats.get stats "licm.hoisted-mem");
        Alcotest.(check int) "versioning if present" 1 (Helpers.count_ops f "scf.if");
        (* The hoisted load lives in the then-branch, before the loop. *)
        let if_op = List.hd (Core.collect_named f "scf.if") in
        let then_body = (Core.entry_block if_op.Core.regions.(0)).Core.body in
        Alcotest.(check bool) "load before loop in then-branch" true
          (match then_body with
          | first :: _ -> first.Core.name = "memref.load"
          | [] -> false));
    Alcotest.test_case "load blocked by a must-aliasing store" `Quick (fun () ->
        let _m, f =
          Helpers.with_kernel ~dims:1
            ~args:[ K.Acc (1, S.Read_write, Types.f32); K.Scal Types.Index ]
            (fun b ~item:_ ~args ->
              match args with
              | [ a; n ] ->
                let zero = A.const_index b 0 in
                let one = A.const_index b 1 in
                let a0 = K.acc_view b a [ zero ] in
                ignore
                  (Dialects.Scf.for_ b ~lb:zero ~ub:n ~step:one (fun bb _iv _ ->
                       let v = Dialects.Memref.load bb a0 [ zero ] in
                       Dialects.Memref.store bb (A.addf bb v v) a0 [ zero ];
                       []))
              | _ -> assert false)
        in
        let stats = run_licm f in
        Alcotest.(check int) "nothing hoisted" 0
          (Pass.Stats.get stats "licm.hoisted-mem");
        let loop = List.hd (Core.collect_named f "scf.for") in
        let load = List.hd (Core.collect_named f "memref.load") in
        Alcotest.(check bool) "load still in loop" true (in_loop loop load));
    Alcotest.test_case
      "may-alias with another accessor versions on runtime disjointness" `Quick
      (fun () ->
        (* Without host no-alias facts, a[0] may alias the b[iv] stores;
           LICM emits a sycl.accessor.distinct runtime check. *)
        let m, f =
          Helpers.with_kernel ~dims:1
            ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32);
                    K.Scal Types.Index ]
            (fun b ~item:_ ~args ->
              match args with
              | [ a; out; n ] ->
                let zero = A.const_index b 0 in
                let one = A.const_index b 1 in
                let a0 = K.acc_view b a [ zero ] in
                ignore
                  (Dialects.Scf.for_ b ~lb:zero ~ub:n ~step:one (fun bb iv _ ->
                       let v = Dialects.Memref.load bb a0 [ zero ] in
                       K.acc_set bb out [ iv ] v;
                       []))
              | _ -> assert false)
        in
        let stats = run_licm f in
        Helpers.check_verifies m;
        Alcotest.(check int) "versioned on no-alias" 1
          (Pass.Stats.get stats "licm.versioned-noalias");
        Alcotest.(check int) "distinct check emitted" 1
          (Helpers.count_ops f "sycl.accessor.distinct"));
    Alcotest.test_case "pure-only LICM (DPC++ baseline) hoists no loads" `Quick
      (fun () ->
        let m, f =
          Helpers.with_kernel ~dims:1
            ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32);
                    K.Scal Types.Index ]
            (fun b ~item:_ ~args ->
              match args with
              | [ a; out; n ] ->
                let zero = A.const_index b 0 in
                let one = A.const_index b 1 in
                let a0 = K.acc_view b a [ zero ] in
                ignore
                  (Dialects.Scf.for_ b ~lb:zero ~ub:n ~step:one (fun bb iv _ ->
                       let v = Dialects.Memref.load bb a0 [ zero ] in
                       K.acc_set bb out [ iv ] v;
                       []))
              | _ -> assert false)
        in
        ignore m;
        let stats = Pass.Stats.create () in
        Sycl_core.Driver.licm_pure_pass.Pass.run
          (Option.get (Sycl_core.Driver.top_module f))
          stats;
        let loop = List.hd (Core.collect_named f "scf.for") in
        let load = List.hd (Core.collect_named f "memref.load") in
        Alcotest.(check bool) "load still in loop" true (in_loop loop load);
        Alcotest.(check int) "no scf.if introduced" 0 (Helpers.count_ops f "scf.if"));
  ]

let tests = ("licm", tests_list)
