(* Progressive-lowering tests: flattening accessors into DPC++'s four
   kernel arguments and lowering subscripts to explicit address
   arithmetic, with end-to-end execution through the lowered ABI. *)

open Mlir
open Sycl_workloads
module Driver = Sycl_core.Driver
module LS = Sycl_core.Lower_sycl

let lower m =
  let stats = Pass.Stats.create () in
  LS.pass.Pass.run m stats;
  stats

let tests_list =
  [
    Alcotest.test_case "vec_add lowers: flattened args, no sycl accessor ops"
      `Quick (fun () ->
        let w = Single_kernel.vec_add ~n:128 in
        let m = w.Common.w_module () in
        let _ = Pass.run_pipeline [ Sycl_core.Host_raising.pass ] m in
        let stats = lower m in
        Alcotest.(check int) "one kernel lowered" 1
          (Pass.Stats.get stats "lower-sycl.kernels");
        Helpers.check_verifies m;
        let k = Option.get (Core.lookup_func m "vec_add") in
        (* 3 accessors of dim 1 -> item + 3 * (1 + 3) = 13 args. *)
        Alcotest.(check int) "13 arguments" 13
          (List.length (Core.block_args (Core.func_body k)));
        Alcotest.(check int) "no subscripts left" 0
          (Helpers.count_ops k "sycl.accessor.subscript");
        Alcotest.(check bool) "expansion recorded" true
          (LS.expansion_of_kernel k = Some [ 1; 1; 1 ]));
    Alcotest.test_case "lowered vec_add executes correctly" `Quick (fun () ->
        let w = Single_kernel.vec_add ~n:128 in
        let m = w.Common.w_module () in
        let _ = Pass.run_pipeline ~verify_each:true [ Sycl_core.Host_raising.pass ] m in
        ignore (lower m);
        let args, validate = w.Common.w_data () in
        let r = Sycl_runtime.Host_interp.run ~module_op:m args in
        Alcotest.(check bool) "valid" true (validate ());
        ignore r);
    Alcotest.test_case "lowered gemm (post-optimization) executes correctly"
      `Quick (fun () ->
        (* The paper's order: optimize at the SYCL level first, then
           lower. The internalized, versioned gemm must survive. *)
        let w = Polybench.gemm ~n:16 in
        let m = w.Common.w_module () in
        ignore (Driver.compile (Driver.config ~verify_each:true Driver.Sycl_mlir) m);
        let stats = lower m in
        Alcotest.(check bool) "lowered or safely skipped" true
          (Pass.Stats.get stats "lower-sycl.kernels"
           + Pass.Stats.get stats "lower-sycl.skipped"
          = 1);
        Helpers.check_verifies m;
        let args, validate = w.Common.w_data () in
        ignore (Sycl_runtime.Host_interp.run ~module_op:m args);
        Alcotest.(check bool) "valid" true (validate ()));
    Alcotest.test_case "2-D accessor lowers to row-major address arithmetic"
      `Quick (fun () ->
        let module K = Sycl_frontend.Kernel in
        let module S = Sycl_core.Sycl_types in
        let module Interp = Sycl_sim.Interp in
        let module Memory = Sycl_sim.Memory in
        let m = Helpers.fresh_module () in
        ignore
          (K.define m ~name:"t2d" ~dims:2
             ~args:[ K.Acc (2, S.Read, Types.f32); K.Acc (2, S.Write, Types.f32) ]
             (fun b ~item ~args ->
               match args with
               | [ a; c ] ->
                 let i = K.gid b item 0 and j = K.gid b item 1 in
                 K.acc_set b c [ i; j ] (K.acc_get b a [ j; i ])
               | _ -> assert false));
        ignore (lower m);
        Helpers.check_verifies m;
        let k = Option.get (Core.lookup_func m "t2d") in
        (* item + 2 * (1 + 6) = 15 args *)
        Alcotest.(check int) "15 arguments" 15
          (List.length (Core.block_args (Core.func_body k)));
        (* Execute the lowered kernel directly (transpose semantics). *)
        let n = 8 in
        let a = Memory.alloc ~size:(n * n) () in
        Array.iteri (fun i _ -> a.Memory.data.(i) <- Memory.F (float_of_int i))
          a.Memory.data;
        let c = Memory.alloc ~size:(n * n) () in
        let flat alloc =
          Interp.Mem (Memory.full_view alloc)
          :: List.concat
               (List.init 3 (fun _ -> [ Interp.I n; Interp.I n ]))
          |> fun l ->
          (* range = [n;n], mem_range = [n;n], offset = [0;0] *)
          match l with
          | data :: _ ->
            [ data; Interp.I n; Interp.I n; Interp.I n; Interp.I n;
              Interp.I 0; Interp.I 0 ]
          | [] -> assert false
        in
        let args = Array.of_list ((Interp.Item :: flat a) @ flat c) in
        ignore
          (Interp.launch ~module_op:m ~kernel:k ~args ~global:[ n; n ]
             ~wg_size:[ 4; 4 ] ());
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            let got = Memory.cell_to_float c.Memory.data.((i * n) + j) in
            if Float.abs (got -. float_of_int ((j * n) + i)) > 1e-6 then ok := false
          done
        done;
        Alcotest.(check bool) "transposed" true !ok);
    Alcotest.test_case "accessor member getters lower to the scalar args" `Quick
      (fun () ->
        let module K = Sycl_frontend.Kernel in
        let module S = Sycl_core.Sycl_types in
        let m = Helpers.fresh_module () in
        ignore
          (K.define m ~name:"g" ~dims:1 ~args:[ K.Acc (1, S.Read, Types.f32) ]
             (fun b ~item:_ ~args ->
               let a = List.hd args in
               let dim = Dialects.Arith.const_int b ~ty:Types.i32 0 in
               ignore (Sycl_core.Sycl_ops.accessor_get_range b a dim)));
        ignore (lower m);
        let k = Option.get (Core.lookup_func m "g") in
        Alcotest.(check int) "no getters left" 0
          (Helpers.count_ops k "sycl.accessor.get_range");
        Helpers.check_verifies m);
    Alcotest.test_case "unsupported kernels are skipped, not broken" `Quick
      (fun () ->
        (* A kernel passing the accessor itself to accessor.distinct
           cannot be flattened. *)
        let module K = Sycl_frontend.Kernel in
        let module S = Sycl_core.Sycl_types in
        let m = Helpers.fresh_module () in
        ignore
          (K.define m ~name:"d" ~dims:1
             ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Read, Types.f32) ]
             (fun b ~item:_ ~args ->
               match args with
               | [ a1; a2 ] ->
                 ignore
                   (Builder.op1 b "sycl.accessor.distinct" ~operands:[ a1; a2 ]
                      ~result_type:Types.i1)
               | _ -> assert false));
        let stats = lower m in
        Alcotest.(check int) "skipped" 1 (Pass.Stats.get stats "lower-sycl.skipped");
        Alcotest.(check bool) "kernel intact" true (Core.lookup_func m "d" <> None));
    Alcotest.test_case "launch overhead reflects the flattened argument count"
      `Quick (fun () ->
        let w = Single_kernel.vec_add ~n:128 in
        let run lowered =
          let m = w.Common.w_module () in
          let _ = Pass.run_pipeline [ Sycl_core.Host_raising.pass ] m in
          if lowered then ignore (lower m);
          let args, _ = w.Common.w_data () in
          (Sycl_runtime.Host_interp.run ~module_op:m args)
            .Sycl_runtime.Host_interp.launch_overhead_cycles
        in
        Alcotest.(check bool) "flattened ABI passes more words" true
          (run true > run false));
    Alcotest.test_case "full pipeline with lowering validates across workloads"
      `Quick (fun () ->
        let cfg =
          Driver.config ~enable_lowering:true ~verify_each:true Driver.Sycl_mlir
        in
        List.iter
          (fun (w : Common.workload) ->
            let m = Common.measure cfg w in
            Alcotest.(check bool) (w.Common.w_name ^ " valid") true
              m.Common.m_valid)
          [
            Single_kernel.vec_add ~n:128;
            Single_kernel.scalar_prod ~n:128 ~block:16;
            Polybench.gemm ~n:16;
            Polybench.syr2k ~n:16;
            Polybench.covariance ~n:16;
            Polybench.conv2d ~n:16;
            Stencil.iso2dfd ~n:16 ~steps:2;
          ]);
  ]

let tests = ("lower-sycl", tests_list)
