(* ND-range launches with explicit local sizes, hand-written cooperative
   kernels (the paper's Listing 7 written by hand), and their relation to
   the automatically internalized code. *)

open Sycl_workloads
module Driver = Sycl_core.Driver
open Mlir

let tests_list =
  [
    Alcotest.test_case "hand-tiled matmul validates under every config" `Quick
      (fun () ->
        let w = Extensions.tiled_matmul ~n:32 ~m_tile:8 in
        List.iter
          (fun mode ->
            let m = Common.measure (Driver.config ~verify_each:true mode) w in
            Alcotest.(check bool)
              (Driver.mode_to_string mode ^ " valid")
              true m.Common.m_valid)
          [ Driver.Dpcpp; Driver.Sycl_mlir; Driver.Adaptive_cpp ]);
    Alcotest.test_case "explicit local size is honored by the runtime" `Quick
      (fun () ->
        let w = Extensions.tiled_matmul ~n:32 ~m_tile:8 in
        let m = Common.measure (Driver.config Driver.Dpcpp) w in
        match m.Common.m_result.Sycl_runtime.Host_interp.per_kernel with
        | [ (_, stats) ] ->
          (* 32x32 global over 8x8 groups = 16 work-groups. *)
          Alcotest.(check int) "16 work-groups" 16 stats.Sycl_sim.Cost.work_groups;
          Alcotest.(check bool) "barriers executed" true
            (stats.Sycl_sim.Cost.barriers > 0);
          Alcotest.(check bool) "local traffic" true
            (stats.Sycl_sim.Cost.local_transactions > 0)
        | _ -> Alcotest.fail "expected one launch");
    Alcotest.test_case
      "hand-tiled matmul beats the naive DPC++ matmul (same sizes)" `Quick
      (fun () ->
        (* The simulator rewards manual tiling the same way it rewards the
           automatic transformation. *)
        let naive = Polybench.gemm ~n:32 in
        let tiled = Extensions.tiled_matmul ~n:32 ~m_tile:8 in
        let mn = Common.measure (Driver.config Driver.Dpcpp) naive in
        let mt = Common.measure (Driver.config Driver.Dpcpp) tiled in
        Alcotest.(check bool) "tiled cheaper on device" true
          (mt.Common.m_result.Sycl_runtime.Host_interp.device_cycles
          < mn.Common.m_result.Sycl_runtime.Host_interp.device_cycles));
    Alcotest.test_case
      "internalized naive gemm approaches the hand-tiled version" `Quick
      (fun () ->
        (* The whole point of Section VI-C: automatic internalization of
           the naive kernel should recover most of the hand-tiled
           performance. *)
        let naive = Polybench.gemm ~n:32 in
        let tiled = Extensions.tiled_matmul ~n:32 ~m_tile:8 in
        let base = Common.measure (Driver.config Driver.Dpcpp) naive in
        let auto = Common.measure (Driver.config Driver.Sycl_mlir) naive in
        let hand = Common.measure (Driver.config Driver.Dpcpp) tiled in
        let dev m = m.Common.m_result.Sycl_runtime.Host_interp.device_cycles in
        let a = dev auto and h = dev hand and b = dev base in
        Alcotest.(check bool)
          (Printf.sprintf "auto (%d) within 3x of hand-tiled (%d)" a h)
          true
          (float_of_int a < 3.0 *. float_of_int h);
        Alcotest.(check bool)
          (Printf.sprintf "auto (%d) well under naive (%d)" a b)
          true
          (2 * a < b));
    Alcotest.test_case "internalization leaves nd-range kernels with barriers alone"
      `Quick (fun () ->
        (* A kernel that already has barriers must not be re-tiled into a
           deadlock. *)
        let w = Extensions.tiled_matmul ~n:32 ~m_tile:8 in
        let m = w.Common.w_module () in
        let compiled = Driver.compile (Driver.config ~verify_each:true Driver.Sycl_mlir) m in
        let stats = Pass.merged_stats compiled.Driver.pipeline_result in
        ignore stats;
        let args, validate = w.Common.w_data () in
        let r = Sycl_runtime.Host_interp.run ~module_op:m args in
        ignore r;
        Alcotest.(check bool) "still correct" true (validate ()));
    Alcotest.test_case "3-D launch works end to end" `Quick (fun () ->
        let module K = Sycl_frontend.Kernel in
        let module S = Sycl_core.Sycl_types in
        let module Memory = Sycl_sim.Memory in
        let module Interp = Sycl_sim.Interp in
        let m = Helpers.fresh_module () in
        let k =
          K.define m ~name:"k3" ~dims:3 ~args:[ K.Acc (3, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              let out = List.hd args in
              let i = K.gid b item 0 and j = K.gid b item 1 and l = K.gid b item 2 in
              let enc =
                K.addi b (K.muli b (K.addi b (K.muli b i (K.idx b 8)) j) (K.idx b 8)) l
              in
              K.acc_set b out [ i; j; l ]
                (Dialects.Arith.sitofp b
                   (Dialects.Arith.index_cast b enc Types.i64) Types.f32))
        in
        let out = Memory.alloc ~size:(8 * 8 * 8) () in
        let desc =
          Interp.Acc
            { Interp.a_alloc = out; a_range = [| 8; 8; 8 |];
              a_mem_range = [| 8; 8; 8 |]; a_offset = [| 0; 0; 0 |];
              a_is_float = true }
        in
        let stats =
          Interp.launch ~module_op:m ~kernel:k ~args:[| Interp.Item; desc |]
            ~global:[ 8; 8; 8 ] ~wg_size:[ 4; 4; 4 ] ()
        in
        Alcotest.(check int) "8 work-groups" 8 stats.Sycl_sim.Cost.work_groups;
        let ok = ref true in
        Array.iteri
          (fun idx cell ->
            if Float.abs (Memory.cell_to_float cell -. float_of_int idx) > 1e-3
            then ok := false)
          out.Memory.data;
        Alcotest.(check bool) "linearization correct" true !ok);
  ]

let tests = ("nd-range", tests_list)
