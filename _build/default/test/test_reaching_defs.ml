(* Reaching-definition analysis tests (Section V-B), including the
   paper's Listing 1 scenario: a direct store is a MOD, a store through a
   may-aliased pointer is a PMOD. *)

open Mlir
module A = Dialects.Arith
module RD = Sycl_core.Reaching_defs

let names ops = List.map (fun (o : Core.op) -> o.Core.name) ops

let store_value_const (o : Core.op) =
  let v, _, _ = Dialects.Memref.store_parts o in
  Core.attr (Option.get (Core.defining_op v)) "value"

let tests_list =
  [
    Alcotest.test_case "paper Listing 1: MODS vs PMODS" `Quick (fun () ->
        (* func(%ptr1, %ptr2) { store a -> ptr1; store b -> ptr2; load ptr1 } *)
        let _m, f =
          Helpers.with_func
            ~args:[ Types.memref_dyn Types.f32; Types.memref_dyn Types.f32 ]
            (fun b vals ->
              match vals with
              | [ p1; p2 ] ->
                let i = A.const_index b 0 in
                Dialects.Memref.store b (A.const_float b 1.0) p1 [ i ];
                Dialects.Memref.store b (A.const_float b 2.0) p2 [ i ];
                ignore (Dialects.Memref.load b p1 [ i ])
              | _ -> assert false)
        in
        let rd = RD.analyze_with_args f in
        let load = List.hd (Core.collect_named f "memref.load") in
        let p1 = Core.block_arg (Core.func_body f) 0 in
        let defs = RD.defs_at rd p1 ~at:load in
        Alcotest.(check int) "one MOD" 1 (List.length defs.RD.mods);
        Alcotest.(check int) "one PMOD" 1 (List.length defs.RD.pmods);
        Alcotest.(check bool) "MOD is store a" true
          (store_value_const (List.hd defs.RD.mods) = Some (Attr.Float 1.0));
        Alcotest.(check bool) "PMOD is store b" true
          (store_value_const (List.hd defs.RD.pmods) = Some (Attr.Float 2.0)));
    Alcotest.test_case "stores to distinct allocas do not interfere" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_func (fun b _ ->
              let a1 = Dialects.Memref.alloca b [ 1 ] Types.f32 in
              let a2 = Dialects.Memref.alloca b [ 1 ] Types.f32 in
              let i = A.const_index b 0 in
              Dialects.Memref.store b (A.const_float b 1.0) a1 [ i ];
              Dialects.Memref.store b (A.const_float b 2.0) a2 [ i ];
              ignore (Dialects.Memref.load b a1 [ i ]))
        in
        let rd = RD.analyze_with_args f in
        let load = List.hd (Core.collect_named f "memref.load") in
        let a1 = Core.result (List.hd (Core.collect_named f "memref.alloca")) 0 in
        let defs = RD.defs_at rd a1 ~at:load in
        Alcotest.(check int) "one MOD" 1 (List.length defs.RD.mods);
        Alcotest.(check int) "no PMODs" 0 (List.length defs.RD.pmods));
    Alcotest.test_case "definite overwrite of a scalar kills previous defs" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_func (fun b _ ->
              let a = Dialects.Memref.alloca b [ 1 ] Types.f32 in
              let i = A.const_index b 0 in
              Dialects.Memref.store b (A.const_float b 1.0) a [ i ];
              Dialects.Memref.store b (A.const_float b 2.0) a [ i ];
              ignore (Dialects.Memref.load b a [ i ]))
        in
        let rd = RD.analyze_with_args f in
        let load = List.hd (Core.collect_named f "memref.load") in
        let a = Core.result (List.hd (Core.collect_named f "memref.alloca")) 0 in
        let defs = RD.defs_at rd a ~at:load in
        Alcotest.(check int) "only the killing store" 1 (List.length defs.RD.mods);
        Alcotest.(check bool) "it is the second store" true
          (store_value_const (List.hd defs.RD.mods) = Some (Attr.Float 2.0)));
    Alcotest.test_case "array stores accumulate (no kill)" `Quick (fun () ->
        let _m, f =
          Helpers.with_func (fun b _ ->
              let a = Dialects.Memref.alloca b [ 8 ] Types.f32 in
              Dialects.Memref.store b (A.const_float b 1.0) a [ A.const_index b 0 ];
              Dialects.Memref.store b (A.const_float b 2.0) a [ A.const_index b 1 ];
              ignore (Dialects.Memref.load b a [ A.const_index b 0 ]))
        in
        let rd = RD.analyze_with_args f in
        let load = List.hd (Core.collect_named f "memref.load") in
        let a = Core.result (List.hd (Core.collect_named f "memref.alloca")) 0 in
        let defs = RD.defs_at rd a ~at:load in
        Alcotest.(check int) "both stores reach" 2 (List.length defs.RD.mods));
    Alcotest.test_case "branches join their definitions" `Quick (fun () ->
        let _m, f =
          Helpers.with_func ~args:[ Types.i1 ] (fun b vals ->
              let c = List.hd vals in
              let a = Dialects.Memref.alloca b [ 8 ] Types.f32 in
              ignore
                (Dialects.Scf.if_ b c
                   ~then_:(fun bb ->
                     Dialects.Memref.store bb (A.const_float bb 1.0) a
                       [ A.const_index bb 0 ];
                     [])
                   ~else_:(fun bb ->
                     Dialects.Memref.store bb (A.const_float bb 2.0) a
                       [ A.const_index bb 0 ];
                     [])
                   ());
              ignore (Dialects.Memref.load b a [ A.const_index b 0 ]))
        in
        let rd = RD.analyze_with_args f in
        let load = List.hd (Core.collect_named f "memref.load") in
        let a = Core.result (List.hd (Core.collect_named f "memref.alloca")) 0 in
        let defs = RD.defs_at rd a ~at:load in
        Alcotest.(check int) "both branch stores reach" 2 (List.length defs.RD.mods));
    Alcotest.test_case "loop-carried definitions reach later iterations" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_func (fun b _ ->
              let a = Dialects.Memref.alloca b [ 8 ] Types.f32 in
              let lb = A.const_index b 0 in
              let ub = A.const_index b 4 in
              let one = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb ~ub ~step:one (fun bb iv _ ->
                     (* load sees the store from previous iterations *)
                     ignore (Dialects.Memref.load bb a [ iv ]);
                     Dialects.Memref.store bb (A.const_float bb 1.0) a [ iv ];
                     [])))
        in
        let rd = RD.analyze_with_args f in
        let load = List.hd (Core.collect_named f "memref.load") in
        let a = Core.result (List.hd (Core.collect_named f "memref.alloca")) 0 in
        let defs = RD.defs_at rd a ~at:load in
        Alcotest.(check int) "store reaches across the back edge" 1
          (List.length defs.RD.mods));
    Alcotest.test_case "unknown calls become PMODs of everything" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        ignore (Dialects.Func.declare m "mystery" ~args:[] ~results:[]);
        let f =
          Dialects.Func.func m "f" ~args:[ Types.memref_dyn Types.f32 ] ~results:[]
            (fun b vals ->
              let p = List.hd vals in
              let i = A.const_index b 0 in
              Dialects.Memref.store b (A.const_float b 1.0) p [ i ];
              ignore (Dialects.Func.call b "mystery" ~operands:[] ~results:[]);
              ignore (Dialects.Memref.load b p [ i ]);
              Dialects.Func.return b [])
        in
        let rd = RD.analyze_with_args f in
        let load = List.hd (Core.collect_named f "memref.load") in
        let p = Core.block_arg (Core.func_body f) 0 in
        let defs = RD.defs_at rd p ~at:load in
        Alcotest.(check bool) "call appears as PMOD" true
          (List.exists (fun (o : Core.op) -> o.Core.name = "func.call") defs.RD.pmods));
    Alcotest.test_case "sycl.constructor is a definite definition of its id" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_func (fun b _ ->
              let id =
                Builder.op1 b "memref.alloca" ~operands:[]
                  ~result_type:
                    (Types.memref ~space:Types.Private [ Some 1 ]
                       (Sycl_core.Sycl_types.id 2))
              in
              let i = A.const_index b 3 in
              Sycl_core.Sycl_ops.constructor b "id" id [ i; i ];
              Sycl_core.Sycl_ops.constructor b "id" id [ i; i ];
              ignore (Sycl_core.Sycl_ops.id_get b id (A.const_int b ~ty:Types.i32 0)))
        in
        let rd = RD.analyze_with_args f in
        let get = List.hd (Core.collect_named f "sycl.id.get") in
        let id = Core.result (List.hd (Core.collect_named f "memref.alloca")) 0 in
        let defs = RD.defs_at rd id ~at:get in
        (* The second constructor killed the first. *)
        Alcotest.(check int) "one MOD" 1 (List.length defs.RD.mods);
        Alcotest.(check (list string)) "it is the constructor"
          [ "sycl.constructor" ] (names defs.RD.mods));
  ]

let tests = ("reaching-defs", tests_list)
