(* End-to-end workload tests: every benchmark in the suite must validate
   under all three compiler configurations (scaled-down sizes), and the
   optimizing pipeline must never change results — the central soundness
   property of the reproduction. *)

open Sycl_workloads
module Driver = Sycl_core.Driver

(* Small instances so `dune runtest` stays fast. *)
let small_workloads () =
  [
    Single_kernel.vec_add ~n:256;
    Single_kernel.scalar_prod ~n:256 ~block:16;
    Single_kernel.lin_reg_error ~n:128;
    Single_kernel.lin_reg_coeff ~n:256 ~block:16;
    Single_kernel.kmeans ~n:128 ~k:4;
    Single_kernel.mol_dyn ~n:64 ~neighbors:4;
    Single_kernel.nbody ~n:64;
    Single_kernel.sobel3 ~n:16;
    Single_kernel.sobel5 ~n:16;
    Single_kernel.sobel7 ~n:16;
    Polybench.gemm ~n:16;
    Polybench.two_mm ~n:16;
    Polybench.three_mm ~n:16;
    Polybench.syrk ~n:16;
    Polybench.syr2k ~n:16;
    Polybench.atax ~n:32;
    Polybench.bicg ~n:32;
    Polybench.mvt ~n:32;
    Polybench.gesummv ~n:32;
    Polybench.covariance ~n:16;
    Polybench.correlation ~n:16;
    Polybench.conv2d ~n:16;
    Polybench.conv3d ~n:8;
    Polybench.fdtd2d ~n:8 ~steps:3;
    Polybench.gramschmidt ~n:16;
    Stencil.heat_buffer ~n:40 ~steps:6;
    Stencil.heat_usm ~n:40 ~steps:6;
    Stencil.iso2dfd ~n:16 ~steps:4;
    Stencil.jacobi ~n:16 ~iters:3;
  ]

let config_of = function
  | "dpcpp" -> Driver.config ~verify_each:true Driver.Dpcpp
  | "sycl-mlir" -> Driver.config ~verify_each:true Driver.Sycl_mlir
  | "acpp" -> Driver.config ~verify_each:true Driver.Adaptive_cpp
  | _ -> assert false

let validate_case (w : Common.workload) mode =
  Alcotest.test_case (Printf.sprintf "%s [%s]" w.Common.w_name mode) `Quick
    (fun () ->
      match Common.measure (config_of mode) w with
      | m ->
        Alcotest.(check bool) "results validate" true m.Common.m_valid;
        Alcotest.(check bool) "simulation ran" true (m.Common.m_cycles > 0)
      | exception Common.Unsupported _ ->
        (* Modeled AdaptiveCpp validation failures are expected. *)
        if mode <> "acpp" then Alcotest.fail "unexpectedly unsupported")

let never_slower_case (w : Common.workload) =
  Alcotest.test_case (Printf.sprintf "%s sycl-mlir not absurdly slower" w.Common.w_name)
    `Quick (fun () ->
      let base = Common.measure (config_of "dpcpp") w in
      let opt = Common.measure (config_of "sycl-mlir") w in
      (* Versioning may add small overheads; anything beyond 25% points
         at a real regression in the pipeline. *)
      Alcotest.(check bool) "within 0.8x" true
        (Common.speedup base opt > 0.8))

let ablation_consistency =
  Alcotest.test_case "every ablation config still validates on gemm" `Quick
    (fun () ->
      let w = Polybench.gemm ~n:16 in
      List.iter
        (fun cfg ->
          let m = Common.measure cfg w in
          Alcotest.(check bool) "valid" true m.Common.m_valid)
        [
          Driver.config ~enable_internalization:false Driver.Sycl_mlir;
          Driver.config ~enable_reduction:false Driver.Sycl_mlir;
          Driver.config ~enable_licm:false Driver.Sycl_mlir;
          Driver.config ~enable_host_device:false ~enable_alias_refinement:false
            Driver.Sycl_mlir;
        ])

let gramschmidt_divergence_rejected =
  Alcotest.test_case "gramschmidt candidate rejected as divergent" `Quick (fun () ->
      let w = Polybench.gramschmidt ~n:16 in
      let m = Common.measure (config_of "sycl-mlir") w in
      Alcotest.(check bool) "rejected-divergent stat" true
        (Mlir.Pass.Stats.get m.Common.m_stats
           "loop-internalization/internalization.rejected-divergent"
        >= 1);
      Alcotest.(check int) "nothing prefetched" 0
        (Mlir.Pass.Stats.get m.Common.m_stats
           "loop-internalization/internalization.prefetched"))

let paper_attribution_stats =
  Alcotest.test_case "paper-reported prefetch counts (gemm 2, syr2k 4)" `Quick
    (fun () ->
      let check_prefetch w expected =
        let m = Common.measure (config_of "sycl-mlir") w in
        Alcotest.(check int)
          (w.Common.w_name ^ " prefetched refs")
          expected
          (Mlir.Pass.Stats.get m.Common.m_stats
             "loop-internalization/internalization.prefetched")
      in
      check_prefetch (Polybench.gemm ~n:16) 2;
      check_prefetch (Polybench.syr2k ~n:16) 4)

let qcheck_gemm_equivalence =
  Helpers.qtest ~count:8 "gemm: random sizes keep all configs correct"
    QCheck2.Gen.(int_range 1 3)
    (fun i ->
      let n = 16 * i in
      let w = Polybench.gemm ~n in
      let base = Common.measure (config_of "dpcpp") w in
      let opt = Common.measure (config_of "sycl-mlir") w in
      base.Common.m_valid && opt.Common.m_valid)

let tests =
  let ws = small_workloads () in
  ( "workloads-e2e",
    List.concat_map (fun w -> [ validate_case w "dpcpp"; validate_case w "sycl-mlir" ]) ws
    @ List.map (fun w -> validate_case w "acpp") ws
    @ List.map never_slower_case
        [ Polybench.gemm ~n:16; Single_kernel.vec_add ~n:256;
          Stencil.heat_buffer ~n:40 ~steps:6 ]
    @ [
        ablation_consistency; gramschmidt_divergence_rejected;
        paper_attribution_stats; qcheck_gemm_equivalence;
      ] )
