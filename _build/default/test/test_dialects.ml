(* Dialect registration, op interfaces, and folding tests. *)

open Mlir
module A = Dialects.Arith
module R = Op_registry

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* qcheck: folding a binary arith op agrees with direct evaluation. *)
let fold_agrees name (build : Builder.t -> Core.value -> Core.value -> Core.value)
    (eval : int -> int -> int) =
  Helpers.qtest (name ^ " fold agrees with evaluation")
    QCheck2.Gen.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (x, y) ->
      QCheck2.assume (not (List.mem name [ "divsi"; "remsi" ] && y = 0));
      let _m, f =
        Helpers.with_func (fun b _ ->
            let xv = A.const_int b x in
            let yv = A.const_int b y in
            ignore (build b xv yv))
      in
      let op =
        List.find
          (fun (o : Core.op) -> o.Core.name = "arith." ^ name)
          (Core.collect f ~p:(fun _ -> true))
      in
      match
        (R.info op).R.fold op [| Some (Attr.Int x); Some (Attr.Int y) |]
      with
      | Some (R.Fold_attrs [ Attr.Int r ]) -> r = eval x y
      | _ -> false)

let tests_list =
  [
    Alcotest.test_case "memory effects: load reads, store writes" `Quick (fun () ->
        Helpers.init ();
        let _m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ] (fun b vals ->
              let mem = List.hd vals in
              let i = A.const_index b 0 in
              let v = Dialects.Memref.load b mem [ i ] in
              Dialects.Memref.store b v mem [ i ])
        in
        let load = List.hd (Core.collect_named f "memref.load") in
        let store = List.hd (Core.collect_named f "memref.store") in
        check_bool "load reads" true (R.reads_memory load = Some true);
        check_bool "load does not write" true (R.writes_memory load = Some false);
        check_bool "store writes" true (R.writes_memory store = Some true));
    Alcotest.test_case "pure ops have no effects" `Quick (fun () ->
        Helpers.init ();
        let _m, f =
          Helpers.with_func (fun b _ ->
              let x = A.const_int b 1 in
              ignore (A.addi b x x))
        in
        let add = List.hd (Core.collect_named f "arith.addi") in
        check_bool "pure" true (R.is_pure add);
        check_bool "speculatable" true (R.is_speculatable add));
    Alcotest.test_case "scf.for is a Loop with pure shell" `Quick (fun () ->
        Helpers.init ();
        check_bool "loop control" true
          ((Option.get (R.lookup "scf.for")).R.control = R.Loop);
        check_bool "yield is terminator" true
          (Option.get (R.lookup "scf.yield")).R.terminator);
    Alcotest.test_case "barrier reads and writes anywhere" `Quick (fun () ->
        Helpers.init ();
        let _m, f = Helpers.with_func (fun b _ -> Dialects.Gpu.barrier b) in
        let bar = List.hd (Core.collect_named f "gpu.barrier") in
        check_bool "not pure" false (R.is_pure bar);
        check_bool "writes" true (R.writes_memory bar = Some true));
    Alcotest.test_case "sycl getters: uniformity trait" `Quick (fun () ->
        Helpers.init ();
        check_bool "global id is non-uniform source" true
          (Option.get (R.lookup "sycl.nd_item.get_global_id")).R.non_uniform_source;
        check_bool "group id is uniform" false
          (Option.get (R.lookup "sycl.nd_item.get_group_id")).R.non_uniform_source);
    Alcotest.test_case "sycl.constructor writes its out-operand" `Quick (fun () ->
        Helpers.init ();
        let _m, f =
          Helpers.with_func (fun b _ ->
              let id =
                Builder.op1 b "memref.alloca" ~operands:[]
                  ~result_type:
                    (Types.memref ~space:Types.Private [ Some 1 ] (Sycl_core.Sycl_types.id 2))
              in
              let i = A.const_index b 1 in
              Sycl_core.Sycl_ops.constructor b "id" id [ i; i ])
        in
        let ctor = List.hd (Core.collect_named f "sycl.constructor") in
        check_bool "writes operand 0" true
          (R.memory_effects ctor = Some [ (R.Write, R.On_operand 0) ]));
    Alcotest.test_case "direct subscript is pure; id-struct subscript reads" `Quick
      (fun () ->
        Helpers.init ();
        let acc_ty = Sycl_core.Sycl_types.accessor ~dims:2 Types.f32 in
        let _m, f =
          Helpers.with_func ~args:[ acc_ty ] (fun b vals ->
              let acc = List.hd vals in
              let i = A.const_index b 0 in
              ignore (Sycl_core.Sycl_ops.accessor_subscript_multi b acc [ i; i ]);
              let id =
                Builder.op1 b "memref.alloca" ~operands:[]
                  ~result_type:
                    (Types.memref ~space:Types.Private [ Some 1 ] (Sycl_core.Sycl_types.id 2))
              in
              Sycl_core.Sycl_ops.constructor b "id" id [ i; i ];
              ignore (Sycl_core.Sycl_ops.accessor_subscript b acc id))
        in
        match Core.collect_named f "sycl.accessor.subscript" with
        | [ direct; via_id ] ->
          check_bool "direct pure" true (R.is_pure direct);
          check_bool "via id reads" true (R.reads_memory via_id = Some true)
        | _ -> Alcotest.fail "expected two subscripts");
    Alcotest.test_case "memref.dim folds for static shapes" `Quick (fun () ->
        Helpers.init ();
        let _m, f =
          Helpers.with_func (fun b _ ->
              let mem = Dialects.Memref.alloca b [ 4; 8 ] Types.f32 in
              ignore (Dialects.Memref.dim b mem 1))
        in
        let dim = List.hd (Core.collect_named f "memref.dim") in
        check_bool "folds to 8" true
          (match (R.info dim).R.fold dim [| None; Some (Attr.Int 1) |] with
          | Some (R.Fold_attrs [ Attr.Int 8 ]) -> true
          | _ -> false));
    Alcotest.test_case "select folds on constant condition" `Quick (fun () ->
        Helpers.init ();
        let _m, f =
          Helpers.with_func (fun b _ ->
              let c = A.const_bool b true in
              let x = A.const_int b 1 in
              let y = A.const_int b 2 in
              ignore (A.select b c x y))
        in
        let sel = List.hd (Core.collect_named f "arith.select") in
        check_bool "selects lhs" true
          (match
             (R.info sel).R.fold sel [| Some (Attr.Bool true); None; None |]
           with
          | Some (R.Fold_values [ v ]) -> Core.value_equal v (Core.operand sel 1)
          | _ -> false));
    Alcotest.test_case "addi identity x+0" `Quick (fun () ->
        Helpers.init ();
        let _m, f =
          Helpers.with_func ~args:[ Types.i64 ] (fun b vals ->
              let x = List.hd vals in
              let z = A.const_int b 0 in
              ignore (A.addi b x z))
        in
        let add = List.hd (Core.collect_named f "arith.addi") in
        check_bool "folds to x" true
          (match (R.info add).R.fold add [| None; Some (Attr.Int 0) |] with
          | Some (R.Fold_values [ v ]) -> Core.value_equal v (Core.operand add 0)
          | _ -> false));
    Alcotest.test_case "affine.for accessor helpers" `Quick (fun () ->
        Helpers.init ();
        let _m, f =
          Helpers.with_func ~args:[ Types.Index ] (fun b vals ->
              let n = List.hd vals in
              ignore
                (Dialects.Affine_ops.for_ b ~lb:(Dialects.Affine_ops.Const 2)
                   ~ub:(Dialects.Affine_ops.Value n) ~step:3 (fun bb iv _ ->
                     ignore (A.addi bb iv iv);
                     [])))
        in
        let loop = List.hd (Core.collect_named f "affine.for") in
        check_int "step" 3 (Dialects.Affine_ops.for_step loop);
        check_bool "no const bounds (ub dynamic)" true
          (Dialects.Affine_ops.for_const_bounds loop = None);
        check_int "one ub operand" 1
          (List.length (Dialects.Affine_ops.for_ub_operands loop));
        check_int "no lb operands" 0
          (List.length (Dialects.Affine_ops.for_lb_operands loop)));
    Alcotest.test_case "func declaration vs definition" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        let d = Dialects.Func.declare m "ext" ~args:[ Types.i64 ] ~results:[] in
        check_bool "is declaration" true (Dialects.Func.is_declaration d);
        Helpers.check_verifies m);
    fold_agrees "addi" A.addi ( + );
    fold_agrees "subi" A.subi ( - );
    fold_agrees "muli" A.muli ( * );
    fold_agrees "divsi" A.divsi (fun a b -> if b = 0 then 0 else a / b);
    fold_agrees "maxsi" A.maxsi max;
    fold_agrees "minsi" A.minsi min;
  ]

let tests = ("dialects", tests_list)
