(* Device-simulator tests: interpretation semantics, barrier scheduling,
   divergent-barrier deadlock detection, and the coalescing cost model. *)

open Mlir
module A = Dialects.Arith
module K = Sycl_frontend.Kernel
module S = Sycl_core.Sycl_types
module Interp = Sycl_sim.Interp
module Memory = Sycl_sim.Memory
module Cost = Sycl_sim.Cost

let acc_desc ?(range = [| 16 |]) alloc =
  Interp.Acc
    {
      Interp.a_alloc = alloc;
      a_range = range;
      a_mem_range = range;
      a_offset = Array.map (fun _ -> 0) range;
      a_is_float = true;
    }

let launch ?(wg = [ 16 ]) ?(global = [ 16 ]) m k args =
  Interp.launch ~module_op:m ~kernel:k ~args ~global ~wg_size:wg ()

let floats alloc =
  Array.map
    (function Memory.F f -> f | Memory.I i -> float_of_int i)
    alloc.Memory.data

let tests_list =
  [
    Alcotest.test_case "elementwise kernel computes correctly" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"twice" ~dims:1
            ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              match args with
              | [ a; c ] ->
                let i = K.gid b item 0 in
                K.acc_set b c [ i ] (K.mulf b (K.fconst b 2.0) (K.acc_get b a [ i ]))
              | _ -> assert false)
        in
        let a = Memory.alloc ~label:"a" ~size:16 () in
        let c = Memory.alloc ~label:"c" ~size:16 () in
        Array.iteri (fun i _ -> a.Memory.data.(i) <- Memory.F (float_of_int i)) a.Memory.data;
        ignore (launch m k [| Interp.Item; acc_desc a; acc_desc c |]);
        Array.iteri
          (fun i x -> Alcotest.(check (float 1e-6)) "c[i]" (2.0 *. float_of_int i) x)
          (floats c));
    Alcotest.test_case "loops, ifs and iter_args interpret correctly" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"sum_odd" ~dims:1
            ~args:[ K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              let out = List.hd args in
              let i = K.gid b item 0 in
              let zero = A.const_index b 0 in
              let one = A.const_index b 1 in
              let two = A.const_index b 2 in
              let ten = A.const_index b 10 in
              (* sum of odd j in [0, 10) = 25 *)
              let loop =
                Dialects.Scf.for_ b ~lb:zero ~ub:ten ~step:one
                  ~iter_args:[ K.fconst b 0.0 ]
                  (fun bb j acc ->
                    let r = A.remsi bb j two in
                    let is_odd = A.cmpi bb A.Eq r one in
                    let if_op =
                      Dialects.Scf.if_ bb is_odd ~result_types:[ Types.f32 ]
                        ~then_:(fun b2 ->
                          [ K.addf b2 (List.hd acc)
                              (A.sitofp b2 (A.index_cast b2 j Types.i64) Types.f32) ])
                        ~else_:(fun _ -> [ List.hd acc ])
                        ()
                    in
                    [ Core.result if_op 0 ])
              in
              K.acc_set b out [ i ] (Core.result loop 0))
        in
        let c = Memory.alloc ~label:"c" ~size:16 () in
        ignore (launch m k [| Interp.Item; acc_desc c |]);
        Array.iter (fun x -> Alcotest.(check (float 1e-6)) "sum" 25.0 x) (floats c));
    Alcotest.test_case "device function calls work" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        ignore
          (Dialects.Func.func m "square" ~args:[ Types.f32 ] ~results:[ Types.f32 ]
             (fun b vals ->
               let x = List.hd vals in
               Dialects.Func.return b [ K.mulf b x x ]));
        let k =
          Sycl_frontend.Kernel.define m ~name:"k" ~dims:1
            ~args:[ K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              let out = List.hd args in
              let i = K.gid b item 0 in
              let x = A.sitofp b (A.index_cast b i Types.i64) Types.f32 in
              let r = Dialects.Func.call1 b "square" ~operands:[ x ] ~result:Types.f32 in
              K.acc_set b out [ i ] r)
        in
        let c = Memory.alloc ~label:"c" ~size:16 () in
        ignore (launch m k [| Interp.Item; acc_desc c |]);
        Array.iteri
          (fun i x ->
            Alcotest.(check (float 1e-6)) "i*i" (float_of_int (i * i)) x)
          (floats c));
    Alcotest.test_case "barrier synchronizes cooperative local-memory use" `Quick
      (fun () ->
        (* Each work-item writes tile[lid], barrier, then reads its
           neighbour's slot (reversal): without correct phase scheduling
           work-item 0 would read an unwritten slot. *)
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"rev" ~dims:1 ~nd:true
            ~args:[ K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              let out = List.hd args in
              let lid = K.lid b item 0 in
              let gid = K.gid b item 0 in
              let tile = Dialects.Gpu.alloc_local b [ 16 ] Types.f32 in
              let v = A.sitofp b (A.index_cast b lid Types.i64) Types.f32 in
              Dialects.Memref.store b v tile [ lid ];
              Dialects.Gpu.barrier b;
              let fifteen = A.const_index b 15 in
              let mirror = A.subi b fifteen lid in
              K.acc_set b out [ gid ] (Dialects.Memref.load b tile [ mirror ]))
        in
        let c = Memory.alloc ~label:"c" ~size:16 () in
        let stats = launch m k [| Interp.Item; acc_desc c |] in
        Array.iteri
          (fun i x ->
            Alcotest.(check (float 1e-6)) "mirror" (float_of_int (15 - i)) x)
          (floats c);
        Alcotest.(check int) "one barrier round" 1 stats.Cost.barriers);
    Alcotest.test_case "divergent barrier deadlocks (detected)" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"bad" ~dims:1 ~nd:true ~args:[]
            (fun b ~item ~args:_ ->
              let lid = K.lid b item 0 in
              let zero = A.const_index b 0 in
              let c = A.cmpi b A.Eq lid zero in
              ignore
                (Dialects.Scf.if_ b c
                   ~then_:(fun bb ->
                     Dialects.Gpu.barrier bb;
                     [])
                   ()))
        in
        Alcotest.(check bool) "raises Barrier_divergence" true
          (match launch m k [| Interp.Item |] with
          | _ -> false
          | exception Interp.Barrier_divergence -> true));
    Alcotest.test_case "coalesced loads cost one transaction per sub-group" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"coal" ~dims:1
            ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              match args with
              | [ a; c ] ->
                let i = K.gid b item 0 in
                K.acc_set b c [ i ] (K.acc_get b a [ i ])
              | _ -> assert false)
        in
        let a = Memory.alloc ~label:"a" ~size:64 () in
        let c = Memory.alloc ~label:"c" ~size:64 () in
        let stats =
          launch ~global:[ 64 ] ~wg:[ 64 ] m k
            [| Interp.Item; acc_desc ~range:[| 64 |] a; acc_desc ~range:[| 64 |] c |]
        in
        (* 64 items / 16-wide sub-groups = 4 sub-groups; each does one
           load line + one store line. *)
        Alcotest.(check int) "8 transactions" 8 stats.Cost.global_transactions);
    Alcotest.test_case "strided loads cost one transaction per work-item" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"strided" ~dims:1
            ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              match args with
              | [ a; c ] ->
                let i = K.gid b item 0 in
                let stride = A.const_index b 16 in
                K.acc_set b c [ i ] (K.acc_get b a [ A.muli b i stride ])
              | _ -> assert false)
        in
        let a = Memory.alloc ~label:"a" ~size:1024 () in
        let c = Memory.alloc ~label:"c" ~size:64 () in
        let stats =
          launch ~global:[ 64 ] ~wg:[ 64 ] m k
            [| Interp.Item; acc_desc ~range:[| 1024 |] a; acc_desc ~range:[| 64 |] c |]
        in
        (* Loads: 64 distinct lines; stores: 4 lines. *)
        Alcotest.(check int) "68 transactions" 68 stats.Cost.global_transactions);
    Alcotest.test_case "private allocas cost no memory transactions" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"priv" ~dims:1 ~args:[]
            (fun b ~item ~args:_ ->
              let _i = K.gid b item 0 in
              let p = Dialects.Memref.alloca b [ 4 ] Types.f32 in
              Dialects.Memref.store b (K.fconst b 1.0) p [ A.const_index b 0 ];
              ignore (Dialects.Memref.load b p [ A.const_index b 0 ]))
        in
        let stats = launch m k [| Interp.Item |] in
        Alcotest.(check int) "no global transactions" 0 stats.Cost.global_transactions;
        Alcotest.(check int) "no local transactions" 0 stats.Cost.local_transactions);
    Alcotest.test_case "constant-cached data uses the constant class" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"constk" ~dims:1
            ~args:[ K.Ptr Types.f32; K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              match args with
              | [ p; c ] ->
                let i = K.gid b item 0 in
                K.acc_set b c [ i ] (K.ptr_get b p (A.const_index b 0))
              | _ -> assert false)
        in
        let tbl = Memory.alloc ~label:"tbl" ~size:4 () in
        tbl.Memory.constant_cached <- true;
        let c = Memory.alloc ~label:"c" ~size:16 () in
        let stats =
          launch m k [| Interp.Item; Interp.Mem (Memory.full_view tbl); acc_desc c |]
        in
        Alcotest.(check bool) "constant transactions recorded" true
          (stats.Cost.const_transactions > 0));
    Alcotest.test_case "ranged accessor offsets shift addressing" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"ranged" ~dims:1
            ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              match args with
              | [ a; c ] ->
                let i = K.gid b item 0 in
                K.acc_set b c [ i ] (K.acc_get b a [ i ])
              | _ -> assert false)
        in
        let a = Memory.alloc ~label:"a" ~size:32 () in
        Array.iteri (fun i _ -> a.Memory.data.(i) <- Memory.F (float_of_int i)) a.Memory.data;
        let c = Memory.alloc ~label:"c" ~size:8 () in
        let ranged =
          Interp.Acc
            {
              Interp.a_alloc = a;
              a_range = [| 8 |];
              a_mem_range = [| 32 |];
              a_offset = [| 16 |];
              a_is_float = true;
            }
        in
        ignore
          (launch ~global:[ 8 ] ~wg:[ 8 ] m k
             [| Interp.Item; ranged; acc_desc ~range:[| 8 |] c |]);
        Array.iteri
          (fun i x -> Alcotest.(check (float 1e-6)) "offset applied" (float_of_int (16 + i)) x)
          (floats c));
    Alcotest.test_case "out-of-bounds access raises" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"oob" ~dims:1
            ~args:[ K.Acc (1, S.Read, Types.f32) ]
            (fun b ~item ~args ->
              let a = List.hd args in
              let i = K.gid b item 0 in
              let big = A.const_index b 1000 in
              ignore (K.acc_get b a [ A.addi b i big ]))
        in
        let a = Memory.alloc ~label:"a" ~size:16 () in
        Alcotest.(check bool) "raises Out_of_bounds" true
          (match launch m k [| Interp.Item; acc_desc a |] with
          | _ -> false
          | exception Memory.Out_of_bounds _ -> true));
    Alcotest.test_case "mismatched global/wg sizes rejected" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"k" ~dims:1 ~args:[]
            (fun _b ~item:_ ~args:_ -> ())
        in
        Alcotest.(check bool) "raises Sim_error" true
          (match launch ~global:[ 10 ] ~wg:[ 4 ] m k [| Interp.Item |] with
          | _ -> false
          | exception Interp.Sim_error _ -> true));
    Alcotest.test_case "2-D launch covers the whole grid exactly once" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let k =
          Sycl_frontend.Kernel.define m ~name:"grid" ~dims:2
            ~args:[ K.Acc (2, S.Read_write, Types.f32) ]
            (fun b ~item ~args ->
              let c = List.hd args in
              let i = K.gid b item 0 and j = K.gid b item 1 in
              K.acc_update b c [ i; j ] (fun v -> K.addf b v (K.fconst b 1.0)))
        in
        let c = Memory.alloc ~label:"c" ~size:(8 * 8) () in
        let stats =
          launch ~global:[ 8; 8 ] ~wg:[ 4; 4 ] m k
            [| Interp.Item; acc_desc ~range:[| 8; 8 |] c |]
        in
        Alcotest.(check int) "4 work-groups" 4 stats.Cost.work_groups;
        Alcotest.(check int) "64 work-items" 64 stats.Cost.work_items;
        Array.iter (fun x -> Alcotest.(check (float 1e-6)) "each once" 1.0 x) (floats c));
  ]

let tests = ("simulator", tests_list)
