(* Host raising (Section VII-A) and host-device optimization
   (Section VII-B) tests. *)

open Mlir
module A = Dialects.Arith
module K = Sycl_frontend.Kernel
module Host = Sycl_frontend.Host
module S = Sycl_core.Sycl_types
module HP = Sycl_core.Host_device_prop

(* A canonical two-accessor program, sizes constant or from an argument. *)
let program ~const_size m =
  ignore
    (K.define m ~name:"k" ~dims:1
       ~args:
         [ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32);
           K.Scal Types.f32 ]
       (fun b ~item ~args ->
         match args with
         | [ a; c; alpha ] ->
           let i = K.gid b item 0 in
           let n = K.grange b item 0 in
           let dim0 = A.const_int b ~ty:Types.i32 0 in
           let off = Sycl_core.Sycl_ops.accessor_get_offset b a dim0 in
           let j = K.addi b i off in
           let v = K.mulf b alpha (K.acc_get b a [ j ]) in
           let nf = A.sitofp b (A.index_cast b n Types.i64) Types.f32 in
           K.acc_set b c [ i ] (K.divf b v nf)
         | _ -> assert false));
  let size = if const_size then Host.Const 512 else Host.Arg 2 in
  ignore
    (Host.emit m
       {
         Host.host_args =
           [ Types.memref_dyn Types.f32; Types.memref_dyn Types.f32; Types.Index ];
         buffers =
           [
             { Host.buf_data_arg = 0; buf_dims = [ size ]; buf_element = Types.f32 };
             { Host.buf_data_arg = 1; buf_dims = [ size ]; buf_element = Types.f32 };
           ];
         globals = [];
         body =
           [
             Host.Submit
               {
                 Host.cg_kernel = "k";
                 cg_global = [ size ];
                 cg_local = None;
                 cg_captures =
                   [
                     Host.Capture_acc (0, S.Read); Host.Capture_acc (1, S.Write);
                     Host.Capture_scalar (Attr.Float 2.5);
                   ];
               };
           ];
       })

let raise_module m =
  Pass.run_pipeline ~verify_each:true
    [ Sycl_core.Host_raising.pass; Sycl_core.Canonicalize.pass; Sycl_core.Cse.pass ]
    m

let tests_list =
  [
    Alcotest.test_case "raising removes all runtime-ABI calls" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        program ~const_size:true m;
        Alcotest.(check bool) "llvm.calls present before" true
          (Helpers.count_ops m "llvm.call" > 0);
        ignore (raise_module m);
        Alcotest.(check int) "no llvm.calls left" 0 (Helpers.count_ops m "llvm.call");
        (* The paper's Listing 9 ops are all present. *)
        List.iter
          (fun (name, expected) ->
            Alcotest.(check int) name expected (Helpers.count_ops m name))
          [
            ("sycl.host.queue_ctor", 1); ("sycl.host.buffer_ctor", 2);
            ("sycl.host.submit", 1); ("sycl.host.accessor_ctor", 2);
            ("sycl.host.set_captured", 3); ("sycl.host.set_nd_range", 1);
            ("sycl.host.parallel_for", 1); ("sycl.host.buffer_dtor", 2);
            ("sycl.host.wait", 1);
          ]);
    Alcotest.test_case "raised accessor carries mode and buffer link" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        program ~const_size:true m;
        ignore (raise_module m);
        let ctors = Core.collect_named m "sycl.host.accessor_ctor" in
        let modes = List.filter_map Sycl_core.Sycl_host_ops.accessor_ctor_mode ctors in
        Alcotest.(check bool) "read + write modes" true
          (List.mem S.Read modes && List.mem S.Write modes);
        List.iter
          (fun ctor ->
            let buf = Sycl_core.Sycl_host_ops.accessor_ctor_buffer ctor in
            Alcotest.(check bool) "buffer-typed operand" true
              (match buf.Core.vty with S.Buffer _ -> true | _ -> false))
          ctors);
    Alcotest.test_case "launch sites discovered with captures and nd-range" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        program ~const_size:true m;
        ignore (raise_module m);
        match HP.launch_sites m with
        | [ site ] ->
          Alcotest.(check int) "three captures" 3 (List.length site.HP.ls_captures);
          Alcotest.(check int) "1-D global" 1 (List.length site.HP.ls_global);
          Alcotest.(check bool) "kernel resolved" true
            (Core.func_sym site.HP.ls_kernel = "k")
        | other -> Alcotest.failf "expected 1 site, got %d" (List.length other));
    Alcotest.test_case
      "constant ND-range and accessor members propagate into the kernel" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        program ~const_size:true m;
        ignore (raise_module m);
        let _ =
          Pass.run_pipeline ~verify_each:true
            [ HP.pass (); Sycl_core.Canonicalize.pass; Sycl_core.Cse.pass;
              Sycl_core.Dce.pass; Sycl_core.Dead_arg_elim.pass ]
            m
        in
        let k = Option.get (Core.lookup_func m "k") in
        Alcotest.(check int) "no range getters left" 0
          (Helpers.count_ops k "sycl.item.get_range");
        Alcotest.(check int) "no offset getters left" 0
          (Helpers.count_ops k "sycl.accessor.get_offset");
        Alcotest.(check bool) "global size recorded" true
          (Core.attr k "sycl.global_size" = Some (Attr.Array [ Attr.Int 512 ]));
        Alcotest.(check bool) "wg size predicted" true
          (Core.attr k "sycl.wg_size" <> None);
        (* The constant scalar capture killed argument 3. *)
        Alcotest.(check bool) "alpha is dead" true
          (List.mem 3 (Sycl_core.Dead_arg_elim.dead_args k));
        (* Accessors over distinct buffers are provably disjoint. *)
        Alcotest.(check bool) "noalias pair recorded" true
          (Sycl_core.Alias.noalias_pairs k <> []));
    Alcotest.test_case "dynamic sizes: nothing folds but noalias still applies"
      `Quick (fun () ->
        let m = Helpers.fresh_module () in
        program ~const_size:false m;
        ignore (raise_module m);
        let _ =
          Pass.run_pipeline ~verify_each:true
            [ HP.pass (); Sycl_core.Canonicalize.pass; Sycl_core.Dce.pass ]
            m
        in
        let k = Option.get (Core.lookup_func m "k") in
        Alcotest.(check bool) "range getter survives" true
          (Helpers.count_ops k "sycl.item.get_range" > 0);
        Alcotest.(check bool) "no global size attr" true
          (Core.attr k "sycl.global_size" = None);
        Alcotest.(check bool) "noalias pair still recorded" true
          (Sycl_core.Alias.noalias_pairs k <> []));
    Alcotest.test_case "constant global capture marks sycl.constant_args" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        ignore
          (K.define m ~name:"k" ~dims:1 ~args:[ K.Ptr Types.f32 ]
             (fun b ~item ~args ->
               let p = List.hd args in
               let i = K.gid b item 0 in
               ignore (K.ptr_get b p i)));
        ignore
          (Host.emit m
             {
               Host.host_args = [ Types.Index ];
               buffers = [];
               globals = [ ("tbl", Attr.Dense_float [| 1.0; 2.0; 3.0 |]) ];
               body =
                 [
                   Host.Submit
                     {
                       Host.cg_kernel = "k";
                       cg_global = [ Host.Arg 0 ];
                       cg_local = None;
                       cg_captures = [ Host.Capture_global "tbl" ];
                     };
                 ];
             });
        ignore (raise_module m);
        let _ = Pass.run_pipeline ~verify_each:true [ HP.pass () ] m in
        let k = Option.get (Core.lookup_func m "k") in
        Alcotest.(check bool) "constant arg recorded" true
          (Core.attr k "sycl.constant_args" = Some (Attr.Array [ Attr.Int 1 ])));
    Alcotest.test_case "failed raising leaves the call and counts it" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        (* An accessor_ctor with a non-constant mode cannot be raised. *)
        ignore
          (Dialects.Func.func m "main" ~args:[ Types.i64 ] ~results:[]
             (fun b vals ->
               let mode = List.hd vals in
               let q =
                 Dialects.Llvm.call1 b Sycl_core.Runtime_abi.queue_ctor
                   ~operands:[] ~result:Types.i64
               in
               let h =
                 Dialects.Llvm.call1 b Sycl_core.Runtime_abi.submit ~operands:[ q ]
                   ~result:Types.i64
               in
               let data =
                 Builder.op1 b "llvm.alloca" ~operands:[]
                   ~result_type:(Types.memref ~space:Types.Private [ Some 4 ] Types.f32)
               in
               let d = A.const_index b 4 in
               let buf =
                 Dialects.Llvm.call1 b Sycl_core.Runtime_abi.buffer_ctor
                   ~operands:[ data; d ] ~result:Types.i64
               in
               let ranged = A.const_int b 0 in
               ignore
                 (Dialects.Llvm.call1 b Sycl_core.Runtime_abi.accessor_ctor
                    ~operands:[ buf; h; mode; ranged ] ~result:Types.i64);
               Dialects.Func.return b []));
        let stats = Pass.Stats.create () in
        Sycl_core.Host_raising.pass.Pass.run m stats;
        Alcotest.(check int) "one failure" 1 (Pass.Stats.get stats "raising.failed");
        Alcotest.(check int) "the bad call survives" 1 (Helpers.count_ops m "llvm.call"));
    Alcotest.test_case "ranged accessor raising keeps range and offset operands"
      `Quick (fun () ->
        let m = Helpers.fresh_module () in
        ignore
          (K.define m ~name:"k" ~dims:1 ~args:[ K.Acc (1, S.Read, Types.f32) ]
             (fun b ~item ~args ->
               let i = K.gid b item 0 in
               ignore (K.acc_get b (List.hd args) [ i ])));
        ignore
          (Host.emit m
             {
               Host.host_args = [ Types.memref_dyn Types.f32 ];
               buffers =
                 [ { Host.buf_data_arg = 0; buf_dims = [ Host.Const 64 ];
                     buf_element = Types.f32 } ];
               globals = [];
               body =
                 [
                   Host.Submit
                     {
                       Host.cg_kernel = "k";
                       cg_global = [ Host.Const 32 ];
                       cg_local = None;
                       cg_captures =
                         [ Host.Capture_acc_ranged
                             (0, S.Read, [ Host.Const 32 ], [ Host.Const 16 ]) ];
                     };
                 ];
             });
        ignore (raise_module m);
        let ctor = List.hd (Core.collect_named m "sycl.host.accessor_ctor") in
        Alcotest.(check bool) "marked ranged" true
          (Core.attr ctor "ranged" = Some (Attr.Bool true));
        Alcotest.(check int) "buffer, handler, range, offset" 4
          (Core.num_operands ctor));
  ]

let tests = ("host-raising-and-propagation", tests_list)
