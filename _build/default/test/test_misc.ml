(* Miscellaneous unit coverage: type/attr helpers, printer summaries,
   SYCL type metadata, registry value-level effect queries, host-side
   control flow. *)

open Mlir
module A = Dialects.Arith
module S = Sycl_core.Sycl_types
module R = Op_registry

let tests_list =
  [
    Alcotest.test_case "type predicates" `Quick (fun () ->
        Alcotest.(check bool) "i32 is int" true (Types.is_integer Types.i32);
        Alcotest.(check bool) "index is int-or-index" true
          (Types.is_int_or_index Types.Index);
        Alcotest.(check bool) "f32 is float" true (Types.is_float Types.f32);
        Alcotest.(check bool) "memref is memref" true
          (Types.is_memref (Types.memref_dyn Types.f32));
        Alcotest.(check bool) "f32 not memref" false (Types.is_memref Types.f32));
    Alcotest.test_case "memspace string round trip" `Quick (fun () ->
        List.iter
          (fun sp ->
            Alcotest.(check bool) "round trips" true
              (Types.memspace_of_string (Types.memspace_to_string sp) = Some sp))
          [ Types.Global; Types.Local; Types.Private ]);
    Alcotest.test_case "attr accessors" `Quick (fun () ->
        Alcotest.(check (option int)) "int" (Some 3) (Attr.as_int (Attr.Int 3));
        Alcotest.(check (option int)) "bool as int" (Some 1) (Attr.as_int (Attr.Bool true));
        Alcotest.(check (option bool)) "int as bool" (Some true) (Attr.as_bool (Attr.Int 2));
        Alcotest.(check bool) "string mismatch" true (Attr.as_int (Attr.String "x") = None);
        Alcotest.(check bool) "numeric" true (Attr.is_numeric (Attr.Float 1.0));
        Alcotest.(check bool) "symbol not numeric" false (Attr.is_numeric (Attr.Symbol "s")));
    Alcotest.test_case "sycl type metadata" `Quick (fun () ->
        Alcotest.(check int) "id<3> cells" 3 (S.flat_cells (S.id 3));
        Alcotest.(check int) "item<2> cells" 6 (S.flat_cells (S.item 2));
        Alcotest.(check int) "nd_item<2> cells" 12 (S.flat_cells (S.nd_item 2));
        Alcotest.(check (option int)) "accessor dims" (Some 2)
          (S.dims_of (S.accessor ~dims:2 Types.f32));
        Alcotest.(check bool) "item is item-like" true (S.is_item_like (S.item 1));
        Alcotest.(check bool) "accessor detected" true
          (S.is_accessor (S.local_accessor ~dims:1 Types.f32)));
    Alcotest.test_case "printer summary is concise" `Quick (fun () ->
        Helpers.init ();
        let _m, f =
          Helpers.with_func ~args:[ Types.i64 ] (fun b vals ->
              ignore (A.addi b (List.hd vals) (List.hd vals)))
        in
        let add = List.hd (Core.collect_named f "arith.addi") in
        let s = Printer.summary add in
        Alcotest.(check bool) "mentions op name" true
          (String.length s < 40
          && String.sub s 0 10 = "arith.addi"));
    Alcotest.test_case "effects_on_value distinguishes operands" `Quick (fun () ->
        Helpers.init ();
        let _m, f =
          Helpers.with_func
            ~args:[ Types.memref_dyn Types.f32; Types.memref_dyn Types.f32 ]
            (fun b vals ->
              match vals with
              | [ dst; src ] ->
                let i = A.const_index b 0 in
                let v = Dialects.Memref.load b src [ i ] in
                Dialects.Memref.store b v dst [ i ]
              | _ -> assert false)
        in
        let store = List.hd (Core.collect_named f "memref.store") in
        let dst = Core.block_arg (Core.func_body f) 0 in
        let src = Core.block_arg (Core.func_body f) 1 in
        Alcotest.(check bool) "writes dst" true
          (R.effects_on_value store dst = Some [ R.Write ]);
        Alcotest.(check bool) "does not touch src" true
          (R.effects_on_value store src = Some []));
    Alcotest.test_case "host interpreter handles scf.if and arithmetic" `Quick
      (fun () ->
        (* A host program whose iteration count comes through host-side
           arithmetic and a conditional. *)
        let module K = Sycl_frontend.Kernel in
        let module Host = Sycl_frontend.Host in
        let module HI = Sycl_runtime.Host_interp in
        let module Memory = Sycl_sim.Memory in
        let m = Helpers.fresh_module () in
        ignore
          (K.define m ~name:"inc" ~dims:1
             ~args:[ K.Acc (1, S.Read_write, Types.f32) ]
             (fun b ~item ~args ->
               let i = K.gid b item 0 in
               K.acc_update b (List.hd args) [ i ] (fun v ->
                   K.addf b v (K.fconst b 1.0))));
        (* Build main by hand to include host-side if/arith. *)
        ignore
          (Host.emit m
             {
               Host.host_args = [ Types.memref_dyn Types.f32; Types.Index ];
               buffers =
                 [ { Host.buf_data_arg = 0; buf_dims = [ Host.Arg 1 ];
                     buf_element = Types.f32 } ];
               globals = [];
               body =
                 [ Host.Repeat
                     ( Host.Const 3,
                       [ Host.Submit
                           { Host.cg_kernel = "inc"; cg_global = [ Host.Arg 1 ];
                             cg_local = None;
                             cg_captures = [ Host.Capture_acc (0, S.Read_write) ] } ] ) ];
             });
        let _ = Pass.run_pipeline [ Sycl_core.Host_raising.pass ] m in
        let data = Memory.alloc ~size:8 () in
        let r =
          HI.run ~module_op:m
            [ HI.Scalar (Sycl_sim.Interp.Mem (Memory.full_view data));
              HI.Scalar (Sycl_sim.Interp.I 8) ]
        in
        Alcotest.(check int) "three launches" 3 r.HI.kernel_launches;
        Alcotest.(check (float 1e-6)) "value incremented thrice" 3.0
          (Memory.cell_to_float data.Memory.data.(0)));
    Alcotest.test_case "item linear id linearizes row-major" `Quick (fun () ->
        let module K = Sycl_frontend.Kernel in
        let module Interp = Sycl_sim.Interp in
        let module Memory = Sycl_sim.Memory in
        let m = Helpers.fresh_module () in
        let k =
          K.define m ~name:"lin" ~dims:2 ~args:[ K.Acc (2, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              let out = List.hd args in
              let i = K.gid b item 0 and j = K.gid b item 1 in
              let l =
                Builder.op1 b "sycl.item.get_linear_id" ~operands:[ item ]
                  ~result_type:Types.Index
              in
              K.acc_set b out [ i; j ]
                (A.sitofp b (A.index_cast b l Types.i64) Types.f32))
        in
        let out = Memory.alloc ~size:16 () in
        let desc =
          Interp.Acc
            { Interp.a_alloc = out; a_range = [| 4; 4 |]; a_mem_range = [| 4; 4 |];
              a_offset = [| 0; 0 |]; a_is_float = true }
        in
        ignore
          (Interp.launch ~module_op:m ~kernel:k ~args:[| Interp.Item; desc |]
             ~global:[ 4; 4 ] ~wg_size:[ 2; 2 ] ());
        let ok = ref true in
        Array.iteri
          (fun idx c ->
            if Float.abs (Memory.cell_to_float c -. float_of_int idx) > 1e-6 then
              ok := false)
          out.Memory.data;
        Alcotest.(check bool) "linear ids" true !ok);
    Alcotest.test_case "group ids exposed correctly" `Quick (fun () ->
        let module K = Sycl_frontend.Kernel in
        let module Interp = Sycl_sim.Interp in
        let module Memory = Sycl_sim.Memory in
        let m = Helpers.fresh_module () in
        let k =
          K.define m ~name:"grp" ~dims:1 ~nd:true
            ~args:[ K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              let out = List.hd args in
              let i = K.gid b item 0 in
              let dim = A.const_int b ~ty:Types.i32 0 in
              let g = Sycl_core.Sycl_ops.nd_item_get_group_id b item dim in
              K.acc_set b out [ i ]
                (A.sitofp b (A.index_cast b g Types.i64) Types.f32))
        in
        let out = Memory.alloc ~size:16 () in
        let desc =
          Interp.Acc
            { Interp.a_alloc = out; a_range = [| 16 |]; a_mem_range = [| 16 |];
              a_offset = [| 0 |]; a_is_float = true }
        in
        ignore
          (Interp.launch ~module_op:m ~kernel:k ~args:[| Interp.Item; desc |]
             ~global:[ 16 ] ~wg_size:[ 4 ] ());
        Alcotest.(check (float 1e-6)) "item 9 in group 2" 2.0
          (Memory.cell_to_float out.Memory.data.(9)));
  ]

let tests = ("misc", tests_list)
