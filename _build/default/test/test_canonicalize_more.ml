(* Tests for the extra canonicalization patterns, plus cost-model and
   launch-policy units. *)

open Mlir
module A = Dialects.Arith
module Cost = Sycl_sim.Cost

let canon m =
  let stats = Pass.Stats.create () in
  Sycl_core.Canonicalize.pass.Pass.run m stats;
  stats

let returns_const f expected =
  let ret = List.hd (Core.collect_named f "func.return") in
  Rewrite.constant_of_value (Core.operand ret 0) = Some expected

let tests_list =
  [
    Alcotest.test_case "x - x folds to 0 even for non-constants" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.i64 ] ~results:[ Types.i64 ] (fun b vals ->
              let x = List.hd vals in
              Dialects.Func.return b [ A.subi b x x ])
        in
        ignore (canon m);
        Alcotest.(check bool) "is 0" true (returns_const f (Attr.Int 0)));
    Alcotest.test_case "min(x, x) folds to x" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.i64 ] ~results:[ Types.i64 ] (fun b vals ->
              let x = List.hd vals in
              Dialects.Func.return b [ A.minsi b x x ])
        in
        ignore (canon m);
        let ret = List.hd (Core.collect_named f "func.return") in
        Alcotest.(check bool) "returns the argument" true
          (Core.value_equal (Core.operand ret 0)
             (Core.block_arg (Core.func_body f) 0)));
    Alcotest.test_case "x <= x folds true, x < x folds false" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.i64 ] ~results:[ Types.i1; Types.i1 ]
            (fun b vals ->
              let x = List.hd vals in
              Dialects.Func.return b [ A.cmpi b A.Sle x x; A.cmpi b A.Slt x x ])
        in
        ignore (canon m);
        let ret = List.hd (Core.collect_named f "func.return") in
        Alcotest.(check bool) "sle true" true
          (Rewrite.constant_of_value (Core.operand ret 0) = Some (Attr.Bool true));
        Alcotest.(check bool) "slt false" true
          (Rewrite.constant_of_value (Core.operand ret 1) = Some (Attr.Bool false)));
    Alcotest.test_case "select with equal branches drops the select" `Quick
      (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.i1; Types.i64 ] ~results:[ Types.i64 ]
            (fun b vals ->
              match vals with
              | [ c; x ] -> Dialects.Func.return b [ A.select b c x x ]
              | _ -> assert false)
        in
        ignore (canon m);
        Alcotest.(check int) "no select" 0 (Helpers.count_ops f "arith.select"));
    Alcotest.test_case "(x + 3) + 4 reassociates to x + 7" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.i64 ] ~results:[ Types.i64 ] (fun b vals ->
              let x = List.hd vals in
              let s1 = A.addi b x (A.const_int b 3) in
              Dialects.Func.return b [ A.addi b s1 (A.const_int b 4) ])
        in
        ignore (canon m);
        Alcotest.(check int) "single addi" 1 (Helpers.count_ops f "arith.addi");
        let add = List.hd (Core.collect_named f "arith.addi") in
        Alcotest.(check bool) "constant is 7" true
          (Rewrite.constant_of_value (Core.operand add 1) = Some (Attr.Int 7)));
    Alcotest.test_case "deep constant chain collapses entirely" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.i64 ] (fun b _ ->
              let v = ref (A.const_int b 1) in
              for k = 1 to 10 do
                v := A.addi b !v (A.const_int b k)
              done;
              Dialects.Func.return b [ !v ])
        in
        ignore (canon m);
        Alcotest.(check bool) "1 + sum(1..10) = 56" true
          (returns_const f (Attr.Int 56)));
    (* --- cost model --- *)
    Alcotest.test_case "device_cycles spreads work-groups over CUs" `Quick
      (fun () ->
        let p = { Cost.default with Cost.num_cu = 4 } in
        let s = Cost.fresh_launch_stats () in
        s.Cost.work_groups <- 8;
        s.Cost.total_wg_cycles <- 800;
        s.Cost.max_wg_cycles <- 100;
        Alcotest.(check int) "800/4" 200 (Cost.device_cycles p s));
    Alcotest.test_case "device_cycles floors at the slowest work-group" `Quick
      (fun () ->
        let p = { Cost.default with Cost.num_cu = 64 } in
        let s = Cost.fresh_launch_stats () in
        s.Cost.work_groups <- 2;
        s.Cost.total_wg_cycles <- 300;
        s.Cost.max_wg_cycles <- 250;
        Alcotest.(check int) "max wins" 250 (Cost.device_cycles p s));
    Alcotest.test_case "launch overhead scales with live arguments" `Quick
      (fun () ->
        let p = Cost.default in
        Alcotest.(check bool) "monotone" true
          (Cost.launch_overhead p ~live_args:4 > Cost.launch_overhead p ~live_args:1));
    Alcotest.test_case "transfer cycles round up to cache lines" `Quick (fun () ->
        let p = Cost.default in
        Alcotest.(check int) "one line" p.Cost.transfer_line_cycles
          (Cost.transfer_cycles p ~elems:1);
        Alcotest.(check int) "17 elems = 2 lines"
          (2 * p.Cost.transfer_line_cycles)
          (Cost.transfer_cycles p ~elems:(p.Cost.cache_line_elems + 1)));
    (* --- launch policy --- *)
    Alcotest.test_case "wg policy: divisibility respected" `Quick (fun () ->
        List.iter
          (fun (global, expected) ->
            Alcotest.(check (list int))
              (Printf.sprintf "wg for %s"
                 (String.concat "x" (List.map string_of_int global)))
              expected
              (Sycl_core.Launch_policy.default_wg_size global))
          [
            ([ 1024 ], [ 256 ]);
            ([ 100 ], [ 4 ]);
            ([ 64; 64 ], [ 16; 16 ]);
            ([ 48; 48 ], [ 16; 16 ]);
            ([ 20; 20 ], [ 4; 4 ]);
            ([ 8; 8; 8 ], [ 8; 8; 8 ]);
          ]);
    Alcotest.test_case "wg policy: degenerate sizes stay valid" `Quick (fun () ->
        List.iter
          (fun global ->
            let wg = Sycl_core.Launch_policy.default_wg_size global in
            List.iter2
              (fun g w ->
                Alcotest.(check bool) "divides" true (w >= 1 && g mod w = 0))
              global wg)
          [ [ 1 ]; [ 3 ]; [ 7; 5 ]; [ 1; 1; 1 ] ]);
    (* --- pass manager --- *)
    Alcotest.test_case "pipeline collects per-pass stats and times" `Quick
      (fun () ->
        let m, _ =
          Helpers.with_func ~results:[ Types.i64 ] (fun b _ ->
              Dialects.Func.return b
                [ A.addi b (A.const_int b 1) (A.const_int b 2) ])
        in
        let r =
          Pass.run_pipeline ~verify_each:true
            [ Sycl_core.Canonicalize.pass; Sycl_core.Dce.pass ]
            m
        in
        Alcotest.(check int) "two stat entries" 2 (List.length r.Pass.per_pass_stats);
        Alcotest.(check int) "two timings" 2 (List.length r.Pass.per_pass_time);
        let merged = Pass.merged_stats r in
        Alcotest.(check bool) "canonicalize did something" true
          (Pass.Stats.get merged "canonicalize/rewrites" > 0));
  ]

let tests = ("canonicalize-cost-policy", tests_list)
