(* Barrier-safety diagnostic tests, and agreement between the static check
   and the simulator's dynamic deadlock detection. *)

open Mlir
module A = Dialects.Arith
module K = Sycl_frontend.Kernel
module BS = Sycl_core.Barrier_safety

let build_kernel ~divergent =
  Helpers.with_kernel ~dims:1 ~nd:true ~args:[] (fun b ~item ~args:_ ->
      if divergent then begin
        let lid = K.lid b item 0 in
        let zero = A.const_index b 0 in
        let c = A.cmpi b A.Eq lid zero in
        ignore
          (Dialects.Scf.if_ b c
             ~then_:(fun bb ->
               Dialects.Gpu.barrier bb;
               [])
             ())
      end
      else Dialects.Gpu.barrier b)

let tests_list =
  [
    Alcotest.test_case "uniform barrier passes" `Quick (fun () ->
        let m, _ = build_kernel ~divergent:false in
        Alcotest.(check int) "no diagnostics" 0 (List.length (BS.check m)));
    Alcotest.test_case "divergent barrier reported" `Quick (fun () ->
        let m, _ = build_kernel ~divergent:true in
        match BS.check m with
        | [ d ] ->
          Alcotest.(check string) "kernel named" "k" d.BS.bd_kernel;
          Alcotest.(check bool) "guards recorded" true (d.BS.bd_guards <> [])
        | other -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length other));
    Alcotest.test_case "barrier under a uniform guard passes" `Quick (fun () ->
        let m, _ =
          Helpers.with_kernel ~dims:1 ~nd:true ~args:[ K.Scal Types.Index ]
            (fun b ~item:_ ~args ->
              let n = List.hd args in
              let c = A.cmpi b A.Sgt n (A.const_index b 0) in
              ignore
                (Dialects.Scf.if_ b c
                   ~then_:(fun bb ->
                     Dialects.Gpu.barrier bb;
                     [])
                   ()))
        in
        Alcotest.(check int) "no diagnostics" 0 (List.length (BS.check m)));
    Alcotest.test_case "static check agrees with the simulator" `Quick (fun () ->
        let module Interp = Sycl_sim.Interp in
        List.iter
          (fun divergent ->
            let m, k = build_kernel ~divergent in
            let static_bad = BS.check m <> [] in
            let dynamic_bad =
              match
                Interp.launch ~module_op:m ~kernel:k ~args:[| Interp.Item |]
                  ~global:[ 32 ] ~wg_size:[ 32 ] ()
              with
              | _ -> false
              | exception Interp.Barrier_divergence -> true
            in
            Alcotest.(check bool)
              (Printf.sprintf "agreement (divergent=%b)" divergent)
              static_bad dynamic_bad)
          [ false; true ]);
    Alcotest.test_case "internalization output is barrier-safe" `Quick (fun () ->
        let w = Sycl_workloads.Polybench.gemm ~n:16 in
        let m = w.Sycl_workloads.Common.w_module () in
        ignore
          (Sycl_core.Driver.compile
             (Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir) m);
        Alcotest.(check int) "no divergent barriers" 0 (List.length (BS.check m)));
  ]

let tests = ("barrier-safety", tests_list)
