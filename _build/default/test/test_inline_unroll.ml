(* Inliner and loop-unroll tests. *)

open Mlir
module A = Dialects.Arith
module K = Sycl_frontend.Kernel
module S = Sycl_core.Sycl_types

let run pass m =
  let stats = Pass.Stats.create () in
  pass.Pass.run m stats;
  stats

let tests_list =
  [
    Alcotest.test_case "direct call inlines and helper is removed" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        ignore
          (Dialects.Func.func m "sq" ~args:[ Types.f32 ] ~results:[ Types.f32 ]
             (fun b vals ->
               Dialects.Func.return b [ A.mulf b (List.hd vals) (List.hd vals) ]));
        ignore
          (K.define m ~name:"k" ~dims:1 ~args:[ K.Acc (1, S.Write, Types.f32) ]
             (fun b ~item ~args ->
               let i = K.gid b item 0 in
               let x = A.sitofp b (A.index_cast b i Types.i64) Types.f32 in
               let y = Dialects.Func.call1 b "sq" ~operands:[ x ] ~result:Types.f32 in
               K.acc_set b (List.hd args) [ i ] y));
        let stats = run Sycl_core.Inline.pass m in
        Helpers.check_verifies m;
        Alcotest.(check int) "inlined once" 1 (Pass.Stats.get stats "inline.inlined");
        Alcotest.(check int) "helper removed" 1
          (Pass.Stats.get stats "inline.dead-functions-removed");
        let k = Option.get (Core.lookup_func m "k") in
        Alcotest.(check int) "no calls left" 0 (Helpers.count_ops k "func.call");
        Alcotest.(check int) "body has the mulf" 1 (Helpers.count_ops k "arith.mulf"));
    Alcotest.test_case "helper chains flatten" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        ignore
          (Dialects.Func.func m "a" ~args:[ Types.f32 ] ~results:[ Types.f32 ]
             (fun b vals ->
               Dialects.Func.return b
                 [ A.addf b (List.hd vals) (List.hd vals) ]));
        ignore
          (Dialects.Func.func m "b" ~args:[ Types.f32 ] ~results:[ Types.f32 ]
             (fun b vals ->
               let r = Dialects.Func.call1 b "a" ~operands:vals ~result:Types.f32 in
               Dialects.Func.return b [ A.mulf b r r ]));
        ignore
          (K.define m ~name:"k" ~dims:1 ~args:[ K.Acc (1, S.Write, Types.f32) ]
             (fun bld ~item ~args ->
               let i = K.gid bld item 0 in
               let x = A.sitofp bld (A.index_cast bld i Types.i64) Types.f32 in
               let y = Dialects.Func.call1 bld "b" ~operands:[ x ] ~result:Types.f32 in
               K.acc_set bld (List.hd args) [ i ] y));
        let stats = run Sycl_core.Inline.pass m in
        Helpers.check_verifies m;
        Alcotest.(check bool) "at least two inlines" true
          (Pass.Stats.get stats "inline.inlined" >= 2);
        let k = Option.get (Core.lookup_func m "k") in
        Alcotest.(check int) "no calls left in kernel" 0
          (Helpers.count_ops k "func.call"));
    Alcotest.test_case "recursive functions refuse to inline" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        ignore
          (Dialects.Func.func m "rec" ~args:[ Types.f32 ] ~results:[ Types.f32 ]
             (fun b vals ->
               let r =
                 Dialects.Func.call1 b "rec" ~operands:vals ~result:Types.f32
               in
               Dialects.Func.return b [ r ]));
        ignore
          (Dialects.Func.func m "caller" ~args:[ Types.f32 ] ~results:[ Types.f32 ]
             (fun b vals ->
               let r =
                 Dialects.Func.call1 b "rec" ~operands:vals ~result:Types.f32
               in
               Dialects.Func.return b [ r ]));
        let stats = run Sycl_core.Inline.pass m in
        Alcotest.(check int) "nothing inlined" 0
          (Pass.Stats.get stats "inline.inlined"));
    Alcotest.test_case "uniformity sees through inlined getters" `Quick (fun () ->
        (* After inlining, the divergence source flows directly. *)
        let m = Helpers.fresh_module () in
        ignore
          (Dialects.Func.func m "idx2" ~args:[ Types.Index ] ~results:[ Types.Index ]
             (fun b vals ->
               Dialects.Func.return b
                 [ A.muli b (List.hd vals) (A.const_index b 2) ]));
        ignore
          (K.define m ~name:"k" ~dims:1 ~args:[] (fun b ~item ~args:_ ->
               let i = K.gid b item 0 in
               ignore (Dialects.Func.call1 b "idx2" ~operands:[ i ] ~result:Types.Index)));
        ignore (run Sycl_core.Inline.pass m);
        let k = Option.get (Core.lookup_func m "k") in
        let mul = List.hd (Core.collect_named k "arith.muli") in
        let t = Sycl_core.Uniformity.analyze m in
        Alcotest.(check string) "non-uniform through the inlined body"
          "non-uniform"
          (Sycl_core.Uniformity.lattice_to_string
             (Sycl_core.Uniformity.value t (Core.result mul 0))));
    Alcotest.test_case "constant-trip loop fully unrolls" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ] (fun b vals ->
              let mem = List.hd vals in
              let zero = A.const_index b 0 in
              let four = A.const_index b 4 in
              let one = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:four ~step:one (fun bb iv _ ->
                     Dialects.Memref.store bb (A.const_float bb 1.0) mem [ iv ];
                     [])))
        in
        let stats = run Sycl_core.Loop_unroll.pass m in
        Helpers.check_verifies m;
        Alcotest.(check int) "unrolled" 1 (Pass.Stats.get stats "unroll.unrolled");
        Alcotest.(check int) "no loop left" 0 (Helpers.count_ops f "scf.for");
        Alcotest.(check int) "four stores" 4 (Helpers.count_ops f "memref.store"));
    Alcotest.test_case "unrolled iter_args chain through iterations" `Quick
      (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.Index ] (fun b _ ->
              let zero = A.const_index b 0 in
              let five = A.const_index b 5 in
              let one = A.const_index b 1 in
              let loop =
                Dialects.Scf.for_ b ~lb:zero ~ub:five ~step:one
                  ~iter_args:[ zero ]
                  (fun bb iv args -> [ A.addi bb (List.hd args) iv ])
              in
              Dialects.Func.return b [ Core.result loop 0 ])
        in
        ignore (run Sycl_core.Loop_unroll.pass m);
        ignore (run Sycl_core.Canonicalize.pass m);
        (* 0+1+2+3+4 = 10 must constant-fold. *)
        let ret = List.hd (Core.collect_named f "func.return") in
        Alcotest.(check bool) "folds to 10" true
          (Rewrite.constant_of_value (Core.operand ret 0) = Some (Attr.Int 10)));
    Alcotest.test_case "dynamic bounds and big loops stay" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.Index ] (fun b vals ->
              let n = List.hd vals in
              let zero = A.const_index b 0 in
              let one = A.const_index b 1 in
              let big = A.const_index b 10_000 in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:n ~step:one (fun bb iv _ ->
                     ignore (A.addi bb iv iv);
                     []));
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:big ~step:one (fun bb iv _ ->
                     ignore (A.addi bb iv iv);
                     [])))
        in
        let stats = run Sycl_core.Loop_unroll.pass m in
        Alcotest.(check int) "nothing unrolled" 0
          (Pass.Stats.get stats "unroll.unrolled");
        Alcotest.(check int) "both loops remain" 2 (Helpers.count_ops f "scf.for"));
    Alcotest.test_case "unroll + constant-array fold removes filter loads" `Quick
      (fun () ->
        (* The Sobel end-game: a constant-bound loop loading tbl[k] with a
           constant table unrolls; after unrolling the indices are
           constants. (Folding the loads themselves would need the dense
           initializer in the kernel — here we check the unroll exposes
           constant indices.) *)
        let _m, f =
          Helpers.with_kernel ~dims:1 ~args:[ K.Ptr Types.f32; K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              match args with
              | [ tbl; out ] ->
                let i = K.gid b item 0 in
                let zero = A.const_index b 0 in
                let three = A.const_index b 3 in
                let one = A.const_index b 1 in
                let loop =
                  Dialects.Scf.for_ b ~lb:zero ~ub:three ~step:one
                    ~iter_args:[ K.fconst b 0.0 ]
                    (fun bb k acc ->
                      [ K.addf bb (List.hd acc) (K.ptr_get bb tbl k) ])
                in
                K.acc_set b out [ i ] (Core.result loop 0)
              | _ -> assert false)
        in
        let stats = Pass.Stats.create () in
        Sycl_core.Loop_unroll.run_on_func f stats;
        Alcotest.(check int) "unrolled" 1 (Pass.Stats.get stats "unroll.unrolled");
        let loads = Core.collect_named f "memref.load" in
        Alcotest.(check int) "three loads" 3 (List.length loads);
        List.iter
          (fun ld ->
            let _, idx = Dialects.Memref.load_parts ld in
            Alcotest.(check bool) "constant index" true
              (Rewrite.constant_of_value (List.hd idx) <> None))
          loads);
  ]

let tests = ("inline-and-unroll", tests_list)
