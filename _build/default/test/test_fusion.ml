(* Kernel fusion tests (the Section VII compile-time fusion extension)
   plus store-forwarding. *)

open Mlir
module K = Sycl_frontend.Kernel
module Host = Sycl_frontend.Host
module S = Sycl_core.Sycl_types
module A = Dialects.Arith
module Memory = Sycl_sim.Memory
module HI = Sycl_runtime.Host_interp
module Interp = Sycl_sim.Interp

let harg a = HI.Scalar (Interp.Mem (Memory.full_view a))
let iarg n = HI.Scalar (Interp.I n)

(* Producer/consumer chain: t[i] = a[i] + b[i]; out[i] = 2 * t[i]. *)
let chain_program ?(second_reads_neighbour = false) m =
  ignore
    (K.define m ~name:"prod" ~dims:1
       ~args:
         [ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Read, Types.f32);
           K.Acc (1, S.Write, Types.f32) ]
       (fun b ~item ~args ->
         match args with
         | [ a; bb; t ] ->
           let i = K.gid b item 0 in
           K.acc_set b t [ i ] (K.addf b (K.acc_get b a [ i ]) (K.acc_get b bb [ i ]))
         | _ -> assert false));
  ignore
    (K.define m ~name:"cons" ~dims:1
       ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32) ]
       (fun b ~item ~args ->
         match args with
         | [ t; out ] ->
           let i = K.gid b item 0 in
           let j =
             if second_reads_neighbour then K.addi b i (K.idx b 1) else i
           in
           K.acc_set b out [ i ] (K.mulf b (K.fconst b 2.0) (K.acc_get b t [ j ]))
         | _ -> assert false));
  ignore
    (Host.emit m
       {
         Host.host_args =
           [ Types.memref_dyn Types.f32; Types.memref_dyn Types.f32;
             Types.memref_dyn Types.f32; Types.memref_dyn Types.f32; Types.Index ];
         buffers =
           List.init 4 (fun i ->
               { Host.buf_data_arg = i; buf_dims = [ Host.Arg 4 ];
                 buf_element = Types.f32 });
         globals = [];
         body =
           [
             Host.Submit
               { Host.cg_kernel = "prod"; cg_global = [ Host.Arg 4 ];
                 cg_local = None;
                 cg_captures =
                   [ Host.Capture_acc (0, S.Read); Host.Capture_acc (1, S.Read);
                     Host.Capture_acc (2, S.Write) ] };
             Host.Submit
               { Host.cg_kernel = "cons"; cg_global = [ Host.Arg 4 ];
                 cg_local = None;
                 cg_captures =
                   [ Host.Capture_acc (2, S.Read); Host.Capture_acc (3, S.Write) ] };
           ];
       })

let compile_fused ?(second_reads_neighbour = false) () =
  let m = Helpers.fresh_module () in
  chain_program ~second_reads_neighbour m;
  let stats = Pass.Stats.create () in
  let _ =
    Pass.run_pipeline ~verify_each:true
      [ Sycl_core.Host_raising.pass; Sycl_core.Canonicalize.pass; Sycl_core.Cse.pass ]
      m
  in
  Sycl_core.Kernel_fusion.pass.Pass.run m stats;
  (m, stats)

let run_program m n =
  let st = Random.State.make [| 5 |] in
  let mk () =
    let a = Memory.alloc ~size:n () in
    Array.iteri (fun i _ -> a.Memory.data.(i) <- Memory.F (Random.State.float st 1.0))
      a.Memory.data;
    a
  in
  let a = mk () and b = mk () in
  let t = Memory.alloc ~size:n () and out = Memory.alloc ~size:n () in
  let result = HI.run ~module_op:m [ harg a; harg b; harg t; harg out; iarg n ] in
  (result, a, b, out)

let tests_list =
  [
    Alcotest.test_case "element-wise chain fuses into one launch" `Quick (fun () ->
        let m, stats = compile_fused () in
        Alcotest.(check int) "one fusion" 1 (Pass.Stats.get stats "fusion.fused");
        Alcotest.(check int) "one parallel_for left" 1
          (Helpers.count_ops m "sycl.host.parallel_for");
        Helpers.check_verifies m;
        let result, a, b, out = run_program m 64 in
        Alcotest.(check int) "single launch" 1 result.HI.kernel_launches;
        Array.iteri
          (fun i cell ->
            let expect =
              2.0
              *. (Memory.cell_to_float a.Memory.data.(i)
                 +. Memory.cell_to_float b.Memory.data.(i))
            in
            Alcotest.(check (float 1e-4)) "fused result"
              expect (Memory.cell_to_float cell))
          out.Memory.data);
    Alcotest.test_case "cross-work-item consumer refuses to fuse" `Quick (fun () ->
        let _m, stats = compile_fused ~second_reads_neighbour:true () in
        Alcotest.(check int) "no fusion" 0 (Pass.Stats.get stats "fusion.fused"));
    Alcotest.test_case "store-forwarding removes the intermediate reload" `Quick
      (fun () ->
        let m, _ = compile_fused () in
        let fused =
          List.find (fun f -> Sycl_core.Uniformity.is_kernel f) (Core.funcs m)
        in
        let _ =
          Pass.run_pipeline ~verify_each:true
            [ Sycl_core.Canonicalize.pass; Sycl_core.Cse.pass ]
            m
        in
        let loads_before = Helpers.count_ops fused "memref.load" in
        let stats = Pass.Stats.create () in
        Sycl_core.Store_forwarding.pass.Pass.run m stats;
        Alcotest.(check int) "one load forwarded" 1
          (Pass.Stats.get stats "store-forwarding.forwarded");
        Alcotest.(check int) "one fewer load" (loads_before - 1)
          (Helpers.count_ops fused "memref.load");
        Helpers.check_verifies m;
        (* Results still correct. *)
        let _, a, b, out = run_program m 32 in
        Array.iteri
          (fun i cell ->
            let expect =
              2.0
              *. (Memory.cell_to_float a.Memory.data.(i)
                 +. Memory.cell_to_float b.Memory.data.(i))
            in
            Alcotest.(check (float 1e-4)) "forwarded result" expect
              (Memory.cell_to_float cell))
          out.Memory.data);
    Alcotest.test_case "store-forwarding blocked by intervening may-alias write"
      `Quick (fun () ->
        let _m, f =
          Helpers.with_kernel ~dims:1
            ~args:[ K.Acc (1, S.Read_write, Types.f32); K.Acc (1, S.Read_write, Types.f32) ]
            (fun b ~item ~args ->
              match args with
              | [ x; y ] ->
                let i = K.gid b item 0 in
                K.acc_set b x [ i ] (K.fconst b 1.0);
                (* y may alias x: this store may clobber x[i]. *)
                K.acc_set b y [ i ] (K.fconst b 2.0);
                let v = K.acc_get b x [ i ] in
                K.acc_set b x [ i ] (K.addf b v v)
              | _ -> assert false)
        in
        let stats = Pass.Stats.create () in
        Sycl_core.Store_forwarding.run_on_func f stats;
        Alcotest.(check int) "nothing forwarded" 0
          (Pass.Stats.get stats "store-forwarding.forwarded"));
    Alcotest.test_case "fusion saves launch overhead end to end" `Quick (fun () ->
        (* Same program, with and without fusion, through the driver. *)
        let measure enable_fusion =
          let m = Helpers.fresh_module () in
          chain_program m;
          let cfg =
            Sycl_core.Driver.config ~enable_fusion ~verify_each:true
              Sycl_core.Driver.Sycl_mlir
          in
          let _ = Sycl_core.Driver.compile cfg m in
          let result, _, _, out = run_program m 64 in
          (result, Memory.cell_to_float out.Memory.data.(5))
        in
        let unfused, v1 = measure false in
        let fused, v2 = measure true in
        Alcotest.(check (float 1e-4)) "same results" v1 v2;
        Alcotest.(check int) "two launches unfused" 2 unfused.HI.kernel_launches;
        Alcotest.(check int) "one launch fused" 1 fused.HI.kernel_launches;
        Alcotest.(check bool) "cheaper total" true
          (fused.HI.total_cycles < unfused.HI.total_cycles));
    Alcotest.test_case "fusion applies inside host Repeat loops" `Quick (fun () ->
        (* A ping-pong pair submitted in a host loop: each iteration's two
           element-wise kernels fuse (the fused kernel is reused across
           iterations). *)
        let m = Helpers.fresh_module () in
        ignore
          (K.define m ~name:"scale" ~dims:1
             ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32) ]
             (fun b ~item ~args ->
               match args with
               | [ src; dst ] ->
                 let i = K.gid b item 0 in
                 K.acc_set b dst [ i ]
                   (K.mulf b (K.fconst b 0.5) (K.acc_get b src [ i ]))
               | _ -> assert false));
        ignore
          (K.define m ~name:"shift" ~dims:1
             ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32) ]
             (fun b ~item ~args ->
               match args with
               | [ src; dst ] ->
                 let i = K.gid b item 0 in
                 K.acc_set b dst [ i ] (K.addf b (K.fconst b 1.0) (K.acc_get b src [ i ]))
               | _ -> assert false));
        ignore
          (Host.emit m
             {
               Host.host_args =
                 [ Types.memref_dyn Types.f32; Types.memref_dyn Types.f32;
                   Types.memref_dyn Types.f32; Types.Index; Types.Index ];
               buffers =
                 List.init 3 (fun i ->
                     { Host.buf_data_arg = i; buf_dims = [ Host.Arg 3 ];
                       buf_element = Types.f32 });
               globals = [];
               body =
                 [
                   Host.Repeat
                     ( Host.Arg 4,
                       [
                         Host.Submit
                           { Host.cg_kernel = "scale"; cg_global = [ Host.Arg 3 ];
                             cg_local = None;
                             cg_captures =
                               [ Host.Capture_acc (0, S.Read); Host.Capture_acc (1, S.Write) ] };
                         Host.Submit
                           { Host.cg_kernel = "shift"; cg_global = [ Host.Arg 3 ];
                             cg_local = None;
                             cg_captures =
                               [ Host.Capture_acc (1, S.Read); Host.Capture_acc (2, S.Write) ] };
                       ] );
                 ];
             });
        let _ = Pass.run_pipeline ~verify_each:true [ Sycl_core.Host_raising.pass ] m in
        let stats = Pass.Stats.create () in
        Sycl_core.Kernel_fusion.pass.Pass.run m stats;
        Alcotest.(check int) "fused once" 1 (Pass.Stats.get stats "fusion.fused");
        Helpers.check_verifies m;
        (* Execute: 2 host iterations -> 2 launches of the fused kernel. *)
        let n = 32 in
        let a = Memory.alloc ~size:n () in
        Array.iteri (fun i _ -> a.Memory.data.(i) <- Memory.F 4.0) a.Memory.data;
        let t = Memory.alloc ~size:n () and out = Memory.alloc ~size:n () in
        let r = HI.run ~module_op:m [ harg a; harg t; harg out; iarg n; iarg 2 ] in
        Alcotest.(check int) "two fused launches" 2 r.HI.kernel_launches;
        Alcotest.(check (float 1e-5)) "0.5*4 + 1" 3.0
          (Memory.cell_to_float out.Memory.data.(7)));
    Alcotest.test_case "store-forwarding works inside loop bodies" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_kernel ~dims:1
            ~args:[ K.Acc (1, S.Read_write, Types.f32) ]
            (fun b ~item ~args ->
              let acc = List.hd args in
              let i = K.gid b item 0 in
              let view = K.acc_view b acc [ i ] in
              let zero = K.idx b 0 in
              K.for_up b (K.idx b 4) (fun bb _k ->
                  Dialects.Memref.store bb (K.fconst bb 2.0) view [ zero ];
                  let v = Dialects.Memref.load bb view [ zero ] in
                  Dialects.Memref.store bb (K.addf bb v v) view [ zero ]))
        in
        let stats = Pass.Stats.create () in
        Sycl_core.Store_forwarding.run_on_func f stats;
        Alcotest.(check int) "forwarded in the loop body" 1
          (Pass.Stats.get stats "store-forwarding.forwarded"));
    Alcotest.test_case "different nd-ranges refuse to fuse" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        ignore
          (K.define m ~name:"k1" ~dims:1 ~args:[ K.Acc (1, S.Write, Types.f32) ]
             (fun b ~item ~args ->
               let i = K.gid b item 0 in
               K.acc_set b (List.hd args) [ i ] (K.fconst b 1.0)));
        ignore
          (K.define m ~name:"k2" ~dims:1 ~args:[ K.Acc (1, S.Write, Types.f32) ]
             (fun b ~item ~args ->
               let i = K.gid b item 0 in
               K.acc_set b (List.hd args) [ i ] (K.fconst b 2.0)));
        ignore
          (Host.emit m
             {
               Host.host_args = [ Types.memref_dyn Types.f32; Types.Index; Types.Index ];
               buffers =
                 [ { Host.buf_data_arg = 0; buf_dims = [ Host.Arg 1 ];
                     buf_element = Types.f32 } ];
               globals = [];
               body =
                 [
                   Host.Submit
                     { Host.cg_kernel = "k1"; cg_global = [ Host.Arg 1 ];
                       cg_local = None;
                       cg_captures = [ Host.Capture_acc (0, S.Write) ] };
                   Host.Submit
                     { Host.cg_kernel = "k2"; cg_global = [ Host.Arg 2 ];
                       cg_local = None;
                       cg_captures = [ Host.Capture_acc (0, S.Write) ] };
                 ];
             });
        let _ = Pass.run_pipeline [ Sycl_core.Host_raising.pass ] m in
        let stats = Pass.Stats.create () in
        Sycl_core.Kernel_fusion.pass.Pass.run m stats;
        Alcotest.(check int) "no fusion" 0 (Pass.Stats.get stats "fusion.fused"));
  ]

let tests = ("kernel-fusion", tests_list)
