(* Affine expression and map tests, including qcheck properties. *)

open Mlir
module E = Affine_expr

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Random affine expression generator over [nd] dims and [ns] syms. *)
let expr_gen ~nd ~ns =
  let open QCheck2.Gen in
  sized_size (int_bound 6) @@ fix (fun self n ->
      if n = 0 then
        oneof
          ([ map (fun c -> E.Const c) (int_range (-20) 20) ]
          @ (if nd > 0 then [ map (fun i -> E.Dim i) (int_bound (nd - 1)) ] else [])
          @ if ns > 0 then [ map (fun i -> E.Sym i) (int_bound (ns - 1)) ] else [])
      else
        oneof
          [
            map2 (fun a b -> E.Add (a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a c -> E.Mul (a, E.Const c)) (self (n - 1)) (int_range (-8) 8);
            map2 (fun a c -> E.Mod (a, E.Const c)) (self (n - 1)) (int_range 1 8);
            map2 (fun a c -> E.Floordiv (a, E.Const c)) (self (n - 1)) (int_range 1 8);
            self (n - 1);
          ])

let vals_gen k =
  QCheck2.Gen.(array_size (pure k) (int_range (-50) 50))

let simplify_preserves_eval =
  Helpers.qtest "simplify preserves evaluation"
    QCheck2.Gen.(pair (expr_gen ~nd:3 ~ns:2) (pair (vals_gen 3) (vals_gen 2)))
    (fun (e, (dims, syms)) ->
      E.eval dims syms e = E.eval dims syms (E.simplify e))

let linear_coeffs_reconstruct =
  Helpers.qtest "linear_coeffs reconstructs linear expressions"
    QCheck2.Gen.(
      pair
        (list_size (pure 3) (int_range (-9) 9))
        (pair (int_range (-20) 20) (vals_gen 3)))
    (fun (coeffs, (c, vals)) ->
      (* Build sum(coeffs_i * d_i) + c. *)
      let e =
        List.fold_left E.add (E.Const c)
          (List.mapi (fun i k -> E.mul (E.Dim i) (E.Const k)) coeffs)
      in
      match E.linear_coeffs ~num_dims:3 ~num_syms:0 e with
      | None -> false
      | Some (ds, _, c') ->
        let manual =
          List.fold_left ( + ) c'
            (List.mapi (fun i k -> k * vals.(i)) (Array.to_list ds))
        in
        manual = E.eval vals [||] e)

let basic_tests =
  [
    Alcotest.test_case "constant folding in add/mul" `Quick (fun () ->
        check_int "2+3" 5
          (match E.add (E.Const 2) (E.Const 3) with E.Const c -> c | _ -> -1);
        check_int "4*5" 20
          (match E.mul (E.Const 4) (E.Const 5) with E.Const c -> c | _ -> -1));
    Alcotest.test_case "identities" `Quick (fun () ->
        check_bool "x+0 = x" true (E.add (E.Dim 0) (E.Const 0) = E.Dim 0);
        check_bool "x*1 = x" true (E.mul (E.Dim 0) (E.Const 1) = E.Dim 0);
        check_bool "x*0 = 0" true (E.mul (E.Dim 0) (E.Const 0) = E.Const 0));
    Alcotest.test_case "floordiv semantics" `Quick (fun () ->
        check_int "-7 floordiv 2" (-4) (E.eval [||] [||] (E.Floordiv (E.Const (-7), E.Const 2)));
        check_int "7 floordiv 2" 3 (E.eval [||] [||] (E.Floordiv (E.Const 7, E.Const 2))));
    Alcotest.test_case "mod is non-negative for positive modulus" `Quick (fun () ->
        check_int "-7 mod 3" 2 (E.eval [||] [||] (E.Mod (E.Const (-7), E.Const 3))));
    Alcotest.test_case "eval with dims and syms" `Quick (fun () ->
        let e = E.add (E.mul (E.Dim 0) (E.Const 3)) (E.Sym 1) in
        check_int "3*d0 + s1" 17 (E.eval [| 5 |] [| 0; 2 |] e));
    Alcotest.test_case "is_pure_affine" `Quick (fun () ->
        check_bool "d0*d1 not affine" false (E.is_pure_affine (E.Mul (E.Dim 0, E.Dim 1)));
        check_bool "d0*2+s0 affine" true
          (E.is_pure_affine (E.Add (E.Mul (E.Dim 0, E.Const 2), E.Sym 0))));
    Alcotest.test_case "linear_coeffs rejects non-linear" `Quick (fun () ->
        check_bool "d0*d1" true
          (E.linear_coeffs ~num_dims:2 ~num_syms:0 (E.Mul (E.Dim 0, E.Dim 1)) = None);
        check_bool "d0 mod 2" true
          (E.linear_coeffs ~num_dims:1 ~num_syms:0 (E.Mod (E.Dim 0, E.Const 2)) = None));
    Alcotest.test_case "linear_coeffs of paper example row" `Quick (fun () ->
        (* 2*i + 2 (+gid_y) — a row from Listing 3's matrix *)
        let e = E.add (E.add (E.mul (E.Dim 2) (E.Const 2)) (E.Const 2)) (E.Dim 1) in
        match E.linear_coeffs ~num_dims:3 ~num_syms:0 e with
        | Some (ds, _, c) ->
          Alcotest.(check (list int)) "coeffs" [ 0; 1; 2 ] (Array.to_list ds);
          check_int "offset" 2 c
        | None -> Alcotest.fail "expected linear");
    Alcotest.test_case "map eval" `Quick (fun () ->
        let m = E.Map.make ~num_dims:2 ~num_syms:0 [ E.add (E.Dim 0) (E.Dim 1); E.Const 7 ] in
        Alcotest.(check (list int)) "results" [ 5; 7 ] (E.Map.eval m ~dims:[| 2; 3 |] ~syms:[||]));
    Alcotest.test_case "identity map" `Quick (fun () ->
        Alcotest.(check bool) "is_identity" true (E.Map.is_identity (E.Map.identity 3)));
    Alcotest.test_case "map printing round-trips through attr parser" `Quick (fun () ->
        let m = E.Map.make ~num_dims:2 ~num_syms:1
            [ E.add (E.mul (E.Dim 0) (E.Const 4)) (E.Sym 0); E.Dim 1 ] in
        let s = "affine_map<" ^ E.Map.to_string m ^ ">" in
        let p = Parser.make_parser s in
        match Parser.parse_attr p with
        | Attr.Affine_map m' ->
          Alcotest.(check string) "round trip" (E.Map.to_string m) (E.Map.to_string m')
        | _ -> Alcotest.fail "expected affine_map attr");
  ]

let tests =
  ("affine", basic_tests @ [ simplify_preserves_eval; linear_coeffs_reconstruct ])
