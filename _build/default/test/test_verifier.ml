(* Verifier tests: SSA visibility, terminators, op-specific rules. *)

open Mlir
module A = Dialects.Arith

let expect_invalid ?(msg = "verification fails") m =
  match Verifier.verify m with
  | Ok () -> Alcotest.fail msg
  | Error _ -> ()

let tests_list =
  [
    Alcotest.test_case "well-formed module verifies" `Quick (fun () ->
        let m, _ =
          Helpers.with_func ~args:[ Types.i64 ] ~results:[ Types.i64 ] (fun b vals ->
              Dialects.Func.return b [ A.addi b (List.hd vals) (List.hd vals) ])
        in
        Helpers.check_verifies m);
    Alcotest.test_case "use before def rejected" `Quick (fun () ->
        let m, f = Helpers.with_func (fun _ _ -> ()) in
        let body = Core.func_body f in
        (* Build x = addi(y, y); y = constant — out of order. *)
        let y_op =
          Core.create_op "arith.constant" ~operands:[] ~result_types:[ Types.i64 ]
            ~attrs:[ ("value", Attr.Int 1) ]
        in
        let x_op =
          Core.create_op "arith.addi"
            ~operands:[ Core.result y_op 0; Core.result y_op 0 ]
            ~result_types:[ Types.i64 ]
        in
        Core.prepend_op body x_op;
        Core.insert_after ~anchor:x_op y_op;
        expect_invalid ~msg:"use-before-def accepted" m);
    Alcotest.test_case "missing terminator rejected" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        let region = Core.region_with_block () in
        let fop =
          Core.create_op "func.func" ~operands:[] ~result_types:[]
            ~attrs:
              [ ("sym_name", Attr.String "f");
                ("function_type", Attr.Type (Types.Function ([], []))) ]
            ~regions:[ region ]
        in
        Core.append_op (Core.module_block m) fop;
        let b = Builder.at_end (Core.entry_block region) in
        ignore (A.const_int b 1);
        expect_invalid ~msg:"missing terminator accepted" m);
    Alcotest.test_case "func entry args must match function type" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        let region = Core.region_with_block ~args:[ Types.i64 ] () in
        let fop =
          Core.create_op "func.func" ~operands:[] ~result_types:[]
            ~attrs:
              [ ("sym_name", Attr.String "f");
                ("function_type", Attr.Type (Types.Function ([ Types.f32 ], []))) ]
            ~regions:[ region ]
        in
        Core.append_op (Core.module_block m) fop;
        let b = Builder.at_end (Core.entry_block region) in
        Dialects.Func.return b [];
        expect_invalid ~msg:"mismatched signature accepted" m);
    Alcotest.test_case "scf.for result/iter_args mismatch rejected" `Quick (fun () ->
        let m, _f =
          Helpers.with_func (fun b _ ->
              let zero = A.const_index b 0 in
              let region = Core.region_with_block ~args:[ Types.Index ] () in
              let bb = Builder.at_end (Core.entry_block region) in
              Builder.op0 bb "scf.yield" ~operands:[];
              (* Claims one result but has no iter_args. *)
              ignore
                (Builder.op b "scf.for"
                   ~operands:[ zero; zero; zero ]
                   ~result_types:[ Types.f32 ] ~regions:[ region ]))
        in
        expect_invalid ~msg:"bad scf.for accepted" m);
    Alcotest.test_case "scf.if with results requires else" `Quick (fun () ->
        let m, _f =
          Helpers.with_func (fun b _ ->
              let c = A.const_bool b true in
              let region = Core.region_with_block () in
              let bb = Builder.at_end (Core.entry_block region) in
              let one = A.const_float bb 1.0 in
              Builder.op0 bb "scf.yield" ~operands:[ one ];
              ignore
                (Builder.op b "scf.if" ~operands:[ c ] ~result_types:[ Types.f32 ]
                   ~regions:[ region ]))
        in
        expect_invalid ~msg:"scf.if with results but no else accepted" m);
    Alcotest.test_case "unregistered ops flagged when requested" `Quick (fun () ->
        let m, _f =
          Helpers.with_func (fun b _ ->
              ignore
                (Builder.op b "wibble.wobble" ~operands:[] ~result_types:[]))
        in
        Helpers.check_verifies m;
        (match Verifier.verify ~allow_unregistered:false m with
        | Ok () -> Alcotest.fail "unregistered accepted in strict mode"
        | Error _ -> ()));
    Alcotest.test_case "diagnostics carry the culprit op" `Quick (fun () ->
        let m, f = Helpers.with_func (fun _ _ -> ()) in
        let body = Core.func_body f in
        let y_op =
          Core.create_op "arith.constant" ~operands:[] ~result_types:[ Types.i64 ]
            ~attrs:[ ("value", Attr.Int 1) ]
        in
        let x_op =
          Core.create_op "arith.addi"
            ~operands:[ Core.result y_op 0; Core.result y_op 0 ]
            ~result_types:[ Types.i64 ]
        in
        Core.prepend_op body x_op;
        Core.insert_after ~anchor:x_op y_op;
        match Verifier.verify m with
        | Error (d :: _) ->
          Alcotest.(check bool) "culprit recorded" true (d.Verifier.culprit <> None);
          Alcotest.(check bool) "message mentions dominance" true
            (String.length (Verifier.diag_to_string d) > 0)
        | _ -> Alcotest.fail "expected diagnostics");
    Alcotest.test_case "pass manager attributes verification failures" `Quick
      (fun () ->
        let m, f = Helpers.with_func (fun _ _ -> ()) in
        (* A pass that breaks the IR. *)
        let breaker =
          Pass.make "breaker" (fun _ _ ->
              let body = Core.func_body f in
              let y_op =
                Core.create_op "arith.constant" ~operands:[]
                  ~result_types:[ Types.i64 ] ~attrs:[ ("value", Attr.Int 1) ]
              in
              let x_op =
                Core.create_op "arith.addi"
                  ~operands:[ Core.result y_op 0; Core.result y_op 0 ]
                  ~result_types:[ Types.i64 ]
              in
              Core.prepend_op body x_op;
              Core.insert_after ~anchor:x_op y_op)
        in
        match Pass.run_pipeline ~verify_each:true [ breaker ] m with
        | _ -> Alcotest.fail "expected Pass_failed"
        | exception Pass.Pass_failed { pass; _ } ->
          Alcotest.(check string) "pass name" "breaker" pass);
  ]

let tests = ("verifier", tests_list)
