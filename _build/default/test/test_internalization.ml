(* Loop-internalization tests (Section VI-C): the tiling + local-memory
   prefetch transformation, its divergence rejection, and end-to-end
   result equivalence on the simulator. *)

open Mlir
module A = Dialects.Arith
module K = Sycl_frontend.Kernel
module S = Sycl_core.Sycl_types
module LI = Sycl_core.Loop_internalization

let run_internalization m =
  let stats = Pass.Stats.create () in
  LI.pass.Pass.run m stats;
  stats

(* A gemm-style kernel body: for k: acc += A[i][k]*B[k][j]; C[i][j] = acc.
   Already in iter_args form so internalization is tested in isolation. *)
let gemm_kernel ?(divergent = false) m =
  Sycl_frontend.Kernel.define m ~name:"mm" ~dims:2
    ~args:
      [ K.Acc (2, S.Read, Types.f32); K.Acc (2, S.Read, Types.f32);
        K.Acc (2, S.Write, Types.f32) ]
    (fun b ~item ~args ->
      match args with
      | [ a; bb; c ] ->
        let i = K.gid b item 0 and j = K.gid b item 1 in
        let n = K.grange b item 0 in
        let zero = A.const_index b 0 in
        let one = A.const_index b 1 in
        let emit_loop builder =
          let loop =
            Dialects.Scf.for_ builder ~lb:zero ~ub:n ~step:one
              ~iter_args:[ K.fconst builder 0.0 ]
              (fun b2 k acc ->
                let av = K.acc_get b2 a [ i; k ] in
                let bv = K.acc_get b2 bb [ k; j ] in
                [ K.addf b2 (List.hd acc) (K.mulf b2 av bv) ])
          in
          K.acc_set builder c [ i; j ] (Core.result loop 0)
        in
        if divergent then begin
          let cond = A.cmpi b A.Sgt i zero in
          ignore
            (Dialects.Scf.if_ b cond
               ~then_:(fun b2 ->
                 emit_loop b2;
                 [])
               ())
        end
        else emit_loop b
      | _ -> assert false)

let tests_list =
  [
    Alcotest.test_case "gemm-style loop internalizes: tiles and barriers" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let f = gemm_kernel m in
        Core.set_attr f "sycl.wg_size" (Attr.Array [ Attr.Int 16; Attr.Int 16 ]);
        let stats = run_internalization m in
        Helpers.check_verifies m;
        Alcotest.(check int) "one loop internalized" 1
          (Pass.Stats.get stats "internalization.loops");
        Alcotest.(check int) "two refs prefetched" 2
          (Pass.Stats.get stats "internalization.prefetched");
        Alcotest.(check int) "two local tiles" 2 (Helpers.count_ops f "gpu.alloc_local");
        Alcotest.(check int) "two barriers" 2 (Helpers.count_ops f "gpu.barrier");
        (* Versioned: the original loop survives in the else branch. *)
        Alcotest.(check bool) "versioning scf.if present" true
          (Helpers.count_ops f "scf.if" >= 1));
    Alcotest.test_case "divergent region rejected (the Gramschmidt case)" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let f = gemm_kernel ~divergent:true m in
        Core.set_attr f "sycl.wg_size" (Attr.Array [ Attr.Int 16; Attr.Int 16 ]);
        let stats = run_internalization m in
        Alcotest.(check int) "rejected" 1
          (Pass.Stats.get stats "internalization.rejected-divergent");
        Alcotest.(check int) "no tiles" 0 (Helpers.count_ops f "gpu.alloc_local");
        Alcotest.(check int) "no barriers" 0 (Helpers.count_ops f "gpu.barrier"));
    Alcotest.test_case "non-square work-group size declines" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        let f = gemm_kernel m in
        Core.set_attr f "sycl.wg_size" (Attr.Array [ Attr.Int 16; Attr.Int 8 ]);
        let stats = run_internalization m in
        Alcotest.(check int) "no loops internalized" 0
          (Pass.Stats.get stats "internalization.loops"));
    Alcotest.test_case "internalized kernel computes the same results" `Quick
      (fun () ->
        (* Run the same kernel before and after the pass on the simulator
           and compare the output buffers. *)
        let n = 32 in
        let module Interp = Sycl_sim.Interp in
        let module Memory = Sycl_sim.Memory in
        let run m f =
          let a = Memory.alloc ~label:"A" ~size:(n * n) () in
          let bb = Memory.alloc ~label:"B" ~size:(n * n) () in
          let c = Memory.alloc ~label:"C" ~size:(n * n) () in
          let st = Random.State.make [| 42 |] in
          for idx = 0 to (n * n) - 1 do
            a.Memory.data.(idx) <- Memory.F (Random.State.float st 1.0);
            bb.Memory.data.(idx) <- Memory.F (Random.State.float st 1.0)
          done;
          let desc alloc =
            Interp.Acc
              {
                Interp.a_alloc = alloc;
                a_range = [| n; n |];
                a_mem_range = [| n; n |];
                a_offset = [| 0; 0 |];
                a_is_float = true;
              }
          in
          let stats =
            Interp.launch ~module_op:m ~kernel:f
              ~args:[| Interp.Item; desc a; desc bb; desc c |]
              ~global:[ n; n ] ~wg_size:[ 16; 16 ] ()
          in
          (Array.map (function Memory.F x -> x | Memory.I i -> float_of_int i) c.Memory.data,
           stats)
        in
        let m1 = Helpers.fresh_module () in
        let f1 = gemm_kernel m1 in
        let before, stats_before = run m1 f1 in
        let m2 = Helpers.fresh_module () in
        let f2 = gemm_kernel m2 in
        Core.set_attr f2 "sycl.wg_size" (Attr.Array [ Attr.Int 16; Attr.Int 16 ]);
        ignore (run_internalization m2);
        let after, stats_after = run m2 f2 in
        Array.iteri
          (fun i x ->
            if Float.abs (x -. after.(i)) > 1e-3 then
              Alcotest.failf "mismatch at %d: %f vs %f" i x after.(i))
          before;
        (* And it actually moved traffic from global to local memory. *)
        Alcotest.(check bool) "fewer global transactions" true
          (stats_after.Sycl_sim.Cost.global_transactions
          < stats_before.Sycl_sim.Cost.global_transactions);
        Alcotest.(check bool) "local transactions appeared" true
          (stats_after.Sycl_sim.Cost.local_transactions > 0);
        Alcotest.(check bool) "barriers executed" true
          (stats_after.Sycl_sim.Cost.barriers > 0));
    Alcotest.test_case "runtime fallback when the launch wg mismatches" `Quick
      (fun () ->
        (* Kernel compiled without static wg info assumes the preferred
           size and re-checks at runtime: launching with wg 8x8 must take
           the original (un-tiled) loop and still be correct. *)
        let n = 16 in
        let module Interp = Sycl_sim.Interp in
        let module Memory = Sycl_sim.Memory in
        let m = Helpers.fresh_module () in
        let f = gemm_kernel m in
        ignore (run_internalization m);
        let a = Memory.alloc ~label:"A" ~size:(n * n) () in
        let bb = Memory.alloc ~label:"B" ~size:(n * n) () in
        let c = Memory.alloc ~label:"C" ~size:(n * n) () in
        for idx = 0 to (n * n) - 1 do
          a.Memory.data.(idx) <- Memory.F 1.0;
          bb.Memory.data.(idx) <- Memory.F 1.0
        done;
        let desc alloc =
          Interp.Acc
            {
              Interp.a_alloc = alloc;
              a_range = [| n; n |];
              a_mem_range = [| n; n |];
              a_offset = [| 0; 0 |];
              a_is_float = true;
            }
        in
        let stats =
          Interp.launch ~module_op:m ~kernel:f
            ~args:[| Interp.Item; desc a; desc bb; desc c |]
            ~global:[ n; n ] ~wg_size:[ 8; 8 ] ()
        in
        Alcotest.(check bool) "no barriers on the fallback path" true
          (stats.Sycl_sim.Cost.barriers = 0);
        Array.iter
          (function
            | Memory.F x ->
              if Float.abs (x -. float_of_int n) > 1e-3 then
                Alcotest.failf "bad result %f" x
            | Memory.I _ -> Alcotest.fail "int cell")
          c.Memory.data);
    Alcotest.test_case "rank-1 streamed access tiles in a 1-D kernel" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        let f =
          Sycl_frontend.Kernel.define m ~name:"dot1d" ~dims:1
            ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              match args with
              | [ v; out ] ->
                let i = K.gid b item 0 in
                let n = K.grange b item 0 in
                let zero = A.const_index b 0 in
                let one = A.const_index b 1 in
                let loop =
                  Dialects.Scf.for_ b ~lb:zero ~ub:n ~step:one
                    ~iter_args:[ K.fconst b 0.0 ]
                    (fun b2 k acc ->
                      [ K.addf b2 (List.hd acc) (K.acc_get b2 v [ k ]) ])
                in
                K.acc_set b out [ i ] (Core.result loop 0)
              | _ -> assert false)
        in
        Core.set_attr f "sycl.wg_size" (Attr.Array [ Attr.Int 64 ]);
        let stats = run_internalization m in
        Helpers.check_verifies m;
        Alcotest.(check int) "one ref prefetched" 1
          (Pass.Stats.get stats "internalization.prefetched"));
  ]

let tests = ("loop-internalization", tests_list)
