(* Heavyweight qcheck properties:

   1. Random straight-line float kernels computed on the simulator agree
      with a host-side reference evaluator, under every compiler
      configuration — i.e. the whole stack (frontend, passes, runtime,
      simulator) preserves semantics on arbitrary expression dags.
   2. Printer/parser round-trip on randomly generated modules.
   3. Alias analysis is symmetric and must implies may. *)

open Mlir
module A = Dialects.Arith
module K = Sycl_frontend.Kernel
module Host = Sycl_frontend.Host
module S = Sycl_core.Sycl_types
module Memory = Sycl_sim.Memory
module Interp = Sycl_sim.Interp
module HI = Sycl_runtime.Host_interp
module Driver = Sycl_core.Driver

(* ------------------------------------------------------------------ *)
(* 1. Random expression kernels                                        *)
(* ------------------------------------------------------------------ *)

type expr =
  | Input of int  (* a_k[i] for input k in 0..2 *)
  | Gid  (* global id as float *)
  | Lit of float
  | Bin of [ `Add | `Sub | `Mul | `Min | `Max ] * expr * expr
  | Neg of expr
  | Abs of expr

let rec eval_expr inputs i = function
  | Input k -> inputs.(k).(i)
  | Gid -> float_of_int i
  | Lit f -> f
  | Bin (op, a, b) -> (
    let x = eval_expr inputs i a and y = eval_expr inputs i b in
    match op with
    | `Add -> x +. y
    | `Sub -> x -. y
    | `Mul -> x *. y
    | `Min -> Float.min x y
    | `Max -> Float.max x y)
  | Neg a -> -.(eval_expr inputs i a)
  | Abs a -> Float.abs (eval_expr inputs i a)

let rec build_expr b ~item ~args e =
  match e with
  | Input k ->
    let i = K.gid b item 0 in
    K.acc_get b (List.nth args k) [ i ]
  | Gid ->
    let i = K.gid b item 0 in
    A.sitofp b (A.index_cast b i Types.i64) Types.f32
  | Lit f -> K.fconst b f
  | Bin (op, x, y) ->
    let xv = build_expr b ~item ~args x and yv = build_expr b ~item ~args y in
    (match op with
    | `Add -> K.addf b xv yv
    | `Sub -> K.subf b xv yv
    | `Mul -> K.mulf b xv yv
    | `Min -> A.minf b xv yv
    | `Max -> A.maxf b xv yv)
  | Neg x -> A.negf b (build_expr b ~item ~args x)
  | Abs x -> A.absf b (build_expr b ~item ~args x)

let expr_gen =
  let open QCheck2.Gen in
  sized_size (int_bound 8) @@ fix (fun self n ->
      if n = 0 then
        oneof
          [ map (fun k -> Input k) (int_bound 2);
            pure Gid;
            map (fun f -> Lit (Float.of_int f /. 4.0)) (int_range (-8) 8) ]
      else
        oneof
          [
            (let op = oneofl [ `Add; `Sub; `Mul; `Min; `Max ] in
             map3 (fun o a b -> Bin (o, a, b)) op (self (n / 2)) (self (n / 2)));
            map (fun a -> Neg a) (self (n - 1));
            map (fun a -> Abs a) (self (n - 1));
          ])

let run_expr_workload (e : expr) (mode : Driver.mode) =
  let n = 64 in
  let m = Helpers.fresh_module () in
  ignore
    (K.define m ~name:"expr_k" ~dims:1
       ~args:
         [ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Read, Types.f32);
           K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32) ]
       (fun b ~item ~args ->
         let i = K.gid b item 0 in
         let out = List.nth args 3 in
         K.acc_set b out [ i ] (build_expr b ~item ~args e)));
  ignore
    (Host.emit m
       {
         Host.host_args =
           [ Types.memref_dyn Types.f32; Types.memref_dyn Types.f32;
             Types.memref_dyn Types.f32; Types.memref_dyn Types.f32; Types.Index ];
         buffers =
           List.init 4 (fun i ->
               { Host.buf_data_arg = i; buf_dims = [ Host.Arg 4 ];
                 buf_element = Types.f32 });
         globals = [];
         body =
           [
             Host.Submit
               {
                 Host.cg_kernel = "expr_k";
                 cg_global = [ Host.Arg 4 ];
                 cg_local = None;
                 cg_captures =
                   [ Host.Capture_acc (0, S.Read); Host.Capture_acc (1, S.Read);
                     Host.Capture_acc (2, S.Read); Host.Capture_acc (3, S.Write) ];
               };
           ];
       });
  ignore (Driver.compile (Driver.config ~verify_each:true mode) m);
  let st = Random.State.make [| Hashtbl.hash e |] in
  let inputs =
    Array.init 3 (fun _ -> Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0))
  in
  let allocs =
    Array.map
      (fun data ->
        let a = Memory.alloc ~size:n () in
        Array.iteri (fun i x -> a.Memory.data.(i) <- Memory.F x) data;
        a)
      inputs
  in
  let out = Memory.alloc ~size:n () in
  let harg a = HI.Scalar (Interp.Mem (Memory.full_view a)) in
  ignore
    (HI.run ~module_op:m
       [ harg allocs.(0); harg allocs.(1); harg allocs.(2); harg out;
         HI.Scalar (Interp.I n) ]);
  let ok = ref true in
  for i = 0 to n - 1 do
    let expect = eval_expr inputs i e in
    let got = Memory.cell_to_float out.Memory.data.(i) in
    let err = Float.abs (got -. expect) in
    if err > 1e-3 && err > 1e-3 *. Float.abs expect then ok := false
  done;
  !ok

let expr_kernel_correct mode_name mode =
  Helpers.qtest ~count:25
    (Printf.sprintf "random expression kernels correct under %s" mode_name)
    expr_gen
    (fun e -> run_expr_workload e mode)

(* ------------------------------------------------------------------ *)
(* 2. Random module round-trips                                        *)
(* ------------------------------------------------------------------ *)

(* A random straight-line function over i64 values. Each step either
   introduces a constant or combines two previous values. *)
let steps_gen =
  QCheck2.Gen.(
    list_size (int_range 1 30)
      (oneof
         [
           map (fun c -> `Const c) (int_range (-100) 100);
           map3 (fun o a b -> `Bin (o, a, b))
             (oneofl [ "arith.addi"; "arith.subi"; "arith.muli"; "arith.andi" ])
             (int_range 0 1000) (int_range 0 1000);
         ]))

let module_of_steps steps =
  let m = Helpers.fresh_module () in
  ignore
    (Dialects.Func.func m "f" ~args:[ Types.i64 ] ~results:[] (fun b vals ->
         let values = ref [| List.hd vals |] in
         List.iter
           (fun step ->
             let pick i = !values.(i mod Array.length !values) in
             let v =
               match step with
               | `Const c -> A.const_int b c
               | `Bin (name, i, j) ->
                 Builder.op1 b name ~operands:[ pick i; pick j ]
                   ~result_type:Types.i64
             in
             values := Array.append !values [| v |])
           steps;
         Dialects.Func.return b []))
  |> ignore;
  m

let roundtrip_random_modules =
  Helpers.qtest ~count:50 "printer/parser round-trip on random modules"
    steps_gen
    (fun steps ->
      let m = module_of_steps steps in
      let s = Printer.to_string m in
      let m' = Parser.parse_module s in
      Printer.to_string m' = s)

(* ------------------------------------------------------------------ *)
(* 3. Alias laws                                                       *)
(* ------------------------------------------------------------------ *)

(* Build a kernel exposing a zoo of pointer-like values, then check laws
   on random pairs. *)
let alias_zoo () =
  let values = ref [] in
  let _m, f =
    Helpers.with_kernel ~dims:1
      ~args:
        [ K.Acc (1, S.Read_write, Types.f32); K.Acc (1, S.Read_write, Types.f32);
          K.Ptr Types.f32 ]
      (fun b ~item ~args ->
        match args with
        | [ a1; a2; p ] ->
          let i = K.gid b item 0 in
          let zero = A.const_index b 0 in
          values :=
            [ a1; a2; p;
              K.acc_view b a1 [ i ]; K.acc_view b a1 [ zero ];
              K.acc_view b a1 [ zero ]; K.acc_view b a2 [ i ];
              Dialects.Memref.alloca b [ 4 ] Types.f32;
              Dialects.Memref.alloca b [ 4 ] Types.f32;
              Dialects.Gpu.alloc_local b [ 8 ] Types.f32 ]
        | _ -> assert false)
  in
  Sycl_core.Alias.add_noalias_pair f 1 2;
  Array.of_list !values

let alias_laws =
  let zoo = lazy (alias_zoo ()) in
  Helpers.qtest ~count:200 "alias analysis is symmetric; must implies may"
    QCheck2.Gen.(pair (int_bound 9) (int_bound 9))
    (fun (i, j) ->
      let zoo = Lazy.force zoo in
      let a = zoo.(i) and b = zoo.(j) in
      let r1 = Sycl_core.Alias.alias a b and r2 = Sycl_core.Alias.alias b a in
      r1 = r2
      && (not (Core.value_equal a b) || r1 = Sycl_core.Alias.Must_alias)
      && (r1 <> Sycl_core.Alias.Must_alias || Sycl_core.Alias.may_alias a b))

(* Same as run_expr_workload but with progressive lowering enabled — the
   flattened-ABI kernels must compute identical results. *)
let expr_kernel_lowered =
  Helpers.qtest ~count:15 "random expression kernels correct after lowering"
    expr_gen
    (fun e ->
      let n = 64 in
      let m = Helpers.fresh_module () in
      ignore
        (K.define m ~name:"expr_k" ~dims:1
           ~args:
             [ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Read, Types.f32);
               K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32) ]
           (fun b ~item ~args ->
             let i = K.gid b item 0 in
             K.acc_set b (List.nth args 3) [ i ] (build_expr b ~item ~args e)));
      ignore
        (Host.emit m
           {
             Host.host_args =
               [ Types.memref_dyn Types.f32; Types.memref_dyn Types.f32;
                 Types.memref_dyn Types.f32; Types.memref_dyn Types.f32;
                 Types.Index ];
             buffers =
               List.init 4 (fun i ->
                   { Host.buf_data_arg = i; buf_dims = [ Host.Arg 4 ];
                     buf_element = Types.f32 });
             globals = [];
             body =
               [ Host.Submit
                   { Host.cg_kernel = "expr_k"; cg_global = [ Host.Arg 4 ];
                     cg_local = None;
                     cg_captures =
                       [ Host.Capture_acc (0, S.Read); Host.Capture_acc (1, S.Read);
                         Host.Capture_acc (2, S.Read); Host.Capture_acc (3, S.Write) ] } ];
           });
      ignore
        (Driver.compile
           (Driver.config ~enable_lowering:true ~verify_each:true Driver.Sycl_mlir)
           m);
      let st = Random.State.make [| Hashtbl.hash e + 1 |] in
      let inputs =
        Array.init 3 (fun _ -> Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0))
      in
      let allocs =
        Array.map
          (fun data ->
            let a = Memory.alloc ~size:n () in
            Array.iteri (fun i x -> a.Memory.data.(i) <- Memory.F x) data;
            a)
          inputs
      in
      let out = Memory.alloc ~size:n () in
      let harg a = HI.Scalar (Interp.Mem (Memory.full_view a)) in
      ignore
        (HI.run ~module_op:m
           [ harg allocs.(0); harg allocs.(1); harg allocs.(2); harg out;
             HI.Scalar (Interp.I n) ]);
      let ok = ref true in
      for i = 0 to n - 1 do
        let expect = eval_expr inputs i e in
        let got = Memory.cell_to_float out.Memory.data.(i) in
        let err = Float.abs (got -. expect) in
        if err > 1e-3 && err > 1e-3 *. Float.abs expect then ok := false
      done;
      !ok)

let tests =
  ( "properties",
    [
      expr_kernel_correct "DPC++" Driver.Dpcpp;
      expr_kernel_correct "SYCL-MLIR" Driver.Sycl_mlir;
      expr_kernel_lowered;
      roundtrip_random_modules;
      alias_laws;
    ] )
