(* SYCL-aware alias analysis tests (Section V-A). *)

open Mlir
module A = Dialects.Arith
module Alias = Sycl_core.Alias
module K = Sycl_frontend.Kernel
module S = Sycl_core.Sycl_types

let check_alias = Alcotest.(check string)
let res r = Alias.result_to_string r

let acc_args n =
  List.init n (fun _ -> K.Acc (1, S.Read_write, Types.f32))

let tests_list =
  [
    Alcotest.test_case "identical values must-alias" `Quick (fun () ->
        let _m, _f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ] (fun _b vals ->
              let x = List.hd vals in
              check_alias "x vs x" "must" (res (Alias.alias x x)))
        in
        ());
    Alcotest.test_case "distinct allocations never alias" `Quick (fun () ->
        let _m, _f =
          Helpers.with_func (fun b _ ->
              let a = Dialects.Memref.alloca b [ 4 ] Types.f32 in
              let c = Dialects.Memref.alloca b [ 4 ] Types.f32 in
              check_alias "a vs c" "no" (res (Alias.alias a c)))
        in
        ());
    Alcotest.test_case "allocation never aliases a function argument" `Quick (fun () ->
        let _m, _f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ] (fun b vals ->
              let arg = List.hd vals in
              let a = Dialects.Memref.alloca b [ 4 ] Types.f32 in
              check_alias "alloca vs arg" "no" (res (Alias.alias a arg)))
        in
        ());
    Alcotest.test_case "two memref arguments may alias" `Quick (fun () ->
        let _m, _f =
          Helpers.with_func
            ~args:[ Types.memref_dyn Types.f32; Types.memref_dyn Types.f32 ]
            (fun _b vals ->
              match vals with
              | [ x; y ] -> check_alias "args" "may" (res (Alias.alias x y))
              | _ -> assert false)
        in
        ());
    Alcotest.test_case "different memory spaces never alias" `Quick (fun () ->
        let _m, _f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ] (fun b vals ->
              let glob = List.hd vals in
              let local = Dialects.Gpu.alloc_local b [ 16 ] Types.f32 in
              check_alias "global vs local" "no" (res (Alias.alias glob local)))
        in
        ());
    Alcotest.test_case
      "accessors may alias by default (SYCL allows overlapping buffers)" `Quick
      (fun () ->
        let _m, _f =
          Helpers.with_kernel ~dims:1 ~args:(acc_args 2) (fun b ~item:_ ~args ->
              match args with
              | [ a1; a2 ] ->
                let i = A.const_index b 0 in
                let v1 = K.acc_view b a1 [ i ] in
                let v2 = K.acc_view b a2 [ i ] in
                check_alias "subscripts of distinct accessors" "may"
                  (res (Alias.alias v1 v2))
              | _ -> assert false)
        in
        ());
    Alcotest.test_case "host no-alias facts prove accessors disjoint" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_kernel ~dims:1 ~args:(acc_args 2) (fun b ~item:_ ~args ->
              match args with
              | [ a1; a2 ] ->
                let i = A.const_index b 0 in
                ignore (K.acc_view b a1 [ i ]);
                ignore (K.acc_view b a2 [ i ])
              | _ -> assert false)
        in
        Alias.add_noalias_pair f 1 2;
        let subs = Core.collect_named f "sycl.accessor.subscript" in
        match List.map (fun s -> Core.result s 0) subs with
        | [ v1; v2 ] -> check_alias "now disjoint" "no" (res (Alias.alias v1 v2))
        | _ -> Alcotest.fail "expected two subscripts");
    Alcotest.test_case "identical subscripts must-alias, different indices may"
      `Quick (fun () ->
        let _m, _f =
          Helpers.with_kernel ~dims:1 ~args:(acc_args 1) (fun b ~item:_ ~args ->
              let a = List.hd args in
              let i = A.const_index b 0 in
              let j = A.const_index b 1 in
              let v1 = K.acc_view b a [ i ] in
              let v2 = K.acc_view b a [ i ] in
              let v3 = K.acc_view b a [ j ] in
              check_alias "same index" "must" (res (Alias.alias v1 v2));
              check_alias "different index" "may" (res (Alias.alias v1 v3)))
        in
        ());
    Alcotest.test_case "subscript view does not alias private allocas" `Quick
      (fun () ->
        let _m, _f =
          Helpers.with_kernel ~dims:1 ~args:(acc_args 1) (fun b ~item:_ ~args ->
              let a = List.hd args in
              let i = A.const_index b 0 in
              let v = K.acc_view b a [ i ] in
              let p = Dialects.Memref.alloca b [ 1 ] Types.f32 in
              check_alias "accessor data vs private" "no" (res (Alias.alias v p)))
        in
        ());
    Alcotest.test_case "base_of walks through subscripts" `Quick (fun () ->
        let _m, _f =
          Helpers.with_kernel ~dims:1 ~args:(acc_args 1) (fun b ~item:_ ~args ->
              let a = List.hd args in
              let i = A.const_index b 0 in
              let v = K.acc_view b a [ i ] in
              Alcotest.(check bool) "accessor arg base" true
                (match Alias.base_of v with
                | Alias.Accessor_arg x -> Core.value_equal x a
                | _ -> false))
        in
        ());
    Alcotest.test_case "globals never alias accessors" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        ignore (Dialects.Llvm.global m "tbl" (Attr.Dense_float [| 1.0 |]));
        let _f =
          Sycl_frontend.Kernel.define m ~name:"k" ~dims:1 ~args:(acc_args 1)
            (fun b ~item:_ ~args ->
              let a = List.hd args in
              let g = Dialects.Llvm.addressof b m "tbl" in
              let i = A.const_index b 0 in
              let v = K.acc_view b a [ i ] in
              check_alias "global vs accessor" "no" (res (Alias.alias g v)))
        in
        ());
  ]

let tests = ("alias", tests_list)
