test/test_verifier.ml: Alcotest Attr Builder Core Dialects Helpers List Mlir Pass String Types Verifier
