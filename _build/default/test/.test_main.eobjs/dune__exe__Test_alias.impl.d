test/test_alias.ml: Alcotest Attr Core Dialects Helpers List Mlir Sycl_core Sycl_frontend Types
