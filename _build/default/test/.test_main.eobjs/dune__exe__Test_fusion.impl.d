test/test_fusion.ml: Alcotest Array Core Dialects Helpers List Mlir Pass Random Sycl_core Sycl_frontend Sycl_runtime Sycl_sim Types
