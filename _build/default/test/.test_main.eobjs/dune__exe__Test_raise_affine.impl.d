test/test_raise_affine.ml: Alcotest Core Dialects Helpers List Mlir Pass Sycl_core Sycl_frontend Sycl_runtime Sycl_workloads Types
