test/test_barrier_safety.ml: Alcotest Dialects Helpers List Mlir Printf Sycl_core Sycl_frontend Sycl_sim Sycl_workloads Types
