test/test_rewrite.ml: Alcotest Attr Core Dialects Helpers List Mlir Option Pass Rewrite Sycl_core Types
