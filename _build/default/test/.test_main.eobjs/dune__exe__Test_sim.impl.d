test/test_sim.ml: Alcotest Array Core Dialects Helpers List Mlir Sycl_core Sycl_frontend Sycl_sim Types
