test/test_reaching_defs.ml: Alcotest Attr Builder Core Dialects Helpers List Mlir Option Sycl_core Types
