test/test_dataflow.ml: Alcotest Attr Core Dataflow Dialects Fmt Hashtbl Helpers List Mlir Option Printf Rewrite Types
