test/test_properties.ml: Array Builder Core Dialects Float Hashtbl Helpers Lazy List Mlir Parser Printer Printf QCheck2 Random Sycl_core Sycl_frontend Sycl_runtime Sycl_sim Types
