test/test_nd_range.ml: Alcotest Array Common Dialects Extensions Float Helpers List Mlir Pass Polybench Printf Sycl_core Sycl_frontend Sycl_runtime Sycl_sim Sycl_workloads Types
