test/test_runtime.ml: Alcotest Array Attr Core Helpers List Mlir Option Pass Sycl_core Sycl_frontend Sycl_runtime Sycl_sim Types
