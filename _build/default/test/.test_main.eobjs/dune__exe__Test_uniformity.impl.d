test/test_uniformity.ml: Alcotest Attr Builder Core Dialects Fmt Helpers List Mlir Option Sycl_core Sycl_frontend Types
