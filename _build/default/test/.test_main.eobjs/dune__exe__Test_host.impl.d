test/test_host.ml: Alcotest Attr Builder Core Dialects Helpers List Mlir Option Pass Sycl_core Sycl_frontend Types
