test/test_reduction.ml: Alcotest Array Core Dialects Helpers List Mlir Option Pass Sycl_core Sycl_frontend Types
