test/test_parser.ml: Alcotest Attr Core Dialects Helpers List Mlir Option Parser Printer Sycl_core Sycl_frontend Types
