test/helpers.ml: Alcotest Core Dialects List Mlir QCheck2 QCheck_alcotest String Sycl_core Sycl_frontend Verifier
