test/test_corners.ml: Alcotest Array Attr Builder Core Dialects Helpers List Mlir Parser Sycl_core Sycl_frontend Sycl_sim Types
