test/test_internalization.ml: Alcotest Array Attr Core Dialects Float Helpers List Mlir Pass Random Sycl_core Sycl_frontend Sycl_sim Types
