test/test_text_pipeline.ml: Alcotest Common List Mlir Parser Pass Polybench Printer Single_kernel Sycl_core Sycl_runtime Sycl_workloads
