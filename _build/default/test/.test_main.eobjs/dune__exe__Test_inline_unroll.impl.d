test/test_inline_unroll.ml: Alcotest Attr Core Dialects Helpers List Mlir Option Pass Rewrite Sycl_core Sycl_frontend Types
