test/test_workloads.ml: Alcotest Common Helpers List Mlir Polybench Printf QCheck2 Single_kernel Stencil Sycl_core Sycl_workloads
