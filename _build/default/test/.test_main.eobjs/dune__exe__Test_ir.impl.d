test/test_ir.ml: Alcotest Attr Core Dialects Dominance Helpers List Mlir Option Types
