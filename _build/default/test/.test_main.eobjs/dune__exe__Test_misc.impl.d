test/test_misc.ml: Alcotest Array Attr Builder Core Dialects Float Helpers List Mlir Op_registry Pass Printer String Sycl_core Sycl_frontend Sycl_runtime Sycl_sim Types
