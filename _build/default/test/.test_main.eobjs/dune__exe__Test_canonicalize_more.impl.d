test/test_canonicalize_more.ml: Alcotest Attr Core Dialects Helpers List Mlir Pass Printf Rewrite String Sycl_core Sycl_sim Types
