test/test_dialects.ml: Alcotest Attr Builder Core Dialects Helpers List Mlir Op_registry Option QCheck2 Sycl_core Types
