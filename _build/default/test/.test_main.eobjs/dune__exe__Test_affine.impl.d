test/test_affine.ml: Affine_expr Alcotest Array Attr Helpers List Mlir Parser QCheck2
