test/test_memory_access.ml: Alcotest Array Builder Core Dialects Helpers List Mlir Printf Sycl_core Sycl_frontend Types
