(* Shared test helpers. *)

open Mlir

let init () =
  Dialects.Register.init ();
  Sycl_core.Sycl_ops.init ();
  Sycl_core.Sycl_host_ops.init ();
  Sycl_core.Licm.init ()

let fresh_module () =
  init ();
  Core.create_module ()

(** A module with a single function [name] whose body is built by [f]. *)
let with_func ?(name = "f") ?(args = []) ?(results = []) f =
  let m = fresh_module () in
  let fn =
    Dialects.Func.func m name ~args ~results (fun b vals ->
        f b vals;
        if results = [] then Dialects.Func.return b [])
  in
  (m, fn)

(** A kernel module (tagged sycl.kernel, item argument first). *)
let with_kernel ?(name = "k") ?(dims = 2) ?(nd = false) ~args f =
  let m = fresh_module () in
  let fn = Sycl_frontend.Kernel.define m ~name ~dims ~nd ~args f in
  (m, fn)

let check_verifies ?(msg = "module verifies") m =
  match Verifier.verify m with
  | Ok () -> ()
  | Error ds ->
    Alcotest.failf "%s: %s" msg
      (String.concat "; " (List.map Verifier.diag_to_string ds))

let count_ops m name = List.length (Core.collect_named m name)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
