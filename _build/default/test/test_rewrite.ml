(* Greedy rewriting, canonicalization, CSE and DCE tests. *)

open Mlir
module A = Dialects.Arith

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_pass pass m =
  let stats = Pass.Stats.create () in
  pass.Pass.run m stats;
  stats

let tests_list =
  [
    Alcotest.test_case "constants fold through arithmetic chains" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.i64 ] (fun b _ ->
              let x = A.const_int b 6 in
              let y = A.const_int b 7 in
              let s = A.muli b x y in
              let t = A.addi b s (A.const_int b 8) in
              Dialects.Func.return b [ t ])
        in
        ignore (run_pass Sycl_core.Canonicalize.pass m);
        (* Everything folds to one constant feeding the return. *)
        let consts = Core.collect_named f "arith.constant" in
        check_int "muls gone" 0 (Helpers.count_ops f "arith.muli");
        check_bool "result constant is 50" true
          (List.exists (fun c -> Core.attr c "value" = Some (Attr.Int 50)) consts));
    Alcotest.test_case "dead pure ops erased" `Quick (fun () ->
        let m, f =
          Helpers.with_func (fun b _ ->
              let x = A.const_int b 1 in
              ignore (A.addi b x x))
        in
        ignore (run_pass Sycl_core.Dce.pass m);
        check_int "body only has return" 1 (List.length (Core.func_body f).Core.body));
    Alcotest.test_case "scf.if with constant condition inlines taken branch" `Quick
      (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ] (fun b vals ->
              let mem = List.hd vals in
              let c = A.const_bool b false in
              ignore
                (Dialects.Scf.if_ b c
                   ~then_:(fun bb ->
                     Dialects.Memref.store bb (A.const_float bb 1.0) mem
                       [ A.const_index bb 0 ];
                     [])
                   ~else_:(fun bb ->
                     Dialects.Memref.store bb (A.const_float bb 2.0) mem
                       [ A.const_index bb 0 ];
                     [])
                   ()))
        in
        ignore (run_pass Sycl_core.Canonicalize.pass m);
        check_int "if gone" 0 (Helpers.count_ops f "scf.if");
        let stores = Core.collect_named f "memref.store" in
        check_int "one store left" 1 (List.length stores);
        (* The else branch (2.0) was taken. *)
        let v, _, _ = Dialects.Memref.store_parts (List.hd stores) in
        check_bool "took else" true
          (Core.attr (Option.get (Core.defining_op v)) "value" = Some (Attr.Float 2.0)));
    Alcotest.test_case "zero-trip scf.for folds away" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ] (fun b vals ->
              let mem = List.hd vals in
              let lb = A.const_index b 5 in
              let ub = A.const_index b 5 in
              let one = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb ~ub ~step:one (fun bb iv _ ->
                     Dialects.Memref.store bb (A.const_float bb 1.0) mem [ iv ];
                     [])))
        in
        ignore (run_pass Sycl_core.Canonicalize.pass m);
        check_int "loop gone" 0 (Helpers.count_ops f "scf.for");
        check_int "store gone" 0 (Helpers.count_ops f "memref.store"));
    Alcotest.test_case "zero-trip loop with iter_args yields inits" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.f32 ] (fun b _ ->
              let lb = A.const_index b 3 in
              let ub = A.const_index b 1 in
              let one = A.const_index b 1 in
              let init = A.const_float b 9.0 in
              let loop =
                Dialects.Scf.for_ b ~lb ~ub ~step:one ~iter_args:[ init ]
                  (fun bb _ args -> [ A.addf bb (List.hd args) (List.hd args) ])
              in
              Dialects.Func.return b [ Core.result loop 0 ])
        in
        ignore (run_pass Sycl_core.Canonicalize.pass m);
        check_int "loop gone" 0 (Helpers.count_ops f "scf.for");
        let ret = List.hd (Core.collect_named f "func.return") in
        check_bool "returns the init constant" true
          (Core.attr (Option.get (Core.defining_op (Core.operand ret 0))) "value"
          = Some (Attr.Float 9.0)));
    Alcotest.test_case "CSE merges identical pure ops" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.i64 ] ~results:[ Types.i64 ] (fun b vals ->
              let x = List.hd vals in
              let a = A.addi b x x in
              let b2 = A.addi b x x in
              Dialects.Func.return b [ A.muli b a b2 ])
        in
        ignore (run_pass Sycl_core.Cse.pass m);
        check_int "one addi left" 1 (Helpers.count_ops f "arith.addi"));
    Alcotest.test_case "CSE respects result types" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.Index; Types.i32 ] (fun b _ ->
              let a = A.const_index b 0 in
              let b2 = A.const_int b ~ty:Types.i32 0 in
              Dialects.Func.return b [ a; b2 ])
        in
        ignore (run_pass Sycl_core.Cse.pass m);
        check_int "both constants kept" 2 (Helpers.count_ops f "arith.constant"));
    Alcotest.test_case "CSE works across region nesting (outer visible inside)" `Quick
      (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ] (fun b vals ->
              let mem = List.hd vals in
              let zero = A.const_index b 0 in
              let c = A.const_bool b true in
              ignore
                (Dialects.Scf.if_ b c
                   ~then_:(fun bb ->
                     let zero' = A.const_index bb 0 in
                     Dialects.Memref.store bb (A.const_float bb 1.0) mem [ zero' ];
                     [])
                   ());
              ignore zero)
        in
        ignore (run_pass Sycl_core.Cse.pass m);
        (* The inner index 0 merged with the outer one. *)
        let consts =
          List.filter
            (fun (o : Core.op) -> Core.attr o "value" = Some (Attr.Int 0))
            (Core.collect_named f "arith.constant")
        in
        check_int "one zero constant" 1 (List.length consts));
    Alcotest.test_case "CSE does not merge loads" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ]
            ~results:[ Types.f32 ] (fun b vals ->
              let mem = List.hd vals in
              let zero = A.const_index b 0 in
              let a = Dialects.Memref.load b mem [ zero ] in
              Dialects.Memref.store b (A.const_float b 3.0) mem [ zero ];
              let c = Dialects.Memref.load b mem [ zero ] in
              Dialects.Func.return b [ A.addf b a c ])
        in
        ignore (run_pass Sycl_core.Cse.pass m);
        check_int "two loads kept" 2 (Helpers.count_ops f "memref.load"));
    Alcotest.test_case "dead alloca with only stores removed" `Quick (fun () ->
        let m, f =
          Helpers.with_func (fun b _ ->
              let mem = Dialects.Memref.alloca b [ 4 ] Types.f32 in
              Dialects.Memref.store b (A.const_float b 1.0) mem [ A.const_index b 0 ])
        in
        ignore (run_pass Sycl_core.Dce.pass m);
        check_int "alloca gone" 0 (Helpers.count_ops f "memref.alloca");
        check_int "store gone" 0 (Helpers.count_ops f "memref.store"));
    Alcotest.test_case "alloca with a load survives DCE when load is used" `Quick
      (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.f32 ] (fun b _ ->
              let mem = Dialects.Memref.alloca b [ 4 ] Types.f32 in
              Dialects.Memref.store b (A.const_float b 1.0) mem [ A.const_index b 0 ];
              let v = Dialects.Memref.load b mem [ A.const_index b 0 ] in
              Dialects.Func.return b [ v ])
        in
        ignore (run_pass Sycl_core.Dce.pass m);
        check_int "alloca kept" 1 (Helpers.count_ops f "memref.alloca"));
    Alcotest.test_case "constant_of_value sees through defining constant" `Quick
      (fun () ->
        let _m, _f =
          Helpers.with_func (fun b _ ->
              let x = A.const_int b 5 in
              check_bool "constant recovered" true
                (Rewrite.constant_of_value x = Some (Attr.Int 5)))
        in
        ());
    Alcotest.test_case "canonicalize folds sitofp of folded index math" `Quick
      (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.f32 ] (fun b _ ->
              let n = A.const_index b 64 in
              let cast = A.index_cast b n Types.i64 in
              Dialects.Func.return b [ A.sitofp b cast Types.f32 ])
        in
        ignore (run_pass Sycl_core.Canonicalize.pass m);
        check_int "no casts left" 0
          (Helpers.count_ops f "arith.index_cast" + Helpers.count_ops f "arith.sitofp");
        let ret = List.hd (Core.collect_named f "func.return") in
        check_bool "returns 64.0" true
          (Core.attr (Option.get (Core.defining_op (Core.operand ret 0))) "value"
          = Some (Attr.Float 64.0)));
  ]

let tests = ("rewrite", tests_list)
