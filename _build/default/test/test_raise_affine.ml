(* scf -> affine raising tests, and interoperability of the affine form
   with the SYCL passes and the simulator. *)

open Mlir
module A = Dialects.Arith
module K = Sycl_frontend.Kernel
module S = Sycl_core.Sycl_types

let raise_m m =
  let stats = Pass.Stats.create () in
  Sycl_core.Raise_affine.pass.Pass.run m stats;
  stats

let tests_list =
  [
    Alcotest.test_case "constant-bound scf.for raises to affine.for" `Quick
      (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.f32 ] (fun b vals ->
              let mem = List.hd vals in
              let zero = A.const_index b 0 in
              let ten = A.const_index b 10 in
              let one = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:ten ~step:one (fun bb iv _ ->
                     Dialects.Memref.store bb (A.const_float bb 1.0) mem [ iv ];
                     [])))
        in
        let stats = raise_m m in
        Helpers.check_verifies m;
        Alcotest.(check int) "raised" 1 (Pass.Stats.get stats "raise-affine.raised");
        Alcotest.(check int) "no scf.for left" 0 (Helpers.count_ops f "scf.for");
        let loop = List.hd (Core.collect_named f "affine.for") in
        Alcotest.(check bool) "constant bounds recovered" true
          (Dialects.Affine_ops.for_const_bounds loop = Some (0, 10)));
    Alcotest.test_case "dynamic ub raises with an identity map operand" `Quick
      (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.Index ] (fun b vals ->
              let n = List.hd vals in
              let zero = A.const_index b 0 in
              let one = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:n ~step:one (fun bb iv _ ->
                     ignore (A.addi bb iv iv);
                     [])))
        in
        ignore (raise_m m);
        Helpers.check_verifies m;
        let loop = List.hd (Core.collect_named f "affine.for") in
        Alcotest.(check int) "one ub operand" 1
          (List.length (Dialects.Affine_ops.for_ub_operands loop)));
    Alcotest.test_case "iter_args survive raising" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~results:[ Types.f32 ] (fun b _ ->
              let zero = A.const_index b 0 in
              let four = A.const_index b 4 in
              let one = A.const_index b 1 in
              let init = A.const_float b 1.0 in
              let loop =
                Dialects.Scf.for_ b ~lb:zero ~ub:four ~step:one ~iter_args:[ init ]
                  (fun bb _ args -> [ A.addf bb (List.hd args) (List.hd args) ])
              in
              Dialects.Func.return b [ Core.result loop 0 ])
        in
        ignore (raise_m m);
        Helpers.check_verifies m;
        let loop = List.hd (Core.collect_named f "affine.for") in
        Alcotest.(check int) "one iter arg" 1
          (List.length (Dialects.Affine_ops.for_iter_args loop));
        Alcotest.(check int) "one result" 1 (Core.num_results loop));
    Alcotest.test_case "raised gemm kernel still optimizes and validates" `Quick
      (fun () ->
        let w = Sycl_workloads.Polybench.gemm ~n:16 in
        let m = w.Sycl_workloads.Common.w_module () in
        (* Raise first (as Polygeist would produce), then the SYCL
           pipeline must handle the affine form. *)
        ignore (raise_m m);
        let c =
          Sycl_core.Driver.compile
            (Sycl_core.Driver.config ~verify_each:true Sycl_core.Driver.Sycl_mlir)
            m
        in
        let stats = Pass.merged_stats c.Sycl_core.Driver.pipeline_result in
        Alcotest.(check int) "reduction fires on affine form" 1
          (Pass.Stats.get stats "detect-reduction/reduction.rewritten");
        let args, validate = w.Sycl_workloads.Common.w_data () in
        ignore (Sycl_runtime.Host_interp.run ~module_op:m args);
        Alcotest.(check bool) "valid" true (validate ()));
    Alcotest.test_case "negative or dynamic steps are left as scf" `Quick (fun () ->
        let m, f =
          Helpers.with_func ~args:[ Types.Index ] (fun b vals ->
              let st = List.hd vals in
              let zero = A.const_index b 0 in
              let ten = A.const_index b 10 in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:ten ~step:st (fun bb iv _ ->
                     ignore (A.addi bb iv iv);
                     [])))
        in
        let stats = raise_m m in
        Alcotest.(check int) "nothing raised" 0
          (Pass.Stats.get stats "raise-affine.raised");
        Alcotest.(check int) "scf.for kept" 1 (Helpers.count_ops f "scf.for"));
  ]

let tests = ("raise-affine", tests_list)
