(* Printer/parser round-trip tests and error handling. *)

open Mlir

let roundtrip name src_builder =
  Alcotest.test_case name `Quick (fun () ->
      Helpers.init ();
      let m = src_builder () in
      let s = Printer.to_string m in
      let m' = Parser.parse_module s in
      Alcotest.(check string) "round trip" s (Printer.to_string m'))

let parse_type s =
  Helpers.init ();
  let p = Parser.make_parser s in
  Parser.parse_type p

let type_roundtrip name ty =
  Alcotest.test_case ("type " ^ name) `Quick (fun () ->
      Helpers.init ();
      let s = Types.to_string ty in
      Alcotest.(check string) "type round trip" s (Types.to_string (parse_type s)))

let attr_roundtrip name a =
  Alcotest.test_case ("attr " ^ name) `Quick (fun () ->
      Helpers.init ();
      let s = Attr.to_string a in
      let p = Parser.make_parser s in
      let a' = Parser.parse_attr p in
      Alcotest.(check string) "attr round trip" s (Attr.to_string a'))

let parse_fails name src =
  Alcotest.test_case ("error: " ^ name) `Quick (fun () ->
      Helpers.init ();
      match Parser.parse_module src with
      | _ -> Alcotest.fail "expected a parse error"
      | exception Parser.Parse_error _ -> ())

let tests_list =
  [
    type_roundtrip "i32" Types.i32;
    type_roundtrip "i1" Types.i1;
    type_roundtrip "index" Types.Index;
    type_roundtrip "f32" Types.f32;
    type_roundtrip "f64" Types.f64;
    type_roundtrip "static memref" (Types.memref [ Some 4; Some 8 ] Types.f32);
    type_roundtrip "dynamic memref" (Types.memref_dyn Types.f32);
    type_roundtrip "local memref" (Types.memref ~space:Types.Local [ Some 16 ] Types.f32);
    type_roundtrip "private memref of sycl id"
      (Types.memref ~space:Types.Private [ Some 1 ] (Sycl_core.Sycl_types.id 3));
    type_roundtrip "function type" (Types.Function ([ Types.i32; Types.f32 ], [ Types.i1 ]));
    type_roundtrip "sycl item" (Sycl_core.Sycl_types.item 2);
    type_roundtrip "sycl nd_item" (Sycl_core.Sycl_types.nd_item 3);
    type_roundtrip "sycl accessor"
      (Sycl_core.Sycl_types.accessor ~mode:Sycl_core.Sycl_types.Read ~dims:2 Types.f32);
    type_roundtrip "sycl buffer" (Sycl_core.Sycl_types.buffer ~dims:1 Types.f64);
    type_roundtrip "sycl queue" Sycl_core.Sycl_types.Queue;
    attr_roundtrip "int" (Attr.Int 42);
    attr_roundtrip "negative int" (Attr.Int (-17));
    attr_roundtrip "float" (Attr.Float 1.5);
    attr_roundtrip "negative float" (Attr.Float (-0.375));
    attr_roundtrip "bool" (Attr.Bool true);
    attr_roundtrip "string" (Attr.String "hello \"world\"\n");
    attr_roundtrip "symbol" (Attr.Symbol "kernel_name");
    attr_roundtrip "array" (Attr.Array [ Attr.Int 1; Attr.Bool false; Attr.String "x" ]);
    attr_roundtrip "dense ints" (Attr.Dense_int [| 1; -2; 3 |]);
    attr_roundtrip "dense floats" (Attr.Dense_float [| 0.5; -1.25 |]);
    attr_roundtrip "unit" Attr.Unit;
    roundtrip "empty module" (fun () -> Helpers.fresh_module ());
    roundtrip "function with arith body" (fun () ->
        let m, _ =
          Helpers.with_func ~args:[ Types.i64; Types.i64 ] (fun b vals ->
              match vals with
              | [ x; y ] ->
                let s = Dialects.Arith.addi b x y in
                let p = Dialects.Arith.muli b s s in
                ignore (Dialects.Arith.cmpi b Dialects.Arith.Slt s p)
              | _ -> assert false)
        in
        m);
    roundtrip "nested control flow" (fun () ->
        let m, _ =
          Helpers.with_func (fun b _ ->
              let c = Dialects.Arith.const_bool b true in
              let zero = Dialects.Arith.const_index b 0 in
              let ten = Dialects.Arith.const_index b 10 in
              let one = Dialects.Arith.const_index b 1 in
              ignore
                (Dialects.Scf.if_ b c
                   ~then_:(fun bb ->
                     ignore
                       (Dialects.Scf.for_ bb ~lb:zero ~ub:ten ~step:one
                          (fun b2 iv _ ->
                            ignore (Dialects.Arith.addi b2 iv iv);
                            []));
                     [])
                   ()))
        in
        m);
    roundtrip "loop with iter_args" (fun () ->
        let m, _ =
          Helpers.with_func (fun b _ ->
              let zero = Dialects.Arith.const_index b 0 in
              let ten = Dialects.Arith.const_index b 10 in
              let one = Dialects.Arith.const_index b 1 in
              let init = Dialects.Arith.const_float b 0.0 in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:ten ~step:one ~iter_args:[ init ]
                   (fun bb _ args ->
                     [ Dialects.Arith.addf bb (List.hd args) (List.hd args) ])))
        in
        m);
    roundtrip "affine loop with map bounds" (fun () ->
        let m, _ =
          Helpers.with_func ~args:[ Types.Index ] (fun b vals ->
              let n = List.hd vals in
              ignore
                (Dialects.Affine_ops.for_ b ~lb:(Dialects.Affine_ops.Const 0)
                   ~ub:(Dialects.Affine_ops.Value n) (fun bb iv _ ->
                     ignore (Dialects.Arith.addi bb iv iv);
                     [])))
        in
        m);
    roundtrip "sycl kernel" (fun () ->
        let m, _ =
          Helpers.with_kernel ~dims:1
            ~args:[ Sycl_frontend.Kernel.Acc (1, Sycl_core.Sycl_types.Read, Types.f32) ]
            (fun b ~item ~args ->
              let i = Sycl_frontend.Kernel.gid b item 0 in
              ignore (Sycl_frontend.Kernel.acc_get b (List.hd args) [ i ]))
        in
        m);
    roundtrip "host program with llvm calls" (fun () ->
        let m = Helpers.fresh_module () in
        ignore
          (Sycl_frontend.Host.emit m
             {
               Sycl_frontend.Host.host_args = [ Types.memref_dyn Types.f32; Types.Index ];
               buffers =
                 [ { Sycl_frontend.Host.buf_data_arg = 0;
                     buf_dims = [ Sycl_frontend.Host.Arg 1 ]; buf_element = Types.f32 } ];
               globals = [ ("tbl", Attr.Dense_float [| 1.0; 2.0 |]) ];
               body = [];
             });
        m);
    parse_fails "undefined value" "builtin.module() ({ func.return(%0) : (i32) -> () })";
    parse_fails "unbalanced braces" "builtin.module() ({";
    parse_fails "bad type" "builtin.module() ({ %0 = arith.constant() {value = 1} : () -> (wibble) })";
    parse_fails "result arity mismatch"
      "builtin.module() ({ %0, %1 = arith.constant() {value = 1} : () -> (i32) })";
    Alcotest.test_case "parse accepts comments and whitespace" `Quick (fun () ->
        Helpers.init ();
        let m =
          Parser.parse_module
            "// leading comment\nbuiltin.module() ({\n  // inner\n})"
        in
        Alcotest.(check bool) "is module" true (Core.is_module m));
    Alcotest.test_case "parse_string on non-module op" `Quick (fun () ->
        Helpers.init ();
        let op = Parser.parse_string "%0 = arith.constant() {value = 3} : () -> (i64)" in
        Alcotest.(check int) "constant value" 3
          (Option.get (Dialects.Arith.constant_int op)));
  ]

let tests = ("printer-parser", tests_list)
