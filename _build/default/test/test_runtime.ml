(* SYCL runtime tests: buffers, transfers, dependency tracking, launch
   cost accounting, USM, and the host interpreter. *)

open Mlir
module K = Sycl_frontend.Kernel
module Host = Sycl_frontend.Host
module S = Sycl_core.Sycl_types
module Objects = Sycl_runtime.Objects
module HI = Sycl_runtime.Host_interp
module Memory = Sycl_sim.Memory
module Cost = Sycl_sim.Cost
module Interp = Sycl_sim.Interp

let harg a = HI.Scalar (Interp.Mem (Memory.full_view a))
let iarg n = HI.Scalar (Interp.I n)

(* A two-buffer copy program: c = a (optionally twice via a temp). *)
let copy_program ?(via_temp = false) m =
  ignore
    (K.define m ~name:"copy" ~dims:1
       ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32) ]
       (fun b ~item ~args ->
         match args with
         | [ a; c ] ->
           let i = K.gid b item 0 in
           K.acc_set b c [ i ] (K.acc_get b a [ i ])
         | _ -> assert false));
  let buf i =
    { Host.buf_data_arg = i; buf_dims = [ Host.Arg 3 ]; buf_element = Types.f32 }
  in
  let submit from into =
    Host.Submit
      {
        Host.cg_kernel = "copy";
        cg_global = [ Host.Arg 3 ];
        cg_local = None;
        cg_captures =
          [ Host.Capture_acc (from, S.Read); Host.Capture_acc (into, S.Write) ];
      }
  in
  ignore
    (Host.emit m
       {
         Host.host_args =
           [ Types.memref_dyn Types.f32; Types.memref_dyn Types.f32;
             Types.memref_dyn Types.f32; Types.Index ];
         buffers = [ buf 0; buf 1; buf 2 ];
         globals = [];
         body =
           (if via_temp then [ submit 0 1; submit 1 2 ] else [ submit 0 2 ]);
       })

let run ?(via_temp = false) () =
  let m = Helpers.fresh_module () in
  copy_program ~via_temp m;
  let _ = Pass.run_pipeline ~verify_each:true [ Sycl_core.Host_raising.pass ] m in
  let n = 64 in
  let a = Memory.alloc ~label:"a" ~size:n () in
  Array.iteri (fun i _ -> a.Memory.data.(i) <- Memory.F (float_of_int i)) a.Memory.data;
  let t = Memory.alloc ~label:"t" ~size:n () in
  let c = Memory.alloc ~label:"c" ~size:n () in
  let result = HI.run ~module_op:m [ harg a; harg t; harg c; iarg n ] in
  (result, c)

let tests_list =
  [
    Alcotest.test_case "buffer round trip: data reaches the device and back" `Quick
      (fun () ->
        let _result, c = run () in
        Array.iteri
          (fun i cell ->
            match cell with
            | Memory.F x -> Alcotest.(check (float 1e-6)) "copied" (float_of_int i) x
            | Memory.I _ -> Alcotest.fail "int cell")
          c.Memory.data);
    Alcotest.test_case "transfers charged for used buffers" `Quick (fun () ->
        let result, _ = run () in
        Alcotest.(check bool) "transfer cycles > 0" true
          (result.HI.transfer_cycles > 0));
    Alcotest.test_case "RAW dependency between command groups recorded" `Quick
      (fun () ->
        let result, c = run ~via_temp:true () in
        Alcotest.(check int) "two launches" 2 result.HI.kernel_launches;
        Alcotest.(check bool) "dependency edge present" true
          (result.HI.dependency_edges >= 1);
        (match c.Memory.data.(5) with
        | Memory.F x -> Alcotest.(check (float 1e-6)) "data flowed through temp" 5.0 x
        | _ -> Alcotest.fail "int cell"));
    Alcotest.test_case "dead arguments reduce the launch overhead" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        copy_program m;
        let _ = Pass.run_pipeline [ Sycl_core.Host_raising.pass ] m in
        let k = Option.get (Core.lookup_func m "copy") in
        let cost_with_all =
          let n = 16 in
          let a = Memory.alloc ~size:n () and t = Memory.alloc ~size:n ()
          and c = Memory.alloc ~size:n () in
          (HI.run ~module_op:m [ harg a; harg t; harg c; iarg n ]).HI.launch_overhead_cycles
        in
        (* Mark one argument dead and relaunch. *)
        Core.set_attr k "sycl.dead_args" (Attr.Array [ Attr.Int 1 ]);
        let cost_with_dead =
          let n = 16 in
          let a = Memory.alloc ~size:n () and t = Memory.alloc ~size:n ()
          and c = Memory.alloc ~size:n () in
          (HI.run ~module_op:m [ harg a; harg t; harg c; iarg n ]).HI.launch_overhead_cycles
        in
        Alcotest.(check bool) "cheaper launch" true (cost_with_dead < cost_with_all));
    Alcotest.test_case "scheduler dependencies follow the accessor model" `Quick
      (fun () ->
        (* Objects-level check of RAW/WAR/WAW edges. *)
        let host = Memory.alloc ~size:8 () in
        let b = Objects.make_buffer ~dims:[| 8 |] ~is_float:true host in
        let acc mode = Objects.Cap_accessor
            { Objects.acc_buffer = b; acc_mode = mode;
              acc_range = [| 8 |]; acc_offset = [| 0 |] } in
        (* cmd 1 writes; cmd 2 reads (RAW on 1); cmd 3 writes (WAW on 1,
           WAR on 2). *)
        let w = [ (1, acc S.Write) ] in
        Alcotest.(check (list int)) "no deps initially" [] (Objects.dependencies_of w);
        Objects.note_command w 1;
        let r = [ (1, acc S.Read) ] in
        Alcotest.(check (list int)) "RAW" [ 1 ] (Objects.dependencies_of r);
        Objects.note_command r 2;
        let w2 = [ (1, acc S.Write) ] in
        Alcotest.(check (list int)) "WAW + WAR" [ 1; 2 ] (Objects.dependencies_of w2));
    Alcotest.test_case "buffer device copy is lazy and cached" `Quick (fun () ->
        let host = Memory.alloc ~size:32 () in
        let b = Objects.make_buffer ~dims:[| 32 |] ~is_float:true host in
        let p = Cost.default in
        let _, cost1 = Objects.ensure_on_device p b in
        let _, cost2 = Objects.ensure_on_device p b in
        Alcotest.(check bool) "first transfer costs" true (cost1 > 0);
        Alcotest.(check int) "second is free" 0 cost2);
    Alcotest.test_case "sync_to_host only copies when dirty" `Quick (fun () ->
        let host = Memory.alloc ~size:32 () in
        let b = Objects.make_buffer ~dims:[| 32 |] ~is_float:true host in
        let p = Cost.default in
        let dev, _ = Objects.ensure_on_device p b in
        dev.Memory.data.(0) <- Memory.F 42.0;
        Alcotest.(check int) "clean: no copy" 0 (Objects.sync_to_host p b);
        b.Objects.b_device_dirty <- true;
        Alcotest.(check bool) "dirty: copy happens" true (Objects.sync_to_host p b > 0);
        (match host.Memory.data.(0) with
        | Memory.F x -> Alcotest.(check (float 1e-6)) "data arrived" 42.0 x
        | _ -> Alcotest.fail "int cell"));
    Alcotest.test_case "USM program: malloc/memcpy/kernel/free" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        ignore
          (K.define m ~name:"inc" ~dims:1 ~args:[ K.Ptr Types.f32 ]
             (fun b ~item ~args ->
               let p = List.hd args in
               let i = K.gid b item 0 in
               K.ptr_set b p i (K.addf b (K.ptr_get b p i) (K.fconst b 1.0))));
        ignore
          (Host.emit m
             {
               Host.host_args = [ Types.memref_dyn Types.f32; Types.Index ];
               buffers = [];
               globals = [];
               body =
                 [
                   Host.Usm_alloc (0, Host.Arg 1, Types.f32);
                   Host.Memcpy_h2d (0, 0, Host.Arg 1);
                   Host.Submit
                     {
                       Host.cg_kernel = "inc";
                       cg_global = [ Host.Arg 1 ];
                       cg_local = None;
                       cg_captures = [ Host.Capture_usm 0 ];
                     };
                   Host.Memcpy_d2h (0, 0, Host.Arg 1);
                   Host.Usm_free 0;
                 ];
             });
        let _ = Pass.run_pipeline ~verify_each:true [ Sycl_core.Host_raising.pass ] m in
        let n = 32 in
        let data = Memory.alloc ~size:n () in
        Array.iteri (fun i _ -> data.Memory.data.(i) <- Memory.F (float_of_int i))
          data.Memory.data;
        let result = HI.run ~module_op:m [ harg data; iarg n ] in
        Alcotest.(check bool) "memcpys charged" true (result.HI.transfer_cycles > 0);
        Array.iteri
          (fun i cell ->
            match cell with
            | Memory.F x ->
              Alcotest.(check (float 1e-6)) "incremented" (float_of_int i +. 1.0) x
            | _ -> Alcotest.fail "int cell")
          data.Memory.data);
    Alcotest.test_case "host Repeat loop submits repeatedly" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        ignore
          (K.define m ~name:"inc" ~dims:1
             ~args:[ K.Acc (1, S.Read_write, Types.f32) ]
             (fun b ~item ~args ->
               let a = List.hd args in
               let i = K.gid b item 0 in
               K.acc_update b a [ i ] (fun v -> K.addf b v (K.fconst b 1.0))));
        ignore
          (Host.emit m
             {
               Host.host_args = [ Types.memref_dyn Types.f32; Types.Index; Types.Index ];
               buffers =
                 [ { Host.buf_data_arg = 0; buf_dims = [ Host.Arg 1 ];
                     buf_element = Types.f32 } ];
               globals = [];
               body =
                 [
                   Host.Repeat
                     ( Host.Arg 2,
                       [
                         Host.Submit
                           {
                             Host.cg_kernel = "inc";
                             cg_global = [ Host.Arg 1 ];
                             cg_local = None;
                             cg_captures = [ Host.Capture_acc (0, S.Read_write) ];
                           };
                       ] );
                 ];
             });
        let _ = Pass.run_pipeline ~verify_each:true [ Sycl_core.Host_raising.pass ] m in
        let n = 16 in
        let data = Memory.alloc ~size:n () in
        let result = HI.run ~module_op:m [ harg data; iarg n; iarg 5 ] in
        Alcotest.(check int) "five launches" 5 result.HI.kernel_launches;
        (match data.Memory.data.(3) with
        | Memory.F x -> Alcotest.(check (float 1e-6)) "incremented five times" 5.0 x
        | _ -> Alcotest.fail "int cell"));
    Alcotest.test_case "AdaptiveCpp launch hook fires once per kernel" `Quick
      (fun () ->
        let m = Helpers.fresh_module () in
        copy_program ~via_temp:true m;
        let _ = Pass.run_pipeline [ Sycl_core.Host_raising.pass ] m in
        let calls = ref 0 in
        let hook _k (_ : HI.launch_info) = incr calls in
        let n = 16 in
        let a = Memory.alloc ~size:n () and t = Memory.alloc ~size:n ()
        and c = Memory.alloc ~size:n () in
        let result =
          HI.run ~launch_hook:hook ~jit_cycles:12345 ~module_op:m
            [ harg a; harg t; harg c; iarg n ]
        in
        (* Same kernel used twice: one JIT, two launches. *)
        Alcotest.(check int) "hook called once" 1 !calls;
        Alcotest.(check int) "jit charged once" 12345 result.HI.jit_cycles);
  ]

let tests = ("runtime", tests_list)
