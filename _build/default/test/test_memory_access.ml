(* Memory-access analysis tests (Section V-D), including the paper's
   Listing 3 example with its access matrix

       ( 1 0 0 )   (gid_x)   ( 1 )
       ( 0 0 2 ) x (gid_y) + ( 0 )
       ( 0 1 2 )   (  i  )   ( 2 )
*)

open Mlir
module A = Dialects.Arith
module MA = Sycl_core.Memory_access
module RD = Sycl_core.Reaching_defs
module K = Sycl_frontend.Kernel
module S = Sycl_core.Sycl_types

let matrix_of (a : MA.access) = Array.map Array.copy a.MA.matrix

let analyze_kernel f =
  let rd = RD.analyze_with_args f in
  let loop = List.hd (Core.collect f ~p:Dialects.Scf.is_for) in
  MA.analyze_loop ~kernel:f rd loop

(* Column order check: global ids first (dimension order), then loop ivs. *)
let col_kinds (a : MA.access) =
  List.map
    (function
      | MA.Global_id d -> Printf.sprintf "g%d" d
      | MA.Local_id d -> Printf.sprintf "l%d" d
      | MA.Loop_iv _ -> "iv")
    a.MA.vars

let tests_list =
  [
    Alcotest.test_case "paper Listing 3: matrix and offsets" `Quick (fun () ->
        (* 2-D kernel, 3-D accessor: index [gid_x + 1, 2*i, gid_y + 2*i + 2],
           built through a sycl.constructor id (the listing's shape). *)
        let _m, f =
          Helpers.with_kernel ~dims:2 ~args:[ K.Acc (3, S.Read, Types.f32) ]
            (fun b ~item ~args ->
              let acc = List.hd args in
              let gx = K.gid b item 0 in
              let gy = K.gid b item 1 in
              let c1 = A.const_index b 1 in
              let c2 = A.const_index b 2 in
              K.for_range b ~lb:(A.const_index b 0) ~ub:(A.const_index b 64)
                ~step:c1 (fun bb i ->
                  let add1 = A.addi bb gx c1 in
                  let mul1 = A.muli bb i c2 in
                  let add1a = A.addi bb mul1 c2 in
                  let add1b = A.addi bb add1a gy in
                  let id_mem =
                    Builder.op1 bb "memref.alloca" ~operands:[]
                      ~result_type:
                        (Types.memref ~space:Types.Private [ Some 1 ] (S.id 3))
                  in
                  Sycl_core.Sycl_ops.constructor bb "id" id_mem [ add1; mul1; add1b ];
                  let view = Sycl_core.Sycl_ops.accessor_subscript bb acc id_mem in
                  ignore (Dialects.Memref.load bb view [ A.const_index bb 0 ])))
        in
        match analyze_kernel f with
        | [ a ] ->
          Alcotest.(check (list string)) "columns" [ "g0"; "g1"; "iv" ] (col_kinds a);
          Alcotest.(check (array (array int))) "matrix"
            [| [| 1; 0; 0 |]; [| 0; 0; 2 |]; [| 0; 1; 2 |] |]
            (matrix_of a);
          Alcotest.(check (array int)) "offsets" [| 1; 0; 2 |] a.MA.offsets;
          Alcotest.(check bool) "temporal reuse" true a.MA.temporal_reuse
        | other ->
          Alcotest.failf "expected exactly one access, got %d" (List.length other));
    Alcotest.test_case "gemm A[i][k]: thread-invariant in fastest dim, reuse" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_kernel ~dims:2 ~args:[ K.Acc (2, S.Read, Types.f32) ]
            (fun b ~item ~args ->
              let acc = List.hd args in
              let i = K.gid b item 0 in
              K.for_up b (A.const_index b 64) (fun bb k ->
                  ignore (K.acc_get bb acc [ i; k ])))
        in
        match analyze_kernel f with
        | [ a ] ->
          Alcotest.(check string) "coalescing" "thread-invariant"
            (MA.coalescing_to_string a.MA.coalescing);
          Alcotest.(check bool) "temporal reuse" true a.MA.temporal_reuse
        | _ -> Alcotest.fail "expected one access");
    Alcotest.test_case "gemm B[k][j]: linear (coalesced), reuse" `Quick (fun () ->
        let _m, f =
          Helpers.with_kernel ~dims:2 ~args:[ K.Acc (2, S.Read, Types.f32) ]
            (fun b ~item ~args ->
              let acc = List.hd args in
              let j = K.gid b item 1 in
              K.for_up b (A.const_index b 64) (fun bb k ->
                  ignore (K.acc_get bb acc [ k; j ])))
        in
        match analyze_kernel f with
        | [ a ] ->
          Alcotest.(check string) "coalescing" "linear"
            (MA.coalescing_to_string a.MA.coalescing)
        | _ -> Alcotest.fail "expected one access");
    Alcotest.test_case "transposed access B[j][k] is non-coalesced" `Quick (fun () ->
        let _m, f =
          Helpers.with_kernel ~dims:2 ~args:[ K.Acc (2, S.Read, Types.f32) ]
            (fun b ~item ~args ->
              let acc = List.hd args in
              let j = K.gid b item 1 in
              K.for_up b (A.const_index b 64) (fun bb k ->
                  ignore (K.acc_get bb acc [ j; k ])))
        in
        match analyze_kernel f with
        | [ a ] ->
          Alcotest.(check string) "coalescing" "non-coalesced"
            (MA.coalescing_to_string a.MA.coalescing)
        | _ -> Alcotest.fail "expected one access");
    Alcotest.test_case "reverse-linear access detected" `Quick (fun () ->
        let _m, f =
          Helpers.with_kernel ~dims:1 ~args:[ K.Acc (1, S.Read, Types.f32) ]
            (fun b ~item ~args ->
              let acc = List.hd args in
              let i = K.gid b item 0 in
              let n = A.const_index b 1023 in
              K.for_up b (A.const_index b 4) (fun bb k ->
                  let rev = A.subi bb n i in
                  ignore (K.acc_get bb acc [ A.addi bb rev k ])))
        in
        match analyze_kernel f with
        | [ a ] ->
          Alcotest.(check string) "coalescing" "reverse-linear"
            (MA.coalescing_to_string a.MA.coalescing)
        | _ -> Alcotest.fail "expected one access");
    Alcotest.test_case "no temporal reuse without iv dependence" `Quick (fun () ->
        let _m, f =
          Helpers.with_kernel ~dims:1 ~args:[ K.Acc (1, S.Read, Types.f32) ]
            (fun b ~item ~args ->
              let acc = List.hd args in
              let i = K.gid b item 0 in
              K.for_up b (A.const_index b 4) (fun bb _k ->
                  ignore (K.acc_get bb acc [ i ])))
        in
        match analyze_kernel f with
        | [ a ] ->
          Alcotest.(check bool) "no reuse" false a.MA.temporal_reuse;
          Alcotest.(check string) "linear" "linear"
            (MA.coalescing_to_string a.MA.coalescing)
        | _ -> Alcotest.fail "expected one access");
    Alcotest.test_case "non-affine (indirect) accesses are skipped" `Quick (fun () ->
        let _m, f =
          Helpers.with_kernel ~dims:1
            ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Read, Types.f32) ]
            (fun b ~item ~args ->
              match args with
              | [ data; idx ] ->
                let i = K.gid b item 0 in
                K.for_up b (A.const_index b 4) (fun bb k ->
                    let fidx = K.acc_get bb idx [ A.addi bb i k ] in
                    let j =
                      A.index_cast bb (A.fptosi bb fidx Types.i64) Types.Index
                    in
                    ignore (K.acc_get bb data [ j ]))
              | _ -> assert false)
        in
        let accesses = analyze_kernel f in
        (* Only the idx load is analyzable; the indirect data load is not. *)
        Alcotest.(check int) "one analyzable access" 1 (List.length accesses));
    Alcotest.test_case "stores are analyzed with kind Store" `Quick (fun () ->
        let _m, f =
          Helpers.with_kernel ~dims:1 ~args:[ K.Acc (1, S.Write, Types.f32) ]
            (fun b ~item ~args ->
              let acc = List.hd args in
              let i = K.gid b item 0 in
              K.for_up b (A.const_index b 4) (fun bb k ->
                  K.acc_set bb acc [ A.addi bb i k ] (K.fconst bb 1.0)))
        in
        match analyze_kernel f with
        | [ a ] -> Alcotest.(check bool) "is store" true (a.MA.kind = MA.Store)
        | _ -> Alcotest.fail "expected one access");
    Alcotest.test_case "local-memory tile accesses analyzable as plain memrefs" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_kernel ~dims:2 ~nd:true ~args:[] (fun b ~item ~args:_ ->
              let tile = Dialects.Gpu.alloc_local b [ 16; 16 ] Types.f32 in
              let x = K.lid b item 0 in
              K.for_up b (A.const_index b 16) (fun bb k ->
                  ignore (Dialects.Memref.load bb tile [ x; k ])))
        in
        match analyze_kernel f with
        | [ a ] ->
          Alcotest.(check bool) "no accessor" true (a.MA.accessor = None);
          Alcotest.(check (list string)) "columns include local id"
            [ "g0"; "g1"; "l0"; "iv" ] (col_kinds a)
        | _ -> Alcotest.fail "expected one access");
  ]

let tests = ("memory-access", tests_list)
