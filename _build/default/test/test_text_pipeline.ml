(* Textual-IR integration: a complete joint module (host + kernels) is
   printed, re-parsed, and the parsed copy is compiled and executed —
   proving the textual format carries everything the pipeline and the
   runtime need. *)

open Mlir
open Sycl_workloads
module Driver = Sycl_core.Driver

let roundtrip_and_run (w : Common.workload) mode =
  let original = w.Common.w_module () in
  let text = Printer.to_string original in
  let parsed = Parser.parse_module text in
  ignore (Driver.compile (Driver.config ~verify_each:true mode) parsed);
  let args, validate = w.Common.w_data () in
  let result = Sycl_runtime.Host_interp.run ~module_op:parsed args in
  (result, validate ())

let tests_list =
  [
    Alcotest.test_case "vec_add: parse -> compile -> run -> validate" `Quick
      (fun () ->
        let w = Single_kernel.vec_add ~n:256 in
        let _r, ok = roundtrip_and_run w Driver.Sycl_mlir in
        Alcotest.(check bool) "valid" true ok);
    Alcotest.test_case "gemm: parsed module optimizes identically" `Quick
      (fun () ->
        let w = Polybench.gemm ~n:16 in
        (* Compile the original and a parsed copy; their pass statistics
           must agree (same reductions, same prefetches). *)
        let compile m =
          let c = Driver.compile (Driver.config Driver.Sycl_mlir) m in
          Pass.merged_stats c.Driver.pipeline_result
        in
        let m1 = w.Common.w_module () in
        let text = Printer.to_string m1 in
        let s1 = compile m1 in
        let s2 = compile (Parser.parse_module text) in
        List.iter
          (fun key ->
            Alcotest.(check int) key (Pass.Stats.get s1 key) (Pass.Stats.get s2 key))
          [
            "detect-reduction/reduction.rewritten";
            "loop-internalization/internalization.prefetched";
            "host-device-propagation/hostdev.noalias-pair";
            "host-raising/raising.raised";
          ]);
    Alcotest.test_case "gemm: parsed module runs correctly under DPC++" `Quick
      (fun () ->
        let w = Polybench.gemm ~n:16 in
        let _r, ok = roundtrip_and_run w Driver.Dpcpp in
        Alcotest.(check bool) "valid" true ok);
    Alcotest.test_case "optimized module still prints and re-parses" `Quick
      (fun () ->
        (* After the full pipeline (internalized kernel with tiles,
           barriers, versioning), the IR must still round-trip. *)
        let w = Polybench.gemm ~n:16 in
        let m = w.Common.w_module () in
        ignore (Driver.compile (Driver.config Driver.Sycl_mlir) m);
        let text = Printer.to_string m in
        let parsed = Parser.parse_module text in
        Alcotest.(check string) "fixpoint print" text (Printer.to_string parsed));
  ]

let tests = ("textual-pipeline", tests_list)
