(* Core IR graph tests: construction, use lists, mutation, traversal,
   cloning, dominance. *)

open Mlir
module A = Dialects.Arith

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tests_list =
  [
    Alcotest.test_case "module creation and block" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        check_bool "is module" true (Core.is_module m);
        check_int "empty body" 0 (List.length (Core.module_block m).Core.body));
    Alcotest.test_case "op creation populates use lists" `Quick (fun () ->
        let m, _f =
          Helpers.with_func (fun b _ ->
              let x = A.const_int b 1 in
              let y = A.const_int b 2 in
              let s = A.addi b x y in
              let _t = A.muli b s s in
              check_int "x used once" 1 (Core.num_uses x);
              check_int "s used twice" 2 (Core.num_uses s))
        in
        Helpers.check_verifies m);
    Alcotest.test_case "replace_all_uses_with rewires users" `Quick (fun () ->
        let _m, _f =
          Helpers.with_func (fun b _ ->
              let x = A.const_int b 1 in
              let y = A.const_int b 2 in
              let s = A.addi b x x in
              Core.replace_all_uses_with x y;
              check_int "x now unused" 0 (Core.num_uses x);
              check_int "y used twice" 2 (Core.num_uses y);
              check_bool "operands updated" true
                (Core.value_equal (Core.operand (Option.get (Core.defining_op s)) 0) y))
        in
        ());
    Alcotest.test_case "erase_op fails on used results" `Quick (fun () ->
        let _m, _f =
          Helpers.with_func (fun b _ ->
              let x = A.const_int b 1 in
              let _s = A.addi b x x in
              let def = Option.get (Core.defining_op x) in
              check_bool "raises Has_uses" true
                (match Core.erase_op def with
                | () -> false
                | exception Core.Has_uses _ -> true))
        in
        ());
    Alcotest.test_case "insert_before and move" `Quick (fun () ->
        let _m, f =
          Helpers.with_func (fun b _ ->
              let _x = A.const_int b 1 in
              let _y = A.const_int b 2 in
              ())
        in
        let body = Core.func_body f in
        (match body.Core.body with
        | [ x_op; y_op; _ret ] ->
          Core.move_before ~anchor:x_op y_op;
          (match body.Core.body with
          | [ a; b; _ ] ->
            check_int "y first" 2 (Option.get (Core.attr_int a "value"));
            check_int "x second" 1 (Option.get (Core.attr_int b "value"))
          | _ -> Alcotest.fail "bad body")
        | _ -> Alcotest.fail "expected three ops"));
    Alcotest.test_case "walk visits nested ops pre-order" `Quick (fun () ->
        let m, _f =
          Helpers.with_func (fun b _ ->
              let c = A.const_bool b true in
              ignore
                (Dialects.Scf.if_ b c
                   ~then_:(fun bb ->
                     ignore (A.const_int bb 42);
                     [])
                   ()))
        in
        check_int "constants found" 2 (Helpers.count_ops m "arith.constant"));
    Alcotest.test_case "clone_op deep-copies regions and remaps values" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_func (fun b _ ->
              let lb = A.const_index b 0 in
              let ub = A.const_index b 10 in
              let step = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb ~ub ~step (fun bb iv _ ->
                     ignore (A.addi bb iv iv);
                     [])))
        in
        let loop = List.hd (Core.collect_named f "scf.for") in
        let clone = Core.clone_op loop in
        check_int "clone has a region" 1 (Core.num_regions clone);
        let orig_add = List.hd (Core.collect_named loop "arith.addi") in
        let clone_add = List.hd (Core.collect_named clone "arith.addi") in
        check_bool "bodies are distinct ops" false (orig_add == clone_add);
        (* The clone's body uses the clone's induction variable. *)
        let clone_iv = Core.block_arg (Dialects.Scf.for_body clone) 0 in
        check_bool "clone add uses clone iv" true
          (Core.value_equal (Core.operand clone_add 0) clone_iv));
    Alcotest.test_case "dominance within a block" `Quick (fun () ->
        let _m, f =
          Helpers.with_func (fun b _ ->
              let _x = A.const_int b 1 in
              let _y = A.const_int b 2 in
              ())
        in
        match (Core.func_body f).Core.body with
        | [ x; y; _ ] ->
          check_bool "x dominates y" true (Dominance.properly_dominates x y);
          check_bool "y does not dominate x" false (Dominance.properly_dominates y x)
        | _ -> Alcotest.fail "bad body");
    Alcotest.test_case "dominance across nesting" `Quick (fun () ->
        let _m, f =
          Helpers.with_func (fun b _ ->
              let c = A.const_bool b true in
              ignore
                (Dialects.Scf.if_ b c
                   ~then_:(fun bb ->
                     ignore (A.const_int bb 1);
                     [])
                   ()))
        in
        let outer = List.hd (Core.collect_named f "arith.constant") in
        let inner =
          List.find
            (fun (o : Core.op) -> Core.attr o "value" = Some (Attr.Int 1))
            (Core.collect_named f "arith.constant")
        in
        check_bool "outer dominates nested" true (Dominance.properly_dominates outer inner);
        check_bool "nested does not dominate outer" false
          (Dominance.properly_dominates inner outer));
    Alcotest.test_case "value visibility of block args" `Quick (fun () ->
        let _m, f =
          Helpers.with_func ~args:[ Types.i64 ] (fun b vals ->
              let x = List.hd vals in
              ignore (A.addi b x x))
        in
        let add = List.hd (Core.collect_named f "arith.addi") in
        let arg = Core.block_arg (Core.func_body f) 0 in
        check_bool "arg visible" true (Dominance.value_visible_at arg add));
    Alcotest.test_case "defined_outside_region" `Quick (fun () ->
        let _m, f =
          Helpers.with_func (fun b _ ->
              let lb = A.const_index b 0 in
              let ub = A.const_index b 4 in
              let step = A.const_index b 1 in
              let outer = A.const_int b 7 in
              ignore
                (Dialects.Scf.for_ b ~lb ~ub ~step (fun bb iv _ ->
                     let inner = A.const_int bb 8 in
                     let region =
                       Option.get
                         (Option.get (Core.defining_op inner)).Core.parent_block
                       |> fun blk -> Option.get blk.Core.parent_region
                     in
                     check_bool "outer const is invariant" true
                       (Dominance.defined_outside_region region outer);
                     check_bool "iv is not" false
                       (Dominance.defined_outside_region region iv);
                     check_bool "inner const is not" false
                       (Dominance.defined_outside_region region inner);
                     [])))
        in
        ignore f);
    Alcotest.test_case "enclosing_func and ancestors" `Quick (fun () ->
        let _m, f =
          Helpers.with_func (fun b _ ->
              let c = A.const_bool b true in
              ignore
                (Dialects.Scf.if_ b c
                   ~then_:(fun bb ->
                     ignore (A.const_int bb 1);
                     [])
                   ()))
        in
        let inner =
          List.find
            (fun (o : Core.op) -> Core.attr_int o "value" = Some 1)
            (Core.collect_named f "arith.constant")
        in
        check_bool "enclosing func found" true
          (match Core.enclosing_func inner with Some g -> g == f | None -> false));
    Alcotest.test_case "set_operands maintains use lists" `Quick (fun () ->
        let _m, _f =
          Helpers.with_func (fun b _ ->
              let x = A.const_int b 1 in
              let y = A.const_int b 2 in
              let s = A.addi b x x in
              let op = Option.get (Core.defining_op s) in
              Core.set_operands op [ y; y ];
              check_int "x unused" 0 (Core.num_uses x);
              check_int "y used twice" 2 (Core.num_uses y))
        in
        ());
    Alcotest.test_case "add_block_arg extends args" `Quick (fun () ->
        let blk = Core.create_block ~args:[ Types.i64 ] () in
        let v = Core.add_block_arg blk Types.f32 in
        check_int "two args" 2 (List.length (Core.block_args blk));
        check_bool "type is f32" true (Types.equal v.Core.vty Types.f32));
    Alcotest.test_case "lookup_func and funcs" `Quick (fun () ->
        let m = Helpers.fresh_module () in
        ignore (Dialects.Func.declare m "ext" ~args:[] ~results:[]);
        let _ =
          Dialects.Func.func m "g" ~args:[] ~results:[] (fun b _ ->
              Dialects.Func.return b [])
        in
        check_int "two funcs" 2 (List.length (Core.funcs m));
        check_bool "lookup g" true (Core.lookup_func m "g" <> None);
        check_bool "lookup missing" true (Core.lookup_func m "nope" = None));
  ]

let tests = ("ir-core", tests_list)
