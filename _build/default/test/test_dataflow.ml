(* Generic forward data-flow framework tests, using a simple constant-
   style domain over a designated memory cell. *)

open Mlir
module A = Dialects.Arith

(* Domain: what do we know about the last value stored anywhere — Bottom
   (nothing stored yet), Known c, or Top. *)
module D = struct
  type t =
    | Bottom
    | Known of int
    | Top

  let join a b =
    match (a, b) with
    | Bottom, x | x, Bottom -> x
    | Known x, Known y -> if x = y then Known x else Top
    | Top, _ | _, Top -> Top

  let equal = ( = )
end

module DF = Dataflow.Forward (D)

let transfer (op : Core.op) (state : D.t) : D.t =
  if Dialects.Memref.is_store op then
    let v, _, _ = Dialects.Memref.store_parts op in
    match Rewrite.constant_of_value v with
    | Some (Attr.Int c) -> D.Known c
    | _ -> D.Top
  else state

let analyze f = DF.analyze f ~init:D.Bottom ~transfer

let state_at res (op : Core.op) =
  Option.value ~default:D.Bottom (DF.before res op)

let the_load f = List.hd (Core.collect_named f "memref.load")

let dom = Alcotest.testable
    (Fmt.of_to_string (function
       | D.Bottom -> "bottom"
       | D.Known c -> Printf.sprintf "known %d" c
       | D.Top -> "top"))
    ( = )

let mk_store b mem c =
  Dialects.Memref.store b (A.const_int b c) mem [ A.const_index b 0 ]

let tests_list =
  [
    Alcotest.test_case "straight-line state threads through" `Quick (fun () ->
        let _m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.i64 ] (fun b vals ->
              let mem = List.hd vals in
              mk_store b mem 3;
              ignore (Dialects.Memref.load b mem [ A.const_index b 0 ]))
        in
        let res = analyze f in
        Alcotest.check dom "known 3" (D.Known 3) (state_at res (the_load f)));
    Alcotest.test_case "branch join merges agreeing states" `Quick (fun () ->
        let _m, f =
          Helpers.with_func
            ~args:[ Types.memref_dyn Types.i64; Types.i1 ] (fun b vals ->
              match vals with
              | [ mem; c ] ->
                ignore
                  (Dialects.Scf.if_ b c
                     ~then_:(fun bb -> mk_store bb mem 5; [])
                     ~else_:(fun bb -> mk_store bb mem 5; [])
                     ());
                ignore (Dialects.Memref.load b mem [ A.const_index b 0 ])
              | _ -> assert false)
        in
        let res = analyze f in
        Alcotest.check dom "both branches agree" (D.Known 5) (state_at res (the_load f)));
    Alcotest.test_case "branch join degrades disagreeing states to top" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_func
            ~args:[ Types.memref_dyn Types.i64; Types.i1 ] (fun b vals ->
              match vals with
              | [ mem; c ] ->
                ignore
                  (Dialects.Scf.if_ b c
                     ~then_:(fun bb -> mk_store bb mem 5; [])
                     ~else_:(fun bb -> mk_store bb mem 6; [])
                     ());
                ignore (Dialects.Memref.load b mem [ A.const_index b 0 ])
              | _ -> assert false)
        in
        let res = analyze f in
        Alcotest.check dom "top" D.Top (state_at res (the_load f)));
    Alcotest.test_case "if without else joins with the incoming state" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_func
            ~args:[ Types.memref_dyn Types.i64; Types.i1 ] (fun b vals ->
              match vals with
              | [ mem; c ] ->
                mk_store b mem 1;
                ignore
                  (Dialects.Scf.if_ b c
                     ~then_:(fun bb -> mk_store bb mem 2; [])
                     ());
                ignore (Dialects.Memref.load b mem [ A.const_index b 0 ])
              | _ -> assert false)
        in
        let res = analyze f in
        Alcotest.check dom "1 or 2 = top" D.Top (state_at res (the_load f)));
    Alcotest.test_case "loop reaches a fixpoint including the back edge" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.i64 ] (fun b vals ->
              let mem = List.hd vals in
              mk_store b mem 1;
              let zero = A.const_index b 0 in
              let four = A.const_index b 4 in
              let one = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:four ~step:one (fun bb _ _ ->
                     (* Inside the loop, the state may be the pre-loop store
                        or the loop's own store. *)
                     ignore (Dialects.Memref.load bb mem [ A.const_index bb 0 ]);
                     mk_store bb mem 2;
                     [])))
        in
        let res = analyze f in
        Alcotest.check dom "1 joined with 2 = top" D.Top (state_at res (the_load f)));
    Alcotest.test_case "loop body that re-establishes the state stays precise"
      `Quick (fun () ->
        let _m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.i64 ] (fun b vals ->
              let mem = List.hd vals in
              mk_store b mem 7;
              let zero = A.const_index b 0 in
              let four = A.const_index b 4 in
              let one = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:four ~step:one (fun bb _ _ ->
                     mk_store bb mem 7;
                     ignore (Dialects.Memref.load bb mem [ A.const_index bb 0 ]);
                     [])));
        in
        let res = analyze f in
        Alcotest.check dom "still known 7" (D.Known 7) (state_at res (the_load f)));
    Alcotest.test_case "block end states recorded" `Quick (fun () ->
        let _m, f =
          Helpers.with_func ~args:[ Types.memref_dyn Types.i64 ] (fun b vals ->
              mk_store b (List.hd vals) 9)
        in
        let res = analyze f in
        let body = Core.func_body f in
        Alcotest.check dom "end of entry block" (D.Known 9)
          (Option.value ~default:D.Bottom
             (Hashtbl.find_opt res.DF.at_end body.Core.bid)));
    (* --- backward framework: liveness --- *)
    Alcotest.test_case "liveness: value dead after its last use" `Quick (fun () ->
        let _m, f =
          Helpers.with_func ~results:[ Types.i64 ] (fun b _ ->
              let x = A.const_int b 1 in
              let y = A.addi b x x in
              let z = A.addi b y y in
              Dialects.Func.return b [ z ])
        in
        let live = Dataflow.Liveness.analyze f in
        match (Core.func_body f).Core.body with
        | [ x_op; y_op; z_op; _ret ] ->
          let x = Core.result x_op 0 and y = Core.result y_op 0 in
          Alcotest.(check bool) "x live after its def" true
            (Dataflow.Liveness.live_after live x_op x);
          Alcotest.(check bool) "x dead after y" false
            (Dataflow.Liveness.live_after live y_op x);
          Alcotest.(check bool) "y live after y" true
            (Dataflow.Liveness.live_after live y_op y);
          Alcotest.(check bool) "y dead after z" false
            (Dataflow.Liveness.live_after live z_op y)
        | _ -> Alcotest.fail "unexpected body shape");
    Alcotest.test_case "liveness: loop back-edge keeps values alive" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_func (fun b _ ->
              let x = A.const_int b 7 in
              let zero = A.const_index b 0 in
              let four = A.const_index b 4 in
              let one = A.const_index b 1 in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:four ~step:one (fun bb _ _ ->
                     ignore (A.addi bb x x);
                     [])))
        in
        let live = Dataflow.Liveness.analyze f in
        let x_op = List.hd (Core.func_body f).Core.body in
        let x = Core.result x_op 0 in
        (* x is used inside the loop: live after its definition, and live
           after each use in the body (next iteration needs it). *)
        Alcotest.(check bool) "x live after def" true
          (Dataflow.Liveness.live_after live x_op x);
        let add = List.hd (Core.collect_named f "arith.addi") in
        Alcotest.(check bool) "x live across the back edge" true
          (Dataflow.Liveness.live_after live add x));
    Alcotest.test_case "liveness: branch keeps either-branch uses alive" `Quick
      (fun () ->
        let _m, f =
          Helpers.with_func ~args:[ Types.i1 ] (fun b vals ->
              let c = List.hd vals in
              let x = A.const_int b 5 in
              ignore
                (Dialects.Scf.if_ b c
                   ~then_:(fun bb ->
                     ignore (A.addi bb x x);
                     [])
                   ~else_:(fun _ -> [])
                   ()))
        in
        let live = Dataflow.Liveness.analyze f in
        let x_op =
          List.find
            (fun (o : Core.op) -> o.Core.name = "arith.constant")
            (Core.func_body f).Core.body
        in
        Alcotest.(check bool) "x live after def (used in then)" true
          (Dataflow.Liveness.live_after live x_op (Core.result x_op 0)));
  ]

let tests = ("dataflow", tests_list)
