(* Detect-reduction tests (Section VI-B): the Listing 4 -> Listing 5
   rewrite, versioning for unknown trip counts, aliasing blockers, and
   result equivalence under the interpreter. *)

open Mlir
module A = Dialects.Arith
module K = Sycl_frontend.Kernel
module S = Sycl_core.Sycl_types

let run_reduction f =
  let stats = Pass.Stats.create () in
  Sycl_core.Detect_reduction.run_on_func f stats;
  stats

(* A kernel accumulating into out[0]: out[0] += a[iv], with constant or
   argument trip count. *)
let accum_kernel ~const_trip =
  Helpers.with_kernel ~dims:1
    ~args:
      [ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Read_write, Types.f32);
        K.Scal Types.Index ]
    (fun b ~item:_ ~args ->
      match args with
      | [ a; out; n ] ->
        let zero = A.const_index b 0 in
        let one = A.const_index b 1 in
        let ub = if const_trip then A.const_index b 8 else n in
        let out0 = K.acc_view b out [ zero ] in
        ignore
          (Dialects.Scf.for_ b ~lb:zero ~ub ~step:one (fun bb iv _ ->
               let v = K.acc_get bb a [ iv ] in
               let cur = Dialects.Memref.load bb out0 [ zero ] in
               Dialects.Memref.store bb (A.addf bb cur v) out0 [ zero ];
               []))
      | _ -> assert false)

let with_noalias (m, f) =
  Sycl_core.Alias.add_noalias_pair f 1 2;
  (m, f)

let tests_list =
  [
    Alcotest.test_case "constant-trip reduction rewrites without a guard" `Quick
      (fun () ->
        let m, f = with_noalias (accum_kernel ~const_trip:true) in
        let stats = run_reduction f in
        Helpers.check_verifies m;
        Alcotest.(check int) "one reduction" 1
          (Pass.Stats.get stats "reduction.rewritten");
        Alcotest.(check int) "no guard needed" 0 (Helpers.count_ops f "scf.if");
        (* The loop now carries one iter arg and yields it. *)
        let loop = List.hd (Core.collect_named f "scf.for") in
        Alcotest.(check int) "one loop result" 1 (Core.num_results loop);
        (* Exactly one load before and one store after the loop remain. *)
        Alcotest.(check int) "loads out of loop" 1
          (List.length
             (List.filter
                (fun (o : Core.op) ->
                  not (Core.is_in_region loop.Core.regions.(0) o))
                (Core.collect_named f "memref.load"))));
    Alcotest.test_case "unknown trip count versions with lb < ub" `Quick (fun () ->
        let m, f = with_noalias (accum_kernel ~const_trip:false) in
        let stats = run_reduction f in
        Helpers.check_verifies m;
        Alcotest.(check int) "one reduction" 1
          (Pass.Stats.get stats "reduction.rewritten");
        Alcotest.(check int) "guard present" 1 (Helpers.count_ops f "scf.if"));
    Alcotest.test_case "may-aliasing accessors block the rewrite" `Quick (fun () ->
        (* No host facts: a and out may alias, so the loads from a block
           the transformation. *)
        let _m, f = accum_kernel ~const_trip:true in
        let stats = run_reduction f in
        Alcotest.(check int) "no reduction" 0
          (Pass.Stats.get stats "reduction.rewritten"));
    Alcotest.test_case "store not depending on the load is not a reduction" `Quick
      (fun () ->
        let m, f =
          Helpers.with_kernel ~dims:1
            ~args:[ K.Acc (1, S.Read_write, Types.f32) ]
            (fun b ~item:_ ~args ->
              let out = List.hd args in
              let zero = A.const_index b 0 in
              let one = A.const_index b 1 in
              let out0 = K.acc_view b out [ zero ] in
              ignore
                (Dialects.Scf.for_ b ~lb:zero ~ub:(A.const_index b 8) ~step:one
                   (fun bb _iv _ ->
                     let _cur = Dialects.Memref.load bb out0 [ zero ] in
                     Dialects.Memref.store bb (A.const_float bb 1.0) out0 [ zero ];
                     [])))
        in
        ignore m;
        let stats = run_reduction f in
        Alcotest.(check int) "no reduction" 0
          (Pass.Stats.get stats "reduction.rewritten"));
    Alcotest.test_case "multiple reductions in one loop all rewrite" `Quick
      (fun () ->
        let m, f =
          Helpers.with_kernel ~dims:1
            ~args:
              [ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Read_write, Types.f32);
                K.Acc (1, S.Read_write, Types.f32) ]
            (fun b ~item:_ ~args ->
              match args with
              | [ a; s1; s2 ] ->
                let zero = A.const_index b 0 in
                let one = A.const_index b 1 in
                let v1 = K.acc_view b s1 [ zero ] in
                let v2 = K.acc_view b s2 [ zero ] in
                ignore
                  (Dialects.Scf.for_ b ~lb:zero ~ub:(A.const_index b 8) ~step:one
                     (fun bb iv _ ->
                       let x = K.acc_get bb a [ iv ] in
                       let c1 = Dialects.Memref.load bb v1 [ zero ] in
                       Dialects.Memref.store bb (A.addf bb c1 x) v1 [ zero ];
                       let c2 = Dialects.Memref.load bb v2 [ zero ] in
                       Dialects.Memref.store bb (A.mulf bb c2 x) v2 [ zero ];
                       []))
              | _ -> assert false)
        in
        let k = Option.get (Core.lookup_func m "k") in
        Sycl_core.Alias.add_noalias_pair k 1 2;
        Sycl_core.Alias.add_noalias_pair k 1 3;
        Sycl_core.Alias.add_noalias_pair k 2 3;
        let stats = run_reduction f in
        Helpers.check_verifies m;
        Alcotest.(check int) "two reductions" 2
          (Pass.Stats.get stats "reduction.rewritten"));
    Alcotest.test_case "paper Listing 4/5: loop becomes iter_args accumulation"
      `Quick (fun () ->
        (* affine.for with a [0]-indexed load/store through %ptr. *)
        let m, f =
          Helpers.with_kernel ~dims:1
            ~args:[ K.Acc (1, S.Read_write, Types.f32); K.Acc (1, S.Read, Types.f32) ]
            (fun b ~item:_ ~args ->
              match args with
              | [ ptr; other ] ->
                let zero = A.const_index b 0 in
                let p0 = K.acc_view b ptr [ zero ] in
                ignore
                  (Dialects.Affine_ops.for_ b ~lb:(Dialects.Affine_ops.Const 0)
                     ~ub:(Dialects.Affine_ops.Const 16) (fun bb iv _ ->
                       let v = Dialects.Memref.load bb p0 [ zero ] in
                       let o = K.acc_get bb other [ iv ] in
                       Dialects.Memref.store bb (A.addf bb v o) p0 [ zero ];
                       []))
              | _ -> assert false)
        in
        let k = Option.get (Core.lookup_func m "k") in
        Sycl_core.Alias.add_noalias_pair k 1 2;
        let stats = run_reduction f in
        Helpers.check_verifies m;
        Alcotest.(check int) "rewritten" 1 (Pass.Stats.get stats "reduction.rewritten");
        let loop = List.hd (Core.collect_named f "affine.for") in
        Alcotest.(check int) "loop carries the scalar" 1 (Core.num_results loop);
        (* No memory ops remain inside the loop except the 'other' load. *)
        let in_loop =
          List.filter
            (fun (o : Core.op) -> Core.is_in_region loop.Core.regions.(0) o)
            (Core.collect_named f "memref.store")
        in
        Alcotest.(check int) "no stores in loop" 0 (List.length in_loop));
  ]

let tests = ("detect-reduction", tests_list)
