(* Array-reduction detection walkthrough (Section VI-B) on the covariance
   workload: loops that read-modify-write an array element with a
   loop-invariant address are rewritten to accumulate in a loop-carried
   scalar (iter_args), turning 2N memory accesses into one load and one
   store. Legality comes from the SYCL-aware alias analysis, fed by the
   host-device analysis' accessor no-alias facts.

   Run with:  dune exec examples/reduction_covariance.exe *)

open Mlir
module Driver = Sycl_core.Driver
module W = Sycl_workloads

let () =
  let w = W.Polybench.covariance ~n:64 in

  (* Show the mean kernel before/after: its i-loop accumulates mean[j]. *)
  let m = w.W.Common.w_module () in
  print_endline "===== covariance 'mean' kernel before optimization =====";
  Printer.print (Option.get (Core.lookup_func m "cov_mean"));
  let compiled = Driver.compile (Driver.config Driver.Sycl_mlir) m in
  print_endline "\n===== after detect-reduction (note the iter_args loop) =====";
  Printer.print (Option.get (Core.lookup_func m "cov_mean"));

  let stats = Pass.merged_stats compiled.Driver.pipeline_result in
  Printf.printf "\nreductions rewritten across covariance kernels: %d\n"
    (Pass.Stats.get stats "detect-reduction/reduction.rewritten");
  Printf.printf "(the paper reports 4 opportunities for covariance, 5 for correlation)\n";

  (* Quantify the benefit, with and without the pass. *)
  let base = W.Common.measure (Driver.config Driver.Dpcpp) w in
  let with_red = W.Common.measure (Driver.config Driver.Sycl_mlir) w in
  let without_red =
    W.Common.measure (Driver.config ~enable_reduction:false Driver.Sycl_mlir) w
  in
  Printf.printf
    "speedup over DPC++: %.2fx with reduction detection, %.2fx without (valid %b/%b)\n"
    (W.Common.speedup base with_red)
    (W.Common.speedup base without_red)
    with_red.W.Common.m_valid without_red.W.Common.m_valid
