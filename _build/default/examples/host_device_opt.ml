(* Host raising and host-device optimization walkthrough (Section VII):
   the host program arrives as low-level llvm-dialect calls against the
   DPC++ runtime ABI (the output of mlir-translate in Fig. 1); the host
   raising pass recovers sycl.host operations (the paper's Listing 8 →
   Listing 9 transformation); host analysis then propagates constants and
   accessor facts into the device kernel and marks dead arguments.

   Run with:  dune exec examples/host_device_opt.exe *)

open Mlir
module K = Sycl_frontend.Kernel
module Host = Sycl_frontend.Host
module S = Sycl_core.Sycl_types


let build () =
  Dialects.Register.init ();
  Sycl_core.Sycl_ops.init ();
  Sycl_core.Sycl_host_ops.init ();
  Sycl_core.Licm.init ();
  let m = Core.create_module () in
  (* A kernel that queries its ND-range and accessor members — all of
     which the host knows. The global size here is a compile-time constant
     in host code (constexpr size = 1024 in the paper's Listing 8). *)
  ignore
    (K.define m ~name:"kernel_k" ~dims:1
       ~args:[ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Write, Types.f32) ]
       (fun b ~item ~args ->
         match args with
         | [ a; c ] ->
           let i = K.gid b item 0 in
           let n = K.grange b item 0 in
           let dim0 = Dialects.Arith.const_int b ~ty:Types.i32 0 in
           let off = Sycl_core.Sycl_ops.accessor_get_offset b a dim0 in
           let range = Sycl_core.Sycl_ops.accessor_get_range b a dim0 in
           (* reversed = a[offset + (range - 1 - i)], scaled by 1/n *)
           let one = K.idx b 1 in
           let j = K.addi b off (K.subi b (K.subi b range one) i) in
           let v = K.acc_get b a [ j ] in
           let nf = Dialects.Arith.sitofp b (Dialects.Arith.index_cast b n Types.i64) Types.f32 in
           K.acc_set b c [ i ] (K.divf b v nf)
         | _ -> assert false));
  ignore
    (Host.emit m
       {
         Host.host_args = [ Types.memref_dyn Types.f32; Types.memref_dyn Types.f32 ];
         Host.buffers =
           [
             { Host.buf_data_arg = 0; buf_dims = [ Host.Const 1024 ]; buf_element = Types.f32 };
             { Host.buf_data_arg = 1; buf_dims = [ Host.Const 1024 ]; buf_element = Types.f32 };
           ];
         Host.globals = [];
         Host.body =
           [
             Host.Submit
               {
                 Host.cg_kernel = "kernel_k";
                 cg_global = [ Host.Const 1024 ];
                 cg_local = None;
                 cg_captures =
                   [ Host.Capture_acc (0, S.Read); Host.Capture_acc (1, S.Write) ];
               };
           ];
       });
  m

let () =
  let m = build () in
  let host0 = Option.get (Core.lookup_func m "main") in
  print_endline "===== host code as obtained from LLVM IR (Listing 8's lowering) =====";
  Printer.print host0;

  (* Raise only. *)
  let _ = Pass.run_pipeline ~verify_each:true [ Sycl_core.Host_raising.pass ] m in
  print_endline "\n===== after host raising (the paper's Listing 9) =====";
  Printer.print (Option.get (Core.lookup_func m "main"));

  (* Full host-device propagation + device cleanup. *)
  let _ =
    Pass.run_pipeline ~verify_each:true
      [
        Sycl_core.Canonicalize.pass; Sycl_core.Cse.pass;
        Sycl_core.Host_device_prop.pass ();
        Sycl_core.Canonicalize.pass; Sycl_core.Cse.pass; Sycl_core.Dce.pass;
        Sycl_core.Dead_arg_elim.pass;
      ]
      m
  in
  print_endline
    "\n===== device kernel after host-device constant propagation =====";
  print_endline "(the ND-range constant 1024, the zero accessor offset and the";
  print_endline " constant accessor range have all been folded into the kernel)";
  Printer.print (Option.get (Core.lookup_func m "kernel_k"))
