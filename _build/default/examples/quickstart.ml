(* Quickstart: define a SYCL-like kernel and host program with the
   frontend EDSL, compile it with the SYCL-MLIR pipeline, execute it on
   the simulated device, and read the results back.

   Run with:  dune exec examples/quickstart.exe *)

open Mlir
module K = Sycl_frontend.Kernel
module Host = Sycl_frontend.Host
module S = Sycl_core.Sycl_types
module Driver = Sycl_core.Driver
module Memory = Sycl_sim.Memory
module Host_interp = Sycl_runtime.Host_interp

let () =
  (* 1. Register the dialects (builtin + SYCL). *)
  Dialects.Register.init ();
  Sycl_core.Sycl_ops.init ();
  Sycl_core.Sycl_host_ops.init ();
  Sycl_core.Licm.init ();

  (* 2. Build the joint module: one device kernel plus the host program
        (the latter is emitted as low-level runtime-ABI calls, exactly
        what a C++ compiler would produce — host raising recovers the
        structure during compilation). *)
  let m = Core.create_module () in
  let n = 1024 in

  ignore
    (K.define m ~name:"saxpy" ~dims:1
       ~args:
         [ K.Acc (1, S.Read, Types.f32); K.Acc (1, S.Read_write, Types.f32);
           K.Scal Types.f32 ]
       (fun b ~item ~args ->
         match args with
         | [ x; y; a ] ->
           let i = K.gid b item 0 in
           let xi = K.acc_get b x [ i ] in
           K.acc_update b y [ i ] (fun yi -> K.addf b (K.mulf b a xi) yi)
         | _ -> assert false));

  ignore
    (Host.emit m
       {
         Host.host_args = [ Types.memref_dyn Types.f32; Types.memref_dyn Types.f32; Types.Index ];
         Host.buffers =
           [
             { Host.buf_data_arg = 0; buf_dims = [ Host.Arg 2 ]; buf_element = Types.f32 };
             { Host.buf_data_arg = 1; buf_dims = [ Host.Arg 2 ]; buf_element = Types.f32 };
           ];
         Host.globals = [];
         Host.body =
           [
             Host.Submit
               {
                 Host.cg_kernel = "saxpy";
                 cg_global = [ Host.Arg 2 ];
                 cg_local = None;
                 cg_captures =
                   [
                     Host.Capture_acc (0, S.Read);
                     Host.Capture_acc (1, S.Read_write);
                     Host.Capture_scalar (Attr.Float 2.0);
                   ];
               };
           ];
       });

  (* 3. Compile with the SYCL-MLIR configuration (host raising +
        host-device propagation + SYCL-aware device optimizations). *)
  let compiled = Driver.compile (Driver.config ~verify_each:true Driver.Sycl_mlir) m in
  Printf.printf "compiled with %d passes\n"
    (List.length compiled.Driver.pipeline_result.Pass.per_pass_stats);

  (* 4. Prepare host data and run. *)
  let x = Memory.alloc ~label:"x" ~size:n () in
  let y = Memory.alloc ~label:"y" ~size:n () in
  for i = 0 to n - 1 do
    x.Memory.data.(i) <- Memory.F (float_of_int i);
    y.Memory.data.(i) <- Memory.F 1.0
  done;
  let harg a = Host_interp.Scalar (Sycl_sim.Interp.Mem (Memory.full_view a)) in
  let result =
    Host_interp.run ~module_op:m
      [ harg x; harg y; Host_interp.Scalar (Sycl_sim.Interp.I n) ]
  in

  (* 5. Inspect results and costs. *)
  let ok = ref true in
  for i = 0 to n - 1 do
    let expect = (2.0 *. float_of_int i) +. 1.0 in
    match y.Memory.data.(i) with
    | Memory.F v when Float.abs (v -. expect) < 1e-3 -> ()
    | _ -> ok := false
  done;
  Printf.printf "y = 2*x + y computed %s on the simulated device\n"
    (if !ok then "correctly" else "INCORRECTLY");
  Printf.printf
    "total=%d cycles (device=%d, launch=%d, transfers=%d, scheduler=%d) over %d launch(es)\n"
    result.Host_interp.total_cycles result.Host_interp.device_cycles
    result.Host_interp.launch_overhead_cycles result.Host_interp.transfer_cycles
    result.Host_interp.scheduler_cycles result.Host_interp.kernel_launches;
  (* The constant scalar capture was propagated and the argument marked
     dead by SYCL Dead Argument Elimination. *)
  let kernel = Option.get (Core.lookup_func m "saxpy") in
  Printf.printf "dead kernel arguments after host-device propagation: %s\n"
    (String.concat ", "
       (List.map string_of_int (Sycl_core.Dead_arg_elim.dead_args kernel)))
