(* Loop internalization walkthrough (Section VI-C): shows the GEMM kernel
   IR before and after the SYCL-MLIR pipeline — the k-loop is tiled by the
   work-group size, tiles of A and B are cooperatively prefetched into
   work-group local memory between group barriers — and compares the
   simulated execution cost against the DPC++ baseline.

   Run with:  dune exec examples/matmul_internalization.exe *)

open Mlir
module Driver = Sycl_core.Driver
module W = Sycl_workloads

let () =
  let w = W.Polybench.gemm ~n:64 in

  (* Show the kernel before optimization. *)
  let m0 = w.W.Common.w_module () in
  let kernel0 = Option.get (Core.lookup_func m0 "gemm") in
  print_endline "===== GEMM kernel as the frontend emits it =====";
  Printer.print kernel0;

  (* Compile with the full SYCL-MLIR pipeline and show it again. *)
  let _ = Driver.compile (Driver.config Driver.Sycl_mlir) m0 in
  let kernel1 = Option.get (Core.lookup_func m0 "gemm") in
  print_endline "\n===== after the SYCL-MLIR pipeline =====";
  print_endline "(note: gpu.alloc_local tiles, the versioned scf.if, the";
  print_endline " tiled loops and the gpu.barrier pair around the inner loop)";
  Printer.print kernel1;

  let barriers =
    Core.collect kernel1 ~p:(fun o -> o.Core.name = "gpu.barrier")
  in
  let tiles =
    Core.collect kernel1 ~p:(fun o -> o.Core.name = "gpu.alloc_local")
  in
  Printf.printf "\nlocal tiles allocated: %d, barriers inserted: %d\n"
    (List.length tiles) (List.length barriers);

  (* Execution comparison. *)
  let base = W.Common.measure (Driver.config Driver.Dpcpp) w in
  let opt = W.Common.measure (Driver.config Driver.Sycl_mlir) w in
  Printf.printf
    "DPC++ baseline: %d cycles (valid %b); SYCL-MLIR: %d cycles (valid %b)\n"
    base.W.Common.m_cycles base.W.Common.m_valid opt.W.Common.m_cycles
    opt.W.Common.m_valid;
  Printf.printf "speedup: %.2fx\n" (W.Common.speedup base opt);
  let st = opt.W.Common.m_result.Sycl_runtime.Host_interp.per_kernel in
  List.iter
    (fun (name, s) ->
      Format.printf "kernel %s: %a@." name Sycl_sim.Cost.pp_launch_stats s)
    st
