examples/quickstart.ml: Array Attr Core Dialects Float List Mlir Option Pass Printf String Sycl_core Sycl_frontend Sycl_runtime Sycl_sim Types
