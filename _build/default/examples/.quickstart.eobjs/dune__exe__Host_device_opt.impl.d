examples/host_device_opt.ml: Core Dialects Mlir Option Pass Printer Sycl_core Sycl_frontend Types
