examples/reduction_covariance.mli:
