examples/kernel_fusion.mli:
