examples/matmul_internalization.mli:
