examples/matmul_internalization.ml: Core Format List Mlir Option Printer Printf Sycl_core Sycl_runtime Sycl_sim Sycl_workloads
