examples/kernel_fusion.ml: Core List Mlir Pass Printer Printf Sycl_core Sycl_runtime Sycl_workloads
