examples/host_device_opt.mli:
