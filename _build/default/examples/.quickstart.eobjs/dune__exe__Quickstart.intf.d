examples/quickstart.mli:
