examples/reduction_covariance.ml: Core Mlir Option Pass Printer Printf Sycl_core Sycl_workloads
