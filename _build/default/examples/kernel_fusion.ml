(* Kernel fusion walkthrough — the compile-time realization of the
   Section VII outlook ("fusion of device kernels ... could be done at
   compilation time" instead of via a runtime JIT as in Pérez et al.).

   An element-wise producer/consumer chain of three kernels fuses into a
   single kernel; store-to-load forwarding then turns the intermediate
   buffer dataflow into direct SSA dataflow inside the fused kernel.

   Run with:  dune exec examples/kernel_fusion.exe *)

open Mlir
module Driver = Sycl_core.Driver
module W = Sycl_workloads

let () =
  let w = W.Extensions.elementwise_chain ~n:8192 in

  (* Compile twice: without and with fusion. *)
  let compile fusion =
    let m = w.W.Common.w_module () in
    let compiled =
      Driver.compile (Driver.config ~enable_fusion:fusion ~verify_each:true
                        Driver.Sycl_mlir) m
    in
    (m, Pass.merged_stats compiled.Driver.pipeline_result)
  in
  let m_fused, stats = compile true in

  Printf.printf "kernels fused: %d, dead originals removed: %d, loads forwarded: %d\n"
    (Pass.Stats.get stats "kernel-fusion/fusion.fused")
    (Pass.Stats.get stats "kernel-fusion/fusion.dead-kernels-removed")
    (Pass.Stats.get stats "store-forwarding/store-forwarding.forwarded");

  print_endline "\n===== the fused kernel =====";
  let fused =
    List.find (fun f -> Sycl_core.Uniformity.is_kernel f) (Core.funcs m_fused)
  in
  Printer.print fused;

  (* Execute both variants and compare the runtime profile. *)
  let run fusion =
    let m = w.W.Common.w_module () in
    ignore (Driver.compile (Driver.config ~enable_fusion:fusion Driver.Sycl_mlir) m);
    let args, validate = w.W.Common.w_data () in
    let r = Sycl_runtime.Host_interp.run ~module_op:m args in
    (r, validate ())
  in
  let unfused, ok1 = run false in
  let fused_r, ok2 = run true in
  let open Sycl_runtime.Host_interp in
  Printf.printf
    "\nunfused: %d launches, %d total cycles (launch overhead %d) valid=%b\n"
    unfused.kernel_launches unfused.total_cycles unfused.launch_overhead_cycles ok1;
  Printf.printf
    "fused:   %d launches, %d total cycles (launch overhead %d) valid=%b\n"
    fused_r.kernel_launches fused_r.total_cycles fused_r.launch_overhead_cycles ok2;
  Printf.printf "speedup from fusion: %.2fx\n"
    (float_of_int unfused.total_cycles /. float_of_int (max 1 fused_r.total_cycles))
