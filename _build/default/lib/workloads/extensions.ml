(* Workloads for the extensions beyond the paper's evaluated compiler —
   currently the compile-time kernel fusion of Section VII's outlook. *)

open Mlir
open Common
module K = Kernel
module S = Sycl_types

let f32 = Types.f32
let mem = Types.memref_dyn f32

(* An element-wise producer/consumer chain: t = a + b; u = t * t;
   out = u - a. Three launches, two intermediate buffers — exactly the
   pattern runtime fusion targeted in Pérez et al. [16]. *)
let elementwise_chain ~n =
  let w_module () =
    let m = fresh_module () in
    let ew name nargs body =
      ignore
        (K.define m ~name ~dims:1
           ~args:(List.init nargs (fun i ->
                      K.Acc (1, (if i = nargs - 1 then S.Write else S.Read), f32)))
           (fun b ~item ~args ->
             let i = K.gid b item 0 in
             let get a = K.acc_get b a [ i ] in
             let out = List.nth args (nargs - 1) in
             K.acc_set b out [ i ] (body b get args)))
    in
    ew "chain_add" 3 (fun b get args ->
        K.addf b (get (List.nth args 0)) (get (List.nth args 1)));
    ew "chain_sq" 2 (fun b get args ->
        let t = get (List.nth args 0) in
        K.mulf b t t);
    ew "chain_sub" 3 (fun b get args ->
        K.subf b (get (List.nth args 0)) (get (List.nth args 1)));
    let buf i =
      { Host.buf_data_arg = i; buf_dims = [ Host.Arg 5 ]; buf_element = f32 }
    in
    let submit kernel captures =
      Host.Submit
        { Host.cg_kernel = kernel; cg_global = [ Host.Arg 5 ]; cg_local = None;
          cg_captures = captures }
    in
    ignore
      (Host.emit m
         {
           Host.host_args = [ mem; mem; mem; mem; mem; Types.Index ];
           buffers = List.init 5 buf;
           globals = [];
           body =
             [
               submit "chain_add"
                 [ Host.Capture_acc (0, S.Read); Host.Capture_acc (1, S.Read);
                   Host.Capture_acc (2, S.Write) ];
               submit "chain_sq"
                 [ Host.Capture_acc (2, S.Read); Host.Capture_acc (3, S.Write) ];
               submit "chain_sub"
                 [ Host.Capture_acc (3, S.Read); Host.Capture_acc (0, S.Read);
                   Host.Capture_acc (4, S.Write) ];
             ];
         });
    m
  in
  let w_data () =
    let st = rng 97 in
    let a = farray_random st n and b = farray_random st n in
    let t = farray_zeros n and u = farray_zeros n and out = farray_zeros n in
    let validate () =
      check_array out
        (Array.init n (fun i ->
             let t = read_f a i +. read_f b i in
             (t *. t) -. read_f a i))
    in
    ([ harg a; harg b; harg t; harg u; harg out; iarg n ], validate)
  in
  {
    w_name = "ElementwiseChain";
    w_category = Single_kernel;
    w_problem_size = n;
    w_paper_size = n;
    w_module;
    w_data;
    w_acpp_ok = true;
  }

(* ------------------------------------------------------------------ *)
(* Hand-tiled ND-range matmul — the paper's Listing 7 written by hand   *)
(* (what loop internalization generates automatically from Listing 6).  *)
(* Uses an explicit work-group size, work-group local tiles and group    *)
(* barriers through the public API.                                      *)
(* ------------------------------------------------------------------ *)

let tiled_matmul ~n ~m_tile =
  assert (n mod m_tile = 0);
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"tiled_mm" ~dims:2 ~nd:true
         ~args:
           [ K.Acc (2, S.Read, f32); K.Acc (2, S.Read, f32);
             K.Acc (2, S.Read_write, f32) ]
         (fun b ~item ~args ->
           match args with
           | [ a; bb; c ] ->
             let i = K.gid b item 0 and j = K.gid b item 1 in
             let x = K.lid b item 0 and y = K.lid b item 1 in
             let n = K.grange b item 0 in
             let a_tile = Dialects.Gpu.alloc_local b [ m_tile; m_tile ] f32 in
             let b_tile = Dialects.Gpu.alloc_local b [ m_tile; m_tile ] f32 in
             let mt = K.idx b m_tile in
             let zero = K.idx b 0 in
             let one = K.idx b 1 in
             (* for (t = 0; t < N; t += M) *)
             let outer =
               Dialects.Scf.for_ b ~lb:zero ~ub:n ~step:mt
                 ~iter_args:[ K.fconst b 0.0 ]
                 (fun ob t acc_outer ->
                   (* A_tile[x][y] = A[i][t + y]; B_tile[x][y] = B[t + x][j] *)
                   let ty = K.addi ob t y and tx = K.addi ob t x in
                   Dialects.Memref.store ob (K.acc_get ob a [ i; ty ]) a_tile [ x; y ];
                   Dialects.Memref.store ob (K.acc_get ob bb [ tx; j ]) b_tile [ x; y ];
                   Sycl_core.Sycl_ops.group_barrier ob;
                   let inner =
                     Dialects.Scf.for_ ob ~lb:zero ~ub:mt ~step:one
                       ~iter_args:acc_outer
                       (fun ib k acc ->
                         let av = Dialects.Memref.load ib a_tile [ x; k ] in
                         let bv = Dialects.Memref.load ib b_tile [ k; y ] in
                         [ K.addf ib (List.hd acc) (K.mulf ib av bv) ])
                   in
                   Sycl_core.Sycl_ops.group_barrier ob;
                   Core.results inner)
             in
             K.acc_update b c [ i; j ] (fun v ->
                 K.addf b v (Core.result outer 0))
           | _ -> assert false));
    ignore
      (Host.emit m
         {
           Host.host_args = [ mem; mem; mem; Types.Index ];
           buffers =
             List.init 3 (fun i ->
                 { Host.buf_data_arg = i;
                   buf_dims = [ Host.Arg 3; Host.Arg 3 ]; buf_element = f32 });
           globals = [];
           body =
             [
               Host.Submit
                 {
                   Host.cg_kernel = "tiled_mm";
                   cg_global = [ Host.Arg 3; Host.Arg 3 ];
                   cg_local = Some [ m_tile; m_tile ];
                   cg_captures =
                     [ Host.Capture_acc (0, S.Read); Host.Capture_acc (1, S.Read);
                       Host.Capture_acc (2, S.Read_write) ];
                 };
             ];
         });
    m
  in
  let w_data () =
    let st = rng 101 in
    let a = farray_random st (n * n) and b = farray_random st (n * n) in
    let c = farray_zeros (n * n) in
    let validate () =
      let av = Array.init (n * n) (read_f a) and bv = Array.init (n * n) (read_f b) in
      let expect = Array.make (n * n) 0.0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let acc = ref 0.0 in
          for k = 0 to n - 1 do
            acc := !acc +. (av.((i * n) + k) *. bv.((k * n) + j))
          done;
          expect.((i * n) + j) <- !acc
        done
      done;
      check_array ~tol:5e-3 c expect
    in
    ([ harg a; harg b; harg c; iarg n ], validate)
  in
  {
    w_name = "TiledMatmul (hand-written Listing 7)";
    w_category = Polybench;
    w_problem_size = n;
    w_paper_size = n;
    w_module;
    w_data;
    w_acpp_ok = true;
  }
