(* The SYCL-Bench single-kernel category (Fig. 2): real-world kernels from
   image processing, machine learning and molecular dynamics. Problem
   sizes are scaled from the paper's (the device is an interpreter); the
   paper sizes are recorded per workload. These workloads mostly lack the
   deep loop structure polybench has, so the expected result is near
   parity (the paper's geo-means: SYCL-MLIR 1.02x, AdaptiveCpp 1.03x) —
   except Sobel7, whose constant filter array is propagated to the device
   by the joint host/device analysis (Section VIII). *)

open Mlir
open Common
module K = Kernel
module A = Dialects.Arith
module S = Sycl_types

let f32 = Types.f32
let mem = Types.memref_dyn f32

let racc1 = K.Acc (1, S.Read, f32)
let wacc1 = K.Acc (1, S.Write, f32)
let rwacc1 = K.Acc (1, S.Read_write, f32)

let vec_buf ~size_arg i =
  { Host.buf_data_arg = i; buf_dims = [ Host.Arg size_arg ]; buf_element = f32 }

let submit1 ~kernel ~size_arg captures =
  Host.Submit
    { Host.cg_kernel = kernel; cg_global = [ Host.Arg size_arg ];
      cg_local = None; cg_captures = captures }

let cap_r i = Host.Capture_acc (i, S.Read)
let cap_w i = Host.Capture_acc (i, S.Write)
let cap_rw i = Host.Capture_acc (i, S.Read_write)

let emit_host m ~args ~buffers ?(globals = []) ~body () =
  ignore (Host.emit m { Host.host_args = args; buffers; globals; body })

let snapshot (a : Sycl_sim.Memory.allocation) n = Array.init n (read_f a)

let mk ~name ~paper ~n w_module w_data =
  { w_name = name; w_category = Single_kernel; w_problem_size = n;
    w_paper_size = paper; w_module; w_data; w_acpp_ok = true }

(* ------------------------------------------------------------------ *)
(* Vector addition                                                     *)
(* ------------------------------------------------------------------ *)

let vec_add ~n =
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"vec_add" ~dims:1 ~args:[ racc1; racc1; wacc1 ]
         (fun b ~item ~args ->
           match args with
           | [ a; bb; c ] ->
             let i = K.gid b item 0 in
             let s = K.addf b (K.acc_get b a [ i ]) (K.acc_get b bb [ i ]) in
             K.acc_set b c [ i ] s
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; mem; Types.Index ]
      ~buffers:[ vec_buf ~size_arg:3 0; vec_buf ~size_arg:3 1; vec_buf ~size_arg:3 2 ]
      ~body:[ submit1 ~kernel:"vec_add" ~size_arg:3 [ cap_r 0; cap_r 1; cap_w 2 ] ]
      ();
    m
  in
  let w_data () =
    let st = rng 1 in
    let a = farray_random st n and b = farray_random st n and c = farray_zeros n in
    let validate () =
      check_array c (Array.init n (fun i -> read_f a i +. read_f b i))
    in
    ([ harg a; harg b; harg c; iarg n ], validate)
  in
  mk ~name:"VectorAddition" ~paper:1_048_576 ~n w_module w_data

(* ------------------------------------------------------------------ *)
(* Scalar product (two stages: elementwise multiply, block sums)       *)
(* ------------------------------------------------------------------ *)

let scalar_prod ~n ~block =
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"sp_mul" ~dims:1 ~args:[ racc1; racc1; wacc1 ]
         (fun b ~item ~args ->
           match args with
           | [ a; bb; c ] ->
             let i = K.gid b item 0 in
             K.acc_set b c [ i ] (K.mulf b (K.acc_get b a [ i ]) (K.acc_get b bb [ i ]))
           | _ -> assert false));
    ignore
      (K.define m ~name:"sp_block_sum" ~dims:1
         ~args:[ racc1; rwacc1; K.Scal Types.Index ]
         (fun b ~item ~args ->
           match args with
           | [ c; partial; blk ] ->
             let g = K.gid b item 0 in
             let base = K.muli b g blk in
             K.for_up b blk (fun b2 k ->
                 let v = K.acc_get b2 c [ K.addi b2 base k ] in
                 K.acc_update b2 partial [ g ] (fun acc -> K.addf b2 acc v))
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; mem; mem; Types.Index; Types.Index ]
      ~buffers:
        [ vec_buf ~size_arg:4 0; vec_buf ~size_arg:4 1; vec_buf ~size_arg:4 2;
          vec_buf ~size_arg:5 3 ]
      ~body:
        [
          submit1 ~kernel:"sp_mul" ~size_arg:4 [ cap_r 0; cap_r 1; cap_w 2 ];
          submit1 ~kernel:"sp_block_sum" ~size_arg:5
            [ cap_r 2; cap_rw 3; Host.Capture_scalar (Attr.Int block) ];
        ]
      ();
    m
  in
  let w_data () =
    let st = rng 2 in
    let a = farray_random st n and b = farray_random st n in
    let c = farray_zeros n and partial = farray_zeros (n / block) in
    let validate () =
      let total = ref 0.0 in
      for g = 0 to (n / block) - 1 do
        total := !total +. read_f partial g
      done;
      let expect = ref 0.0 in
      for i = 0 to n - 1 do
        expect := !expect +. (read_f a i *. read_f b i)
      done;
      approx_eq ~tol:1e-2 !total !expect
    in
    ([ harg a; harg b; harg c; harg partial; iarg n; iarg (n / block) ], validate)
  in
  mk ~name:"ScalarProduct" ~paper:1_048_576 ~n w_module w_data

(* ------------------------------------------------------------------ *)
(* Linear regression (error kernel) and coefficients                   *)
(* ------------------------------------------------------------------ *)

let lin_reg_error ~n =
  let alpha = 0.4 and beta = 1.7 in
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"lin_reg" ~dims:1
         ~args:[ racc1; racc1; wacc1; K.Scal f32; K.Scal f32 ]
         (fun b ~item ~args ->
           match args with
           | [ x; y; err; alpha_v; beta_v ] ->
             let i = K.gid b item 0 in
             let e =
               K.subf b
                 (K.addf b (K.mulf b alpha_v (K.acc_get b x [ i ])) beta_v)
                 (K.acc_get b y [ i ])
             in
             K.acc_set b err [ i ] (K.mulf b e e)
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; mem; Types.Index ]
      ~buffers:[ vec_buf ~size_arg:3 0; vec_buf ~size_arg:3 1; vec_buf ~size_arg:3 2 ]
      ~body:
        [ submit1 ~kernel:"lin_reg" ~size_arg:3
            [ cap_r 0; cap_r 1; cap_w 2;
              Host.Capture_scalar (Attr.Float alpha);
              Host.Capture_scalar (Attr.Float beta) ] ]
      ();
    m
  in
  let w_data () =
    let st = rng 3 in
    let x = farray_random st n and y = farray_random st n and err = farray_zeros n in
    let validate () =
      check_array err
        (Array.init n (fun i ->
             let e = (alpha *. read_f x i) +. beta -. read_f y i in
             e *. e))
    in
    ([ harg x; harg y; harg err; iarg n ], validate)
  in
  mk ~name:"LinearRegression" ~paper:65_536 ~n w_module w_data

(* Per-block partial sums of x, y, x*y and x*x — four array-reduction
   opportunities per loop. *)
let lin_reg_coeff ~n ~block =
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"lr_coeff" ~dims:1
         ~args:[ racc1; racc1; rwacc1; rwacc1; rwacc1; rwacc1; K.Scal Types.Index ]
         (fun b ~item ~args ->
           match args with
           | [ x; y; sx; sy; sxy; sxx; blk ] ->
             let g = K.gid b item 0 in
             let base = K.muli b g blk in
             K.for_up b blk (fun b2 k ->
                 let i = K.addi b2 base k in
                 let xv = K.acc_get b2 x [ i ] in
                 let yv = K.acc_get b2 y [ i ] in
                 K.acc_update b2 sx [ g ] (fun a -> K.addf b2 a xv);
                 K.acc_update b2 sy [ g ] (fun a -> K.addf b2 a yv);
                 K.acc_update b2 sxy [ g ] (fun a -> K.addf b2 a (K.mulf b2 xv yv));
                 K.acc_update b2 sxx [ g ] (fun a -> K.addf b2 a (K.mulf b2 xv xv)))
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; mem; mem; mem; mem; Types.Index; Types.Index ]
      ~buffers:
        [ vec_buf ~size_arg:6 0; vec_buf ~size_arg:6 1; vec_buf ~size_arg:7 2;
          vec_buf ~size_arg:7 3; vec_buf ~size_arg:7 4; vec_buf ~size_arg:7 5 ]
      ~body:
        [ submit1 ~kernel:"lr_coeff" ~size_arg:7
            [ cap_r 0; cap_r 1; cap_rw 2; cap_rw 3; cap_rw 4; cap_rw 5;
              Host.Capture_scalar (Attr.Int block) ] ]
      ();
    m
  in
  let w_data () =
    let st = rng 4 in
    let x = farray_random st n and y = farray_random st n in
    let g = n / block in
    let sx = farray_zeros g and sy = farray_zeros g
    and sxy = farray_zeros g and sxx = farray_zeros g in
    let validate () =
      let esx = Array.make g 0.0 and esy = Array.make g 0.0
      and esxy = Array.make g 0.0 and esxx = Array.make g 0.0 in
      for gi = 0 to g - 1 do
        for k = 0 to block - 1 do
          let i = (gi * block) + k in
          let xv = read_f x i and yv = read_f y i in
          esx.(gi) <- esx.(gi) +. xv;
          esy.(gi) <- esy.(gi) +. yv;
          esxy.(gi) <- esxy.(gi) +. (xv *. yv);
          esxx.(gi) <- esxx.(gi) +. (xv *. xv)
        done
      done;
      check_array ~tol:1e-2 sx esx && check_array ~tol:1e-2 sy esy
      && check_array ~tol:1e-2 sxy esxy
      && check_array ~tol:1e-2 sxx esxx
    in
    ([ harg x; harg y; harg sx; harg sy; harg sxy; harg sxx; iarg n; iarg g ], validate)
  in
  mk ~name:"LinearRegressionCoeff" ~paper:1_048_576 ~n w_module w_data

(* ------------------------------------------------------------------ *)
(* KMeans (assignment step, K fixed centroids)                         *)
(* ------------------------------------------------------------------ *)

let kmeans ~n ~k =
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"kmeans" ~dims:1
         ~args:[ racc1; racc1; racc1; racc1; wacc1; K.Scal Types.Index ]
         (fun b ~item ~args ->
           match args with
           | [ px; py; cx; cy; out; kv ] ->
             let i = K.gid b item 0 in
             let xv = K.acc_get b px [ i ] and yv = K.acc_get b py [ i ] in
             let big = K.fconst b 1e30 in
             let zero = K.fconst b 0.0 in
             let best =
               Dialects.Scf.for_ b ~lb:(K.idx b 0) ~ub:kv ~step:(K.idx b 1)
                 ~iter_args:[ big; zero ]
                 (fun b2 c acc ->
                   match acc with
                   | [ bestd; besti ] ->
                     let dx = K.subf b2 xv (K.acc_get b2 cx [ c ]) in
                     let dy = K.subf b2 yv (K.acc_get b2 cy [ c ]) in
                     let d = K.addf b2 (K.mulf b2 dx dx) (K.mulf b2 dy dy) in
                     let better = A.cmpf b2 A.Olt d bestd in
                     let ci = A.sitofp b2 (A.index_cast b2 c Types.i64) f32 in
                     [ A.select b2 better d bestd; A.select b2 better ci besti ]
                   | _ -> assert false)
             in
             K.acc_set b out [ i ] (Core.result best 1)
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; mem; mem; mem; Types.Index; Types.Index ]
      ~buffers:
        [ vec_buf ~size_arg:5 0; vec_buf ~size_arg:5 1; vec_buf ~size_arg:6 2;
          vec_buf ~size_arg:6 3; vec_buf ~size_arg:5 4 ]
      ~body:
        [ submit1 ~kernel:"kmeans" ~size_arg:5
            [ cap_r 0; cap_r 1; cap_r 2; cap_r 3; cap_w 4;
              Host.Capture_scalar_arg 6 ] ]
      ();
    m
  in
  let w_data () =
    let st = rng 5 in
    let px = farray_random st n and py = farray_random st n in
    let cx = farray_random st k and cy = farray_random st k in
    let out = farray_zeros n in
    let validate () =
      let expect =
        Array.init n (fun i ->
            let bx = read_f px i and by = read_f py i in
            let best = ref 0 and bestd = ref infinity in
            for c = 0 to k - 1 do
              let dx = bx -. read_f cx c and dy = by -. read_f cy c in
              let d = (dx *. dx) +. (dy *. dy) in
              if d < !bestd then begin
                bestd := d;
                best := c
              end
            done;
            float_of_int !best)
      in
      check_array out expect
    in
    ([ harg px; harg py; harg cx; harg cy; harg out; iarg n; iarg k ], validate)
  in
  mk ~name:"KMeans" ~paper:1_048_576 ~n w_module w_data

(* ------------------------------------------------------------------ *)
(* Molecular dynamics (neighbor-list force computation)                *)
(* ------------------------------------------------------------------ *)

let mol_dyn ~n ~neighbors =
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"mol_dyn" ~dims:1
         ~args:[ racc1; racc1; rwacc1; K.Scal Types.Index ]
         (fun b ~item ~args ->
           match args with
           | [ pos; nbr; force; nl ] ->
             let i = K.gid b item 0 in
             let base = K.muli b i nl in
             let xi = K.acc_get b pos [ i ] in
             K.for_up b nl (fun b2 j ->
                 (* Indirect neighbor access (indices stored as floats). *)
                 let jf = K.acc_get b2 nbr [ K.addi b2 base j ] in
                 let ji = A.index_cast b2 (A.fptosi b2 jf Types.i64) Types.Index in
                 let xj = K.acc_get b2 pos [ ji ] in
                 let d = K.subf b2 xi xj in
                 let r2 = K.addf b2 (K.mulf b2 d d) (K.fconst b2 0.01) in
                 let inv = K.divf b2 (K.fconst b2 1.0) r2 in
                 let f = K.mulf b2 d (K.mulf b2 inv inv) in
                 K.acc_update b2 force [ i ] (fun a -> K.addf b2 a f))
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; mem; Types.Index; Types.Index; Types.Index ]
      ~buffers:
        [ vec_buf ~size_arg:3 0; vec_buf ~size_arg:4 1; vec_buf ~size_arg:3 2 ]
      ~body:
        [ submit1 ~kernel:"mol_dyn" ~size_arg:3
            [ cap_r 0; cap_r 1; cap_rw 2; Host.Capture_scalar_arg 5 ] ]
      ();
    m
  in
  let w_data () =
    let st = rng 6 in
    let pos = farray_random st n in
    let nbr =
      farray_init (n * neighbors) (fun _ ->
          float_of_int (Random.State.int st n))
    in
    let force = farray_zeros n in
    let validate () =
      let expect =
        Array.init n (fun i ->
            let acc = ref 0.0 in
            for j = 0 to neighbors - 1 do
              let ji = int_of_float (read_f nbr ((i * neighbors) + j)) in
              let d = read_f pos i -. read_f pos ji in
              let r2 = (d *. d) +. 0.01 in
              let inv = 1.0 /. r2 in
              acc := !acc +. (d *. inv *. inv)
            done;
            !acc)
      in
      check_array ~tol:1e-2 force expect
    in
    ([ harg pos; harg nbr; harg force; iarg n; iarg (n * neighbors); iarg neighbors ],
     validate)
  in
  mk ~name:"MolecularDynamics" ~paper:1_048_576 ~n w_module w_data

(* ------------------------------------------------------------------ *)
(* NBody (all-pairs; positions packed as rank-2 [n][4] accessors)      *)
(* ------------------------------------------------------------------ *)

let nbody ~n =
  let racc2 = K.Acc (2, S.Read, f32) and wacc2 = K.Acc (2, S.Write, f32) in
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"nbody" ~dims:1 ~args:[ racc2; wacc2 ]
         (fun b ~item ~args ->
           match args with
           | [ pos; acc_out ] ->
             let i = K.gid b item 0 in
             let n = K.grange b item 0 in
             let c0 = K.idx b 0 and c1 = K.idx b 1 and c2 = K.idx b 2 and c3 = K.idx b 3 in
             let xi = K.acc_get b pos [ i; c0 ] in
             let yi = K.acc_get b pos [ i; c1 ] in
             let zi = K.acc_get b pos [ i; c2 ] in
             let zero = K.fconst b 0.0 in
             let final =
               Dialects.Scf.for_ b ~lb:(K.idx b 0) ~ub:n ~step:(K.idx b 1)
                 ~iter_args:[ zero; zero; zero ]
                 (fun b2 j acc ->
                   match acc with
                   | [ ax; ay; az ] ->
                     let dx = K.subf b2 (K.acc_get b2 pos [ j; c0 ]) xi in
                     let dy = K.subf b2 (K.acc_get b2 pos [ j; c1 ]) yi in
                     let dz = K.subf b2 (K.acc_get b2 pos [ j; c2 ]) zi in
                     let mj = K.acc_get b2 pos [ j; c3 ] in
                     let r2 =
                       K.addf b2 (K.fconst b2 0.025)
                         (K.addf b2 (K.mulf b2 dx dx)
                            (K.addf b2 (K.mulf b2 dy dy) (K.mulf b2 dz dz)))
                     in
                     let inv = K.divf b2 (K.fconst b2 1.0) (A.sqrt b2 r2) in
                     let inv3 = K.mulf b2 inv (K.mulf b2 inv inv) in
                     let s = K.mulf b2 mj inv3 in
                     [ K.addf b2 ax (K.mulf b2 dx s);
                       K.addf b2 ay (K.mulf b2 dy s);
                       K.addf b2 az (K.mulf b2 dz s) ]
                   | _ -> assert false)
             in
             K.acc_set b acc_out [ i; c0 ] (Core.result final 0);
             K.acc_set b acc_out [ i; c1 ] (Core.result final 1);
             K.acc_set b acc_out [ i; c2 ] (Core.result final 2)
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; Types.Index; Types.Index ]
      ~buffers:
        [
          { Host.buf_data_arg = 0; buf_dims = [ Host.Arg 2; Host.Arg 3 ];
            buf_element = f32 };
          { Host.buf_data_arg = 1; buf_dims = [ Host.Arg 2; Host.Arg 3 ];
            buf_element = f32 };
        ]
      ~body:
        [
          Host.Submit
            { Host.cg_kernel = "nbody"; cg_global = [ Host.Arg 2 ];
              cg_local = None; cg_captures = [ cap_r 0; cap_w 1 ] };
        ]
      ();
    m
  in
  let w_data () =
    let st = rng 8 in
    let pos = farray_random st (n * 4) in
    let acc = farray_zeros (n * 4) in
    let validate () =
      let ok = ref true in
      for i = 0 to n - 1 do
        let xi = read_f pos ((i * 4) + 0)
        and yi = read_f pos ((i * 4) + 1)
        and zi = read_f pos ((i * 4) + 2) in
        let ax = ref 0.0 and ay = ref 0.0 and az = ref 0.0 in
        for j = 0 to n - 1 do
          let dx = read_f pos ((j * 4) + 0) -. xi in
          let dy = read_f pos ((j * 4) + 1) -. yi in
          let dz = read_f pos ((j * 4) + 2) -. zi in
          let mj = read_f pos ((j * 4) + 3) in
          let r2 = 0.025 +. (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
          let inv = 1.0 /. sqrt r2 in
          let s = mj *. inv *. inv *. inv in
          ax := !ax +. (dx *. s);
          ay := !ay +. (dy *. s);
          az := !az +. (dz *. s)
        done;
        if
          not
            (approx_eq ~tol:1e-2 (read_f acc ((i * 4) + 0)) !ax
            && approx_eq ~tol:1e-2 (read_f acc ((i * 4) + 1)) !ay
            && approx_eq ~tol:1e-2 (read_f acc ((i * 4) + 2)) !az)
        then ok := false
      done;
      !ok
    in
    ([ harg pos; harg acc; iarg n; iarg 4 ], validate)
  in
  mk ~name:"NBody" ~paper:1024 ~n w_module w_data

(* ------------------------------------------------------------------ *)
(* Sobel filters (3/5/7): the filter is a constant global array — the  *)
(* host-device analysis propagates its constness to the device.        *)
(* ------------------------------------------------------------------ *)

let sobel_coeffs k =
  (* A deterministic K x K filter with +/- pattern (values irrelevant to
     the performance story; constness is what matters). *)
  Array.init (k * k) (fun i ->
      let r = (i / k) - (k / 2) and c = (i mod k) - (k / 2) in
      float_of_int c /. float_of_int ((r * r) + (c * c) + 1))

let sobel ~name ~paper ~n ~k ~acpp_ok =
  let coeffs = sobel_coeffs k in
  let racc2 = K.Acc (2, S.Read, f32) and wacc2 = K.Acc (2, S.Write, f32) in
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"sobel" ~dims:2
         ~args:[ racc2; wacc2; K.Ptr f32; K.Scal Types.Index ]
         (fun b ~item ~args ->
           match args with
           | [ inp; out; filt; kv ] ->
             let i = K.gid b item 0 and j = K.gid b item 1 in
             let n = K.grange b item 0 in
             let r = A.divsi b kv (K.idx b 2) in
             let n1 = K.subi b n (K.idx b 1) in
             let zero = K.idx b 0 in
             let clamp v = A.maxsi b zero (A.minsi b v n1) in
             ignore clamp;
             let sum = ref (K.fconst b 0.0) in
             (* K x K taps; coordinates clamped to the image borders. *)
             let fold =
               Dialects.Scf.for_ b ~lb:(K.idx b 0) ~ub:kv ~step:(K.idx b 1)
                 ~iter_args:[ !sum ]
                 (fun b2 kk acc_outer ->
                   match acc_outer with
                   | [ acc_outer ] ->
                     let inner =
                       Dialects.Scf.for_ b2 ~lb:(K.idx b2 0) ~ub:kv
                         ~step:(K.idx b2 1) ~iter_args:[ acc_outer ]
                         (fun b3 ll acc ->
                           match acc with
                           | [ acc ] ->
                             let clamp3 v =
                               A.maxsi b3 (K.idx b3 0)
                                 (A.minsi b3 v (K.subi b3 (K.grange b3 item 0) (K.idx b3 1)))
                             in
                             let ii = clamp3 (K.addi b3 (K.subi b3 i r) kk) in
                             let jj = clamp3 (K.addi b3 (K.subi b3 j r) ll) in
                             let v = K.acc_get b3 inp [ ii; jj ] in
                             let fidx = K.addi b3 (K.muli b3 kk kv) ll in
                             let c = K.ptr_get b3 filt fidx in
                             [ K.addf b3 acc (K.mulf b3 c v) ]
                           | _ -> assert false)
                     in
                     [ Core.result inner 0 ]
                   | _ -> assert false)
             in
             K.acc_set b out [ i; j ] (Core.result fold 0)
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; Types.Index ]
      ~buffers:
        [
          { Host.buf_data_arg = 0; buf_dims = [ Host.Arg 2; Host.Arg 2 ];
            buf_element = f32 };
          { Host.buf_data_arg = 1; buf_dims = [ Host.Arg 2; Host.Arg 2 ];
            buf_element = f32 };
        ]
      ~globals:[ ("sobel_filter", Attr.Dense_float coeffs) ]
      ~body:
        [
          Host.Submit
            { Host.cg_kernel = "sobel";
              cg_global = [ Host.Arg 2; Host.Arg 2 ];
              cg_local = None;
              cg_captures =
                [ cap_r 0; cap_w 1; Host.Capture_global "sobel_filter";
                  Host.Capture_scalar (Attr.Int k) ] };
        ]
      ();
    m
  in
  let w_data () =
    let st = rng (100 + k) in
    let inp = farray_random st (n * n) and out = farray_zeros (n * n) in
    let validate () =
      let r = k / 2 in
      let clamp v = max 0 (min v (n - 1)) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let s = ref 0.0 in
          for kk = 0 to k - 1 do
            for ll = 0 to k - 1 do
              let ii = clamp (i - r + kk) and jj = clamp (j - r + ll) in
              s := !s +. (coeffs.((kk * k) + ll) *. read_f inp ((ii * n) + jj))
            done
          done;
          if not (approx_eq ~tol:1e-2 (read_f out ((i * n) + j)) !s) then ok := false
        done
      done;
      !ok
    in
    ([ harg inp; harg out; iarg n ], validate)
  in
  { (mk ~name ~paper ~n w_module w_data) with w_acpp_ok = acpp_ok }

let sobel3 ~n = sobel ~name:"Sobel3" ~paper:1_048_576 ~n ~k:3 ~acpp_ok:false
let sobel5 ~n = sobel ~name:"Sobel5" ~paper:1_048_576 ~n ~k:5 ~acpp_ok:true
let sobel7 ~n = sobel ~name:"Sobel7" ~paper:1_048_576 ~n ~k:7 ~acpp_ok:true

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let all ?(scale = 1) () =
  let s n = max 16 (n * scale) in
  [
    kmeans ~n:(s 8192) ~k:8;
    lin_reg_coeff ~n:(s 16384) ~block:64;
    lin_reg_error ~n:(s 16384);
    mol_dyn ~n:(s 4096) ~neighbors:16;
    nbody ~n:(s 512);
    scalar_prod ~n:(s 16384) ~block:64;
    sobel3 ~n:(s 64);
    sobel5 ~n:(s 64);
    sobel7 ~n:(s 64);
    vec_add ~n:(s 16384);
  ]
