lib/workloads/suite.ml: Common Extensions List Option Polybench Printf Single_kernel Stencil String
