lib/workloads/extensions.ml: Array Common Core Dialects Host Kernel List Mlir Sycl_core Sycl_types Types
