lib/workloads/polybench.ml: Array Attr Common Core Dialects Float Host Kernel List Mlir Sycl_sim Sycl_types Types
