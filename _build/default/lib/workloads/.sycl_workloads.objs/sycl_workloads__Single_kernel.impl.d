lib/workloads/single_kernel.ml: Array Attr Common Core Dialects Host Kernel Mlir Random Sycl_sim Sycl_types Types
