lib/workloads/common.ml: Array Core Dialects Float List Mlir Pass Random Sycl_core Sycl_frontend Sycl_runtime Sycl_sim Types
