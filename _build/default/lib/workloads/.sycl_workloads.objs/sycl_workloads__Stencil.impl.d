lib/workloads/stencil.ml: Array Common Core Dialects Host Kernel Mlir Random Sycl_types Types
