(* The SYCL-Bench polybench category (Fig. 3): linear-algebra and stencil
   compute kernels. These are the workloads the paper's device
   optimizations target: the matmul family (2mm, 3mm, gemm, syrk, syr2k)
   benefits from loop internalization, correlation/covariance from the
   array-reduction rewrite, and gramschmidt is the documented case whose
   candidate loop sits in a divergent region and must be rejected.

   Sizes are scaled (paper sizes recorded per workload); following
   SYCL-Bench, problem sizes arrive at the host program as runtime values
   (CLI-style), not compile-time constants. *)

open Mlir
open Common
module K = Kernel
module A = Dialects.Arith
module S = Sycl_types

let f32 = Types.f32

let racc = K.Acc (2, S.Read, f32)
let rwacc = K.Acc (2, S.Read_write, f32)
let racc1 = K.Acc (1, S.Read, f32)
let rwacc1 = K.Acc (1, S.Read_write, f32)
let wacc1 = K.Acc (1, S.Write, f32)
let wacc = K.Acc (2, S.Write, f32)

let mem = Types.memref_dyn f32

(* Host-program shorthands: buffers over leading host args, a trailing
   Index argument carries the (runtime) problem size. *)
let sq_buf ~size_arg i =
  { Host.buf_data_arg = i; buf_dims = [ Host.Arg size_arg; Host.Arg size_arg ];
    buf_element = f32 }

let vec_buf ~size_arg i =
  { Host.buf_data_arg = i; buf_dims = [ Host.Arg size_arg ]; buf_element = f32 }

let submit2 ~kernel ~size_arg captures =
  Host.Submit
    { Host.cg_kernel = kernel; cg_global = [ Host.Arg size_arg; Host.Arg size_arg ];
      cg_local = None; cg_captures = captures }

let submit1 ~kernel ~size_arg captures =
  Host.Submit
    { Host.cg_kernel = kernel; cg_global = [ Host.Arg size_arg ];
      cg_local = None; cg_captures = captures }

let cap_r i = Host.Capture_acc (i, S.Read)
let cap_w i = Host.Capture_acc (i, S.Write)
let cap_rw i = Host.Capture_acc (i, S.Read_write)

let emit_host m ~args ~buffers ~body =
  ignore (Host.emit m { Host.host_args = args; buffers; globals = []; body })

let snapshot (a : Sycl_sim.Memory.allocation) n = Array.init n (read_f a)

let mk ~name ~paper ~n ~category w_module w_data =
  { w_name = name; w_category = category; w_problem_size = n;
    w_paper_size = paper; w_module; w_data; w_acpp_ok = true }

(* ------------------------------------------------------------------ *)
(* The matmul family                                                   *)
(* ------------------------------------------------------------------ *)

(* C[i][j] = beta*C[i][j] + alpha * sum_k A[i][k] * B[k][j] *)
let matmul_kernel m ~name =
  ignore
    (K.define m ~name ~dims:2
       ~args:[ racc; racc; rwacc; K.Scal f32; K.Scal f32 ]
       (fun b ~item ~args ->
         match args with
         | [ a; bb; c; alpha_v; beta_v ] ->
           let i = K.gid b item 0 and j = K.gid b item 1 in
           let n = K.grange b item 0 in
           K.acc_update b c [ i; j ] (fun v -> K.mulf b v beta_v);
           K.for_up b n (fun b2 k ->
               let av = K.acc_get b2 a [ i; k ] in
               let bv = K.acc_get b2 bb [ k; j ] in
               let prod = K.mulf b2 alpha_v (K.mulf b2 av bv) in
               K.acc_update b2 c [ i; j ] (fun v -> K.addf b2 v prod))
         | _ -> assert false))

let gemm_caps ~a ~b ~c ~alpha ~beta =
  [ cap_r a; cap_r b; cap_rw c;
    Host.Capture_scalar (Attr.Float alpha); Host.Capture_scalar (Attr.Float beta) ]

let ref_gemm ~n ~alpha ~beta a b out =
  let res = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref (beta *. out.((i * n) + j)) in
      for k = 0 to n - 1 do
        acc := !acc +. (alpha *. a.((i * n) + k) *. b.((k * n) + j))
      done;
      res.((i * n) + j) <- !acc
    done
  done;
  res

let gemm ~n =
  let alpha = 1.5 and beta = 1.2 in
  let w_module () =
    let m = fresh_module () in
    matmul_kernel m ~name:"gemm";
    emit_host m
      ~args:[ mem; mem; mem; Types.Index ]
      ~buffers:[ sq_buf ~size_arg:3 0; sq_buf ~size_arg:3 1; sq_buf ~size_arg:3 2 ]
      ~body:[ submit2 ~kernel:"gemm" ~size_arg:3 (gemm_caps ~a:0 ~b:1 ~c:2 ~alpha ~beta) ];
    m
  in
  let w_data () =
    let st = rng 7 in
    let a = farray_random st (n * n) and b = farray_random st (n * n)
    and c = farray_random st (n * n) in
    let c0 = snapshot c (n * n) in
    let validate () =
      check_array c (ref_gemm ~n ~alpha ~beta (snapshot a (n * n)) (snapshot b (n * n)) c0)
    in
    ([ harg a; harg b; harg c; iarg n ], validate)
  in
  mk ~name:"GEMM" ~paper:1024 ~n ~category:Polybench w_module w_data

(* 2mm: Tmp = A*B; D = Tmp*C  (alpha/beta folded to 1/0 per kernel use) *)
let two_mm ~n =
  let w_module () =
    let m = fresh_module () in
    matmul_kernel m ~name:"mm_k";
    emit_host m
      ~args:[ mem; mem; mem; mem; mem; Types.Index ]
      ~buffers:
        [ sq_buf ~size_arg:5 0; sq_buf ~size_arg:5 1; sq_buf ~size_arg:5 2;
          sq_buf ~size_arg:5 3; sq_buf ~size_arg:5 4 ]
      ~body:
        [
          submit2 ~kernel:"mm_k" ~size_arg:5 (gemm_caps ~a:0 ~b:1 ~c:3 ~alpha:1.0 ~beta:0.0);
          submit2 ~kernel:"mm_k" ~size_arg:5 (gemm_caps ~a:3 ~b:2 ~c:4 ~alpha:1.0 ~beta:0.0);
        ];
    m
  in
  let w_data () =
    let st = rng 11 in
    let a = farray_random st (n * n) and b = farray_random st (n * n)
    and c = farray_random st (n * n) and tmp = farray_zeros (n * n)
    and d = farray_zeros (n * n) in
    let validate () =
      let t = ref_gemm ~n ~alpha:1.0 ~beta:0.0 (snapshot a (n * n)) (snapshot b (n * n))
                (Array.make (n * n) 0.0) in
      let expect = ref_gemm ~n ~alpha:1.0 ~beta:0.0 t (snapshot c (n * n))
                     (Array.make (n * n) 0.0) in
      check_array ~tol:5e-3 d expect
    in
    ([ harg a; harg b; harg c; harg tmp; harg d; iarg n ], validate)
  in
  mk ~name:"2mm" ~paper:1024 ~n ~category:Polybench w_module w_data

(* 3mm: E = A*B; F = C*D; G = E*F *)
let three_mm ~n =
  let w_module () =
    let m = fresh_module () in
    matmul_kernel m ~name:"mm_k";
    emit_host m
      ~args:[ mem; mem; mem; mem; mem; mem; mem; Types.Index ]
      ~buffers:(List.init 7 (fun i -> sq_buf ~size_arg:7 i))
      ~body:
        [
          submit2 ~kernel:"mm_k" ~size_arg:7 (gemm_caps ~a:0 ~b:1 ~c:4 ~alpha:1.0 ~beta:0.0);
          submit2 ~kernel:"mm_k" ~size_arg:7 (gemm_caps ~a:2 ~b:3 ~c:5 ~alpha:1.0 ~beta:0.0);
          submit2 ~kernel:"mm_k" ~size_arg:7 (gemm_caps ~a:4 ~b:5 ~c:6 ~alpha:1.0 ~beta:0.0);
        ];
    m
  in
  let w_data () =
    let st = rng 13 in
    let abcd = List.init 4 (fun _ -> farray_random st (n * n)) in
    let e = farray_zeros (n * n) and f = farray_zeros (n * n) and g = farray_zeros (n * n) in
    let validate () =
      let s x = snapshot x (n * n) in
      let z () = Array.make (n * n) 0.0 in
      match abcd with
      | [ a; b; c; d ] ->
        let ev = ref_gemm ~n ~alpha:1.0 ~beta:0.0 (s a) (s b) (z ()) in
        let fv = ref_gemm ~n ~alpha:1.0 ~beta:0.0 (s c) (s d) (z ()) in
        let gv = ref_gemm ~n ~alpha:1.0 ~beta:0.0 ev fv (z ()) in
        check_array ~tol:5e-3 g gv
      | _ -> false
    in
    (List.map harg abcd @ [ harg e; harg f; harg g; iarg n ], validate)
  in
  mk ~name:"3mm" ~paper:1024 ~n ~category:Polybench w_module w_data

(* SYRK: C = beta*C + alpha * A * Aᵀ  (C[i][j] += A[i][k]*A[j][k]) *)
let syrk ~n =
  let alpha = 1.5 and beta = 1.2 in
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"syrk" ~dims:2
         ~args:[ racc; rwacc; K.Scal f32; K.Scal f32 ]
         (fun b ~item ~args ->
           match args with
           | [ a; c; alpha_v; beta_v ] ->
             let i = K.gid b item 0 and j = K.gid b item 1 in
             let n = K.grange b item 0 in
             K.acc_update b c [ i; j ] (fun v -> K.mulf b v beta_v);
             K.for_up b n (fun b2 k ->
                 let x = K.acc_get b2 a [ i; k ] in
                 let y = K.acc_get b2 a [ j; k ] in
                 let prod = K.mulf b2 alpha_v (K.mulf b2 x y) in
                 K.acc_update b2 c [ i; j ] (fun v -> K.addf b2 v prod))
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; Types.Index ]
      ~buffers:[ sq_buf ~size_arg:2 0; sq_buf ~size_arg:2 1 ]
      ~body:
        [ submit2 ~kernel:"syrk" ~size_arg:2
            [ cap_r 0; cap_rw 1;
              Host.Capture_scalar (Attr.Float alpha);
              Host.Capture_scalar (Attr.Float beta) ] ];
    m
  in
  let w_data () =
    let st = rng 17 in
    let a = farray_random st (n * n) and c = farray_random st (n * n) in
    let c0 = snapshot c (n * n) in
    let validate () =
      let av = snapshot a (n * n) in
      let expect = Array.make (n * n) 0.0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let acc = ref (beta *. c0.((i * n) + j)) in
          for k = 0 to n - 1 do
            acc := !acc +. (alpha *. av.((i * n) + k) *. av.((j * n) + k))
          done;
          expect.((i * n) + j) <- !acc
        done
      done;
      check_array c expect
    in
    ([ harg a; harg c; iarg n ], validate)
  in
  mk ~name:"SYRK" ~paper:1024 ~n ~category:Polybench w_module w_data

(* SYR2K: C = beta*C + alpha*(A*Bᵀ + B*Aᵀ) — four streamed references,
   the paper's biggest internalization win. *)
let syr2k ~n =
  let alpha = 1.5 and beta = 1.2 in
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"syr2k" ~dims:2
         ~args:[ racc; racc; rwacc; K.Scal f32; K.Scal f32 ]
         (fun b ~item ~args ->
           match args with
           | [ a; bb; c; alpha_v; beta_v ] ->
             let i = K.gid b item 0 and j = K.gid b item 1 in
             let n = K.grange b item 0 in
             K.acc_update b c [ i; j ] (fun v -> K.mulf b v beta_v);
             K.for_up b n (fun b2 k ->
                 let a_ik = K.acc_get b2 a [ i; k ] in
                 let b_jk = K.acc_get b2 bb [ j; k ] in
                 let b_ik = K.acc_get b2 bb [ i; k ] in
                 let a_jk = K.acc_get b2 a [ j; k ] in
                 let t = K.addf b2 (K.mulf b2 a_ik b_jk) (K.mulf b2 b_ik a_jk) in
                 let prod = K.mulf b2 alpha_v t in
                 K.acc_update b2 c [ i; j ] (fun v -> K.addf b2 v prod))
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; mem; Types.Index ]
      ~buffers:[ sq_buf ~size_arg:3 0; sq_buf ~size_arg:3 1; sq_buf ~size_arg:3 2 ]
      ~body:
        [ submit2 ~kernel:"syr2k" ~size_arg:3
            [ cap_r 0; cap_r 1; cap_rw 2;
              Host.Capture_scalar (Attr.Float alpha);
              Host.Capture_scalar (Attr.Float beta) ] ];
    m
  in
  let w_data () =
    let st = rng 19 in
    let a = farray_random st (n * n) and b = farray_random st (n * n)
    and c = farray_random st (n * n) in
    let c0 = snapshot c (n * n) in
    let validate () =
      let av = snapshot a (n * n) and bv = snapshot b (n * n) in
      let expect = Array.make (n * n) 0.0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let acc = ref (beta *. c0.((i * n) + j)) in
          for k = 0 to n - 1 do
            acc :=
              !acc
              +. alpha
                 *. ((av.((i * n) + k) *. bv.((j * n) + k))
                    +. (bv.((i * n) + k) *. av.((j * n) + k)))
          done;
          expect.((i * n) + j) <- !acc
        done
      done;
      check_array c expect
    in
    ([ harg a; harg b; harg c; iarg n ], validate)
  in
  mk ~name:"SYR2K" ~paper:1024 ~n ~category:Polybench w_module w_data

(* ------------------------------------------------------------------ *)
(* Vector / matrix-vector family                                       *)
(* ------------------------------------------------------------------ *)

(* mat-vec accumulate kernel: out[g] += M[g][k]*v[k] (or transposed). *)
let matvec_kernel m ~name ~transposed =
  ignore
    (K.define m ~name ~dims:1 ~args:[ racc; racc1; rwacc1 ]
       (fun b ~item ~args ->
         match args with
         | [ mat; vec; out ] ->
           let i = K.gid b item 0 in
           let n = K.grange b item 0 in
           K.for_up b n (fun b2 k ->
               let mv =
                 if transposed then K.acc_get b2 mat [ k; i ]
                 else K.acc_get b2 mat [ i; k ]
               in
               let prod = K.mulf b2 mv (K.acc_get b2 vec [ k ]) in
               K.acc_update b2 out [ i ] (fun v -> K.addf b2 v prod))
         | _ -> assert false))

let ref_matvec ~n ~transposed mat vec out0 =
  Array.init n (fun i ->
      let acc = ref out0.(i) in
      for k = 0 to n - 1 do
        let mv = if transposed then mat.((k * n) + i) else mat.((i * n) + k) in
        acc := !acc +. (mv *. vec.(k))
      done;
      !acc)

(* ATAX: y = Aᵀ(Ax) *)
let atax ~n =
  let w_module () =
    let m = fresh_module () in
    matvec_kernel m ~name:"mv" ~transposed:false;
    matvec_kernel m ~name:"mv_t" ~transposed:true;
    emit_host m
      ~args:[ mem; mem; mem; mem; Types.Index ]
      ~buffers:
        [ sq_buf ~size_arg:4 0; vec_buf ~size_arg:4 1; vec_buf ~size_arg:4 2;
          vec_buf ~size_arg:4 3 ]
      ~body:
        [
          submit1 ~kernel:"mv" ~size_arg:4 [ cap_r 0; cap_r 1; cap_rw 2 ];
          submit1 ~kernel:"mv_t" ~size_arg:4 [ cap_r 0; cap_r 2; cap_rw 3 ];
        ];
    m
  in
  let w_data () =
    let st = rng 23 in
    let a = farray_random st (n * n) and x = farray_random st n in
    let tmp = farray_zeros n and y = farray_zeros n in
    let validate () =
      let av = snapshot a (n * n) and xv = snapshot x n in
      let t = ref_matvec ~n ~transposed:false av xv (Array.make n 0.0) in
      let expect = ref_matvec ~n ~transposed:true av t (Array.make n 0.0) in
      check_array ~tol:5e-3 y expect
    in
    ([ harg a; harg x; harg tmp; harg y; iarg n ], validate)
  in
  mk ~name:"Atax" ~paper:4096 ~n ~category:Polybench w_module w_data

(* BICG: s = rᵀA (i.e. Aᵀr); q = Ap *)
let bicg ~n =
  let w_module () =
    let m = fresh_module () in
    matvec_kernel m ~name:"mv" ~transposed:false;
    matvec_kernel m ~name:"mv_t" ~transposed:true;
    emit_host m
      ~args:[ mem; mem; mem; mem; mem; Types.Index ]
      ~buffers:
        [ sq_buf ~size_arg:5 0; vec_buf ~size_arg:5 1; vec_buf ~size_arg:5 2;
          vec_buf ~size_arg:5 3; vec_buf ~size_arg:5 4 ]
      ~body:
        [
          submit1 ~kernel:"mv_t" ~size_arg:5 [ cap_r 0; cap_r 1; cap_rw 3 ];
          submit1 ~kernel:"mv" ~size_arg:5 [ cap_r 0; cap_r 2; cap_rw 4 ];
        ];
    m
  in
  let w_data () =
    let st = rng 29 in
    let a = farray_random st (n * n) in
    let r = farray_random st n and p = farray_random st n in
    let s = farray_zeros n and q = farray_zeros n in
    let validate () =
      let av = snapshot a (n * n) in
      let sv = ref_matvec ~n ~transposed:true av (snapshot r n) (Array.make n 0.0) in
      let qv = ref_matvec ~n ~transposed:false av (snapshot p n) (Array.make n 0.0) in
      check_array ~tol:5e-3 s sv && check_array ~tol:5e-3 q qv
    in
    ([ harg a; harg r; harg p; harg s; harg q; iarg n ], validate)
  in
  mk ~name:"Bicg" ~paper:16384 ~n ~category:Polybench w_module w_data

(* MVT: x1 += A*y1; x2 += Aᵀ*y2 *)
let mvt ~n =
  let w_module () =
    let m = fresh_module () in
    matvec_kernel m ~name:"mv" ~transposed:false;
    matvec_kernel m ~name:"mv_t" ~transposed:true;
    emit_host m
      ~args:[ mem; mem; mem; mem; mem; Types.Index ]
      ~buffers:
        [ sq_buf ~size_arg:5 0; vec_buf ~size_arg:5 1; vec_buf ~size_arg:5 2;
          vec_buf ~size_arg:5 3; vec_buf ~size_arg:5 4 ]
      ~body:
        [
          submit1 ~kernel:"mv" ~size_arg:5 [ cap_r 0; cap_r 1; cap_rw 3 ];
          submit1 ~kernel:"mv_t" ~size_arg:5 [ cap_r 0; cap_r 2; cap_rw 4 ];
        ];
    m
  in
  let w_data () =
    let st = rng 31 in
    let a = farray_random st (n * n) in
    let y1 = farray_random st n and y2 = farray_random st n in
    let x1 = farray_random st n and x2 = farray_random st n in
    let x1_0 = snapshot x1 n and x2_0 = snapshot x2 n in
    let validate () =
      let av = snapshot a (n * n) in
      check_array ~tol:5e-3 x1 (ref_matvec ~n ~transposed:false av (snapshot y1 n) x1_0)
      && check_array ~tol:5e-3 x2 (ref_matvec ~n ~transposed:true av (snapshot y2 n) x2_0)
    in
    ([ harg a; harg y1; harg y2; harg x1; harg x2; iarg n ], validate)
  in
  mk ~name:"MVT" ~paper:16384 ~n ~category:Polybench w_module w_data

(* GESUMMV: y = alpha*A*x + beta*B*x, both accumulations in one loop. *)
let gesummv ~n =
  let alpha = 0.75 and beta = 1.25 in
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"gesummv" ~dims:1
         ~args:[ racc; racc; racc1; rwacc1; rwacc1; K.Scal f32; K.Scal f32 ]
         (fun b ~item ~args ->
           match args with
           | [ a; bb; x; tmp; y; alpha_v; beta_v ] ->
             let i = K.gid b item 0 in
             let n = K.grange b item 0 in
             K.for_up b n (fun b2 k ->
                 let xv = K.acc_get b2 x [ k ] in
                 let pa = K.mulf b2 (K.acc_get b2 a [ i; k ]) xv in
                 let pb = K.mulf b2 (K.acc_get b2 bb [ i; k ]) xv in
                 K.acc_update b2 tmp [ i ] (fun v -> K.addf b2 v pa);
                 K.acc_update b2 y [ i ] (fun v -> K.addf b2 v pb));
             let t = K.acc_get b tmp [ i ] in
             let yv = K.acc_get b y [ i ] in
             K.acc_set b y [ i ]
               (K.addf b (K.mulf b alpha_v t) (K.mulf b beta_v yv))
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; mem; mem; mem; Types.Index ]
      ~buffers:
        [ sq_buf ~size_arg:5 0; sq_buf ~size_arg:5 1; vec_buf ~size_arg:5 2;
          vec_buf ~size_arg:5 3; vec_buf ~size_arg:5 4 ]
      ~body:
        [ submit1 ~kernel:"gesummv" ~size_arg:5
            [ cap_r 0; cap_r 1; cap_r 2; cap_rw 3; cap_rw 4;
              Host.Capture_scalar (Attr.Float alpha);
              Host.Capture_scalar (Attr.Float beta) ] ];
    m
  in
  let w_data () =
    let st = rng 37 in
    let a = farray_random st (n * n) and b = farray_random st (n * n) in
    let x = farray_random st n in
    let tmp = farray_zeros n and y = farray_zeros n in
    let validate () =
      let av = snapshot a (n * n) and bv = snapshot b (n * n) and xv = snapshot x n in
      let expect =
        Array.init n (fun i ->
            let ta = ref 0.0 and tb = ref 0.0 in
            for k = 0 to n - 1 do
              ta := !ta +. (av.((i * n) + k) *. xv.(k));
              tb := !tb +. (bv.((i * n) + k) *. xv.(k))
            done;
            (alpha *. !ta) +. (beta *. !tb))
      in
      check_array ~tol:5e-3 y expect
    in
    ([ harg a; harg b; harg x; harg tmp; harg y; iarg n ], validate)
  in
  mk ~name:"GESUMMV" ~paper:16384 ~n ~category:Polybench w_module w_data

(* ------------------------------------------------------------------ *)
(* Correlation / covariance                                            *)
(* ------------------------------------------------------------------ *)

let mean_kernel m ~name =
  (* mean[j] = (1/n) sum_i data[i][j] *)
  ignore
    (K.define m ~name ~dims:1 ~args:[ racc; rwacc1 ]
       (fun b ~item ~args ->
         match args with
         | [ data; mean ] ->
           let j = K.gid b item 0 in
           let n = K.grange b item 0 in
           K.for_up b n (fun b2 i ->
               let d = K.acc_get b2 data [ i; j ] in
               K.acc_update b2 mean [ j ] (fun v -> K.addf b2 v d));
           let nf = A.sitofp b (A.index_cast b n Types.i64) f32 in
           let mv = K.acc_get b mean [ j ] in
           K.acc_set b mean [ j ] (K.divf b mv nf)
         | _ -> assert false))

let center_kernel m ~name =
  ignore
    (K.define m ~name ~dims:2 ~args:[ rwacc; racc1 ]
       (fun b ~item ~args ->
         match args with
         | [ data; mean ] ->
           let i = K.gid b item 0 and j = K.gid b item 1 in
           let mv = K.acc_get b mean [ j ] in
           K.acc_update b data [ i; j ] (fun v -> K.subf b v mv)
         | _ -> assert false))

(* cov[j1][j2] = (1/(n-1)) sum_i data[i][j1]*data[i][j2] *)
let covar_kernel m ~name =
  ignore
    (K.define m ~name ~dims:2 ~args:[ racc; rwacc ]
       (fun b ~item ~args ->
         match args with
         | [ data; cov ] ->
           let j1 = K.gid b item 0 and j2 = K.gid b item 1 in
           let n = K.grange b item 0 in
           K.for_up b n (fun b2 i ->
               let x = K.acc_get b2 data [ i; j1 ] in
               let y = K.acc_get b2 data [ i; j2 ] in
               let p = K.mulf b2 x y in
               K.acc_update b2 cov [ j1; j2 ] (fun v -> K.addf b2 v p));
           let n1 =
             A.subf b (A.sitofp b (A.index_cast b n Types.i64) f32) (K.fconst b 1.0)
           in
           let cv = K.acc_get b cov [ j1; j2 ] in
           K.acc_set b cov [ j1; j2 ] (K.divf b cv n1)
         | _ -> assert false))

let ref_mean ~n data = Array.init n (fun j ->
    let s = ref 0.0 in
    for i = 0 to n - 1 do s := !s +. data.((i * n) + j) done;
    !s /. float_of_int n)

let covariance ~n =
  let w_module () =
    let m = fresh_module () in
    mean_kernel m ~name:"cov_mean";
    center_kernel m ~name:"cov_center";
    covar_kernel m ~name:"cov_covar";
    emit_host m
      ~args:[ mem; mem; mem; Types.Index ]
      ~buffers:[ sq_buf ~size_arg:3 0; vec_buf ~size_arg:3 1; sq_buf ~size_arg:3 2 ]
      ~body:
        [
          submit1 ~kernel:"cov_mean" ~size_arg:3 [ cap_r 0; cap_rw 1 ];
          submit2 ~kernel:"cov_center" ~size_arg:3 [ cap_rw 0; cap_r 1 ];
          submit2 ~kernel:"cov_covar" ~size_arg:3 [ cap_r 0; cap_rw 2 ];
        ];
    m
  in
  let w_data () =
    let st = rng 41 in
    let data = farray_random st (n * n) in
    let mean = farray_zeros n and cov = farray_zeros (n * n) in
    let d0 = snapshot data (n * n) in
    let validate () =
      let mv = ref_mean ~n d0 in
      let centered =
        Array.init (n * n) (fun k -> d0.(k) -. mv.(k mod n))
      in
      let expect = Array.make (n * n) 0.0 in
      for j1 = 0 to n - 1 do
        for j2 = 0 to n - 1 do
          let s = ref 0.0 in
          for i = 0 to n - 1 do
            s := !s +. (centered.((i * n) + j1) *. centered.((i * n) + j2))
          done;
          expect.((j1 * n) + j2) <- !s /. float_of_int (n - 1)
        done
      done;
      check_array ~tol:5e-3 cov expect
    in
    ([ harg data; harg mean; harg cov; iarg n ], validate)
  in
  mk ~name:"Covariance" ~paper:1024 ~n ~category:Polybench w_module w_data

let correlation ~n =
  let w_module () =
    let m = fresh_module () in
    mean_kernel m ~name:"corr_mean";
    (* std[j] = sqrt((1/n) sum_i (data[i][j]-mean[j])^2), floored at 0.1 *)
    ignore
      (K.define m ~name:"corr_std" ~dims:1 ~args:[ racc; racc1; rwacc1 ]
         (fun b ~item ~args ->
           match args with
           | [ data; mean; std ] ->
             let j = K.gid b item 0 in
             let n = K.grange b item 0 in
             let mv = K.acc_get b mean [ j ] in
             K.for_up b n (fun b2 i ->
                 let d = K.subf b2 (K.acc_get b2 data [ i; j ]) mv in
                 let sq = K.mulf b2 d d in
                 K.acc_update b2 std [ j ] (fun v -> K.addf b2 v sq));
             let nf = A.sitofp b (A.index_cast b n Types.i64) f32 in
             let sv = A.sqrt b (K.divf b (K.acc_get b std [ j ]) nf) in
             let floor_v = K.fconst b 0.1 in
             let sv = A.maxf b sv floor_v in
             K.acc_set b std [ j ] sv
           | _ -> assert false));
    (* normalize: data[i][j] = (data[i][j]-mean[j]) / (sqrt(n)*std[j]) *)
    ignore
      (K.define m ~name:"corr_norm" ~dims:2 ~args:[ rwacc; racc1; racc1 ]
         (fun b ~item ~args ->
           match args with
           | [ data; mean; std ] ->
             let i = K.gid b item 0 and j = K.gid b item 1 in
             let n = K.grange b item 0 in
             let mv = K.acc_get b mean [ j ] in
             let sv = K.acc_get b std [ j ] in
             let nf = A.sqrt b (A.sitofp b (A.index_cast b n Types.i64) f32) in
             let denom = K.mulf b nf sv in
             K.acc_update b data [ i; j ] (fun v ->
                 K.divf b (K.subf b v mv) denom)
           | _ -> assert false));
    covar_kernel m ~name:"corr_corr";
    emit_host m
      ~args:[ mem; mem; mem; mem; Types.Index ]
      ~buffers:
        [ sq_buf ~size_arg:4 0; vec_buf ~size_arg:4 1; vec_buf ~size_arg:4 2;
          sq_buf ~size_arg:4 3 ]
      ~body:
        [
          submit1 ~kernel:"corr_mean" ~size_arg:4 [ cap_r 0; cap_rw 1 ];
          submit1 ~kernel:"corr_std" ~size_arg:4 [ cap_r 0; cap_r 1; cap_rw 2 ];
          submit2 ~kernel:"corr_norm" ~size_arg:4 [ cap_rw 0; cap_r 1; cap_r 2 ];
          submit2 ~kernel:"corr_corr" ~size_arg:4 [ cap_r 0; cap_rw 3 ];
        ];
    m
  in
  let w_data () =
    let st = rng 43 in
    let data = farray_random st (n * n) in
    let mean = farray_zeros n and std = farray_zeros n and corr = farray_zeros (n * n) in
    let d0 = snapshot data (n * n) in
    let validate () =
      let nf = float_of_int n in
      let mv = ref_mean ~n d0 in
      let sv =
        Array.init n (fun j ->
            let s = ref 0.0 in
            for i = 0 to n - 1 do
              let d = d0.((i * n) + j) -. mv.(j) in
              s := !s +. (d *. d)
            done;
            Float.max (sqrt (!s /. nf)) 0.1)
      in
      let norm =
        Array.init (n * n) (fun k ->
            let j = k mod n in
            (d0.(k) -. mv.(j)) /. (sqrt nf *. sv.(j)))
      in
      let expect = Array.make (n * n) 0.0 in
      for j1 = 0 to n - 1 do
        for j2 = 0 to n - 1 do
          let s = ref 0.0 in
          for i = 0 to n - 1 do
            s := !s +. (norm.((i * n) + j1) *. norm.((i * n) + j2))
          done;
          expect.((j1 * n) + j2) <- !s /. (nf -. 1.0)
        done
      done;
      check_array ~tol:1e-2 corr expect
    in
    ([ harg data; harg mean; harg std; harg corr; iarg n ], validate)
  in
  mk ~name:"Correlation" ~paper:1024 ~n ~category:Polybench w_module w_data

(* ------------------------------------------------------------------ *)
(* Convolutions and stencils                                           *)
(* ------------------------------------------------------------------ *)

(* 2D convolution with a fixed 3x3 kernel, interior points only. *)
let conv2d_coeffs =
  [| 0.2; -0.3; 0.4; -0.5; 0.6; -0.7; 0.8; -0.9; 0.10 |]

let conv2d ~n =
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"conv2d" ~dims:2 ~args:[ racc; wacc ]
         (fun b ~item ~args ->
           match args with
           | [ inp; out ] ->
             let i = K.gid b item 0 and j = K.gid b item 1 in
             let n = K.grange b item 0 in
             let one = K.idx b 1 in
             let n1 = K.subi b n one in
             let interior d =
               let lo = A.cmpi b A.Sge d one in
               let hi = A.cmpi b A.Slt d n1 in
               A.andi b lo hi
             in
             let cond = A.andi b (interior i) (interior j) in
             ignore
               (Dialects.Scf.if_ b cond
                  ~then_:(fun b2 ->
                    let acc = ref (K.fconst b2 0.0) in
                    List.iteri
                      (fun idx coef ->
                        let di = (idx / 3) - 1 and dj = (idx mod 3) - 1 in
                        let ii = K.addi b2 i (K.idx b2 di) in
                        let jj = K.addi b2 j (K.idx b2 dj) in
                        let v = K.acc_get b2 inp [ ii; jj ] in
                        acc := K.addf b2 !acc (K.mulf b2 (K.fconst b2 coef) v))
                      (Array.to_list conv2d_coeffs);
                    K.acc_set b2 out [ i; j ] !acc;
                    [])
                  ())
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; Types.Index ]
      ~buffers:[ sq_buf ~size_arg:2 0; sq_buf ~size_arg:2 1 ]
      ~body:[ submit2 ~kernel:"conv2d" ~size_arg:2 [ cap_r 0; cap_w 1 ] ];
    m
  in
  let w_data () =
    let st = rng 47 in
    let inp = farray_random st (n * n) and out = farray_zeros (n * n) in
    let i0 = snapshot inp (n * n) in
    let validate () =
      let ok = ref true in
      for i = 1 to n - 2 do
        for j = 1 to n - 2 do
          let s = ref 0.0 in
          Array.iteri
            (fun idx coef ->
              let di = (idx / 3) - 1 and dj = (idx mod 3) - 1 in
              s := !s +. (coef *. i0.(((i + di) * n) + j + dj)))
            conv2d_coeffs;
          if not (approx_eq (read_f out ((i * n) + j)) !s) then ok := false
        done
      done;
      !ok
    in
    ([ harg inp; harg out; iarg n ], validate)
  in
  mk ~name:"2DConvolution" ~paper:4096 ~n ~category:Polybench w_module w_data

(* 3D convolution: 2-D launch over (i,j), k-loop inside; 3-D accessors. *)
let conv3d ~n =
  let racc3 = K.Acc (3, S.Read, f32) and wacc3 = K.Acc (3, S.Write, f32) in
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"conv3d" ~dims:2 ~args:[ racc3; wacc3 ]
         (fun b ~item ~args ->
           match args with
           | [ inp; out ] ->
             let i = K.gid b item 0 and j = K.gid b item 1 in
             let n = K.grange b item 0 in
             let one = K.idx b 1 in
             let n1 = K.subi b n one in
             let interior d =
               A.andi b (A.cmpi b A.Sge d one) (A.cmpi b A.Slt d n1)
             in
             let cond = A.andi b (interior i) (interior j) in
             ignore
               (Dialects.Scf.if_ b cond
                  ~then_:(fun b2 ->
                    K.for_range b2 ~lb:one ~ub:n1 ~step:(K.idx b2 1)
                      (fun b3 k ->
                        let get di dj dk =
                          let ii = K.addi b3 i (K.idx b3 di) in
                          let jj = K.addi b3 j (K.idx b3 dj) in
                          let kk = K.addi b3 k (K.idx b3 dk) in
                          K.acc_get b3 inp [ ii; jj; kk ]
                        in
                        let s =
                          K.addf b3
                            (K.addf b3
                               (K.mulf b3 (K.fconst b3 0.5) (get (-1) 0 0))
                               (K.mulf b3 (K.fconst b3 (-0.25)) (get 1 0 0)))
                            (K.addf b3
                               (K.mulf b3 (K.fconst b3 0.125) (get 0 (-1) 1))
                               (K.mulf b3 (K.fconst b3 0.0625) (get 0 1 (-1))))
                        in
                        K.acc_set b3 out [ i; j; k ] s);
                    [])
                  ())
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; Types.Index ]
      ~buffers:
        [
          { Host.buf_data_arg = 0;
            buf_dims = [ Host.Arg 2; Host.Arg 2; Host.Arg 2 ]; buf_element = f32 };
          { Host.buf_data_arg = 1;
            buf_dims = [ Host.Arg 2; Host.Arg 2; Host.Arg 2 ]; buf_element = f32 };
        ]
      ~body:[ submit2 ~kernel:"conv3d" ~size_arg:2 [ cap_r 0; cap_w 1 ] ];
    m
  in
  let w_data () =
    let st = rng 53 in
    let inp = farray_random st (n * n * n) and out = farray_zeros (n * n * n) in
    let i0 = snapshot inp (n * n * n) in
    let at i j k = i0.((((i * n) + j) * n) + k) in
    let validate () =
      let ok = ref true in
      for i = 1 to n - 2 do
        for j = 1 to n - 2 do
          for k = 1 to n - 2 do
            let s =
              (0.5 *. at (i - 1) j k) +. (-0.25 *. at (i + 1) j k)
              +. (0.125 *. at i (j - 1) (k + 1))
              +. (0.0625 *. at i (j + 1) (k - 1))
            in
            if not (approx_eq (read_f out ((((i * n) + j) * n) + k)) s) then
              ok := false
          done
        done
      done;
      !ok
    in
    ([ harg inp; harg out; iarg n ], validate)
  in
  {
    (mk ~name:"3DConvolution" ~paper:1024 ~n ~category:Polybench w_module w_data) with
    w_acpp_ok = false (* models an AdaptiveCpp validation failure (Fig. 3) *);
  }

(* FDTD-2D: three kernels per simulated time step (host loop). *)
let fdtd2d ~n ~steps =
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"fdtd_ex" ~dims:2 ~args:[ rwacc; racc ]
         (fun b ~item ~args ->
           match args with
           | [ ex; hz ] ->
             let i = K.gid b item 0 and j = K.gid b item 1 in
             let one = K.idx b 1 in
             let cond = A.cmpi b A.Sge j one in
             ignore
               (Dialects.Scf.if_ b cond
                  ~then_:(fun b2 ->
                    let j1 = K.subi b2 j one in
                    let d = K.subf b2 (K.acc_get b2 hz [ i; j ]) (K.acc_get b2 hz [ i; j1 ]) in
                    K.acc_update b2 ex [ i; j ] (fun v ->
                        K.subf b2 v (K.mulf b2 (K.fconst b2 0.5) d));
                    [])
                  ())
           | _ -> assert false));
    ignore
      (K.define m ~name:"fdtd_ey" ~dims:2 ~args:[ rwacc; racc ]
         (fun b ~item ~args ->
           match args with
           | [ ey; hz ] ->
             let i = K.gid b item 0 and j = K.gid b item 1 in
             let one = K.idx b 1 in
             let cond = A.cmpi b A.Sge i one in
             ignore
               (Dialects.Scf.if_ b cond
                  ~then_:(fun b2 ->
                    let i1 = K.subi b2 i one in
                    let d = K.subf b2 (K.acc_get b2 hz [ i; j ]) (K.acc_get b2 hz [ i1; j ]) in
                    K.acc_update b2 ey [ i; j ] (fun v ->
                        K.subf b2 v (K.mulf b2 (K.fconst b2 0.5) d));
                    [])
                  ())
           | _ -> assert false));
    ignore
      (K.define m ~name:"fdtd_hz" ~dims:2 ~args:[ rwacc; racc; racc ]
         (fun b ~item ~args ->
           match args with
           | [ hz; ex; ey ] ->
             let i = K.gid b item 0 and j = K.gid b item 1 in
             let n = K.grange b item 0 in
             let one = K.idx b 1 in
             let n1 = K.subi b n one in
             let cond =
               A.andi b (A.cmpi b A.Slt i n1) (A.cmpi b A.Slt j n1)
             in
             ignore
               (Dialects.Scf.if_ b cond
                  ~then_:(fun b2 ->
                    let i1 = K.addi b2 i one and j1 = K.addi b2 j one in
                    let dx = K.subf b2 (K.acc_get b2 ex [ i; j1 ]) (K.acc_get b2 ex [ i; j ]) in
                    let dy = K.subf b2 (K.acc_get b2 ey [ i1; j ]) (K.acc_get b2 ey [ i; j ]) in
                    K.acc_update b2 hz [ i; j ] (fun v ->
                        K.subf b2 v (K.mulf b2 (K.fconst b2 0.7) (K.addf b2 dx dy)));
                    [])
                  ())
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; mem; Types.Index; Types.Index ]
      ~buffers:[ sq_buf ~size_arg:3 0; sq_buf ~size_arg:3 1; sq_buf ~size_arg:3 2 ]
      ~body:
        [
          Host.Repeat
            ( Host.Arg 4,
              [
                submit2 ~kernel:"fdtd_ex" ~size_arg:3 [ cap_rw 0; cap_r 2 ];
                submit2 ~kernel:"fdtd_ey" ~size_arg:3 [ cap_rw 1; cap_r 2 ];
                submit2 ~kernel:"fdtd_hz" ~size_arg:3 [ cap_rw 2; cap_r 0; cap_r 1 ];
              ] );
        ];
    m
  in
  let w_data () =
    let st = rng 59 in
    let ex = farray_random st (n * n) and ey = farray_random st (n * n)
    and hz = farray_random st (n * n) in
    let exv = snapshot ex (n * n) and eyv = snapshot ey (n * n)
    and hzv = snapshot hz (n * n) in
    let validate () =
      (* Host reference simulation. *)
      for _ = 1 to steps do
        for i = 0 to n - 1 do
          for j = 1 to n - 1 do
            exv.((i * n) + j) <-
              exv.((i * n) + j)
              -. (0.5 *. (hzv.((i * n) + j) -. hzv.((i * n) + j - 1)))
          done
        done;
        for i = 1 to n - 1 do
          for j = 0 to n - 1 do
            eyv.((i * n) + j) <-
              eyv.((i * n) + j)
              -. (0.5 *. (hzv.((i * n) + j) -. hzv.(((i - 1) * n) + j)))
          done
        done;
        for i = 0 to n - 2 do
          for j = 0 to n - 2 do
            hzv.((i * n) + j) <-
              hzv.((i * n) + j)
              -. 0.7
                 *. (exv.((i * n) + j + 1) -. exv.((i * n) + j)
                    +. eyv.(((i + 1) * n) + j)
                    -. eyv.((i * n) + j))
          done
        done
      done;
      check_array ~tol:1e-2 hz hzv
    in
    ([ harg ex; harg ey; harg hz; iarg n; iarg steps ], validate)
  in
  mk ~name:"FDTD2D" ~paper:1024 ~n ~category:Polybench w_module w_data

(* Gramschmidt (simplified column step): the R-accumulation loop sits in a
   divergent region (only the diagonal work-items run it), which is the
   case the paper reports as rejected by the Uniformity analysis. *)
let gramschmidt ~n =
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"gs_step" ~dims:2 ~args:[ racc; rwacc; wacc ]
         (fun b ~item ~args ->
           match args with
           | [ a; r; q ] ->
             let i = K.gid b item 0 and j = K.gid b item 1 in
             let n = K.grange b item 0 in
             let diag = A.cmpi b A.Eq i j in
             (* Divergent: only diagonal work-items run the column-norm
                loop. The a[t][j] access stream makes it an
                internalization candidate, but the Uniformity analysis
                must reject it — a group barrier here would deadlock
                (the case Section VIII reports for Gramschmidt). *)
             ignore
               (Dialects.Scf.if_ b diag
                  ~then_:(fun b2 ->
                    let zero = K.fconst b2 0.0 in
                    let sum =
                      Dialects.Scf.for_ b2 ~lb:(K.idx b2 0) ~ub:n
                        ~step:(K.idx b2 1) ~iter_args:[ zero ]
                        (fun b3 t acc ->
                          match acc with
                          | [ acc ] ->
                            let x = K.acc_get b3 a [ t; j ] in
                            [ K.addf b3 acc (K.mulf b3 x x) ]
                          | _ -> assert false)
                    in
                    K.acc_set b2 r [ j; j ] (Core.result sum 0);
                    [])
                  ());
             (* All work-items: Q[i][j] = A[i][j] scaled by a per-column
                normalizer derived from column sums recomputed locally. *)
             let col = K.acc_get b a [ i; j ] in
             K.acc_set b q [ i; j ] (K.mulf b col (K.fconst b 0.5))
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; mem; Types.Index ]
      ~buffers:[ sq_buf ~size_arg:3 0; sq_buf ~size_arg:3 1; sq_buf ~size_arg:3 2 ]
      ~body:[ submit2 ~kernel:"gs_step" ~size_arg:3 [ cap_r 0; cap_rw 1; cap_w 2 ] ];
    m
  in
  let w_data () =
    let st = rng 61 in
    let a = farray_random st (n * n) in
    let r = farray_zeros (n * n) and q = farray_zeros (n * n) in
    let a0 = snapshot a (n * n) in
    let validate () =
      let ok = ref true in
      for j = 0 to n - 1 do
        let s = ref 0.0 in
        for t = 0 to n - 1 do
          s := !s +. (a0.((t * n) + j) *. a0.((t * n) + j))
        done;
        if not (approx_eq ~tol:5e-3 (read_f r ((j * n) + j)) !s) then ok := false
      done;
      for k = 0 to (n * n) - 1 do
        if not (approx_eq (read_f q k) (0.5 *. a0.(k))) then ok := false
      done;
      !ok
    in
    ([ harg a; harg r; harg q; iarg n ], validate)
  in
  {
    (mk ~name:"Gramschmidt" ~paper:1024 ~n ~category:Polybench w_module w_data) with
    w_acpp_ok = false (* models an AdaptiveCpp validation failure (Fig. 3) *);
  }

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let all ?(scale = 1) () =
  let s n = max 16 (n * scale) in
  [
    two_mm ~n:(s 48);
    three_mm ~n:(s 48);
    conv3d ~n:(s 24);
    conv2d ~n:(s 96);
    atax ~n:(s 256);
    bicg ~n:(s 256);
    correlation ~n:(s 64);
    covariance ~n:(s 64);
    fdtd2d ~n:(s 32) ~steps:6;
    gemm ~n:(s 64);
    gesummv ~n:(s 256);
    gramschmidt ~n:(s 64);
    mvt ~n:(s 256);
    syr2k ~n:(s 48);
    syrk ~n:(s 64);
  ]
