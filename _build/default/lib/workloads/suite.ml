(* The full evaluated suite, indexed by the paper's figures. *)

open Common

let fig2 ?scale () = Single_kernel.all ?scale ()
let fig3 ?scale () = Polybench.all ?scale ()
let stencils ?scale () = Stencil.all ?scale ()

let all ?scale () = fig2 ?scale () @ fig3 ?scale () @ stencils ?scale ()

(* Extension workloads: runnable via sycl-bench but not part of the
   paper's figures. *)
let extensions () =
  [ Extensions.elementwise_chain ~n:8192; Extensions.tiled_matmul ~n:32 ~m_tile:8 ]

let find name =
  List.find_opt
    (fun w ->
      let norm s = String.lowercase_ascii (String.trim s) in
      norm w.w_name = norm name)
    (all () @ extensions ())

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

type row = {
  r_name : string;
  r_acpp : float option;  (** None = failed validation / unsupported *)
  r_sycl_mlir : float;
  r_base_cycles : int;
  r_comparison : comparison;
}

let run_row ?params (w : workload) : row =
  let c = compare_workload ?params w in
  {
    r_name = w.w_name;
    r_acpp = Option.map (fun m -> speedup c.c_base m) c.c_acpp;
    r_sycl_mlir = speedup c.c_base c.c_sycl_mlir;
    r_base_cycles = c.c_base.m_cycles;
    r_comparison = c;
  }

let bar width x =
  let n = int_of_float (x *. float_of_int width /. 4.5) in
  String.make (min width (max 1 n)) '#'

(** Print one figure: speedup over DPC++ per benchmark, ASCII bars like
    the paper's plots; missing AdaptiveCpp bars = failed validation. *)
let print_figure ~title (rows : row list) =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=');
  Printf.printf "%-26s %-28s %-28s\n" "benchmark" "AdaptiveCpp" "SYCL-MLIR";
  List.iter
    (fun r ->
      let acpp_s =
        match r.r_acpp with
        | Some s -> Printf.sprintf "%5.2fx %s" s (bar 20 s)
        | None -> "  (failed validation)"
      in
      Printf.printf "%-26s %-28s %5.2fx %s\n" r.r_name acpp_s r.r_sycl_mlir
        (bar 20 r.r_sycl_mlir))
    rows;
  let acpp = List.filter_map (fun r -> r.r_acpp) rows in
  let sm = List.map (fun r -> r.r_sycl_mlir) rows in
  Printf.printf "%-26s %5.2fx%22s %5.2fx\n" "geo.-mean"
    (geomean acpp) "" (geomean sm)

let validity_ok (rows : row list) =
  List.for_all
    (fun r ->
      r.r_comparison.c_base.m_valid && r.r_comparison.c_sycl_mlir.m_valid)
    rows
