(* The oneAPI-samples stencil workloads of Section VIII: 1-D heat transfer
   (buffer and USM variants), iso2dfd wave propagation, and the Jacobi
   solver (adapted, as in the paper, so that the preparation for the next
   iteration happens on the host — the main computation stays on the
   device). The paper reports ~parity or slight SYCL-MLIR regressions
   here, AdaptiveCpp failing validation on everything but iso2dfd. *)

open Mlir
open Common
module K = Kernel
module A = Dialects.Arith
module S = Sycl_types

let f32 = Types.f32
let mem = Types.memref_dyn f32

let vec_buf ~size_arg i =
  { Host.buf_data_arg = i; buf_dims = [ Host.Arg size_arg ]; buf_element = f32 }

let cap_r i = Host.Capture_acc (i, S.Read)
let cap_w i = Host.Capture_acc (i, S.Write)

let emit_host m ~args ~buffers ~body =
  ignore (Host.emit m { Host.host_args = args; buffers; globals = []; body })

let mk ~name ~paper ~n ~acpp w_module w_data =
  { w_name = name; w_category = Stencil; w_problem_size = n;
    w_paper_size = paper; w_module; w_data; w_acpp_ok = acpp }

(* ------------------------------------------------------------------ *)
(* 1-D heat transfer                                                   *)
(* ------------------------------------------------------------------ *)

let heat_c = 0.25

(* out[i] = in[i] + C * (in[i+1] - 2 in[i] + in[i-1]), borders clamped. *)
let heat_step_body b ~item ~get ~set =
  let i = K.gid b item 0 in
  let n = K.grange b item 0 in
  let one = K.idx b 1 in
  let zero = K.idx b 0 in
  let n1 = K.subi b n one in
  let im = A.maxsi b zero (K.subi b i one) in
  let ip = A.minsi b n1 (K.addi b i one) in
  let u = get i and um = get im and up = get ip in
  let lap = K.addf b (K.subf b um (K.mulf b (K.fconst b 2.0) u)) up in
  set i (K.addf b u (K.mulf b (K.fconst b heat_c) lap))

let ref_heat ~n ~steps (u : float array) =
  let a = Array.copy u and b = Array.make n 0.0 in
  let cur = ref a and nxt = ref b in
  for _ = 1 to steps do
    for i = 0 to n - 1 do
      let um = !cur.(max 0 (i - 1)) and up = !cur.(min (n - 1) (i + 1)) in
      !nxt.(i) <- !cur.(i) +. (heat_c *. (um -. (2.0 *. !cur.(i)) +. up))
    done;
    let t = !cur in
    cur := !nxt;
    nxt := t
  done;
  !cur

let heat_buffer ~n ~steps =
  assert (steps mod 2 = 0);
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"heat_step" ~dims:1
         ~args:[ K.Acc (1, S.Read, f32); K.Acc (1, S.Write, f32) ]
         (fun b ~item ~args ->
           match args with
           | [ inp; out ] ->
             heat_step_body b ~item
               ~get:(fun i -> K.acc_get b inp [ i ])
               ~set:(fun i v -> K.acc_set b out [ i ] v)
           | _ -> assert false));
    let submit ~from ~into =
      Host.Submit
        { Host.cg_kernel = "heat_step"; cg_global = [ Host.Arg 2 ];
          cg_local = None; cg_captures = [ cap_r from; cap_w into ] }
    in
    emit_host m
      ~args:[ mem; mem; Types.Index; Types.Index ]
      ~buffers:[ vec_buf ~size_arg:2 0; vec_buf ~size_arg:2 1 ]
      ~body:
        [ Host.Repeat (Host.Arg 3, [ submit ~from:0 ~into:1; submit ~from:1 ~into:0 ]) ];
    m
  in
  let w_data () =
    let st = rng 71 in
    let u = farray_random st n and v = farray_zeros n in
    let u0 = Array.init n (read_f u) in
    let validate () = check_array ~tol:1e-2 u (ref_heat ~n ~steps u0) in
    ([ harg u; harg v; iarg n; iarg (steps / 2) ], validate)
  in
  mk ~name:"1d_HeatTransfer (buffer)" ~paper:100 ~n ~acpp:false w_module w_data

let heat_usm ~n ~steps =
  assert (steps mod 2 = 0);
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"heat_step_usm" ~dims:1 ~args:[ K.Ptr f32; K.Ptr f32 ]
         (fun b ~item ~args ->
           match args with
           | [ inp; out ] ->
             heat_step_body b ~item
               ~get:(fun i -> K.ptr_get b inp i)
               ~set:(fun i v -> K.ptr_set b out i v)
           | _ -> assert false));
    let submit ~from ~into =
      Host.Submit
        { Host.cg_kernel = "heat_step_usm"; cg_global = [ Host.Arg 1 ];
          cg_local = None;
          cg_captures = [ Host.Capture_usm from; Host.Capture_usm into ] }
    in
    emit_host m
      ~args:[ mem; Types.Index; Types.Index ]
      ~buffers:[]
      ~body:
        [
          Host.Usm_alloc (0, Host.Arg 1, f32);
          Host.Usm_alloc (1, Host.Arg 1, f32);
          Host.Memcpy_h2d (0, 0, Host.Arg 1);
          Host.Repeat (Host.Arg 2, [ submit ~from:0 ~into:1; submit ~from:1 ~into:0 ]);
          Host.Memcpy_d2h (0, 0, Host.Arg 1);
          Host.Usm_free 0;
          Host.Usm_free 1;
        ];
    m
  in
  let w_data () =
    let st = rng 73 in
    let u = farray_random st n in
    let u0 = Array.init n (read_f u) in
    let validate () = check_array ~tol:1e-2 u (ref_heat ~n ~steps u0) in
    ([ harg u; iarg n; iarg (steps / 2) ], validate)
  in
  mk ~name:"1d_HeatTransfer (USM)" ~paper:100 ~n ~acpp:false w_module w_data

(* ------------------------------------------------------------------ *)
(* iso2dfd: 2-D isotropic wave propagation                             *)
(* ------------------------------------------------------------------ *)

let iso2dfd ~n ~steps =
  assert (steps mod 2 = 0);
  let racc2 = K.Acc (2, S.Read, f32) in
  let rwacc2 = K.Acc (2, S.Read_write, f32) in
  let w_module () =
    let m = fresh_module () in
    (* next = 2*cur - next + vel * laplacian(cur), interior points. *)
    ignore
      (K.define m ~name:"iso2dfd" ~dims:2 ~args:[ rwacc2; racc2; racc2 ]
         (fun b ~item ~args ->
           match args with
           | [ next; cur; vel ] ->
             let i = K.gid b item 0 and j = K.gid b item 1 in
             let n = K.grange b item 0 in
             let one = K.idx b 1 in
             let n1 = K.subi b n one in
             let interior d = A.andi b (A.cmpi b A.Sge d one) (A.cmpi b A.Slt d n1) in
             let cond = A.andi b (interior i) (interior j) in
             ignore
               (Dialects.Scf.if_ b cond
                  ~then_:(fun b2 ->
                    let ip = K.addi b2 i one and im = K.subi b2 i one in
                    let jp = K.addi b2 j one and jm = K.subi b2 j one in
                    let c = K.acc_get b2 cur [ i; j ] in
                    let lap =
                      K.subf b2
                        (K.addf b2
                           (K.addf b2 (K.acc_get b2 cur [ im; j ]) (K.acc_get b2 cur [ ip; j ]))
                           (K.addf b2 (K.acc_get b2 cur [ i; jm ]) (K.acc_get b2 cur [ i; jp ])))
                        (K.mulf b2 (K.fconst b2 4.0) c)
                    in
                    let nv =
                      K.addf b2
                        (K.subf b2 (K.mulf b2 (K.fconst b2 2.0) c)
                           (K.acc_get b2 next [ i; j ]))
                        (K.mulf b2 (K.acc_get b2 vel [ i; j ]) lap)
                    in
                    K.acc_set b2 next [ i; j ] nv;
                    [])
                  ())
           | _ -> assert false));
    let submit ~next ~cur =
      Host.Submit
        { Host.cg_kernel = "iso2dfd"; cg_global = [ Host.Arg 3; Host.Arg 3 ];
          cg_local = None;
          cg_captures = [ Host.Capture_acc (next, S.Read_write); cap_r cur; cap_r 2 ] }
    in
    emit_host m
      ~args:[ mem; mem; mem; Types.Index; Types.Index ]
      ~buffers:
        [
          { Host.buf_data_arg = 0; buf_dims = [ Host.Arg 3; Host.Arg 3 ]; buf_element = f32 };
          { Host.buf_data_arg = 1; buf_dims = [ Host.Arg 3; Host.Arg 3 ]; buf_element = f32 };
          { Host.buf_data_arg = 2; buf_dims = [ Host.Arg 3; Host.Arg 3 ]; buf_element = f32 };
        ]
      ~body:[ Host.Repeat (Host.Arg 4, [ submit ~next:1 ~cur:0; submit ~next:0 ~cur:1 ]) ];
    m
  in
  let w_data () =
    let st = rng 79 in
    let prev = farray_random st (n * n) and cur = farray_random st (n * n) in
    let vel = farray_init (n * n) (fun _ -> 0.1 +. Random.State.float st 0.1) in
    let p0 = Array.init (n * n) (read_f prev)
    and c0 = Array.init (n * n) (read_f cur)
    and v0 = Array.init (n * n) (read_f vel) in
    let validate () =
      (* Reference: alternate roles exactly like the submitted pairs. *)
      let a = Array.copy p0 and b = Array.copy c0 in
      let step next cur =
        for i = 1 to n - 2 do
          for j = 1 to n - 2 do
            let c = cur.((i * n) + j) in
            let lap =
              cur.(((i - 1) * n) + j) +. cur.(((i + 1) * n) + j)
              +. cur.((i * n) + j - 1) +. cur.((i * n) + j + 1)
              -. (4.0 *. c)
            in
            next.((i * n) + j) <-
              (2.0 *. c) -. next.((i * n) + j) +. (v0.((i * n) + j) *. lap)
          done
        done
      in
      for _ = 1 to steps / 2 do
        step b a;
        step a b
      done;
      check_array ~tol:1e-2 prev a && check_array ~tol:1e-2 cur b
    in
    ([ harg prev; harg cur; harg vel; iarg n; iarg (steps / 2) ], validate)
  in
  mk ~name:"iso2dfd" ~paper:1000 ~n ~acpp:true w_module w_data

(* ------------------------------------------------------------------ *)
(* Jacobi iteration (flat 1-D matrix indexing; the L1-norm preparation  *)
(* runs on the host, matching the paper's adaptation)                  *)
(* ------------------------------------------------------------------ *)

let jacobi ~n ~iters =
  let w_module () =
    let m = fresh_module () in
    ignore
      (K.define m ~name:"jacobi" ~dims:1
         ~args:
           [ K.Acc (1, S.Read, f32) (* A, flattened n*n *)
           ; K.Acc (1, S.Read, f32) (* b *)
           ; K.Acc (1, S.Read, f32) (* x_old *)
           ; K.Acc (1, S.Write, f32) (* x_new *)
           ]
         (fun b ~item ~args ->
           match args with
           | [ a; rhs; x_old; x_new ] ->
             let i = K.gid b item 0 in
             let n = K.grange b item 0 in
             let base = K.muli b i n in
             let zero = K.fconst b 0.0 in
             let sum =
               Dialects.Scf.for_ b ~lb:(K.idx b 0) ~ub:n ~step:(K.idx b 1)
                 ~iter_args:[ zero ]
                 (fun b2 j acc ->
                   match acc with
                   | [ acc ] ->
                     let same = A.cmpi b2 A.Eq j i in
                     let aij = K.acc_get b2 a [ K.addi b2 base j ] in
                     let xj = K.acc_get b2 x_old [ j ] in
                     let contrib = A.select b2 same zero (K.mulf b2 aij xj) in
                     [ K.addf b2 acc contrib ]
                   | _ -> assert false)
             in
             let diag = K.acc_get b a [ K.addi b base i ] in
             let num = K.subf b (K.acc_get b rhs [ i ]) (Core.result sum 0) in
             K.acc_set b x_new [ i ] (K.divf b num diag)
           | _ -> assert false));
    ignore
      (K.define m ~name:"jacobi_copy" ~dims:1
         ~args:[ K.Acc (1, S.Read, f32); K.Acc (1, S.Write, f32) ]
         (fun b ~item ~args ->
           match args with
           | [ src; dst ] ->
             let i = K.gid b item 0 in
             K.acc_set b dst [ i ] (K.acc_get b src [ i ])
           | _ -> assert false));
    emit_host m
      ~args:[ mem; mem; mem; mem; Types.Index; Types.Index; Types.Index ]
      ~buffers:
        [ vec_buf ~size_arg:5 0; vec_buf ~size_arg:4 1; vec_buf ~size_arg:4 2;
          vec_buf ~size_arg:4 3 ]
      ~body:
        [
          Host.Repeat
            ( Host.Arg 6,
              [
                Host.Submit
                  { Host.cg_kernel = "jacobi"; cg_global = [ Host.Arg 4 ];
                    cg_local = None;
                    cg_captures = [ cap_r 0; cap_r 1; cap_r 2; cap_w 3 ] };
                Host.Submit
                  { Host.cg_kernel = "jacobi_copy"; cg_global = [ Host.Arg 4 ];
                    cg_local = None; cg_captures = [ cap_r 3; cap_w 2 ] };
              ] );
        ];
    m
  in
  let w_data () =
    let st = rng 83 in
    (* Diagonally dominant system so the iteration converges. *)
    let a =
      farray_init (n * n) (fun k ->
          let i = k / n and j = k mod n in
          if i = j then float_of_int n +. 1.0 else Random.State.float st 0.5)
    in
    let rhs = farray_random st n in
    let x_old = farray_zeros n and x_new = farray_zeros n in
    let validate () =
      let av = Array.init (n * n) (read_f a) and bv = Array.init n (read_f rhs) in
      let xo = Array.make n 0.0 and xn = Array.make n 0.0 in
      for _ = 1 to iters do
        for i = 0 to n - 1 do
          let s = ref 0.0 in
          for j = 0 to n - 1 do
            if j <> i then s := !s +. (av.((i * n) + j) *. xo.(j))
          done;
          xn.(i) <- (bv.(i) -. !s) /. av.((i * n) + i)
        done;
        Array.blit xn 0 xo 0 n
      done;
      check_array ~tol:1e-2 x_old xo
    in
    ([ harg a; harg rhs; harg x_old; harg x_new; iarg n; iarg (n * n); iarg iters ],
     validate)
  in
  mk ~name:"jacobi" ~paper:1024 ~n ~acpp:false w_module w_data

let all ?(scale = 1) () =
  let s n = max 16 (n * scale) in
  [
    heat_buffer ~n:100 ~steps:(s 100);
    heat_usm ~n:100 ~steps:(s 100);
    iso2dfd ~n:(s 64) ~steps:8;
    jacobi ~n:(s 128) ~iters:4;
  ]
