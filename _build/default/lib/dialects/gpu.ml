(* The gpu dialect subset: work-group barriers and work-group local memory
   allocation, used by the loop-internalization optimization
   (Section VI-C of the paper). *)

open Mlir

let barrier b = Builder.op0 b "gpu.barrier" ~operands:[]

let is_barrier op = op.Core.name = "gpu.barrier"

let local_slot_counter = ref 0

(** Allocate work-group local memory. One allocation is shared by all
    work-items of a work-group (the simulator keys the allocation on the
    [slot] attribute). *)
let alloc_local b shape element =
  incr local_slot_counter;
  Builder.op1 b "gpu.alloc_local" ~operands:[]
    ~result_type:
      (Types.memref ~space:Types.Local (List.map (fun d -> Some d) shape) element)
    ~attrs:[ ("slot", Attr.Int !local_slot_counter) ]

let is_alloc_local op = op.Core.name = "gpu.alloc_local"

let init_done = ref false

let init () =
  if not !init_done then begin
    init_done := true;
    (* The barrier synchronizes memory: treat as read+write anywhere so no
       memory operation is moved across it. *)
    Op_registry.register "gpu.barrier"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ ->
            Some
              [
                (Op_registry.Read, Op_registry.Anywhere);
                (Op_registry.Write, Op_registry.Anywhere);
              ]);
      };
    Op_registry.register "gpu.alloc_local"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ -> Some [ (Op_registry.Alloc, Op_registry.On_result 0) ]);
      }
  end
