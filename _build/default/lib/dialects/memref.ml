(* The memref dialect subset used by the compiler: stack/private
   allocation, loads and stores with explicit indices, and dimension
   queries. Memory effects are registered so generic analyses (reaching
   definitions, LICM) can reason about them. *)

open Mlir

let alloca b ?(space = Types.Private) shape element =
  Builder.op1 b "memref.alloca" ~operands:[]
    ~result_type:(Types.memref ~space (List.map (fun d -> Some d) shape) element)

let alloc b ?(space = Types.Global) shape element =
  Builder.op1 b "memref.alloc" ~operands:[]
    ~result_type:(Types.memref ~space (List.map (fun d -> Some d) shape) element)

let element_type (v : Core.value) =
  match v.Core.vty with
  | Types.Memref { element; _ } -> element
  | t -> invalid_arg ("memref element_type: not a memref: " ^ Types.to_string t)

let memspace (v : Core.value) =
  match v.Core.vty with
  | Types.Memref { space; _ } -> space
  | _ -> invalid_arg "memref memspace: not a memref"

let load b mem indices =
  Builder.op1 b "memref.load" ~operands:(mem :: indices)
    ~result_type:(element_type mem)

let store b value mem indices =
  Builder.op0 b "memref.store" ~operands:(value :: mem :: indices)

let dim b mem i =
  let idx = Arith.const_index b i in
  Builder.op1 b "memref.dim" ~operands:[ mem; idx ] ~result_type:Types.Index

let dealloc b mem = Builder.op0 b "memref.dealloc" ~operands:[ mem ]

let is_load op = op.Core.name = "memref.load"
let is_store op = op.Core.name = "memref.store"

(** For a load: (memref, indices). *)
let load_parts op =
  assert (is_load op);
  (Core.operand op 0, List.tl (Core.operands op))

(** For a store: (stored value, memref, indices). *)
let store_parts op =
  assert (is_store op);
  match Core.operands op with
  | v :: m :: idx -> (v, m, idx)
  | _ -> invalid_arg "store_parts"

let init_done = ref false

let init () =
  if not !init_done then begin
    init_done := true;
    Op_registry.register "memref.alloca"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ -> Some [ (Op_registry.Alloc, Op_registry.On_result 0) ]);
      };
    Op_registry.register "memref.alloc"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ -> Some [ (Op_registry.Alloc, Op_registry.On_result 0) ]);
      };
    Op_registry.register "memref.load"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ -> Some [ (Op_registry.Read, Op_registry.On_operand 0) ]);
      };
    Op_registry.register "memref.store"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ -> Some [ (Op_registry.Write, Op_registry.On_operand 1) ]);
      };
    Op_registry.register "memref.dealloc"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ -> Some [ (Op_registry.Free, Op_registry.On_operand 0) ]);
      };
    Op_registry.register "memref.dim"
      {
        Op_registry.pure_info with
        Op_registry.fold =
          (fun op consts ->
            match consts with
            | [| _; Some (Attr.Int i) |] -> (
              match (Core.operand op 0).Core.vty with
              | Types.Memref { shape; _ } -> (
                match List.nth_opt shape i with
                | Some (Some d) -> Some (Op_registry.Fold_attrs [ Attr.Int d ])
                | _ -> None)
              | _ -> None)
            | _ -> None);
      }
  end
