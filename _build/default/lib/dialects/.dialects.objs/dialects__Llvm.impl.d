lib/dialects/llvm.ml: Array Attr Builder Core List Mlir Op_registry Option Types
