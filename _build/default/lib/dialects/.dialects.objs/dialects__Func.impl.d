lib/dialects/func.ml: Attr Builder Core List Mlir Op_registry Types Verifier
