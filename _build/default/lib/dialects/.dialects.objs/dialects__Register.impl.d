lib/dialects/register.ml: Affine_ops Arith Func Gpu Llvm Memref Scf
