lib/dialects/arith.ml: Array Attr Builder Core Float Mlir Op_registry Option Rewrite Types
