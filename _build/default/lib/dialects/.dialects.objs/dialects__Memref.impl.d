lib/dialects/memref.ml: Arith Attr Builder Core List Mlir Op_registry Types
