lib/dialects/affine_ops.ml: Affine_expr Array Attr Builder Core List Memref Mlir Op_registry Option Types Verifier
