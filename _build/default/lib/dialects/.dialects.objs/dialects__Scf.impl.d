lib/dialects/scf.ml: Array Builder Core List Mlir Op_registry Types Verifier
