lib/dialects/gpu.ml: Attr Builder Core List Mlir Op_registry Types
