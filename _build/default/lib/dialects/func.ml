(* The func dialect: functions, returns and direct calls. *)

open Mlir

(** Create a func.func appended to module [m]. [body] receives a builder
    positioned in the entry block and the entry block arguments. The
    caller is responsible for terminating the body (or use [return]). *)
let func m name ~args ~results body =
  let region = Core.region_with_block ~args () in
  let entry = Core.entry_block region in
  let b = Builder.at_end (Core.module_block m) in
  let f =
    Builder.op b "func.func" ~operands:[] ~result_types:[]
      ~attrs:
        [
          ("sym_name", Attr.String name);
          ("function_type", Attr.Type (Types.Function (args, results)));
        ]
      ~regions:[ region ]
  in
  let bb = Builder.at_end entry in
  body bb (Core.block_args entry);
  f

(** Declaration-only function (empty body), e.g. an external runtime
    symbol on the host side. *)
let declare m name ~args ~results =
  let b = Builder.at_end (Core.module_block m) in
  Builder.op b "func.func" ~operands:[] ~result_types:[]
    ~attrs:
      [
        ("sym_name", Attr.String name);
        ("function_type", Attr.Type (Types.Function (args, results)));
        ("declaration", Attr.Unit);
      ]
    ~regions:[ Core.region_with_block () ]

let is_declaration f = Core.has_attr f "declaration"

let return b vs = Builder.op0 b "func.return" ~operands:vs

let call b callee ~operands ~results =
  Builder.op b "func.call" ~operands ~result_types:results
    ~attrs:[ ("callee", Attr.Symbol callee) ]

let call1 b callee ~operands ~result =
  Core.result (call b callee ~operands ~results:[ result ]) 0

let callee op = Core.attr_symbol op "callee"
let is_call op = op.Core.name = "func.call"

let init_done = ref false

let init () =
  if not !init_done then begin
    init_done := true;
    Op_registry.register "func.func"
      {
        Op_registry.default_info with
        Op_registry.control = Op_registry.Seq;
        Op_registry.memory_effects = (fun _ -> Some []);
        Op_registry.verify =
          (fun op ->
            let ( let* ) = Verifier.( let* ) in
            let* () = Verifier.check_num_regions op 1 in
            match (Core.attr_string op "sym_name", Core.attr_type op "function_type") with
            | Some _, Some (Types.Function (args, _)) ->
              if is_declaration op then Ok ()
              else
                let entry = Core.func_body op in
                let arg_tys = List.map (fun v -> v.Core.vty) (Core.block_args entry) in
                if arg_tys = args then Ok ()
                else Error "entry block arguments do not match function type"
            | _ -> Error "func.func requires sym_name and function_type");
      };
    Op_registry.register "func.return"
      {
        Op_registry.default_info with
        Op_registry.terminator = true;
        Op_registry.memory_effects = (fun _ -> Some []);
      };
    (* Calls have unknown effects by default; analyses use the call graph
       to refine. *)
    Op_registry.register "func.call" Op_registry.default_info;
    Op_registry.register "builtin.module"
      {
        Op_registry.default_info with
        Op_registry.control = Op_registry.Seq;
        Op_registry.memory_effects = (fun _ -> Some []);
      }
  end
