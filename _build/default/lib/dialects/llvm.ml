(* A small LLVM-flavoured dialect standing in for the MLIR code obtained
   from SYCL host modules via mlir-translate (Section IV of the paper):
   one-to-one with the low-level host IR, i.e. calls into the DPC++
   runtime ABI, stack slots, and module-level constant globals.

   For simplicity the dialect reuses memref types for pointers: an
   [llvm.alloca] yields a rank-1 private memref, and runtime objects
   (buffers, handlers, accessors) are opaque i64 handles. *)

open Mlir

(** The opaque handle type used for runtime objects on the host. *)
let handle = Types.i64

let alloca b ?(size = 1) element =
  Builder.op1 b "llvm.alloca" ~operands:[]
    ~result_type:(Types.memref ~space:Types.Private [ Some size ] element)

let call b callee ~operands ~results =
  Builder.op b "llvm.call" ~operands ~result_types:results
    ~attrs:[ ("callee", Attr.Symbol callee) ]

let call1 b callee ~operands ~result =
  Core.result (call b callee ~operands ~results:[ result ]) 0

let call0 b callee ~operands = ignore (call b callee ~operands ~results:[])

let callee op = Core.attr_symbol op "callee"
let is_call op = op.Core.name = "llvm.call"

let is_call_to name op = is_call op && callee op = Some name

let return b vs = Builder.op0 b "llvm.return" ~operands:vs

(** Module-level constant global carrying dense data (e.g. the Sobel
    filter coefficient array of Section VIII). *)
let global m name data =
  let b = Builder.at_end (Core.module_block m) in
  let size = match data with
    | Attr.Dense_float xs -> Array.length xs
    | Attr.Dense_int xs -> Array.length xs
    | _ -> invalid_arg "llvm.global: expected dense data"
  in
  let element =
    match data with Attr.Dense_float _ -> Types.f32 | _ -> Types.i64
  in
  ignore size;
  ignore element;
  Builder.op b "llvm.global" ~operands:[] ~result_types:[]
    ~attrs:
      [
        ("sym_name", Attr.String name);
        ("value", data);
        ("constant", Attr.Bool true);
      ]

let addressof b m name =
  (* Type from the global's data. *)
  let g =
    List.find_opt
      (fun o ->
        o.Core.name = "llvm.global" && Core.attr_string o "sym_name" = Some name)
      (Core.module_block m).Core.body
  in
  let ty =
    match Option.bind g (fun g -> Core.attr g "value") with
    | Some (Attr.Dense_float xs) -> Types.memref [ Some (Array.length xs) ] Types.f32
    | Some (Attr.Dense_int xs) -> Types.memref [ Some (Array.length xs) ] Types.i64
    | _ -> Types.memref_dyn Types.f32
  in
  Builder.op1 b "llvm.addressof" ~operands:[] ~result_type:ty
    ~attrs:[ ("global_name", Attr.Symbol name) ]

let lookup_global m name =
  List.find_opt
    (fun o ->
      o.Core.name = "llvm.global" && Core.attr_string o "sym_name" = Some name)
    (Core.module_block m).Core.body

let init_done = ref false

let init () =
  if not !init_done then begin
    init_done := true;
    Op_registry.register "llvm.call" Op_registry.default_info;
    Op_registry.register "llvm.alloca"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ -> Some [ (Op_registry.Alloc, Op_registry.On_result 0) ]);
      };
    Op_registry.register "llvm.return"
      {
        Op_registry.default_info with
        Op_registry.terminator = true;
        Op_registry.memory_effects = (fun _ -> Some []);
      };
    Op_registry.register "llvm.global"
      { Op_registry.default_info with Op_registry.memory_effects = (fun _ -> Some []) };
    Op_registry.register "llvm.addressof"
      { Op_registry.pure_info with Op_registry.speculatable = true }
  end
