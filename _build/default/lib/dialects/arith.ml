(* The arith dialect: integer/float arithmetic, comparisons and constants,
   mirroring MLIR's upstream arith dialect. All ops are pure and foldable. *)

open Mlir

type icmp_pred = Eq | Ne | Slt | Sle | Sgt | Sge

type fcmp_pred = Oeq | One | Olt | Ole | Ogt | Oge

let icmp_pred_to_string = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt" | Sge -> "sge"

let icmp_pred_of_string = function
  | "eq" -> Some Eq | "ne" -> Some Ne | "slt" -> Some Slt
  | "sle" -> Some Sle | "sgt" -> Some Sgt | "sge" -> Some Sge | _ -> None

let fcmp_pred_to_string = function
  | Oeq -> "oeq" | One -> "one" | Olt -> "olt" | Ole -> "ole" | Ogt -> "ogt" | Oge -> "oge"

let fcmp_pred_of_string = function
  | "oeq" -> Some Oeq | "one" -> Some One | "olt" -> Some Olt
  | "ole" -> Some Ole | "ogt" -> Some Ogt | "oge" -> Some Oge | _ -> None

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

let constant b attr ty =
  Builder.op1 b "arith.constant" ~operands:[] ~result_type:ty
    ~attrs:[ ("value", attr) ]

let const_int b ?(ty = Types.i64) i = constant b (Attr.Int i) ty
let const_index b i = constant b (Attr.Int i) Types.Index
let const_float b ?(ty = Types.f32) f = constant b (Attr.Float f) ty
let const_bool b v = constant b (Attr.Bool v) Types.i1

let binop name b x y =
  Builder.op1 b name ~operands:[ x; y ] ~result_type:x.Core.vty

let addi b x y = binop "arith.addi" b x y
let subi b x y = binop "arith.subi" b x y
let muli b x y = binop "arith.muli" b x y
let divsi b x y = binop "arith.divsi" b x y
let remsi b x y = binop "arith.remsi" b x y
let andi b x y = binop "arith.andi" b x y
let ori b x y = binop "arith.ori" b x y
let xori b x y = binop "arith.xori" b x y
let minsi b x y = binop "arith.minsi" b x y
let maxsi b x y = binop "arith.maxsi" b x y
let addf b x y = binop "arith.addf" b x y
let subf b x y = binop "arith.subf" b x y
let mulf b x y = binop "arith.mulf" b x y
let divf b x y = binop "arith.divf" b x y
let minf b x y = binop "arith.minimumf" b x y
let maxf b x y = binop "arith.maximumf" b x y

let negf b x =
  Builder.op1 b "arith.negf" ~operands:[ x ] ~result_type:x.Core.vty

let cmpi b pred x y =
  Builder.op1 b "arith.cmpi" ~operands:[ x; y ] ~result_type:Types.i1
    ~attrs:[ ("predicate", Attr.String (icmp_pred_to_string pred)) ]

let cmpf b pred x y =
  Builder.op1 b "arith.cmpf" ~operands:[ x; y ] ~result_type:Types.i1
    ~attrs:[ ("predicate", Attr.String (fcmp_pred_to_string pred)) ]

let select b c x y =
  Builder.op1 b "arith.select" ~operands:[ c; x; y ] ~result_type:x.Core.vty

let index_cast b x ty =
  Builder.op1 b "arith.index_cast" ~operands:[ x ] ~result_type:ty

let sitofp b x ty = Builder.op1 b "arith.sitofp" ~operands:[ x ] ~result_type:ty
let fptosi b x ty = Builder.op1 b "arith.fptosi" ~operands:[ x ] ~result_type:ty

let math_unary name b x =
  Builder.op1 b name ~operands:[ x ] ~result_type:x.Core.vty

(* math.* unary float functions live here for convenience. *)
let sqrt b x = math_unary "math.sqrt" b x
let exp b x = math_unary "math.exp" b x
let absf b x = math_unary "math.absf" b x

(* ------------------------------------------------------------------ *)
(* Matchers                                                            *)
(* ------------------------------------------------------------------ *)

let is_constant (op : Core.op) = op.Core.name = "arith.constant"

let constant_attr (op : Core.op) =
  if is_constant op then Core.attr op "value" else None

(** Integer value of a constant op (covers bools and indices). *)
let constant_int (op : Core.op) = Option.bind (constant_attr op) Attr.as_int

let icmp_predicate (op : Core.op) =
  Option.bind (Core.attr_string op "predicate") icmp_pred_of_string

(* ------------------------------------------------------------------ *)
(* Folding                                                             *)
(* ------------------------------------------------------------------ *)

let int2 f = fun a b ->
  match (a, b) with
  | Attr.Int x, Attr.Int y -> Some (Attr.Int (f x y))
  | _ -> None

let float2 f = fun a b ->
  match (a, b) with
  | Attr.Float x, Attr.Float y -> Some (Attr.Float (f x y))
  | _ -> None

let eval_icmp pred x y =
  match pred with
  | Eq -> x = y | Ne -> x <> y | Slt -> x < y
  | Sle -> x <= y | Sgt -> x > y | Sge -> x >= y

let eval_fcmp pred (x : float) y =
  match pred with
  | Oeq -> x = y | One -> x <> y | Olt -> x < y
  | Ole -> x <= y | Ogt -> x > y | Oge -> x >= y

let binary_fold eval : Core.op -> Attr.t option array -> Op_registry.fold_result option =
 fun _op consts ->
  match consts with
  | [| Some a; Some b |] ->
    Option.map (fun r -> Op_registry.Fold_attrs [ r ]) (eval a b)
  | _ -> None

(* Identity simplifications that only need one constant operand. *)
let addi_fold op consts =
  match consts with
  | [| Some (Attr.Int x); Some (Attr.Int y) |] ->
    Some (Op_registry.Fold_attrs [ Attr.Int (x + y) ])
  | [| Some (Attr.Int 0); None |] ->
    Some (Op_registry.Fold_values [ Core.operand op 1 ])
  | [| None; Some (Attr.Int 0) |] ->
    Some (Op_registry.Fold_values [ Core.operand op 0 ])
  | _ -> None

let muli_fold op consts =
  match consts with
  | [| Some (Attr.Int x); Some (Attr.Int y) |] ->
    Some (Op_registry.Fold_attrs [ Attr.Int (x * y) ])
  | [| Some (Attr.Int 1); None |] ->
    Some (Op_registry.Fold_values [ Core.operand op 1 ])
  | [| None; Some (Attr.Int 1) |] ->
    Some (Op_registry.Fold_values [ Core.operand op 0 ])
  | [| Some (Attr.Int 0); None |] | [| None; Some (Attr.Int 0) |] ->
    Some (Op_registry.Fold_attrs [ Attr.Int 0 ])
  | _ -> None

let cmp_fold op consts =
  match consts with
  | [| Some (Attr.Int x); Some (Attr.Int y) |] ->
    Option.map
      (fun p -> Op_registry.Fold_attrs [ Attr.Bool (eval_icmp p x y) ])
      (icmp_predicate op)
  | _ -> None

let cmpf_fold op consts =
  match consts with
  | [| Some (Attr.Float x); Some (Attr.Float y) |] ->
    Option.map
      (fun p -> Op_registry.Fold_attrs [ Attr.Bool (eval_fcmp p x y) ])
      (Option.bind (Core.attr_string op "predicate") fcmp_pred_of_string)
  | _ -> None

let pure_with_fold fold =
  { Op_registry.pure_info with Op_registry.fold }

let register_binop name eval =
  Op_registry.register name (pure_with_fold (binary_fold eval))

let init_done = ref false

let init () =
  if not !init_done then begin
    init_done := true;
    (* Constant: folds to its own attribute (marks it constant-like). *)
    Op_registry.register "arith.constant"
      (pure_with_fold (fun op _ ->
           Option.map (fun a -> Op_registry.Fold_attrs [ a ]) (Core.attr op "value")));
    Op_registry.register "arith.addi" (pure_with_fold addi_fold);
    Op_registry.register "arith.muli" (pure_with_fold muli_fold);
    register_binop "arith.subi" (int2 ( - ));
    register_binop "arith.divsi" (int2 (fun a b -> if b = 0 then 0 else a / b));
    register_binop "arith.remsi" (int2 (fun a b -> if b = 0 then 0 else a mod b));
    register_binop "arith.andi" (int2 ( land ));
    register_binop "arith.ori" (int2 ( lor ));
    register_binop "arith.xori" (int2 ( lxor ));
    register_binop "arith.minsi" (int2 min);
    register_binop "arith.maxsi" (int2 max);
    register_binop "arith.addf" (float2 ( +. ));
    register_binop "arith.subf" (float2 ( -. ));
    register_binop "arith.mulf" (float2 ( *. ));
    register_binop "arith.divf" (float2 ( /. ));
    register_binop "arith.minimumf" (float2 Float.min);
    register_binop "arith.maximumf" (float2 Float.max);
    Op_registry.register "arith.negf"
      (pure_with_fold (fun _ consts ->
           match consts with
           | [| Some (Attr.Float x) |] ->
             Some (Op_registry.Fold_attrs [ Attr.Float (-.x) ])
           | _ -> None));
    Op_registry.register "arith.cmpi" (pure_with_fold cmp_fold);
    Op_registry.register "arith.cmpf" (pure_with_fold cmpf_fold);
    Op_registry.register "arith.select"
      (pure_with_fold (fun op consts ->
           match consts.(0) with
           | Some (Attr.Bool true) | Some (Attr.Int 1) ->
             Some (Op_registry.Fold_values [ Core.operand op 1 ])
           | Some (Attr.Bool false) | Some (Attr.Int 0) ->
             Some (Op_registry.Fold_values [ Core.operand op 2 ])
           | _ -> None));
    Op_registry.register "arith.index_cast"
      (pure_with_fold (fun _ consts ->
           match consts with
           | [| Some (Attr.Int x) |] -> Some (Op_registry.Fold_attrs [ Attr.Int x ])
           | _ -> None));
    Op_registry.register "arith.sitofp"
      (pure_with_fold (fun _ consts ->
           match consts with
           | [| Some (Attr.Int x) |] ->
             Some (Op_registry.Fold_attrs [ Attr.Float (float_of_int x) ])
           | _ -> None));
    Op_registry.register "arith.fptosi"
      (pure_with_fold (fun _ consts ->
           match consts with
           | [| Some (Attr.Float x) |] ->
             Some (Op_registry.Fold_attrs [ Attr.Int (int_of_float x) ])
           | _ -> None));
    Op_registry.register "math.sqrt"
      (pure_with_fold (fun _ consts ->
           match consts with
           | [| Some (Attr.Float x) |] ->
             Some (Op_registry.Fold_attrs [ Attr.Float (Float.sqrt x) ])
           | _ -> None));
    Op_registry.register "math.exp"
      (pure_with_fold (fun _ consts ->
           match consts with
           | [| Some (Attr.Float x) |] ->
             Some (Op_registry.Fold_attrs [ Attr.Float (Float.exp x) ])
           | _ -> None));
    Op_registry.register "math.absf"
      (pure_with_fold (fun _ consts ->
           match consts with
           | [| Some (Attr.Float x) |] ->
             Some (Op_registry.Fold_attrs [ Attr.Float (Float.abs x) ])
           | _ -> None));
    (* arith.constant materializes folded constants everywhere. *)
    Rewrite.set_constant_materializer (fun b attr ty -> constant b attr ty)
  end
