lib/sim/interp.ml: Affine_expr Array Attr Bool Core Cost Dialects Effect Float Hashtbl List Memory Mlir Option Printf Sycl_core Types
