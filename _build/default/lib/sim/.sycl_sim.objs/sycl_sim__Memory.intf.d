lib/sim/memory.mli: Mlir Types
