lib/sim/cost.ml: Format
