lib/sim/memory.ml: Array List Mlir Printf Types
