lib/sim/interp.mli: Core Cost Effect Memory Mlir
