lib/runtime/host_interp.ml: Array Attr Bool Core Dialects Hashtbl List Mlir Objects Option Sycl_core Sycl_sim Types
