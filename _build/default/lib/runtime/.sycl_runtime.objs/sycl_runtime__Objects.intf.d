lib/runtime/objects.mli: Sycl_core Sycl_sim
