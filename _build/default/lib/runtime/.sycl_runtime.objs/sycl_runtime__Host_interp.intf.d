lib/runtime/host_interp.mli: Core Mlir Objects Sycl_sim
