lib/runtime/objects.ml: Array List Mlir Option Sycl_core Sycl_sim
