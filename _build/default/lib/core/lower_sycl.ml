(* Progressive lowering of the SYCL dialect (the paper's Section IV:
   "lowered only after optimizations benefiting from access to the SYCL
   semantics have concluded").

   Accessor kernel arguments are flattened into DPC++'s actual ABI — the
   "four kernel arguments" of Section VII-B: the data pointer plus the
   access range, underlying memory range and offset (one index scalar per
   dimension each). Accessor subscripts become explicit row-major address
   arithmetic over the flattened pointer; accessor member getters become
   direct uses of the corresponding scalar argument.

   The item-like argument and the work-item query ops remain: they lower
   to platform built-ins only at target code generation, which is outside
   this reproduction's scope.

   The pass is a whole-function ABI change, so the runtime must expand
   captures accordingly; the lowered kernel carries the
   ["sycl.abi_expansion"] attribute describing, per original capture, how
   many arguments it now occupies. Opt-in (not part of the evaluated
   pipelines), like kernel fusion. *)

open Mlir

let abi_attr = "sycl.abi_expansion"

(** Per-capture expansion recorded for the runtime: 0 = passthrough
    scalar/pointer, d > 0 = accessor of dimensionality d flattened into
    1 + 3d arguments (data, range, mem_range, offset). *)
let expansion_of_kernel (kernel : Core.op) : int list option =
  match Core.attr kernel abi_attr with
  | Some (Attr.Array xs) -> Some (List.filter_map Attr.as_int xs)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Applicability                                                       *)
(* ------------------------------------------------------------------ *)

let supported_use (op : Core.op) =
  (Sycl_ops.is_subscript op && Sycl_ops.subscript_is_direct op)
  || List.mem op.Core.name Sycl_ops.accessor_member_getters

(* Subscript views must feed exactly loads/stores at constant index 0. *)
let subscript_uses_ok (op : Core.op) =
  List.for_all
    (fun (user, idx) ->
      let index_ok indices =
        match indices with
        | [ i ] -> Rewrite.constant_of_value i = Some (Attr.Int 0)
        | _ -> false
      in
      if Dialects.Memref.is_load user && idx = 0 then
        let _, indices = Dialects.Memref.load_parts user in
        index_ok indices
      else if Dialects.Memref.is_store user && idx = 1 then
        let _, _, indices = Dialects.Memref.store_parts user in
        index_ok indices
      else false)
    (Core.uses (Core.result op 0))

let can_lower (kernel : Core.op) =
  let ok = ref true in
  List.iter
    (fun arg ->
      if Sycl_types.is_accessor arg.Core.vty then
        List.iter
          (fun (user, _) -> if not (supported_use user) then ok := false)
          (Core.uses arg))
    (Core.block_args (Core.func_body kernel));
  Core.walk kernel ~f:(fun op ->
      if Sycl_ops.is_subscript op && not (subscript_uses_ok op) then ok := false);
  !ok

(* ------------------------------------------------------------------ *)
(* Rewriting                                                           *)
(* ------------------------------------------------------------------ *)

type flat_arg = {
  fa_data : Core.value;
  fa_range : Core.value array;
  fa_mem_range : Core.value array;
  fa_offset : Core.value array;
}

type rewriter = {
  (* old value id -> new value *)
  vmap : (int, Core.value) Hashtbl.t;
  (* old accessor value id -> flattened descriptor *)
  flat : (int, flat_arg) Hashtbl.t;
  (* old subscript result id -> (data, linear index) *)
  addresses : (int, Core.value * Core.value) Hashtbl.t;
}

let mapped rw v =
  match Hashtbl.find_opt rw.vmap v.Core.vid with Some v' -> v' | None -> v

(* Row-major linear address of [idxs] (+ offsets) against mem_range. *)
let linear_address bld (fa : flat_arg) (idxs : Core.value list) =
  let d = List.length idxs in
  let strides = Array.make d None in
  for k = d - 2 downto 0 do
    strides.(k) <-
      Some
        (match strides.(k + 1) with
        | None -> fa.fa_mem_range.(k + 1)
        | Some s -> Dialects.Arith.muli bld s fa.fa_mem_range.(k + 1))
  done;
  List.mapi (fun k idx -> (k, idx)) idxs
  |> List.fold_left
       (fun acc (k, idx) ->
         let shifted = Dialects.Arith.addi bld idx fa.fa_offset.(k) in
         let term =
           match strides.(k) with
           | None -> shifted
           | Some s -> Dialects.Arith.muli bld shifted s
         in
         match acc with
         | None -> Some term
         | Some a -> Some (Dialects.Arith.addi bld a term))
       None
  |> Option.get

let rec rewrite_ops rw (bld : Builder.t) (ops : Core.op list) =
  List.iter
    (fun (op : Core.op) ->
      let acc_of i = Hashtbl.find_opt rw.flat (Core.operand op i).Core.vid in
      if op.Core.name = "func.return" then ()
      else if Sycl_ops.is_subscript op && acc_of 0 <> None then begin
        let fa = Option.get (acc_of 0) in
        let idxs = List.map (mapped rw) (Sycl_ops.subscript_indices op) in
        let lin = linear_address bld fa idxs in
        Hashtbl.replace rw.addresses (Core.result op 0).Core.vid (fa.fa_data, lin)
      end
      else if
        Dialects.Memref.is_load op
        && Hashtbl.mem rw.addresses (Core.operand op 0).Core.vid
      then begin
        let data, lin = Hashtbl.find rw.addresses (Core.operand op 0).Core.vid in
        let v = Dialects.Memref.load bld data [ lin ] in
        Hashtbl.replace rw.vmap (Core.result op 0).Core.vid v
      end
      else if
        Dialects.Memref.is_store op
        && Hashtbl.mem rw.addresses (Core.operand op 1).Core.vid
      then begin
        let data, lin = Hashtbl.find rw.addresses (Core.operand op 1).Core.vid in
        Dialects.Memref.store bld (mapped rw (Core.operand op 0)) data [ lin ]
      end
      else if
        List.mem op.Core.name Sycl_ops.accessor_member_getters && acc_of 0 <> None
      then begin
        let fa = Option.get (acc_of 0) in
        match Sycl_ops.getter_dim op with
        | Some dim ->
          let v =
            match op.Core.name with
            | "sycl.accessor.get_range" -> fa.fa_range.(dim)
            | "sycl.accessor.get_mem_range" -> fa.fa_mem_range.(dim)
            | _ -> fa.fa_offset.(dim)
          in
          Hashtbl.replace rw.vmap (Core.result op 0).Core.vid v
        | None -> invalid_arg "lower-sycl: non-constant getter dimension"
      end
      else begin
        (* Generic op: rebuild with rewritten operands and recursively
           rewritten regions. *)
        let regions =
          Array.to_list op.Core.regions
          |> List.map (fun (r : Core.region) ->
                 let blocks =
                   List.map
                     (fun (blk : Core.block) ->
                       let nb =
                         Core.create_block
                           ~args:(List.map (fun a -> a.Core.vty) (Core.block_args blk))
                           ()
                       in
                       Array.iteri
                         (fun i a ->
                           Hashtbl.replace rw.vmap a.Core.vid nb.Core.bargs.(i))
                         blk.Core.bargs;
                       (blk, nb))
                     r.Core.blocks
                 in
                 List.iter
                   (fun ((blk : Core.block), nb) ->
                     rewrite_ops rw (Builder.at_end nb) blk.Core.body)
                   blocks;
                 Core.create_region ~blocks:(List.map snd blocks) ())
        in
        let cloned =
          Core.create_op op.Core.name
            ~operands:(List.map (mapped rw) (Core.operands op))
            ~result_types:(List.map (fun r -> r.Core.vty) (Core.results op))
            ~attrs:op.Core.attrs ~regions
        in
        ignore (Builder.insert bld cloned);
        Array.iteri
          (fun i r ->
            Hashtbl.replace rw.vmap r.Core.vid cloned.Core.results.(i))
          op.Core.results
      end)
    ops

(* ------------------------------------------------------------------ *)
(* Kernel ABI flattening                                               *)
(* ------------------------------------------------------------------ *)

let lower_kernel (m : Core.op) (kernel : Core.op) stats =
  let old_body = Core.func_body kernel in
  let old_args = Core.block_args old_body in
  let expansion =
    List.tl old_args
    |> List.map (fun arg ->
           match Sycl_types.accessor_info arg.Core.vty with
           | Some info -> info.Sycl_types.acc_dims
           | None -> 0)
  in
  let new_arg_tys =
    (List.hd old_args).Core.vty
    :: List.concat_map
         (fun arg ->
           match Sycl_types.accessor_info arg.Core.vty with
           | Some info ->
             let d = info.Sycl_types.acc_dims in
             Types.memref_dyn info.Sycl_types.acc_element
             :: List.init (3 * d) (fun _ -> Types.Index)
           | None -> [ arg.Core.vty ])
         (List.tl old_args)
  in
  let name = Core.func_sym kernel in
  (* Free the symbol for the lowered function. *)
  Core.set_attr kernel "sym_name" (Attr.String (name ^ "__presycl"));
  let lowered =
    Dialects.Func.func m name ~args:new_arg_tys ~results:[] (fun b vals ->
        let rw =
          { vmap = Hashtbl.create 64; flat = Hashtbl.create 8;
            addresses = Hashtbl.create 16 }
        in
        Hashtbl.replace rw.vmap (List.hd old_args).Core.vid (List.hd vals);
        let rest = ref (List.tl vals) in
        let take () =
          match !rest with
          | v :: tl ->
            rest := tl;
            v
          | [] -> invalid_arg "lower-sycl: argument underflow"
        in
        List.iter
          (fun arg ->
            match Sycl_types.accessor_info arg.Core.vty with
            | Some info ->
              let d = info.Sycl_types.acc_dims in
              let fa_data = take () in
              let fa_range = Array.init d (fun _ -> take ()) in
              let fa_mem_range = Array.init d (fun _ -> take ()) in
              let fa_offset = Array.init d (fun _ -> take ()) in
              Hashtbl.replace rw.flat arg.Core.vid
                { fa_data; fa_range; fa_mem_range; fa_offset }
            | None -> Hashtbl.replace rw.vmap arg.Core.vid (take ()))
          (List.tl old_args);
        rewrite_ops rw b old_body.Core.body;
        Dialects.Func.return b [])
  in
  Core.set_attr lowered "sycl.kernel" Attr.Unit;
  Core.set_attr lowered abi_attr
    (Attr.Array (List.map (fun d -> Attr.Int d) expansion));
  (* The pre-lowering function is dropped. *)
  Core.walk kernel ~f:(fun o -> if not (o == kernel) then Core.erase_op_unsafe o);
  Core.erase_op kernel;
  Pass.Stats.bump stats "lower-sycl.kernels"

let run (m : Core.op) stats =
  List.iter
    (fun f ->
      if Uniformity.is_kernel f && expansion_of_kernel f = None then
        if can_lower f then lower_kernel m f stats
        else Pass.Stats.bump stats "lower-sycl.skipped")
    (Core.funcs m)

let pass = Pass.make "lower-sycl" run
