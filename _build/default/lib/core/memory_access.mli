(** Memory-access analysis (paper Section V-D), after Kaeli et al. [14],
    extended for SYCL accesses.

    Each SYCL memory access in an (affine) loop is described by an access
    matrix [A] and offset vector [c] such that the accessed index vector
    is [A * (gid_0, ..., gid_{d-1}, iv_0, ...)ᵀ + c]. The inter-work-item
    submatrix (thread columns) classifies coalescing; the intra-work-item
    submatrix (loop-iv columns) detects temporal reuse. Loop
    internalization (Section VI-C) consumes this analysis. *)

open Mlir

(** A column of the access matrix. *)
type var =
  | Global_id of int  (** work-item global id dimension *)
  | Local_id of int
  | Loop_iv of int  (** op id of the enclosing loop *)

type access_kind = Load | Store

(** Coalescing classes, after [14]: [Linear]/[Reverse_linear] = unit
    stride in the fastest-varying thread dimension (coalescable);
    [Thread_invariant] = broadcast within a sub-group. *)
type coalescing =
  | Linear
  | Reverse_linear
  | Thread_invariant
  | Non_coalesced

val coalescing_to_string : coalescing -> string

type access = {
  acc_op : Core.op;  (** the memref.load / memref.store *)
  acc_subscript : Core.op option;  (** the sycl.accessor.subscript feeding it *)
  accessor : Core.value option;  (** the accessor kernel argument *)
  kind : access_kind;
  vars : var list;  (** column meanings *)
  matrix : int array array;  (** rows = accessor index dimensions *)
  offsets : int array;
  row_exprs : Affine_expr.t list;  (** per index dimension, over [vars] *)
  coalescing : coalescing;
  temporal_reuse : bool;  (** the intra-work-item matrix is non-zero *)
}

(** The first item-like argument of a kernel function. *)
val item_arg : Core.op -> Core.value option

(** ND-range dimensionality of a kernel, from its item argument type. *)
val kernel_dims : Core.op -> int

(** Analyze all SYCL memory accesses in the body of [loop] (an scf.for or
    affine.for) inside [kernel]. Non-affine accesses are skipped. *)
val analyze_loop :
  kernel:Core.op -> Reaching_defs.t -> Core.op -> access list

val pp_access : Format.formatter -> access -> unit
