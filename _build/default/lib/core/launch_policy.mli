(** The runtime's work-group-size selection policy for plain
    [parallel_for(range)] launches.

    Shared between the runtime and the compiler: because SYCL-MLIR sees
    host and device together, it can predict at compile time the
    work-group size the runtime will pick — which is what makes loop
    internalization's tiling legal to plan statically (with a runtime
    re-check in the versioning condition when the prediction could be
    wrong). *)

val preferred_wg_1d : int
val preferred_wg_2d : int
val preferred_wg_3d : int

(** Largest power of two <= [cap] that divides [n] (at least 1). *)
val divisor_pow2 : cap:int -> int -> int

(** Work-group sizes for a global range (each divides its extent). *)
val default_wg_size : int list -> int list
