(* SYCL dialect types (Section III/IV of the paper): the classes id, item,
   nd_item, range, nd_range and group are modeled as IR types, as are
   accessors (device side) and buffers/queues/handlers (host side). *)

open Mlir

type access_mode =
  | Read
  | Write
  | Read_write

let access_mode_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Read_write -> "read_write"

let access_mode_of_string = function
  | "read" -> Some Read
  | "write" -> Some Write
  | "read_write" -> Some Read_write
  | _ -> None

type accessor_info = {
  acc_dims : int;
  acc_element : Types.t;
  acc_mode : access_mode;
}

type buffer_info = {
  buf_dims : int;
  buf_element : Types.t;
}

type Types.t +=
  | Id of int            (** !sycl.id<n> *)
  | Item of int          (** !sycl.item<n> *)
  | Nd_item of int       (** !sycl.nd_item<n> *)
  | Range of int         (** !sycl.range<n> *)
  | Nd_range of int      (** !sycl.nd_range<n> *)
  | Group of int         (** !sycl.group<n> *)
  | Accessor of accessor_info  (** !sycl.accessor<n, elem, mode> *)
  | Local_accessor of accessor_info  (** !sycl.local_accessor<n, elem> *)
  | Buffer of buffer_info  (** !sycl.buffer<n, elem> — host side *)
  | Queue                (** !sycl.queue — host side *)
  | Handler              (** !sycl.handler — host side *)
  | Event                (** !sycl.event — host side *)

let id n = Id n
let item n = Item n
let nd_item n = Nd_item n
let range n = Range n
let nd_range n = Nd_range n
let group n = Group n

let accessor ?(mode = Read_write) ~dims element =
  Accessor { acc_dims = dims; acc_element = element; acc_mode = mode }

let local_accessor ~dims element =
  Local_accessor { acc_dims = dims; acc_element = element; acc_mode = Read_write }

let buffer ~dims element = Buffer { buf_dims = dims; buf_element = element }

(** Number of index cells occupied by a SYCL struct type when stored in
    memory (used by the device interpreter for alloca sizing). *)
let flat_cells = function
  | Id n | Range n -> n
  | Item n -> 3 * n (* id, range, offset *)
  | Nd_item n -> 6 * n
  | Nd_range n -> 2 * n
  | Group n -> 2 * n
  | _ -> 1

let dims_of = function
  | Id n | Item n | Nd_item n | Range n | Nd_range n | Group n -> Some n
  | Accessor { acc_dims; _ } | Local_accessor { acc_dims; _ } -> Some acc_dims
  | Buffer { buf_dims; _ } -> Some buf_dims
  | _ -> None

let is_accessor = function Accessor _ | Local_accessor _ -> true | _ -> false

let accessor_info = function
  | Accessor info | Local_accessor info -> Some info
  | _ -> None

let is_item_like = function Item _ | Nd_item _ -> true | _ -> false

let to_string ty =
  match ty with
  | Id n -> Printf.sprintf "!sycl.id<%d>" n
  | Item n -> Printf.sprintf "!sycl.item<%d>" n
  | Nd_item n -> Printf.sprintf "!sycl.nd_item<%d>" n
  | Range n -> Printf.sprintf "!sycl.range<%d>" n
  | Nd_range n -> Printf.sprintf "!sycl.nd_range<%d>" n
  | Group n -> Printf.sprintf "!sycl.group<%d>" n
  | Accessor { acc_dims; acc_element; acc_mode } ->
    Printf.sprintf "!sycl.accessor<%d, %s, %s>" acc_dims
      (Types.to_string acc_element)
      (access_mode_to_string acc_mode)
  | Local_accessor { acc_dims; acc_element; _ } ->
    Printf.sprintf "!sycl.local_accessor<%d, %s>" acc_dims
      (Types.to_string acc_element)
  | Buffer { buf_dims; buf_element } ->
    Printf.sprintf "!sycl.buffer<%d, %s>" buf_dims (Types.to_string buf_element)
  | Queue -> "!sycl.queue"
  | Handler -> "!sycl.handler"
  | Event -> "!sycl.event"
  | _ -> raise Not_found

let init_done = ref false

let init () =
  if not !init_done then begin
    init_done := true;
    Types.register_printer (fun ty ->
        match to_string ty with s -> Some s | exception Not_found -> None);
    (* Textual parser for !sycl.* types. Registered under the "sycl.xxx"
       identifier that follows the '!'. *)
    let parse kind (p : Parser.t) =
      let expect_angle_int () =
        Parser.expect p Parser.Langle;
        let n =
          match p.Parser.tok with
          | Parser.Int_lit n -> Parser.advance p; n
          | _ -> raise (Parser.Parse_error "expected integer in sycl type")
        in
        n
      in
      match kind with
      | "sycl.id" ->
        let n = expect_angle_int () in
        Parser.expect p Parser.Rangle;
        Id n
      | "sycl.item" ->
        let n = expect_angle_int () in
        Parser.expect p Parser.Rangle;
        Item n
      | "sycl.nd_item" ->
        let n = expect_angle_int () in
        Parser.expect p Parser.Rangle;
        Nd_item n
      | "sycl.range" ->
        let n = expect_angle_int () in
        Parser.expect p Parser.Rangle;
        Range n
      | "sycl.nd_range" ->
        let n = expect_angle_int () in
        Parser.expect p Parser.Rangle;
        Nd_range n
      | "sycl.group" ->
        let n = expect_angle_int () in
        Parser.expect p Parser.Rangle;
        Group n
      | "sycl.accessor" ->
        let n = expect_angle_int () in
        Parser.expect p Parser.Comma;
        let element = Parser.parse_type p in
        Parser.expect p Parser.Comma;
        let mode_s =
          match p.Parser.tok with
          | Parser.Ident s -> Parser.advance p; s
          | _ -> raise (Parser.Parse_error "expected access mode")
        in
        Parser.expect p Parser.Rangle;
        (match access_mode_of_string mode_s with
        | Some mode -> accessor ~mode ~dims:n element
        | None -> raise (Parser.Parse_error ("bad access mode " ^ mode_s)))
      | "sycl.local_accessor" ->
        let n = expect_angle_int () in
        Parser.expect p Parser.Comma;
        let element = Parser.parse_type p in
        Parser.expect p Parser.Rangle;
        local_accessor ~dims:n element
      | "sycl.buffer" ->
        let n = expect_angle_int () in
        Parser.expect p Parser.Comma;
        let element = Parser.parse_type p in
        Parser.expect p Parser.Rangle;
        buffer ~dims:n element
      | "sycl.queue" -> Queue
      | "sycl.handler" -> Handler
      | "sycl.event" -> Event
      | k -> raise (Parser.Parse_error ("unknown sycl type !" ^ k))
    in
    List.iter
      (fun kind -> Parser.register_type_parser kind (parse kind))
      [
        "sycl.id"; "sycl.item"; "sycl.nd_item"; "sycl.range"; "sycl.nd_range";
        "sycl.group"; "sycl.accessor"; "sycl.local_accessor"; "sycl.buffer";
        "sycl.queue"; "sycl.handler"; "sycl.event";
      ]
  end
