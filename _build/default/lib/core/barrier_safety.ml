(* Barrier-safety diagnostic: a group barrier executed in a divergent
   region deadlocks on hardware (Section V-C's motivation for the
   uniformity analysis; the simulator raises Barrier_divergence in the
   same situation). This pass reports every barrier whose enclosing
   control flow is not provably uniform — a static version of that check,
   usable as a verification gate after transformations that insert
   barriers. *)

open Mlir

type diagnostic = {
  bd_kernel : string;
  bd_barrier : Core.op;
  bd_guards : Core.value list;  (** the non-uniform guarding values *)
}

let check (m : Core.op) : diagnostic list =
  let uniformity = Uniformity.analyze m in
  let diags = ref [] in
  List.iter
    (fun f ->
      if Uniformity.is_kernel f then
        Core.walk f ~f:(fun op ->
            if Sycl_ops.is_barrier op then begin
              let bad_guards =
                List.filter
                  (fun v -> Uniformity.value uniformity v <> Uniformity.Uniform)
                  (Uniformity.guarding_values op)
              in
              if bad_guards <> [] then
                diags :=
                  { bd_kernel = Core.func_sym f; bd_barrier = op;
                    bd_guards = bad_guards }
                  :: !diags
            end))
    (Core.funcs m);
  List.rev !diags

let pass =
  Pass.make "barrier-safety" (fun m stats ->
      let diags = check m in
      Pass.Stats.bump ~by:(List.length diags) stats "barrier-safety.divergent-barriers";
      List.iter
        (fun d ->
          Logs.warn (fun k ->
              k "kernel %s: group barrier under divergent control flow"
                d.bd_kernel))
        diags)
