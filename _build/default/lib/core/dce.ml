(* Dead code elimination: removes unused pure ops (post-order, to free up
   operands of earlier dead ops) and unused local allocations that are
   only ever written. *)

open Mlir

let is_alloc (op : Core.op) =
  List.mem op.Core.name
    [ "memref.alloca"; "memref.alloc"; "gpu.alloc_local"; "llvm.alloca" ]

(* An allocation is dead when every use is a pure address computation or a
   store INTO it (the stored values are then never observable). *)
let dead_alloc_uses (op : Core.op) =
  let rec check (v : Core.value) =
    List.for_all
      (fun (user, idx) ->
        if Dialects.Memref.is_store user then idx = 1 (* target, not value *)
        else if Sycl_ops.is_constructor user then idx = 0
        else if user.Core.name = "memref.dealloc" then true
        else if Sycl_ops.is_subscript user && idx = 0 then
          check (Core.result user 0)
        else false)
      (Core.uses v)
  in
  check (Core.result op 0)

let run_on_func (f : Core.op) stats =
  let changed = ref true in
  while !changed do
    changed := false;
    (* Post-order collection. *)
    let ops = ref [] in
    Core.walk f ~f:(fun o -> if not (o == f) then ops := o :: !ops);
    List.iter
      (fun op ->
        if op.Core.parent_block <> None then
          if Rewrite.erase_if_dead op then begin
            changed := true;
            Pass.Stats.bump stats "dce.erased"
          end
          else if is_alloc op && dead_alloc_uses op then begin
            (* Erase the allocation and all its users. *)
            let rec erase_users (v : Core.value) =
              List.iter
                (fun (user, _) ->
                  if user.Core.parent_block <> None then begin
                    List.iter erase_users (Core.results user);
                    Core.erase_op_unsafe user
                  end)
                (Core.uses v)
            in
            erase_users (Core.result op 0);
            Core.erase_op op;
            changed := true;
            Pass.Stats.bump stats "dce.dead-alloc"
          end)
      !ops
  done

let pass = Pass.on_functions "dce" run_on_func
