(* SYCL dialect host operations (Section VII-A): the targets of the host
   raising pass. They capture SYCL object construction and kernel
   scheduling in host code, as in the paper's Listing 9. *)

open Mlir

(* queue construction: %q = sycl.host.queue_ctor() *)
let queue_ctor b =
  Builder.op1 b "sycl.host.queue_ctor" ~operands:[] ~result_type:Sycl_types.Queue

(* %buf = sycl.host.buffer_ctor(%host_data, %d0, %d1) : buffer over host
   memory with the given extents. *)
let buffer_ctor b ~element ~host_data dims =
  Builder.op1 b "sycl.host.buffer_ctor"
    ~operands:(host_data :: dims)
    ~result_type:(Sycl_types.buffer ~dims:(List.length dims) element)

(* %h = sycl.host.submit(%q): opens a command group on the queue. *)
let submit b q =
  Builder.op1 b "sycl.host.submit" ~operands:[ q ] ~result_type:Sycl_types.Handler

(* %acc = sycl.host.accessor_ctor(%buf, %h [, %range..., %offset...])
   {mode = "read"} — the optional operands make it a *ranged* accessor. *)
let accessor_ctor b ~mode buf handler ~ranged =
  let dims, element =
    match buf.Core.vty with
    | Sycl_types.Buffer { buf_dims; buf_element } -> (buf_dims, buf_element)
    | _ -> invalid_arg "accessor_ctor: not a buffer"
  in
  let extra = match ranged with None -> [] | Some (r, o) -> r @ o in
  Builder.op1 b "sycl.host.accessor_ctor"
    ~operands:(buf :: handler :: extra)
    ~result_type:(Sycl_types.accessor ~mode ~dims element)
    ~attrs:
      [
        ("mode", Attr.String (Sycl_types.access_mode_to_string mode));
        ("ranged", Attr.Bool (ranged <> None));
      ]

(* sycl.host.set_captured(%h, %v) {index = i}: the i-th capture of the
   kernel functor (in DPC++: a kernel argument after flattening). *)
let set_captured b handler ~index v =
  Builder.op0 b "sycl.host.set_captured" ~operands:[ handler; v ]
    ~attrs:[ ("index", Attr.Int index) ]

(* sycl.host.set_nd_range(%h, %g0, %g1 [, %l0, %l1]) {has_local} *)
let set_nd_range b handler ~global ~local =
  let locals = Option.value ~default:[] local in
  Builder.op0 b "sycl.host.set_nd_range"
    ~operands:((handler :: global) @ locals)
    ~attrs:
      [
        ("dims", Attr.Int (List.length global));
        ("has_local", Attr.Bool (local <> None));
      ]

(* sycl.host.parallel_for(%h) {kernel = @sym}: schedules the kernel. *)
let parallel_for b handler ~kernel =
  Builder.op0 b "sycl.host.parallel_for" ~operands:[ handler ]
    ~attrs:[ ("kernel", Attr.Symbol kernel) ]

(* sycl.host.wait(%q) *)
let wait b q = Builder.op0 b "sycl.host.wait" ~operands:[ q ]

(* sycl.host.buffer_dtor(%buf): destruction writes back to the host. *)
let buffer_dtor b buf = Builder.op0 b "sycl.host.buffer_dtor" ~operands:[ buf ]

(* USM: %p = sycl.host.malloc_device(%q, %n) {element}, memcpys, free. *)
let malloc_device b q n ~element =
  Builder.op1 b "sycl.host.malloc_device" ~operands:[ q; n ]
    ~result_type:(Types.memref_dyn element)

let memcpy b q ~dst ~src ~count =
  Builder.op0 b "sycl.host.memcpy" ~operands:[ q; dst; src; count ]

let free b q p = Builder.op0 b "sycl.host.free" ~operands:[ q; p ]

(* Matchers *)

let is_queue_ctor op = op.Core.name = "sycl.host.queue_ctor"
let is_buffer_ctor op = op.Core.name = "sycl.host.buffer_ctor"
let is_submit op = op.Core.name = "sycl.host.submit"
let is_accessor_ctor op = op.Core.name = "sycl.host.accessor_ctor"
let is_set_captured op = op.Core.name = "sycl.host.set_captured"
let is_set_nd_range op = op.Core.name = "sycl.host.set_nd_range"
let is_parallel_for op = op.Core.name = "sycl.host.parallel_for"
let is_wait op = op.Core.name = "sycl.host.wait"
let is_buffer_dtor op = op.Core.name = "sycl.host.buffer_dtor"

let accessor_ctor_mode op =
  Option.bind (Core.attr_string op "mode") Sycl_types.access_mode_of_string

let accessor_ctor_buffer op = Core.operand op 0

let set_captured_index op =
  Option.value ~default:(-1) (Core.attr_int op "index")

let parallel_for_kernel op = Core.attr_symbol op "kernel"

let nd_range_dims op = Option.value ~default:1 (Core.attr_int op "dims")

let nd_range_global op =
  let d = nd_range_dims op in
  List.filteri (fun i _ -> i >= 1 && i <= d) (Core.operands op)

let nd_range_local op =
  let d = nd_range_dims op in
  if Core.attr op "has_local" = Some (Attr.Bool true) then
    Some (List.filteri (fun i _ -> i > d) (Core.operands op))
  else None

let init_done = ref false

let init () =
  if not !init_done then begin
    init_done := true;
    Sycl_types.init ();
    (* Host ops interact with the runtime: model them as opaque effects so
       nothing reorders around them, except the pure queries. *)
    let effectful =
      [
        "sycl.host.queue_ctor"; "sycl.host.buffer_ctor"; "sycl.host.submit";
        "sycl.host.accessor_ctor"; "sycl.host.set_captured";
        "sycl.host.set_nd_range"; "sycl.host.parallel_for"; "sycl.host.wait";
        "sycl.host.buffer_dtor"; "sycl.host.malloc_device"; "sycl.host.memcpy";
        "sycl.host.free";
      ]
    in
    List.iter
      (fun name ->
        Op_registry.register name
          {
            Op_registry.default_info with
            Op_registry.memory_effects =
              (fun _ ->
                Some
                  [
                    (Op_registry.Read, Op_registry.Anywhere);
                    (Op_registry.Write, Op_registry.Anywhere);
                  ]);
          })
      effectful
  end
