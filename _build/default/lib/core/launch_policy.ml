(* The SYCL runtime's work-group-size selection policy for plain
   parallel_for(range) launches. Shared between the runtime and the
   compiler: because SYCL-MLIR sees host and device together (Fig. 1,
   dashed path), it can predict at compile time the work-group size the
   runtime will pick, which is what makes loop internalization's tiling
   legal to plan statically. *)

let preferred_wg_1d = 256
let preferred_wg_2d = 16
let preferred_wg_3d = 8

(** Largest power of two <= [cap] that divides [n] (>= 1). *)
let divisor_pow2 ~cap n =
  let rec go c = if c <= 1 then 1 else if n mod c = 0 then c else go (c / 2) in
  let rec pow2_below x acc = if acc * 2 > x then acc else pow2_below x (acc * 2) in
  if n <= 0 then 1 else go (pow2_below (max cap 1) 1)

(** Work-group sizes for a given global range. *)
let default_wg_size (global : int list) : int list =
  match global with
  | [ n ] -> [ divisor_pow2 ~cap:preferred_wg_1d n ]
  | [ n0; n1 ] ->
    let m = min (divisor_pow2 ~cap:preferred_wg_2d n0) (divisor_pow2 ~cap:preferred_wg_2d n1) in
    [ m; m ]
  | [ n0; n1; n2 ] ->
    let m =
      min
        (divisor_pow2 ~cap:preferred_wg_3d n0)
        (min (divisor_pow2 ~cap:preferred_wg_3d n1) (divisor_pow2 ~cap:preferred_wg_3d n2))
    in
    [ m; m; m ]
  | other -> List.map (fun _ -> 1) other
