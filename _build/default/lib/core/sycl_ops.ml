(* SYCL dialect device operations (Sections III and IV of the paper): work-
   item position queries, SYCL object constructors and accessor subscripts.
   Each op registers memory-effect information and the non-uniformity trait
   so the generic analyses of Section V can reason about it. *)

open Mlir

(* ------------------------------------------------------------------ *)
(* Work-item position queries                                          *)
(* ------------------------------------------------------------------ *)

(* All getters take the item-like kernel argument plus a constant i32
   dimension, and yield an index, e.g.
     %gid = sycl.nd_item.get_global_id(%item, %c0) : (!sycl.nd_item<2>, i32) -> index *)

let getter name b item dim_v =
  Builder.op1 b name ~operands:[ item; dim_v ] ~result_type:Types.Index

let item_get_id b item dim = getter "sycl.item.get_id" b item dim
let item_get_range b item dim = getter "sycl.item.get_range" b item dim
let item_get_linear_id b item =
  Builder.op1 b "sycl.item.get_linear_id" ~operands:[ item ] ~result_type:Types.Index

let nd_item_get_global_id b item dim = getter "sycl.nd_item.get_global_id" b item dim
let nd_item_get_local_id b item dim = getter "sycl.nd_item.get_local_id" b item dim
let nd_item_get_group_id b item dim = getter "sycl.nd_item.get_group_id" b item dim
let nd_item_get_global_range b item dim = getter "sycl.nd_item.get_global_range" b item dim
let nd_item_get_local_range b item dim = getter "sycl.nd_item.get_local_range" b item dim

let id_get b id_mem dim = getter "sycl.id.get" b id_mem dim
let range_get b range_mem dim = getter "sycl.range.get" b range_mem dim

(* Names of getters yielding values that differ between work-items of the
   same work-group: these are the analysis' sources of non-uniformity
   (Section V-C). Group ids and ranges are work-group-uniform. *)
let non_uniform_getters =
  [
    "sycl.item.get_id";
    "sycl.item.get_linear_id";
    "sycl.nd_item.get_global_id";
    "sycl.nd_item.get_local_id";
  ]

let uniform_getters =
  [
    "sycl.item.get_range";
    "sycl.nd_item.get_group_id";
    "sycl.nd_item.get_global_range";
    "sycl.nd_item.get_local_range";
  ]

let is_global_id_getter op =
  op.Core.name = "sycl.item.get_id"
  || op.Core.name = "sycl.nd_item.get_global_id"

let is_local_id_getter op = op.Core.name = "sycl.nd_item.get_local_id"

(** The constant dimension argument of a getter, if constant. *)
let getter_dim op =
  if Core.num_operands op < 2 then None
  else
    Option.bind (Core.defining_op (Core.operand op 1)) Dialects.Arith.constant_int

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

(** [constructor b cls out args]: constructs a SYCL object of class [cls]
    (e.g. "id", "range") into the memory pointed to by [out]:
      sycl.constructor @id(%out, %i, %j, %k) *)
let constructor b cls out args =
  Builder.op0 b "sycl.constructor"
    ~operands:(out :: args)
    ~attrs:[ ("class", Attr.Symbol cls) ]

let is_constructor op = op.Core.name = "sycl.constructor"
let constructor_class op = Core.attr_symbol op "class"
let constructor_out op = Core.operand op 0
let constructor_args op = List.tl (Core.operands op)

(* ------------------------------------------------------------------ *)
(* Accessor operations                                                 *)
(* ------------------------------------------------------------------ *)

(* The subscript has two source-level forms, mirroring the two ways DPC++
   lowers accessor indexing:
   - through an id struct in memory (the paper's Listing 3):
       %view = sycl.accessor.subscript %acc[%id]   — reads the id memref;
   - with the index values directly (after scalar promotion):
       %view = sycl.accessor.subscript %acc[%i, %j] — pure address math.
   Either yields a 1-D view (memref<? x elem>) of the element's location. *)
let subscript_result_type (acc : Core.value) =
  let element =
    match Sycl_types.accessor_info acc.Core.vty with
    | Some info -> info.Sycl_types.acc_element
    | None -> invalid_arg "accessor_subscript: not an accessor"
  in
  let space =
    match acc.Core.vty with
    | Sycl_types.Local_accessor _ -> Types.Local
    | _ -> Types.Global
  in
  Types.memref_dyn ~space element

let accessor_subscript b acc id_mem =
  Builder.op1 b "sycl.accessor.subscript" ~operands:[ acc; id_mem ]
    ~result_type:(subscript_result_type acc)

(** Subscript with the index values given directly (pure form). *)
let accessor_subscript_multi b acc indices =
  Builder.op1 b "sycl.accessor.subscript" ~operands:(acc :: indices)
    ~result_type:(subscript_result_type acc)

(** 1-D subscript with a plain index. *)
let accessor_subscript_1d b acc idx = accessor_subscript b acc idx

let is_subscript op = op.Core.name = "sycl.accessor.subscript"
let subscript_accessor op = Core.operand op 0
let subscript_index op = Core.operand op 1
let subscript_indices op = List.tl (Core.operands op)

(** True when the subscript carries its indices directly (pure form). *)
let subscript_is_direct op =
  List.for_all (fun v -> not (Types.is_memref v.Core.vty)) (subscript_indices op)

(** Accessor member getters (the "four flattened arguments" of DPC++
    accessors, Section VII-B): access range, underlying memory range and
    offset, per dimension. *)
let accessor_get_range b acc dim = getter "sycl.accessor.get_range" b acc dim
let accessor_get_mem_range b acc dim = getter "sycl.accessor.get_mem_range" b acc dim
let accessor_get_offset b acc dim = getter "sycl.accessor.get_offset" b acc dim

let accessor_member_getters =
  [ "sycl.accessor.get_range"; "sycl.accessor.get_mem_range"; "sycl.accessor.get_offset" ]

(* ------------------------------------------------------------------ *)
(* Work-group cooperation                                              *)
(* ------------------------------------------------------------------ *)

(** sycl::group_barrier — semantically the gpu.barrier with SYCL dressing;
    the simulator treats both identically. *)
let group_barrier b = Builder.op0 b "sycl.group_barrier" ~operands:[]

let is_barrier op =
  op.Core.name = "sycl.group_barrier" || Dialects.Gpu.is_barrier op

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let init_done = ref false

let init () =
  if not !init_done then begin
    init_done := true;
    Sycl_types.init ();
    (* Getters are pure; some are non-uniformity sources. *)
    List.iter
      (fun name ->
        Op_registry.register name
          { Op_registry.pure_info with Op_registry.non_uniform_source = true })
      non_uniform_getters;
    List.iter
      (fun name -> Op_registry.register name Op_registry.pure_info)
      uniform_getters;
    (* id/range member reads: read the struct's memory. *)
    List.iter
      (fun name ->
        Op_registry.register name
          {
            Op_registry.default_info with
            Op_registry.memory_effects =
              (fun _ -> Some [ (Op_registry.Read, Op_registry.On_operand 0) ]);
            Op_registry.speculatable = true;
          })
      [ "sycl.id.get"; "sycl.range.get" ];
    (* Accessor member getters are pure (they read the by-value accessor
       descriptor, not memory). *)
    List.iter
      (fun name -> Op_registry.register name Op_registry.pure_info)
      accessor_member_getters;
    (* The constructor writes the object representation to operand 0. *)
    Op_registry.register "sycl.constructor"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ -> Some [ (Op_registry.Write, Op_registry.On_operand 0) ]);
      };
    (* Subscript reads the id struct (operand 1) and computes an address;
       it does not itself touch the accessor's data. Its result aliases the
       accessor's underlying memory — encoded in the SYCL alias analysis. *)
    Op_registry.register "sycl.accessor.subscript"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun op ->
            if subscript_is_direct op then Some []
            else Some [ (Op_registry.Read, Op_registry.On_operand 1) ]);
        Op_registry.speculatable = true;
      };
    Op_registry.register "sycl.group_barrier"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ ->
            Some
              [
                (Op_registry.Read, Op_registry.Anywhere);
                (Op_registry.Write, Op_registry.Anywhere);
              ]);
      }
  end
