(* The modeled DPC++ runtime ABI: the host module obtained "from LLVM IR"
   contains llvm.call operations against these symbols; the host raising
   pass (Section VII-A) pattern-matches them back into sycl.host ops. The
   frontend emits exactly these calls, playing the role of clang +
   mlir-translate in Fig. 1. *)

let queue_ctor = "__sycl_queue_ctor"
let buffer_ctor = "__sycl_buffer_ctor"
let submit = "__sycl_submit"
let accessor_ctor = "__sycl_accessor_ctor"
let set_captured = "__sycl_set_captured"
let set_nd_range = "__sycl_set_nd_range"
let parallel_for = "__sycl_parallel_for"
let queue_wait = "__sycl_queue_wait"
let buffer_dtor = "__sycl_buffer_dtor"
let malloc_device = "__sycl_malloc_device"
let memcpy = "__sycl_memcpy"
let free = "__sycl_free"

let mode_to_int = function
  | Sycl_types.Read -> 0
  | Sycl_types.Write -> 1
  | Sycl_types.Read_write -> 2

let mode_of_int = function
  | 0 -> Some Sycl_types.Read
  | 1 -> Some Sycl_types.Write
  | 2 -> Some Sycl_types.Read_write
  | _ -> None
