(* Reaching-definition analysis (Section V-B): a forward data-flow
   analysis computing, for a pointer-like value at a program point, the
   set of operations that may have modified the memory it refers to:

     - MODS: definitions of the value itself or of values definitely
       (must) aliased to it;
     - PMODS: definitions of values possibly (may) aliased to it.

   Built on the generic data-flow framework and the SYCL-aware alias
   analysis, exactly as the paper describes. Memory effects of every op —
   including SYCL dialect ops — come from the registry's memory-effect
   interface. *)

open Mlir

module Int_set = Set.Make (Int)

(* State: for each base key, the set of write ops recorded against it,
   plus a bucket for writes to unknown memory. *)

type base_key =
  | K_alloc of int  (* op id *)
  | K_global of string
  | K_arg of int  (* value id *)
  | K_unknown

let base_key (b : Alias.base) =
  match b with
  | Alias.Alloc op -> K_alloc op.Core.oid
  | Alias.Global g -> K_global g
  | Alias.Accessor_arg v | Alias.Memref_arg v -> K_arg v.Core.vid
  | Alias.Unknown_base -> K_unknown

module Key_map = Map.Make (struct
  type t = base_key

  let compare = compare
end)

module Domain = struct
  type t = {
    writes : Int_set.t Key_map.t;
    anywhere : Int_set.t;
  }

  let empty = { writes = Key_map.empty; anywhere = Int_set.empty }

  let join a b =
    {
      writes =
        Key_map.union (fun _ x y -> Some (Int_set.union x y)) a.writes b.writes;
      anywhere = Int_set.union a.anywhere b.anywhere;
    }

  let equal a b =
    Key_map.equal Int_set.equal a.writes b.writes
    && Int_set.equal a.anywhere b.anywhere
end

module DF = Dataflow.Forward (Domain)

type t = {
  result : DF.result;
  (* op id -> op, to give sets of ops back to clients *)
  ops : (int, Core.op) Hashtbl.t;
  (* value id -> representative value (bases) *)
  values : (int, Core.value) Hashtbl.t;
}

(** Is a write through [v] guaranteed to overwrite the whole object (so
    that it kills previous definitions)? True for single-element objects:
    scalar allocas and SYCL struct storage. *)
let definite_overwrite (v : Core.value) =
  match v.Core.vty with
  | Types.Memref { shape; element; _ } -> (
    let static_size =
      List.fold_left
        (fun acc d -> match (acc, d) with Some a, Some d -> Some (a * d) | _ -> None)
        (Some 1) shape
    in
    match static_size with
    | Some 1 -> (
      (* One element; SYCL structs count as one object (the constructor
         rewrites them wholesale). *)
      match element with
      | _ -> true)
    | _ -> false)
  | _ -> false

let record_write state (op : Core.op) (target : Core.value) =
  let key = base_key (Alias.base_of target) in
  let kills = definite_overwrite target && key <> K_unknown in
  let prev =
    if kills then Int_set.empty
    else Option.value ~default:Int_set.empty (Key_map.find_opt key state.Domain.writes)
  in
  {
    state with
    Domain.writes = Key_map.add key (Int_set.add op.Core.oid prev) state.Domain.writes;
  }

let transfer ops (op : Core.op) (state : Domain.t) : Domain.t =
  Hashtbl.replace ops op.Core.oid op;
  match Op_registry.memory_effects op with
  | None ->
    (* Unknown behaviour (e.g. an external call): may write anything. *)
    { state with Domain.anywhere = Int_set.add op.Core.oid state.Domain.anywhere }
  | Some effects ->
    List.fold_left
      (fun state (kind, target) ->
        match kind with
        | Op_registry.Write | Op_registry.Free -> (
          match target with
          | Op_registry.On_operand i -> record_write state op (Core.operand op i)
          | Op_registry.On_result i -> record_write state op (Core.result op i)
          | Op_registry.Anywhere ->
            { state with Domain.anywhere = Int_set.add op.Core.oid state.Domain.anywhere })
        | Op_registry.Read | Op_registry.Alloc -> state)
      state effects

(** Analyze the region under [func] (typically a kernel function). *)
let analyze (func : Core.op) : t =
  let ops = Hashtbl.create 128 in
  let result =
    DF.analyze func ~init:Domain.empty ~transfer:(transfer ops)
  in
  { result; ops; values = Hashtbl.create 16 }

type defs = {
  mods : Core.op list;  (** definite modifiers *)
  pmods : Core.op list;  (** potential modifiers *)
}

(** Reaching definitions for the memory referenced by [v], observed just
    before [at]. *)
let defs_at (t : t) (v : Core.value) ~(at : Core.op) : defs =
  let state =
    Option.value ~default:Domain.empty (DF.before t.result at)
  in
  let ops_of s = List.filter_map (Hashtbl.find_opt t.ops) (Int_set.elements s) in
  let vb = Alias.base_of v in
  let vkey = base_key vb in
  let mods = ref Int_set.empty and pmods = ref Int_set.empty in
  Key_map.iter
    (fun key set ->
      if key = vkey && key <> K_unknown then mods := Int_set.union !mods set
      else
        (* Writes recorded under a different base: consult the alias
           analysis between the two bases. *)
        let aliasing =
          match (key, vkey) with
          | K_unknown, _ | _, K_unknown -> Alias.May_alias
          | _ ->
            (* Reconstruct a representative: compare via recorded target
               bases. We conservatively do a key-level comparison: distinct
               allocations/globals don't alias; args may. *)
            (match (key, vkey) with
            | K_alloc _, K_alloc _ | K_global _, K_global _
            | K_alloc _, K_global _ | K_global _, K_alloc _ ->
              Alias.No_alias
            | K_alloc _, K_arg _ | K_arg _, K_alloc _ -> Alias.No_alias
            | K_global _, K_arg _ | K_arg _, K_global _ -> Alias.No_alias
            | K_arg a, K_arg b ->
              (* Two distinct argument bases: ask the alias analysis if we
                 can find the values; else assume may-alias. *)
              (match (Hashtbl.find_opt t.values a, Hashtbl.find_opt t.values b) with
              | Some va, Some vb -> Alias.alias va vb
              | _ -> Alias.May_alias)
            | _ -> Alias.May_alias)
        in
        match aliasing with
        | Alias.No_alias -> ()
        | Alias.Must_alias -> mods := Int_set.union !mods set
        | Alias.May_alias -> pmods := Int_set.union !pmods set)
    state.Domain.writes;
  pmods := Int_set.union !pmods state.Domain.anywhere;
  { mods = ops_of !mods; pmods = ops_of !pmods }

(** Register base values so that arg-vs-arg alias queries in [defs_at] can
    use the full alias analysis (noalias facts from host analysis). *)
let note_base_value (t : t) (v : Core.value) =
  Hashtbl.replace t.values v.Core.vid v

let analyze_with_args (func : Core.op) : t =
  let t = analyze func in
  if Core.is_func func && not (Dialects.Func.is_declaration func) then
    List.iter (note_base_value t) (Core.block_args (Core.func_body func));
  t
