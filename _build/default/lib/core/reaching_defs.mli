(** Reaching-definition analysis (paper Section V-B).

    A forward data-flow analysis computing, for a pointer-like value at a
    program point, the operations that may have modified the memory it
    refers to:

    - {b MODS}: definitions of the value itself or of values definitely
      (must) aliased to it;
    - {b PMODS}: definitions of values possibly (may) aliased to it.

    Built on the generic data-flow framework ({!Mlir.Dataflow}) and the
    SYCL-aware alias analysis; memory effects of every op — including SYCL
    dialect ops — come from the registry's memory-effect interface. *)

open Mlir

type t

(** Analyze the region under a function (typically a kernel). *)
val analyze : Core.op -> t

(** Like {!analyze}, also registering the function's arguments so that
    argument-vs-argument queries use the full alias analysis (including
    host-provided no-alias facts). *)
val analyze_with_args : Core.op -> t

type defs = {
  mods : Core.op list;  (** definite modifiers *)
  pmods : Core.op list;  (** potential modifiers *)
}

(** Reaching definitions for the memory referenced by a value, observed
    just before [at]. *)
val defs_at : t -> Core.value -> at:Core.op -> defs

(** Register a value as a queryable base (done by {!analyze_with_args}
    for function arguments). *)
val note_base_value : t -> Core.value -> unit
