lib/core/launch_policy.mli:
