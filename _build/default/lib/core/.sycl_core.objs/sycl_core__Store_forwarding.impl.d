lib/core/store_forwarding.ml: Alias Array Core Dialects List Mlir Op_registry Pass Types
