lib/core/uniformity.mli: Core Mlir
