lib/core/alias.ml: Attr Core List Mlir Option Sycl_ops Sycl_types Types
