lib/core/sycl_ops.ml: Attr Builder Core Dialects List Mlir Op_registry Option Sycl_types Types
