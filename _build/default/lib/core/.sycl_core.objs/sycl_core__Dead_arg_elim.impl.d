lib/core/dead_arg_elim.ml: Attr Core List Mlir Pass Uniformity
