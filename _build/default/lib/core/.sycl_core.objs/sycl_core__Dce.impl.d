lib/core/dce.ml: Core Dialects List Mlir Pass Rewrite Sycl_ops
