lib/core/launch_policy.ml: List
