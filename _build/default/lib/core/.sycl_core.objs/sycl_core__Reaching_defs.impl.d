lib/core/reaching_defs.ml: Alias Core Dataflow Dialects Hashtbl Int List Map Mlir Op_registry Option Set Types
