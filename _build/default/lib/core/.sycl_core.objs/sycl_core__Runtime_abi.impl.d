lib/core/runtime_abi.ml: Sycl_types
