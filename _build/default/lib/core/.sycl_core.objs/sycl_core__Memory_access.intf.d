lib/core/memory_access.mli: Affine_expr Core Format Mlir Reaching_defs
