lib/core/host_raising.ml: Attr Builder Core Dialects List Mlir Option Pass Rewrite Runtime_abi String Sycl_host_ops Sycl_types Types
