lib/core/lower_sycl.ml: Array Attr Builder Core Dialects Hashtbl List Mlir Option Pass Rewrite Sycl_ops Sycl_types Types Uniformity
