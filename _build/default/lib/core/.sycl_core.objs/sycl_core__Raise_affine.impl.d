lib/core/raise_affine.ml: Array Attr Builder Core Dialects List Mlir Pass Rewrite
