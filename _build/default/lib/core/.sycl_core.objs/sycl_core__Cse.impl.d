lib/core/cse.ml: Array Attr Core Hashtbl List Mlir Op_registry Pass Types
