lib/core/detect_reduction.ml: Affine_expr Alias Array Attr Builder Core Dialects Dominance Hashtbl List Mlir Op_registry Pass Rewrite
