lib/core/sycl_host_ops.ml: Attr Builder Core List Mlir Op_registry Option Sycl_types Types
