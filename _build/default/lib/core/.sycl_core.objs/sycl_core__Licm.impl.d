lib/core/licm.ml: Affine_expr Alias Array Builder Core Dialects Dominance Hashtbl List Mlir Op_registry Pass Types Uniformity
