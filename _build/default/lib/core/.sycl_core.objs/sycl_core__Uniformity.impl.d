lib/core/uniformity.ml: Array Core Dialects Hashtbl List Mlir Op_registry Option Reaching_defs Sycl_ops
