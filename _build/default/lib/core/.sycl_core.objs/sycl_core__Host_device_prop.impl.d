lib/core/host_device_prop.ml: Alias Attr Builder Core Dialects Launch_policy List Mlir Option Pass Rewrite Sycl_host_ops Sycl_ops
