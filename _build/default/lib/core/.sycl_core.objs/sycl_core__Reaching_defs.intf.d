lib/core/reaching_defs.mli: Core Mlir
