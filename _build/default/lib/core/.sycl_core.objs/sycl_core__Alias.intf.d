lib/core/alias.mli: Core Mlir Types
