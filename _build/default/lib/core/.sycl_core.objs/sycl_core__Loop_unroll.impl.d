lib/core/loop_unroll.ml: Array Attr Builder Core Dialects Hashtbl List Mlir Op_registry Pass Rewrite
