lib/core/canonicalize.ml: Array Attr Builder Core Dialects List Mlir Pass Rewrite
