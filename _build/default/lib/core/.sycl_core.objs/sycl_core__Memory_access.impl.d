lib/core/memory_access.ml: Affine_expr Array Core Dialects Format Fun Hashtbl List Mlir Option Reaching_defs String Sycl_ops Sycl_types
