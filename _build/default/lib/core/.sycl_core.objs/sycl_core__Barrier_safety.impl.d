lib/core/barrier_safety.ml: Core List Logs Mlir Pass Sycl_ops Uniformity
