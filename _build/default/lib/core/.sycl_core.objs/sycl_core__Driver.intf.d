lib/core/driver.mli: Core Mlir Pass
