lib/core/sycl_types.ml: List Mlir Parser Printf Types
