lib/core/inline.ml: Array Core Dialects Hashtbl List Mlir Option Pass Uniformity
