lib/core/kernel_fusion.ml: Alias Array Attr Builder Core Dialects Fun Hashtbl List Mlir Op_registry Option Pass Printf Sycl_host_ops Sycl_ops Sycl_types Types Uniformity
