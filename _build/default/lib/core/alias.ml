(* Alias analysis (Section V-A): MLIR-style local alias analysis augmented
   with SYCL dialect knowledge — accessor subscripts alias their accessor's
   underlying buffer and nothing else; distinct allocations never alias;
   distinct memory spaces never alias; host-provided facts (the
   "sycl.noalias" function attribute produced by joint host/device
   analysis, Section VII-B) prove distinct accessor arguments disjoint. *)

open Mlir

type base =
  | Alloc of Core.op  (** memref.alloca/alloc, gpu.alloc_local, llvm.alloca *)
  | Global of string  (** llvm.addressof @g *)
  | Accessor_arg of Core.value  (** kernel argument of accessor type *)
  | Memref_arg of Core.value  (** other memref-typed argument *)
  | Unknown_base

type result =
  | No_alias
  | May_alias
  | Must_alias

let result_to_string = function
  | No_alias -> "no"
  | May_alias -> "may"
  | Must_alias -> "must"

let alloc_ops =
  [ "memref.alloca"; "memref.alloc"; "gpu.alloc_local"; "llvm.alloca" ]

(** The root object a pointer-like value refers to. *)
let rec base_of (v : Core.value) : base =
  match v.Core.vdef with
  | Core.Op_result (op, _) ->
    if List.mem op.Core.name alloc_ops then Alloc op
    else if op.Core.name = "llvm.addressof" then
      Global (Option.value ~default:"?" (Core.attr_symbol op "global_name"))
    else if Sycl_ops.is_subscript op then base_of (Sycl_ops.subscript_accessor op)
    else Unknown_base
  | Core.Block_arg _ ->
    if Sycl_types.is_accessor v.Core.vty then Accessor_arg v
    else if Types.is_memref v.Core.vty then Memref_arg v
    else if Sycl_types.is_accessor v.Core.vty then Accessor_arg v
    else Memref_arg v

let memspace_of (v : Core.value) : Types.memspace option =
  match v.Core.vty with
  | Types.Memref { space; _ } -> Some space
  | Sycl_types.Accessor _ -> Some Types.Global
  | Sycl_types.Local_accessor _ -> Some Types.Local
  | _ -> None

(** Argument index of a block-arg value within its block, if it is one. *)
let arg_index (v : Core.value) =
  match v.Core.vdef with Core.Block_arg (_, i) -> Some i | _ -> None

(** Pairs of kernel argument indices proven disjoint by host analysis are
    recorded as a flat [Array [Int i; Int j; Int i'; Int j'; ...]] under
    this function attribute. *)
let noalias_attr = "sycl.noalias"

let noalias_pairs (f : Core.op) =
  match Core.attr f noalias_attr with
  | Some (Attr.Array xs) ->
    let ints = List.filter_map Attr.as_int xs in
    let rec pairs = function
      | a :: b :: rest -> (a, b) :: pairs rest
      | _ -> []
    in
    pairs ints
  | _ -> []

let add_noalias_pair (f : Core.op) i j =
  let existing =
    match Core.attr f noalias_attr with Some (Attr.Array xs) -> xs | _ -> []
  in
  Core.set_attr f noalias_attr
    (Attr.Array (existing @ [ Attr.Int i; Attr.Int j ]))

(** Pairs of arguments known to reference the *same* object (e.g. two
    accessors over one buffer after kernel fusion). *)
let mustalias_attr = "sycl.mustalias"

let mustalias_pairs (f : Core.op) =
  match Core.attr f mustalias_attr with
  | Some (Attr.Array xs) ->
    let ints = List.filter_map Attr.as_int xs in
    let rec pairs = function
      | a :: b :: rest -> (a, b) :: pairs rest
      | _ -> []
    in
    pairs ints
  | _ -> []

let add_mustalias_pair (f : Core.op) i j =
  let existing =
    match Core.attr f mustalias_attr with Some (Attr.Array xs) -> xs | _ -> []
  in
  Core.set_attr f mustalias_attr
    (Attr.Array (existing @ [ Attr.Int i; Attr.Int j ]))

let args_related pairs_of (a : Core.value) (b : Core.value) =
  match (arg_index a, arg_index b) with
  | Some i, Some j -> (
    (* Both must be entry args of the same function. *)
    let func_of v =
      match v.Core.vdef with
      | Core.Block_arg (blk, _) -> Core.parent_op_of_block blk
      | _ -> None
    in
    match (func_of a, func_of b) with
    | Some f, Some f' when f == f' && Core.is_func f ->
      List.exists
        (fun (x, y) -> (x = i && y = j) || (x = j && y = i))
        (pairs_of f)
    | _ -> false)
  | _ -> false

(** Are two accessor arguments of the same function proven disjoint? *)
let args_proven_disjoint a b = args_related noalias_pairs a b

(** Are two accessor arguments proven to reference the same buffer? *)
let args_proven_same a b = args_related mustalias_pairs a b

let alias_bases (ba : base) (bb : base) : result =
  match (ba, bb) with
  | Alloc a, Alloc b -> if a == b then Must_alias else No_alias
  | Global a, Global b -> if a = b then Must_alias else No_alias
  | Alloc _, Global _ | Global _, Alloc _ -> No_alias
  (* A fresh allocation cannot alias any argument the function received. *)
  | Alloc _, (Accessor_arg _ | Memref_arg _)
  | (Accessor_arg _ | Memref_arg _), Alloc _ -> No_alias
  (* Globals (host constant data) do not alias device buffers. *)
  | Global _, Accessor_arg _ | Accessor_arg _, Global _ -> No_alias
  | Accessor_arg a, Accessor_arg b ->
    if Core.value_equal a b || args_proven_same a b then Must_alias
    else if args_proven_disjoint a b then No_alias
    else
      (* SYCL allows two accessors over the same or overlapping buffers. *)
      May_alias
  | Memref_arg a, Memref_arg b ->
    if Core.value_equal a b then Must_alias else May_alias
  | Accessor_arg _, Memref_arg _ | Memref_arg _, Accessor_arg _ -> May_alias
  | Global _, Memref_arg _ | Memref_arg _, Global _ -> May_alias
  | Unknown_base, _ | _, Unknown_base -> May_alias

(** Alias relation between two pointer-like values. *)
let alias (a : Core.value) (b : Core.value) : result =
  if Core.value_equal a b then Must_alias
  else
    match (memspace_of a, memspace_of b) with
    | Some sa, Some sb when sa <> sb -> No_alias
    | _ -> (
      let ba = base_of a and bb = base_of b in
      match alias_bases ba bb with
      | No_alias -> No_alias
      | Must_alias ->
        (* Same base object; distinct derived pointers (e.g. two subscripts
           with different indices) may or may not overlap: only identical
           derivations are must-alias. *)
        if Core.value_equal a b then Must_alias
        else (
          match (a.Core.vdef, b.Core.vdef) with
          | Core.Op_result (oa, _), Core.Op_result (ob, _)
            when Sycl_ops.is_subscript oa && Sycl_ops.is_subscript ob ->
            let acc_a = Sycl_ops.subscript_accessor oa in
            let acc_b = Sycl_ops.subscript_accessor ob in
            let accessors_same =
              Core.value_equal acc_a acc_b || args_proven_same acc_a acc_b
            in
            let ia = Sycl_ops.subscript_indices oa in
            let ib = Sycl_ops.subscript_indices ob in
            if
              accessors_same
              && List.length ia = List.length ib
              && List.for_all2 Core.value_equal ia ib
            then Must_alias
            else May_alias
          | Core.Block_arg _, Core.Block_arg _ -> Must_alias
          | _ -> May_alias)
      | May_alias -> May_alias)

let may_alias a b = alias a b <> No_alias
let must_alias a b = alias a b = Must_alias
