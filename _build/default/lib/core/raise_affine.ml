(* scf.for -> affine.for raising. Polygeist, the paper's device frontend,
   "maintains affine loops and other structured control-flow constructs"
   (Section IX); the frontend EDSL emits scf loops, and this pass recovers
   the affine form for loops whose bounds are constants or plain SSA
   index values and whose step is a positive constant — exactly the form
   the paper's listings (affine.for) show. All loop-consuming passes here
   accept both forms; the raising keeps the IR closer to the paper's. *)

open Mlir

let bound_of (v : Core.value) : Dialects.Affine_ops.bound option =
  match Rewrite.constant_of_value v with
  | Some (Attr.Int c) -> Some (Dialects.Affine_ops.Const c)
  | Some _ -> None
  | None -> Some (Dialects.Affine_ops.Value v)

let raise_loop (loop : Core.op) : bool =
  match Rewrite.constant_of_value (Dialects.Scf.for_step loop) with
  | Some (Attr.Int step) when step > 0 -> (
    match (bound_of (Dialects.Scf.for_lb loop), bound_of (Dialects.Scf.for_ub loop)) with
    | Some lb, Some ub ->
      let lb_map, lb_ops = Dialects.Affine_ops.bound_map lb in
      let ub_map, ub_ops = Dialects.Affine_ops.bound_map ub in
      let inits = Dialects.Scf.for_iter_inits loop in
      (* Move the body block into the new op; rewrite the terminator. *)
      let body = Dialects.Scf.for_body loop in
      (match List.rev body.Core.body with
      | term :: _ when Dialects.Scf.is_yield term ->
        let operands = Core.operands term in
        let b = Builder.before term in
        Builder.op0 b "affine.yield" ~operands;
        Core.erase_op term
      | _ -> ());
      let old_region = loop.Core.regions.(0) in
      old_region.Core.blocks <- [];
      let region = Core.create_region ~blocks:[ body ] () in
      let new_loop =
        Core.create_op "affine.for"
          ~operands:(lb_ops @ ub_ops @ inits)
          ~result_types:(List.map (fun r -> r.Core.vty) (Core.results loop))
          ~attrs:
            [
              ("lb_map", Attr.Affine_map lb_map);
              ("ub_map", Attr.Affine_map ub_map);
              ("step", Attr.Int step);
              ("lb_count", Attr.Int (List.length lb_ops));
            ]
          ~regions:[ region ]
      in
      Core.insert_before ~anchor:loop new_loop;
      List.iteri
        (fun i r -> Core.replace_all_uses_with r (Core.result new_loop i))
        (Core.results loop);
      Core.erase_op_unsafe loop;
      true
    | _ -> false)
  | _ -> false

let run_on_func (f : Core.op) stats =
  let changed = ref true in
  while !changed do
    changed := false;
    let loops = Core.collect f ~p:Dialects.Scf.is_for in
    List.iter
      (fun loop ->
        if loop.Core.parent_block <> None && raise_loop loop then begin
          Pass.Stats.bump stats "raise-affine.raised";
          changed := true
        end)
      loops
  done

let pass = Pass.on_functions "raise-affine" run_on_func
