(* Memory access analysis (Section V-D), after Kaeli et al. [14], extended
   for SYCL accesses: given an (affine) loop in a kernel, each SYCL memory
   access is described by an access matrix A and offset vector c so that
   the accessed index vector is  A * (gid_0, ..., gid_{d-1}, iv_0, ...)ᵀ + c.

   The inter-work-item submatrix (thread columns) classifies coalescing;
   the intra-work-item submatrix (loop-iv columns) detects temporal reuse.
   Loop internalization (Section VI-C) consumes this analysis. *)

open Mlir

type var =
  | Global_id of int  (** work-item global id dimension *)
  | Local_id of int
  | Loop_iv of int  (** op id of the enclosing loop *)

type access_kind = Load | Store

type coalescing =
  | Linear  (** unit stride in the fastest-varying thread dimension *)
  | Reverse_linear
  | Thread_invariant  (** no dependence on any thread variable *)
  | Non_coalesced

let coalescing_to_string = function
  | Linear -> "linear"
  | Reverse_linear -> "reverse-linear"
  | Thread_invariant -> "thread-invariant"
  | Non_coalesced -> "non-coalesced"

type access = {
  acc_op : Core.op;  (** the memref.load / memref.store *)
  acc_subscript : Core.op option;  (** the sycl.accessor.subscript feeding it *)
  accessor : Core.value option;  (** the accessor kernel argument *)
  kind : access_kind;
  vars : var list;  (** column meanings *)
  matrix : int array array;  (** rows = accessor index dims *)
  offsets : int array;
  row_exprs : Affine_expr.t list;  (** per index dim, over [vars] *)
  coalescing : coalescing;
  temporal_reuse : bool;
}

(* ------------------------------------------------------------------ *)
(* Affine derivation of index expressions                              *)
(* ------------------------------------------------------------------ *)

type env = {
  columns : (var, int) Hashtbl.t;
  order : var list ref;  (* reversed *)
  kernel_dims : int;
}

let column env var =
  match Hashtbl.find_opt env.columns var with
  | Some c -> c
  | None ->
    let c = Hashtbl.length env.columns in
    Hashtbl.replace env.columns var c;
    env.order := var :: !(env.order);
    c

(** The first item-like argument of a kernel function. *)
let item_arg (kernel : Core.op) =
  List.find_opt
    (fun v -> Sycl_types.is_item_like v.Core.vty)
    (Core.block_args (Core.func_body kernel))

let kernel_dims (kernel : Core.op) =
  match item_arg kernel with
  | Some v -> Option.value ~default:1 (Sycl_types.dims_of v.Core.vty)
  | None -> 1

(** Derive [v] as an affine expression over thread variables and loop
    induction variables. Returns None for non-affine values. *)
let rec expr_of (env : env) (v : Core.value) : Affine_expr.t option =
  match v.Core.vdef with
  | Core.Block_arg (blk, 0) -> (
    (* Possibly a loop induction variable. *)
    match Core.parent_op_of_block blk with
    | Some owner when Dialects.Scf.is_for owner || Dialects.Affine_ops.is_for owner ->
      Some (Affine_expr.Dim (column env (Loop_iv owner.Core.oid)))
    | _ -> None)
  | Core.Block_arg _ -> None
  | Core.Op_result (op, _) -> (
    let bin f =
      match (expr_of env (Core.operand op 0), expr_of env (Core.operand op 1)) with
      | Some a, Some b -> Some (f a b)
      | _ -> None
    in
    match op.Core.name with
    | "arith.constant" -> (
      match Dialects.Arith.constant_int op with
      | Some c -> Some (Affine_expr.Const c)
      | None -> None)
    | "arith.addi" -> bin Affine_expr.add
    | "arith.subi" -> bin Affine_expr.sub
    | "arith.muli" -> (
      match bin Affine_expr.mul with
      | Some e when Affine_expr.is_pure_affine e -> Some e
      | _ -> None)
    | "arith.index_cast" -> expr_of env (Core.operand op 0)
    | "affine.apply" -> (
      let m = Dialects.Affine_ops.access_map op in
      let operand_exprs =
        List.map (expr_of env) (Core.operands op)
      in
      if List.for_all Option.is_some operand_exprs then
        let subs = Array.of_list (List.map Option.get operand_exprs) in
        match m.Affine_expr.Map.exprs with
        | [ e ] ->
          let rec subst e =
            match e with
            | Affine_expr.Dim i -> subs.(i)
            | Affine_expr.Sym _ -> e
            | Affine_expr.Const _ -> e
            | Affine_expr.Add (a, b) -> Affine_expr.add (subst a) (subst b)
            | Affine_expr.Mul (a, b) -> Affine_expr.mul (subst a) (subst b)
            | Affine_expr.Mod (a, b) -> Affine_expr.modulo (subst a) (subst b)
            | Affine_expr.Floordiv (a, b) -> Affine_expr.floordiv (subst a) (subst b)
            | Affine_expr.Ceildiv (a, b) -> Affine_expr.ceildiv (subst a) (subst b)
          in
          Some (subst e)
        | _ -> None
      else None)
    | name when Sycl_ops.is_global_id_getter op -> (
      ignore name;
      match Sycl_ops.getter_dim op with
      | Some d -> Some (Affine_expr.Dim (column env (Global_id d)))
      | None -> None)
    | _ when Sycl_ops.is_local_id_getter op -> (
      match Sycl_ops.getter_dim op with
      | Some d -> Some (Affine_expr.Dim (column env (Local_id d)))
      | None -> None)
    | _ -> None)

(** The sycl.constructor that uniquely defines the id struct referenced by
    [id_mem] at [at], found through reaching definitions. *)
let id_constructor (rd : Reaching_defs.t) (id_mem : Core.value) ~(at : Core.op) =
  let defs = Reaching_defs.defs_at rd id_mem ~at in
  match (defs.Reaching_defs.mods, defs.Reaching_defs.pmods) with
  | [ ctor ], [] when Sycl_ops.is_constructor ctor -> Some ctor
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Access extraction and classification                                *)
(* ------------------------------------------------------------------ *)

(** Index expressions (one per accessor dimension) for a load/store op. *)
let index_exprs (env : env) (rd : Reaching_defs.t) (op : Core.op) :
    (Affine_expr.t list * Core.op option * Core.value option) option =
  let subscript_exprs (sub : Core.op) =
    if Sycl_ops.subscript_is_direct sub then begin
      (* Direct form: index operands are the per-dimension expressions. *)
      let exprs = List.map (expr_of env) (Sycl_ops.subscript_indices sub) in
      if List.for_all Option.is_some exprs then Some (List.map Option.get exprs)
      else None
    end
    else
      (* Id-struct form (the paper's Listing 3): recover the constructor
         through reaching definitions and use its arguments. *)
      let idx = Sycl_ops.subscript_index sub in
      match id_constructor rd idx ~at:sub with
      | Some ctor ->
        let args = Sycl_ops.constructor_args ctor in
        let exprs = List.map (expr_of env) args in
        if List.for_all Option.is_some exprs then
          Some (List.map Option.get exprs)
        else None
      | None -> None
  in
  let from_mem mem extra_indices =
    match mem.Core.vdef with
    | Core.Op_result (sub, _) when Sycl_ops.is_subscript sub -> (
      match subscript_exprs sub with
      | Some exprs ->
        (* The view is 1-D; an extra index of 0 adds nothing, a non-zero
           one offsets the last dimension. *)
        let extra =
          match extra_indices with
          | [ e ] -> expr_of env e
          | [] -> Some (Affine_expr.Const 0)
          | _ -> None
        in
        (match extra with
        | Some (Affine_expr.Const 0) ->
          Some (exprs, Some sub, Some (Sycl_ops.subscript_accessor sub))
        | Some e ->
          let rec last_plus = function
            | [ l ] -> [ Affine_expr.add l e ]
            | x :: rest -> x :: last_plus rest
            | [] -> []
          in
          Some (last_plus exprs, Some sub, Some (Sycl_ops.subscript_accessor sub))
        | None -> None)
      | None -> None)
    | _ ->
      (* A plain memref access (e.g. a local-memory tile). *)
      let exprs = List.map (expr_of env) extra_indices in
      if List.for_all Option.is_some exprs && exprs <> [] then
        Some (List.map Option.get exprs, None, None)
      else None
  in
  if Dialects.Memref.is_load op then
    let mem, idx = Dialects.Memref.load_parts op in
    from_mem mem idx
  else if Dialects.Memref.is_store op then
    let _, mem, idx = Dialects.Memref.store_parts op in
    from_mem mem idx
  else None

let classify_access ~(kernel_dims : int) (vars : var list)
    (matrix : int array array) : coalescing =
  (* The fastest-varying thread dimension is the last global-id dim. *)
  let fastest = Global_id (kernel_dims - 1) in
  let col_of v =
    let rec go i = function
      | [] -> None
      | x :: _ when x = v -> Some i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 vars
  in
  let n_rows = Array.length matrix in
  if n_rows = 0 then Thread_invariant
  else
    (* Coalescing is determined by the fastest-varying thread dimension:
       work-items adjacent in a sub-group differ only in it. Accesses
       independent of it are broadcast (thread-invariant); unit stride in
       the last index row is Linear/ReverseLinear (after [14]). *)
    match col_of fastest with
    | None -> Thread_invariant
    | Some fc ->
      let depends =
        Array.exists (fun row -> row.(fc) <> 0) matrix
      in
      if not depends then Thread_invariant
      else
        let last = matrix.(n_rows - 1) in
        let others_clean =
          Array.for_all Fun.id
            (Array.init (n_rows - 1) (fun r -> matrix.(r).(fc) = 0))
        in
        if others_clean && last.(fc) = 1 then Linear
        else if others_clean && last.(fc) = -1 then Reverse_linear
        else Non_coalesced

(** Analyze all SYCL memory accesses in the body of [loop] (an scf.for or
    affine.for) inside [kernel]. *)
let analyze_loop ~(kernel : Core.op) (rd : Reaching_defs.t) (loop : Core.op) :
    access list =
  let kd = kernel_dims kernel in
  let accesses = ref [] in
  Core.walk loop ~f:(fun op ->
      if Dialects.Memref.is_load op || Dialects.Memref.is_store op then begin
        let env =
          { columns = Hashtbl.create 8; order = ref []; kernel_dims = kd }
        in
        (* Pre-assign global id columns in dimension order so matrices are
           stable and comparable. *)
        for d = 0 to kd - 1 do
          ignore (column env (Global_id d))
        done;
        match index_exprs env rd op with
        | None -> ()
        | Some (row_exprs, sub, accessor) ->
          let vars = List.rev !(env.order) in
          let n_cols = List.length vars in
          let rows =
            List.map
              (fun e -> Affine_expr.linear_coeffs ~num_dims:n_cols ~num_syms:0 e)
              row_exprs
          in
          if List.for_all Option.is_some rows then begin
            let rows = List.map Option.get rows in
            let matrix = Array.of_list (List.map (fun (d, _, _) -> d) rows) in
            let offsets = Array.of_list (List.map (fun (_, _, c) -> c) rows) in
            let coalescing = classify_access ~kernel_dims:kd vars matrix in
            let iv_cols =
              List.filteri (fun _ v -> match v with Loop_iv _ -> true | _ -> false) vars
              |> List.filter_map (fun v ->
                     let rec go i = function
                       | [] -> None
                       | x :: _ when x = v -> Some i
                       | _ :: rest -> go (i + 1) rest
                     in
                     go 0 vars)
            in
            let temporal_reuse =
              List.exists
                (fun c -> Array.exists (fun row -> row.(c) <> 0) matrix)
                iv_cols
            in
            accesses :=
              {
                acc_op = op;
                acc_subscript = sub;
                accessor;
                kind = (if Dialects.Memref.is_load op then Load else Store);
                vars;
                matrix;
                offsets;
                row_exprs;
                coalescing;
                temporal_reuse;
              }
              :: !accesses
          end
      end);
  List.rev !accesses

let pp_access fmt (a : access) =
  let pp_row fmt row =
    Format.fprintf fmt "[%s]"
      (String.concat " " (Array.to_list (Array.map string_of_int row)))
  in
  Format.fprintf fmt "%s %s: matrix=%a offsets=[%s] coalescing=%s reuse=%b"
    (match a.kind with Load -> "load" | Store -> "store")
    (match a.accessor with Some _ -> "accessor" | None -> "memref")
    (fun fmt m -> Array.iter (pp_row fmt) m)
    a.matrix
    (String.concat " " (Array.to_list (Array.map string_of_int a.offsets)))
    (coalescing_to_string a.coalescing)
    a.temporal_reuse
