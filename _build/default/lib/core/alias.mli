(** Alias analysis (paper Section V-A).

    MLIR-style local alias analysis augmented with SYCL dialect knowledge:
    subscript results alias their accessor's underlying buffer and nothing
    else, distinct allocations and distinct memory spaces never alias, and
    facts proven by the joint host/device analysis (Section VII-B) refine
    accessor-argument relations. *)

open Mlir

(** The root object a pointer-like value refers to. *)
type base =
  | Alloc of Core.op  (** memref.alloca/alloc, gpu.alloc_local, llvm.alloca *)
  | Global of string  (** llvm.addressof @g *)
  | Accessor_arg of Core.value  (** kernel argument of accessor type *)
  | Memref_arg of Core.value  (** other memref-typed argument (e.g. USM) *)
  | Unknown_base

type result =
  | No_alias
  | May_alias
  | Must_alias

val result_to_string : result -> string

(** Root object of a pointer-like value, walking through accessor
    subscripts. *)
val base_of : Core.value -> base

(** Memory space of a pointer-like value, when determinable from its type. *)
val memspace_of : Core.value -> Types.memspace option

(** Alias relation between two pointer-like values. Conservative:
    [May_alias] whenever disjointness or equality cannot be proven. *)
val alias : Core.value -> Core.value -> result

val may_alias : Core.value -> Core.value -> bool
val must_alias : Core.value -> Core.value -> bool

(** {2 Host-provided facts}

    The host-device analysis records argument-level facts as function
    attributes; both directions are consumed transparently by {!alias}. *)

(** Attribute naming pairs of kernel arguments proven disjoint. *)
val noalias_attr : string

val noalias_pairs : Core.op -> (int * int) list
val add_noalias_pair : Core.op -> int -> int -> unit

(** Attribute naming pairs of kernel arguments proven to reference the
    same object (introduced by kernel fusion). *)
val mustalias_attr : string

val mustalias_pairs : Core.op -> (int * int) list
val add_mustalias_pair : Core.op -> int -> int -> unit

(** Are two arguments of the same function proven disjoint / identical? *)
val args_proven_disjoint : Core.value -> Core.value -> bool

val args_proven_same : Core.value -> Core.value -> bool
