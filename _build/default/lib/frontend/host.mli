(** Host-program construction.

    A structural description of a SYCL host program (buffers, command
    groups, USM traffic) lowered to the low-level llvm-dialect host IR a
    C++ compiler would produce — calls against the modeled DPC++ runtime
    ABI ({!Sycl_core.Runtime_abi}). The host raising pass (paper
    Section VII-A) then recovers the structure; round-tripping through
    this low-level form is the flow of Fig. 1's dashed path. *)

open Mlir

(** Sizes: compile-time constants, or values flowing in from outside
    (CLI arguments — the common case in SYCL-Bench). *)
type size =
  | Const of int
  | Arg of int  (** index into the host main arguments *)

type capture =
  | Capture_acc of int * Sycl_core.Sycl_types.access_mode  (** buffer index *)
  | Capture_acc_ranged of
      int * Sycl_core.Sycl_types.access_mode * size list * size list
      (** buffer, mode, range, offset *)
  | Capture_scalar of Attr.t  (** compile-time constant capture *)
  | Capture_scalar_arg of int  (** scalar from a host main argument *)
  | Capture_global of string  (** address of a module-level constant *)
  | Capture_usm of int  (** USM slot *)

type command_group = {
  cg_kernel : string;
  cg_global : size list;
  cg_local : int list option;  (** explicit work-group size, if any *)
  cg_captures : capture list;  (** bind to kernel args 1..n in order *)
}

type stmt =
  | Submit of command_group
  | Repeat of size * stmt list  (** host loop around submissions *)
  | Usm_alloc of int * size * Types.t  (** slot, elements, element type *)
  | Memcpy_h2d of int * int * size  (** usm slot <- host arg *)
  | Memcpy_d2h of int * int * size  (** host arg <- usm slot *)
  | Usm_free of int

type buffer_decl = {
  buf_data_arg : int;  (** host main argument holding the data *)
  buf_dims : size list;
  buf_element : Types.t;
}

type program = {
  host_args : Types.t list;  (** main's argument types *)
  buffers : buffer_decl list;
  globals : (string * Attr.t) list;  (** constant dense globals *)
  body : stmt list;
}

(** Opaque runtime-handle type used in the low-level host IR. *)
val handle : Types.t

(** Emit the program as a [@main] function (plus globals) into a module;
    returns the main func op. *)
val emit : Core.op -> program -> Core.op
