(* Device-kernel construction EDSL: plays the role of Clang + Polygeist in
   Fig. 1 by producing the device IR a SYCL kernel functor lowers to —
   kernels take an item-like argument plus the flattened captures, and use
   SYCL dialect operations for id queries and accessor memory access. *)

open Mlir
module Sycl_types = Sycl_core.Sycl_types
module Sycl_ops = Sycl_core.Sycl_ops

type arg_spec =
  | Acc of int * Sycl_types.access_mode * Types.t
      (** dims, mode, element type *)
  | Scal of Types.t
  | Ptr of Types.t  (** USM device pointer (1-D) *)

let arg_type = function
  | Acc (dims, mode, element) -> Sycl_types.accessor ~mode ~dims element
  | Scal ty -> ty
  | Ptr element -> Types.memref_dyn element

(** Define a kernel function in module [m]. The body receives a builder,
    the item argument and the capture arguments. Use [nd] for nd_item
    kernels (local ids / barriers available in source). *)
let define (m : Core.op) ~(name : string) ~(dims : int) ?(nd = false)
    ~(args : arg_spec list) body =
  let item_ty = if nd then Sycl_types.nd_item dims else Sycl_types.item dims in
  let arg_tys = item_ty :: List.map arg_type args in
  let f =
    Dialects.Func.func m name ~args:arg_tys ~results:[] (fun b vals ->
        match vals with
        | item :: rest ->
          body b ~item ~args:rest;
          Dialects.Func.return b []
        | [] -> assert false)
  in
  Core.set_attr f "sycl.kernel" Attr.Unit;
  f

(* ------------------------------------------------------------------ *)
(* Body-building helpers                                               *)
(* ------------------------------------------------------------------ *)

let idx b i = Dialects.Arith.const_index b i
let fconst b f = Dialects.Arith.const_float b f

(** Global id of the work-item in dimension [d]. *)
let gid b item d =
  let dim = Dialects.Arith.const_int b ~ty:Types.i32 d in
  match item.Core.vty with
  | Sycl_types.Nd_item _ -> Sycl_ops.nd_item_get_global_id b item dim
  | _ -> Sycl_ops.item_get_id b item dim

let lid b item d =
  let dim = Dialects.Arith.const_int b ~ty:Types.i32 d in
  Sycl_ops.nd_item_get_local_id b item dim

(** Global range (problem size) in dimension [d]. *)
let grange b item d =
  let dim = Dialects.Arith.const_int b ~ty:Types.i32 d in
  match item.Core.vty with
  | Sycl_types.Nd_item _ -> Sycl_ops.nd_item_get_global_range b item dim
  | _ -> Sycl_ops.item_get_range b item dim

(** Address of accessor element [acc[indices]] as a 1-D view, using the
    direct (pure) subscript form so identical subscripts CSE and
    loop-invariant ones hoist. *)
let acc_view b acc indices = Sycl_ops.accessor_subscript_multi b acc indices

(** Load accessor element. *)
let acc_get b acc indices =
  let view = acc_view b acc indices in
  Dialects.Memref.load b view [ idx b 0 ]

(** Store accessor element. *)
let acc_set b acc indices value =
  let view = acc_view b acc indices in
  Dialects.Memref.store b value view [ idx b 0 ]

(** Simple counted loop [0, ub) with unit body. *)
let for_up b ub f =
  ignore
    (Dialects.Scf.for_ b ~lb:(idx b 0) ~ub ~step:(idx b 1) (fun bb iv _ ->
         f bb iv;
         []))

(** Loop from [lo] to [hi] step [st] with unit body. *)
let for_range b ~lb ~ub ~step f =
  ignore
    (Dialects.Scf.for_ b ~lb ~ub ~step (fun bb iv _ ->
         f bb iv;
         []))

(** USM pointer element access. *)
let ptr_get b p i = Dialects.Memref.load b p [ i ]
let ptr_set b p i v = Dialects.Memref.store b v p [ i ]

(** Read-modify-write of an accessor element through a single subscript
    (what C++ [acc[i] op= e] lowers to): the view is computed once, so the
    load/store pair is visible to detect-reduction as one location. *)
let acc_update b acc indices f =
  let view = acc_view b acc indices in
  let zero = idx b 0 in
  let old_v = Dialects.Memref.load b view [ zero ] in
  let new_v = f old_v in
  Dialects.Memref.store b new_v view [ zero ]

(* Arithmetic shorthands. *)
let addi = Dialects.Arith.addi
let subi = Dialects.Arith.subi
let muli = Dialects.Arith.muli
let addf = Dialects.Arith.addf
let subf = Dialects.Arith.subf
let mulf = Dialects.Arith.mulf
let divf = Dialects.Arith.divf
