(* Host-program construction: a structural description of a SYCL host
   program (buffers, command groups, USM traffic) lowered to the low-level
   llvm-dialect host IR a C++ compiler would produce — i.e. calls against
   the modeled DPC++ runtime ABI. The host raising pass (Section VII-A)
   then recovers the structure; round-tripping through this low-level form
   is exactly the flow of Fig. 1's dashed path. *)

open Mlir
module Sycl_types = Sycl_core.Sycl_types
module Abi = Sycl_core.Runtime_abi

(** Sizes in the host program: compile-time constants or values flowing in
    from outside (CLI arguments — the common case in SYCL-Bench). *)
type size =
  | Const of int
  | Arg of int  (** index into the host main arguments *)

type capture =
  | Capture_acc of int * Sycl_types.access_mode  (** buffer index *)
  | Capture_acc_ranged of int * Sycl_types.access_mode * size list * size list
      (** buffer, mode, range, offset *)
  | Capture_scalar of Attr.t  (** compile-time constant capture *)
  | Capture_scalar_arg of int  (** scalar from a host main argument *)
  | Capture_global of string  (** address of a module-level global *)
  | Capture_usm of int  (** USM slot *)

type command_group = {
  cg_kernel : string;
  cg_global : size list;
  cg_local : int list option;
  cg_captures : capture list;
}

type stmt =
  | Submit of command_group
  | Repeat of size * stmt list
  | Usm_alloc of int * size * Types.t  (** slot, elements, element type *)
  | Memcpy_h2d of int * int * size  (** usm slot, host arg, elements *)
  | Memcpy_d2h of int * int * size  (** host arg, usm slot, elements *)
  | Usm_free of int

type buffer_decl = {
  buf_data_arg : int;  (** host main argument holding the data *)
  buf_dims : size list;
  buf_element : Types.t;
}

type program = {
  host_args : Types.t list;  (** main's argument types *)
  buffers : buffer_decl list;
  globals : (string * Attr.t) list;  (** constant dense globals *)
  body : stmt list;
}

let handle = Dialects.Llvm.handle

(** Emit the host program as a @main function (plus globals) into [m]. *)
let emit (m : Core.op) (p : program) : Core.op =
  List.iter (fun (name, data) -> ignore (Dialects.Llvm.global m name data)) p.globals;
  Dialects.Func.func m "main" ~args:p.host_args ~results:[] (fun b args ->
      let arg i = List.nth args i in
      let size_v = function
        | Const c -> Dialects.Arith.const_index b c
        | Arg i -> arg i
      in
      (* Queue. *)
      let q = Dialects.Llvm.call1 b Abi.queue_ctor ~operands:[] ~result:handle in
      (* Buffers. *)
      let buffers =
        List.map
          (fun bd ->
            Dialects.Llvm.call1 b Abi.buffer_ctor
              ~operands:(arg bd.buf_data_arg :: List.map size_v bd.buf_dims)
              ~result:handle)
          p.buffers
      in
      let usm_slots : (int, Core.value) Hashtbl.t = Hashtbl.create 4 in
      let rec exec_stmt (b : Builder.t) stmt =
        let size_v s =
          match s with
          | Const c -> Dialects.Arith.const_index b c
          | Arg i -> arg i
        in
        match stmt with
        | Submit cg ->
          let h = Dialects.Llvm.call1 b Abi.submit ~operands:[ q ] ~result:handle in
          List.iteri
            (fun i cap ->
              let v =
                match cap with
                | Capture_acc (bi, mode) ->
                  let mode_c =
                    Dialects.Arith.const_int b (Abi.mode_to_int mode)
                  in
                  let ranged_c = Dialects.Arith.const_int b 0 in
                  Dialects.Llvm.call1 b Abi.accessor_ctor
                    ~operands:[ List.nth buffers bi; h; mode_c; ranged_c ]
                    ~result:handle
                | Capture_acc_ranged (bi, mode, ranges, offsets) ->
                  let mode_c =
                    Dialects.Arith.const_int b (Abi.mode_to_int mode)
                  in
                  let ranged_c = Dialects.Arith.const_int b 1 in
                  Dialects.Llvm.call1 b Abi.accessor_ctor
                    ~operands:
                      ([ List.nth buffers bi; h; mode_c; ranged_c ]
                      @ List.map size_v ranges @ List.map size_v offsets)
                    ~result:handle
                | Capture_scalar a ->
                  let ty =
                    match a with
                    | Attr.Float _ -> Types.f32
                    | Attr.Int _ -> Types.Index
                    | _ -> Types.i64
                  in
                  Dialects.Arith.constant b a ty
                | Capture_scalar_arg i -> arg i
                | Capture_global name -> Dialects.Llvm.addressof b m name
                | Capture_usm slot -> Hashtbl.find usm_slots slot
              in
              let idx_c = Dialects.Arith.const_int b (i + 1) in
              Dialects.Llvm.call0 b Abi.set_captured ~operands:[ h; v; idx_c ])
            cg.cg_captures;
          let dims_c = Dialects.Arith.const_int b (List.length cg.cg_global) in
          let has_local_c =
            Dialects.Arith.const_int b (if cg.cg_local = None then 0 else 1)
          in
          let locals =
            match cg.cg_local with
            | Some ls -> List.map (fun l -> Dialects.Arith.const_index b l) ls
            | None -> []
          in
          Dialects.Llvm.call0 b Abi.set_nd_range
            ~operands:
              (([ h; dims_c ] @ List.map size_v cg.cg_global)
              @ (has_local_c :: locals));
          let pf =
            Core.create_op "llvm.call" ~operands:[ h ] ~result_types:[]
              ~attrs:
                [
                  ("callee", Attr.Symbol Abi.parallel_for);
                  ("kernel", Attr.Symbol cg.cg_kernel);
                ]
          in
          ignore (Builder.insert b pf)
        | Repeat (n, stmts) ->
          let lb = Dialects.Arith.const_index b 0 in
          let step = Dialects.Arith.const_index b 1 in
          ignore
            (Dialects.Scf.for_ b ~lb ~ub:(size_v n) ~step (fun bb _iv _ ->
                 List.iter (exec_stmt bb) stmts;
                 []))
        | Usm_alloc (slot, n, element) ->
          let pv =
            Builder.op1 b "llvm.call"
              ~operands:[ q; size_v n ]
              ~result_type:(Types.memref_dyn element)
              ~attrs:[ ("callee", Attr.Symbol Abi.malloc_device) ]
          in
          Hashtbl.replace usm_slots slot pv
        | Memcpy_h2d (slot, host_arg, n) ->
          Dialects.Llvm.call0 b Abi.memcpy
            ~operands:[ q; Hashtbl.find usm_slots slot; arg host_arg; size_v n ]
        | Memcpy_d2h (host_arg, slot, n) ->
          Dialects.Llvm.call0 b Abi.memcpy
            ~operands:[ q; arg host_arg; Hashtbl.find usm_slots slot; size_v n ]
        | Usm_free slot ->
          Dialects.Llvm.call0 b Abi.free
            ~operands:[ q; Hashtbl.find usm_slots slot ]
      in
      List.iter (exec_stmt b) p.body;
      List.iter
        (fun buf -> Dialects.Llvm.call0 b Abi.buffer_dtor ~operands:[ buf ])
        buffers;
      Dialects.Llvm.call0 b Abi.queue_wait ~operands:[ q ];
      Dialects.Func.return b [])
