lib/frontend/host.ml: Attr Builder Core Dialects Hashtbl List Mlir Sycl_core Types
