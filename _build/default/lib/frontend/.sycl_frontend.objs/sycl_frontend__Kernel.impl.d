lib/frontend/kernel.ml: Attr Core Dialects List Mlir Sycl_core Types
