lib/frontend/host.mli: Attr Core Mlir Sycl_core Types
