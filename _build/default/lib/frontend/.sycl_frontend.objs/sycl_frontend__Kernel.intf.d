lib/frontend/kernel.mli: Builder Core Mlir Sycl_core Types
