(** Device-kernel construction EDSL.

    Plays the role of Clang + Polygeist in the paper's Fig. 1: produces
    the device IR a SYCL kernel functor lowers to. Kernels take an
    item-like argument plus the flattened captures and use SYCL dialect
    operations for work-item queries and accessor memory access. *)

open Mlir
module Sycl_types = Sycl_core.Sycl_types
module Sycl_ops = Sycl_core.Sycl_ops

type arg_spec =
  | Acc of int * Sycl_types.access_mode * Types.t
      (** accessor: dims, mode, element type *)
  | Scal of Types.t  (** by-value scalar capture *)
  | Ptr of Types.t  (** USM device pointer (1-D) *)

val arg_type : arg_spec -> Types.t

(** Define a kernel function in a module; the body receives a builder,
    the item argument and the capture arguments. [nd] selects an nd_item
    kernel (local ids / group barriers available in source). The function
    is tagged with the [sycl.kernel] attribute. *)
val define :
  Core.op ->
  name:string ->
  dims:int ->
  ?nd:bool ->
  args:arg_spec list ->
  (Builder.t -> item:Core.value -> args:Core.value list -> unit) ->
  Core.op

(** {2 Body-building helpers} *)

val idx : Builder.t -> int -> Core.value
val fconst : Builder.t -> float -> Core.value

(** Global id / local id / global range of the work-item in a dimension. *)
val gid : Builder.t -> Core.value -> int -> Core.value

val lid : Builder.t -> Core.value -> int -> Core.value
val grange : Builder.t -> Core.value -> int -> Core.value

(** Address of an accessor element as a 1-D view (direct, pure subscript
    form — CSE-able and hoistable). *)
val acc_view : Builder.t -> Core.value -> Core.value list -> Core.value

val acc_get : Builder.t -> Core.value -> Core.value list -> Core.value
val acc_set : Builder.t -> Core.value -> Core.value list -> Core.value -> unit

(** USM pointer element access. *)
val ptr_get : Builder.t -> Core.value -> Core.value -> Core.value

val ptr_set : Builder.t -> Core.value -> Core.value -> Core.value -> unit

(** Read-modify-write of an accessor element through a single subscript
    (what C++ [acc\[i\] op= e] lowers to) — the shape detect-reduction
    recognizes. *)
val acc_update :
  Builder.t ->
  Core.value ->
  Core.value list ->
  (Core.value -> Core.value) ->
  unit

(** Counted loops with unit bodies. *)
val for_up : Builder.t -> Core.value -> (Builder.t -> Core.value -> unit) -> unit

val for_range :
  Builder.t ->
  lb:Core.value ->
  ub:Core.value ->
  step:Core.value ->
  (Builder.t -> Core.value -> unit) ->
  unit

(** Arithmetic shorthands (aliases of the arith dialect builders). *)
val addi : Builder.t -> Core.value -> Core.value -> Core.value

val subi : Builder.t -> Core.value -> Core.value -> Core.value
val muli : Builder.t -> Core.value -> Core.value -> Core.value
val addf : Builder.t -> Core.value -> Core.value -> Core.value
val subf : Builder.t -> Core.value -> Core.value -> Core.value
val mulf : Builder.t -> Core.value -> Core.value -> Core.value
val divf : Builder.t -> Core.value -> Core.value -> Core.value
