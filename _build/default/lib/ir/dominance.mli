(** Structural dominance for the structured-control-flow subset of the IR
    (regions with single-block bodies executed by nesting, not CFG
    edges). *)

(** Index of an op in its block body, if attached. *)
val index_in_block : Core.op -> int option

(** Lift an op to its ancestor (or itself) whose parent block is the
    given block. *)
val ancestor_in_block : block:Core.block -> Core.op -> Core.op option

(** [properly_dominates a b]: [a] executes strictly before [b] on every
    path (false when [a == b], and false for ops nested inside [a]). *)
val properly_dominates : Core.op -> Core.op -> bool

(** Is the value usable at the given op (defining op dominates it, or it
    is a block argument of an enclosing block)? *)
val value_visible_at : Core.value -> Core.op -> bool

(** Innermost registered Loop op containing the given op. *)
val enclosing_loop : Core.op -> Core.op option

(** Is the block one of the region's blocks or nested below them? *)
val block_in_region : Core.region -> Core.block -> bool

(** Is the value defined outside of the region (loop-invariant w.r.t.
    code inside it)? *)
val defined_outside_region : Core.region -> Core.value -> bool
