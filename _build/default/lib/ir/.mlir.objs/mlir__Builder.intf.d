lib/ir/builder.mli: Attr Core Types
