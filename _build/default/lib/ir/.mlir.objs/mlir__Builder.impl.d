lib/ir/builder.ml: Core Fun
