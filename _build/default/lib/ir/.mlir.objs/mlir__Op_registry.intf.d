lib/ir/op_registry.mli: Attr Core
