lib/ir/verifier.ml: Array Core Dominance List Op_registry Printer Printf Types
