lib/ir/dominance.ml: Core List Op_registry
