lib/ir/rewrite.ml: Array Attr Builder Core List Op_registry Option Types
