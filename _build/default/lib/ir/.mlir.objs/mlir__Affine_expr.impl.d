lib/ir/affine_expr.ml: Array Format Fun List String
