lib/ir/core.ml: Array Attr Hashtbl List Option Types
