lib/ir/pass.mli: Core Format Verifier
