lib/ir/dominance.mli: Core
