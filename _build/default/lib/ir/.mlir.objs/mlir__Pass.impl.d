lib/ir/pass.ml: Core Format Hashtbl List Option Printer Printf Unix Verifier
