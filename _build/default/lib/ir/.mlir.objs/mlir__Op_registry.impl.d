lib/ir/op_registry.ml: Array Attr Core Hashtbl List
