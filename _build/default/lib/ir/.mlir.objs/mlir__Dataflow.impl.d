lib/ir/dataflow.ml: Array Core Hashtbl Int List Op_registry Set
