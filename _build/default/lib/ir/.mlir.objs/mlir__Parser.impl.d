lib/ir/parser.ml: Affine_expr Array Attr Buffer Core Float Hashtbl List Printf String Types
