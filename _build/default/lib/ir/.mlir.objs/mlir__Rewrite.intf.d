lib/ir/rewrite.mli: Attr Builder Core Types
