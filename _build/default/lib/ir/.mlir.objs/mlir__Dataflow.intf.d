lib/ir/dataflow.mli: Core Hashtbl Set
