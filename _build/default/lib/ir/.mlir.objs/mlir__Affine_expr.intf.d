lib/ir/affine_expr.mli: Format
