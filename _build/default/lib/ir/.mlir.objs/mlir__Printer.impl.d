lib/ir/printer.ml: Array Attr Buffer Core Format Hashtbl List Printf String Types
