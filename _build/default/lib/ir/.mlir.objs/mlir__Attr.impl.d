lib/ir/attr.ml: Affine_expr Array Bool Format List Printf String Types
