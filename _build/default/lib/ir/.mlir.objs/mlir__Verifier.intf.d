lib/ir/verifier.mli: Core Types
