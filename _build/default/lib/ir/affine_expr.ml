(* Affine expressions and affine maps, mirroring MLIR's affine machinery.
   Expressions are over dimension variables (d0, d1, ...) and symbol
   variables (s0, s1, ...). *)

type t =
  | Dim of int
  | Sym of int
  | Const of int
  | Add of t * t
  | Mul of t * t
  | Mod of t * t
  | Floordiv of t * t
  | Ceildiv of t * t

let dim i = Dim i
let sym i = Sym i
let const c = Const c

let rec simplify e =
  match e with
  | Dim _ | Sym _ | Const _ -> e
  | Add (a, b) -> (
    match (simplify a, simplify b) with
    | Const 0, b -> b
    | a, Const 0 -> a
    | Const x, Const y -> Const (x + y)
    (* normalize constants to the right *)
    | Const x, b -> Add (b, Const x)
    | Add (a, Const x), Const y -> Add (a, Const (x + y))
    | a, b -> Add (a, b))
  | Mul (a, b) -> (
    match (simplify a, simplify b) with
    | Const 0, _ | _, Const 0 -> Const 0
    | Const 1, b -> b
    | a, Const 1 -> a
    | Const x, Const y -> Const (x * y)
    | Const x, b -> Mul (b, Const x)
    | a, b -> Mul (a, b))
  | Mod (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y when y > 0 ->
      let r = x mod y in
      Const (if r < 0 then r + y else r)
    | a, Const 1 -> Const 0
    | a, b -> Mod (a, b))
  | Floordiv (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y when y > 0 ->
      Const (if x >= 0 then x / y else -(((-x) + y - 1) / y))
    | a, Const 1 -> a
    | a, b -> Floordiv (a, b))
  | Ceildiv (a, b) -> (
    match (simplify a, simplify b) with
    | Const x, Const y when y > 0 ->
      Const (if x >= 0 then (x + y - 1) / y else -((-x) / y))
    | a, Const 1 -> a
    | a, b -> Ceildiv (a, b))

let add a b = simplify (Add (a, b))
let mul a b = simplify (Mul (a, b))
let modulo a b = simplify (Mod (a, b))
let floordiv a b = simplify (Floordiv (a, b))
let ceildiv a b = simplify (Ceildiv (a, b))
let neg a = mul a (Const (-1))
let sub a b = add a (neg b)

(** [eval dims syms e] evaluates [e] with [Dim i -> dims.(i)] and
    [Sym i -> syms.(i)]. *)
let rec eval dims syms e =
  match e with
  | Dim i -> dims.(i)
  | Sym i -> syms.(i)
  | Const c -> c
  | Add (a, b) -> eval dims syms a + eval dims syms b
  | Mul (a, b) -> eval dims syms a * eval dims syms b
  | Mod (a, b) ->
    let bv = eval dims syms b in
    let r = eval dims syms a mod bv in
    if r < 0 then r + abs bv else r
  | Floordiv (a, b) ->
    let x = eval dims syms a and y = eval dims syms b in
    if (x < 0) = (y < 0) || x = 0 then x / y else -(((abs x) + abs y - 1) / abs y)
  | Ceildiv (a, b) ->
    let x = eval dims syms a and y = eval dims syms b in
    if (x < 0) <> (y < 0) || x = 0 then x / y else ((abs x) + abs y - 1) / abs y * (if y < 0 then -1 else 1)

(* Is [e] a pure affine function (no Dim/Sym under Mul of two non-consts,
   no Mod/Floordiv by non-consts)? *)
let rec is_pure_affine e =
  match e with
  | Dim _ | Sym _ | Const _ -> true
  | Add (a, b) -> is_pure_affine a && is_pure_affine b
  | Mul (a, b) -> (
    (is_pure_affine a && is_const b) || (is_const a && is_pure_affine b))
  | Mod (a, b) | Floordiv (a, b) | Ceildiv (a, b) ->
    is_pure_affine a && is_const b

and is_const = function
  | Const _ -> true
  | Add (a, b) | Mul (a, b) | Mod (a, b) | Floordiv (a, b) | Ceildiv (a, b) ->
    is_const a && is_const b
  | Dim _ | Sym _ -> false

(** Decompose a pure affine expression into per-dimension coefficients, a
    per-symbol coefficient vector, and a constant offset. Returns [None] if
    the expression is not linear (e.g. uses mod/floordiv of a variable). *)
let linear_coeffs ~num_dims ~num_syms e =
  let dims = Array.make num_dims 0 in
  let syms = Array.make num_syms 0 in
  let cst = ref 0 in
  let exception Non_linear in
  let rec go scale e =
    match e with
    | Const c -> cst := !cst + (scale * c)
    | Dim i -> dims.(i) <- dims.(i) + scale
    | Sym i -> syms.(i) <- syms.(i) + scale
    | Add (a, b) ->
      go scale a;
      go scale b
    | Mul (a, Const c) | Mul (Const c, a) -> go (scale * c) a
    | Mul _ | Mod _ | Floordiv _ | Ceildiv _ -> raise Non_linear
  in
  match go 1 (simplify e) with
  | () -> Some (dims, syms, !cst)
  | exception Non_linear -> None

let rec pp fmt e =
  let open Format in
  match e with
  | Dim i -> fprintf fmt "d%d" i
  | Sym i -> fprintf fmt "s%d" i
  | Const c -> fprintf fmt "%d" c
  | Add (a, Const c) when c < 0 -> fprintf fmt "%a - %d" pp a (-c)
  | Add (a, Mul (b, Const -1)) -> fprintf fmt "%a - %a" pp a pp_factor b
  | Add (a, b) -> fprintf fmt "%a + %a" pp a pp b
  | Mul (a, b) -> fprintf fmt "%a * %a" pp_factor a pp_factor b
  | Mod (a, b) -> fprintf fmt "%a mod %a" pp_factor a pp_factor b
  | Floordiv (a, b) -> fprintf fmt "%a floordiv %a" pp_factor a pp_factor b
  | Ceildiv (a, b) -> fprintf fmt "%a ceildiv %a" pp_factor a pp_factor b

and pp_factor fmt e =
  match e with
  | Add _ -> Format.fprintf fmt "(%a)" pp e
  | _ -> pp fmt e

let to_string e = Format.asprintf "%a" pp e

(** An affine map [(d0, ..., dn)[s0, ..., sm] -> (e0, ..., ek)]. *)
module Map = struct
  type expr = t

  type t = {
    num_dims : int;
    num_syms : int;
    exprs : expr list;
  }

  let make ~num_dims ~num_syms exprs =
    { num_dims; num_syms; exprs = List.map simplify exprs }

  let identity n = make ~num_dims:n ~num_syms:0 (List.init n dim)
  let constant_map cs = make ~num_dims:0 ~num_syms:0 (List.map const cs)

  let num_results m = List.length m.exprs

  let is_identity m =
    m.num_syms = 0
    && num_results m = m.num_dims
    && List.for_all2 (fun e i -> e = Dim i) m.exprs (List.init m.num_dims Fun.id)

  let eval m ~dims ~syms =
    assert (Array.length dims = m.num_dims);
    assert (Array.length syms = m.num_syms);
    List.map (eval dims syms) m.exprs

  let pp fmt m =
    let open Format in
    let pd i = "d" ^ string_of_int i in
    fprintf fmt "(%s)" (String.concat ", " (List.init m.num_dims pd));
    if m.num_syms > 0 then
      fprintf fmt "[%s]"
        (String.concat ", " (List.init m.num_syms (fun i -> "s" ^ string_of_int i)));
    fprintf fmt " -> (%s)" (String.concat ", " (List.map to_string m.exprs))

  let to_string m = Format.asprintf "%a" pp m
end
