(** A dense forward data-flow framework over the structured-control-flow
    subset of the IR, mirroring the role of MLIR's data-flow analysis
    framework used by the paper's reaching-definition and uniformity
    analyses (Sections V-B, V-C).

    Clients provide a join-semilattice domain and a per-op transfer
    function; region-bearing ops are driven by their registered control
    kind: [Seq] regions execute once in order, [Branch] regions join with
    the incoming state, [Loop] regions iterate to a fixpoint (joined with
    the zero-trip state). *)

module type DOMAIN = sig
  type t

  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Forward (D : DOMAIN) : sig
  (** [transfer op state] must account only for the op itself, not its
      regions — the framework recurses into regions first and feeds the
      combined region state in. *)
  type transfer = Core.op -> D.t -> D.t

  type result = {
    before : (int, D.t) Hashtbl.t;  (** state before each op, by op id *)
    at_end : (int, D.t) Hashtbl.t;  (** state at block ends, by block id *)
  }

  val max_loop_iterations : int

  (** Analyze an op and everything nested in it. [loop_header], when
      given, is applied to the state entering each Loop iteration (e.g.
      to havoc loop-carried variables). *)
  val analyze :
    ?loop_header:(Core.op -> D.t -> D.t) ->
    Core.op ->
    init:D.t ->
    transfer:transfer ->
    result

  (** State observed immediately before an op, if recorded. *)
  val before : result -> Core.op -> D.t option
end

(** The backward counterpart (liveness-style): state flows from block ends
    to block starts; [transfer op s] maps the state after an op to the
    state before it. *)
module Backward (D : DOMAIN) : sig
  type transfer = Core.op -> D.t -> D.t

  type result = {
    after : (int, D.t) Hashtbl.t;  (** state after each op, by op id *)
    at_start : (int, D.t) Hashtbl.t;  (** state at block starts *)
  }

  val max_loop_iterations : int
  val analyze : Core.op -> init:D.t -> transfer:transfer -> result
  val after : result -> Core.op -> D.t option
end

(** Classic liveness of SSA values, as a Backward client. *)
module Liveness : sig
  module Ids : Set.S with type elt = int

  type t

  val analyze : Core.op -> t

  (** Is the value live just after the op executed (some later-executed
      op, including loop back-edges, uses it)? *)
  val live_after : t -> Core.op -> Core.value -> bool
end
