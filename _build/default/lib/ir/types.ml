(* The IR type system. Types form an open (extensible) variant so that
   dialects — in particular the SYCL dialect — can add their own types,
   mirroring MLIR's extensible type system. Structural equality works via
   OCaml's polymorphic equality on extensible-variant payloads. *)

type t = ..

(** Memory spaces, after the SYCL/GPU memory hierarchy (Section II-A of the
    paper): global is shared by all work-items, local by a work-group,
    private by a single work-item. *)
type memspace =
  | Global
  | Local
  | Private

type memref_info = {
  (* [None] encodes a dynamic extent, printed as [?]. *)
  shape : int option list;
  element : t;
  space : memspace;
}

type t +=
  | Integer of int  (** [Integer n] is the [i<n>] type, e.g. i1, i32, i64. *)
  | Index
  | F32
  | F64
  | Memref of memref_info
  | Function of t list * t list
  | None_type

let i1 = Integer 1
let i8 = Integer 8
let i32 = Integer 32
let i64 = Integer 64
let index = Index
let f32 = F32
let f64 = F64

let memref ?(space = Global) shape element = Memref { shape; element; space }

(** 1-D dynamically-sized memref, the shape Polygeist gives to pointers. *)
let memref_dyn ?(space = Global) element =
  Memref { shape = [ None ]; element; space }

let is_integer = function Integer _ -> true | _ -> false
let is_float = function F32 | F64 -> true | _ -> false
let is_index = function Index -> true | _ -> false
let is_int_or_index t = is_integer t || is_index t
let is_memref = function Memref _ -> true | _ -> false

let memspace_to_string = function
  | Global -> "global"
  | Local -> "local"
  | Private -> "private"

let memspace_of_string = function
  | "global" -> Some Global
  | "local" -> Some Local
  | "private" -> Some Private
  | _ -> None

(* Dialects register printers (and the parser registers readers) for their
   types here. A printer returns [None] when the type is not one of its. *)
let printers : (t -> string option) list ref = ref []
let register_printer f = printers := f :: !printers

let rec to_string ty =
  match ty with
  | Integer n -> "i" ^ string_of_int n
  | Index -> "index"
  | F32 -> "f32"
  | F64 -> "f64"
  | None_type -> "none"
  | Function (args, results) ->
    let tuple = function
      | [ t ] -> to_string t
      | ts -> "(" ^ String.concat ", " (List.map to_string ts) ^ ")"
    in
    Printf.sprintf "(%s) -> %s"
      (String.concat ", " (List.map to_string args))
      (tuple results)
  | Memref { shape; element; space } ->
    let dim = function None -> "?" | Some n -> string_of_int n in
    let sp = match space with Global -> "" | s -> ", " ^ memspace_to_string s in
    let dims = List.map (fun d -> dim d ^ " x ") shape in
    Printf.sprintf "memref<%s%s%s>" (String.concat "" dims) (to_string element) sp
  | _ ->
    let rec try_printers = function
      | [] -> "<unknown-type>"
      | f :: rest -> ( match f ty with Some s -> s | None -> try_printers rest)
    in
    try_printers !printers

let pp fmt ty = Format.pp_print_string fmt (to_string ty)
let equal (a : t) (b : t) = a = b
