(* Structural dominance for the structured-control-flow subset of the IR:
   regions contain single-block bodies executed sequentially (scf/affine
   control flow is expressed by region nesting, not CFG edges), so an op
   [a] properly dominates [b] iff, after lifting [b] to the op in [a]'s
   block that (transitively) contains it, [a] appears earlier. *)

let block_of (op : Core.op) = op.parent_block

(** Index of [op] in its block body, or None if detached. *)
let index_in_block (op : Core.op) =
  match op.parent_block with
  | None -> None
  | Some b ->
    let rec go i = function
      | [] -> None
      | o :: _ when o == op -> Some i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 b.Core.body

(** Lift [op] to its ancestor (or itself) whose parent block is [block]. *)
let rec ancestor_in_block ~block (op : Core.op) =
  match op.parent_block with
  | Some b when b == block -> Some op
  | _ -> (
    match Core.parent_op op with
    | None -> None
    | Some p -> ancestor_in_block ~block p)

let properly_dominates (a : Core.op) (b : Core.op) =
  if a == b then false
  else
    match a.parent_block with
    | None -> false
    | Some ablock -> (
      match ancestor_in_block ~block:ablock b with
      | None -> false
      | Some b' ->
        if a == b' then
          (* b is nested inside a: a "dominates" its own nested ops only in
             the sense that a executes first; for SSA visibility a's
             *results* are not visible inside a's regions, so say no. *)
          false
        else
          let ia = index_in_block a and ib = index_in_block b' in
          (match (ia, ib) with
          | Some ia, Some ib -> ia < ib
          | _ -> false))

(** Is the *value* [v] visible (usable) at operation [user]? True when the
    defining op properly dominates [user], when [v]'s defining op is an
    ancestor... no: results of an ancestor are not visible inside it; or
    when [v] is a block argument of a block enclosing [user]. *)
let value_visible_at (v : Core.value) (user : Core.op) =
  match v.Core.vdef with
  | Core.Op_result (def, _) -> properly_dominates def user
  | Core.Block_arg (block, _) ->
    (* Visible if [user] is (transitively) inside [block]. *)
    let rec inside (op : Core.op) =
      match op.parent_block with
      | Some b when b == block -> true
      | Some _ -> (
        match Core.parent_op op with None -> false | Some p -> inside p)
      | None -> false
    in
    inside user

(** The innermost op with a Loop control kind (per the registry) containing
    [op], if any. *)
let rec enclosing_loop (op : Core.op) =
  match Core.parent_op op with
  | None -> None
  | Some p ->
    if (Op_registry.info p).Op_registry.control = Op_registry.Loop then Some p
    else enclosing_loop p

(** Is [block] one of [region]'s blocks or nested below them? *)
let block_in_region (region : Core.region) (block : Core.block) =
  List.exists (fun b -> b == block) region.Core.blocks
  ||
  match Core.parent_op_of_block block with
  | None -> false
  | Some owner -> Core.is_in_region region owner

(** Is [v] defined outside of [region] (i.e. invariant w.r.t. code in it)? *)
let defined_outside_region (region : Core.region) (v : Core.value) =
  match v.Core.vdef with
  | Core.Op_result (def, _) -> not (Core.is_in_region region def)
  | Core.Block_arg (block, _) -> not (block_in_region region block)
