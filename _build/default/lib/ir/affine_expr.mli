(** Affine expressions and maps, mirroring MLIR's affine machinery.
    Expressions range over dimension variables ([d0, d1, ...]) and symbol
    variables ([s0, s1, ...]). *)

type t =
  | Dim of int
  | Sym of int
  | Const of int
  | Add of t * t
  | Mul of t * t
  | Mod of t * t
  | Floordiv of t * t
  | Ceildiv of t * t

val dim : int -> t
val sym : int -> t
val const : int -> t

(** Structural simplification (constant folding, identities, constants
    normalized to the right). Preserves evaluation. *)
val simplify : t -> t

(** Smart constructors (simplify as they build). *)
val add : t -> t -> t

val mul : t -> t -> t
val modulo : t -> t -> t
val floordiv : t -> t -> t
val ceildiv : t -> t -> t
val neg : t -> t
val sub : t -> t -> t

(** [eval dims syms e] with [Dim i -> dims.(i)], [Sym i -> syms.(i)].
    [floordiv] rounds toward negative infinity; [mod] is non-negative for
    positive moduli. *)
val eval : int array -> int array -> t -> int

(** Affine in the polyhedral sense (mul/mod/div only by constants). *)
val is_pure_affine : t -> bool

val is_const : t -> bool

(** Decompose a linear expression into per-dimension coefficients, a
    per-symbol coefficient vector and a constant offset; [None] when not
    linear. *)
val linear_coeffs :
  num_dims:int -> num_syms:int -> t -> (int array * int array * int) option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** An affine map [(d0, ..., dn)\[s0, ..., sm\] -> (e0, ..., ek)]. *)
module Map : sig
  type expr = t

  type t = {
    num_dims : int;
    num_syms : int;
    exprs : expr list;
  }

  val make : num_dims:int -> num_syms:int -> expr list -> t
  val identity : int -> t
  val constant_map : int list -> t
  val num_results : t -> int
  val is_identity : t -> bool
  val eval : t -> dims:int array -> syms:int array -> int list
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end
