(* Operation attributes: compile-time constant data attached to operations,
   mirroring MLIR's attribute system. *)

type t =
  | Unit
  | Bool of bool
  | Int of int  (** Also used for index-typed constants. *)
  | Float of float
  | String of string
  | Type of Types.t
  | Symbol of string  (** A symbol reference, printed as [@name]. *)
  | Array of t list
  | Dense_int of int array
  | Dense_float of float array
  | Affine_map of Affine_expr.Map.t

let rec to_string = function
  | Unit -> "unit"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%h" f
  | String s -> Printf.sprintf "%S" s
  | Type ty -> Types.to_string ty
  | Symbol s -> "@" ^ s
  | Array xs -> "[" ^ String.concat ", " (List.map to_string xs) ^ "]"
  | Dense_int xs ->
    "dense_i<"
    ^ String.concat ", " (Array.to_list (Array.map string_of_int xs))
    ^ ">"
  | Dense_float xs ->
    "dense_f<"
    ^ String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%h") xs))
    ^ ">"
  | Affine_map m -> "affine_map<" ^ Affine_expr.Map.to_string m ^ ">"

let pp fmt a = Format.pp_print_string fmt (to_string a)

let equal (a : t) (b : t) = a = b

(* Accessors returning [None] on kind mismatch. *)
let as_int = function Int i -> Some i | Bool b -> Some (Bool.to_int b) | _ -> None
let as_float = function Float f -> Some f | _ -> None
let as_string = function String s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | Int i -> Some (i <> 0) | _ -> None
let as_type = function Type t -> Some t | _ -> None
let as_symbol = function Symbol s -> Some s | _ -> None
let as_array = function Array a -> Some a | _ -> None
let as_affine_map = function Affine_map m -> Some m | _ -> None

(** Is this attribute a numeric constant usable for folding? *)
let is_numeric = function Int _ | Float _ | Bool _ -> true | _ -> false
