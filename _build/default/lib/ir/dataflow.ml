(* A dense forward data-flow framework over the structured-control-flow
   subset of the IR, mirroring the role of MLIR's data-flow analysis
   framework used by the paper's reaching-definition and uniformity
   analyses (Sections V-B, V-C).

   Clients provide a join-semilattice domain and a per-op transfer
   function. Region-bearing ops are driven by their registered control
   kind: Seq regions execute once in order, Branch regions join, Loop
   regions iterate to a fixpoint (joined with the zero-trip state). *)

module type DOMAIN = sig
  type t

  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Forward (D : DOMAIN) = struct
  type transfer = Core.op -> D.t -> D.t

  type result = {
    (* State observed immediately BEFORE each op (keyed by op id). *)
    before : (int, D.t) Hashtbl.t;
    (* State at the end of each block (keyed by block id). *)
    at_end : (int, D.t) Hashtbl.t;
  }

  let max_loop_iterations = 64

  (** Analyze [top] and everything nested in it starting from [init].

      [transfer op state] must account only for the op itself, not its
      regions — the framework recurses into regions first and feeds the
      combined region state to [transfer]. [loop_header], when given, is
      applied to the state entering each Loop region iteration (e.g. to
      havoc loop-carried variables). *)
  let analyze ?loop_header (top : Core.op) ~(init : D.t) ~(transfer : transfer)
      : result =
    let res = { before = Hashtbl.create 256; at_end = Hashtbl.create 32 } in
    let rec exec_block (b : Core.block) (state : D.t) : D.t =
      let final =
        List.fold_left
          (fun state op ->
            Hashtbl.replace res.before op.Core.oid state;
            exec_op op state)
          state b.Core.body
      in
      Hashtbl.replace res.at_end b.Core.bid final;
      final
    and exec_region (r : Core.region) (state : D.t) : D.t =
      List.fold_left (fun s b -> exec_block b s) state r.Core.blocks
    and exec_op (op : Core.op) (state : D.t) : D.t =
      let info = Op_registry.info op in
      let state_after_regions =
        match info.Op_registry.control with
        | Op_registry.Leaf -> state
        | Op_registry.Seq ->
          Array.fold_left (fun s r -> exec_region r s) state op.Core.regions
        | Op_registry.Branch ->
          (* One of the regions executes; an op may also skip them all
             (scf.if without an else region), so join with the incoming
             state. *)
          Array.fold_left
            (fun acc r -> D.join acc (exec_region r state))
            state op.Core.regions
        | Op_registry.Loop ->
          let body_of s =
            let s = match loop_header with None -> s | Some f -> f op s in
            Array.fold_left (fun s r -> exec_region r s) s op.Core.regions
          in
          let rec fix s n =
            let s' = D.join s (body_of s) in
            if D.equal s s' || n >= max_loop_iterations then s' else fix s' (n + 1)
          in
          fix state 0
      in
      transfer op state_after_regions
    in
    let (_ : D.t) = exec_op top init in
    res

  let before (res : result) (op : Core.op) = Hashtbl.find_opt res.before op.Core.oid
end

(** The backward counterpart: state flows from the end of a block to its
    start (liveness-style). [transfer op s] maps the state {e after} an op
    to the state {e before} it; region-bearing ops recurse per their
    control kind (a Loop's body iterates to a fixpoint; a Branch joins its
    regions with the fall-through state). *)
module Backward (D : DOMAIN) = struct
  type transfer = Core.op -> D.t -> D.t

  type result = {
    (* State observed immediately AFTER each op (keyed by op id). *)
    after : (int, D.t) Hashtbl.t;
    (* State at the start of each block (keyed by block id). *)
    at_start : (int, D.t) Hashtbl.t;
  }

  let max_loop_iterations = 64

  let analyze (top : Core.op) ~(init : D.t) ~(transfer : transfer) : result =
    let res = { after = Hashtbl.create 256; at_start = Hashtbl.create 32 } in
    let rec exec_block (b : Core.block) (state : D.t) : D.t =
      let start =
        List.fold_left
          (fun state op ->
            Hashtbl.replace res.after op.Core.oid state;
            exec_op op state)
          state
          (List.rev b.Core.body)
      in
      Hashtbl.replace res.at_start b.Core.bid start;
      start
    and exec_region (r : Core.region) (state : D.t) : D.t =
      List.fold_left (fun s b -> exec_block b s) state (List.rev r.Core.blocks)
    and exec_op (op : Core.op) (state : D.t) : D.t =
      let info = Op_registry.info op in
      let state_after_regions =
        match info.Op_registry.control with
        | Op_registry.Leaf -> state
        | Op_registry.Seq ->
          Array.fold_left
            (fun s r -> exec_region r s)
            state
            (Array.of_list (List.rev (Array.to_list op.Core.regions)))
        | Op_registry.Branch ->
          Array.fold_left
            (fun acc r -> D.join acc (exec_region r state))
            state op.Core.regions
        | Op_registry.Loop ->
          let body_of s =
            Array.fold_left (fun s r -> exec_region r s) s op.Core.regions
          in
          let rec fix s n =
            let s' = D.join s (body_of s) in
            if D.equal s s' || n >= max_loop_iterations then s' else fix s' (n + 1)
          in
          fix state 0
      in
      transfer op state_after_regions
    in
    let (_ : D.t) = exec_op top init in
    res

  let after (res : result) (op : Core.op) = Hashtbl.find_opt res.after op.Core.oid
end

(** Classic liveness of SSA values, as a Backward client: a value is live
    at a point when some later-executed op (including loop back-edges)
    uses it. *)
module Liveness = struct
  module Ids = Set.Make (Int)

  module B = Backward (struct
    type t = Ids.t

    let join = Ids.union
    let equal = Ids.equal
  end)

  type t = B.result

  let transfer (op : Core.op) (live : Ids.t) =
    let live =
      Array.fold_left (fun l (r : Core.value) -> Ids.remove r.Core.vid l) live
        op.Core.results
    in
    Array.fold_left (fun l (v : Core.value) -> Ids.add v.Core.vid l) live
      op.Core.operands

  let analyze (top : Core.op) : t = B.analyze top ~init:Ids.empty ~transfer

  (** Is [v] live just after [op] executed? *)
  let live_after (t : t) (op : Core.op) (v : Core.value) =
    match B.after t op with
    | Some s -> Ids.mem v.Core.vid s
    | None -> false
end
