(* Typed metrics registry: counters, gauges and fixed-bucket histograms
   with exact percentile extraction, exported through the shared
   {!Mlir.Json} writer.

   Domain-safety follows the simulator's launch-statistics design
   (PR 4's [Cost.merge_launch_stats]): every registry is internally
   mutex-protected so concurrent observation is safe, and for hot paths
   the {!Sharded} wrapper gives each worker domain a private shard that
   the owner merges back *in canonical shard order*, so the merged
   registry is byte-identical no matter how many domains ran or how
   their work interleaved. *)

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

(* A histogram keeps two views of the same samples:
   - fixed display buckets (inclusive upper bounds, cumulative-friendly,
     bounded JSON size no matter how many samples arrive), and
   - an exact value -> count table used for percentile extraction.
   Samples are integers (cycles, bytes, nanoseconds); runs are
   deterministic so the number of *distinct* values stays small and the
   exact table costs O(distinct), not O(samples). *)
type hist = {
  h_bounds : int array;  (** inclusive upper bounds, strictly increasing *)
  h_buckets : int array;  (** length = bounds + 1; last is overflow *)
  h_exact : (int, int) Hashtbl.t;  (** value -> occurrence count *)
  mutable h_count : int;
  mutable h_sum : int;
}

(** Default bucket bounds for cycle-valued latencies: roughly
    logarithmic from 1k to 50M simulated cycles. *)
let latency_bounds =
  [|
    1_000; 2_000; 5_000; 10_000; 20_000; 50_000; 100_000; 200_000;
    500_000; 1_000_000; 2_000_000; 5_000_000; 10_000_000; 20_000_000;
    50_000_000;
  |]

let hist_make bounds =
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Metrics: histogram bounds must be strictly increasing")
    bounds;
  {
    h_bounds = Array.copy bounds;
    h_buckets = Array.make (Array.length bounds + 1) 0;
    h_exact = Hashtbl.create 16;
    h_count = 0;
    h_sum = 0;
  }

let bucket_index (h : hist) v =
  (* First bound >= v; the overflow bucket when none is. *)
  let n = Array.length h.h_bounds in
  let rec go i = if i >= n then n else if v <= h.h_bounds.(i) then i else go (i + 1) in
  go 0

let hist_observe (h : hist) v =
  let i = bucket_index h v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1;
  Hashtbl.replace h.h_exact v
    (1 + Option.value ~default:0 (Hashtbl.find_opt h.h_exact v));
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v

(** Exact nearest-rank percentile over the recorded samples: the
    smallest recorded value whose cumulative count reaches
    [ceil (p/100 * n)]. [None] on an empty histogram. *)
let hist_percentile (h : hist) (p : float) : int option =
  if h.h_count = 0 then None
  else begin
    let rank =
      max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.h_count)))
    in
    let values =
      List.sort compare (Hashtbl.fold (fun v c acc -> (v, c) :: acc) h.h_exact [])
    in
    let rec walk cum = function
      | [] -> None (* unreachable: cumulative count reaches h_count *)
      | (v, c) :: rest -> if cum + c >= rank then Some v else walk (cum + c) rest
    in
    walk 0 values
  end

let hist_min (h : hist) =
  if h.h_count = 0 then None
  else Some (Hashtbl.fold (fun v _ acc -> min v acc) h.h_exact max_int)

let hist_max (h : hist) =
  if h.h_count = 0 then None
  else Some (Hashtbl.fold (fun v _ acc -> max v acc) h.h_exact min_int)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type metric =
  | Counter of int
  | Gauge of int
  | Hist of hist

type registry = {
  r_mutex : Mutex.t;
  r_tbl : (string, metric) Hashtbl.t;
}

let create () = { r_mutex = Mutex.create (); r_tbl = Hashtbl.create 32 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let mismatch name existing wanted =
  invalid_arg
    (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name existing)
       wanted)

(** Add [by] (default 1) to counter [name], registering it at 0 first if
    unseen. Counters are monotonic across a run; merges sum them. *)
let incr (r : registry) ?(by = 1) name =
  Mutex.protect r.r_mutex (fun () ->
      match Hashtbl.find_opt r.r_tbl name with
      | None -> Hashtbl.replace r.r_tbl name (Counter by)
      | Some (Counter v) -> Hashtbl.replace r.r_tbl name (Counter (v + by))
      | Some m -> mismatch name m "counter")

(** Set gauge [name] to [v] (last-write-wins; merges keep the maximum,
    the only order-independent choice for point-in-time readings). *)
let set_gauge (r : registry) name v =
  Mutex.protect r.r_mutex (fun () ->
      match Hashtbl.find_opt r.r_tbl name with
      | None | Some (Gauge _) -> Hashtbl.replace r.r_tbl name (Gauge v)
      | Some m -> mismatch name m "gauge")

(** Record sample [v] into histogram [name]; [bounds] applies only on
    first registration (default {!latency_bounds}). *)
let observe (r : registry) ?(bounds = latency_bounds) name v =
  Mutex.protect r.r_mutex (fun () ->
      let h =
        match Hashtbl.find_opt r.r_tbl name with
        | Some (Hist h) -> h
        | None ->
          let h = hist_make bounds in
          Hashtbl.replace r.r_tbl name (Hist h);
          h
        | Some m -> mismatch name m "histogram"
      in
      hist_observe h v)

let counter_value (r : registry) name =
  Mutex.protect r.r_mutex (fun () ->
      match Hashtbl.find_opt r.r_tbl name with
      | Some (Counter v) -> v
      | _ -> 0)

let gauge_value (r : registry) name =
  Mutex.protect r.r_mutex (fun () ->
      match Hashtbl.find_opt r.r_tbl name with
      | Some (Gauge v) -> Some v
      | _ -> None)

let percentile (r : registry) name p =
  Mutex.protect r.r_mutex (fun () ->
      match Hashtbl.find_opt r.r_tbl name with
      | Some (Hist h) -> hist_percentile h p
      | _ -> None)

let hist_sample_count (r : registry) name =
  Mutex.protect r.r_mutex (fun () ->
      match Hashtbl.find_opt r.r_tbl name with
      | Some (Hist h) -> h.h_count
      | _ -> 0)

let names (r : registry) =
  Mutex.protect r.r_mutex (fun () ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) r.r_tbl []))

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)
(* ------------------------------------------------------------------ *)

let merge_hist ~(into : hist) (src : hist) =
  if into.h_bounds <> src.h_bounds then
    invalid_arg "Metrics: merging histograms with different bucket bounds";
  Array.iteri (fun i c -> into.h_buckets.(i) <- into.h_buckets.(i) + c) src.h_buckets;
  Hashtbl.iter
    (fun v c ->
      Hashtbl.replace into.h_exact v
        (c + Option.value ~default:0 (Hashtbl.find_opt into.h_exact v)))
    src.h_exact;
  into.h_count <- into.h_count + src.h_count;
  into.h_sum <- into.h_sum + src.h_sum

let copy_hist (h : hist) =
  {
    h_bounds = Array.copy h.h_bounds;
    h_buckets = Array.copy h.h_buckets;
    h_exact = Hashtbl.copy h.h_exact;
    h_count = h.h_count;
    h_sum = h.h_sum;
  }

(** Fold [src] into [into]: counters sum, gauges keep the maximum,
    histograms merge sample-by-sample. Commutative and associative, so
    any canonical merge order yields the same registry. *)
let merge ~(into : registry) (src : registry) =
  let entries =
    Mutex.protect src.r_mutex (fun () ->
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) src.r_tbl []))
  in
  Mutex.protect into.r_mutex (fun () ->
      List.iter
        (fun (name, m) ->
          match (Hashtbl.find_opt into.r_tbl name, m) with
          | None, Counter v -> Hashtbl.replace into.r_tbl name (Counter v)
          | None, Gauge v -> Hashtbl.replace into.r_tbl name (Gauge v)
          | None, Hist h -> Hashtbl.replace into.r_tbl name (Hist (copy_hist h))
          | Some (Counter a), Counter b ->
            Hashtbl.replace into.r_tbl name (Counter (a + b))
          | Some (Gauge a), Gauge b ->
            Hashtbl.replace into.r_tbl name (Gauge (max a b))
          | Some (Hist a), Hist b -> merge_hist ~into:a b
          | Some existing, _ -> mismatch name existing (kind_name m))
        entries)

(** Per-domain shards merged in canonical (index) order — the
    [Cost.merge_launch_stats] pattern: workers write only their own
    shard, so no locks contend on the hot path, and the owner folds
    shards 0..n-1 after joining, making the result independent of
    execution interleaving. *)
module Sharded = struct
  type t = registry array

  let fresh_registry = create

  let create n : t =
    if n < 1 then invalid_arg "Metrics.Sharded.create: need at least one shard";
    Array.init n (fun _ -> fresh_registry ())

  let shard (t : t) i = t.(i)
  let shards (t : t) = Array.length t

  (** Fold every shard into [into], in shard-index order. *)
  let merge_into ~(into : registry) (t : t) =
    Array.iter (fun s -> merge ~into s) t

  (** The merged registry, leaving the shards untouched. *)
  let merged (t : t) =
    let into = fresh_registry () in
    merge_into ~into t;
    into
end

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let json_of_metric (m : metric) : Mlir.Json.t =
  let open Mlir.Json in
  match m with
  | Counter v -> Obj [ ("type", String "counter"); ("value", Int v) ]
  | Gauge v -> Obj [ ("type", String "gauge"); ("value", Int v) ]
  | Hist h ->
    let opt_int = function Some v -> Int v | None -> Null in
    let pct p = opt_int (hist_percentile h p) in
    let buckets =
      List.concat
        [
          Array.to_list
            (Array.mapi
               (fun i c ->
                 Obj [ ("le", Int h.h_bounds.(i)); ("count", Int c) ])
               (Array.sub h.h_buckets 0 (Array.length h.h_bounds)));
          [
            Obj
              [
                ("le", Null);
                ("count", Int h.h_buckets.(Array.length h.h_bounds));
              ];
          ];
        ]
    in
    Obj
      [
        ("type", String "histogram");
        ("count", Int h.h_count);
        ("sum", Int h.h_sum);
        ("min", opt_int (hist_min h));
        ("max", opt_int (hist_max h));
        ("p50", pct 50.0);
        ("p90", pct 90.0);
        ("p99", pct 99.0);
        ("buckets", List buckets);
      ]

(** The whole registry as one JSON object, metric names sorted so the
    export is deterministic (difftest compares these byte-for-byte). *)
let to_json (r : registry) : Mlir.Json.t =
  let entries =
    Mutex.protect r.r_mutex (fun () ->
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.r_tbl []))
  in
  Mlir.Json.Obj (List.map (fun (k, m) -> (k, json_of_metric m)) entries)
