(* Span-based tracing with a single process-wide sink.

   Spans from the three layers of the stack land in one timeline with a
   distinct lane (Chrome-trace process) per layer:

     pid 1  compile       parse + pass pipeline (Instrument timing tree)
     pid 2  host runtime  queue submits, DAG waits, transfers, JIT, launches
     pid 3  device        kernel execution (work-groups over CUs)

   so a single chrome://tracing load shows parse -> passes -> queue ops
   -> kernel cycles end to end. Time unit is microseconds; compile-side
   spans record real wall time, simulator-side spans use the PR 3
   convention of one simulated cycle = one microsecond, placed after the
   compile spans on the shared timeline. *)

type lane =
  | Compile
  | Host
  | Device

let pid_of_lane = function Compile -> 1 | Host -> 2 | Device -> 3

let lane_name = function
  | Compile -> "compile"
  | Host -> "host runtime"
  | Device -> "device"

type span = {
  sp_name : string;
  sp_cat : string;
  sp_lane : lane;
  sp_ts : int;  (** microseconds *)
  sp_dur : int;  (** microseconds *)
  sp_args : (string * int) list;
}

(** A Chrome counter sample ([ph:"C"]): named series values at one
    instant, rendered by the trace viewer as a stacked area chart. Used
    for the hotspot profile — per-source-line attributed cycles plotted
    on the device lane. *)
type counter = {
  ct_name : string;
  ct_lane : lane;
  ct_ts : int;  (** microseconds *)
  ct_series : (string * int) list;  (** series name -> sampled value *)
}

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

type sink = {
  sk_mutex : Mutex.t;
  mutable sk_rev : span list;  (** newest first *)
  mutable sk_counters_rev : counter list;  (** newest first *)
}

let make_sink () =
  { sk_mutex = Mutex.create (); sk_rev = []; sk_counters_rev = [] }

(** The process-wide sink the command-line tools record into; tests use
    private {!make_sink} sinks. *)
let global : sink = make_sink ()

let reset (sk : sink) =
  Mutex.protect sk.sk_mutex (fun () ->
      sk.sk_rev <- [];
      sk.sk_counters_rev <- [])

let add (sk : sink) (sp : span) =
  Mutex.protect sk.sk_mutex (fun () -> sk.sk_rev <- sp :: sk.sk_rev)

let add_all (sk : sink) (sps : span list) =
  Mutex.protect sk.sk_mutex (fun () ->
      List.iter (fun sp -> sk.sk_rev <- sp :: sk.sk_rev) sps)

let add_counter (sk : sink) (ct : counter) =
  Mutex.protect sk.sk_mutex (fun () ->
      sk.sk_counters_rev <- ct :: sk.sk_counters_rev)

(** Counters in chronological order (ties by lane then name). *)
let counters (sk : sink) =
  let cts = Mutex.protect sk.sk_mutex (fun () -> List.rev sk.sk_counters_rev) in
  List.stable_sort
    (fun a b ->
      match compare a.ct_ts b.ct_ts with
      | 0 -> compare (pid_of_lane a.ct_lane, a.ct_name) (pid_of_lane b.ct_lane, b.ct_name)
      | c -> c)
    cts

(** Spans in chronological order (ties broken by lane then name, so the
    export is deterministic). *)
let spans (sk : sink) =
  let sps = Mutex.protect sk.sk_mutex (fun () -> List.rev sk.sk_rev) in
  List.stable_sort
    (fun a b ->
      match compare a.sp_ts b.sp_ts with
      | 0 -> compare (pid_of_lane a.sp_lane, a.sp_name) (pid_of_lane b.sp_lane, b.sp_name)
      | c -> c)
    sps

(** End of the recorded timeline: max of ts+dur over all spans (0 when
    empty). Runtime spans are placed at this offset so the merged trace
    reads compile-then-execute. *)
let span_end (sk : sink) =
  Mutex.protect sk.sk_mutex (fun () ->
      List.fold_left (fun acc sp -> max acc (sp.sp_ts + sp.sp_dur)) 0 sk.sk_rev)

(* ------------------------------------------------------------------ *)
(* Compile-side spans from the Instrument timing tree                  *)
(* ------------------------------------------------------------------ *)

let us_of_wall w = int_of_float (Float.round (w *. 1e6))

(** Flatten a pass-timing tree into Compile-lane spans starting at
    [base]: the root covers [base, base + wall), children are laid out
    sequentially inside their parent (the pass manager runs them in
    order, so sequential placement reflects execution). *)
let of_timing ?(base = 0) ?(cat = "pass") ?(root_name = "compile")
    (root : Mlir.Instrument.timing_node) : span list =
  let acc = ref [] in
  let emit name ts dur args =
    if dur > 0 then
      acc :=
        { sp_name = name; sp_cat = cat; sp_lane = Compile; sp_ts = ts;
          sp_dur = dur; sp_args = args }
        :: !acc
  in
  let rec walk (n : Mlir.Instrument.timing_node) name ts =
    emit name ts
      (us_of_wall n.Mlir.Instrument.t_wall)
      (if n.Mlir.Instrument.t_count > 1 then
         [ ("count", n.Mlir.Instrument.t_count) ]
       else []);
    let cursor = ref ts in
    List.iter
      (fun (c : Mlir.Instrument.timing_node) ->
        walk c c.Mlir.Instrument.t_name !cursor;
        cursor := !cursor + us_of_wall c.Mlir.Instrument.t_wall)
      n.Mlir.Instrument.t_children
  in
  walk root root_name base;
  List.rev !acc

(** Record a timing tree into [sk] at the current end of its timeline. *)
let add_timing ?(root_name = "compile") (sk : sink)
    (root : Mlir.Instrument.timing_node) =
  add_all sk (of_timing ~base:(span_end sk) ~root_name root)

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)
(* ------------------------------------------------------------------ *)

(* Within the host-runtime lane, transfers get their own thread row
   (mirroring Sim.Profile's layout); every other lane is single-row. *)
let tid_of_span (sp : span) =
  match (sp.sp_lane, sp.sp_cat) with Host, "transfer" -> 2 | _ -> 1

(** The merged trace as a Chrome-trace JSON document: process metadata
    naming the three lanes, thread metadata for the transfer row, one
    complete event ([ph:"X"]) per span and one counter event ([ph:"C"])
    per sample. *)
let to_json ?(counters = []) (sps : span list) : Mlir.Json.t =
  let open Mlir.Json in
  let process_meta lane =
    Obj
      [
        ("name", String "process_name");
        ("ph", String "M");
        ("pid", Int (pid_of_lane lane));
        ("args", Obj [ ("name", String (lane_name lane)) ]);
      ]
  in
  let thread_meta ~pid ~tid name =
    Obj
      [
        ("name", String "thread_name");
        ("ph", String "M");
        ("pid", Int pid);
        ("tid", Int tid);
        ("args", Obj [ ("name", String name) ]);
      ]
  in
  let ev (sp : span) =
    Obj
      [
        ("name", String sp.sp_name);
        ("cat", String sp.sp_cat);
        ("ph", String "X");
        ("ts", Int sp.sp_ts);
        ("dur", Int sp.sp_dur);
        ("pid", Int (pid_of_lane sp.sp_lane));
        ("tid", Int (tid_of_span sp));
        ("args", Obj (List.map (fun (k, v) -> (k, Int v)) sp.sp_args));
      ]
  in
  let ctr (ct : counter) =
    Obj
      [
        ("name", String ct.ct_name);
        ("ph", String "C");
        ("ts", Int ct.ct_ts);
        ("pid", Int (pid_of_lane ct.ct_lane));
        ("tid", Int 1);
        ("args", Obj (List.map (fun (k, v) -> (k, Int v)) ct.ct_series));
      ]
  in
  let meta =
    List.map process_meta [ Compile; Host; Device ]
    @ [
        thread_meta ~pid:(pid_of_lane Host) ~tid:1 "runtime";
        thread_meta ~pid:(pid_of_lane Host) ~tid:2 "transfers";
      ]
  in
  Obj
    [
      ("traceEvents", List (meta @ List.map ev sps @ List.map ctr counters));
      ("displayTimeUnit", String "ms");
    ]

let export (sk : sink) : Mlir.Json.t =
  to_json ~counters:(counters sk) (spans sk)
