(* One-stop registration of all builtin dialects. Idempotent. *)

let init () =
  Arith.init ();
  Memref.init ();
  Scf.init ();
  Affine_ops.init ();
  Func.init ();
  Gpu.init ();
  Llvm.init ();
  Cf.init ()
