(* Structured control flow: scf.for (with iter_args), scf.if and
   scf.yield, following MLIR's scf dialect. *)

open Mlir

(** [for_ b ~lb ~ub ~step ~iter_args body] builds an scf.for. [body] is
    called with a builder positioned inside the loop, the induction
    variable and the region iter_args, and must return the yielded values
    (one per iter_arg). Returns the loop op (its results are the final
    iter values). *)
let for_ b ~lb ~ub ~step ?(iter_args = []) body =
  let arg_types = Types.Index :: List.map (fun v -> v.Core.vty) iter_args in
  let region = Core.region_with_block ~args:arg_types () in
  let entry = Core.entry_block region in
  let iv = Core.block_arg entry 0 in
  let args = List.tl (Core.block_args entry) in
  (* The nested builder inherits the enclosing default location, so
     region scaffolding (the yield, anything the callback builds without
     overriding) is located like the loop itself. *)
  let bb = Builder.at_end entry in
  Builder.set_default_loc bb (Builder.default_loc b);
  let yielded = body bb iv args in
  Builder.op0 bb "scf.yield" ~operands:yielded;
  Builder.op b "scf.for"
    ~operands:([ lb; ub; step ] @ iter_args)
    ~result_types:(List.map (fun v -> v.Core.vty) iter_args)
    ~regions:[ region ]

(** [if_ b cond ~result_types ~then_ ~else_] builds an scf.if whose
    branches must yield values of [result_types]. *)
let if_ b cond ?(result_types = []) ~then_ ?else_ () =
  let mk body =
    let region = Core.region_with_block () in
    let bb = Builder.at_end (Core.entry_block region) in
    Builder.set_default_loc bb (Builder.default_loc b);
    let yielded = body bb in
    Builder.op0 bb "scf.yield" ~operands:yielded;
    region
  in
  let regions =
    match else_ with
    | Some e -> [ mk then_; mk e ]
    | None -> [ mk then_ ]
  in
  Builder.op b "scf.if" ~operands:[ cond ] ~result_types ~regions

let is_for op = op.Core.name = "scf.for"
let is_if op = op.Core.name = "scf.if"
let is_yield op = op.Core.name = "scf.yield"

let for_lb op = Core.operand op 0
let for_ub op = Core.operand op 1
let for_step op = Core.operand op 2
let for_iter_inits op = List.filteri (fun i _ -> i >= 3) (Core.operands op)

let for_body op = Core.entry_block op.Core.regions.(0)
let for_iv op = Core.block_arg (for_body op) 0
let for_iter_args op = List.tl (Core.block_args (for_body op))

let body_terminator block =
  match List.rev block.Core.body with
  | t :: _ -> t
  | [] -> invalid_arg "body_terminator: empty block"

let init_done = ref false

let init () =
  if not !init_done then begin
    init_done := true;
    Op_registry.register "scf.for"
      {
        Op_registry.default_info with
        Op_registry.control = Op_registry.Loop;
        (* Effects are those of the body; None = derived by analyses
           recursing into the region. The op itself reads nothing. *)
        Op_registry.memory_effects = (fun _ -> Some []);
        Op_registry.verify =
          (fun op ->
            let ( let* ) = Verifier.( let* ) in
            let* () = Verifier.check_num_regions op 1 in
            let n_iter = Core.num_operands op - 3 in
            if n_iter < 0 then Error "scf.for needs lb, ub, step"
            else if Core.num_results op <> n_iter then
              Error "scf.for results must match iter_args"
            else if
              List.length (Core.block_args (for_body op)) <> n_iter + 1
            then Error "scf.for body must take iv plus iter_args"
            else Ok ());
      };
    Op_registry.register "scf.if"
      {
        Op_registry.default_info with
        Op_registry.control = Op_registry.Branch;
        Op_registry.memory_effects = (fun _ -> Some []);
        Op_registry.verify =
          (fun op ->
            if Core.num_regions op < 1 || Core.num_regions op > 2 then
              Error "scf.if takes one or two regions"
            else if Core.num_results op > 0 && Core.num_regions op <> 2 then
              Error "scf.if with results requires an else region"
            else Ok ());
      };
    Op_registry.register "scf.yield"
      {
        Op_registry.default_info with
        Op_registry.terminator = true;
        Op_registry.memory_effects = (fun _ -> Some []);
      }
  end
