(* Unstructured control flow: cf.br and cf.cond_br terminators carrying
   block successors, following MLIR's cf dialect. These are what the
   random IR generator uses to exercise multi-block CFG printing and
   parsing (block labels, forward successor references). *)

open Mlir

(** [br b ~dest ~args] builds an unconditional branch. [args] are the
    values forwarded to [dest]'s block arguments. *)
let br b ~dest ?(args = []) () =
  Builder.op0 b "cf.br" ~operands:args ~successors:[ dest ]

(** [cond_br b cond ~then_ ~else_] branches on an i1 condition. Branch
    arguments are not modelled separately per edge: [args] go to
    whichever successor is taken (both must agree on signature). *)
let cond_br b cond ~then_ ~else_ ?(args = []) () =
  Builder.op0 b "cf.cond_br" ~operands:(cond :: args)
    ~successors:[ then_; else_ ]

let is_br op = op.Core.name = "cf.br"
let is_cond_br op = op.Core.name = "cf.cond_br"

let init_done = ref false

let init () =
  if not !init_done then begin
    init_done := true;
    Op_registry.register "cf.br"
      {
        Op_registry.default_info with
        Op_registry.terminator = true;
        Op_registry.memory_effects = (fun _ -> Some []);
        Op_registry.verify =
          (fun op ->
            if Core.num_successors op <> 1 then
              Error "cf.br takes exactly one successor"
            else Ok ());
      };
    Op_registry.register "cf.cond_br"
      {
        Op_registry.default_info with
        Op_registry.terminator = true;
        Op_registry.memory_effects = (fun _ -> Some []);
        Op_registry.verify =
          (fun op ->
            let ( let* ) = Verifier.( let* ) in
            let* () =
              Verifier.check_operand_type op 0
                (fun ty -> ty = Types.Integer 1)
                ~expected:"i1"
            in
            if Core.num_successors op <> 2 then
              Error "cf.cond_br takes exactly two successors"
            else Ok ());
      }
  end
