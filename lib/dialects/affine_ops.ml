(* The affine dialect subset: affine.for with map-based bounds and
   iter_args, affine.load/store, affine.apply and affine.yield. *)

open Mlir

type bound =
  | Const of int
  | Value of Core.value  (** bound given by an SSA index value (identity map) *)

let bound_map = function
  | Const c -> (Affine_expr.Map.constant_map [ c ], [])
  | Value v -> (Affine_expr.Map.identity 1, [ v ])

(** [for_ b ~lb ~ub ~step ~iter_args body]: like {!Scf.for_} but as an
    affine.for with map bounds. *)
let for_ b ~lb ~ub ?(step = 1) ?(iter_args = []) body =
  let lb_map, lb_ops = bound_map lb in
  let ub_map, ub_ops = bound_map ub in
  let arg_types = Types.Index :: List.map (fun v -> v.Core.vty) iter_args in
  let region = Core.region_with_block ~args:arg_types () in
  let entry = Core.entry_block region in
  let iv = Core.block_arg entry 0 in
  let args = List.tl (Core.block_args entry) in
  let bb = Builder.at_end entry in
  Builder.set_default_loc bb (Builder.default_loc b);
  let yielded = body bb iv args in
  Builder.op0 bb "affine.yield" ~operands:yielded;
  Builder.op b "affine.for"
    ~operands:(lb_ops @ ub_ops @ iter_args)
    ~result_types:(List.map (fun v -> v.Core.vty) iter_args)
    ~attrs:
      [
        ("lb_map", Attr.Affine_map lb_map);
        ("ub_map", Attr.Affine_map ub_map);
        ("step", Attr.Int step);
        ("lb_count", Attr.Int (List.length lb_ops));
      ]
    ~regions:[ region ]

let is_for op = op.Core.name = "affine.for"
let is_yield op = op.Core.name = "affine.yield"

let for_body op = Core.entry_block op.Core.regions.(0)
let for_iv op = Core.block_arg (for_body op) 0
let for_iter_args op = List.tl (Core.block_args (for_body op))
let for_step op = Option.value ~default:1 (Core.attr_int op "step")

let for_lb_map op =
  match Core.attr op "lb_map" with
  | Some (Attr.Affine_map m) -> m
  | _ -> invalid_arg "affine.for: missing lb_map"

let for_ub_map op =
  match Core.attr op "ub_map" with
  | Some (Attr.Affine_map m) -> m
  | _ -> invalid_arg "affine.for: missing ub_map"

let for_lb_operands op =
  let n = Option.value ~default:0 (Core.attr_int op "lb_count") in
  List.filteri (fun i _ -> i < n) (Core.operands op)

let for_ub_operands op =
  let n = Option.value ~default:0 (Core.attr_int op "lb_count") in
  let n_iter = List.length (for_iter_args op) in
  let total = Core.num_operands op in
  List.filteri (fun i _ -> i >= n && i < total - n_iter) (Core.operands op)

let for_iter_inits op =
  let n_iter = List.length (for_iter_args op) in
  let total = Core.num_operands op in
  List.filteri (fun i _ -> i >= total - n_iter) (Core.operands op)

(** Constant trip bounds, when both maps are constant single-result. *)
let for_const_bounds op =
  match ((for_lb_map op).Affine_expr.Map.exprs, (for_ub_map op).Affine_expr.Map.exprs) with
  | [ Affine_expr.Const lb ], [ Affine_expr.Const ub ] -> Some (lb, ub)
  | _ -> None

(** affine.load %mem[map(operands)] *)
let load b mem map operands =
  Builder.op1 b "affine.load"
    ~operands:(mem :: operands)
    ~result_type:(Memref.element_type mem)
    ~attrs:[ ("map", Attr.Affine_map map) ]

let store b value mem map operands =
  Builder.op0 b "affine.store"
    ~operands:(value :: mem :: operands)
    ~attrs:[ ("map", Attr.Affine_map map) ]

let apply b map operands =
  Builder.op1 b "affine.apply" ~operands ~result_type:Types.Index
    ~attrs:[ ("map", Attr.Affine_map map) ]

let access_map op =
  match Core.attr op "map" with
  | Some (Attr.Affine_map m) -> m
  | _ -> invalid_arg "affine access op: missing map"

let init_done = ref false

let init () =
  if not !init_done then begin
    init_done := true;
    Op_registry.register "affine.for"
      {
        Op_registry.default_info with
        Op_registry.control = Op_registry.Loop;
        Op_registry.memory_effects = (fun _ -> Some []);
        Op_registry.verify =
          (fun op ->
            let ( let* ) = Verifier.( let* ) in
            let* () = Verifier.check_num_regions op 1 in
            if Core.num_results op <> List.length (for_iter_args op) then
              Error "affine.for results must match iter_args"
            else Ok ());
      };
    Op_registry.register "affine.yield"
      {
        Op_registry.default_info with
        Op_registry.terminator = true;
        Op_registry.memory_effects = (fun _ -> Some []);
      };
    Op_registry.register "affine.load"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ -> Some [ (Op_registry.Read, Op_registry.On_operand 0) ]);
      };
    Op_registry.register "affine.store"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ -> Some [ (Op_registry.Write, Op_registry.On_operand 1) ]);
      };
    Op_registry.register "affine.apply"
      {
        Op_registry.pure_info with
        Op_registry.fold =
          (fun op consts ->
            if Array.for_all Option.is_some consts then
              let vals =
                Array.map
                  (fun c -> match c with Some (Attr.Int i) -> i | _ -> min_int)
                  consts
              in
              if Array.exists (fun v -> v = min_int) vals then None
              else
                let m = access_map op in
                match
                  Affine_expr.Map.eval m ~dims:vals ~syms:[||]
                with
                | [ r ] -> Some (Op_registry.Fold_attrs [ Attr.Int r ])
                | _ -> None
            else None);
      }
  end
