(* The gpu dialect subset: work-group barriers and work-group local memory
   allocation, used by the loop-internalization optimization
   (Section VI-C of the paper). *)

open Mlir

let barrier b = Builder.op0 b "gpu.barrier" ~operands:[]

let is_barrier op = op.Core.name = "gpu.barrier"

let is_alloc_local op = op.Core.name = "gpu.alloc_local"

(* Slots key the simulator's per-work-group local-allocation table, so
   they need only be unique within a kernel. Number them from the IR
   enclosing the insertion point (max existing slot + 1) rather than a
   process-global counter, so compiling the same module twice yields
   byte-identical IR. *)
let fresh_slot b =
  let max_slot = ref 0 in
  let note o =
    if is_alloc_local o then
      match Core.attr_int o "slot" with
      | Some s when s > !max_slot -> max_slot := s
      | _ -> ()
  in
  let scan_op op = Core.walk op ~f:note in
  let scan_block (blk : Core.block) = List.iter scan_op blk.Core.body in
  let scan_region (r : Core.region) = List.iter scan_block r.Core.blocks in
  (* Climb to the outermost attached op/block/region; detached kernels
     under construction restart at 1, which is fine — slots never need
     to be unique across kernels. *)
  let rec root_of_op (op : Core.op) =
    match op.Core.parent_block with
    | None -> scan_op op
    | Some blk -> root_of_block blk
  and root_of_block (blk : Core.block) =
    match blk.Core.parent_region with
    | None -> scan_block blk
    | Some r -> (
      match r.Core.parent_op with
      | None -> scan_region r
      | Some op -> root_of_op op)
  in
  (match Builder.insertion_block b with
  | None -> ()
  | Some blk -> root_of_block blk);
  !max_slot + 1

(** Allocate work-group local memory. One allocation is shared by all
    work-items of a work-group (the simulator keys the allocation on the
    [slot] attribute). *)
let alloc_local b shape element =
  let slot = fresh_slot b in
  Builder.op1 b "gpu.alloc_local" ~operands:[]
    ~result_type:
      (Types.memref ~space:Types.Local (List.map (fun d -> Some d) shape) element)
    ~attrs:[ ("slot", Attr.Int slot) ]

let init_done = ref false

let init () =
  if not !init_done then begin
    init_done := true;
    (* The barrier synchronizes memory: treat as read+write anywhere so no
       memory operation is moved across it. *)
    Op_registry.register "gpu.barrier"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ ->
            Some
              [
                (Op_registry.Read, Op_registry.Anywhere);
                (Op_registry.Write, Op_registry.Anywhere);
              ]);
      };
    Op_registry.register "gpu.alloc_local"
      {
        Op_registry.default_info with
        Op_registry.memory_effects =
          (fun _ -> Some [ (Op_registry.Alloc, Op_registry.On_result 0) ]);
      }
  end
