(* Oracle (c) of the differential harness: simulator differential.

   A workload compiled with the full SYCL-MLIR pipeline must compute the
   same buffers as the same workload with no device optimization at all
   (host raising only — the minimum for the runtime to execute the
   module). Outputs are compared against the workload's own ground-truth
   validator and pairwise between the two runs, with the suite's
   tolerance (reduction rewrites reassociate floating-point sums, so
   bit-exact equality is not the contract). On divergence, a greedy
   pass bisection re-runs growing pipeline prefixes on fresh modules and
   names the first pass whose output diverges. *)

open Mlir

type divergence = {
  d_workload : string;
  d_detail : string;
  d_first_bad_pass : string option;  (** named by the bisection shrinker *)
}

let divergence_to_string d =
  Printf.sprintf "[differential] %s: %s%s" d.d_workload d.d_detail
    (match d.d_first_bad_pass with
    | Some p -> Printf.sprintf " (first divergent pass: %s)" p
    | None -> "")

(* The pipeline under test, flattened the way Driver.compile runs it. *)
let full_pipeline () =
  let cfg = Common.Driver.config Common.Driver.Sycl_mlir in
  Common.Driver.host_pipeline cfg @ Common.Driver.device_pipeline cfg

(* Host raising alone: the unoptimized reference. It is the first pass of
   every host pipeline and mandatory for Host_interp to run the module. *)
let reference_pipeline () =
  match full_pipeline () with
  | raising :: _ -> [ raising ]
  | [] -> []

(** Run [w] compiled with [passes]; returns the per-argument buffer
    snapshots (floats; None for scalar args) and the ground-truth
    verdict. *)
let run_with (w : Common.workload) (passes : Pass.t list) =
  let m = w.Common.w_module () in
  ignore (Pass.run_pipeline ~verify_each:false passes m);
  let args, validate = w.Common.w_data () in
  ignore (Common.Host_interp.run ~module_op:m args);
  let snapshot (hv : Common.Host_interp.hv) =
    match hv with
    | Common.Host_interp.Scalar (Common.Interp.Mem view) ->
      Some
        (Array.map Common.Memory.cell_to_float
           view.Common.Memory.base.Common.Memory.data)
    | _ -> None
  in
  (List.map snapshot args, validate ())

let buffers_agree ?(tol = 1e-3) a b =
  match (a, b) with
  | Some a, Some b ->
    Array.length a = Array.length b
    && Array.for_all2 (fun x y -> Common.approx_eq ~tol x y) a b
  | None, None -> true
  | _ -> false

(** Check one workload: reference (raising only) vs. full SYCL-MLIR
    pipeline, both against ground truth and against each other. *)
let check ?(tol = 1e-3) (w : Common.workload) : (unit, divergence) result =
  let fail detail =
    let first_bad_pass =
      Difftest.bisect_passes ~passes:(full_pipeline ()) ~base:1
        ~fresh:(fun () -> w.Common.w_module ())
        ~check:(fun m ->
          let args, validate = w.Common.w_data () in
          match Common.Host_interp.run ~module_op:m args with
          | _ -> validate ()
          | exception _ -> false)
        ()
    in
    Error
      { d_workload = w.Common.w_name; d_detail = detail;
        d_first_bad_pass = first_bad_pass }
  in
  match
    ( run_with w (reference_pipeline ()),
      run_with w (full_pipeline ()) )
  with
  | exception e ->
    fail (Printf.sprintf "execution raised %s" (Printexc.to_string e))
  | (ref_bufs, ref_ok), (opt_bufs, opt_ok) ->
    if not ref_ok then
      Error
        { d_workload = w.Common.w_name;
          d_detail = "unoptimized reference fails its own ground truth";
          d_first_bad_pass = None }
    else if not opt_ok then fail "optimized run fails ground truth"
    else if not (List.for_all2 (buffers_agree ~tol) ref_bufs opt_bufs) then
      fail "optimized and unoptimized buffers diverge"
    else Ok ()

(* ------------------------------------------------------------------ *)
(* Oracle (d): sequential vs. parallel simulator determinism           *)
(* ------------------------------------------------------------------ *)

(* Render everything observable about a run — cost counters, per-kernel
   launch statistics, the metrics registry (as canonical JSON, so counter
   and percentile determinism is part of the contract), the profile
   timeline, and every output buffer bit-for-bit (hex floats) — so any
   divergence between two runs shows up as a byte difference. *)
let render_digest (r : Common.Host_interp.run_result)
    (args : Common.Host_interp.hv list) ~(valid : bool) : string =
  let module H = Common.Host_interp in
  let module P = Sycl_sim.Profile in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "total=%d device=%d launch=%d transfer=%d sched=%d jit=%d \
        launches=%d deps=%d valid=%b\n"
       r.H.total_cycles r.H.device_cycles r.H.launch_overhead_cycles
       r.H.transfer_cycles r.H.scheduler_cycles r.H.jit_cycles
       r.H.kernel_launches r.H.dependency_edges valid);
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf
        (Format.asprintf "%s: %a\n" name Common.Cost.pp_launch_stats s))
    r.H.per_kernel;
  (* Per-op attribution rows in canonical order: the determinism and
     telemetry oracles cover the profiler's accounting byte-for-byte. *)
  List.iter
    (fun (name, tab) ->
      Buffer.add_string buf (Printf.sprintf "attribution %s:\n" name);
      Buffer.add_string buf (Sycl_sim.Attribution.render tab))
    r.H.per_kernel_attribution;
  (* Cache counter tables (empty under the flat model, so the digest is
     byte-identical to the pre-cache format there). *)
  List.iter
    (fun (name, tab) ->
      Buffer.add_string buf (Printf.sprintf "cache %s:\n" name);
      Buffer.add_string buf (Sycl_sim.Cache.render tab))
    r.H.per_kernel_cache;
  List.iter
    (fun (e : P.event) ->
      Buffer.add_string buf
        (Printf.sprintf "ev %s/%s ts=%d dur=%d%s\n" e.P.ev_cat e.P.ev_name
           e.P.ev_ts e.P.ev_dur
           (String.concat ""
              (List.map
                 (fun (k, v) -> Printf.sprintf " %s=%d" k v)
                 e.P.ev_args))))
    r.H.events;
  List.iteri
    (fun i hv ->
      match hv with
      | H.Scalar (Common.Interp.Mem view) ->
        Buffer.add_string buf (Printf.sprintf "buf %d:" i);
        Array.iter
          (fun c ->
            Buffer.add_string buf
              (Printf.sprintf " %h" (Common.Memory.cell_to_float c)))
          view.Common.Memory.base.Common.Memory.data;
        Buffer.add_char buf '\n'
      | _ -> ())
    args;
  Buffer.add_string buf
    (Json.to_string (Sycl_obs.Metrics.to_json r.H.metrics));
  Buffer.add_char buf '\n';
  Buffer.contents buf

let run_digest (w : Common.workload) ~(domains : int) : string =
  let module H = Common.Host_interp in
  let m = w.Common.w_module () in
  ignore (Pass.run_pipeline ~verify_each:false (full_pipeline ()) m);
  let args, validate = w.Common.w_data () in
  let r = H.run ~sim_domains:domains ~module_op:m args in
  render_digest r args ~valid:(validate ())

(** Sequential-vs-parallel determinism: the full run digest under
    [domains] worker domains must be byte-identical to the sequential
    backend's. Used by the fuzz loop and the parallel-sim tests. *)
let check_parallel ?(domains = 4) (w : Common.workload) :
    (unit, Difftest.failure) result =
  match (run_digest w ~domains:1, run_digest w ~domains) with
  | exception e ->
    Error
      {
        Difftest.f_oracle = "determinism";
        f_detail =
          Printf.sprintf "%s: execution raised %s" w.Common.w_name
            (Printexc.to_string e);
        f_ir = None;
      }
  | reference, subject ->
    Difftest.check_deterministic ~oracle:"determinism"
      ~what:(w.Common.w_name ^ " run digest") ~reference ~subject ()

(* ------------------------------------------------------------------ *)
(* Oracle (g): attribution conservation                                *)
(* ------------------------------------------------------------------ *)

(** Every launch's attribution table must decompose its launch stats
    exactly: each counter column sums to the corresponding
    [Cost.launch_stats] field and the cycle column to [total_wg_cycles]
    ({!Sycl_sim.Attribution.conserves}). *)
let check_attribution (w : Common.workload) : (unit, Difftest.failure) result =
  let module H = Common.Host_interp in
  let fail detail =
    Error
      { Difftest.f_oracle = "attribution-conservation";
        f_detail = w.Common.w_name ^ ": " ^ detail; f_ir = None }
  in
  match
    let m = w.Common.w_module () in
    ignore (Pass.run_pipeline ~verify_each:false (full_pipeline ()) m);
    let args, _ = w.Common.w_data () in
    H.run ~module_op:m args
  with
  | exception e -> fail (Printf.sprintf "execution raised %s" (Printexc.to_string e))
  | r -> (
    if
      List.length r.H.per_kernel <> List.length r.H.per_kernel_attribution
    then fail "per_kernel and per_kernel_attribution lists disagree"
    else
      match
        List.find_map
          (fun ((name, stats), (_, tab)) ->
            match Sycl_sim.Attribution.conserves tab stats with
            | Ok () -> None
            | Error msg -> Some (name ^ ": " ^ msg))
          (List.combine r.H.per_kernel r.H.per_kernel_attribution)
      with
      | Some detail -> fail detail
      | None -> Ok ())

(* ------------------------------------------------------------------ *)
(* Oracle (e): telemetry neutrality                                    *)
(* ------------------------------------------------------------------ *)

(* Compile and run [w], optionally with pass-timing instrumentation
   installed and the merged trace + metrics JSON rendered (and
   discarded). Returns the compiled IR text and the full run digest. *)
let telemetry_run (w : Common.workload) ~(telemetry : bool) : string * string =
  let module H = Common.Host_interp in
  let m = w.Common.w_module () in
  let tm = Instrument.timer () in
  let instrumentations = if telemetry then [ Instrument.timing tm ] else [] in
  ignore
    (Pass.run_pipeline ~verify_each:false ~instrumentations (full_pipeline ())
       m);
  let ir = Printer.to_string m in
  let args, validate = w.Common.w_data () in
  let r = H.run ~module_op:m args in
  if telemetry then begin
    (* Exercise the export paths too: render the merged trace and the
       metrics JSON exactly as the CLI tools would. *)
    let sink = Sycl_obs.Trace.make_sink () in
    Sycl_obs.Trace.add_timing sink (Instrument.timing_report tm);
    Sycl_obs.Trace.add_all sink
      (Sycl_sim.Profile.trace_spans ~base:(Sycl_obs.Trace.span_end sink)
         r.H.events);
    ignore (Json.to_string (Sycl_obs.Trace.export sink));
    ignore (Json.to_string (Sycl_obs.Metrics.to_json r.H.metrics));
    (* And the profiler surfaces (--annotate): the hotspot report, the
       attribution JSON and an annotated IR dump. The annotation writes
       into a re-parsed clone — the module under test must stay
       byte-identical. *)
    let tab = Sycl_sim.Attribution.create () in
    List.iter
      (fun (_, src) -> Sycl_sim.Attribution.merge ~into:tab src)
      r.H.per_kernel_attribution;
    ignore (Sycl_sim.Attribution.hotspots_to_string tab);
    ignore (Json.to_string (Sycl_sim.Attribution.to_json tab));
    let clone = Parser.parse_module ir in
    Sycl_sim.Attribution.annotate_module tab clone;
    ignore (Printer.to_string clone)
  end;
  (ir, render_digest r args ~valid:(validate ()))

(** Telemetry must observe, never perturb: compiling and running with
    timing instrumentation plus trace/metrics export enabled must leave
    the compiled IR and the full run digest byte-identical to a plain
    run. *)
let check_telemetry_neutral (w : Common.workload) :
    (unit, Difftest.failure) result =
  match
    (telemetry_run w ~telemetry:false, telemetry_run w ~telemetry:true)
  with
  | exception e ->
    Error
      {
        Difftest.f_oracle = "telemetry-neutral";
        f_detail =
          Printf.sprintf "%s: execution raised %s" w.Common.w_name
            (Printexc.to_string e);
        f_ir = None;
      }
  | (ref_ir, ref_digest), (tel_ir, tel_digest) -> (
    match
      Difftest.check_deterministic ~oracle:"telemetry-neutral"
        ~what:(w.Common.w_name ^ " compiled IR") ~reference:ref_ir
        ~subject:tel_ir ()
    with
    | Error _ as e -> e
    | Ok () ->
      Difftest.check_deterministic ~oracle:"telemetry-neutral"
        ~what:(w.Common.w_name ^ " run digest") ~reference:ref_digest
        ~subject:tel_digest ())

(* ------------------------------------------------------------------ *)
(* Oracle (f): compile-service cache coherence                         *)
(* ------------------------------------------------------------------ *)

(** The compile service must be invisible in the output: a module pushed
    through a multi-domain service — cold, coalesced (the batch repeats
    the request six times) and then cached — must come out byte-identical
    to a direct pipeline run, with exactly one cold compile and a fully
    cached second round. *)
let check_service_cache (w : Common.workload) :
    (unit, Difftest.failure) result =
  let module Service = Sycl_service.Service in
  let module Metrics = Sycl_obs.Metrics in
  let name = w.Common.w_name in
  let fail detail ir =
    Error
      { Difftest.f_oracle = "service-cache"; f_detail = name ^ ": " ^ detail;
        f_ir = ir }
  in
  match
    let text = Printer.to_string (w.Common.w_module ()) in
    let pipeline = full_pipeline () in
    let reference =
      let m = Parser.parse_module text in
      ignore (Pass.run_pipeline ~verify_each:false pipeline m);
      Printer.to_string m
    in
    let service =
      Service.create ~cache_capacity:8 ~workers:4 ~pipeline
        ~pipeline_key:(Service.pipeline_key_of_passes pipeline) ()
    in
    let rq i =
      { Service.rq_name = Printf.sprintf "%s#%d" name i; rq_text = text }
    in
    let round1 = Service.run_batch service (List.init 6 rq) in
    let round2 = Service.run_batch service (List.init 6 rq) in
    (reference, service, round1 @ round2)
  with
  | exception e -> fail (Printf.sprintf "raised %s" (Printexc.to_string e)) None
  | reference, service, responses -> (
    let bad_output =
      List.find_map
        (fun (rs : Service.response) ->
          match rs.Service.rs_outcome with
          | Service.Success s when s = reference -> None
          | Service.Success s ->
            Some
              ( Printf.sprintf "%s: service output diverges from direct compile"
                  rs.Service.rs_name,
                Some s )
          | Service.Failure msg ->
            Some
              (Printf.sprintf "%s: service compile failed: %s"
                 rs.Service.rs_name msg, None))
        responses
    in
    match bad_output with
    | Some (detail, ir) -> fail detail ir
    | None ->
      let reg = Service.metrics service in
      let misses = Metrics.counter_value reg "service.cache_misses" in
      let hits = Metrics.counter_value reg "service.cache_hits" in
      if misses <> 1 then
        fail
          (Printf.sprintf "expected exactly 1 cold compile, got %d misses"
             misses)
          None
      else if hits <> 11 then
        fail (Printf.sprintf "expected 11 cache hits, got %d" hits) None
      else if
        List.exists
          (fun (rs : Service.response) -> not rs.Service.rs_cache_hit)
          (List.filteri (fun i _ -> i >= 6) responses)
      then fail "second-round response not served from the cache" None
      else Ok ())

(* ------------------------------------------------------------------ *)
(* Oracle (i): cache-model coherence                                   *)
(* ------------------------------------------------------------------ *)

(* Full run digest under an explicit cache model, with per-launch cache
   conservation checked on the way ([hits + misses] must equal the
   launch's global transactions exactly, and the per-op table must sum
   to the launch counters — {!Sycl_sim.Cache.conserves}). *)
let cache_digest (w : Common.workload) ?cache_model ~(domains : int) () :
    string =
  let module H = Common.Host_interp in
  let m = w.Common.w_module () in
  ignore (Pass.run_pipeline ~verify_each:false (full_pipeline ()) m);
  let args, validate = w.Common.w_data () in
  let r = H.run ~sim_domains:domains ?cache_model ~module_op:m args in
  List.iter2
    (fun (kname, stats) (_, tab) ->
      match Sycl_sim.Cache.conserves tab stats with
      | [] -> ()
      | v :: _ ->
        failwith (Printf.sprintf "%s: cache conservation violated: %s" kname v))
    (if r.H.per_kernel_cache = [] then [] else r.H.per_kernel)
    r.H.per_kernel_cache;
  render_digest r args ~valid:(validate ())

(** Cache-model coherence: under each non-flat model the cache counters
    conserve exactly on every launch and the full digest (launch stats,
    per-op cache tables, reuse histograms, metrics, buffers) is
    byte-identical between the sequential and the 4-domain backend; an
    explicit [--cache-model flat] is byte-identical to the default
    (no-cache) run. *)
let check_cache_coherence ?(domains = 4) (w : Common.workload) :
    (unit, Difftest.failure) result =
  let name = w.Common.w_name in
  let fail detail =
    Error
      { Difftest.f_oracle = "cache-coherence";
        f_detail = name ^ ": " ^ detail; f_ir = None }
  in
  match
    let per_model model =
      ( cache_digest w ~cache_model:model ~domains:1 (),
        cache_digest w ~cache_model:model ~domains () )
    in
    ( per_model Common.Cost.Direct_mapped,
      per_model Common.Cost.Set_associative,
      cache_digest w ~cache_model:Common.Cost.Flat ~domains:1 (),
      cache_digest w ~domains:1 () )
  with
  | exception e ->
    fail (Printf.sprintf "execution raised %s" (Printexc.to_string e))
  | (dm_seq, dm_par), (as_seq, as_par), flat, default -> (
    let pair what reference subject =
      Difftest.check_deterministic ~oracle:"cache-coherence"
        ~what:(name ^ " " ^ what) ~reference ~subject ()
    in
    match pair "direct-mapped digest (1 vs N domains)" dm_seq dm_par with
    | Error _ as e -> e
    | Ok () -> (
      match pair "set-associative digest (1 vs N domains)" as_seq as_par with
      | Error _ as e -> e
      | Ok () ->
        pair "flat digest (explicit flat vs default)" default flat))

(* ------------------------------------------------------------------ *)
(* Oracle (h): worklist / legacy rewrite-driver equivalence            *)
(* ------------------------------------------------------------------ *)

(** The worklist driver replaced the legacy bounded re-walk driver; on
    any module shallow enough for the legacy driver to actually converge
    (its silent [max_iterations] cutoff not hit), both must reach the
    same fixpoint — byte-identical printed IR under the canonicalize
    pattern set. Modules where the legacy driver gives up early are
    skipped: there the two drivers legitimately differ (that divergence
    is the bug the worklist driver fixes, covered by the deep-chain
    regression test). *)
let check_worklist_equivalence (w : Common.workload) :
    (unit, Difftest.failure) result =
  let name = w.Common.w_name in
  let fail detail ir =
    Error
      { Difftest.f_oracle = "worklist-equivalence";
        f_detail = name ^ ": " ^ detail; f_ir = ir }
  in
  match
    let text = Printer.to_string (w.Common.w_module ()) in
    let patterns = Sycl_core.Canonicalize.patterns in
    let legacy_m = Parser.parse_module text in
    let legacy_st = Rewrite.apply_greedily_legacy legacy_m patterns in
    let worklist_m = Parser.parse_module text in
    let worklist_st = Rewrite.apply_worklist worklist_m patterns in
    ( legacy_st, Printer.to_string legacy_m,
      worklist_st, Printer.to_string worklist_m )
  with
  | exception e -> fail (Printf.sprintf "raised %s" (Printexc.to_string e)) None
  | legacy_st, legacy_ir, worklist_st, worklist_ir ->
    if not legacy_st.Rewrite.rw_converged then
      (* Too deep for the bounded driver — no converged reference. *)
      Ok ()
    else if not worklist_st.Rewrite.rw_converged then
      fail "worklist driver reported non-convergence" (Some worklist_ir)
    else if legacy_ir <> worklist_ir then
      fail "worklist fixpoint diverges from the converged legacy fixpoint"
        (Some worklist_ir)
    else Ok ()

(* ------------------------------------------------------------------ *)
(* Randomized workload selection for the fuzz loop                     *)
(* ------------------------------------------------------------------ *)

(** A workload with an ND-range size randomized from [rng] — problem
    sizes are arbitrary (not powers of two); the launch policy picks a
    dividing work-group size. *)
let random_workload (rng : Random.State.t) : Common.workload =
  let n = 6 + Random.State.int rng 27 in
  let builders =
    [ (fun () -> Polybench.gemm ~n);
      (fun () -> Polybench.atax ~n);
      (fun () -> Polybench.bicg ~n);
      (fun () -> Polybench.mvt ~n);
      (fun () -> Polybench.gesummv ~n);
      (fun () -> Single_kernel.vec_add ~n:(n * n));
      (fun () -> Single_kernel.sobel5 ~n);
      (fun () -> Stencil.jacobi ~n ~iters:2) ]
  in
  (List.nth builders (Random.State.int rng (List.length builders))) ()
