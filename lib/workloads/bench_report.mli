(** Benchmark metrics pipeline: schema-versioned JSON snapshots of the
    simulated evaluation, and a regression comparator for CI gating. *)

val schema_version : int

type config_metrics = {
  cm_cycles : int;
  cm_valid : bool;
  cm_device_cycles : int;
  cm_transfer_cycles : int;
  cm_kernel_launches : int;
  cm_global_transactions : int;
  cm_local_transactions : int;
  (* Telemetry (the v2 "metrics" section). *)
  cm_transfer_bytes_h2d : int;
  cm_transfer_bytes_d2h : int;
  cm_dag_wait_edges : int;
  cm_launch_p50 : int;  (** launch-latency percentiles, in cycles *)
  cm_launch_p90 : int;
  cm_launch_p99 : int;
}

type entry = {
  e_name : string;
  e_category : string;
  e_problem_size : int;
  e_configs : (string * config_metrics) list;
  e_speedup : float;
  e_pass_stats : (string * int) list;
}

type report = {
  r_schema_version : int;
  r_label : string;
  r_entries : entry list;
}

val metrics_of : Common.measurement -> config_metrics
val entry_of_comparison : Common.comparison -> entry

(** Measure every workload under the three configurations. *)
val collect : label:string -> Common.workload list -> report

val to_json : report -> string

exception Report_error of string

(** Parse a report; raises {!Report_error} on malformed input or a
    schema-version mismatch. *)
val of_json : string -> report

type issue_kind =
  | Cycle_regression
  | Latency_regression  (** a launch-latency percentile grew past tolerance *)
  | Validity_regression
  | Missing_workload
  | Missing_config

type issue = {
  i_kind : issue_kind;
  i_workload : string;
  i_config : string;
  i_detail : string;
}

val issue_to_string : issue -> string

(** Issues in [current] relative to [baseline]; empty means the gate
    passes. [tolerance] is the permitted fractional growth for cycles
    and launch-latency percentiles (default 0.05). *)
val compare_reports :
  ?tolerance:float -> baseline:report -> report -> issue list
