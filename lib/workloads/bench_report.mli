(** Benchmark metrics pipeline: schema-versioned JSON snapshots of the
    simulated evaluation, and a regression comparator for CI gating. *)

val schema_version : int

type config_metrics = {
  cm_cycles : int;
  cm_valid : bool;
  cm_device_cycles : int;
  cm_transfer_cycles : int;
  cm_kernel_launches : int;
  cm_global_transactions : int;
  cm_local_transactions : int;
  (* Telemetry (the v2 "metrics" section). *)
  cm_transfer_bytes_h2d : int;
  cm_transfer_bytes_d2h : int;
  cm_dag_wait_edges : int;
  cm_launch_p50 : int;  (** launch-latency percentiles, in cycles *)
  cm_launch_p90 : int;
  cm_launch_p99 : int;
}

(** One hotspot line of a workload's located SYCL-MLIR run (the v4
    "hotspots" section — context for cycle regressions, never gated). *)
type hotspot = {
  h_line : string;  (** ["file:line"] into the workload's virtual IR dump *)
  h_cycles : int;
  h_share : float;
}

(** The v5 per-workload "compile" section: deterministic compiler-speed
    counters for the SYCL-MLIR configuration — gated by
    {!compare_reports} like cycles — plus the measured (never gated)
    parse + pipeline wall time. *)
type compile_metrics = {
  co_parse_ops : int;  (** ops materialized by parsing the printed module *)
  co_parse_chars : int;  (** characters of IR text the parser processed *)
  co_ops_visited : (string * int) list;  (** pass name -> ops examined *)
  co_rewrites : (string * int) list;  (** pass name -> rewrites performed *)
  co_wall_us : int;  (** measured; excluded from determinism diffs *)
}

(** The v6 per-workload "cache" section: simulated data-cache counters
    from an extra SYCL-MLIR run under the direct-mapped model, plus the
    exact reuse-distance percentiles of that run. All fields are
    deterministic; the hit rate is gated by {!compare_reports}. *)
type cache_metrics = {
  ca_hits : int;
  ca_misses : int;  (** [ca_hits + ca_misses] = global transactions *)
  ca_evictions : int;
  ca_hit_rate : float;
  ca_reuse_p50 : int;  (** LRU stack-distance percentiles, in cache lines *)
  ca_reuse_p90 : int;
  ca_reuse_p99 : int;
}

type entry = {
  e_name : string;
  e_category : string;
  e_problem_size : int;
  e_configs : (string * config_metrics) list;
  e_speedup : float;
  e_pass_stats : (string * int) list;
  e_hotspots : hotspot list;
      (** top-3 source lines by attributed device cycles *)
  e_compile : compile_metrics;  (** compiler-speed counters (v5) *)
  e_cache : cache_metrics;  (** direct-mapped cache counters (v6) *)
}

(** The v3 report-level "service" section: counters and cost-unit
    percentiles from a two-round compile-service sweep of the suite.
    Everything except [sv_wall_us] / [sv_modules_per_sec] (the
    "measured" fields) is deterministic. *)
type service_metrics = {
  sv_requests : int;
  sv_hits : int;
  sv_misses : int;
  sv_evictions : int;
  sv_hit_rate : float;
  sv_cost_p50 : int;  (** compile-latency percentiles, in cost units *)
  sv_cost_p90 : int;
  sv_cost_p99 : int;
  sv_wall_us : int;
  sv_modules_per_sec : float;
}

type report = {
  r_schema_version : int;
  r_label : string;
  r_entries : entry list;
  r_service : service_metrics;
}

val metrics_of : Common.measurement -> config_metrics

(** The workload's top-[n] (default 3) hotspot lines from an extra
    annotated SYCL-MLIR run of its located copy. *)
val top_hotspots : ?n:int -> Common.workload -> hotspot list

val entry_of_comparison : Common.comparison -> entry

(** Sweep the workloads' modules through a fresh compile service twice
    (cold round + cached round) and snapshot its telemetry. *)
val collect_service : Common.workload list -> service_metrics

(** Measure every workload under the three configurations, plus the
    compile-service sweep. *)
val collect : label:string -> Common.workload list -> report

val to_json : report -> string

exception Report_error of string

(** Parse a report; raises {!Report_error} on malformed input or a
    schema-version mismatch. *)
val of_json : string -> report

type issue_kind =
  | Cycle_regression
  | Latency_regression  (** a launch-latency percentile grew past tolerance *)
  | Validity_regression
  | Missing_workload
  | Missing_config
  | Compile_latency_regression
      (** a compile-service cost-unit percentile grew past tolerance *)
  | Hit_rate_regression
      (** a cache hit rate dropped past tolerance — the compile-service
          cache (v3) or a workload's simulated data cache (v6) *)
  | Compiler_speed_regression
      (** a deterministic compiler-speed counter (ops visited, rewrites,
          parser ops/chars) grew past tolerance (v5) *)

type issue = {
  i_kind : issue_kind;
  i_workload : string;
  i_config : string;
  i_detail : string;
}

val issue_to_string : issue -> string

(** Issues in [current] relative to [baseline]; empty means the gate
    passes. [tolerance] is the permitted fractional growth for cycles,
    launch-latency percentiles and compile-service cost-unit
    percentiles, and the permitted fractional drop in the service and
    per-workload data-cache hit rates (default 0.05). Measured service
    wall time / throughput is never gated. *)
val compare_reports :
  ?tolerance:float -> baseline:report -> report -> issue list
