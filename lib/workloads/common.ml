(* Workload infrastructure shared by the SYCL-Bench and oneAPI-sample
   reproductions: deterministic data generation, module construction
   helpers, validation and the measurement harness comparing the three
   compiler configurations. *)

open Mlir
module Interp = Sycl_sim.Interp
module Memory = Sycl_sim.Memory
module Cost = Sycl_sim.Cost
module Host_interp = Sycl_runtime.Host_interp
module Driver = Sycl_core.Driver
module Kernel = Sycl_frontend.Kernel
module Host = Sycl_frontend.Host
module Sycl_types = Sycl_core.Sycl_types

type category =
  | Single_kernel
  | Polybench
  | Stencil

let category_to_string = function
  | Single_kernel -> "single-kernel"
  | Polybench -> "polybench"
  | Stencil -> "stencil"

type workload = {
  w_name : string;
  w_category : category;
  w_problem_size : int;  (** scaled problem size actually used *)
  w_paper_size : int;  (** the size used in the paper's runs *)
  (* Fresh joint module (host main + kernels); compilation mutates it. *)
  w_module : unit -> Core.op;
  (* Fresh host data: main arguments plus a validation check to run after
     execution. *)
  w_data : unit -> Host_interp.hv list * (unit -> bool);
  (* Models AdaptiveCpp's validation failures on this workload (the paper
     reports several, shown as missing bars in Figs. 2 and 3). *)
  w_acpp_ok : bool;
}

(* ------------------------------------------------------------------ *)
(* Data helpers                                                        *)
(* ------------------------------------------------------------------ *)

let rng seed = Random.State.make [| 0x5eed; seed |]

let farray_init n f =
  let a = Memory.alloc ~label:"host-data" ~space:Types.Global ~size:n () in
  for i = 0 to n - 1 do
    a.Memory.data.(i) <- Memory.F (f i)
  done;
  a

let farray_random st n =
  farray_init n (fun _ -> Random.State.float st 2.0 -. 1.0)

let farray_zeros n = farray_init n (fun _ -> 0.0)

let read_f (a : Memory.allocation) i = Memory.cell_to_float a.Memory.data.(i)

let harg (a : Memory.allocation) =
  Host_interp.Scalar (Interp.Mem (Memory.full_view a))

let iarg i = Host_interp.Scalar (Interp.I i)

(** Relative-error comparison with an absolute floor. *)
let approx_eq ?(tol = 1e-3) a b =
  let d = Float.abs (a -. b) in
  d <= tol || d <= tol *. Float.max (Float.abs a) (Float.abs b)

let check_array ?(tol = 1e-3) (a : Memory.allocation) (expected : float array) =
  let ok = ref true in
  Array.iteri
    (fun i e -> if not (approx_eq ~tol (read_f a i) e) then ok := false)
    expected;
  !ok

(** A fresh module with all dialects registered. *)
let fresh_module () =
  Dialects.Register.init ();
  Sycl_core.Sycl_ops.init ();
  Sycl_core.Sycl_host_ops.init ();
  Sycl_core.Licm.init ();
  Core.create_module ()

(* ------------------------------------------------------------------ *)
(* Measurement harness                                                 *)
(* ------------------------------------------------------------------ *)

type measurement = {
  m_workload : string;
  m_mode : Driver.mode;
  m_cycles : int;
  m_valid : bool;
  m_result : Host_interp.run_result;
  m_stats : Pass.Stats.t;  (** merged compile-time pass statistics *)
  m_module : Core.op;  (** the compiled module (for annotated IR dumps) *)
}

exception Unsupported of string

(** Compile and execute [w] under [cfg]; the measured run excludes JIT
    warm-up (the paper's methodology discards the first run).
    [instrumentations] are installed around every compile pass (how the
    bench driver collects compile-phase timing for the merged trace). *)
let measure ?(params = Cost.default) ?(instrumentations = [])
    (cfg : Driver.config) (w : workload) : measurement =
  if cfg.Driver.mode = Driver.Adaptive_cpp && not w.w_acpp_ok then
    raise (Unsupported w.w_name);
  let m = w.w_module () in
  let compiled = Driver.compile ~instrumentations cfg m in
  let launch_hook, jit_cycles =
    match cfg.Driver.mode with
    | Driver.Adaptive_cpp ->
      ( Some
          (fun kernel (info : Host_interp.launch_info) ->
            ignore
              (Driver.specialize_at_launch kernel ~global:info.Host_interp.li_global
                 ~wg:info.Host_interp.li_wg
                 ~noalias_pairs:info.Host_interp.li_noalias_pairs
                 ~constant_args:info.Host_interp.li_constant_args)),
        params.Cost.jit_compile_cycles )
    | Driver.Dpcpp | Driver.Sycl_mlir -> (None, 0)
  in
  (* Warm-up run (JIT specialization happens here for AdaptiveCpp). *)
  (match cfg.Driver.mode with
  | Driver.Adaptive_cpp ->
    let args, _ = w.w_data () in
    ignore (Host_interp.run ~params ?launch_hook ~jit_cycles ~module_op:m args)
  | _ -> ());
  let args, validate = w.w_data () in
  let result = Host_interp.run ~params ?launch_hook ~jit_cycles ~module_op:m args in
  (* The measured run excludes the one-time JIT charge. *)
  let cycles = result.Host_interp.total_cycles - result.Host_interp.jit_cycles in
  {
    m_workload = w.w_name;
    m_mode = cfg.Driver.mode;
    m_cycles = cycles;
    m_valid = validate ();
    m_result = result;
    m_stats = Pass.merged_stats compiled.Driver.pipeline_result;
    m_module = m;
  }

let default_configs =
  [
    Driver.config Driver.Dpcpp;
    Driver.config Driver.Adaptive_cpp;
    Driver.config Driver.Sycl_mlir;
  ]

type comparison = {
  c_workload : workload;
  c_base : measurement;  (** DPC++ *)
  c_acpp : measurement option;  (** None when validation/support fails *)
  c_sycl_mlir : measurement;
}

let speedup (base : measurement) (m : measurement) =
  float_of_int base.m_cycles /. float_of_int (max 1 m.m_cycles)

let compare_workload ?params (w : workload) : comparison =
  let base = measure ?params (Driver.config Driver.Dpcpp) w in
  let acpp =
    match measure ?params (Driver.config Driver.Adaptive_cpp) w with
    | m -> if m.m_valid then Some m else None
    | exception Unsupported _ -> None
  in
  let sycl_mlir = measure ?params (Driver.config Driver.Sycl_mlir) w in
  { c_workload = w; c_base = base; c_acpp = acpp; c_sycl_mlir = sycl_mlir }

let geomean xs =
  match xs with
  | [] -> Float.nan
  | _ ->
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int (List.length xs))
