(* Benchmark metrics pipeline: a schema-versioned JSON snapshot of the
   simulated evaluation (per-workload cycles, memory traffic, validity,
   compile-time pass statistics) plus a comparator. `bench report` writes
   one; `bench compare old.json new.json` flags cycle regressions beyond
   a tolerance, validity regressions, and vanished workloads — the CI
   gate that keeps optimizations from silently rotting. The simulator is
   deterministic, so a self-comparison is exact. *)

open Mlir
module Host_interp = Sycl_runtime.Host_interp
module Cost = Sycl_sim.Cost
module Metrics = Sycl_obs.Metrics
module Service = Sycl_service.Service

(* v2: every config carries a "metrics" section (transfer bytes by
   direction, DAG-wait edge count, launch-latency percentiles) fed by
   the runtime telemetry registry.
   v3: a report-level "service" section from a two-round compile-service
   sweep of the suite — cache hit/miss/eviction counters, compile-latency
   percentiles in deterministic cost units (gated by [compare_reports]
   like cycles), and measured wall-clock throughput (informational only:
   machine-dependent, never gated, excluded from determinism diffs).
   v4: every workload carries a "hotspots" section — the top-3 source
   lines by attributed device cycles from a located SYCL-MLIR run — so a
   cycle regression flagged by [compare_reports] names the line that now
   dominates. Informational context, not a separate gate.
   v5: every workload carries a "compile" section of deterministic
   compiler-speed counters — ops visited per pass (the rewrite drivers,
   CSE and store-forwarding count every op they examine), rewrites per
   pass, and parser ops/chars processed — gated by [compare_reports]
   exactly like cycle regressions, so a pass that quietly returns to
   rescanning the module fails CI. Compile wall time lives in the
   entry's "measured" subobject: machine-dependent, informational,
   excluded from determinism diffs and never gated.
   v6: every workload carries a "cache" section from an extra SYCL-MLIR
   run under the direct-mapped cache model (--cache-model dm):
   hit/miss/eviction counters, the hit rate and the exact
   reuse-distance percentiles. All deterministic (the cache is probed
   in canonical order); [compare_reports] gates the per-workload hit
   rate like the service hit rate, so a transform that quietly destroys
   locality fails CI. *)
let schema_version = 6

(** One hotspot line of a workload's located SYCL-MLIR run. *)
type hotspot = {
  h_line : string;  (** ["file:line"] into the workload's virtual IR dump *)
  h_cycles : int;  (** attributed device cycles *)
  h_share : float;  (** fraction of the workload's attributed cycles *)
}

type config_metrics = {
  cm_cycles : int;
  cm_valid : bool;
  cm_device_cycles : int;
  cm_transfer_cycles : int;
  cm_kernel_launches : int;
  cm_global_transactions : int;
  cm_local_transactions : int;
  (* Telemetry (the v2 "metrics" section). *)
  cm_transfer_bytes_h2d : int;
  cm_transfer_bytes_d2h : int;
  cm_dag_wait_edges : int;
  cm_launch_p50 : int;  (** launch-latency percentiles, in cycles *)
  cm_launch_p90 : int;
  cm_launch_p99 : int;
}

(** The v5 "compile" section: deterministic compiler-speed counters for
    the SYCL-MLIR configuration, plus measured (non-gated) wall time. *)
type compile_metrics = {
  co_parse_ops : int;  (** ops materialized by parsing the printed module *)
  co_parse_chars : int;  (** characters of IR text the parser processed *)
  co_ops_visited : (string * int) list;
      (** pass name -> ops examined, from the merged pipeline stats *)
  co_rewrites : (string * int) list;  (** pass name -> rewrites performed *)
  co_wall_us : int;  (** measured: parse + full pipeline wall time *)
}

(** The v6 "cache" section: hit/miss counters and reuse-distance
    percentiles of an extra SYCL-MLIR run under the direct-mapped cache
    model. Deterministic — the probe order is canonical. *)
type cache_metrics = {
  ca_hits : int;
  ca_misses : int;
  ca_evictions : int;
  ca_hit_rate : float;
  ca_reuse_p50 : int;  (** exact reuse-distance percentiles; 0 when no
                           warm re-access was measured *)
  ca_reuse_p90 : int;
  ca_reuse_p99 : int;
}

type entry = {
  e_name : string;
  e_category : string;
  e_problem_size : int;
  e_configs : (string * config_metrics) list;
      (** keyed "dpcpp" / "acpp" / "sycl-mlir"; "acpp" is absent when the
          workload is unsupported or fails validation there *)
  e_speedup : float;  (** SYCL-MLIR cycles vs. the DPC++ baseline *)
  e_pass_stats : (string * int) list;
      (** merged compile-time statistics of the SYCL-MLIR pipeline *)
  e_hotspots : hotspot list;
      (** top-3 source lines by attributed device cycles (v4) *)
  e_compile : compile_metrics;  (** compiler-speed counters (v5) *)
  e_cache : cache_metrics;  (** direct-mapped cache counters (v6) *)
}

(* The v3 "service" section: one two-round compile-service sweep of the
   whole suite. Counters, hit rate and the cost-unit percentiles are
   deterministic (the cache coalesces duplicate in-flight requests, and
   cost units count ops, not time); wall_us / modules_per_sec are
   measured and vary run to run. *)
type service_metrics = {
  sv_requests : int;
  sv_hits : int;
  sv_misses : int;
  sv_evictions : int;
  sv_hit_rate : float;
  sv_cost_p50 : int;  (** compile-latency percentiles, in cost units *)
  sv_cost_p90 : int;
  sv_cost_p99 : int;
  sv_wall_us : int;  (** measured: total batch wall time *)
  sv_modules_per_sec : float;  (** measured: requests / wall time *)
}

type report = {
  r_schema_version : int;
  r_label : string;
  r_entries : entry list;
  r_service : service_metrics;
}

(* ---------------------------------------------------------------- *)
(* Collection                                                        *)

let metrics_of (m : Common.measurement) : config_metrics =
  let res = m.Common.m_result in
  let sum f =
    List.fold_left (fun acc (_, s) -> acc + f s) 0 res.Host_interp.per_kernel
  in
  let reg = res.Host_interp.metrics in
  let pct p =
    Option.value ~default:0
      (Metrics.percentile reg "runtime.launch_latency_cycles" p)
  in
  {
    cm_cycles = m.Common.m_cycles;
    cm_valid = m.Common.m_valid;
    cm_device_cycles = res.Host_interp.device_cycles;
    cm_transfer_cycles = res.Host_interp.transfer_cycles;
    cm_kernel_launches = res.Host_interp.kernel_launches;
    cm_global_transactions = sum (fun s -> s.Cost.global_transactions);
    cm_local_transactions = sum (fun s -> s.Cost.local_transactions);
    cm_transfer_bytes_h2d = Metrics.counter_value reg "runtime.transfer_bytes_h2d";
    cm_transfer_bytes_d2h = Metrics.counter_value reg "runtime.transfer_bytes_d2h";
    cm_dag_wait_edges = Metrics.counter_value reg "runtime.dag_wait_edges";
    cm_launch_p50 = pct 50.0;
    cm_launch_p90 = pct 90.0;
    cm_launch_p99 = pct 99.0;
  }

(** The workload's top-[n] hotspot lines, from an extra annotated run:
    the located copy (printed and re-parsed under a virtual file name)
    measured under the SYCL-MLIR configuration. Deterministic — the
    simulator and the attribution's canonical ordering are. *)
let top_hotspots ?(n = 3) (w : Common.workload) : hotspot list =
  let m =
    Common.measure
      (Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir)
      (Annotate.located_workload w)
  in
  let tab = Annotate.merged_attribution m.Common.m_result in
  let total = Sycl_sim.Attribution.total_cycles tab in
  Sycl_sim.Attribution.by_line tab
  |> List.filteri (fun i _ -> i < n)
  |> List.map (fun (r : Sycl_sim.Attribution.line_row) ->
         {
           h_line = r.Sycl_sim.Attribution.l_line;
           h_cycles = r.Sycl_sim.Attribution.l_cycles;
           h_share =
             (if total = 0 then 0.0
              else
                float_of_int r.Sycl_sim.Attribution.l_cycles
                /. float_of_int total);
         })

(** The v6 cache section: compile the workload under SYCL-MLIR and run
    it once more with the direct-mapped cache model. Counters sum over
    every launch; the reuse percentiles come from the merged per-launch
    histograms. *)
let cache_of_workload (w : Common.workload) : cache_metrics =
  let m = w.Common.w_module () in
  ignore
    (Sycl_core.Driver.compile
       (Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir)
       m);
  let args, _ = w.Common.w_data () in
  let r =
    Host_interp.run ~cache_model:Cost.Direct_mapped ~module_op:m args
  in
  let sum f =
    List.fold_left (fun acc (_, s) -> acc + f s) 0 r.Host_interp.per_kernel
  in
  let hits = sum (fun s -> s.Cost.cache_hits) in
  let misses = sum (fun s -> s.Cost.cache_misses) in
  let pct =
    match Annotate.merged_cache r with
    | Some tab ->
      fun p -> Option.value ~default:0 (Sycl_sim.Cache.percentile tab p)
    | None -> fun _ -> 0
  in
  {
    ca_hits = hits;
    ca_misses = misses;
    ca_evictions = sum (fun s -> s.Cost.cache_evictions);
    ca_hit_rate = Sycl_sim.Cache.hit_rate ~hits ~misses;
    ca_reuse_p50 = pct 50.0;
    ca_reuse_p90 = pct 90.0;
    ca_reuse_p99 = pct 99.0;
  }

(* "pass/stat" -> (pass, stat); merged stats always carry the slash. *)
let split_stat key =
  match String.index_opt key '/' with
  | Some i ->
    (String.sub key 0 i, String.sub key (i + 1) (String.length key - i - 1))
  | None -> ("", key)

(** Pull the per-pass value of [stat] out of merged "pass/stat" pairs.
    Sorted by pass name (the stats list is already key-sorted, but be
    explicit — this ordering is what the determinism diff compares). *)
let per_pass_stat (pass_stats : (string * int) list) ~stat =
  List.filter_map
    (fun (k, v) ->
      let pass, s = split_stat k in
      if s = stat || s = pass ^ "." ^ stat then Some (pass, v) else None)
    pass_stats
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Compiler-speed counters for one workload: print the module, parse it
    back (counting ops and characters), run the full SYCL-MLIR pipeline
    once under the clock for the measured wall time, and pull the
    deterministic ops-visited / rewrites counters from the measured
    run's merged stats. *)
let compile_of_comparison (c : Common.comparison) : compile_metrics =
  let w = c.Common.c_workload in
  let pass_stats = Pass.Stats.to_list c.Common.c_sycl_mlir.Common.m_stats in
  let text = Mlir.Printer.to_string (w.Common.w_module ()) in
  let t0 = Unix.gettimeofday () in
  let parsed = Parser.parse_module ~file:(w.Common.w_name ^ ".mlir") text in
  let cfg = Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir in
  ignore (Sycl_core.Driver.compile cfg parsed);
  let wall_us =
    max 1 (int_of_float (Float.round ((Unix.gettimeofday () -. t0) *. 1e6)))
  in
  let parse_ops = ref 0 in
  Core.walk parsed ~f:(fun _ -> incr parse_ops);
  {
    co_parse_ops = !parse_ops;
    co_parse_chars = String.length text;
    co_ops_visited = per_pass_stat pass_stats ~stat:"ops_visited";
    co_rewrites = per_pass_stat pass_stats ~stat:"rewrites";
    co_wall_us = wall_us;
  }

let entry_of_comparison (c : Common.comparison) : entry =
  let w = c.Common.c_workload in
  {
    e_name = w.Common.w_name;
    e_category = Common.category_to_string w.Common.w_category;
    e_problem_size = w.Common.w_problem_size;
    e_configs =
      (("dpcpp", metrics_of c.Common.c_base)
       ::
       (match c.Common.c_acpp with
       | Some m -> [ ("acpp", metrics_of m) ]
       | None -> []))
      @ [ ("sycl-mlir", metrics_of c.Common.c_sycl_mlir) ];
    e_speedup = Common.speedup c.Common.c_base c.Common.c_sycl_mlir;
    e_pass_stats = Pass.Stats.to_list c.Common.c_sycl_mlir.Common.m_stats;
    e_hotspots = top_hotspots w;
    e_compile = compile_of_comparison c;
    e_cache = cache_of_workload w;
  }

(* Sweep every workload module through the compile service twice: round
   one is all cold compiles, round two must be served from the cache, so
   the hit rate lands at exactly 1/2 (the capacity is far above the
   suite size — no evictions, hence deterministic counters). *)
let collect_service (workloads : Common.workload list) : service_metrics =
  (* Creating the service freezes the op registry, so every dialect must
     have registered by now — do it explicitly rather than relying on a
     workload builder having run first. *)
  Dialects.Register.init ();
  Sycl_core.Sycl_ops.init ();
  Sycl_core.Sycl_host_ops.init ();
  Sycl_core.Licm.init ();
  let cfg = Sycl_core.Driver.config Sycl_core.Driver.Sycl_mlir in
  let pipeline =
    Sycl_core.Driver.host_pipeline cfg @ Sycl_core.Driver.device_pipeline cfg
  in
  let service =
    Service.create ~cache_capacity:1024 ~pipeline
      ~pipeline_key:(Sycl_core.Driver.config_key cfg) ()
  in
  let requests =
    List.map
      (fun (w : Common.workload) ->
        { Service.rq_name = w.Common.w_name;
          rq_text = Mlir.Printer.to_string (w.Common.w_module ()) })
      workloads
  in
  ignore (Service.run_batch service requests);
  ignore (Service.run_batch service requests);
  let reg = Service.metrics service in
  let c n = Metrics.counter_value reg n in
  let pct p =
    Option.value ~default:0
      (Metrics.percentile reg "service.compile_cost_units" p)
  in
  let hits = c "service.cache_hits" and misses = c "service.cache_misses" in
  let requests_total = c "service.requests" in
  let wall_us = c "service.batch_wall_us" in
  {
    sv_requests = requests_total;
    sv_hits = hits;
    sv_misses = misses;
    sv_evictions = c "service.cache_evictions";
    sv_hit_rate =
      (if hits + misses = 0 then 0.0
       else float_of_int hits /. float_of_int (hits + misses));
    sv_cost_p50 = pct 50.0;
    sv_cost_p90 = pct 90.0;
    sv_cost_p99 = pct 99.0;
    sv_wall_us = wall_us;
    sv_modules_per_sec =
      float_of_int requests_total *. 1e6 /. float_of_int (max 1 wall_us);
  }

let collect ~label (workloads : Common.workload list) : report =
  (* Sequence explicitly: record fields evaluate in unspecified order,
     and the measurements must not run against a registry frozen by the
     service sweep before the dialects initialized. *)
  let entries =
    List.map (fun w -> entry_of_comparison (Common.compare_workload w)) workloads
  in
  let service = collect_service workloads in
  {
    r_schema_version = schema_version;
    r_label = label;
    r_entries = entries;
    r_service = service;
  }

(* ---------------------------------------------------------------- *)
(* JSON (via the shared Mlir.Json printer/parser)                    *)

let metrics_to_json (m : config_metrics) : Json.t =
  Json.Obj
    [ ("cycles", Json.Int m.cm_cycles);
      ("valid", Json.Bool m.cm_valid);
      ("device_cycles", Json.Int m.cm_device_cycles);
      ("transfer_cycles", Json.Int m.cm_transfer_cycles);
      ("kernel_launches", Json.Int m.cm_kernel_launches);
      ("global_transactions", Json.Int m.cm_global_transactions);
      ("local_transactions", Json.Int m.cm_local_transactions);
      ( "metrics",
        Json.Obj
          [ ("transfer_bytes_h2d", Json.Int m.cm_transfer_bytes_h2d);
            ("transfer_bytes_d2h", Json.Int m.cm_transfer_bytes_d2h);
            ("dag_wait_edges", Json.Int m.cm_dag_wait_edges);
            ( "launch_latency",
              Json.Obj
                [ ("p50", Json.Int m.cm_launch_p50);
                  ("p90", Json.Int m.cm_launch_p90);
                  ("p99", Json.Int m.cm_launch_p99) ] ) ] ) ]

let hotspot_to_json (h : hotspot) : Json.t =
  Json.Obj
    [ ("line", Json.String h.h_line);
      ("cycles", Json.Int h.h_cycles);
      ("share", Json.Float h.h_share) ]

(* Like the service section, the entry's machine-dependent wall time is
   isolated under "measured" so the CI determinism diff can drop exactly
   that subtree; everything else in "compile" is deterministic and
   gated. *)
let compile_to_json (c : compile_metrics) : Json.t =
  let counts kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs) in
  Json.Obj
    [ ( "parse",
        Json.Obj
          [ ("ops", Json.Int c.co_parse_ops);
            ("chars", Json.Int c.co_parse_chars) ] );
      ("ops_visited", counts c.co_ops_visited);
      ("rewrites", counts c.co_rewrites);
      ("measured", Json.Obj [ ("wall_us", Json.Int c.co_wall_us) ]) ]

let cache_to_json (c : cache_metrics) : Json.t =
  Json.Obj
    [ ("model", Json.String "dm");
      ("hits", Json.Int c.ca_hits);
      ("misses", Json.Int c.ca_misses);
      ("evictions", Json.Int c.ca_evictions);
      ("hit_rate", Json.Float c.ca_hit_rate);
      ( "reuse",
        Json.Obj
          [ ("p50", Json.Int c.ca_reuse_p50);
            ("p90", Json.Int c.ca_reuse_p90);
            ("p99", Json.Int c.ca_reuse_p99) ] ) ]

let entry_to_json (e : entry) : Json.t =
  Json.Obj
    [ ("name", Json.String e.e_name);
      ("category", Json.String e.e_category);
      ("problem_size", Json.Int e.e_problem_size);
      ( "configs",
        Json.Obj (List.map (fun (k, m) -> (k, metrics_to_json m)) e.e_configs) );
      ("speedup_sycl_mlir", Json.Float e.e_speedup);
      ( "pass_stats",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.e_pass_stats) );
      ("hotspots", Json.List (List.map hotspot_to_json e.e_hotspots));
      ("compile", compile_to_json e.e_compile);
      ("cache", cache_to_json e.e_cache) ]

(* The "measured" subobject isolates every machine-dependent field; CI's
   determinism comparison drops exactly that subtree and compares the
   rest byte-for-byte. *)
let service_to_json (s : service_metrics) : Json.t =
  Json.Obj
    [ ("requests", Json.Int s.sv_requests);
      ("cache_hits", Json.Int s.sv_hits);
      ("cache_misses", Json.Int s.sv_misses);
      ("evictions", Json.Int s.sv_evictions);
      ("hit_rate", Json.Float s.sv_hit_rate);
      ( "compile_latency",
        Json.Obj
          [ ("unit", Json.String "cost-units");
            ("p50", Json.Int s.sv_cost_p50);
            ("p90", Json.Int s.sv_cost_p90);
            ("p99", Json.Int s.sv_cost_p99) ] );
      ( "measured",
        Json.Obj
          [ ("wall_us", Json.Int s.sv_wall_us);
            ("modules_per_sec", Json.Float s.sv_modules_per_sec) ] ) ]

let to_json (r : report) : string =
  Json.to_string
    (Json.Obj
       [ ("schema_version", Json.Int r.r_schema_version);
         ("label", Json.String r.r_label);
         ("workloads", Json.List (List.map entry_to_json r.r_entries));
         ("service", service_to_json r.r_service) ])
  ^ "\n"

exception Report_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Report_error s)) fmt

let req name v =
  match v with Some x -> x | None -> fail "missing or ill-typed field %S" name

let get_int j name = req name (Option.bind (Json.member name j) Json.as_int)
let get_str j name = req name (Option.bind (Json.member name j) Json.as_string)
let get_bool j name = req name (Option.bind (Json.member name j) Json.as_bool)

let metrics_of_json (j : Json.t) : config_metrics =
  let mj = req "metrics" (Json.member "metrics" j) in
  let lat = req "launch_latency" (Json.member "launch_latency" mj) in
  {
    cm_cycles = get_int j "cycles";
    cm_valid = get_bool j "valid";
    cm_device_cycles = get_int j "device_cycles";
    cm_transfer_cycles = get_int j "transfer_cycles";
    cm_kernel_launches = get_int j "kernel_launches";
    cm_global_transactions = get_int j "global_transactions";
    cm_local_transactions = get_int j "local_transactions";
    cm_transfer_bytes_h2d = get_int mj "transfer_bytes_h2d";
    cm_transfer_bytes_d2h = get_int mj "transfer_bytes_d2h";
    cm_dag_wait_edges = get_int mj "dag_wait_edges";
    cm_launch_p50 = get_int lat "p50";
    cm_launch_p90 = get_int lat "p90";
    cm_launch_p99 = get_int lat "p99";
  }

let entry_of_json (j : Json.t) : entry =
  {
    e_name = get_str j "name";
    e_category = get_str j "category";
    e_problem_size = get_int j "problem_size";
    e_configs =
      (match Json.member "configs" j with
      | Some (Json.Obj kvs) ->
        List.map (fun (k, v) -> (k, metrics_of_json v)) kvs
      | _ -> fail "missing or ill-typed field %S" "configs");
    e_speedup =
      req "speedup_sycl_mlir"
        (Option.bind (Json.member "speedup_sycl_mlir" j) Json.as_float);
    e_pass_stats =
      (match Json.member "pass_stats" j with
      | Some (Json.Obj kvs) ->
        List.map
          (fun (k, v) ->
            match Json.as_int v with
            | Some n -> (k, n)
            | None -> fail "pass_stats value for %S is not an integer" k)
          kvs
      | _ -> fail "missing or ill-typed field %S" "pass_stats");
    e_hotspots =
      (match Json.member "hotspots" j with
      | Some (Json.List items) ->
        List.map
          (fun h ->
            {
              h_line = get_str h "line";
              h_cycles = get_int h "cycles";
              h_share =
                req "share" (Option.bind (Json.member "share" h) Json.as_float);
            })
          items
      | _ -> fail "missing or ill-typed field %S" "hotspots");
    e_compile =
      (let cj = req "compile" (Json.member "compile" j) in
       let pj = req "parse" (Json.member "parse" cj) in
       let counts name =
         match Json.member name cj with
         | Some (Json.Obj kvs) ->
           List.map
             (fun (k, v) ->
               match Json.as_int v with
               | Some n -> (k, n)
               | None -> fail "compile.%s value for %S is not an integer" name k)
             kvs
         | _ -> fail "missing or ill-typed field %S" ("compile." ^ name)
       in
       let measured = req "measured" (Json.member "measured" cj) in
       {
         co_parse_ops = get_int pj "ops";
         co_parse_chars = get_int pj "chars";
         co_ops_visited = counts "ops_visited";
         co_rewrites = counts "rewrites";
         co_wall_us = get_int measured "wall_us";
       });
    e_cache =
      (let cj = req "cache" (Json.member "cache" j) in
       let rj = req "reuse" (Json.member "reuse" cj) in
       {
         ca_hits = get_int cj "hits";
         ca_misses = get_int cj "misses";
         ca_evictions = get_int cj "evictions";
         ca_hit_rate =
           req "hit_rate" (Option.bind (Json.member "hit_rate" cj) Json.as_float);
         ca_reuse_p50 = get_int rj "p50";
         ca_reuse_p90 = get_int rj "p90";
         ca_reuse_p99 = get_int rj "p99";
       });
  }

let get_float j name =
  req name (Option.bind (Json.member name j) Json.as_float)

let service_of_json (j : Json.t) : service_metrics =
  let lat = req "compile_latency" (Json.member "compile_latency" j) in
  let measured = req "measured" (Json.member "measured" j) in
  {
    sv_requests = get_int j "requests";
    sv_hits = get_int j "cache_hits";
    sv_misses = get_int j "cache_misses";
    sv_evictions = get_int j "evictions";
    sv_hit_rate = get_float j "hit_rate";
    sv_cost_p50 = get_int lat "p50";
    sv_cost_p90 = get_int lat "p90";
    sv_cost_p99 = get_int lat "p99";
    sv_wall_us = get_int measured "wall_us";
    sv_modules_per_sec = get_float measured "modules_per_sec";
  }

let of_json (s : string) : report =
  let j =
    match Json.parse s with
    | j -> j
    | exception Json.Parse_error msg -> fail "invalid JSON: %s" msg
  in
  let version = get_int j "schema_version" in
  if version <> schema_version then
    fail "unsupported schema version %d (expected %d)" version schema_version;
  {
    r_schema_version = version;
    r_label = get_str j "label";
    r_entries =
      (match Json.member "workloads" j with
      | Some (Json.List items) -> List.map entry_of_json items
      | _ -> fail "missing or ill-typed field %S" "workloads");
    r_service = service_of_json (req "service" (Json.member "service" j));
  }

(* ---------------------------------------------------------------- *)
(* Comparison                                                        *)

type issue_kind =
  | Cycle_regression
  | Latency_regression  (** a launch-latency percentile grew past tolerance *)
  | Validity_regression
  | Missing_workload
  | Missing_config
  | Compile_latency_regression
      (** a compile-service cost-unit percentile grew past tolerance *)
  | Hit_rate_regression  (** the service cache hit rate dropped past tolerance *)
  | Compiler_speed_regression
      (** a deterministic compiler-speed counter (ops visited, rewrites,
          parser ops/chars) grew past tolerance (v5) *)

type issue = {
  i_kind : issue_kind;
  i_workload : string;
  i_config : string;  (** "" for workload-level issues *)
  i_detail : string;
}

let issue_to_string (i : issue) =
  if i.i_config = "" then Printf.sprintf "%s: %s" i.i_workload i.i_detail
  else Printf.sprintf "%s [%s]: %s" i.i_workload i.i_config i.i_detail

(** Compare [current] against [baseline]: cycle counts and
    launch-latency percentiles may grow by at most [tolerance] (a
    fraction, default 5%), validity must not regress, and every baseline
    workload/config must still be present. New workloads and
    improvements are fine. *)
let compare_reports ?(tolerance = 0.05) ~(baseline : report)
    (current : report) : issue list =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  List.iter
    (fun (old_e : entry) ->
      match
        List.find_opt (fun e -> e.e_name = old_e.e_name) current.r_entries
      with
      | None ->
        add
          { i_kind = Missing_workload; i_workload = old_e.e_name;
            i_config = "";
            i_detail =
              Printf.sprintf "workload present in %s but missing from %s"
                baseline.r_label current.r_label }
      | Some new_e ->
        List.iter
          (fun (cfg, (old_m : config_metrics)) ->
            match List.assoc_opt cfg new_e.e_configs with
            | None ->
              add
                { i_kind = Missing_config; i_workload = old_e.e_name;
                  i_config = cfg;
                  i_detail = "configuration missing from the new report" }
            | Some new_m ->
              let budget_of v =
                int_of_float
                  (Float.round (float_of_int v *. (1.0 +. tolerance)))
              in
              let gate ?(hint = "") kind what old_v new_v =
                if new_v > budget_of old_v then
                  add
                    { i_kind = kind; i_workload = old_e.e_name;
                      i_config = cfg;
                      i_detail =
                        Printf.sprintf
                          "%s regressed %d -> %d (+%.1f%%, tolerance %.1f%%)%s"
                          what old_v new_v
                          (100.0
                          *. (float_of_int new_v /. float_of_int (max 1 old_v)
                             -. 1.0))
                          (100.0 *. tolerance) hint }
              in
              (* A cycle regression names the line that now dominates the
                 workload (the v4 hotspot section) — the gate itself stays
                 on the cycle tolerance. *)
              let hot_hint =
                match new_e.e_hotspots with
                | h :: _ ->
                  Printf.sprintf "; hottest line: %s (%d cycles, %.1f%%)"
                    h.h_line h.h_cycles (100.0 *. h.h_share)
                | [] -> ""
              in
              gate ~hint:hot_hint Cycle_regression "cycles" old_m.cm_cycles
                new_m.cm_cycles;
              gate Latency_regression "launch latency p50"
                old_m.cm_launch_p50 new_m.cm_launch_p50;
              gate Latency_regression "launch latency p90"
                old_m.cm_launch_p90 new_m.cm_launch_p90;
              gate Latency_regression "launch latency p99"
                old_m.cm_launch_p99 new_m.cm_launch_p99;
              if old_m.cm_valid && not new_m.cm_valid then
                add
                  { i_kind = Validity_regression; i_workload = old_e.e_name;
                    i_config = cfg;
                    i_detail = "result validated in the baseline but no longer does" })
          old_e.e_configs;
        (* v5 compiler-speed gate: the deterministic counters obey the
           same growth budget as cycles. Wall time ("measured") is
           deliberately not inspected here. A pass present in the
           baseline but absent from the new report was removed from the
           pipeline — not a regression. *)
        let gate_speed what old_v new_v =
          let budget =
            int_of_float
              (Float.round (float_of_int old_v *. (1.0 +. tolerance)))
          in
          if new_v > budget then
            add
              { i_kind = Compiler_speed_regression; i_workload = old_e.e_name;
                i_config = "sycl-mlir";
                i_detail =
                  Printf.sprintf
                    "%s regressed %d -> %d (+%.1f%%, tolerance %.1f%%)"
                    what old_v new_v
                    (100.0
                    *. (float_of_int new_v /. float_of_int (max 1 old_v)
                       -. 1.0))
                    (100.0 *. tolerance) }
        in
        let c_old = old_e.e_compile and c_new = new_e.e_compile in
        gate_speed "parser ops processed" c_old.co_parse_ops
          c_new.co_parse_ops;
        gate_speed "parser chars processed" c_old.co_parse_chars
          c_new.co_parse_chars;
        List.iter
          (fun (pass, old_v) ->
            match List.assoc_opt pass c_new.co_ops_visited with
            | Some new_v ->
              gate_speed (pass ^ " ops visited") old_v new_v
            | None -> ())
          c_old.co_ops_visited;
        List.iter
          (fun (pass, old_v) ->
            match List.assoc_opt pass c_new.co_rewrites with
            | Some new_v -> gate_speed (pass ^ " rewrites") old_v new_v
            | None -> ())
          c_old.co_rewrites;
        (* v6 cache gate: the simulated data-cache hit rate under the
           direct-mapped model may not drop by more than the tolerance
           fraction. Counters are deterministic, so there is no epsilon
           beyond float-comparison slack. *)
        let ca_old = old_e.e_cache and ca_new = new_e.e_cache in
        if
          ca_new.ca_hit_rate < (ca_old.ca_hit_rate *. (1.0 -. tolerance)) -. 1e-9
        then
          add
            { i_kind = Hit_rate_regression; i_workload = old_e.e_name;
              i_config = "sycl-mlir";
              i_detail =
                Printf.sprintf
                  "data-cache hit rate regressed %.1f%% -> %.1f%% (dm model, \
                   tolerance %.1f%%)"
                  (100.0 *. ca_old.ca_hit_rate) (100.0 *. ca_new.ca_hit_rate)
                  (100.0 *. tolerance) })
    baseline.r_entries;
  (* Report-level compile-service gates: the deterministic cost-unit
     percentiles obey the same growth budget as cycles; the hit rate may
     not drop by more than the tolerance fraction. Wall-clock throughput
     is machine-dependent and deliberately not gated. *)
  let s_old = baseline.r_service and s_new = current.r_service in
  let gate_cost what old_v new_v =
    if
      new_v
      > int_of_float (Float.round (float_of_int old_v *. (1.0 +. tolerance)))
    then
      add
        { i_kind = Compile_latency_regression; i_workload = "<service>";
          i_config = "";
          i_detail =
            Printf.sprintf
              "%s regressed %d -> %d cost units (+%.1f%%, tolerance %.1f%%)"
              what old_v new_v
              (100.0
              *. (float_of_int new_v /. float_of_int (max 1 old_v) -. 1.0))
              (100.0 *. tolerance) }
  in
  gate_cost "compile latency p50" s_old.sv_cost_p50 s_new.sv_cost_p50;
  gate_cost "compile latency p90" s_old.sv_cost_p90 s_new.sv_cost_p90;
  gate_cost "compile latency p99" s_old.sv_cost_p99 s_new.sv_cost_p99;
  if s_new.sv_hit_rate < (s_old.sv_hit_rate *. (1.0 -. tolerance)) -. 1e-9 then
    add
      { i_kind = Hit_rate_regression; i_workload = "<service>"; i_config = "";
        i_detail =
          Printf.sprintf
            "cache hit rate regressed %.1f%% -> %.1f%% (tolerance %.1f%%)"
            (100.0 *. s_old.sv_hit_rate) (100.0 *. s_new.sv_hit_rate)
            (100.0 *. tolerance) };
  List.rev !issues
