(* The hotspot-profiler harness: turns the simulator's per-op attribution
   (Sycl_sim.Attribution) into user-facing surfaces.

   Frontend-built workloads carry [Loc.Unknown] on every op — the
   builders have no source text. The profiler therefore runs a *located*
   copy: the module is printed and re-parsed under a virtual file name,
   so every op carries the [file:line] of its own textual form and the
   hotspot report reads like perf-annotate over the IR dump. Standalone
   [.mlir] files keep their real path. *)

open Mlir
module H = Common.Host_interp
module Attribution = Sycl_sim.Attribution

(** The virtual file name a located workload's locations point into. *)
let virtual_file (w : Common.workload) = w.Common.w_name ^ ".sycl.mlir"

(** [w] with its module printed and re-parsed under {!virtual_file}, so
    every op carries a concrete source location. Semantically identical:
    the textual pipeline tests prove print -> parse -> compile -> run
    matches the in-memory module. *)
let located_workload (w : Common.workload) : Common.workload =
  {
    w with
    Common.w_module =
      (fun () ->
        Parser.parse_module ~file:(virtual_file w)
          (Printer.to_string (w.Common.w_module ())));
  }

(** One table for the whole run: per-launch tables merged in launch
    order (merging is commutative sums, so the order is cosmetic). *)
let merged_attribution (r : H.run_result) : Attribution.table =
  let t = Attribution.create () in
  List.iter
    (fun (_, src) -> Attribution.merge ~into:t src)
    r.H.per_kernel_attribution;
  t

(** Same for the cache tables; [None] when the run simulated no cache
    (the flat model collects nothing). *)
let merged_cache (r : H.run_result) : Sycl_sim.Cache.table option =
  match r.H.per_kernel_cache with
  | [] -> None
  | tabs ->
    let t = Sycl_sim.Cache.create_table () in
    List.iter (fun (_, src) -> Sycl_sim.Cache.merge ~into:t src) tabs;
    Some t

(* ------------------------------------------------------------------ *)
(* Standalone .mlir file runner                                        *)
(* ------------------------------------------------------------------ *)

exception File_error of string

(** Synthesized host data for a parsed module's [main] signature:
    memrefs become deterministic random float buffers of [size * size]
    elements (large enough for any ND-range derived from [size]),
    index/integer arguments become [size], floats become [1.0]. *)
let synth_args (m : Core.op) ~(size : int) : H.hv list =
  let main =
    match Core.lookup_func m "main" with
    | Some f -> f
    | None -> raise (File_error "module has no main function")
  in
  let st = Common.rng 42 in
  List.map
    (fun (v : Core.value) ->
      match v.Core.vty with
      | Types.Memref _ -> Common.harg (Common.farray_random st (size * size))
      | Types.Index | Types.Integer _ -> Common.iarg size
      | Types.F32 | Types.F64 -> H.Scalar (Common.Interp.F 1.0)
      | t ->
        raise
          (File_error
             (Printf.sprintf "cannot synthesize main argument of type %s"
                (Types.to_string t))))
    (Core.block_args (Core.func_body main))

(** Parse [path], compile it under [cfg] and execute [main] with
    synthesized arguments. The parser stamps every op with its position
    in the file — under the basename, so the report (and any golden
    comparison against it) is independent of the invocation directory. *)
let run_file (cfg : Common.Driver.config) ?(size = 16) (path : string) :
    Core.op * H.run_result =
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg -> raise (File_error msg)
  in
  ignore (Common.fresh_module ());
  let m = Parser.parse_module ~file:(Filename.basename path) text in
  ignore (Common.Driver.compile cfg m);
  let args = synth_args m ~size in
  (m, H.run ~module_op:m args)

(* ------------------------------------------------------------------ *)
(* Optimization-delta report                                           *)
(* ------------------------------------------------------------------ *)

(** Run the located [w] twice — unoptimized reference pipeline (host
    raising only) vs. the full SYCL-MLIR pipeline with optimization
    remarks collected — and join the two attributions per source line
    ({!Attribution.delta}): each line's cycle delta lands next to the
    remarks that claimed it, with lines surviving only as
    [Fused]/[CallSite] constituents forwarded to the row carrying their
    cycles. *)
let delta_report (w : Common.workload) :
    Attribution.delta_row list * Remarks.t list =
  let text = Printer.to_string (w.Common.w_module ()) in
  let parse () = Parser.parse_module ~file:(virtual_file w) text in
  let run_tab passes m =
    ignore (Pass.run_pipeline ~verify_each:false passes m);
    let args, _ = w.Common.w_data () in
    merged_attribution (H.run ~module_op:m args)
  in
  let before = run_tab (Differential.reference_pipeline ()) (parse ()) in
  let after, remarks =
    Remarks.collect (fun () -> run_tab (Differential.full_pipeline ()) (parse ()))
  in
  (Attribution.delta ~before ~after ~remarks, remarks)

(* ------------------------------------------------------------------ *)
(* Per-launch conservation (satellite oracle)                          *)
(* ------------------------------------------------------------------ *)

(** Check that every launch's attribution decomposes its launch stats
    exactly ({!Attribution.conserves}); returns the first violation. *)
let check_conservation (r : H.run_result) : (unit, string) result =
  let rec go stats tabs =
    match (stats, tabs) with
    | [], [] -> Ok ()
    | (name, s) :: stats', (name', t) :: tabs' when name = name' -> (
      match Attribution.conserves t s with
      | Ok () -> go stats' tabs'
      | Error msg -> Error (Printf.sprintf "%s: %s" name msg))
    | _ -> Error "per_kernel and per_kernel_attribution lists disagree"
  in
  go r.H.per_kernel r.H.per_kernel_attribution

(** Check that every launch's cache table decomposes its launch cache
    counters exactly and that [hits + misses = global_transactions]
    ({!Sycl_sim.Cache.conserves}). Trivially [Ok] under the flat model
    (no tables are collected). *)
let check_cache_conservation (r : H.run_result) : (unit, string) result =
  if r.H.per_kernel_cache = [] then Ok ()
  else
    (* Under a non-flat model every launch collects a table, so the two
       lists pair positionally like the attribution check. *)
    let rec go stats tabs =
      match (stats, tabs) with
      | [], [] -> Ok ()
      | (name, s) :: stats', (name', t) :: tabs' when name = name' -> (
        match Sycl_sim.Cache.conserves t s with
        | [] -> go stats' tabs'
        | v :: _ -> Error (Printf.sprintf "%s: %s" name v))
      | _ -> Error "per_kernel and per_kernel_cache lists disagree"
    in
    go r.H.per_kernel r.H.per_kernel_cache
