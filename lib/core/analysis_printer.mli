(** Analysis introspection (printer passes).

    Each pass runs one of the paper's Section V analyses and records the
    results in the IR as discardable [sycl.*] attributes plus a textual
    report on the configured sink (stderr by default). The attributes use
    only constructs the printer/parser round-trip, so annotated modules
    re-parse and re-verify. *)

open Mlir

(** Redirect the textual report (default: stderr). *)
val set_sink : (string -> unit) -> unit

(** {2 Annotation attribute names} *)

val alias_group_attr : string
val arg_alias_groups_attr : string
val uniform_attr : string
val arg_uniform_attr : string
val divergent_attr : string
val def_id_attr : string
val reaching_mods_attr : string
val reaching_pmods_attr : string
val access_matrix_attr : string
val access_offsets_attr : string
val coalescing_attr : string
val temporal_reuse_attr : string

val cycles_attr : string
(** Per-op device cycles, written by the hotspot profiler
    ([Sycl_sim.Attribution.annotate_module]). *)

val mem_cycles_attr : string
(** Memory-traffic share of {!cycles_attr}. *)

val cache_hits_attr : string
(** Per-op cache hits under a non-flat [--cache-model], written by the
    hotspot profiler. *)

val cache_misses_attr : string
(** Per-op cache misses under a non-flat [--cache-model]. *)

val reuse_dist_attr : string
(** Predicted constant-stride reuse distance (in cache lines), written
    by the "reuse" printer. *)

(** Every attribute the printers may add. *)
val annotation_attrs : string list

(** {2 The printer passes} *)

val print_alias : Pass.t
val print_uniformity : Pass.t
val print_reaching_defs : Pass.t
val print_memory_access : Pass.t

val print_reuse : Pass.t
(** Predicts constant-stride reuse distances from the access matrices
    and records them as {!reuse_dist_attr}; cross-checked against the
    simulator's measured cache hit rates. *)

(** Look up a printer by its user-facing name ("alias", "uniformity",
    "reaching-defs", "memory-access", "reuse"). *)
val by_name : string -> Pass.t option

(** The user-facing analysis names accepted by {!by_name}. *)
val known : string list

(** Remove every annotation attribute from the module. *)
val strip_annotations : Core.op -> unit
