(* Host raising (Section VII-A): the host module — obtained one-to-one
   from LLVM IR — is too low-level for analysis; this pass detects the
   DPC++ runtime-ABI call patterns and replaces them with SYCL dialect
   host operations (the sycl.host ops), producing code like the paper's
   Listing 9.

   As the paper notes, the raising patterns are tied to the runtime's ABI:
   if a call shape is not recognized (e.g. a non-constant mode argument),
   the call is left unraised and counted in the "raising.failed" statistic
   rather than mis-raised. *)

open Mlir

let const_int_of v =
  match Rewrite.constant_of_value v with
  | Some a -> Attr.as_int a
  | None -> None

let raise_call (op : Core.op) stats : bool =
  let b = Builder.before op in
  (* Raised sycl.host.* ops replace the call they model: keep its
     location. *)
  Builder.set_default_loc b op.Core.loc;
  let ok repl =
    List.iteri
      (fun i r -> Core.replace_all_uses_with r (Core.result repl i))
      (Core.results op);
    Core.erase_op op;
    Pass.Stats.bump stats "raising.raised";
    true
  in
  let ok0 () =
    Core.erase_op op;
    Pass.Stats.bump stats "raising.raised";
    true
  in
  let fail () =
    Pass.Stats.bump stats "raising.failed";
    false
  in
  match Dialects.Llvm.callee op with
  | Some c when c = Runtime_abi.queue_ctor ->
    let q = Sycl_host_ops.queue_ctor b in
    ok (Option.get (Core.defining_op q))
  | Some c when c = Runtime_abi.buffer_ctor -> (
    match Core.operands op with
    | data :: dims when dims <> [] -> (
      match data.Core.vty with
      | Types.Memref { element; _ } ->
        let buf = Sycl_host_ops.buffer_ctor b ~element ~host_data:data dims in
        ok (Option.get (Core.defining_op buf))
      | _ -> fail ())
    | _ -> fail ())
  | Some c when c = Runtime_abi.submit ->
    let h = Sycl_host_ops.submit b (Core.operand op 0) in
    ok (Option.get (Core.defining_op h))
  | Some c when c = Runtime_abi.accessor_ctor -> (
    match Core.operands op with
    | buf :: handler :: mode_v :: ranged_v :: rest -> (
      match (const_int_of mode_v, const_int_of ranged_v) with
      | Some mode_i, Some ranged_i -> (
        match Runtime_abi.mode_of_int mode_i with
        | Some mode ->
          let ranged =
            if ranged_i = 0 then None
            else begin
              let n = List.length rest / 2 in
              let ranges = List.filteri (fun i _ -> i < n) rest in
              let offsets = List.filteri (fun i _ -> i >= n) rest in
              Some (ranges, offsets)
            end
          in
          (* The raised accessor must reference the raised buffer value. *)
          if Sycl_types.(match buf.Core.vty with Buffer _ -> true | _ -> false)
          then
            let acc = Sycl_host_ops.accessor_ctor b ~mode buf handler ~ranged in
            ok (Option.get (Core.defining_op acc))
          else fail ()
        | None -> fail ())
      | _ -> fail ())
    | _ -> fail ())
  | Some c when c = Runtime_abi.set_captured -> (
    match (Core.operands op, const_int_of (Core.operand op 2)) with
    | [ handler; v; _ ], Some idx ->
      Sycl_host_ops.set_captured b handler ~index:idx v;
      ok0 ()
    | _ -> fail ())
  | Some c when c = Runtime_abi.set_nd_range -> (
    match Core.operands op with
    | handler :: dims_v :: rest -> (
      match const_int_of dims_v with
      | Some d when List.length rest >= d + 1 -> (
        let global = List.filteri (fun i _ -> i < d) rest in
        let has_local_v = List.nth rest d in
        match const_int_of has_local_v with
        | Some hl ->
          let local =
            if hl = 0 then None
            else Some (List.filteri (fun i _ -> i > d) rest)
          in
          Sycl_host_ops.set_nd_range b handler ~global ~local;
          ok0 ()
        | None -> fail ())
      | _ -> fail ())
    | _ -> fail ())
  | Some c when c = Runtime_abi.parallel_for -> (
    match Core.attr_symbol op "kernel" with
    | Some k ->
      Sycl_host_ops.parallel_for b (Core.operand op 0) ~kernel:k;
      ok0 ()
    | None -> fail ())
  | Some c when c = Runtime_abi.queue_wait ->
    Sycl_host_ops.wait b (Core.operand op 0);
    ok0 ()
  | Some c when c = Runtime_abi.buffer_dtor ->
    Sycl_host_ops.buffer_dtor b (Core.operand op 0);
    ok0 ()
  | Some c when c = Runtime_abi.malloc_device -> (
    match (Core.results op, Core.operands op) with
    | [ r ], [ q; n ] -> (
      match r.Core.vty with
      | Types.Memref { element; _ } ->
        let p = Sycl_host_ops.malloc_device b q n ~element in
        ok (Option.get (Core.defining_op p))
      | _ -> fail ())
    | _ -> fail ())
  | Some c when c = Runtime_abi.memcpy -> (
    match Core.operands op with
    | [ q; dst; src; n ] ->
      Sycl_host_ops.memcpy b q ~dst ~src ~count:n;
      ok0 ()
    | _ -> fail ())
  | Some c when c = Runtime_abi.free -> (
    match Core.operands op with
    | [ q; p ] ->
      Sycl_host_ops.free b q p;
      ok0 ()
    | _ -> fail ())
  | _ -> false

let run (m : Core.op) stats =
  List.iter
    (fun f ->
      if not (Dialects.Func.is_declaration f) then begin
        let calls =
          Core.collect f ~p:(fun o ->
              Dialects.Llvm.is_call o
              &&
              match Dialects.Llvm.callee o with
              | Some c -> String.length c > 7 && String.sub c 0 7 = "__sycl_"
              | None -> false)
        in
        List.iter (fun c -> ignore (raise_call c stats)) calls
      end)
    (Core.funcs m)

let pass = Pass.make "host-raising" run
