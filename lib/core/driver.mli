(** Compiler driver: the three compiler configurations compared in the
    paper's evaluation (Section VIII) and their pass pipelines.

    - {!Dpcpp}: the LLVM-based baseline; SMCP flow (Fig. 1, dotted path) —
      device code compiled in isolation from the host, generic
      optimizations only.
    - {!Sycl_mlir}: the paper's compiler; joint host/device module
      (Fig. 1, dashed path) — host raising, host-device propagation, then
      the SYCL-aware device pipeline.
    - {!Adaptive_cpp}: an SSCP JIT comparator — generic compile, with
      {!specialize_at_launch} invoked by the runtime at first launch using
      runtime information. *)

open Mlir

type mode =
  | Dpcpp
  | Sycl_mlir
  | Adaptive_cpp

val mode_to_string : mode -> string

type config = {
  mode : mode;
  enable_licm : bool;
  enable_reduction : bool;
  enable_internalization : bool;
  enable_host_device : bool;
  enable_alias_refinement : bool;
  enable_fusion : bool;  (** the Section VII fusion extension (default off) *)
  enable_lowering : bool;
      (** progressive lowering to the flattened kernel ABI (default off) *)
  verify_each : bool;
}

(** Build a configuration; every optimization defaults to on except
    fusion (not part of the paper's evaluated compiler) and per-pass
    verification. *)
val config :
  ?enable_licm:bool ->
  ?enable_reduction:bool ->
  ?enable_internalization:bool ->
  ?enable_host_device:bool ->
  ?enable_alias_refinement:bool ->
  ?enable_fusion:bool ->
  ?enable_lowering:bool ->
  ?verify_each:bool ->
  mode ->
  config

(** Canonical serialization of a configuration (mode + every ablation
    switch), used as the pipeline half of the compile service's
    content-addressed cache key: equal keys iff equal configs. *)
val config_key : config -> string

(** Restricted LICM hoisting only pure speculatable ops — the baseline's
    level of loop-invariant code motion. *)
val licm_pure_pass : Pass.t

(** Device pipeline for a configuration. *)
val device_pipeline : config -> Pass.t list

(** Host pipeline (raising always runs so the runtime can execute the
    module; host-device propagation only under {!Sycl_mlir}). *)
val host_pipeline : config -> Pass.t list

type compiled = {
  cfg : config;
  joint : Core.op;  (** the module: host main + device kernels *)
  pipeline_result : Pass.pipeline_result;
}

exception Compile_error of string

(** Compile a joint module in place. [instrumentations] are threaded to
    {!Pass.run_pipeline} (timing, IR-change detection, IR dumps). *)
val compile :
  ?instrumentations:Instrument.t list -> config -> Core.op -> compiled

(** Innermost module ancestor of an op. *)
val top_module : Core.op -> Core.op option

(** AdaptiveCpp-style JIT specialization at first kernel launch: the
    runtime supplies the actual launch configuration and runtime-derived
    facts; the kernel is optimized in place. Returns the pass statistics
    of the specialization. *)
val specialize_at_launch :
  Core.op ->
  global:int list ->
  wg:int list ->
  noalias_pairs:(int * int) list ->
  constant_args:int list ->
  Pass.Stats.t
