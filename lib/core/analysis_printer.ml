(* Analysis introspection: printer passes in the spirit of MLIR's
   -test-print-* passes. Each pass runs one of the Section V analyses
   (alias, uniformity, reaching definitions, memory access) and records
   the results directly in the IR as discardable `sycl.*` attributes —
   using only attribute constructs the parser round-trips — plus a
   human-readable report on the configured sink (stderr by default).
   The annotations let golden tests, and users debugging a transform
   decision, see exactly what the analyses proved. *)

open Mlir

(* ---------------------------------------------------------------- *)
(* Report sink                                                       *)

let sink : (string -> unit) ref = ref prerr_string
let set_sink f = sink := f
let reportf fmt = Printf.ksprintf (fun s -> !sink s) fmt

(* ---------------------------------------------------------------- *)
(* Annotation attribute names                                        *)

let alias_group_attr = "sycl.alias_group"
let arg_alias_groups_attr = "sycl.arg_alias_groups"
let uniform_attr = "sycl.uniform"
let arg_uniform_attr = "sycl.arg_uniform"
let divergent_attr = "sycl.divergent"
let def_id_attr = "sycl.def_id"
let reaching_mods_attr = "sycl.reaching_mods"
let reaching_pmods_attr = "sycl.reaching_pmods"
let access_matrix_attr = "sycl.access_matrix"
let access_offsets_attr = "sycl.access_offsets"
let coalescing_attr = "sycl.coalescing"
let temporal_reuse_attr = "sycl.temporal_reuse"

(* Hotspot attribution (written by Sycl_sim.Attribution.annotate_module):
   cycles and memory cycles the simulator attributed to the op, plus the
   cache-model hit/miss counts when a non-flat --cache-model ran. *)
let cycles_attr = "sycl.cycles"
let mem_cycles_attr = "sycl.mem_cycles"
let cache_hits_attr = "sycl.cache_hits"
let cache_misses_attr = "sycl.cache_misses"

(* Predicted constant-stride reuse distance (the "reuse" printer): the
   number of distinct cache lines a sub-group touches between two
   consecutive accesses of the same line, derived from the access
   matrix. *)
let reuse_dist_attr = "sycl.reuse_dist"

let annotation_attrs =
  [ alias_group_attr; arg_alias_groups_attr; uniform_attr; arg_uniform_attr;
    divergent_attr; def_id_attr; reaching_mods_attr; reaching_pmods_attr;
    access_matrix_attr; access_offsets_attr; coalescing_attr;
    temporal_reuse_attr; cycles_attr; mem_cycles_attr; cache_hits_attr;
    cache_misses_attr; reuse_dist_attr ]

(* ---------------------------------------------------------------- *)
(* Alias printer                                                     *)

let pointer_like (v : Core.value) =
  Types.is_memref v.Core.vty || Sycl_types.is_accessor v.Core.vty

let base_equal (a : Alias.base) (b : Alias.base) =
  match (a, b) with
  | Alias.Alloc x, Alias.Alloc y -> x == y
  | Alias.Global x, Alias.Global y -> x = y
  | Alias.Accessor_arg x, Alias.Accessor_arg y
  | Alias.Memref_arg x, Alias.Memref_arg y -> Core.value_equal x y
  | _ -> false

let arg_index (v : Core.value) =
  match v.Core.vdef with Core.Block_arg (_, i) -> Some i | _ -> None

let base_to_string = function
  | Alias.Alloc op -> "alloc " ^ Printer.summary op
  | Alias.Global g -> "global @" ^ g
  | Alias.Accessor_arg v ->
    Printf.sprintf "accessor arg %%arg%d"
      (Option.value ~default:(-1) (arg_index v))
  | Alias.Memref_arg v ->
    Printf.sprintf "memref arg %%arg%d"
      (Option.value ~default:(-1) (arg_index v))
  | Alias.Unknown_base -> "unknown"

let print_alias_on_func (f : Core.op) stats =
  if not (Dialects.Func.is_declaration f) then begin
    (* Assign group ids: one per distinct base object, in program order.
       Unknown bases are conservative — each gets its own group. *)
    let groups : (int * Alias.base) list ref = ref [] in
    let group_of (v : Core.value) =
      let b = Alias.base_of v in
      match
        List.find_opt
          (fun (_, b') ->
            b <> Alias.Unknown_base && b' <> Alias.Unknown_base
            && base_equal b b')
          !groups
      with
      | Some (g, _) -> g
      | None ->
        let g = List.length !groups in
        groups := !groups @ [ (g, b) ];
        Pass.Stats.bump stats "alias.groups";
        g
    in
    let args = Core.block_args (Core.func_body f) in
    let arg_groups =
      List.map
        (fun a ->
          if pointer_like a then begin
            Pass.Stats.bump stats "alias.pointer-values";
            group_of a
          end
          else -1)
        args
    in
    if List.exists (fun g -> g >= 0) arg_groups then
      Core.set_attr f arg_alias_groups_attr
        (Attr.Dense_int (Array.of_list arg_groups));
    Core.walk f ~f:(fun op ->
        if not (op == f) then
          List.iter
            (fun r ->
              if pointer_like r then begin
                Pass.Stats.bump stats "alias.pointer-values";
                Core.set_attr op alias_group_attr (Attr.Int (group_of r))
              end)
            (Core.results op));
    (* Report: the groups, then the pairwise relation of pointer args. *)
    reportf "=== alias: @%s ===\n" (Core.func_sym f);
    List.iter
      (fun (g, b) -> reportf "  group %d: %s\n" g (base_to_string b))
      !groups;
    let ptr_args = List.filter pointer_like args in
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if j > i then
              reportf "  %%arg%d vs %%arg%d: %s-alias\n"
                (Option.value ~default:(-1) (arg_index a))
                (Option.value ~default:(-1) (arg_index b))
                (Alias.result_to_string (Alias.alias a b)))
          ptr_args)
      ptr_args;
    List.iter
      (fun (i, j) -> reportf "  host fact: args %d, %d are no-alias\n" i j)
      (Alias.noalias_pairs f);
    List.iter
      (fun (i, j) -> reportf "  host fact: args %d, %d are must-alias\n" i j)
      (Alias.mustalias_pairs f)
  end

let print_alias = Pass.on_functions "print-alias" print_alias_on_func

(* ---------------------------------------------------------------- *)
(* Uniformity printer (inter-procedural: runs on the whole module)   *)

let print_uniformity =
  Pass.make "print-uniformity" (fun m stats ->
      let u = Uniformity.analyze m in
      let lattice_attr vs =
        Attr.Array
          (List.map
             (fun v ->
               let l = Uniformity.value u v in
               (match l with
               | Uniformity.Uniform -> Pass.Stats.bump stats "uniformity.uniform"
               | Uniformity.Unknown -> Pass.Stats.bump stats "uniformity.unknown"
               | Uniformity.Non_uniform ->
                 Pass.Stats.bump stats "uniformity.non-uniform");
               Attr.String (Uniformity.lattice_to_string l))
             vs)
      in
      List.iter
        (fun f ->
          if not (Dialects.Func.is_declaration f) then begin
            let args = Core.block_args (Core.func_body f) in
            if args <> [] then
              Core.set_attr f arg_uniform_attr (lattice_attr args);
            let divergent = ref 0 in
            Core.walk f ~f:(fun op ->
                if not (op == f) then begin
                  if Core.results op <> [] then
                    Core.set_attr op uniform_attr
                      (lattice_attr (Core.results op));
                  if
                    Core.num_regions op > 0
                    && Uniformity.in_divergent_region u op
                  then begin
                    Core.set_attr op divergent_attr Attr.Unit;
                    incr divergent;
                    Pass.Stats.bump stats "uniformity.divergent-regions"
                  end
                end);
            let non_uniform_args =
              List.length
                (List.filter
                   (fun a -> Uniformity.value u a <> Uniformity.Uniform)
                   args)
            in
            reportf
              "=== uniformity: @%s ===\n\
              \  kernel: %b  non-uniform args: %d  divergent region ops: %d\n"
              (Core.func_sym f) (Uniformity.is_kernel f) non_uniform_args
              !divergent
          end)
        (Core.funcs m))

(* ---------------------------------------------------------------- *)
(* Reaching-definitions printer                                      *)

let writes_memory (op : Core.op) =
  match Op_registry.memory_effects op with
  | Some effects ->
    List.exists
      (fun (kind, _) ->
        match kind with
        | Op_registry.Write | Op_registry.Free -> true
        | _ -> false)
      effects
  | None -> Core.num_regions op = 0 && not (Op_registry.is_pure op)

let print_reaching_defs_on_func (f : Core.op) stats =
  if not (Dialects.Func.is_declaration f) then begin
    let rd = Reaching_defs.analyze_with_args f in
    (* Stable def ids in walk (program) order for every potential memory
       modifier; loads then reference modifiers by id. *)
    let ids = Hashtbl.create 32 in
    let next = ref 0 in
    let id_of (op : Core.op) =
      match Hashtbl.find_opt ids op.Core.oid with
      | Some i -> i
      | None ->
        let i = !next in
        incr next;
        Hashtbl.replace ids op.Core.oid i;
        Core.set_attr op def_id_attr (Attr.Int i);
        Pass.Stats.bump stats "reaching-defs.defs";
        i
    in
    Core.walk f ~f:(fun op ->
        if (not (op == f)) && writes_memory op then ignore (id_of op));
    reportf "=== reaching-defs: @%s ===\n" (Core.func_sym f);
    Core.walk f ~f:(fun op ->
        if Dialects.Memref.is_load op then begin
          let mem, _ = Dialects.Memref.load_parts op in
          let { Reaching_defs.mods; pmods } =
            Reaching_defs.defs_at rd mem ~at:op
          in
          let to_ids ops = Array.of_list (List.map id_of ops) in
          Core.set_attr op reaching_mods_attr (Attr.Dense_int (to_ids mods));
          Core.set_attr op reaching_pmods_attr (Attr.Dense_int (to_ids pmods));
          Pass.Stats.bump stats "reaching-defs.loads";
          let show ops =
            String.concat ", "
              (List.map
                 (fun o -> Printf.sprintf "#%d %s" (id_of o) (Printer.summary o))
                 ops)
          in
          reportf "  %s: MODS {%s} PMODS {%s}\n" (Printer.summary op)
            (show mods) (show pmods)
        end)
  end

let print_reaching_defs =
  Pass.on_functions "print-reaching-defs" print_reaching_defs_on_func

(* ---------------------------------------------------------------- *)
(* Memory-access printer                                             *)

let print_memory_access_on_func (f : Core.op) stats =
  if Uniformity.is_kernel f && not (Dialects.Func.is_declaration f) then begin
    let rd = Reaching_defs.analyze_with_args f in
    reportf "=== memory-access: @%s ===\n" (Core.func_sym f);
    let loops =
      Core.collect f ~p:(fun o ->
          Dialects.Scf.is_for o || Dialects.Affine_ops.is_for o)
    in
    List.iter
      (fun loop ->
        let accesses = Memory_access.analyze_loop ~kernel:f rd loop in
        List.iter
          (fun (a : Memory_access.access) ->
            let op = a.Memory_access.acc_op in
            Core.set_attr op access_matrix_attr
              (Attr.Array
                 (Array.to_list
                    (Array.map (fun row -> Attr.Dense_int (Array.copy row))
                       a.Memory_access.matrix)));
            Core.set_attr op access_offsets_attr
              (Attr.Dense_int (Array.copy a.Memory_access.offsets));
            Core.set_attr op coalescing_attr
              (Attr.String
                 (Memory_access.coalescing_to_string a.Memory_access.coalescing));
            Core.set_attr op temporal_reuse_attr
              (Attr.Bool a.Memory_access.temporal_reuse);
            Pass.Stats.bump stats "memory-access.accesses";
            (match a.Memory_access.coalescing with
            | Memory_access.Linear | Memory_access.Reverse_linear ->
              Pass.Stats.bump stats "memory-access.coalesced"
            | Memory_access.Thread_invariant ->
              Pass.Stats.bump stats "memory-access.thread-invariant"
            | Memory_access.Non_coalesced ->
              Pass.Stats.bump stats "memory-access.non-coalesced");
            if a.Memory_access.temporal_reuse then
              Pass.Stats.bump stats "memory-access.temporal-reuse";
            reportf "  %s\n"
              (Format.asprintf "%a" Memory_access.pp_access a))
          accesses)
      loops
  end

let print_memory_access =
  Pass.on_functions "print-memory-access" print_memory_access_on_func

(* ---------------------------------------------------------------- *)
(* Reuse-distance printer                                            *)

(* Static constant-stride reuse prediction from the access matrices.
   The model mirrors the simulator's per-work-group cache: a sub-group's
   coalesced lines are probed in canonical order, so the reuse distance
   of an access is bounded by the loop body's per-iteration line
   footprint — the number of distinct cache lines the sub-group touches
   in one iteration of the enclosing loop.

   An access has constant-stride reuse when its line is re-touched on
   the next iteration, i.e. when its index is loop-invariant in every
   dimension, or when only the fastest-varying dimension carries the
   loop induction variable with a stride below the cache line. Such
   accesses get a [sycl.reuse_dist] attribute holding the predicted
   distance (the footprint); accesses whose line changes every
   iteration have no short reuse and stay unannotated.

   The sub-group and line geometry mirror [Sycl_sim.Cost.default]
   (sub-group of 16, 16 elements per line); lib/core cannot depend on
   lib/sim, so the constants are restated here. *)

let reuse_subgroup_size = 16
let reuse_line_elems = 16

(* Coefficient of the fastest-varying thread dimension in [row], and the
   coefficient of any loop induction variable. *)
let row_coeffs (vars : Memory_access.var list) (row : int array) =
  let thread = ref 0 and loop = ref 0 in
  let fastest = ref (-1) in
  List.iteri
    (fun i v ->
      match v with
      | Memory_access.Global_id d | Memory_access.Local_id d ->
        if d > !fastest && row.(i) <> 0 then begin
          fastest := d;
          thread := row.(i)
        end
      | Memory_access.Loop_iv _ -> if row.(i) <> 0 then loop := row.(i))
    vars;
  (!thread, !loop)

(* Distinct lines a sub-group touches per iteration for one access. *)
let access_footprint (a : Memory_access.access) =
  let rows = Array.length a.Memory_access.matrix in
  if rows = 0 then 1
  else begin
    let t, _ = row_coeffs a.Memory_access.vars a.Memory_access.matrix.(rows - 1) in
    if t = 0 then 1
    else
      max 1
        ((reuse_subgroup_size * abs t + reuse_line_elems - 1)
        / reuse_line_elems)
  end

(* Does [a]'s line survive to the next iteration? *)
let constant_stride_reuse (a : Memory_access.access) =
  let rows = Array.length a.Memory_access.matrix in
  if rows = 0 then false
  else begin
    let loop_in_outer = ref false in
    for r = 0 to rows - 2 do
      let _, l = row_coeffs a.Memory_access.vars a.Memory_access.matrix.(r) in
      if l <> 0 then loop_in_outer := true
    done;
    let _, last_l =
      row_coeffs a.Memory_access.vars a.Memory_access.matrix.(rows - 1)
    in
    (not !loop_in_outer) && abs last_l < reuse_line_elems
  end

let print_reuse_on_func (f : Core.op) stats =
  if Uniformity.is_kernel f && not (Dialects.Func.is_declaration f) then begin
    let rd = Reaching_defs.analyze_with_args f in
    reportf "=== reuse: @%s ===\n" (Core.func_sym f);
    let loops =
      Core.collect f ~p:(fun o ->
          Dialects.Scf.is_for o || Dialects.Affine_ops.is_for o)
    in
    List.iter
      (fun loop ->
        let accesses = Memory_access.analyze_loop ~kernel:f rd loop in
        if accesses <> [] then begin
          let footprint =
            List.fold_left (fun acc a -> acc + access_footprint a) 0 accesses
          in
          List.iter
            (fun (a : Memory_access.access) ->
              Pass.Stats.bump stats "reuse.accesses";
              if constant_stride_reuse a then begin
                Core.set_attr a.Memory_access.acc_op reuse_dist_attr
                  (Attr.Int footprint);
                Pass.Stats.bump stats "reuse.constant-stride";
                reportf "  %s: predicted reuse distance %d (footprint %d \
                         lines/iter)\n"
                  (Printer.summary a.Memory_access.acc_op)
                  footprint footprint
              end
              else begin
                Pass.Stats.bump stats "reuse.streaming";
                reportf "  %s: streaming (no constant-stride reuse)\n"
                  (Printer.summary a.Memory_access.acc_op)
              end)
            accesses
        end)
      loops
  end

let print_reuse = Pass.on_functions "print-reuse" print_reuse_on_func

(* ---------------------------------------------------------------- *)

let by_name = function
  | "alias" -> Some print_alias
  | "uniformity" -> Some print_uniformity
  | "reaching-defs" -> Some print_reaching_defs
  | "memory-access" -> Some print_memory_access
  | "reuse" -> Some print_reuse
  | _ -> None

let known = [ "alias"; "uniformity"; "reaching-defs"; "memory-access"; "reuse" ]

(** Strip every annotation this module adds (so a pipeline can re-run the
    printers, or tests can check the IR is otherwise unchanged). *)
let strip_annotations (m : Core.op) =
  Core.walk m ~f:(fun op ->
      List.iter (fun a -> Core.remove_attr op a) annotation_attrs)
