(* Common-subexpression elimination for pure ops, scoped by region
   nesting (values from enclosing blocks are visible in nested ones). *)

open Mlir

(* Structural key of an op: interned op name, operand ids, attributes and
   result types reduced to atom ids. Everything in the key is an int, so
   hashing and equality never walk strings or attribute payloads.

   Attributes are keyed by the atom of their *printed* form, which makes
   the key canonical exactly up to what the printer distinguishes — the
   semantics a round-trip preserves. This fixes two defects of the old
   polymorphic-compare key:
   - [compare 0.0 (-0.0) = 0] merged float constants the printer (and
     IEEE division) tell apart — a miscompile;
   - nan payloads collapse here only because the printer collapses them
     too ("nan"), so keying stays consistent with round-trips.
   Result types keep constants of equal value but different type
   distinct. *)
type key = {
  k_name : Atom.t;
  k_operands : int list;
  k_attrs : (Atom.t * Atom.t) list;  (* (attr key, printed value), sorted *)
  k_result_types : Atom.t list;
}

(* The type memo is per-run: CSE runs concurrently on compile-service
   worker domains, so a shared mutable cache would race. Attributes are
   deliberately NOT memoized by [Attr.t] value — a polymorphic Hashtbl
   keys with [compare], which would merge [0.0] and [-0.0] again before
   the printer ever saw them; interning their printed form directly is
   the canonicalization. Types contain no floats, so memoizing them by
   structure is safe. *)
type interner = { type_atoms : (Types.t, Atom.t) Hashtbl.t }

let type_atom it ty =
  match Hashtbl.find_opt it.type_atoms ty with
  | Some id -> id
  | None ->
    let id = Atom.intern (Types.to_string ty) in
    Hashtbl.replace it.type_atoms ty id;
    id

let key (it : interner) (op : Core.op) =
  {
    k_name = op.Core.name_id;
    k_operands =
      Array.to_list (Array.map (fun v -> v.Core.vid) op.Core.operands);
    k_attrs =
      List.sort
        (fun (a, _) (b, _) -> Atom.compare a b)
        (List.map
           (fun (k, a) -> (Atom.intern k, Atom.intern (Attr.to_string a)))
           op.Core.attrs);
    k_result_types =
      List.map (fun r -> type_atom it r.Core.vty) (Core.results op);
  }

let run_on_func (f : Core.op) stats =
  let it = { type_atoms = Hashtbl.create 32 } in
  let rec go (scope : (key, Core.op) Hashtbl.t) (block : Core.block) =
    let snapshot = block.Core.body in
    List.iter
      (fun op ->
        if op.Core.parent_block <> None then begin
          Pass.Stats.bump stats "cse.ops_visited";
          (* Only CSE pure, region-free ops. *)
          if
            Core.num_regions op = 0
            && Core.num_results op > 0
            && Op_registry.is_pure op
          then begin
            let k = key it op in
            match Hashtbl.find_opt scope k with
            | Some existing ->
              if Remarks.enabled () then
                Remarks.emit ~pass:"cse" ~name:"eliminated" Remarks.Passed ~op
                  (Printf.sprintf
                     "duplicate %s eliminated in favor of an earlier \
                      identical computation"
                     op.Core.name);
              (* The surviving op keeps its own location: the eliminated
                 duplicate's position is recorded in the remark above. *)
              List.iteri
                (fun i r -> Core.replace_all_uses_with r (Core.result existing i))
                (Core.results op);
              Core.erase_op op;
              Pass.Stats.bump stats "cse.eliminated"
            | None ->
              Hashtbl.replace scope k op;
              Pass.Stats.bump stats "cse.candidates"
          end
          else
            (* Recurse into regions with a copied scope (nested blocks see
               the enclosing expressions but not vice versa). *)
            Array.iter
              (fun r ->
                List.iter (fun b -> go (Hashtbl.copy scope) b) r.Core.blocks)
              op.Core.regions
        end)
      snapshot
  in
  List.iter
    (fun b -> go (Hashtbl.create 64) b)
    f.Core.regions.(0).Core.blocks

let pass = Pass.on_functions "cse" run_on_func
