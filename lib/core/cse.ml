(* Common-subexpression elimination for pure ops, scoped by region
   nesting (values from enclosing blocks are visible in nested ones). *)

open Mlir

(* Structural key of an op: name, operand ids, sorted attrs, result types
   (two constants with the same value but different types are distinct). *)
let key (op : Core.op) =
  ( op.Core.name,
    Array.to_list (Array.map (fun v -> v.Core.vid) op.Core.operands),
    List.sort compare op.Core.attrs,
    List.map (fun r -> Types.to_string r.Core.vty) (Core.results op) )

let run_on_func (f : Core.op) stats =
  let rec go (scope : (string * int list * (string * Attr.t) list * string list, Core.op) Hashtbl.t)
      (block : Core.block) =
    let snapshot = block.Core.body in
    List.iter
      (fun op ->
        if op.Core.parent_block <> None then begin
          (* Only CSE pure, region-free ops. *)
          if
            Core.num_regions op = 0
            && Core.num_results op > 0
            && Op_registry.is_pure op
          then begin
            let k = key op in
            match Hashtbl.find_opt scope k with
            | Some existing ->
              if Remarks.enabled () then
                Remarks.emit ~pass:"cse" ~name:"eliminated" Remarks.Passed ~op
                  (Printf.sprintf
                     "duplicate %s eliminated in favor of an earlier \
                      identical computation"
                     op.Core.name);
              (* The surviving op keeps its own location: the eliminated
                 duplicate's position is recorded in the remark above. *)
              List.iteri
                (fun i r -> Core.replace_all_uses_with r (Core.result existing i))
                (Core.results op);
              Core.erase_op op;
              Pass.Stats.bump stats "cse.eliminated"
            | None ->
              Hashtbl.replace scope k op;
              Pass.Stats.bump stats "cse.candidates"
          end
          else
            (* Recurse into regions with a copied scope (nested blocks see
               the enclosing expressions but not vice versa). *)
            Array.iter
              (fun r ->
                List.iter (fun b -> go (Hashtbl.copy scope) b) r.Core.blocks)
              op.Core.regions
        end)
      snapshot
  in
  List.iter
    (fun b -> go (Hashtbl.create 64) b)
    f.Core.regions.(0).Core.blocks

let pass = Pass.on_functions "cse" run_on_func
