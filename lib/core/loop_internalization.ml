(* Loop internalization (Section VI-C): accessor loads inside a kernel
   loop that exhibit temporal reuse are prefetched, one work-group-sized
   tile at a time, into work-group local memory. The loop is tiled by the
   work-group size M; each work-item cooperatively loads one tile element;
   group barriers separate the fill from the tiled inner loop, so the
   Uniformity analysis must first prove the loop is not in a divergent
   region (a barrier there would deadlock).

   The supported access shapes are the Kaeli-style patterns of the
   polyhedral benchmarks: each accessor index row is either
       gid_d + c   (one work-item global-id dimension), or
       iv + c      (the candidate loop's induction variable), or
       c           (a constant),
   with exactly one iv row per access. This covers e.g. A[i][k], B[k][j],
   B[j][k] in the matmul family (2mm, 3mm, gemm, syrk, syr2k). *)

open Mlir

type row_shape =
  | Row_gid of int * int  (* dimension, offset *)
  | Row_iv of int  (* offset; coefficient on iv is 1 *)
  | Row_const of int

type candidate = {
  cand_access : Memory_access.access;
  cand_rows : row_shape list;
  cand_accessor : Core.value;
}

let is_loop op = Dialects.Scf.is_for op || Dialects.Affine_ops.is_for op

let remark = Remarks.emit ~pass:"loop-internalization"

(** Decompose the access-matrix rows of [a] against the candidate loop
    [loop]. Returns None when the shape is unsupported. *)
let row_shapes (loop : Core.op) (a : Memory_access.access) : row_shape list option =
  let vars = Array.of_list a.Memory_access.vars in
  let shape_of_row row offset =
    let nz =
      Array.to_list (Array.mapi (fun i c -> (i, c)) row)
      |> List.filter (fun (_, c) -> c <> 0)
    in
    match nz with
    | [] -> Some (Row_const offset)
    | [ (col, 1) ] -> (
      match vars.(col) with
      | Memory_access.Global_id d -> Some (Row_gid (d, offset))
      | Memory_access.Loop_iv oid when oid = loop.Core.oid -> Some (Row_iv offset)
      | _ -> None)
    | _ -> None
  in
  let rows =
    List.mapi
      (fun i row -> shape_of_row row a.Memory_access.offsets.(i))
      (Array.to_list a.Memory_access.matrix)
  in
  if List.for_all Option.is_some rows then Some (List.map Option.get rows)
  else None

let is_candidate ~(kd : int) (loop : Core.op) (a : Memory_access.access) :
    candidate option =
  if a.Memory_access.kind <> Memory_access.Load then None
    (* Stores are currently not considered (same restriction the paper
       reports for its implementation). *)
  else if not a.Memory_access.temporal_reuse then None
  else
    match (a.Memory_access.accessor, row_shapes loop a) with
    | Some acc, Some rows ->
      let n_iv =
        List.length (List.filter (function Row_iv _ -> true | _ -> false) rows)
      in
      let n_gid =
        List.length (List.filter (function Row_gid _ -> true | _ -> false) rows)
      in
      let rank = List.length rows in
      (* Supported tile shapes: rank-2 accesses in 2-D kernels with one iv
         row and at most one gid row (the matmul family), and rank-1
         accesses indexed purely by the loop iv (streamed vectors). *)
      let shape_ok =
        (rank = 2 && kd = 2 && n_iv = 1 && n_gid <= 1)
        || (rank = 1 && n_iv = 1 && n_gid = 0)
      in
      if shape_ok then
        Some { cand_access = a; cand_rows = rows; cand_accessor = acc }
      else None
    | _ -> None

(** Tile size = work-group size. Taken from the launch configuration when
    host analysis recorded one ("sycl.wg_size"); otherwise the runtime's
    preferred work-group size for the kernel's dimensionality is assumed
    and the generated code re-checks it at runtime (the versioning
    condition includes local-range equality, so a mismatching launch falls
    back to the original loop). *)
let wg_tile_size (kernel : Core.op) ~(kd : int) =
  match Core.attr kernel "sycl.wg_size" with
  | Some (Attr.Array xs) -> (
    match List.filter_map Attr.as_int xs with
    | [ m ] -> Some m
    | [ m0; m1 ] when m0 = m1 -> Some m0
    | _ -> None)
  | _ -> (
    match kd with
    | 1 -> Some Launch_policy.preferred_wg_1d
    | 2 -> Some Launch_policy.preferred_wg_2d
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* IR construction helpers                                             *)
(* ------------------------------------------------------------------ *)

(** (Re)materialize a global/local id getter at builder [b]. *)
let build_gid b (item : Core.value) d =
  let dim = Dialects.Arith.const_int b ~ty:Types.i32 d in
  match item.Core.vty with
  | Sycl_types.Nd_item _ -> Sycl_ops.nd_item_get_global_id b item dim
  | _ -> Sycl_ops.item_get_id b item dim

let build_lid b (item : Core.value) d =
  let dim = Dialects.Arith.const_int b ~ty:Types.i32 d in
  Sycl_ops.nd_item_get_local_id b item dim

let add_offset b v c =
  if c = 0 then v else Dialects.Arith.addi b v (Dialects.Arith.const_index b c)

(** Load one element of [accessor] at the index values [idx] (one per
    accessor dimension). *)
let load_accessor_element b (accessor : Core.value) (idx : Core.value list) =
  let view = Sycl_ops.accessor_subscript_multi b accessor idx in
  let c0 = Dialects.Arith.const_index b 0 in
  Dialects.Memref.load b view [ c0 ]

type tile = {
  tile_mem : Core.value;
  tile_cand : candidate;
  (* Index dimension of the local id the iv row maps to during fill. *)
  fill_iv_lid : int;
}

(* ------------------------------------------------------------------ *)
(* The transformation                                                  *)
(* ------------------------------------------------------------------ *)

let loop_step (loop : Core.op) =
  if Dialects.Scf.is_for loop then
    match Rewrite.constant_of_value (Dialects.Scf.for_step loop) with
    | Some (Attr.Int s) -> Some s
    | _ -> None
  else Some (Dialects.Affine_ops.for_step loop)

let loop_bound_values b (loop : Core.op) =
  if Dialects.Scf.is_for loop then
    (Dialects.Scf.for_lb loop, Dialects.Scf.for_ub loop)
  else
    let of_map map operands =
      match (map.Affine_expr.Map.exprs, operands) with
      | [ Affine_expr.Const c ], [] -> Dialects.Arith.const_index b c
      | [ Affine_expr.Dim 0 ], [ v ] -> v
      | _ -> Dialects.Affine_ops.apply b map operands
    in
    ( of_map (Dialects.Affine_ops.for_lb_map loop) (Dialects.Affine_ops.for_lb_operands loop),
      of_map (Dialects.Affine_ops.for_ub_map loop) (Dialects.Affine_ops.for_ub_operands loop) )

let loop_iter_inits (loop : Core.op) =
  if Dialects.Scf.is_for loop then Dialects.Scf.for_iter_inits loop
  else Dialects.Affine_ops.for_iter_inits loop

let loop_body_block (loop : Core.op) = Core.entry_block loop.Core.regions.(0)

(** Apply the transformation to [loop] in [kernel] for [cands]. [m] is the
    square work-group tile size. *)
let apply ~(kernel : Core.op) (loop : Core.op) (cands : candidate list) ~(m : int)
    (stats : Pass.Stats.t) =
  let kd = Memory_access.kernel_dims kernel in
  let item =
    match Memory_access.item_arg kernel with
    | Some v -> v
    | None -> invalid_arg "loop_internalization: kernel has no item argument"
  in
  (* Everything the rewrite materializes (ids, tiles, versioning guard,
     fill loop, tiled loop) stands for the original loop fused with the
     internalized accesses: builders stamp that location by default. *)
  let fused_loc =
    Loc.fused
      (loop.Core.loc
      :: List.map (fun c -> c.cand_access.Memory_access.acc_op.Core.loc) cands)
  in
  let entry = Core.func_body kernel in
  let top_builder =
    match entry.Core.body with
    | first :: _ -> Builder.before first
    | [] -> Builder.at_end entry
  in
  Builder.set_default_loc top_builder fused_loc;
  (* Local ids and gids, materialized at kernel entry (CSE cleans dups). *)
  let lids = Array.init kd (fun d -> build_lid top_builder item d) in
  let gid_cache = Hashtbl.create 4 in
  let gid d =
    match Hashtbl.find_opt gid_cache d with
    | Some v -> v
    | None ->
      let v = build_gid top_builder item d in
      Hashtbl.replace gid_cache d v;
      v
  in
  (* One local tile per candidate. Tile rank mirrors the access rank. *)
  let tiles =
    List.map
      (fun c ->
        let elem =
          match Sycl_types.accessor_info c.cand_accessor.Core.vty with
          | Some info -> info.Sycl_types.acc_element
          | None -> Types.f32
        in
        let rank = List.length c.cand_rows in
        let shape = List.init rank (fun _ -> m) in
        let tile_mem = Dialects.Gpu.alloc_local top_builder shape elem in
        (* The local-id dimension that walks the iv direction during the
           fill: the dimension not taken by the gid row (2-D work-groups),
           or dimension 0 for 1-D kernels. *)
        let gid_dim =
          List.find_map
            (function Row_gid (d, _) -> Some d | _ -> None)
            c.cand_rows
        in
        let fill_iv_lid =
          match gid_dim with
          | Some d when kd = 2 -> 1 - d
          | _ -> 0
        in
        { tile_mem; tile_cand = c; fill_iv_lid })
      cands
  in
  let b = Builder.before loop in
  Builder.set_default_loc b fused_loc;
  let lb, ub = loop_bound_values b loop in
  let m_c = Dialects.Arith.const_index b m in
  let zero = Dialects.Arith.const_index b 0 in
  (* Versioning: range > 0 && range mod M == 0. *)
  let range = Dialects.Arith.subi b ub lb in
  let pos = Dialects.Arith.cmpi b Dialects.Arith.Sgt range zero in
  let rem = Dialects.Arith.remsi b range m_c in
  let divisible = Dialects.Arith.cmpi b Dialects.Arith.Eq rem zero in
  let ok = Dialects.Arith.andi b pos divisible in
  (* The actual launch must use the assumed work-group size. When host
     analysis proved it (sycl.wg_size attr), no runtime check is needed;
     otherwise the versioning condition re-checks the local range. *)
  let ok =
    if Core.attr kernel "sycl.wg_size" <> None then ok
    else
      let check_dim acc d =
        let dim = Dialects.Arith.const_int b ~ty:Types.i32 d in
        let lr = Sycl_ops.nd_item_get_local_range b item dim in
        let eq = Dialects.Arith.cmpi b Dialects.Arith.Eq lr m_c in
        Dialects.Arith.andi b acc eq
      in
      List.fold_left check_dim ok (List.init kd Fun.id)
  in
  let orig_result_tys = List.map (fun r -> r.Core.vty) (Core.results loop) in
  let orig_inits = loop_iter_inits loop in
  let orig_clone = Core.clone_op loop in
  let body = loop_body_block loop in
  let orig_iv = Core.block_arg body 0 in
  let orig_iter_args = List.tl (Core.block_args body) in
  let orig_term =
    match List.rev body.Core.body with
    | t :: _ when Op_registry.is_terminator t -> t
    | _ -> invalid_arg "loop_internalization: no terminator"
  in
  let orig_yields = Core.operands orig_term in
  let if_op =
    Dialects.Scf.if_ b ok ~result_types:orig_result_tys
      ~then_:(fun bb ->
        Builder.set_default_loc bb fused_loc;
        (* Outer tiled loop over t. *)
        let outer =
          Dialects.Scf.for_ bb ~lb ~ub ~step:m_c ~iter_args:orig_inits
            (fun ob t outer_args ->
              Builder.set_default_loc ob fused_loc;
              (* Cooperative fill of each tile. *)
              List.iter
                (fun tile ->
                  let c = tile.tile_cand in
                  let fill_lid = lids.(tile.fill_iv_lid) in
                  let idx =
                    List.map
                      (fun row ->
                        match row with
                        | Row_gid (d, off) -> add_offset ob (gid d) off
                        | Row_iv off ->
                          add_offset ob (Dialects.Arith.addi ob t fill_lid) off
                        | Row_const cst -> Dialects.Arith.const_index ob cst)
                      c.cand_rows
                  in
                  let loaded = load_accessor_element ob c.cand_accessor idx in
                  (* Tile store index: gid rows -> lid_d, iv row -> the
                     fill lid, const rows -> lid of the fill dimension
                     (replicated; use 0 guarded below if 1-D in 2-D WG). *)
                  let tidx =
                    List.map
                      (fun row ->
                        match row with
                        | Row_gid (d, _) -> lids.(d)
                        | Row_iv _ -> fill_lid
                        | Row_const _ -> zero)
                      c.cand_rows
                  in
                  let rank = List.length c.cand_rows in
                  if rank = 1 && kd = 2 then begin
                    (* Only one row of work-items fills a 1-D tile. *)
                    let other = lids.(1 - tile.fill_iv_lid) in
                    let is0 = Dialects.Arith.cmpi ob Dialects.Arith.Eq other zero in
                    ignore
                      (Dialects.Scf.if_ ob is0
                         ~then_:(fun tb ->
                           Builder.set_default_loc tb fused_loc;
                           Dialects.Memref.store tb loaded tile.tile_mem tidx;
                           [])
                         ())
                  end
                  else Dialects.Memref.store ob loaded tile.tile_mem tidx)
                tiles;
              Dialects.Gpu.barrier ob;
              (* Tiled inner loop. *)
              let inner =
                Dialects.Scf.for_ ob ~lb:zero ~ub:m_c ~step:(Dialects.Arith.const_index ob 1)
                  ~iter_args:outer_args
                  (fun ib k2 inner_args ->
                    Builder.set_default_loc ib fused_loc;
                    let value_map = Hashtbl.create 32 in
                    let iv2 = Dialects.Arith.addi ib t k2 in
                    Hashtbl.replace value_map orig_iv.Core.vid iv2;
                    List.iter2
                      (fun oarg iarg ->
                        Hashtbl.replace value_map oarg.Core.vid iarg)
                      orig_iter_args inner_args;
                    (* Candidate loads become tile loads; everything else
                       is cloned. *)
                    let tile_for op =
                      List.find_opt
                        (fun tile ->
                          tile.tile_cand.cand_access.Memory_access.acc_op == op)
                        tiles
                    in
                    List.iter
                      (fun op ->
                        if op == orig_term then ()
                        else
                          match tile_for op with
                          | Some tile ->
                            let c = tile.tile_cand in
                            let tidx =
                              List.map
                                (fun row ->
                                  match row with
                                  | Row_gid (d, _) -> lids.(d)
                                  | Row_iv _ -> k2
                                  | Row_const _ -> zero)
                                c.cand_rows
                            in
                            let tl = Dialects.Memref.load ib tile.tile_mem tidx in
                            Hashtbl.replace value_map
                              (Core.result op 0).Core.vid tl
                          | None ->
                            ignore
                              (Builder.insert ib (Core.clone_op ~value_map op)))
                      body.Core.body;
                    List.map
                      (fun y ->
                        match Hashtbl.find_opt value_map y.Core.vid with
                        | Some v -> v
                        | None -> y)
                      orig_yields)
              in
              Dialects.Gpu.barrier ob;
              Core.results inner)
        in
        Core.results outer)
      ~else_:(fun eb ->
        Builder.insert eb orig_clone |> Core.results)
      ()
  in
  List.iteri
    (fun i r -> Core.replace_all_uses_with r (Core.result if_op i))
    (Core.results loop);
  Core.walk loop ~f:(fun o -> if not (o == loop) then Core.erase_op_unsafe o);
  Core.erase_op_unsafe loop;
  List.iter
    (fun c ->
      remark ~name:"prefetched" Remarks.Passed
        ~func:(Core.func_sym kernel)
        ~loc:(Loc.fused [ loop.Core.loc; c.cand_access.Memory_access.acc_op.Core.loc ])
        (Printf.sprintf
           "accessor load with temporal reuse prefetched into a %dx%d \
            work-group-local tile (loop tiled by the work-group size, with \
            a runtime divisibility guard)"
           m m))
    cands;
  (* Cache-model cross-reference: how the prefetched working set compares
     to the simulated per-core data cache ([Sycl_sim.Cost.default]: 64
     lines of 16 4-byte elements — restated here, lib/core cannot depend
     on lib/sim). A working set within capacity means the tiles also fit
     the modeled cache, so the local-memory prefetch competes with cache
     hits rather than DRAM; beyond capacity the prefetch saves the full
     miss latency. *)
  let cache_capacity_bytes = 64 * 16 * 4 in
  let elem_bytes = 4 in
  let working_set_bytes =
    List.fold_left
      (fun acc c ->
        let rank = List.length c.cand_rows in
        let elems = if rank >= 2 then m * m else m in
        acc + (elems * elem_bytes))
      0 cands
  in
  remark ~name:"working-set" Remarks.Analysis
    ~func:(Core.func_sym kernel) ~loc:loop.Core.loc
    (Printf.sprintf
       "prefetched working set is %d bytes across %d tile(s); the modeled \
        per-core cache holds %d bytes — the tiles %s"
       working_set_bytes (List.length cands) cache_capacity_bytes
       (if working_set_bytes <= cache_capacity_bytes then
          "fit in-cache (prefetch competes with cache hits)"
        else "exceed cache capacity (prefetch avoids repeated misses)"));
  Pass.Stats.bump ~by:(List.length cands) stats "internalization.prefetched";
  Pass.Stats.bump stats "internalization.loops"

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let innermost_loops (f : Core.op) =
  let loops = ref [] in
  Core.walk f ~f:(fun o ->
      if is_loop o then begin
        let has_nested_loop =
          Core.find_first o ~p:(fun n -> (not (n == o)) && is_loop n) <> None
        in
        if not has_nested_loop then loops := o :: !loops
      end);
  List.rev !loops

let run_on_kernel (uniformity : Uniformity.t) (kernel : Core.op) stats =
  let kname = Core.func_sym kernel in
  match wg_tile_size kernel ~kd:(Memory_access.kernel_dims kernel) with
  | None ->
    remark ~name:"no-tile-size" Remarks.Missed ~func:kname
      "kernel not internalized: no usable work-group tile size (launch \
       configuration unknown or non-square)"
  | Some m ->
    let rd = Reaching_defs.analyze_with_args kernel in
    List.iter
      (fun loop ->
        let bound_operands =
          if Dialects.Scf.is_for loop then
            [ Dialects.Scf.for_lb loop; Dialects.Scf.for_ub loop;
              Dialects.Scf.for_step loop ]
          else
            Dialects.Affine_ops.for_lb_operands loop
            @ Dialects.Affine_ops.for_ub_operands loop
        in
        if
          Uniformity.in_divergent_region uniformity loop
          || List.exists
               (fun v -> Uniformity.value uniformity v <> Uniformity.Uniform)
               bound_operands
        then begin
          remark ~name:"rejected-divergent" Remarks.Missed ~op:loop
            "loop not internalized: it sits in a divergent region or has \
             non-uniform bounds, so the cooperative-fill barrier could \
             deadlock";
          Pass.Stats.bump stats "internalization.rejected-divergent"
        end
        else if loop_step loop <> Some 1 then
          remark ~name:"rejected-step" Remarks.Missed ~op:loop
            "loop not internalized: only unit-step loops are tiled"
        else begin
          let accesses = Memory_access.analyze_loop ~kernel rd loop in
          let cands =
            List.filter_map
              (is_candidate ~kd:(Memory_access.kernel_dims kernel) loop)
              accesses
          in
          (* Refuse when a store in the loop may clobber a prefetched
             accessor (the tile would go stale). *)
          let stores =
            Core.collect loop ~p:(fun o -> Dialects.Memref.is_store o)
          in
          let safe c =
            List.for_all
              (fun st ->
                let _, mem, _ = Dialects.Memref.store_parts st in
                not (Alias.may_alias mem c.cand_accessor))
              stores
          in
          let safe_cands = List.filter safe cands in
          if List.length safe_cands < List.length cands then
            remark ~name:"rejected-clobber" Remarks.Missed ~op:loop
              (Printf.sprintf
                 "%d candidate access(es) not prefetched: a store in the \
                  loop may alias the accessor, so the local tile could go \
                  stale"
                 (List.length cands - List.length safe_cands));
          if safe_cands <> [] then apply ~kernel loop safe_cands ~m stats
        end)
      (innermost_loops kernel)

let run (m : Core.op) stats =
  let uniformity = Uniformity.analyze m in
  List.iter
    (fun f -> if Uniformity.is_kernel f then run_on_kernel uniformity f stats)
    (Core.funcs m)

let pass = Pass.make "loop-internalization" run
