(* Function inlining for device code: direct calls to small, defined,
   non-recursive functions are replaced by a copy of the callee body.
   Kernels in this compiler are usually single functions, but SYCL code
   frequently factors helpers (distance functions, index helpers); after
   inlining, the intra-procedural device analyses see through them. *)

open Mlir

(* A function is inlinable when it is defined, has a single block whose
   terminator is the func.return, and does not call itself. *)
let inlinable (f : Core.op) =
  (not (Dialects.Func.is_declaration f))
  &&
  match f.Core.regions.(0).Core.blocks with
  | [ body ] -> (
    match List.rev body.Core.body with
    | term :: _ when term.Core.name = "func.return" ->
      not
        (List.exists
           (fun o ->
             Dialects.Func.is_call o
             && Dialects.Func.callee o = Some (Core.func_sym f))
           (Core.collect f ~p:(fun _ -> true)))
    | _ -> false)
  | _ -> false

(** Inline one call site. The callee body is cloned before the call with
    formals mapped to actuals; call results are replaced by the cloned
    return operands. *)
let inline_call (callee : Core.op) (call : Core.op) =
  let body = Core.func_body callee in
  let value_map = Hashtbl.create 32 in
  List.iteri
    (fun i formal ->
      Hashtbl.replace value_map formal.Core.vid (Core.operand call i))
    (Core.block_args body);
  let returned = ref [] in
  List.iter
    (fun op ->
      if op.Core.name = "func.return" then
        returned :=
          List.map
            (fun v ->
              match Hashtbl.find_opt value_map v.Core.vid with
              | Some v' -> v'
              | None -> v)
            (Core.operands op)
      else begin
        let cloned = Core.clone_op ~value_map op in
        Core.insert_before ~anchor:call cloned;
        (* MLIR-style inlining location: each inlined op remembers where it
           came from (callee side) and where it landed (the call site). *)
        Core.walk cloned ~f:(fun o ->
            o.Core.loc <-
              Loc.callsite ~callee:o.Core.loc ~caller:call.Core.loc)
      end)
    body.Core.body;
  List.iteri
    (fun i r ->
      match List.nth_opt !returned i with
      | Some v -> Core.replace_all_uses_with r v
      | None -> ())
    (Core.results call);
  Core.erase_op call

let max_rounds = 8

let run (m : Core.op) stats =
  (* Not-inlinable call sites are reported once, not once per round. *)
  let reported = Hashtbl.create 8 in
  (* Iterate so chains of helpers flatten (bounded; recursion excluded). *)
  let round () =
    let changed = ref false in
    List.iter
      (fun f ->
        if not (Dialects.Func.is_declaration f) then begin
          let calls = Core.collect f ~p:Dialects.Func.is_call in
          List.iter
            (fun call ->
              if call.Core.parent_block <> None then
                match Option.bind (Dialects.Func.callee call) (Core.lookup_func m) with
                | Some callee when (not (callee == f)) && inlinable callee ->
                  if Remarks.enabled () then
                    Remarks.emit ~pass:"inline" ~name:"inlined" Remarks.Passed
                      ~op:call
                      (Printf.sprintf "call to @%s inlined into @%s"
                         (Core.func_sym callee) (Core.func_sym f));
                  inline_call callee call;
                  Pass.Stats.bump stats "inline.inlined";
                  changed := true
                | Some callee
                  when (not (callee == f))
                       && not (Hashtbl.mem reported call.Core.oid) ->
                  Hashtbl.replace reported call.Core.oid ();
                  Pass.Stats.bump stats "inline.not-inlinable";
                  if Remarks.enabled () then
                    Remarks.emit ~pass:"inline" ~name:"not-inlinable"
                      Remarks.Missed ~op:call
                      (Printf.sprintf
                         "call to @%s not inlined: callee is a declaration, \
                          multi-block, or recursive"
                         (Core.func_sym callee))
                | _ -> ())
            calls
        end)
      (Core.funcs m);
    !changed
  in
  let n = ref 0 in
  while round () && !n < max_rounds do
    incr n
  done;
  (* Drop private helpers that are no longer called (kernels and main are
     entry points). *)
  let called = Hashtbl.create 8 in
  Core.walk m ~f:(fun o ->
      if Dialects.Func.is_call o || Dialects.Llvm.is_call o then
        match Core.attr_symbol o "callee" with
        | Some c -> Hashtbl.replace called c ()
        | None -> ());
  List.iter
    (fun f ->
      let name = Core.func_sym f in
      if
        (not (Uniformity.is_kernel f))
        && name <> "main"
        && (not (Dialects.Func.is_declaration f))
        && not (Hashtbl.mem called name)
      then begin
        if Remarks.enabled () then
          Remarks.emit ~pass:"inline" ~name:"dead-function-removed"
            Remarks.Passed ~func:name
            "uncalled private helper removed after inlining";
        Core.walk f ~f:(fun o -> if not (o == f) then Core.erase_op_unsafe o);
        Core.erase_op f;
        Pass.Stats.bump stats "inline.dead-functions-removed"
      end)
    (Core.funcs m)

let pass = Pass.make "inline" run
