(* Host-device optimization (Section VII-B): with host and device in one
   module, static host analysis of the raised sycl.host ops feeds device
   code optimization:

   - Constant ND-range propagation: getter operations for constant
     ND-range information are replaced by constants; the work-group size
     the runtime will pick is predicted (Launch_policy) and recorded.
   - Accessor member propagation: constant ranges/offsets propagate;
     non-ranged accessors get zero offsets, and their access range is
     inferred equal to the underlying memory range even when not constant.
   - Constant scalar captures propagate into the kernel body; constant
     global arrays (e.g. the Sobel filter) are marked so the device treats
     them as constant-cached data.
   - Accessor aliasing: captures rooted in distinct buffers over distinct
     host allocations are recorded as no-alias pairs on the kernel,
     refining the device alias analysis (Section VII's outlook, realized
     here as an option).

   Downstream, constants enable expression/control-flow simplification on
   the device and — via SYCL Dead Argument Elimination — cheaper kernel
   launches on the host. *)

open Mlir

type options = {
  propagate_nd_range : bool;
  propagate_accessor_members : bool;
  propagate_constants : bool;
  alias_refinement : bool;
}

let default_options =
  {
    propagate_nd_range = true;
    propagate_accessor_members = true;
    propagate_constants = true;
    alias_refinement = true;
  }

let const_int_of v =
  match Rewrite.constant_of_value v with
  | Some a -> Attr.as_int a
  | None -> None

(** All ops using [handler] (the command-group function's contents). *)
let handler_ops (handler : Core.value) =
  List.map fst (Core.uses handler)

type launch_site = {
  ls_kernel : Core.op;  (** the kernel func *)
  ls_parallel_for : Core.op;
  ls_global : Core.value list;
  ls_local : Core.value list option;
  ls_captures : (int * Core.value) list;  (** capture index -> host value *)
}

let launch_sites (m : Core.op) : launch_site list =
  let sites = ref [] in
  Core.walk m ~f:(fun op ->
      if Sycl_host_ops.is_parallel_for op then begin
        let handler = Core.operand op 0 in
        let ops = handler_ops handler in
        let nd = List.find_opt Sycl_host_ops.is_set_nd_range ops in
        let captures =
          List.filter_map
            (fun o ->
              if Sycl_host_ops.is_set_captured o then
                Some (Sycl_host_ops.set_captured_index o, Core.operand o 1)
              else None)
            ops
        in
        match
          ( Option.bind (Sycl_host_ops.parallel_for_kernel op) (Core.lookup_func m),
            nd )
        with
        | Some kernel, Some nd ->
          sites :=
            {
              ls_kernel = kernel;
              ls_parallel_for = op;
              ls_global = Sycl_host_ops.nd_range_global nd;
              ls_local = Sycl_host_ops.nd_range_local nd;
              ls_captures = captures;
            }
            :: !sites
        | _ -> ()
      end);
  List.rev !sites

(* ------------------------------------------------------------------ *)
(* Device-side rewrites                                                *)
(* ------------------------------------------------------------------ *)

(** Replace every use of getter ops named [names] (with constant dim
    argument) inside [kernel] by the per-dimension constants [values]. *)
let replace_dim_getters stats kernel names (values : int list) =
  let getters =
    Core.collect kernel ~p:(fun o -> List.mem o.Core.name names)
  in
  List.iter
    (fun g ->
      match Sycl_ops.getter_dim g with
      | Some d when d < List.length values ->
        let b = Builder.before g in
        (* The constant replaces the getter: keep its location. *)
        Builder.set_default_loc b g.Core.loc;
        let c = Dialects.Arith.const_index b (List.nth values d) in
        Core.replace_all_uses_with (Core.result g 0) c;
        Core.erase_op g;
        Pass.Stats.bump stats "hostdev.ndrange-const"
      | _ -> ())
    getters

(** Kernel argument value for capture index [i] (captures bind to kernel
    arguments directly; argument 0 is the item). *)
let kernel_arg (kernel : Core.op) i =
  let args = Core.block_args (Core.func_body kernel) in
  List.nth_opt args i

let remark = Remarks.emit ~pass:"host-device-propagation"

let propagate_site (opts : options) stats (m : Core.op) (site : launch_site) =
  let kernel = site.ls_kernel in
  let kname = Core.func_sym kernel in
  (* --- ND-range --- *)
  let global_consts = List.map const_int_of site.ls_global in
  let global_known = List.for_all Option.is_some global_consts in
  if opts.propagate_nd_range && not global_known then
    remark ~name:"ndrange-unknown" Remarks.Missed ~func:kname
      "ND-range not propagated: the host launch range is not a compile-time \
       constant";
  if opts.propagate_nd_range && global_known then begin
    let global = List.map Option.get global_consts in
    Core.set_attr kernel "sycl.global_size"
      (Attr.Array (List.map (fun i -> Attr.Int i) global));
    let wg =
      match site.ls_local with
      | Some locals ->
        let lc = List.map const_int_of locals in
        if List.for_all Option.is_some lc then Some (List.map Option.get lc)
        else None
      | None -> Some (Launch_policy.default_wg_size global)
    in
    (match wg with
    | Some wg ->
      Core.set_attr kernel "sycl.wg_size"
        (Attr.Array (List.map (fun i -> Attr.Int i) wg));
      replace_dim_getters stats kernel [ "sycl.nd_item.get_local_range" ] wg;
      let groups = List.map2 (fun g w -> g / w) global wg in
      ignore groups
    | None -> ());
    replace_dim_getters stats kernel
      [ "sycl.item.get_range"; "sycl.nd_item.get_global_range" ]
      global;
    remark ~name:"ndrange-propagated" Remarks.Passed ~func:kname
      (Printf.sprintf
         "constant ND-range global=[%s]%s propagated from the host launch \
          site into the device kernel"
         (String.concat ", " (List.map string_of_int global))
         (match wg with
         | Some wg ->
           Printf.sprintf " wg=[%s]"
             (String.concat ", " (List.map string_of_int wg))
         | None -> ""))
  end;
  (* --- captures --- *)
  List.iter
    (fun (idx, host_v) ->
      match kernel_arg kernel idx with
      | None -> ()
      | Some arg -> (
        match Core.defining_op host_v with
        | Some def when Sycl_host_ops.is_accessor_ctor def
                        && opts.propagate_accessor_members -> (
          let buf = Sycl_host_ops.accessor_ctor_buffer def in
          let buf_dims_const =
            match Core.defining_op buf with
            | Some bctor when Sycl_host_ops.is_buffer_ctor bctor ->
              let dims = List.tl (Core.operands bctor) in
              let cs = List.map const_int_of dims in
              if List.for_all Option.is_some cs then
                Some (List.map Option.get cs)
              else None
            | _ -> None
          in
          let ranged = Core.attr def "ranged" = Some (Attr.Bool true) in
          if not ranged then begin
            (* Offsets are zero; access range = memory range = buffer dims. *)
            let getters =
              Core.collect kernel ~p:(fun o ->
                  List.mem o.Core.name Sycl_ops.accessor_member_getters
                  && Core.value_equal (Core.operand o 0) arg)
            in
            List.iter
              (fun g ->
                let b = Builder.before g in
                (* Replacements stand in for the getter: keep its
                   location. *)
                Builder.set_default_loc b g.Core.loc;
                match (g.Core.name, Sycl_ops.getter_dim g, buf_dims_const) with
                | "sycl.accessor.get_offset", _, _ ->
                  let c = Dialects.Arith.const_index b 0 in
                  Core.replace_all_uses_with (Core.result g 0) c;
                  Core.erase_op g;
                  Pass.Stats.bump stats "hostdev.accessor-member-const"
                | _, Some d, Some dims when d < List.length dims ->
                  let c = Dialects.Arith.const_index b (List.nth dims d) in
                  Core.replace_all_uses_with (Core.result g 0) c;
                  Core.erase_op g;
                  Pass.Stats.bump stats "hostdev.accessor-member-const"
                | "sycl.accessor.get_mem_range", Some _, None ->
                  (* Not constant, but equal to the access range: replace
                     mem_range queries with range queries. *)
                  let r =
                    Sycl_ops.accessor_get_range b (Core.operand g 0)
                      (Core.operand g 1)
                  in
                  Core.replace_all_uses_with (Core.result g 0) r;
                  Core.erase_op g;
                  Pass.Stats.bump stats "hostdev.accessor-member-unified"
                | _ -> ())
              getters
          end)
        | Some def when Dialects.Arith.is_constant def && opts.propagate_constants
          -> (
          (* Constant scalar capture: materialize inside the kernel. *)
          match Dialects.Arith.constant_attr def with
          | Some a when Core.has_uses arg ->
            let entry = Core.func_body kernel in
            let b =
              match entry.Core.body with
              | first :: _ -> Builder.before first
              | [] -> Builder.at_end entry
            in
            (* The materialized constant carries the host-side
               definition's location across the host/device boundary;
               when the host IR is unlocated, fall back to the location
               of the capture's first use inside the kernel. *)
            let loc =
              if Loc.is_known def.Core.loc then def.Core.loc
              else
                match Core.uses arg with
                | (u, _) :: _ -> u.Core.loc
                | [] -> kernel.Core.loc
            in
            Builder.set_default_loc b loc;
            let c = Dialects.Arith.constant b a arg.Core.vty in
            Core.replace_all_uses_with arg c;
            remark ~name:"capture-const" Remarks.Passed ~func:kname
              (Printf.sprintf
                 "constant scalar capture %d propagated into the kernel body"
                 idx);
            Pass.Stats.bump stats "hostdev.capture-const"
          | _ -> ())
        | Some def when def.Core.name = "llvm.addressof" && opts.propagate_constants
          -> (
          (* Capture of a constant global array (e.g. the Sobel filter):
             the device may treat it as constant-cached data. *)
          match
            Option.bind (Core.attr_symbol def "global_name")
              (Dialects.Llvm.lookup_global m)
          with
          | Some g when Core.attr g "constant" = Some (Attr.Bool true) ->
            let existing =
              match Core.attr kernel "sycl.constant_args" with
              | Some (Attr.Array xs) -> xs
              | _ -> []
            in
            Core.set_attr kernel "sycl.constant_args"
              (Attr.Array (existing @ [ Attr.Int idx ]));
            remark ~name:"constant-global" Remarks.Passed ~func:kname
              (Printf.sprintf
                 "capture %d is a constant global array: device treats it \
                  as constant-cached data"
                 idx);
            Pass.Stats.bump stats "hostdev.constant-global"
          | _ -> ())
        | _ -> ()))
    site.ls_captures;
  (* --- accessor aliasing (host-informed no-alias facts) --- *)
  if opts.alias_refinement then begin
    (* Two accessors alias only when built over the same buffer (or
       overlapping sub-buffers, which this dialect does not model): each
       SYCL buffer owns its device memory, so accessors over *distinct*
       buffer objects are disjoint regardless of the host pointers. *)
    let accessor_captures =
      List.filter_map
        (fun (idx, v) ->
          match Core.defining_op v with
          | Some def when Sycl_host_ops.is_accessor_ctor def ->
            Some (idx, Sycl_host_ops.accessor_ctor_buffer def)
          | _ -> None)
        site.ls_captures
    in
    List.iteri
      (fun i (idx_a, buf_a) ->
        List.iteri
          (fun j (idx_b, buf_b) ->
            if j > i && not (Core.value_equal buf_a buf_b) then begin
              Alias.add_noalias_pair kernel idx_a idx_b;
              remark ~name:"noalias-pair" Remarks.Analysis ~func:kname
                (Printf.sprintf
                   "accessor arguments %d and %d capture distinct buffers: \
                    recorded as no-alias for the device alias analysis"
                   idx_a idx_b);
              Pass.Stats.bump stats "hostdev.noalias-pair"
            end)
          accessor_captures)
      accessor_captures
  end

let run ?(options = default_options) (m : Core.op) stats =
  List.iter (propagate_site options stats m) (launch_sites m)

let pass ?options () =
  Pass.make "host-device-propagation" (fun m stats -> run ?options m stats)
