(* Store-to-load forwarding: a load whose address must-alias a preceding
   store in the same block — with no possibly-aliasing write in between —
   takes the stored value directly. After kernel fusion (see
   Kernel_fusion), this removes the reload of the intermediate buffer
   element the producer kernel just wrote, realizing the "dataflow ...
   made internal to the fused kernel" benefit the paper's Section VII
   anticipates. *)

open Mlir

let run_on_block stats (block : Core.block) =
  (* last definite store per location, invalidated conservatively *)
  let forward (load : Core.op) =
    let lmem, lidx = Dialects.Memref.load_parts load in
    (* Scan backwards from the load within its block. *)
    let rec scan = function
      | [] -> None
      | op :: before when op == load -> scan_before before
      | _ :: before -> scan before
    and scan_before = function
      | [] -> None
      | op :: before -> (
        if Dialects.Memref.is_store op then begin
          let v, smem, sidx = Dialects.Memref.store_parts op in
          if
            Alias.must_alias lmem smem
            && List.length lidx = List.length sidx
            && List.for_all2 Core.value_equal lidx sidx
          then Some v
          else if Alias.may_alias smem lmem then None
          else scan_before before
        end
        else
          match Op_registry.memory_effects op with
          | Some effects ->
            let clobbers =
              List.exists
                (fun (kind, target) ->
                  match (kind, target) with
                  | (Op_registry.Write | Op_registry.Free), Op_registry.On_operand i
                    -> Alias.may_alias (Core.operand op i) lmem
                  | (Op_registry.Write | Op_registry.Free), _ -> true
                  | _ -> false)
                effects
            in
            (* Ops with regions may contain writes. *)
            let region_clobbers =
              Core.num_regions op > 0 && not (Op_registry.is_pure op)
            in
            if clobbers || region_clobbers then None else scan_before before
          | None -> None)
    in
    scan (List.rev block.Core.body)
  in
  List.iter
    (fun op ->
      Pass.Stats.bump stats "store-forwarding.ops_visited";
      if Dialects.Memref.is_load op && op.Core.parent_block != None then begin
        Pass.Stats.bump stats "store-forwarding.loads-scanned";
        match forward op with
        | Some v when Types.equal v.Core.vty (Core.result op 0).Core.vty ->
          if Remarks.enabled () then
            Remarks.emit ~pass:"store-forwarding" ~name:"forwarded"
              Remarks.Passed ~op
              "load replaced by the value of a must-aliasing store in the \
               same block (no intervening may-aliasing write)";
          Core.replace_all_uses_with (Core.result op 0) v;
          Core.erase_op op;
          Pass.Stats.bump stats "store-forwarding.forwarded"
        | Some _ ->
          if Remarks.enabled () then
            Remarks.emit ~pass:"store-forwarding" ~name:"type-mismatch"
              Remarks.Missed ~op
              "matching store found but the stored value's type differs \
               from the loaded type"
        | None -> ()
      end)
    block.Core.body

let run_on_func (f : Core.op) stats =
  Core.walk f ~f:(fun op ->
      Array.iter
        (fun r -> List.iter (fun b -> run_on_block stats b) r.Core.blocks)
        op.Core.regions)

let pass = Pass.on_functions "store-forwarding" run_on_func
