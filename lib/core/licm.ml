(* Loop-invariant code motion (Section VI-A). Unlike MLIR's upstream
   utility — which only hoists ops free of memory effects — this pass also
   hoists loads (and in restricted cases stores), using the SYCL-aware
   alias analysis to prove that no operation in the loop clobbers the
   accessed location.

   When a memory operation is hoisted, the loop is guarded by a versioning
   condition (trip count > 0) so the hoisted access cannot introduce a
   side effect the original program did not have. Loads blocked only by a
   may-alias (not must-alias) with stores through a different accessor are
   handled by a second versioning condition that checks at runtime that
   the two accessors do not overlap (sycl.accessor.distinct). *)

open Mlir

let is_loop op = Dialects.Scf.is_for op || Dialects.Affine_ops.is_for op

(* Bounds of either loop kind as values (constructing constants for affine
   map bounds when needed). *)
let loop_bounds b (loop : Core.op) =
  if Dialects.Scf.is_for loop then
    (Dialects.Scf.for_lb loop, Dialects.Scf.for_ub loop)
  else
    let of_map map operands =
      match (map.Affine_expr.Map.exprs, operands) with
      | [ Affine_expr.Const c ], [] -> Dialects.Arith.const_index b c
      | [ Affine_expr.Dim 0 ], [ v ] -> v
      | _ ->
        Dialects.Affine_ops.apply b map operands
    in
    ( of_map (Dialects.Affine_ops.for_lb_map loop) (Dialects.Affine_ops.for_lb_operands loop),
      of_map (Dialects.Affine_ops.for_ub_map loop) (Dialects.Affine_ops.for_ub_operands loop) )

(** All ops (transitively) inside [loop] except [loop] itself. *)
let loop_ops (loop : Core.op) =
  let acc = ref [] in
  Core.walk loop ~f:(fun o -> if not (o == loop) then acc := o :: !acc);
  List.rev !acc

type write_summary = {
  (* Values written through (memref-typed targets). *)
  write_targets : Core.value list;
  (* Some op in the loop has unknown or anywhere effects. *)
  has_unknown : bool;
  read_targets : Core.value list;
}

let summarize_writes (loop : Core.op) =
  let writes = ref [] and reads = ref [] and unknown = ref false in
  List.iter
    (fun op ->
      match Op_registry.memory_effects op with
      | None -> unknown := true
      | Some effects ->
        List.iter
          (fun (kind, target) ->
            let value_of = function
              | Op_registry.On_operand i -> Some (Core.operand op i)
              | Op_registry.On_result i -> Some (Core.result op i)
              | Op_registry.Anywhere -> None
            in
            match kind with
            | Op_registry.Write | Op_registry.Free -> (
              match value_of target with
              | Some v -> writes := v :: !writes
              | None -> unknown := true)
            | Op_registry.Read -> (
              match value_of target with
              | Some v -> reads := v :: !reads
              | None -> unknown := true)
            | Op_registry.Alloc -> ())
          effects)
    (loop_ops loop);
  { write_targets = !writes; has_unknown = !unknown; read_targets = !reads }

type hoist_class =
  | Hoist_pure
  | Hoist_load  (** requires trip-count guard *)
  | Hoist_load_if_distinct of Core.value * Core.value
      (** requires runtime accessor-overlap check between the two values *)

let remark = Remarks.emit ~pass:"licm"

(** Decide whether [op] in [loop] can be hoisted, given invariant value
    predicate [inv]. *)
let classify (summary : write_summary) (loop : Core.op) inv (op : Core.op) :
    hoist_class option =
  let operands_ok = List.for_all inv (Core.operands op) in
  if not operands_ok then None
  else if Core.num_regions op > 0 then None
  else if Op_registry.is_pure op && Op_registry.is_speculatable op then
    Some Hoist_pure
  else
    match Op_registry.memory_effects op with
    | Some [ (Op_registry.Read, Op_registry.On_operand i) ]
      when Core.num_results op > 0 ->
      if summary.has_unknown then None
      else begin
        let target = Core.operand op i in
        (* Conflicting writes in the loop? *)
        let conflicts =
          List.filter
            (fun w -> Alias.may_alias w target)
            summary.write_targets
        in
        match conflicts with
        | [] -> Some Hoist_load
        | [ w ] when Alias.alias w target = Alias.May_alias -> (
          (* A single may-alias conflict: version on runtime disjointness
             when both sides are rooted in accessors. *)
          match (Alias.base_of w, Alias.base_of target) with
          | Alias.Accessor_arg a, Alias.Accessor_arg b
            when not (Core.value_equal a b) ->
            Some (Hoist_load_if_distinct (a, b))
          | _ -> None)
        | _ -> None
      end
    | _ -> None

(** Why a memory read with invariant operands was not classified as
    hoistable — the -Rpass-missed reason. Mirrors the blocked branches of
    {!classify}; returns None for ops no one would expect to hoist. *)
let missed_reason (summary : write_summary) inv (op : Core.op) :
    string option =
  if Op_registry.is_terminator op || Core.num_regions op > 0 then None
  else
    match Op_registry.memory_effects op with
    | Some [ (Op_registry.Read, Op_registry.On_operand i) ]
      when Core.num_results op > 0 && List.for_all inv (Core.operands op) ->
      if summary.has_unknown then
        Some "loop contains an operation with unknown memory effects"
      else begin
        let target = Core.operand op i in
        let conflicts =
          List.filter (fun w -> Alias.may_alias w target) summary.write_targets
        in
        match conflicts with
        | [] -> None (* would have been hoisted *)
        | [ w ] when Alias.alias w target = Alias.Must_alias ->
          Some "load clobbered by a must-aliasing store in the loop"
        | [ _ ] ->
          Some
            "load may alias a store in the loop and the pair is not \
             versionable on accessor disjointness"
        | ws ->
          Some
            (Printf.sprintf
               "load may be clobbered by %d aliasing stores in the loop"
               (List.length ws))
      end
    | _ -> None

(** Hoist classified ops out of [loop]. Strategy:
    - pure ops hoist unconditionally (they are speculatable);
    - loads hoist only when we can guard the whole loop with a trip-count
      check, which requires the loop to have no results and the hoisted
      values to be used only inside the loop — both are checked;
    - loads under [Hoist_load_if_distinct] additionally require a runtime
      accessor-overlap versioning condition. *)
let optimize_loop stats (uniformity : Uniformity.t option) (loop : Core.op) =
  ignore uniformity;
  let region = loop.Core.regions.(0) in
  let inv v = Dominance.defined_outside_region region v in
  let summary = summarize_writes loop in
  let body = Core.entry_block region in
  (* Iteratively classify: hoisting one op makes its users' operands
     invariant. We only consider top-level body ops (not nested). *)
  let hoistable : (Core.op * hoist_class) list ref = ref [] in
  let hoisted_values = Hashtbl.create 16 in
  let inv' v =
    inv v
    || match v.Core.vdef with
       | Core.Op_result (op, _) -> Hashtbl.mem hoisted_values op.Core.oid
       | _ -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun op ->
        if
          (not (Hashtbl.mem hoisted_values op.Core.oid))
          && not (Op_registry.is_terminator op)
        then
          match classify summary loop inv' op with
          | Some cls ->
            Hashtbl.replace hoisted_values op.Core.oid ();
            hoistable := (op, cls) :: !hoistable;
            changed := true
          | None -> ())
      body.Core.body
  done;
  let hoistable = List.rev !hoistable in
  (* Blocked memory reads: remark why each one stayed (the paper's "why
     didn't LICM hoist that load" question). *)
  if Remarks.enabled () then
    List.iter
      (fun op ->
        if not (Hashtbl.mem hoisted_values op.Core.oid) then
          match missed_reason summary inv' op with
          | Some reason ->
            remark ~name:"blocked-by-alias" Remarks.Missed ~op reason
          | None -> ())
      body.Core.body;
  if hoistable = [] then 0
  else begin
    let pure, loads =
      List.partition (fun (_, c) -> c = Hoist_pure) hoistable
    in
    (* Pure ops hoist unconditionally. *)
    List.iter
      (fun (op, _) ->
        Core.move_before ~anchor:loop op;
        remark ~name:"hoisted-pure" Remarks.Passed ~op
          "hoisted loop-invariant pure operation out of the loop")
      pure;
    Pass.Stats.bump ~by:(List.length pure) stats "licm.hoisted-pure";
    (* Memory ops need guarding; only safe when the loop yields nothing
       and the hoisted results are used only inside the loop. *)
    let guardable, unguardable =
      if Core.num_results loop > 0 then ([], loads)
      else
        List.partition
          (fun (op, _) ->
            List.for_all
              (fun r ->
                List.for_all
                  (fun (user, _) -> Core.is_in_region region user)
                  (Core.uses r))
              (Core.results op))
          loads
    in
    List.iter
      (fun (op, _) ->
        remark ~name:"blocked-by-guard" Remarks.Missed ~op
          (if Core.num_results loop > 0 then
             "load not hoisted: the loop yields values, so it cannot be \
              wrapped in a trip-count versioning guard"
           else
             "load not hoisted: its value is used outside the loop, so the \
              versioned copy cannot be isolated"))
      unguardable;
    let loads = guardable in
    let distinct_checks =
      List.filter_map
        (fun (_, c) ->
          match c with Hoist_load_if_distinct (a, b) -> Some (a, b) | _ -> None)
        loads
      |> List.sort_uniq compare
    in
    if loads <> [] then begin
      (* Build: %guard = trip > 0 [&& distinct a b ...];
         scf.if %guard { hoisted loads; loop } else { original loop }. *)
      let b = Builder.before loop in
      (* The guard is versioning machinery for this loop: every op it
         adds (bound reads, compare, distinct checks, scf.if) inherits
         the loop's source location. *)
      Builder.set_default_loc b loop.Core.loc;
      let lb, ub = loop_bounds b loop in
      let trip_ok = Dialects.Arith.cmpi b Dialects.Arith.Slt lb ub in
      let guard =
        List.fold_left
          (fun acc (x, y) ->
            let d =
              Builder.op1 b "sycl.accessor.distinct" ~operands:[ x; y ]
                ~result_type:Types.i1
            in
            Dialects.Arith.andi b acc d)
          trip_ok distinct_checks
      in
      let orig_clone = Core.clone_op loop in
      let if_op =
        Dialects.Scf.if_ b guard
          ~then_:(fun _ -> [])
          ~else_:(fun _ -> [])
          ()
      in
      let then_block = Core.entry_block if_op.Core.regions.(0) in
      let else_block = Core.entry_block if_op.Core.regions.(1) in
      (* Move hoisted loads + the optimized loop into the then branch. *)
      let then_anchor = List.hd then_block.Core.body (* the yield *) in
      List.iter
        (fun (op, cls) ->
          Core.move_before ~anchor:then_anchor op;
          remark ~name:"hoisted-mem" Remarks.Passed ~op
            (match cls with
            | Hoist_load_if_distinct _ ->
              "hoisted loop-invariant load under a trip-count guard plus a \
               runtime accessor-disjointness check (alias analysis found a \
               single versionable may-alias)"
            | _ ->
              "hoisted loop-invariant load under a trip-count guard (alias \
               analysis proved no interfering store in the loop)"))
        loads;
      Core.detach_op loop;
      Core.insert_before ~anchor:then_anchor loop;
      let else_anchor = List.hd else_block.Core.body in
      Core.insert_before ~anchor:else_anchor orig_clone;
      Pass.Stats.bump ~by:(List.length loads) stats "licm.hoisted-mem";
      if distinct_checks <> [] then
        Pass.Stats.bump ~by:(List.length distinct_checks) stats "licm.versioned-noalias"
    end;
    List.length pure + List.length loads
  end

let run_on_func ?uniformity (f : Core.op) stats =
  (* Innermost first. *)
  let loops = ref [] in
  Core.walk f ~f:(fun o -> if is_loop o then loops := o :: !loops);
  List.iter (fun l -> ignore (optimize_loop stats uniformity l)) !loops

let pass = Pass.on_functions "licm" (fun f stats -> run_on_func f stats)

let init () =
  (* Runtime accessor disjointness test, evaluated by the device
     interpreter. Pure: it reads only descriptor metadata. *)
  Op_registry.register "sycl.accessor.distinct" Op_registry.pure_info
