(* Full unrolling of small constant-trip loops. Complements the constant
   propagation of Section VII-B: once a loop bound has been folded (e.g.
   a filter size), unrolling exposes the constant indices inside — the
   final step that lets constant-array loads fold away entirely. Only
   loops without side-effect-bearing region ops *need* care; we support
   scf.for and affine.for with iter_args. *)

open Mlir

let default_threshold = 16

let const_trip (loop : Core.op) =
  if Dialects.Scf.is_for loop then
    match
      ( Rewrite.constant_of_value (Dialects.Scf.for_lb loop),
        Rewrite.constant_of_value (Dialects.Scf.for_ub loop),
        Rewrite.constant_of_value (Dialects.Scf.for_step loop) )
    with
    | Some (Attr.Int lb), Some (Attr.Int ub), Some (Attr.Int step) when step > 0 ->
      Some (lb, ub, step)
    | _ -> None
  else
    match Dialects.Affine_ops.for_const_bounds loop with
    | Some (lb, ub) -> Some (lb, ub, Dialects.Affine_ops.for_step loop)
    | None -> None

let body_size (loop : Core.op) =
  let n = ref 0 in
  Core.walk loop ~f:(fun _ -> incr n);
  !n - 1

let unroll (loop : Core.op) ~(lb : int) ~(ub : int) ~(step : int) stats =
  let b = Builder.before loop in
  let body = Core.entry_block loop.Core.regions.(0) in
  let iv = Core.block_arg body 0 in
  let iter_args = List.tl (Core.block_args body) in
  let inits =
    if Dialects.Scf.is_for loop then Dialects.Scf.for_iter_inits loop
    else Dialects.Affine_ops.for_iter_inits loop
  in
  let term =
    match List.rev body.Core.body with
    | t :: _ when Op_registry.is_terminator t -> t
    | _ -> invalid_arg "loop_unroll: no terminator"
  in
  let carried = ref inits in
  let i = ref lb in
  while !i < ub do
    let value_map = Hashtbl.create 32 in
    let iv_c = Dialects.Arith.const_index b !i in
    Hashtbl.replace value_map iv.Core.vid iv_c;
    List.iter2
      (fun formal actual -> Hashtbl.replace value_map formal.Core.vid actual)
      iter_args !carried;
    List.iter
      (fun op ->
        if not (op == term) then
          ignore (Builder.insert b (Core.clone_op ~value_map op)))
      body.Core.body;
    carried :=
      List.map
        (fun y ->
          match Hashtbl.find_opt value_map y.Core.vid with
          | Some v -> v
          | None -> y)
        (Core.operands term);
    i := !i + step
  done;
  List.iteri
    (fun idx r ->
      match List.nth_opt !carried idx with
      | Some v -> Core.replace_all_uses_with r v
      | None -> ())
    (Core.results loop);
  Core.walk loop ~f:(fun o -> if not (o == loop) then Core.erase_op_unsafe o);
  Core.erase_op_unsafe loop;
  Pass.Stats.bump stats "unroll.unrolled"

let run_on_func ?(threshold = default_threshold) (f : Core.op) stats =
  (* Rejections are reported once per loop, not once per fixpoint sweep. *)
  let reported = Hashtbl.create 8 in
  let reject loop key message =
    if not (Hashtbl.mem reported loop.Core.oid) then begin
      Hashtbl.replace reported loop.Core.oid ();
      Pass.Stats.bump stats ("unroll.rejected-" ^ key);
      if Remarks.enabled () then
        Remarks.emit ~pass:"loop-unroll" ~name:("rejected-" ^ key)
          Remarks.Missed ~op:loop message
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let loops =
      Core.collect f ~p:(fun o ->
          Dialects.Scf.is_for o || Dialects.Affine_ops.is_for o)
    in
    (* Innermost first (post-order). *)
    List.iter
      (fun loop ->
        if loop.Core.parent_block <> None then
          match const_trip loop with
          | Some (lb, ub, step) ->
            let trips = if ub <= lb then 0 else ((ub - lb) + step - 1) / step in
            let innermost =
              Core.find_first loop ~p:(fun o ->
                  Dialects.Scf.is_for o || Dialects.Affine_ops.is_for o)
              = None
            in
            if
              trips * body_size loop <= threshold * default_threshold
              && trips <= threshold
              && innermost
            then begin
              if Remarks.enabled () then
                Remarks.emit ~pass:"loop-unroll" ~name:"unrolled" Remarks.Passed
                  ~op:loop
                  (Printf.sprintf
                     "constant-trip loop fully unrolled (%d iterations)" trips);
              unroll loop ~lb ~ub ~step stats;
              changed := true
            end
            else if innermost then
              reject loop "size"
                (Printf.sprintf
                   "constant-trip loop not unrolled: %d iterations x %d body \
                    ops exceeds the unroll threshold"
                   trips (body_size loop))
          | None ->
            reject loop "non-constant"
              "loop not unrolled: bounds or step are not compile-time \
               constants")
      (List.rev loops)
  done

let pass = Pass.on_functions "loop-unroll" (fun f stats -> run_on_func f stats)
