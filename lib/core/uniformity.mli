(** Inter-procedural uniformity analysis (paper Section V-C).

    Tracks whether a value is the same for every work-item of a
    work-group. A branch whose condition is non-uniform is {e divergent};
    loop internalization must not insert group barriers inside divergent
    regions (they would deadlock).

    Lattice: [Uniform < Unknown < Non_uniform] (join = max). Sources of
    non-uniformity are ops carrying the registry's [non_uniform_source]
    trait (the SYCL work-item id getters). Loads are refined through the
    reaching-definition analysis: the uniformity of the (potential)
    modifiers' stored values and of their dominating branch conditions
    propagates to the loaded value. The analysis is inter-procedural over
    the call graph; SYCL kernel entry points have uniform parameters by
    definition. *)

open Mlir

type lattice =
  | Uniform
  | Unknown
  | Non_uniform

val lattice_to_string : lattice -> string
val join : lattice -> lattice -> lattice

(** Functions tagged with this attribute are SYCL kernel entry points. *)
val kernel_attr : string

val is_kernel : Core.op -> bool

type t

(** Run the analysis over a module to a fixpoint (or the sweep cap). *)
val analyze : Core.op -> t

(** Did {!analyze} reach a true fixpoint? When [false] (call graph
    deeper than the sweep cap), stored lattices may be stale
    under-approximations; {!value} then answers at least [Unknown] so a
    stale [Uniform] can never license a barrier in a divergent region. *)
val converged : t -> bool

(** Uniformity of an SSA value (defaults to [Uniform] for unvisited
    values, the lattice bottom; never better than [Unknown] when the
    analysis did not converge). *)
val value : t -> Core.value -> lattice

(** Conditions and loop bounds guarding the execution of an op, up to its
    function boundary. *)
val guarding_values : Core.op -> Core.value list

(** Is [op] inside a divergent region — any enclosing condition or loop
    bound not provably uniform? Conservative: [Unknown] counts. *)
val in_divergent_region : t -> Core.op -> bool
