(* Array-reduction detection (Section VI-B): a loop that loads an array
   element, combines it, and stores it back on every iteration — with a
   loop-invariant address — is rewritten to accumulate in a loop-carried
   scalar (iter_args), with a single load before and a single store after
   the loop. This removes 2N memory accesses from an N-trip loop.

   Safety relies on the SYCL-aware alias analysis (Section V-A): no other
   access in the loop may touch the reduced location. For SYCL kernels the
   required no-alias facts between accessors typically come from the joint
   host/device analysis (Section VII). *)

open Mlir

let is_loop op = Dialects.Scf.is_for op || Dialects.Affine_ops.is_for op

(* Same-location check: both ops access the same memref value with
   syntactically identical index operands. *)
let same_location (mem1 : Core.value) idx1 (mem2 : Core.value) idx2 =
  Core.value_equal mem1 mem2
  && List.length idx1 = List.length idx2
  && List.for_all2 Core.value_equal idx1 idx2

(** Does the backward slice of [v] (within [region]) reach [target]? *)
let depends_on (region : Core.region) (target : Core.value) (v : Core.value) =
  let seen = Hashtbl.create 16 in
  let rec go v =
    if Core.value_equal v target then true
    else if Hashtbl.mem seen v.Core.vid then false
    else begin
      Hashtbl.replace seen v.Core.vid ();
      match v.Core.vdef with
      | Core.Op_result (op, _) when Core.is_in_region region op ->
        List.exists go (Core.operands op)
      | _ -> false
    end
  in
  go v

type candidate = {
  red_load : Core.op;
  red_store : Core.op;
  red_mem : Core.value;
  red_idx : Core.value list;
}

let remark = Remarks.emit ~pass:"detect-reduction"

(** Find one reduction candidate in the top-level body of [loop].
    [report ld reason] is called for load/store pairs that form a
    reduction shape but are blocked (used for missed-optimization
    remarks). *)
let find_candidate ?(report = fun _ _ -> ()) (loop : Core.op) :
    candidate option =
  let region = loop.Core.regions.(0) in
  let body = Core.entry_block region in
  let inv v = Dominance.defined_outside_region region v in
  let ops = body.Core.body in
  let loads =
    List.filter Dialects.Memref.is_load ops
  and stores = List.filter Dialects.Memref.is_store ops in
  let all_mem_ops =
    List.concat_map
      (fun op ->
        match Op_registry.memory_effects op with
        | None -> [ (op, None) ] (* unknown *)
        | Some effects ->
          List.filter_map
            (fun (kind, target) ->
              match (kind, target) with
              | (Op_registry.Read | Op_registry.Write), Op_registry.On_operand i ->
                Some (op, Some (Core.operand op i))
              | (Op_registry.Read | Op_registry.Write), _ -> Some (op, None)
              | _ -> None)
            effects)
      (let acc = ref [] in
       Core.walk loop ~f:(fun o -> if not (o == loop) then acc := o :: !acc);
       !acc)
  in
  let check (ld : Core.op) (st : Core.op) =
    let lmem, lidx = Dialects.Memref.load_parts ld in
    let sval, smem, sidx = Dialects.Memref.store_parts st in
    if
      same_location lmem lidx smem sidx
      && List.for_all inv (lmem :: lidx)
      && Dominance.properly_dominates ld st
      && depends_on region (Core.result ld 0) sval
    then
      if
        (* Only this load/store pair may touch the location. *)
        List.for_all
          (fun (op, target) ->
            op == ld || op == st
            ||
            match target with
            | None -> false
            | Some t -> not (Alias.may_alias t lmem))
          all_mem_ops
        (* The load result must feed only the reduction computation inside
           the loop. *)
        && List.for_all
             (fun (user, _) -> Core.is_in_region region user)
             (Core.uses (Core.result ld 0))
      then
        Some { red_load = ld; red_store = st; red_mem = lmem; red_idx = lidx }
      else begin
        (* Reduction shape, but blocked: the alias analysis cannot prove
           the reduced location untouched by the rest of the loop. *)
        report ld
          "reduction-shaped load/store pair not promoted to a scalar: \
           another access in the loop may alias the reduced location";
        None
      end
    else None
  in
  List.find_map
    (fun ld -> List.find_map (fun st -> check ld st) stores)
    loads

(** Constant (lb, ub) of either loop kind, if both are constants. *)
let const_bounds (loop : Core.op) =
  if Dialects.Affine_ops.is_for loop then Dialects.Affine_ops.for_const_bounds loop
  else
    match
      ( Rewrite.constant_of_value (Dialects.Scf.for_lb loop),
        Rewrite.constant_of_value (Dialects.Scf.for_ub loop) )
    with
    | Some (Attr.Int lb), Some (Attr.Int ub) -> Some (lb, ub)
    | _ -> None

(** Rewrite [loop] for candidate [c]: the reduced element becomes an
    iter_arg, loaded once before the loop and stored once after it. When
    the trip count is not provably positive, the whole rewritten
    construct is guarded by a versioning condition (trip > 0), with the
    original iteration values flowing through the else branch — a zero-
    trip loop must not perform the load/store at all. *)
let apply (loop : Core.op) (c : candidate) : unit =
  let orig_results = Core.results loop in
  let orig_result_tys = List.map (fun r -> r.Core.vty) orig_results in
  let orig_inits =
    if Dialects.Scf.is_for loop then Dialects.Scf.for_iter_inits loop
    else Dialects.Affine_ops.for_iter_inits loop
  in
  let need_guard =
    match const_bounds loop with Some (lb, ub) -> not (lb < ub) | None -> true
  in
  (* [emit b] builds init-load + rewritten loop + final store at [b] and
     returns the rewritten loop's results corresponding to the original
     loop results. *)
  (* The rewritten construct stands for the original loop plus the
     reduced load/store pair it absorbed; scaffolding (guard, init load,
     final store) is stamped with the same fused location via the
     builders' default. *)
  let fused_loc =
    Loc.fused [ loop.Core.loc; c.red_load.Core.loc; c.red_store.Core.loc ]
  in
  let emit (b : Builder.t) : Core.value list =
    Builder.set_default_loc b fused_loc;
    let init = Dialects.Memref.load b c.red_mem c.red_idx in
    let old_region = loop.Core.regions.(0) in
    let old_body = Core.entry_block old_region in
    let new_arg = Core.add_block_arg old_body init.Core.vty in
    Core.replace_all_uses_with (Core.result c.red_load 0) new_arg;
    Core.erase_op c.red_load;
    let yielded, _, _ = Dialects.Memref.store_parts c.red_store in
    let term =
      match List.rev old_body.Core.body with
      | t :: _ when Op_registry.is_terminator t -> t
      | _ -> invalid_arg "detect_reduction: loop body lacks terminator"
    in
    Core.set_operands term (Core.operands term @ [ yielded ]);
    Core.erase_op c.red_store;
    (* Move the body into a fresh region for the rebuilt loop op. *)
    old_region.Core.blocks <- [];
    let region = Core.create_region ~blocks:[ old_body ] () in
    let new_loop =
      Builder.insert b
        (Core.create_op loop.Core.name
           ~operands:(Core.operands loop @ [ init ])
           ~result_types:(orig_result_tys @ [ init.Core.vty ])
           ~attrs:loop.Core.attrs ~regions:[ region ] ~loc:fused_loc)
    in
    let n = Core.num_results new_loop - 1 in
    Dialects.Memref.store b (Core.result new_loop n) c.red_mem c.red_idx;
    List.filteri (fun i _ -> i < n) (Core.results new_loop)
  in
  if not need_guard then begin
    let b = Builder.before loop in
    let new_results = emit b in
    List.iter2 Core.replace_all_uses_with orig_results new_results;
    Core.erase_op_unsafe loop
  end
  else begin
    let b = Builder.before loop in
    Builder.set_default_loc b fused_loc;
    let lb, ub =
      if Dialects.Scf.is_for loop then
        (Dialects.Scf.for_lb loop, Dialects.Scf.for_ub loop)
      else
        let of_map map operands =
          match (map.Affine_expr.Map.exprs, operands) with
          | [ Affine_expr.Const cst ], [] -> Dialects.Arith.const_index b cst
          | [ Affine_expr.Dim 0 ], [ v ] -> v
          | _ -> Dialects.Affine_ops.apply b map operands
        in
        ( of_map (Dialects.Affine_ops.for_lb_map loop) (Dialects.Affine_ops.for_lb_operands loop),
          of_map (Dialects.Affine_ops.for_ub_map loop) (Dialects.Affine_ops.for_ub_operands loop) )
    in
    let cond = Dialects.Arith.cmpi b Dialects.Arith.Slt lb ub in
    let if_op =
      Dialects.Scf.if_ b cond ~result_types:orig_result_tys
        ~then_:(fun bb ->
          (* The loop op itself moves here. *)
          ignore bb;
          [])
        ~else_:(fun _ -> orig_inits)
        ()
    in
    let then_block = Core.entry_block if_op.Core.regions.(0) in
    let then_term = List.hd then_block.Core.body in
    let bb = Builder.before then_term in
    Core.detach_op loop;
    let new_results = emit bb in
    Core.set_operands then_term new_results;
    List.iteri
      (fun i r -> Core.replace_all_uses_with r (Core.result if_op i))
      orig_results;
    Core.erase_op_unsafe loop
  end

let run_on_func (f : Core.op) stats =
  (* Missed-remark dedup: [optimize] rescans every loop after each
     rewrite, so a blocked pair would otherwise be reported once per
     fixpoint iteration. *)
  let reported = Hashtbl.create 8 in
  let report (ld : Core.op) reason =
    if not (Hashtbl.mem reported ld.Core.oid) then begin
      Hashtbl.replace reported ld.Core.oid ();
      remark ~name:"blocked-by-alias" Remarks.Missed ~op:ld reason
    end
  in
  let rec optimize () =
    let loops = ref [] in
    Core.walk f ~f:(fun o -> if is_loop o then loops := o :: !loops);
    let applied =
      List.exists
        (fun loop ->
          match find_candidate ~report loop with
          | Some c ->
            remark ~name:"rewritten" Remarks.Passed ~op:c.red_load
              "array reduction rewritten to a loop-carried scalar: one load \
               before and one store after the loop replace a load/store pair \
               per iteration";
            apply loop c;
            Pass.Stats.bump stats "reduction.rewritten";
            true
          | None -> false)
        !loops
    in
    if applied then optimize ()
  in
  optimize ()

let pass = Pass.on_functions "detect-reduction" run_on_func
