(* Compiler driver: assembles the pass pipelines for the three compiler
   configurations the evaluation compares (Section VIII):

   - [Dpcpp]: the LLVM-based baseline. SMCP flow (Fig. 1, dotted path):
     the device module is compiled in isolation from the host, so no
     SYCL-semantic or host-context information is available. Generic
     optimizations plus pure-op LICM and dead-argument elimination.

   - [Sycl_mlir]: this paper's compiler. SSCP-style joint module (Fig. 1,
     dashed path): host raising, host-device propagation, then the full
     SYCL-aware device pipeline (alias-powered LICM, reduction detection,
     loop internalization).

   - [Adaptive_cpp]: an SSCP JIT compiler. At compile time it behaves like
     the generic baseline; at first kernel launch the runtime invokes
     [specialize_at_launch], which can exploit *runtime* information
     (actual ND-range, actual buffer addresses → no-alias facts) but has
     no SYCL dialect, so no loop internalization. JIT time is charged by
     the runtime at first launch. *)

open Mlir

type mode =
  | Dpcpp
  | Sycl_mlir
  | Adaptive_cpp

let mode_to_string = function
  | Dpcpp -> "DPC++"
  | Sycl_mlir -> "SYCL-MLIR"
  | Adaptive_cpp -> "AdaptiveCpp"

type config = {
  mode : mode;
  (* Ablation switches (all on for Sycl_mlir by default). *)
  enable_licm : bool;
  enable_reduction : bool;
  enable_internalization : bool;
  enable_host_device : bool;
  enable_alias_refinement : bool;
  (* Compile-time kernel fusion: the Section VII extension. Off by
     default — the paper's evaluated compiler did not include it. *)
  enable_fusion : bool;
  (* Progressive lowering of the SYCL dialect to the flattened DPC++
     kernel ABI after optimization (Section IV's gradual-lowering story).
     Off by default: the simulator executes the SYCL dialect directly. *)
  enable_lowering : bool;
  verify_each : bool;
}

let config ?(enable_licm = true) ?(enable_reduction = true)
    ?(enable_internalization = true) ?(enable_host_device = true)
    ?(enable_alias_refinement = true) ?(enable_fusion = false)
    ?(enable_lowering = false) ?(verify_each = false) mode =
  {
    mode;
    enable_licm;
    enable_reduction;
    enable_internalization;
    enable_host_device;
    enable_alias_refinement;
    enable_fusion;
    enable_lowering;
    verify_each;
  }

(** Canonical serialization of a configuration, for content-addressed
    compile caching: two configs produce the same key iff every field —
    mode and all ablation switches — agrees, so a cache keyed on
    (module text, config key) can never serve a result compiled under
    different flags. The field list is written out explicitly so adding
    a config field without extending the key is a type error. *)
let config_key (cfg : config) : string =
  let {
    mode;
    enable_licm;
    enable_reduction;
    enable_internalization;
    enable_host_device;
    enable_alias_refinement;
    enable_fusion;
    enable_lowering;
    verify_each;
  } =
    cfg
  in
  let b name v = Printf.sprintf "%s=%b" name v in
  String.concat ","
    [
      Printf.sprintf "mode=%s"
        (match mode with
        | Dpcpp -> "dpcpp"
        | Sycl_mlir -> "sycl-mlir"
        | Adaptive_cpp -> "acpp");
      b "licm" enable_licm;
      b "reduction" enable_reduction;
      b "internalization" enable_internalization;
      b "host-device" enable_host_device;
      b "alias-refinement" enable_alias_refinement;
      b "fusion" enable_fusion;
      b "lowering" enable_lowering;
      b "verify-each" verify_each;
    ]

(* A restricted LICM hoisting only pure speculatable ops — the level of
   loop-invariant code motion a generic LLVM-style pipeline achieves
   without SYCL aliasing facts. *)
let licm_pure_pass =
  Pass.on_functions "licm-pure" (fun f stats ->
      let loops = ref [] in
      Core.walk f ~f:(fun o ->
          if Dialects.Scf.is_for o || Dialects.Affine_ops.is_for o then
            loops := o :: !loops);
      List.iter
        (fun loop ->
          let region = loop.Core.regions.(0) in
          let body = Core.entry_block region in
          let hoisted = Hashtbl.create 16 in
          let inv v =
            Dominance.defined_outside_region region v
            ||
            match v.Core.vdef with
            | Core.Op_result (op, _) -> Hashtbl.mem hoisted op.Core.oid
            | _ -> false
          in
          let changed = ref true in
          while !changed do
            changed := false;
            List.iter
              (fun op ->
                if
                  (not (Hashtbl.mem hoisted op.Core.oid))
                  && Core.num_regions op = 0
                  && Op_registry.is_pure op
                  && Op_registry.is_speculatable op
                  && List.for_all inv (Core.operands op)
                then begin
                  Hashtbl.replace hoisted op.Core.oid ();
                  changed := true
                end)
              body.Core.body
          done;
          (* Loads with invariant addresses are exactly what the SYCL-aware
             LICM (Section V-A) hoists and this generic pipeline cannot:
             without accessor no-alias facts every store in the loop is a
             potential clobber. Report them as missed optimizations. *)
          if Remarks.enabled () then
            List.iter
              (fun op ->
                if
                  Dialects.Memref.is_load op
                  && (not (Hashtbl.mem hoisted op.Core.oid))
                  && List.for_all inv (Core.operands op)
                then
                  Remarks.emit ~pass:"licm-pure" ~name:"blocked-no-alias-info"
                    Remarks.Missed ~op
                    "loop-invariant load not hoisted: generic LICM has no \
                     SYCL accessor aliasing facts, so stores in the loop \
                     cannot be proven non-clobbering")
              body.Core.body;
          List.iter
            (fun op ->
              if Hashtbl.mem hoisted op.Core.oid then begin
                Core.move_before ~anchor:loop op;
                if Remarks.enabled () then
                  Remarks.emit ~pass:"licm-pure" ~name:"hoisted" Remarks.Passed
                    ~op
                    (Printf.sprintf
                       "pure speculatable operation %s hoisted out of the loop"
                       op.Core.name);
                Pass.Stats.bump stats "licm-pure.hoisted"
              end)
            body.Core.body)
        !loops)

(** The device pipeline for a configuration. Inlining and constant-trip
    unrolling are generic (every LLVM-based SYCL compiler has them); the
    SYCL-aware passes are what set the configurations apart. *)
let device_pipeline (cfg : config) : Pass.t list =
  let common = [ Inline.pass; Canonicalize.pass; Cse.pass ] in
  match cfg.mode with
  | Dpcpp | Adaptive_cpp ->
    common
    @ [ licm_pure_pass; Loop_unroll.pass; Canonicalize.pass; Cse.pass;
        Dce.pass; Dead_arg_elim.pass ]
  | Sycl_mlir ->
    common
    @ (if cfg.enable_licm then [ Licm.pass ] else [])
    @ (if cfg.enable_reduction then [ Detect_reduction.pass ] else [])
    @ [ Canonicalize.pass; Loop_unroll.pass; Canonicalize.pass ]
    @ (if cfg.enable_internalization then [ Loop_internalization.pass ] else [])
    @ [ Cse.pass; Dce.pass; Dead_arg_elim.pass ]
    @ if cfg.enable_lowering then [ Lower_sycl.pass; Canonicalize.pass; Cse.pass ] else []

(** The host pipeline (joint module). Only SYCL-MLIR raises and analyzes
    host code at compile time. *)
let host_pipeline (cfg : config) : Pass.t list =
  match cfg.mode with
  | Sycl_mlir ->
    [ Host_raising.pass; Canonicalize.pass; Cse.pass ]
    @ (if cfg.enable_fusion then
         (* CSE between fusion and forwarding: the inlined consumer half
            re-derives the same subscripts, which must unify before
            store-to-load forwarding can see the must-alias. *)
         [ Kernel_fusion.pass; Canonicalize.pass; Cse.pass; Store_forwarding.pass ]
       else [])
    @
    if cfg.enable_host_device then
      [
        Host_device_prop.pass
          ~options:
            {
              Host_device_prop.default_options with
              Host_device_prop.alias_refinement = cfg.enable_alias_refinement;
            }
          ();
      ]
    else []
  | Dpcpp | Adaptive_cpp ->
    (* The host side still needs raising so the runtime can execute the
       module, but no information flows to the device compiler: raising
       happens (conceptually) in the runtime/driver, after device
       compilation. We model this by running raising WITHOUT the
       host-device propagation pass. *)
    [ Host_raising.pass; Canonicalize.pass; Cse.pass ]

type compiled = {
  cfg : config;
  joint : Core.op;  (** the module: host main + device kernels *)
  pipeline_result : Pass.pipeline_result;
}

exception Compile_error of string

(** Compile a joint module. The pass order mirrors Fig. 1: for SYCL-MLIR,
    host analysis runs first so device passes see its facts; for the
    baselines, device compilation is isolated. *)
let compile ?(instrumentations = []) (cfg : config) (m : Core.op) : compiled =
  if not (Core.is_module m) then raise (Compile_error "expected a module");
  let passes = host_pipeline cfg @ device_pipeline cfg in
  let pipeline_result =
    try Pass.run_pipeline ~verify_each:cfg.verify_each ~instrumentations passes m
    with Pass.Pass_failed { pass; diagnostics } ->
      raise
        (Compile_error
           (Printf.sprintf "pass %s failed verification: %s" pass
              (String.concat "; " (List.map Verifier.diag_to_string diagnostics))))
  in
  { cfg; joint = m; pipeline_result }

let top_module (op : Core.op) =
  let rec go o = if Core.is_module o then Some o else Option.bind (Core.parent_op o) go in
  go op

(** AdaptiveCpp-style JIT specialization at first kernel launch: the
    runtime hands in the actual launch configuration; runtime values play
    the role host analysis plays for SYCL-MLIR — minus anything that needs
    the SYCL dialect (no internalization). *)
let specialize_at_launch (kernel : Core.op) ~(global : int list)
    ~(wg : int list) ~(noalias_pairs : (int * int) list)
    ~(constant_args : int list) : Pass.Stats.t =
  let stats = Pass.Stats.create () in
  Core.set_attr kernel "sycl.global_size"
    (Attr.Array (List.map (fun i -> Attr.Int i) global));
  Core.set_attr kernel "sycl.wg_size"
    (Attr.Array (List.map (fun i -> Attr.Int i) wg));
  List.iter (fun (i, j) -> Alias.add_noalias_pair kernel i j) noalias_pairs;
  if constant_args <> [] then
    Core.set_attr kernel "sycl.constant_args"
      (Attr.Array (List.map (fun i -> Attr.Int i) constant_args));
  (* Fold the now-constant range getters. *)
  Host_device_prop.replace_dim_getters stats kernel
    [ "sycl.item.get_range"; "sycl.nd_item.get_global_range" ]
    global;
  Host_device_prop.replace_dim_getters stats kernel
    [ "sycl.nd_item.get_local_range" ] wg;
  (* Generic optimizations with runtime aliasing facts: LICM and scalar
     promotion of reductions, as LLVM does at -O2 once aliasing is known. *)
  List.iter
    (fun p ->
      let s = Pass.Stats.create () in
      (match p with
      | `Canon -> Canonicalize.pass.Pass.run (Option.get (top_module kernel)) s
      | `Licm -> Licm.run_on_func kernel s
      | `Red -> Detect_reduction.run_on_func kernel s
      | `Cse -> Cse.run_on_func kernel s
      | `Dce -> Dce.run_on_func kernel s);
      List.iter (fun (k, v) -> Pass.Stats.bump ~by:v stats k) (Pass.Stats.to_list s))
    [ `Canon; `Cse; `Licm; `Red; `Canon; `Cse; `Dce ];
  stats
