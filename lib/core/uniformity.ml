(* Inter-procedural uniformity analysis (Section V-C): tracks whether a
   value is the same for every work-item of a work-group. A divergent
   branch is a branch whose condition is non-uniform. Used by loop
   internalization to refuse to insert group barriers inside divergent
   regions (a barrier there would deadlock).

   Lattice: Uniform < Unknown < Non_uniform (join = max).
   - Sources of non-uniformity come from the registry trait
     (sycl.nd_item.get_global_id etc.).
   - SSA values: non-uniform if any operand is non-uniform; unknown if any
     operand unknown; uniform if all operands uniform and the op is free
     of memory effects.
   - Loads are refined through the reaching-definition analysis: the
     uniformity of the (potential) modifiers' stored values and of their
     dominating branch conditions propagates to the loaded value.
   - Works inter-procedurally across the call graph; SYCL kernel entry
     points have uniform parameters by definition. *)

open Mlir

type lattice =
  | Uniform
  | Unknown
  | Non_uniform

let lattice_to_string = function
  | Uniform -> "uniform"
  | Unknown -> "unknown"
  | Non_uniform -> "non-uniform"

let rank = function Uniform -> 0 | Unknown -> 1 | Non_uniform -> 2
let join a b = if rank a >= rank b then a else b
let joins xs = List.fold_left join Uniform xs

(** Functions are SYCL kernel entry points when tagged with this attr. *)
let kernel_attr = "sycl.kernel"

let is_kernel f = Core.has_attr f kernel_attr

type t = {
  values : (int, lattice) Hashtbl.t;  (* value id -> lattice *)
  (* per-function summaries *)
  returns : (string, lattice list) Hashtbl.t;
  params : (string, lattice array) Hashtbl.t;
  rd : (int, Reaching_defs.t) Hashtbl.t;  (* func oid -> reaching defs *)
  (* False when the fixpoint loop hit its iteration cap: stored lattices
     may be stale under-approximations (a value could still rise to
     Non_uniform), so queries must degrade to at least Unknown. *)
  mutable converged : bool;
}

let converged t = t.converged

let raw_value t (v : Core.value) =
  Option.value ~default:Uniform (Hashtbl.find_opt t.values v.Core.vid)

(* On an unconverged analysis, claiming Uniform would be unsound — a
   barrier placed on that claim can deadlock — so join with Unknown. *)
let value t (v : Core.value) =
  let l = raw_value t v in
  if t.converged then l else join l Unknown

let set_value t (v : Core.value) l changed =
  let old = raw_value t v in
  let l = join old l in
  if l <> old then begin
    Hashtbl.replace t.values v.Core.vid l;
    changed := true
  end

(** Conditions guarding the execution of [op]: the conditions of enclosing
    scf.ifs and the bound operands of enclosing loops, up to the function
    boundary. *)
let rec guarding_values (op : Core.op) : Core.value list =
  match Core.parent_op op with
  | None -> []
  | Some p ->
    let here =
      if Dialects.Scf.is_if p then [ Core.operand p 0 ]
      else if Dialects.Scf.is_for p then
        [ Dialects.Scf.for_lb p; Dialects.Scf.for_ub p; Dialects.Scf.for_step p ]
      else if Dialects.Affine_ops.is_for p then
        Dialects.Affine_ops.for_lb_operands p @ Dialects.Affine_ops.for_ub_operands p
      else []
    in
    if Core.is_func p then [] else here @ guarding_values p

let stored_values (op : Core.op) : Core.value list option =
  if Dialects.Memref.is_store op then Some [ Core.operand op 0 ]
  else if op.Core.name = "affine.store" then Some [ Core.operand op 0 ]
  else if Sycl_ops.is_constructor op then Some (Sycl_ops.constructor_args op)
  else None

let analyze (m : Core.op) : t =
  let t =
    {
      values = Hashtbl.create 256;
      returns = Hashtbl.create 16;
      params = Hashtbl.create 16;
      rd = Hashtbl.create 16;
      converged = true;
    }
  in
  let funcs = Core.funcs m in
  (* Initialize parameter lattices. *)
  List.iter
    (fun f ->
      if not (Dialects.Func.is_declaration f) then begin
        let args = Core.block_args (Core.func_body f) in
        let init =
          if is_kernel f then Uniform
          else if
            (* Unknown when no internal call sites could inform us. *)
            List.exists
              (fun g ->
                Core.collect g ~p:(fun o ->
                    (Dialects.Func.is_call o || Dialects.Llvm.is_call o)
                    && Core.attr_symbol o "callee" = Some (Core.func_sym f))
                <> [])
              funcs
          then Uniform (* bottom; call sites will raise it *)
          else Unknown
        in
        Hashtbl.replace t.params (Core.func_sym f)
          (Array.make (List.length args) init);
        List.iter (fun a -> Hashtbl.replace t.values a.Core.vid init) args;
        Hashtbl.replace t.rd f.Core.oid (Reaching_defs.analyze_with_args f)
      end)
    funcs;
  let changed = ref true in
  let guard_lattice op = joins (List.map (value t) (guarding_values op)) in
  let rec eval_op (f : Core.op) (op : Core.op) =
    let info = Op_registry.info op in
    (* Recurse into regions first. *)
    Array.iter
      (fun r ->
        List.iter (fun b -> List.iter (eval_op f) b.Core.body) r.Core.blocks)
      op.Core.regions;
    let operand_lat = joins (List.map (value t) (Core.operands op)) in
    if info.Op_registry.non_uniform_source then
      List.iter (fun r -> set_value t r Non_uniform changed) (Core.results op)
    else if Dialects.Scf.is_for op || Dialects.Affine_ops.is_for op then begin
      (* iv: uniform iff the bounds are; iter args: join of inits and
         yields; results likewise. *)
      let body = Core.entry_block op.Core.regions.(0) in
      let iv = Core.block_arg body 0 in
      let bound_lat =
        if Dialects.Scf.is_for op then
          joins (List.map (value t)
                   [ Dialects.Scf.for_lb op; Dialects.Scf.for_ub op; Dialects.Scf.for_step op ])
        else
          joins (List.map (value t)
                   (Dialects.Affine_ops.for_lb_operands op
                   @ Dialects.Affine_ops.for_ub_operands op))
      in
      set_value t iv bound_lat changed;
      let iter_args = List.tl (Core.block_args body) in
      let inits =
        if Dialects.Scf.is_for op then Dialects.Scf.for_iter_inits op
        else Dialects.Affine_ops.for_iter_inits op
      in
      let yields =
        match List.rev body.Core.body with
        | term :: _ when Dialects.Scf.is_yield term || Dialects.Affine_ops.is_yield term ->
          Core.operands term
        | _ -> []
      in
      List.iteri
        (fun i arg ->
          let l =
            join
              (value t (List.nth inits i))
              (match List.nth_opt yields i with
              | Some y -> value t y
              | None -> Unknown)
          in
          set_value t arg l changed;
          set_value t (Core.result op i) l changed)
        iter_args
    end
    else if Dialects.Scf.is_if op then begin
      let cond_l = value t (Core.operand op 0) in
      Array.iteri
        (fun i r ->
          ignore i;
          match r.Core.blocks with
          | [ b ] -> (
            match List.rev b.Core.body with
            | term :: _ when Dialects.Scf.is_yield term ->
              List.iteri
                (fun j y ->
                  if j < Core.num_results op then
                    set_value t (Core.result op j) (join cond_l (value t y)) changed)
                (Core.operands term)
            | _ -> ())
          | _ -> ())
        op.Core.regions
    end
    else if Dialects.Func.is_call op || Dialects.Llvm.is_call op then begin
      match Core.attr_symbol op "callee" with
      | Some callee -> (
        (* Propagate actual-arg uniformity into the callee's params. *)
        (match Hashtbl.find_opt t.params callee with
        | Some params ->
          List.iteri
            (fun i a ->
              if i < Array.length params then begin
                let l = join params.(i) (value t a) in
                if l <> params.(i) then begin
                  params.(i) <- l;
                  changed := true
                end
              end)
            (Core.operands op);
          (* Refresh the callee's formal argument values. *)
          (match
             List.find_opt (fun g -> Core.func_sym g = callee) funcs
           with
          | Some g when not (Dialects.Func.is_declaration g) ->
            List.iteri
              (fun i a -> if i < Array.length params then set_value t a params.(i) changed)
              (Core.block_args (Core.func_body g))
          | _ -> ())
        | None -> ());
        match Hashtbl.find_opt t.returns callee with
        | Some rets ->
          List.iteri
            (fun i r ->
              set_value t r
                (match List.nth_opt rets i with Some l -> l | None -> Unknown)
                changed)
            (Core.results op)
        | None ->
          (* External call: unknown results. *)
          List.iter (fun r -> set_value t r Unknown changed) (Core.results op))
      | None ->
        List.iter (fun r -> set_value t r Unknown changed) (Core.results op)
    end
    else begin
      match Op_registry.memory_effects op with
      | Some [] ->
        (* Pure: operand-driven. *)
        List.iter (fun r -> set_value t r operand_lat changed) (Core.results op)
      | Some effects ->
        (* Analyze each memory effect; reads are refined through reaching
           definitions, writes need no result handling. *)
        let l = ref operand_lat in
        List.iter
          (fun (kind, target) ->
            match (kind, target) with
            | Op_registry.Read, Op_registry.On_operand i -> (
              let mem = Core.operand op i in
              match Hashtbl.find_opt t.rd f.Core.oid with
              | None -> l := join !l Unknown
              | Some rd ->
                let defs = Reaching_defs.defs_at rd mem ~at:op in
                let contrib (d : Core.op) =
                  let stored =
                    match stored_values d with
                    | Some vs -> joins (List.map (value t) vs)
                    | None -> Unknown
                  in
                  join stored (guard_lattice d)
                in
                List.iter
                  (fun d -> l := join !l (contrib d))
                  (defs.Reaching_defs.mods @ defs.Reaching_defs.pmods))
            | Op_registry.Read, Op_registry.Anywhere -> l := join !l Unknown
            | _ -> ())
          effects;
        List.iter (fun r -> set_value t r !l changed) (Core.results op)
      | None ->
        (* Unknown memory effects: unknown uniformity. *)
        List.iter (fun r -> set_value t r Unknown changed) (Core.results op)
    end
  in
  let eval_func f =
    if not (Dialects.Func.is_declaration f) then begin
      List.iter (eval_op f) (Core.func_body f).Core.body;
      (* Return summary. *)
      let rets =
        match List.rev (Core.func_body f).Core.body with
        | term :: _ when term.Core.name = "func.return" ->
          List.map (value t) (Core.operands term)
        | _ -> []
      in
      let old = Hashtbl.find_opt t.returns (Core.func_sym f) in
      if old <> Some rets then begin
        Hashtbl.replace t.returns (Core.func_sym f) rets;
        changed := true
      end
    end
  in
  let iterations = ref 0 in
  while !changed && !iterations < 32 do
    changed := false;
    incr iterations;
    List.iter eval_func funcs
  done;
  (* Cap-hit: the last sweep still changed something. The seed silently
     kept the stale (under-approximated) lattices — deep call chains
     came out Uniform and a barrier could be placed inside a divergent
     region. Record non-convergence so every query degrades to at least
     Unknown, and say so out loud. *)
  t.converged <- not !changed;
  if not t.converged && Remarks.enabled () then
    Remarks.emit ~pass:"uniformity" ~name:"convergence-cap" Remarks.Analysis
      (Printf.sprintf
         "fixpoint not reached after %d sweeps (call graph deeper than the \
          cap); unconverged values are conservatively treated as unknown \
          uniformity"
         !iterations);
  t

(** Is [op] inside a divergent region — an scf.if with a (possibly)
    non-uniform condition or a loop with (possibly) non-uniform bounds —
    within its function? Conservative: Unknown counts as divergent. *)
let in_divergent_region (t : t) (op : Core.op) =
  List.exists (fun v -> value t v <> Uniform) (guarding_values op)
