(* SYCL Dead Argument Elimination (Section VII-B): kernel arguments left
   without uses — typically after host-device constant propagation — are
   marked dead; the runtime will then not pass them at kernel launch,
   making launches cheaper on the host side. The argument list itself is
   kept intact (the ABI position of live arguments must not move), which
   matches how DPC++ communicates dead arguments to its runtime. *)

open Mlir

let dead_args_attr = "sycl.dead_args"

let dead_args (kernel : Core.op) : int list =
  match Core.attr kernel dead_args_attr with
  | Some (Attr.Array xs) -> List.filter_map Attr.as_int xs
  | _ -> []

let run_on_kernel (kernel : Core.op) stats =
  let args = Core.block_args (Core.func_body kernel) in
  let dead =
    List.filteri
      (fun i arg ->
        i > 0 (* argument 0 is the item *)
        && not (Core.has_uses arg))
      args
    |> List.map (fun arg ->
           match arg.Core.vdef with
           | Core.Block_arg (_, i) -> i
           | _ -> assert false)
  in
  if dead <> [] then begin
    Core.set_attr kernel dead_args_attr
      (Attr.Array (List.map (fun i -> Attr.Int i) dead));
    Remarks.emit ~pass:"sycl-dead-argument-elimination" ~name:"marked"
      Remarks.Passed ~func:(Core.func_sym kernel)
      (Printf.sprintf
         "marked %d dead kernel argument(s) [%s]: the runtime will not pass \
          them at launch, reducing per-launch overhead"
         (List.length dead)
         (String.concat ", " (List.map string_of_int dead)));
    Pass.Stats.bump ~by:(List.length dead) stats "dead-args.marked"
  end

let run (m : Core.op) stats =
  List.iter
    (fun f -> if Uniformity.is_kernel f then run_on_kernel f stats)
    (Core.funcs m)

let pass = Pass.make "sycl-dead-argument-elimination" run
