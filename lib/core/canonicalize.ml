(* Canonicalization: greedy constant folding + dead pure op elimination +
   a few algebraic rewrites, via the generic rewrite driver. Stands in for
   MLIR's canonicalizer, used by every pipeline configuration. *)

open Mlir

(* scf.if with a constant condition: inline the taken region. *)
let inline_taken_region (op : Core.op) (taken : Core.region option) =
  (* Move the ops of [taken] (minus terminator) before [op], replace op
     results with yield operands, erase op. *)
  let yields =
    match taken with
    | None -> []
    | Some r -> (
      let b = Core.entry_block r in
      let ops = b.Core.body in
      match List.rev ops with
      | term :: _ when Dialects.Scf.is_yield term ->
        let to_move = List.filter (fun o -> not (o == term)) ops in
        List.iter (fun o -> Core.move_before ~anchor:op o) to_move;
        Core.operands term
      | _ ->
        List.iter (fun o -> Core.move_before ~anchor:op o) ops;
        [])
  in
  List.iteri
    (fun i r ->
      match List.nth_opt yields i with
      | Some y -> Core.replace_all_uses_with r y
      | None -> ())
    (Core.results op);
  (* Remaining region contents (untaken branch, terminators) die with op. *)
  Core.walk op ~f:(fun o -> if not (o == op) then Core.erase_op_unsafe o);
  Core.erase_op op

let scf_if_const =
  Rewrite.pattern "scf.if-const" (fun op ->
      if not (Dialects.Scf.is_if op) then false
      else
        match Rewrite.constant_of_value (Core.operand op 0) with
        | Some a -> (
          match Attr.as_bool a with
          | Some true ->
            inline_taken_region op (Some op.Core.regions.(0));
            true
          | Some false ->
            inline_taken_region op
              (if Core.num_regions op > 1 then Some op.Core.regions.(1) else None);
            true
          | None -> false)
        | None -> false)

(* Loops with zero or negative trip count fold away (no results only). *)
let scf_for_zero_trip =
  Rewrite.pattern "scf.for-zero-trip" (fun op ->
      if not (Dialects.Scf.is_for op) then false
      else
        match
          ( Rewrite.constant_of_value (Dialects.Scf.for_lb op),
            Rewrite.constant_of_value (Dialects.Scf.for_ub op) )
        with
        | Some (Attr.Int lb), Some (Attr.Int ub) when lb >= ub ->
          (* Results are the untouched init values. *)
          List.iteri
            (fun i init -> Core.replace_all_uses_with (Core.result op i) init)
            (Dialects.Scf.for_iter_inits op);
          Core.walk op ~f:(fun o -> if not (o == op) then Core.erase_op_unsafe o);
          Core.erase_op op;
          true
        | _ -> false)

(* x - x => 0, x xor x => 0. *)
let self_cancel =
  Rewrite.pattern "self-cancel" (fun op ->
      if
        (op.Core.name = "arith.subi" || op.Core.name = "arith.xori")
        && Core.value_equal (Core.operand op 0) (Core.operand op 1)
      then begin
        let b = Builder.before op in
        Builder.set_default_loc b op.Core.loc;
        let zero =
          Dialects.Arith.constant b (Attr.Int 0) (Core.result op 0).Core.vty
        in
        Core.replace_all_uses_with (Core.result op 0) zero;
        Core.erase_op op;
        true
      end
      else false)

(* x and x => x, x or x => x, min/max x x => x. *)
let self_identity =
  Rewrite.pattern "self-identity" (fun op ->
      if
        List.mem op.Core.name
          [ "arith.andi"; "arith.ori"; "arith.minsi"; "arith.maxsi";
            "arith.minimumf"; "arith.maximumf" ]
        && Core.value_equal (Core.operand op 0) (Core.operand op 1)
      then begin
        Core.replace_all_uses_with (Core.result op 0) (Core.operand op 0);
        Core.erase_op op;
        true
      end
      else false)

(* cmpi of a value with itself folds to the reflexive truth value. *)
let cmp_same =
  Rewrite.pattern "cmpi-same" (fun op ->
      if
        op.Core.name = "arith.cmpi"
        && Core.value_equal (Core.operand op 0) (Core.operand op 1)
      then
        match Dialects.Arith.icmp_predicate op with
        | Some p ->
          let v =
            match p with
            | Dialects.Arith.Eq | Dialects.Arith.Sle | Dialects.Arith.Sge -> true
            | Dialects.Arith.Ne | Dialects.Arith.Slt | Dialects.Arith.Sgt -> false
          in
          let b = Builder.before op in
          Builder.set_default_loc b op.Core.loc;
          let c = Dialects.Arith.const_bool b v in
          Core.replace_all_uses_with (Core.result op 0) c;
          Core.erase_op op;
          true
        | None -> false
      else false)

(* select %c, %x, %x => %x. *)
let select_same =
  Rewrite.pattern "select-same" (fun op ->
      if
        op.Core.name = "arith.select"
        && Core.value_equal (Core.operand op 1) (Core.operand op 2)
      then begin
        Core.replace_all_uses_with (Core.result op 0) (Core.operand op 1);
        Core.erase_op op;
        true
      end
      else false)

(* (x + c1) + c2 => x + (c1+c2); likewise for muli. Re-associating constant
   chains lets long index computations fold after unrolling. *)
let reassoc_const =
  Rewrite.pattern "reassoc-const" (fun op ->
      let name = op.Core.name in
      if name <> "arith.addi" && name <> "arith.muli" then false
      else
        match Rewrite.constant_of_value (Core.operand op 1) with
        | Some (Attr.Int c2) -> (
          match Core.defining_op (Core.operand op 0) with
          | Some inner when inner.Core.name = name -> (
            match Rewrite.constant_of_value (Core.operand inner 1) with
            | Some (Attr.Int c1) ->
              let b = Builder.before op in
              Builder.set_default_loc b op.Core.loc;
              let combined =
                if name = "arith.addi" then c1 + c2 else c1 * c2
              in
              let c =
                Dialects.Arith.constant b (Attr.Int combined)
                  (Core.result op 0).Core.vty
              in
              Core.set_operand op 0 (Core.operand inner 0);
              Core.set_operand op 1 c;
              true
            | _ -> false)
          | _ -> false)
        | _ -> false)

let patterns =
  [ scf_if_const; scf_for_zero_trip; self_cancel; self_identity; cmp_same;
    select_same; reassoc_const ]

let pass =
  Pass.make "canonicalize" (fun m stats ->
      (* Per-kind counters ("canonicalize.fold", "canonicalize.dce",
         "canonicalize.pattern.<name>") plus the historical total. *)
      let on_rewrite ~func kind op =
        (match kind with
        | "fold" -> Pass.Stats.bump stats "canonicalize.fold"
        | "dce" -> Pass.Stats.bump stats "canonicalize.dce"
        | name -> Pass.Stats.bump stats ("canonicalize.pattern." ^ name));
        if Remarks.enabled () then
          (* [op] may already be erased (dce) — its name and location
             stay readable, and [~func] supplies the context an erased
             op can no longer. *)
          Remarks.emit ~pass:"canonicalize" ~name:kind Remarks.Passed ~op ~func
            (Printf.sprintf "%s rewritten by %s" op.Core.name
               (match kind with
               | "fold" -> "constant folding"
               | "dce" -> "dead pure-op elimination"
               | name -> "pattern " ^ name))
      in
      let st = Rewrite.apply_greedily ~on_rewrite m patterns in
      Pass.Stats.bump ~by:st.Rewrite.rw_rewrites stats "rewrites";
      (* Compiler-speed counter: deterministic, gated by bench compare. *)
      Pass.Stats.bump ~by:st.Rewrite.rw_ops_visited stats
        "canonicalize.ops_visited")
