(* Compile-time device-kernel fusion — the extension the paper's
   Section VII anticipates: "By merging multiple SYCL device kernels, the
   overhead associated with kernel launch can be reduced and dataflow ...
   can potentially be made internal to the fused kernel. ... With joint
   analysis and optimization of host and device code, such transformations
   could be done at compilation time" (rather than at runtime via a JIT,
   as Pérez et al. [16] had to).

   The pass runs on the raised host module. Two consecutively submitted
   command groups fuse when:
   - both launch plain (non-nd-range) kernels of the same dimensionality
     over value-identical global ranges, with no barriers inside;
   - only command-group-construction ops separate the two submissions;
   - every buffer accessed by both kernels — with at least one of the two
     writing it — is accessed exclusively at the work-item's own index
     (the element-wise producer/consumer pattern), so per-work-item
     sequencing preserves the inter-kernel dependence.

   The fused kernel concatenates both bodies; the host schedules one
   command group with the merged captures. Run Store_forwarding afterwards
   to turn the intermediate buffer's store->load into direct dataflow. *)

open Mlir

let fused_counter = ref 0

(* ------------------------------------------------------------------ *)
(* Safety analysis                                                     *)
(* ------------------------------------------------------------------ *)

(** Is every use of kernel argument [arg] (an accessor) a direct subscript
    at exactly (gid_0, ..., gid_{d-1})? *)
let identity_indexed_only (kernel : Core.op) (arg : Core.value) =
  let gid_dim (v : Core.value) =
    match v.Core.vdef with
    | Core.Op_result (op, _) when Sycl_ops.is_global_id_getter op ->
      Sycl_ops.getter_dim op
    | _ -> None
  in
  List.for_all
    (fun (user, idx) ->
      ignore idx;
      Sycl_ops.is_subscript user
      && Core.value_equal (Sycl_ops.subscript_accessor user) arg
      && Sycl_ops.subscript_is_direct user
      &&
      let indices = Sycl_ops.subscript_indices user in
      List.for_all2
        (fun i expected -> gid_dim i = Some expected)
        indices
        (List.init (List.length indices) Fun.id))
    (Core.uses arg)

let has_barrier (kernel : Core.op) =
  Core.find_first kernel ~p:Sycl_ops.is_barrier <> None

type site = {
  s_parallel_for : Core.op;
  s_submit : Core.op;
  s_nd_range : Core.op;
  s_captures : Core.op list;  (** set_captured ops, sorted by index *)
  s_kernel : Core.op;
}

let site_of (m : Core.op) (pf : Core.op) : site option =
  let handler = Core.operand pf 0 in
  let submit =
    match Core.defining_op handler with
    | Some s when Sycl_host_ops.is_submit s -> Some s
    | _ -> None
  in
  let uses = List.map fst (Core.uses handler) in
  let nd = List.find_opt Sycl_host_ops.is_set_nd_range uses in
  let captures =
    List.filter Sycl_host_ops.is_set_captured uses
    |> List.sort (fun a b ->
           compare (Sycl_host_ops.set_captured_index a)
             (Sycl_host_ops.set_captured_index b))
  in
  match
    ( submit, nd,
      Option.bind (Sycl_host_ops.parallel_for_kernel pf) (Core.lookup_func m) )
  with
  | Some s_submit, Some s_nd_range, Some s_kernel ->
    Some { s_parallel_for = pf; s_submit; s_nd_range; s_captures = captures; s_kernel }
  | _ -> None

(* Buffer behind a captured accessor value, if any. *)
let capture_buffer (cap : Core.op) =
  let v = Core.operand cap 1 in
  match Core.defining_op v with
  | Some ctor when Sycl_host_ops.is_accessor_ctor ctor ->
    Some (Sycl_host_ops.accessor_ctor_buffer ctor, ctor)
  | _ -> None

let capture_mode (cap : Core.op) =
  match capture_buffer cap with
  | Some (_, ctor) -> Sycl_host_ops.accessor_ctor_mode ctor
  | None -> None

let writes_mode = function
  | Some Sycl_types.Write | Some Sycl_types.Read_write -> true
  | _ -> false

(** Kernel argument bound by a set_captured op (captures bind 1:1 to args,
    arg 0 being the item). *)
let arg_of_capture (kernel : Core.op) (cap : Core.op) =
  List.nth_opt
    (Core.block_args (Core.func_body kernel))
    (Sycl_host_ops.set_captured_index cap)

(** The fusion-safety check across two sites. *)
let dependence_safe (a : site) (b : site) =
  let shared =
    List.concat_map
      (fun cap_a ->
        match capture_buffer cap_a with
        | None -> []
        | Some (buf_a, _) ->
          List.filter_map
            (fun cap_b ->
              match capture_buffer cap_b with
              | Some (buf_b, _) when Core.value_equal buf_a buf_b ->
                Some (cap_a, cap_b)
              | _ -> None)
            b.s_captures)
      a.s_captures
  in
  List.for_all
    (fun (cap_a, cap_b) ->
      let involved_in_write =
        writes_mode (capture_mode cap_a) || writes_mode (capture_mode cap_b)
      in
      (not involved_in_write)
      || (match (arg_of_capture a.s_kernel cap_a, arg_of_capture b.s_kernel cap_b) with
         | Some arg_a, Some arg_b ->
           identity_indexed_only a.s_kernel arg_a
           && identity_indexed_only b.s_kernel arg_b
         | _ -> false))
    shared

let same_nd_range (a : site) (b : site) =
  Sycl_host_ops.nd_range_local a.s_nd_range = None
  && Sycl_host_ops.nd_range_local b.s_nd_range = None
  &&
  let ga = Sycl_host_ops.nd_range_global a.s_nd_range in
  let gb = Sycl_host_ops.nd_range_global b.s_nd_range in
  List.length ga = List.length gb && List.for_all2 Core.value_equal ga gb

(* Only command-group construction may sit between the two launches. *)
let construction_only_between (block : Core.block) (a : Core.op) (b : Core.op) =
  let rec skip_to = function
    | [] -> None
    | op :: rest when op == a -> Some rest
    | _ :: rest -> skip_to rest
  in
  match skip_to block.Core.body with
  | None -> false
  | Some rest ->
    let rec check = function
      | [] -> false
      | op :: _ when op == b -> true
      | op :: rest ->
        let benign =
          Sycl_host_ops.is_submit op
          || Sycl_host_ops.is_accessor_ctor op
          || Sycl_host_ops.is_set_captured op
          || Sycl_host_ops.is_set_nd_range op
          || op.Core.name = "arith.constant"
          || op.Core.name = "llvm.addressof"
        in
        if benign then check rest else false
    in
    check rest

(* ------------------------------------------------------------------ *)
(* The transformation                                                  *)
(* ------------------------------------------------------------------ *)

let item_type (kernel : Core.op) =
  (List.hd (Core.block_args (Core.func_body kernel))).Core.vty

let build_fused (m : Core.op) (a : site) (b : site) : Core.op =
  incr fused_counter;
  let name =
    Printf.sprintf "%s_%s_fused%d" (Core.func_sym a.s_kernel)
      (Core.func_sym b.s_kernel) !fused_counter
  in
  let args_a = List.tl (Core.block_args (Core.func_body a.s_kernel)) in
  let args_b = List.tl (Core.block_args (Core.func_body b.s_kernel)) in
  let arg_tys =
    item_type a.s_kernel
    :: (List.map (fun v -> v.Core.vty) args_a @ List.map (fun v -> v.Core.vty) args_b)
  in
  let fused =
    Dialects.Func.func m name ~args:arg_tys ~results:[] (fun bld vals ->
        match vals with
        | item :: rest ->
          let n_a = List.length args_a in
          let fa = List.filteri (fun i _ -> i < n_a) rest in
          let fb = List.filteri (fun i _ -> i >= n_a) rest in
          let inline kernel formals =
            let value_map = Hashtbl.create 32 in
            let orig_args = Core.block_args (Core.func_body kernel) in
            Hashtbl.replace value_map (List.hd orig_args).Core.vid item;
            List.iter2
              (fun o f -> Hashtbl.replace value_map o.Core.vid f)
              (List.tl orig_args) formals;
            List.iter
              (fun op ->
                if not (Op_registry.is_terminator op) then
                  ignore (Builder.insert bld (Core.clone_op ~value_map op)))
              (Core.func_body kernel).Core.body
          in
          inline a.s_kernel fa;
          inline b.s_kernel fb;
          Dialects.Func.return bld []
        | [] -> assert false)
  in
  Core.set_attr fused "sycl.kernel" Attr.Unit;
  (* The fused kernel's location fuses its constituents'; body ops keep
     the location of the kernel they were cloned from. *)
  fused.Core.loc <- Loc.fused [ a.s_kernel.Core.loc; b.s_kernel.Core.loc ];
  (* Constituent alias facts remain valid: A's argument indices are
     preserved, B's shift by |A's captures|. *)
  let n_a = List.length args_a in
  List.iter
    (fun (i, j) -> Alias.add_mustalias_pair fused i j)
    (Alias.mustalias_pairs a.s_kernel);
  List.iter
    (fun (i, j) -> Alias.add_mustalias_pair fused (i + n_a) (j + n_a))
    (Alias.mustalias_pairs b.s_kernel);
  List.iter
    (fun (i, j) -> Alias.add_noalias_pair fused i j)
    (Alias.noalias_pairs a.s_kernel);
  List.iter
    (fun (i, j) -> Alias.add_noalias_pair fused (i + n_a) (j + n_a))
    (Alias.noalias_pairs b.s_kernel);
  fused

let fuse (m : Core.op) (a : site) (b : site) stats =
  let fused = build_fused m a b in
  let n_a = List.length a.s_captures in
  (* Captures over the same buffer become must-aliased arguments of the
     fused kernel — what lets store-forwarding internalize the dataflow. *)
  List.iter
    (fun cap_a ->
      match capture_buffer cap_a with
      | None -> ()
      | Some (buf_a, _) ->
        List.iter
          (fun cap_b ->
            match capture_buffer cap_b with
            | Some (buf_b, _) when Core.value_equal buf_a buf_b ->
              Alias.add_mustalias_pair fused
                (Sycl_host_ops.set_captured_index cap_a)
                (Sycl_host_ops.set_captured_index cap_b + n_a)
            | _ -> ())
          b.s_captures)
    a.s_captures;
  (* Re-point B's command-group construction at A's handler. *)
  let h_a = Core.operand a.s_parallel_for 0 in
  List.iter
    (fun cap ->
      Core.set_operand cap 0 h_a;
      Core.set_attr cap "index"
        (Attr.Int (Sycl_host_ops.set_captured_index cap + n_a)))
    b.s_captures;
  Core.walk m ~f:(fun op ->
      if
        Sycl_host_ops.is_accessor_ctor op
        && Core.value_equal (Core.operand op 1) (Core.result b.s_submit 0)
      then Core.set_operand op 1 h_a);
  Core.set_attr a.s_parallel_for "kernel" (Attr.Symbol (Core.func_sym fused));
  (* The surviving launch now stands for both original launches. *)
  a.s_parallel_for.Core.loc <-
    Loc.fused [ a.s_parallel_for.Core.loc; b.s_parallel_for.Core.loc ];
  (* The merged launch must follow the second group's construction ops. *)
  Core.move_before ~anchor:b.s_parallel_for a.s_parallel_for;
  Core.erase_op b.s_parallel_for;
  Core.erase_op b.s_nd_range;
  (match Core.uses (Core.result b.s_submit 0) with
  | [] -> Core.erase_op b.s_submit
  | _ -> ());
  Remarks.emit ~pass:"kernel-fusion" ~name:"fused" Remarks.Passed
    ~func:(Core.func_sym fused) ~loc:fused.Core.loc
    (Printf.sprintf
       "kernels %s and %s fused into one launch: one command group replaces \
        two, and the shared buffer's dataflow becomes internal"
       (Core.func_sym a.s_kernel) (Core.func_sym b.s_kernel));
  Pass.Stats.bump stats "fusion.fused"

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(** Why an adjacent pair of launch sites did not fuse — the
    -Rpass-missed reason shown for the first condition that fails. *)
let missed_fusion_reason (block : Core.block) (a : site) (b : site) :
    string option =
  if not (Types.equal (item_type a.s_kernel) (item_type b.s_kernel)) then
    Some "kernels have different dimensionality or item kinds"
  else if has_barrier a.s_kernel || has_barrier b.s_kernel then
    Some "a kernel contains a work-group barrier"
  else if not (same_nd_range a b) then
    Some "launch ranges are not value-identical plain ranges"
  else if not (construction_only_between block a.s_parallel_for b.s_parallel_for)
  then Some "host code other than command-group construction sits between the launches"
  else if not (dependence_safe a b) then
    Some
      "a shared buffer with a writer is not accessed purely at the \
       work-item's own index, so per-work-item sequencing would break the \
       inter-kernel dependence"
  else None

let try_fuse_in_block (m : Core.op) (block : Core.block) stats : bool =
  let pfs = List.filter Sycl_host_ops.is_parallel_for block.Core.body in
  let rec pairs = function
    | pf_a :: (pf_b :: _ as rest) -> (
      match (site_of m pf_a, site_of m pf_b) with
      | Some a, Some b -> (
        match missed_fusion_reason block a b with
        | None ->
          fuse m a b stats;
          true
        | Some reason ->
          if Remarks.enabled () then
            Remarks.emit ~pass:"kernel-fusion" ~name:"not-fused"
              Remarks.Missed
              ~func:(Core.func_sym a.s_kernel)
              (Printf.sprintf "launches of %s and %s not fused: %s"
                 (Core.func_sym a.s_kernel) (Core.func_sym b.s_kernel) reason);
          pairs rest)
      | _ -> pairs rest)
    | _ -> false
  in
  pairs pfs

let run (m : Core.op) stats =
  List.iter
    (fun f ->
      if not (Dialects.Func.is_declaration f) then
        Core.walk f ~f:(fun op ->
            Array.iter
              (fun r ->
                List.iter
                  (fun blk ->
                    (* Fuse repeatedly: a fused site may fuse again. *)
                    let continue_ = ref true in
                    while !continue_ do
                      continue_ := try_fuse_in_block m blk stats
                    done)
                  r.Core.blocks)
              op.Core.regions))
    (List.filter (fun f -> not (Uniformity.is_kernel f)) (Core.funcs m));
  (* Drop kernels no launch references anymore. *)
  let referenced = Hashtbl.create 8 in
  Core.walk m ~f:(fun op ->
      if Sycl_host_ops.is_parallel_for op then
        match Sycl_host_ops.parallel_for_kernel op with
        | Some k -> Hashtbl.replace referenced k ()
        | None -> ());
  List.iter
    (fun f ->
      if Uniformity.is_kernel f && not (Hashtbl.mem referenced (Core.func_sym f))
      then begin
        Core.walk f ~f:(fun o -> if not (o == f) then Core.erase_op_unsafe o);
        Core.erase_op f;
        Pass.Stats.bump stats "fusion.dead-kernels-removed"
      end)
    (Core.funcs m)

let pass = Pass.make "kernel-fusion" run
