(** Simulator trace profiling: a timeline of every cost-model charge in
    a run, exportable as Chrome-trace JSON (chrome://tracing, Perfetto),
    plus per-kernel profiles aggregated from the same events.

    Time convention: 1 simulated cycle = 1 us of trace time, so cycle
    counts read directly off the trace viewer. *)

type event = {
  ev_name : string;
  ev_cat : string;
      (** "submit" | "transfer" | "jit" | "launch" | "kernel" *)
  ev_ts : int;  (** start, in simulated cycles *)
  ev_dur : int;  (** duration, in simulated cycles *)
  ev_args : (string * int) list;
}

(** A per-launch recording segment: timestamps are relative to the
    segment start. Record a launch's charges into a private segment and
    {!commit} it, so interleaved launches (nested runs, parallel worker
    domains) cannot corrupt each other's timeline. *)
type segment

val segment : unit -> segment

(** Append an event at the segment's current relative clock and advance
    it by [dur]. Zero-duration charges are dropped. *)
val record_seg :
  segment ->
  cat:string ->
  name:string ->
  ?args:(string * int) list ->
  dur:int ->
  unit ->
  unit

(** Records committed segments on a single simulated timeline: each
    commit starts at the current clock and advances it (the host
    runtime is in-order). Thread-safe. *)
type recorder

val recorder : unit -> recorder

(** Atomically shift the segment onto the recorder clock, append its
    events, and advance the clock by the segment's span. *)
val commit : recorder -> segment -> unit

(** One-shot convenience: a single event committed immediately. *)
val record :
  recorder ->
  cat:string ->
  name:string ->
  ?args:(string * int) list ->
  dur:int ->
  unit ->
  unit

(** Recorded events, oldest first. *)
val events : recorder -> event list

(** Cycle breakdown of a launch — the args payload of a kernel event:
    compute/memory/barrier cycles, transaction and work-item counts,
    [total_wg_cycles], [max_wg_cycles], [num_cu]. *)
val breakdown : Cost.params -> Cost.launch_stats -> (string * int) list

type kernel_profile = {
  kp_name : string;
  kp_launches : int;
  kp_launch_cycles : int;  (** host-side launch overhead *)
  kp_device_cycles : int;
      (** device wall time (work-groups spread over CUs) *)
  kp_compute_cycles : int;
  kp_memory_cycles : int;
  kp_barrier_cycles : int;
  kp_global_transactions : int;
  kp_local_transactions : int;
  kp_const_transactions : int;
  kp_work_items : int;
  kp_occupancy : float;
      (** total work-group cycles / (num_cu * device wall cycles),
          clamped to 1 *)
}

(** Aggregate per-kernel profiles from a run's events: cat ["kernel"]
    events carry the {!breakdown} payload; cat ["launch"] events share
    the kernel's name and contribute [kp_launch_cycles]. Ordered by
    first launch. *)
val of_events : event list -> kernel_profile list

val pp_table : Format.formatter -> kernel_profile list -> unit

(** Serialize as a Chrome-trace JSON document ([traceEvents], complete
    events [ph:"X"], one process with host/transfer/device rows). *)
val to_chrome_json : event list -> string

(** Simulator events as unified-telemetry trace spans, shifted by [base]
    microseconds: cat ["kernel"] events land on the device lane, all
    other charges on the host-runtime lane. *)
val trace_spans : ?base:int -> event list -> Sycl_obs.Trace.span list
