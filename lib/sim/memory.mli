(** Simulated device memory.

    Allocations are element-granular cell arrays tagged with a memory
    space; views carry offset/shape/stride descriptors (memref
    semantics). SYCL struct types (id, range, item) occupy
    [Sycl_types.flat_cells] integer cells when stored. *)

open Mlir

type cell =
  | I of int
  | F of float

type allocation = {
  aid : int;  (** unique id (used by the coalescing tables) *)
  space : Types.memspace;
  data : cell array;
  mutable constant_cached : bool;
      (** set when compiler/runtime information proves the data constant;
          reads then use the constant-cache latency class *)
  label : string;
}

val alloc :
  ?label:string -> ?space:Types.memspace -> size:int -> unit -> allocation

(** Like {!alloc} with integer-zero initialization. *)
val alloc_ints : ?label:string -> ?space:Types.memspace -> int -> allocation

(** A memref-style view: element [(i0, i1, ...)] lives at
    [offset + sum(strides.(k) * ik)] in [base.data]. *)
type view = {
  base : allocation;
  offset : int;
  dims : int array;
  strides : int array;
}

(** Whole-allocation view; [dims] defaults to one flat dimension and
    strides are derived row-major. *)
val full_view : ?dims:int array -> allocation -> view

exception Out_of_bounds of string

(** Linear cell index of a multi-dimensional access (checked). *)
val linear_index : view -> int list -> int

val read : view -> int list -> cell
val write : view -> int list -> cell -> unit

val cell_to_float : cell -> float
val cell_to_int : cell -> int

(** Copy [n] elements between allocations (host<->device transfers). *)
val blit : src:view -> dst:view -> int -> unit

(** {1 Write footprints}

    Element-granular record of the global-memory cells one work-group
    wrote, used by the simulator's cross-group race detector: SYCL
    work-groups of a kernel must write disjoint global locations. *)

type footprint

val footprint : unit -> footprint

(** Record a write of cell [lin] (a {!linear_index} result) through the
    view, remembering the writing op's location (first writer wins).
    Only global-space writes are recorded. *)
val footprint_write : ?loc:Loc.t -> footprint -> view -> int -> unit

(** The footprinted (allocation id, cell) pairs, sorted — deterministic
    regardless of insertion order. *)
val footprint_cells : footprint -> (int * int) list

(** Label of a footprinted allocation (["?"] when unknown). *)
val footprint_label : footprint -> int -> string

(** Location of the (first) op that wrote a footprinted cell
    ([Loc.Unknown] when none was recorded). *)
val footprint_loc : footprint -> int * int -> Loc.t
