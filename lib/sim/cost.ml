(* The GPU performance model. The Intel Data Center GPU Max 1100 of the
   paper's testbed is replaced by a transaction-level cost model capturing
   the effects the evaluated optimizations act on:

   - memory-level: per-sub-group coalescing over cache lines, with
     distinct latencies for global, work-group-local and constant-cached
     memory (local memory is smaller but faster — Section II-A);
   - kernel-launch overhead with a per-argument component (what SYCL Dead
     Argument Elimination saves, Section VII-B);
   - host<->device transfer costs per cache line;
   - a JIT-compilation charge for AdaptiveCpp-style runtime compilation.

   Absolute numbers are not meaningful; ratios are chosen so the relative
   behaviour (who wins where) can reproduce the paper's shapes. *)

type params = {
  alu_cycles : int;
  fdiv_cycles : int;  (* divide / sqrt / exp class *)
  global_mem_cycles : int;  (* per coalesced transaction *)
  local_mem_cycles : int;
  const_mem_cycles : int;  (* constant-cached global data *)
  cache_line_elems : int;  (* elements per transaction line *)
  subgroup_size : int;
  barrier_cycles : int;
  launch_base_cycles : int;
  launch_per_arg_cycles : int;
  num_cu : int;  (* compute units executing work-groups in parallel *)
  transfer_line_cycles : int;  (* host<->device per cache line *)
  jit_compile_cycles : int;  (* AdaptiveCpp first-launch JIT *)
  scheduler_cycles : int;  (* per command-group runtime bookkeeping *)
  cache_lines : int;  (* per-core data cache capacity, in lines *)
  cache_ways : int;  (* associativity of the set-associative model *)
  cache_hit_cycles : int;  (* per transaction that hits in the cache *)
}

let default =
  {
    alu_cycles = 1;
    fdiv_cycles = 8;
    global_mem_cycles = 48;
    local_mem_cycles = 6;
    const_mem_cycles = 6;
    cache_line_elems = 16;
    subgroup_size = 16;
    barrier_cycles = 24;
    launch_base_cycles = 40_000;
    launch_per_arg_cycles = 4_000;
    num_cu = 32;
    transfer_line_cycles = 8;
    jit_compile_cycles = 20_000_000;
    scheduler_cycles = 8_000;
    cache_lines = 64;
    cache_ways = 4;
    cache_hit_cycles = 4;
  }

(* Per-core data cache model. [Flat] is the seed behaviour: every global
   transaction costs [global_mem_cycles] and no cache state is simulated
   (output stays byte-identical to before the cache existed).
   [Direct_mapped] and [Set_associative] (LRU) probe a per-work-group
   cache on every coalesced global transaction; hits cost
   [cache_hit_cycles], misses the full [global_mem_cycles]. *)
type cache_model = Flat | Direct_mapped | Set_associative

let model_of_string = function
  | "flat" -> Some Flat
  | "dm" -> Some Direct_mapped
  | "assoc" -> Some Set_associative
  | _ -> None

let model_to_string = function
  | Flat -> "flat"
  | Direct_mapped -> "dm"
  | Set_associative -> "assoc"

(** Statistics for one kernel launch (accumulated across work-groups). *)
type launch_stats = {
  mutable alu_ops : int;
  mutable fdiv_ops : int;
  mutable global_transactions : int;
  mutable local_transactions : int;
  mutable const_transactions : int;
  mutable barriers : int;  (* work-group-level barrier occurrences *)
  mutable work_groups : int;
  mutable work_items : int;
  mutable max_wg_cycles : int;
  mutable total_wg_cycles : int;
  (* Cache-model counters; all stay 0 under [Flat] so every rendering
     surface can gate on them and keep flat output byte-identical. *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
  mutable cache_mem_wait_cycles : int;
}

let fresh_launch_stats () =
  {
    alu_ops = 0;
    fdiv_ops = 0;
    global_transactions = 0;
    local_transactions = 0;
    const_transactions = 0;
    barriers = 0;
    work_groups = 0;
    work_items = 0;
    max_wg_cycles = 0;
    total_wg_cycles = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
    cache_mem_wait_cycles = 0;
  }

(** Merge [src] into [into]. Used by the parallel simulator backend:
    each worker domain accumulates a private [launch_stats] and the
    per-worker results are merged in canonical chunk order. Every field
    is a sum except [max_wg_cycles] (a max), so the merged result is
    identical to sequential accumulation whatever the chunking. *)
let merge_launch_stats ~(into : launch_stats) (src : launch_stats) =
  into.alu_ops <- into.alu_ops + src.alu_ops;
  into.fdiv_ops <- into.fdiv_ops + src.fdiv_ops;
  into.global_transactions <- into.global_transactions + src.global_transactions;
  into.local_transactions <- into.local_transactions + src.local_transactions;
  into.const_transactions <- into.const_transactions + src.const_transactions;
  into.barriers <- into.barriers + src.barriers;
  into.work_groups <- into.work_groups + src.work_groups;
  into.work_items <- into.work_items + src.work_items;
  into.max_wg_cycles <- max into.max_wg_cycles src.max_wg_cycles;
  into.total_wg_cycles <- into.total_wg_cycles + src.total_wg_cycles;
  into.cache_hits <- into.cache_hits + src.cache_hits;
  into.cache_misses <- into.cache_misses + src.cache_misses;
  into.cache_evictions <- into.cache_evictions + src.cache_evictions;
  into.cache_mem_wait_cycles <-
    into.cache_mem_wait_cycles + src.cache_mem_wait_cycles

(** Cycle cost of one work-group's recorded charges: the summed ALU and
    fdiv charges amortize over the sub-group width (one integer division
    per group — attribution distributes the quotient over charging ops
    with a largest-remainder rule so per-op shares still sum exactly to
    this), plus exact per-transaction memory and per-round barrier
    costs. *)
let global_cycles (p : params) ~(model : cache_model) ~global ~hits ~misses =
  match model with
  | Flat -> global * p.global_mem_cycles
  | Direct_mapped | Set_associative ->
    (hits * p.cache_hit_cycles) + (misses * p.global_mem_cycles)

let wg_cycles (p : params) ?(model = Flat) ?(hits = 0) ?(misses = 0) ~alu ~fdiv
    ~global ~local ~const ~barriers () =
  ((alu * p.alu_cycles) + (fdiv * p.fdiv_cycles)) / max 1 p.subgroup_size
  + global_cycles p ~model ~global ~hits ~misses
  + (local * p.local_mem_cycles)
  + (const * p.const_mem_cycles)
  + (barriers * p.barrier_cycles)

(** Device time of a launch: work-groups spread across compute units. *)
let device_cycles (p : params) (s : launch_stats) =
  if s.work_groups = 0 then 0
  else max (s.total_wg_cycles / p.num_cu) s.max_wg_cycles

let launch_overhead (p : params) ~(live_args : int) =
  p.launch_base_cycles + (live_args * p.launch_per_arg_cycles)

let transfer_cycles (p : params) ~(elems : int) =
  (elems + p.cache_line_elems - 1) / p.cache_line_elems * p.transfer_line_cycles

(** True when a non-flat cache model recorded at least one probe. All
    cache-aware output surfaces gate on this so [Flat] runs stay
    byte-identical to the pre-cache format. *)
let cache_active (s : launch_stats) = s.cache_hits + s.cache_misses > 0

let pp_launch_stats fmt (s : launch_stats) =
  Format.fprintf fmt
    "alu=%d fdiv=%d mem(g=%d l=%d c=%d) barriers=%d wgs=%d items=%d cycles(total=%d max=%d)"
    s.alu_ops s.fdiv_ops s.global_transactions s.local_transactions
    s.const_transactions s.barriers s.work_groups s.work_items
    s.total_wg_cycles s.max_wg_cycles;
  if cache_active s then
    Format.fprintf fmt " cache(hits=%d misses=%d evict=%d wait=%d)"
      s.cache_hits s.cache_misses s.cache_evictions s.cache_mem_wait_cycles
