(* The GPU performance model. The Intel Data Center GPU Max 1100 of the
   paper's testbed is replaced by a transaction-level cost model capturing
   the effects the evaluated optimizations act on:

   - memory-level: per-sub-group coalescing over cache lines, with
     distinct latencies for global, work-group-local and constant-cached
     memory (local memory is smaller but faster — Section II-A);
   - kernel-launch overhead with a per-argument component (what SYCL Dead
     Argument Elimination saves, Section VII-B);
   - host<->device transfer costs per cache line;
   - a JIT-compilation charge for AdaptiveCpp-style runtime compilation.

   Absolute numbers are not meaningful; ratios are chosen so the relative
   behaviour (who wins where) can reproduce the paper's shapes. *)

type params = {
  alu_cycles : int;
  fdiv_cycles : int;  (* divide / sqrt / exp class *)
  global_mem_cycles : int;  (* per coalesced transaction *)
  local_mem_cycles : int;
  const_mem_cycles : int;  (* constant-cached global data *)
  cache_line_elems : int;  (* elements per transaction line *)
  subgroup_size : int;
  barrier_cycles : int;
  launch_base_cycles : int;
  launch_per_arg_cycles : int;
  num_cu : int;  (* compute units executing work-groups in parallel *)
  transfer_line_cycles : int;  (* host<->device per cache line *)
  jit_compile_cycles : int;  (* AdaptiveCpp first-launch JIT *)
  scheduler_cycles : int;  (* per command-group runtime bookkeeping *)
}

let default =
  {
    alu_cycles = 1;
    fdiv_cycles = 8;
    global_mem_cycles = 48;
    local_mem_cycles = 6;
    const_mem_cycles = 6;
    cache_line_elems = 16;
    subgroup_size = 16;
    barrier_cycles = 24;
    launch_base_cycles = 40_000;
    launch_per_arg_cycles = 4_000;
    num_cu = 32;
    transfer_line_cycles = 8;
    jit_compile_cycles = 20_000_000;
    scheduler_cycles = 8_000;
  }

(** Statistics for one kernel launch (accumulated across work-groups). *)
type launch_stats = {
  mutable alu_ops : int;
  mutable fdiv_ops : int;
  mutable global_transactions : int;
  mutable local_transactions : int;
  mutable const_transactions : int;
  mutable barriers : int;  (* work-group-level barrier occurrences *)
  mutable work_groups : int;
  mutable work_items : int;
  mutable max_wg_cycles : int;
  mutable total_wg_cycles : int;
}

let fresh_launch_stats () =
  {
    alu_ops = 0;
    fdiv_ops = 0;
    global_transactions = 0;
    local_transactions = 0;
    const_transactions = 0;
    barriers = 0;
    work_groups = 0;
    work_items = 0;
    max_wg_cycles = 0;
    total_wg_cycles = 0;
  }

(** Merge [src] into [into]. Used by the parallel simulator backend:
    each worker domain accumulates a private [launch_stats] and the
    per-worker results are merged in canonical chunk order. Every field
    is a sum except [max_wg_cycles] (a max), so the merged result is
    identical to sequential accumulation whatever the chunking. *)
let merge_launch_stats ~(into : launch_stats) (src : launch_stats) =
  into.alu_ops <- into.alu_ops + src.alu_ops;
  into.fdiv_ops <- into.fdiv_ops + src.fdiv_ops;
  into.global_transactions <- into.global_transactions + src.global_transactions;
  into.local_transactions <- into.local_transactions + src.local_transactions;
  into.const_transactions <- into.const_transactions + src.const_transactions;
  into.barriers <- into.barriers + src.barriers;
  into.work_groups <- into.work_groups + src.work_groups;
  into.work_items <- into.work_items + src.work_items;
  into.max_wg_cycles <- max into.max_wg_cycles src.max_wg_cycles;
  into.total_wg_cycles <- into.total_wg_cycles + src.total_wg_cycles

(** Cycle cost of one work-group's recorded charges: the summed ALU and
    fdiv charges amortize over the sub-group width (one integer division
    per group — attribution distributes the quotient over charging ops
    with a largest-remainder rule so per-op shares still sum exactly to
    this), plus exact per-transaction memory and per-round barrier
    costs. *)
let wg_cycles (p : params) ~alu ~fdiv ~global ~local ~const ~barriers =
  ((alu * p.alu_cycles) + (fdiv * p.fdiv_cycles)) / max 1 p.subgroup_size
  + (global * p.global_mem_cycles)
  + (local * p.local_mem_cycles)
  + (const * p.const_mem_cycles)
  + (barriers * p.barrier_cycles)

(** Device time of a launch: work-groups spread across compute units. *)
let device_cycles (p : params) (s : launch_stats) =
  if s.work_groups = 0 then 0
  else max (s.total_wg_cycles / p.num_cu) s.max_wg_cycles

let launch_overhead (p : params) ~(live_args : int) =
  p.launch_base_cycles + (live_args * p.launch_per_arg_cycles)

let transfer_cycles (p : params) ~(elems : int) =
  (elems + p.cache_line_elems - 1) / p.cache_line_elems * p.transfer_line_cycles

let pp_launch_stats fmt (s : launch_stats) =
  Format.fprintf fmt
    "alu=%d fdiv=%d mem(g=%d l=%d c=%d) barriers=%d wgs=%d items=%d cycles(total=%d max=%d)"
    s.alu_ops s.fdiv_ops s.global_transactions s.local_transactions
    s.const_transactions s.barriers s.work_groups s.work_items
    s.total_wg_cycles s.max_wg_cycles
