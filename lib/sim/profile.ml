(* Simulator trace profiling: a timeline of everything the cost model
   charges during a run (scheduler bookkeeping, transfers, JIT, launch
   overhead, device execution), exportable in the Chrome trace format so
   chrome://tracing or Perfetto render the simulated run, plus per-kernel
   profiles aggregated from the same events.

   Time convention: one simulated cycle is exported as one microsecond
   (the trace format's [ts]/[dur] unit), so cycle counts read directly
   off the trace viewer. *)

type event = {
  ev_name : string;
  ev_cat : string;
      (** "submit" | "transfer" | "jit" | "launch" | "kernel" *)
  ev_ts : int;  (** start, in simulated cycles *)
  ev_dur : int;  (** duration, in simulated cycles *)
  ev_args : (string * int) list;
}

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

(** A per-launch recording segment: events carry timestamps relative to
    the segment start. A launch records into a private segment and the
    whole segment is committed onto the shared recorder timeline in one
    step, so two interleaved launches (nested [run]s, parallel worker
    domains) can no longer corrupt each other's clock. *)
type segment = {
  mutable sg_clock : int;  (** relative to segment start *)
  mutable sg_rev : event list;  (** newest first, relative timestamps *)
}

let segment () = { sg_clock = 0; sg_rev = [] }

let record_seg (sg : segment) ~(cat : string) ~(name : string)
    ?(args = []) ~(dur : int) () =
  if dur > 0 then begin
    sg.sg_rev <-
      { ev_name = name; ev_cat = cat; ev_ts = sg.sg_clock; ev_dur = dur;
        ev_args = args }
      :: sg.sg_rev;
    sg.sg_clock <- sg.sg_clock + dur
  end

(** Records events on a single simulated timeline: each committed
    segment starts at the current clock and advances it — the host
    runtime is in-order, so charges simply concatenate. The mutex makes
    commits atomic under concurrent recording. *)
type recorder = {
  rc_mutex : Mutex.t;
  mutable rc_clock : int;
  mutable rc_rev : event list;  (** newest first *)
}

let recorder () = { rc_mutex = Mutex.create (); rc_clock = 0; rc_rev = [] }

(** Shift [sg]'s events onto the recorder clock and append them, then
    advance the clock by the segment's span — atomically. *)
let commit (r : recorder) (sg : segment) =
  Mutex.protect r.rc_mutex (fun () ->
      let base = r.rc_clock in
      (* sg_rev is newest first; walking it oldest-first while consing
         keeps rc_rev newest first. *)
      List.iter
        (fun e -> r.rc_rev <- { e with ev_ts = base + e.ev_ts } :: r.rc_rev)
        (List.rev sg.sg_rev);
      r.rc_clock <- base + sg.sg_clock)

(** One-shot convenience: a single event committed immediately. *)
let record (r : recorder) ~(cat : string) ~(name : string)
    ?(args = []) ~(dur : int) () =
  let sg = segment () in
  record_seg sg ~cat ~name ~args ~dur ();
  commit r sg

let events (r : recorder) =
  Mutex.protect r.rc_mutex (fun () -> List.rev r.rc_rev)

(* ------------------------------------------------------------------ *)
(* Kernel event payload                                                *)
(* ------------------------------------------------------------------ *)

(** Cycle breakdown of a launch under [p]: the categories the cost model
    charges per work-group, totalled across the launch. *)
let breakdown (p : Cost.params) (s : Cost.launch_stats) : (string * int) list =
  (* Under a non-flat cache model the global component prices hits and
     misses separately (same formula the work-group cost used); the
     cache counters ride along so trace viewers can chart hit rates. *)
  let global_cycles =
    if Cost.cache_active s then
      (s.Cost.cache_hits * p.Cost.cache_hit_cycles)
      + (s.Cost.cache_misses * p.Cost.global_mem_cycles)
    else s.Cost.global_transactions * p.Cost.global_mem_cycles
  in
  [
    ("compute_cycles",
     (s.Cost.alu_ops * p.Cost.alu_cycles)
     + (s.Cost.fdiv_ops * p.Cost.fdiv_cycles));
    ("memory_cycles",
     global_cycles
     + (s.Cost.local_transactions * p.Cost.local_mem_cycles)
     + (s.Cost.const_transactions * p.Cost.const_mem_cycles));
    ("barrier_cycles", s.Cost.barriers * p.Cost.barrier_cycles);
    ("global_transactions", s.Cost.global_transactions);
    ("local_transactions", s.Cost.local_transactions);
    ("const_transactions", s.Cost.const_transactions);
    ("work_groups", s.Cost.work_groups);
    ("work_items", s.Cost.work_items);
    ("total_wg_cycles", s.Cost.total_wg_cycles);
    ("max_wg_cycles", s.Cost.max_wg_cycles);
    ("num_cu", p.Cost.num_cu);
  ]
  @
  if Cost.cache_active s then
    [
      ("cache_hits", s.Cost.cache_hits);
      ("cache_misses", s.Cost.cache_misses);
      ("cache_evictions", s.Cost.cache_evictions);
      ("cache_mem_wait_cycles", s.Cost.cache_mem_wait_cycles);
    ]
  else []

(* ------------------------------------------------------------------ *)
(* Per-kernel profiles                                                 *)
(* ------------------------------------------------------------------ *)

type kernel_profile = {
  kp_name : string;
  kp_launches : int;
  kp_launch_cycles : int;  (** host-side launch overhead *)
  kp_device_cycles : int;  (** device wall time (work-groups spread over CUs) *)
  kp_compute_cycles : int;
  kp_memory_cycles : int;
  kp_barrier_cycles : int;
  kp_global_transactions : int;
  kp_local_transactions : int;
  kp_const_transactions : int;
  kp_work_items : int;
  kp_occupancy : float;
      (** fraction of CU capacity busy while the kernel ran:
          total work-group cycles / (num_cu * device wall cycles) *)
}

let arg (e : event) k =
  match List.assoc_opt k e.ev_args with Some v -> v | None -> 0

(** Aggregate per-kernel profiles from a run's events. Kernel execution
    events (cat ["kernel"]) carry the {!breakdown} payload; launch-
    overhead events (cat ["launch"]) share the kernel's name and
    contribute [kp_launch_cycles]. Order follows first launch. *)
let of_events (evs : event list) : kernel_profile list =
  let tbl : (string, kernel_profile) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let get name =
    match Hashtbl.find_opt tbl name with
    | Some p -> p
    | None ->
      order := name :: !order;
      {
        kp_name = name;
        kp_launches = 0;
        kp_launch_cycles = 0;
        kp_device_cycles = 0;
        kp_compute_cycles = 0;
        kp_memory_cycles = 0;
        kp_barrier_cycles = 0;
        kp_global_transactions = 0;
        kp_local_transactions = 0;
        kp_const_transactions = 0;
        kp_work_items = 0;
        kp_occupancy = 0.;
      }
  in
  (* The occupancy numerator/denominator accumulate separately. *)
  let busy : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let num_cu : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e.ev_cat with
      | "kernel" ->
        let p = get e.ev_name in
        Hashtbl.replace busy e.ev_name
          (Option.value ~default:0 (Hashtbl.find_opt busy e.ev_name)
          + arg e "total_wg_cycles");
        Hashtbl.replace num_cu e.ev_name (arg e "num_cu");
        Hashtbl.replace tbl e.ev_name
          {
            p with
            kp_launches = p.kp_launches + 1;
            kp_device_cycles = p.kp_device_cycles + e.ev_dur;
            kp_compute_cycles = p.kp_compute_cycles + arg e "compute_cycles";
            kp_memory_cycles = p.kp_memory_cycles + arg e "memory_cycles";
            kp_barrier_cycles = p.kp_barrier_cycles + arg e "barrier_cycles";
            kp_global_transactions =
              p.kp_global_transactions + arg e "global_transactions";
            kp_local_transactions =
              p.kp_local_transactions + arg e "local_transactions";
            kp_const_transactions =
              p.kp_const_transactions + arg e "const_transactions";
            kp_work_items = p.kp_work_items + arg e "work_items";
          }
      | "launch" ->
        let p = get e.ev_name in
        Hashtbl.replace tbl e.ev_name
          { p with kp_launch_cycles = p.kp_launch_cycles + e.ev_dur }
      | _ -> ())
    evs;
  List.rev_map
    (fun name ->
      let p = Hashtbl.find tbl name in
      let cu = Option.value ~default:0 (Hashtbl.find_opt num_cu name) in
      let b = Option.value ~default:0 (Hashtbl.find_opt busy name) in
      let occ =
        if cu > 0 && p.kp_device_cycles > 0 then
          min 1.0 (float_of_int b /. float_of_int (cu * p.kp_device_cycles))
        else 0.
      in
      { p with kp_occupancy = occ })
    !order

let pp_table fmt (ps : kernel_profile list) =
  Format.fprintf fmt
    "%-24s %8s %10s %10s %10s %10s %9s %16s %9s %6s@\n"
    "kernel" "launches" "launch" "device" "compute" "memory" "barrier"
    "tx(g/l/c)" "items" "occ";
  List.iter
    (fun p ->
      Format.fprintf fmt
        "%-24s %8d %10d %10d %10d %10d %9d %16s %9d %5.0f%%@\n"
        p.kp_name p.kp_launches p.kp_launch_cycles p.kp_device_cycles
        p.kp_compute_cycles p.kp_memory_cycles p.kp_barrier_cycles
        (Printf.sprintf "%d/%d/%d" p.kp_global_transactions
           p.kp_local_transactions p.kp_const_transactions)
        p.kp_work_items
        (100. *. p.kp_occupancy))
    ps

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)
(* ------------------------------------------------------------------ *)

(* One process, one thread per charge category, so the viewer renders
   host bookkeeping, transfers and device execution as separate rows. *)
let tid_of_cat = function
  | "kernel" -> 3
  | "transfer" -> 2
  | _ -> 1 (* submit / launch / jit: host runtime *)

let thread_names = [ (1, "host runtime"); (2, "transfers"); (3, "device") ]

(** Serialize events as a Chrome-trace JSON document ([traceEvents],
    complete events [ph:"X"], 1 cycle = 1 us) for chrome://tracing or
    Perfetto. Serialization goes through the shared {!Mlir.Json} writer
    so event names with arbitrary bytes stay valid JSON. *)
let to_chrome_json (evs : event list) : string =
  let open Mlir.Json in
  let meta (tid, name) =
    Obj
      [
        ("name", String "thread_name");
        ("ph", String "M");
        ("pid", Int 1);
        ("tid", Int tid);
        ("args", Obj [ ("name", String name) ]);
      ]
  in
  let ev (e : event) =
    Obj
      [
        ("name", String e.ev_name);
        ("cat", String e.ev_cat);
        ("ph", String "X");
        ("ts", Int e.ev_ts);
        ("dur", Int e.ev_dur);
        ("pid", Int 1);
        ("tid", Int (tid_of_cat e.ev_cat));
        ("args", Obj (List.map (fun (k, v) -> (k, Int v)) e.ev_args));
      ]
  in
  to_string
    (Obj
       [
         ("traceEvents", List (List.map meta thread_names @ List.map ev evs));
         ("displayTimeUnit", String "ms");
       ])
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Conversion into the unified telemetry trace                         *)
(* ------------------------------------------------------------------ *)

(** Simulator events as {!Sycl_obs.Trace} spans, shifted by [base]
    microseconds so they sit after the compile-lane spans on the merged
    timeline. Kernel execution goes on the device lane; everything else
    (submit, transfer, jit, launch overhead) is host-runtime work. *)
let trace_spans ?(base = 0) (evs : event list) : Sycl_obs.Trace.span list =
  List.map
    (fun (e : event) ->
      {
        Sycl_obs.Trace.sp_name = e.ev_name;
        sp_cat = e.ev_cat;
        sp_lane =
          (if e.ev_cat = "kernel" then Sycl_obs.Trace.Device
           else Sycl_obs.Trace.Host);
        sp_ts = base + e.ev_ts;
        sp_dur = e.ev_dur;
        sp_args = e.ev_args;
      })
    evs
