(** The GPU performance model (the hardware stand-in — see DESIGN.md).

    Captures exactly the effects the paper's optimizations act on:
    per-sub-group cache-line coalescing with distinct latencies for
    global / work-group-local / constant-cached memory, kernel-launch
    overhead with a per-argument component, host<->device transfer costs,
    and a one-time JIT charge for runtime-compiling configurations.
    Absolute numbers are arbitrary; ratios shape the evaluation. *)

type params = {
  alu_cycles : int;
  fdiv_cycles : int;  (** divide / sqrt / exp class *)
  global_mem_cycles : int;  (** per coalesced transaction *)
  local_mem_cycles : int;
  const_mem_cycles : int;  (** constant-cached global data *)
  cache_line_elems : int;  (** elements per transaction line *)
  subgroup_size : int;
  barrier_cycles : int;
  launch_base_cycles : int;
  launch_per_arg_cycles : int;
  num_cu : int;  (** compute units executing work-groups in parallel *)
  transfer_line_cycles : int;  (** host<->device, per cache line *)
  jit_compile_cycles : int;  (** AdaptiveCpp first-launch JIT *)
  scheduler_cycles : int;  (** per command-group runtime bookkeeping *)
  cache_lines : int;  (** per-core data cache capacity, in lines *)
  cache_ways : int;  (** associativity of the set-associative model *)
  cache_hit_cycles : int;  (** per transaction that hits in the cache *)
}

val default : params

(** Per-core data cache model selection. [Flat] reproduces the seed
    behaviour exactly (every global transaction pays
    [global_mem_cycles], no cache state); [Direct_mapped] and
    [Set_associative] (LRU) simulate a per-work-group cache over the
    coalesced transaction stream — hits pay [cache_hit_cycles], misses
    [global_mem_cycles]. *)
type cache_model = Flat | Direct_mapped | Set_associative

(** Parses ["flat"], ["dm"], ["assoc"] (the [--cache-model] spellings). *)
val model_of_string : string -> cache_model option

val model_to_string : cache_model -> string

(** Statistics for one kernel launch (accumulated across work-groups). *)
type launch_stats = {
  mutable alu_ops : int;
  mutable fdiv_ops : int;
  mutable global_transactions : int;
  mutable local_transactions : int;
  mutable const_transactions : int;
  mutable barriers : int;
  mutable work_groups : int;
  mutable work_items : int;
  mutable max_wg_cycles : int;
  mutable total_wg_cycles : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
  mutable cache_mem_wait_cycles : int;
}

val fresh_launch_stats : unit -> launch_stats

(** [cache_hits + cache_misses > 0]: a non-flat model recorded probes.
    Output surfaces gate their cache columns on this, keeping [Flat]
    output byte-identical to the pre-cache format. *)
val cache_active : launch_stats -> bool

(** Merge [src] into [into]: sums everywhere except [max_wg_cycles]
    (max). Commutative and associative, so the parallel backend's
    per-worker accumulators merge to exactly the sequential totals. *)
val merge_launch_stats : into:launch_stats -> launch_stats -> unit

(** Cycle cost of the [global] coalesced transactions under [model]:
    flat charges every transaction [global_mem_cycles]; the cache models
    charge [hits] at [cache_hit_cycles] and [misses] at
    [global_mem_cycles]. Shared by [wg_cycles] and the attribution
    splitter so per-op memory shares sum exactly to the group total. *)
val global_cycles :
  params -> model:cache_model -> global:int -> hits:int -> misses:int -> int

(** Cycle cost of one work-group's recorded charges: summed ALU/fdiv
    charges amortize over the sub-group width (one integer division per
    group), plus exact per-transaction memory and per-round barrier
    costs. Under a non-flat [?model], the global term is hit/miss
    differentiated ([?hits]/[?misses] must then sum to [global]). The
    single source of truth shared by the simulator's accounting and the
    attribution table's conservation oracle. *)
val wg_cycles :
  params ->
  ?model:cache_model ->
  ?hits:int ->
  ?misses:int ->
  alu:int ->
  fdiv:int ->
  global:int ->
  local:int ->
  const:int ->
  barriers:int ->
  unit ->
  int

(** Device time of a launch: work-groups spread across compute units,
    floored at the slowest work-group. *)
val device_cycles : params -> launch_stats -> int

(** Launch overhead for the arguments the runtime actually passes. *)
val launch_overhead : params -> live_args:int -> int

(** Transfer cost, rounded up to whole cache lines. *)
val transfer_cycles : params -> elems:int -> int

val pp_launch_stats : Format.formatter -> launch_stats -> unit
