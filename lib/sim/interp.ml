(* The GPU device simulator: executes kernel IR over an ND-range with
   correct work-group semantics. Work-items of a work-group run as OCaml 5
   effect-handler fibers; a group barrier suspends the fiber, and the
   scheduler resumes all fibers of the group phase by phase — so the
   cooperative local-memory prefetch produced by loop internalization
   (Section VI-C) executes correctly, and a barrier in a divergent region
   is detected as the deadlock it would be on hardware.

   Costs are accumulated per work-group: ALU cycles per executed op,
   memory transactions per (instruction, occurrence, sub-group) with
   cache-line coalescing, and barrier costs. Private memory is treated as
   registers (no memory cost), matching mem2reg-ed GPU code. *)

open Mlir
module Sycl_types = Sycl_core.Sycl_types
module Sycl_ops = Sycl_core.Sycl_ops

exception Sim_error of string

exception Barrier_divergence

type _ Effect.t += Barrier : unit Effect.t

(* ------------------------------------------------------------------ *)
(* Runtime values                                                      *)
(* ------------------------------------------------------------------ *)

type acc_desc = {
  a_alloc : Memory.allocation;
  a_range : int array;  (* access range *)
  a_mem_range : int array;  (* underlying buffer range *)
  a_offset : int array;
  a_is_float : bool;
}

type rv =
  | I of int
  | F of float
  | Mem of Memory.view
  | Acc of acc_desc
  | Item  (** the item-like argument; queries read the work-item context *)
  | Unit

let as_int = function
  | I i -> i
  | F f -> int_of_float f
  | _ -> raise (Sim_error "expected integer value")

let as_float = function
  | F f -> f
  | I i -> float_of_int i
  | _ -> raise (Sim_error "expected float value")

let as_mem = function Mem v -> v | _ -> raise (Sim_error "expected memref value")
let as_acc = function Acc a -> a | _ -> raise (Sim_error "expected accessor value")

(* ------------------------------------------------------------------ *)
(* Execution contexts                                                  *)
(* ------------------------------------------------------------------ *)

(* Per-work-group, per-op charge record for source attribution: which op
   incurred how many ALU/fdiv executions, raw memory accesses and barrier
   rounds. Transactions are recovered from [mem_table] (whose key already
   carries the op id) at flush time. *)
type op_charge = {
  oc_op : Core.op;
  mutable oc_alu : int;
  mutable oc_fdiv : int;
  mutable oc_accesses : int;  (* raw non-private accesses, pre-coalescing *)
  mutable oc_barriers : int;  (* barrier rounds this op's barrier closed *)
  (* Cache-model probes of this op's global transactions (all 0 under
     the flat model — no probes happen). *)
  mutable oc_hits : int;
  mutable oc_misses : int;
  mutable oc_evictions : int;
  mutable oc_dist_sum : int;  (* summed warm reuse distances *)
  mutable oc_dist_count : int;  (* warm re-accesses *)
}

type wg_ctx = {
  params : Cost.params;
  stats : Cost.launch_stats;
  footprint : Memory.footprint option;
      (* per-group global-write footprint, recorded under --sim-check-races *)
  locals : (int, Memory.allocation) Hashtbl.t;  (* gpu.alloc_local slot *)
  (* (op id, occurrence, subgroup) -> set of (alloc id, line, class) *)
  mem_table : (int * int * int, (int * int * int, unit) Hashtbl.t) Hashtbl.t;
  attribution : Attribution.table option;
      (* source-attribution sink; None skips per-op bookkeeping *)
  op_charges : (int, op_charge) Hashtbl.t;  (* op id -> per-wg charges *)
  cache_model : Cost.cache_model;
  cache : Cache.state option;  (* per-group cache; None under Flat *)
  reuse : Cache.reuse option;  (* per-group reuse-distance tracker *)
  cache_tab : Cache.table option;  (* per-op cache counter sink *)
  mutable cur_barrier : Core.op option;
      (* the barrier op the group is currently suspended at *)
  mutable wg_alu : int;
  mutable wg_fdiv : int;
  mutable wg_barriers : int;
  mutable wg_hits : int;
  mutable wg_misses : int;
  mutable wg_evictions : int;
}

type wi_ctx = {
  wg : wg_ctx;
  gid : int array;
  lid : int array;
  grp : int array;
  global_range : int array;
  local_range : int array;
  group_range : int array;
  subgroup : int;
  env : (int, rv) Hashtbl.t;
  occ : (int, int) Hashtbl.t;
  funcs : (string, Core.op) Hashtbl.t;  (* device functions by symbol *)
}

let lookup ctx (v : Core.value) =
  match Hashtbl.find_opt ctx.env v.Core.vid with
  | Some rv -> rv
  | None -> raise (Sim_error ("use of unbound SSA value in simulator"))

let bind ctx (v : Core.value) rv = Hashtbl.replace ctx.env v.Core.vid rv

(* Every charge names the charging op so attribution can account it to
   the op's source location; the per-wg aggregate counters stay the
   single source of truth for the cost formula. *)
let op_charge (wg : wg_ctx) (op : Core.op) =
  match Hashtbl.find_opt wg.op_charges op.Core.oid with
  | Some c -> c
  | None ->
    let c =
      { oc_op = op; oc_alu = 0; oc_fdiv = 0; oc_accesses = 0; oc_barriers = 0;
        oc_hits = 0; oc_misses = 0; oc_evictions = 0; oc_dist_sum = 0;
        oc_dist_count = 0 }
    in
    Hashtbl.replace wg.op_charges op.Core.oid c;
    c

let alu ctx op =
  ctx.wg.wg_alu <- ctx.wg.wg_alu + 1;
  if Option.is_some ctx.wg.attribution then
    let c = op_charge ctx.wg op in
    c.oc_alu <- c.oc_alu + 1

let fdiv ctx op =
  ctx.wg.wg_fdiv <- ctx.wg.wg_fdiv + 1;
  if Option.is_some ctx.wg.attribution then
    let c = op_charge ctx.wg op in
    c.oc_fdiv <- c.oc_fdiv + 1

(* Latency class: 0 = global, 1 = local, 2 = constant-cached. *)
let latency_class (a : Memory.allocation) =
  match a.Memory.space with
  | Types.Local -> 1
  | Types.Private -> 3 (* never recorded *)
  | Types.Global -> if a.Memory.constant_cached then 2 else 0

let record_access ctx (op : Core.op) (view : Memory.view) (idx : int list) =
  match view.Memory.base.Memory.space with
  | Types.Private -> alu ctx op
  | _ ->
    if Option.is_some ctx.wg.attribution then begin
      let c = op_charge ctx.wg op in
      c.oc_accesses <- c.oc_accesses + 1
    end;
    let lin = Memory.linear_index view idx in
    let line = lin / ctx.wg.params.Cost.cache_line_elems in
    let occ = Option.value ~default:0 (Hashtbl.find_opt ctx.occ op.Core.oid) in
    Hashtbl.replace ctx.occ op.Core.oid (occ + 1);
    let key = (op.Core.oid, occ, ctx.subgroup) in
    let tbl =
      match Hashtbl.find_opt ctx.wg.mem_table key with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.replace ctx.wg.mem_table key t;
        t
    in
    let a = view.Memory.base in
    let cls = latency_class a in
    let tkey = (a.Memory.aid, line, cls) in
    (* Probe the cache exactly once per NEW coalesced global transaction:
       the per-(op, occurrence, sub-group) table only ever grows, and the
       flush counts its entries as global transactions, so
       hits + misses = global_transactions holds by construction.
       Fibers of a group run sequentially in canonical order, so the
       probe sequence is deterministic and domain-count independent. *)
    (match ctx.wg.cache with
    | Some cache when cls = 0 && not (Hashtbl.mem tbl tkey) ->
      let { Cache.o_hit; o_evicted } =
        Cache.access cache ~aid:a.Memory.aid ~line
      in
      if o_hit then ctx.wg.wg_hits <- ctx.wg.wg_hits + 1
      else ctx.wg.wg_misses <- ctx.wg.wg_misses + 1;
      if o_evicted then ctx.wg.wg_evictions <- ctx.wg.wg_evictions + 1;
      let dist =
        match ctx.wg.reuse with
        | Some r ->
          let d = Cache.reuse_access r ~aid:a.Memory.aid ~line in
          Option.iter (fun t -> Cache.observe_distance t d) ctx.wg.cache_tab;
          d
        | None -> None
      in
      if Option.is_some ctx.wg.attribution || Option.is_some ctx.wg.cache_tab
      then begin
        let c = op_charge ctx.wg op in
        if o_hit then c.oc_hits <- c.oc_hits + 1
        else c.oc_misses <- c.oc_misses + 1;
        if o_evicted then c.oc_evictions <- c.oc_evictions + 1;
        match dist with
        | Some d ->
          c.oc_dist_sum <- c.oc_dist_sum + d;
          c.oc_dist_count <- c.oc_dist_count + 1
        | None -> ()
      end
    | _ -> ());
    Hashtbl.replace tbl tkey ()

(* Record a store into the group's write footprint (race detection),
   tagged with the storing op's source location so a race report can
   name the culprit store. Only global-space writes are kept — see
   {!Memory.footprint_write}. *)
let record_store ctx (op : Core.op) (view : Memory.view) (idx : int list) =
  match ctx.wg.footprint with
  | None -> ()
  | Some fp ->
    Memory.footprint_write ~loc:op.Core.loc fp view (Memory.linear_index view idx)

(* ------------------------------------------------------------------ *)
(* SYCL struct storage helpers                                         *)
(* ------------------------------------------------------------------ *)

let alloc_size_of_type (ty : Types.t) =
  match ty with
  | Types.Memref { shape; element; _ } ->
    let prod =
      List.fold_left
        (fun acc d -> acc * match d with Some n -> n | None -> 1)
        1 shape
    in
    let cells = Sycl_types.flat_cells element in
    let scalar_dims =
      List.map (fun d -> match d with Some n -> n | None -> 1) shape
    in
    (prod * cells, if cells = 1 then Array.of_list scalar_dims else [| prod * cells |])
  | _ -> raise (Sim_error "alloca of non-memref type")

let element_is_float (ty : Types.t) =
  match ty with
  | Types.Memref { element; _ } -> Types.is_float element
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Op evaluation                                                       *)
(* ------------------------------------------------------------------ *)

let getter_dim ctx (op : Core.op) =
  if Core.num_operands op >= 2 then as_int (lookup ctx (Core.operand op 1)) else 0

let cell_of_rv = function
  | F f -> Memory.F f
  | I i -> Memory.I i
  | _ -> raise (Sim_error "cannot store non-scalar value")

let rv_of_cell ~is_float (c : Memory.cell) =
  match c with
  | Memory.F f -> if is_float then F f else I (int_of_float f)
  | Memory.I i -> if is_float then F (float_of_int i) else I i

let subscript_view ctx (op : Core.op) =
  let acc = as_acc (lookup ctx (Core.operand op 0)) in
  let ids =
    match List.tl (Core.operands op) with
    | [ single ] -> (
      match lookup ctx single with
      | I i -> [ i ]
      | Mem v ->
        (* An id struct in private memory: one cell per dimension. *)
        List.init (Array.length acc.a_range) (fun d ->
            Memory.cell_to_int (Memory.read v [ d ]))
      | _ -> raise (Sim_error "bad subscript index"))
    | many ->
      (* Direct form: one index operand per dimension. *)
      List.map (fun v -> as_int (lookup ctx v)) many
  in
  (* Linearize against the *memory* range with the accessor offset. *)
  let n = Array.length acc.a_mem_range in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * acc.a_mem_range.(i + 1)
  done;
  let lin = ref 0 in
  List.iteri
    (fun d i ->
      let off = if d < Array.length acc.a_offset then acc.a_offset.(d) else 0 in
      lin := !lin + ((i + off) * strides.(d)))
    ids;
  {
    Memory.base = acc.a_alloc;
    Memory.offset = !lin;
    Memory.dims = [| 1 |];
    Memory.strides = [| 1 |];
  }

let rec exec_block ctx (b : Core.block) : rv list =
  let rec go = function
    | [] -> []
    | op :: rest -> (
      match exec_op ctx op with
      | `Next -> go rest
      | `Yield vs -> vs)
  in
  go b.Core.body

and exec_region ctx (r : Core.region) : rv list =
  exec_block ctx (Core.entry_block r)

and exec_op ctx (op : Core.op) : [ `Next | `Yield of rv list ] =
  let operand i = lookup ctx (Core.operand op i) in
  let bind_result i rv = bind ctx (Core.result op i) rv in
  let int2 f =
    alu ctx op;
    bind_result 0 (I (f (as_int (operand 0)) (as_int (operand 1))));
    `Next
  in
  let float2 f =
    alu ctx op;
    bind_result 0 (F (f (as_float (operand 0)) (as_float (operand 1))));
    `Next
  in
  match op.Core.name with
  | "arith.constant" -> (
    match Core.attr op "value" with
    | Some (Attr.Int i) -> bind_result 0 (I i); `Next
    | Some (Attr.Float f) -> bind_result 0 (F f); `Next
    | Some (Attr.Bool b) -> bind_result 0 (I (Bool.to_int b)); `Next
    | _ -> raise (Sim_error "arith.constant without numeric value"))
  | "arith.addi" -> int2 ( + )
  | "arith.subi" -> int2 ( - )
  | "arith.muli" -> int2 ( * )
  | "arith.divsi" -> fdiv ctx op; bind_result 0 (I (as_int (operand 0) / as_int (operand 1))); `Next
  | "arith.remsi" -> fdiv ctx op; bind_result 0 (I (as_int (operand 0) mod as_int (operand 1))); `Next
  | "arith.andi" -> int2 ( land )
  | "arith.ori" -> int2 ( lor )
  | "arith.xori" -> int2 ( lxor )
  | "arith.minsi" -> int2 min
  | "arith.maxsi" -> int2 max
  | "arith.addf" -> float2 ( +. )
  | "arith.subf" -> float2 ( -. )
  | "arith.mulf" -> float2 ( *. )
  | "arith.divf" -> fdiv ctx op; bind_result 0 (F (as_float (operand 0) /. as_float (operand 1))); `Next
  | "arith.minimumf" -> float2 Float.min
  | "arith.maximumf" -> float2 Float.max
  | "arith.negf" ->
    alu ctx op;
    bind_result 0 (F (-.as_float (operand 0)));
    `Next
  | "arith.cmpi" ->
    alu ctx op;
    let p =
      match Dialects.Arith.icmp_predicate op with
      | Some p -> p
      | None -> raise (Sim_error "cmpi without predicate")
    in
    bind_result 0
      (I (Bool.to_int (Dialects.Arith.eval_icmp p (as_int (operand 0)) (as_int (operand 1)))));
    `Next
  | "arith.cmpf" ->
    alu ctx op;
    let p =
      match Option.bind (Core.attr_string op "predicate") Dialects.Arith.fcmp_pred_of_string with
      | Some p -> p
      | None -> raise (Sim_error "cmpf without predicate")
    in
    bind_result 0
      (I (Bool.to_int (Dialects.Arith.eval_fcmp p (as_float (operand 0)) (as_float (operand 1)))));
    `Next
  | "arith.select" ->
    alu ctx op;
    bind_result 0 (if as_int (operand 0) <> 0 then operand 1 else operand 2);
    `Next
  | "arith.index_cast" ->
    bind_result 0 (I (as_int (operand 0)));
    `Next
  | "arith.sitofp" ->
    alu ctx op;
    bind_result 0 (F (float_of_int (as_int (operand 0))));
    `Next
  | "arith.fptosi" ->
    alu ctx op;
    bind_result 0 (I (int_of_float (as_float (operand 0))));
    `Next
  | "math.sqrt" -> fdiv ctx op; bind_result 0 (F (Float.sqrt (as_float (operand 0)))); `Next
  | "math.exp" -> fdiv ctx op; bind_result 0 (F (Float.exp (as_float (operand 0)))); `Next
  | "math.absf" -> alu ctx op; bind_result 0 (F (Float.abs (as_float (operand 0)))); `Next
  | "memref.alloca" | "memref.alloc" ->
    let size, dims = alloc_size_of_type (Core.result op 0).Core.vty in
    let space =
      match (Core.result op 0).Core.vty with
      | Types.Memref { space; _ } -> space
      | _ -> Types.Private
    in
    let a = Memory.alloc ~label:"device-alloc" ~space ~size () in
    bind_result 0 (Mem (Memory.full_view ~dims a));
    `Next
  | "gpu.alloc_local" -> (
    let slot = Option.value ~default:0 (Core.attr_int op "slot") in
    let size, dims = alloc_size_of_type (Core.result op 0).Core.vty in
    match Hashtbl.find_opt ctx.wg.locals slot with
    | Some a -> bind_result 0 (Mem (Memory.full_view ~dims a)); `Next
    | None ->
      let a = Memory.alloc ~label:"wg-local" ~space:Types.Local ~size () in
      Hashtbl.replace ctx.wg.locals slot a;
      bind_result 0 (Mem (Memory.full_view ~dims a));
      `Next)
  | "memref.load" ->
    let view = as_mem (operand 0) in
    let idx = List.map (fun v -> as_int (lookup ctx v)) (List.tl (Core.operands op)) in
    record_access ctx op view idx;
    bind_result 0
      (rv_of_cell ~is_float:(element_is_float (Core.operand op 0).Core.vty)
         (Memory.read view idx));
    `Next
  | "memref.store" ->
    let value = operand 0 in
    let view = as_mem (operand 1) in
    let idx =
      List.map (fun v -> as_int (lookup ctx v))
        (List.filteri (fun i _ -> i >= 2) (Core.operands op))
    in
    record_access ctx op view idx;
    record_store ctx op view idx;
    Memory.write view idx (cell_of_rv value);
    `Next
  | "memref.dim" ->
    let view = as_mem (operand 0) in
    let d = as_int (operand 1) in
    bind_result 0 (I view.Memory.dims.(d));
    `Next
  | "memref.dealloc" -> `Next
  | "affine.apply" ->
    alu ctx op;
    let m = Dialects.Affine_ops.access_map op in
    let dims = Array.of_list (List.map (fun v -> as_int (lookup ctx v)) (Core.operands op)) in
    (match Affine_expr.Map.eval m ~dims ~syms:[||] with
    | [ r ] -> bind_result 0 (I r); `Next
    | _ -> raise (Sim_error "affine.apply with multiple results"))
  | "affine.load" ->
    let view = as_mem (operand 0) in
    let m = Dialects.Affine_ops.access_map op in
    let dims =
      Array.of_list
        (List.map (fun v -> as_int (lookup ctx v))
           (List.filteri (fun i _ -> i >= 1) (Core.operands op)))
    in
    let idx = Affine_expr.Map.eval m ~dims ~syms:[||] in
    record_access ctx op view idx;
    bind_result 0
      (rv_of_cell ~is_float:(element_is_float (Core.operand op 0).Core.vty)
         (Memory.read view idx));
    `Next
  | "affine.store" ->
    let value = operand 0 in
    let view = as_mem (operand 1) in
    let m = Dialects.Affine_ops.access_map op in
    let dims =
      Array.of_list
        (List.map (fun v -> as_int (lookup ctx v))
           (List.filteri (fun i _ -> i >= 2) (Core.operands op)))
    in
    let idx = Affine_expr.Map.eval m ~dims ~syms:[||] in
    record_access ctx op view idx;
    record_store ctx op view idx;
    Memory.write view idx (cell_of_rv value);
    `Next
  | "scf.for" ->
    let lb = as_int (operand 0) and ub = as_int (operand 1) and step = as_int (operand 2) in
    if step <= 0 then raise (Sim_error "scf.for with non-positive step");
    let body = Dialects.Scf.for_body op in
    let iv = Core.block_arg body 0 in
    let iter_args = Dialects.Scf.for_iter_args op in
    let inits = List.map (fun v -> lookup ctx v) (Dialects.Scf.for_iter_inits op) in
    let rec iterate i acc =
      if i >= ub then acc
      else begin
        alu ctx op;
        bind ctx iv (I i);
        List.iter2 (fun a v -> bind ctx a v) iter_args acc;
        let yielded = exec_block ctx body in
        iterate (i + step) yielded
      end
    in
    let final = iterate lb inits in
    List.iteri (fun i rv -> bind_result i rv) final;
    `Next
  | "affine.for" ->
    let eval_bound map operands =
      let dims =
        Array.of_list (List.map (fun v -> as_int (lookup ctx v)) operands)
      in
      match Affine_expr.Map.eval map ~dims ~syms:[||] with
      | [ r ] -> r
      | _ -> raise (Sim_error "affine.for bound with multiple results")
    in
    let lb = eval_bound (Dialects.Affine_ops.for_lb_map op) (Dialects.Affine_ops.for_lb_operands op) in
    let ub = eval_bound (Dialects.Affine_ops.for_ub_map op) (Dialects.Affine_ops.for_ub_operands op) in
    let step = Dialects.Affine_ops.for_step op in
    let body = Dialects.Affine_ops.for_body op in
    let iv = Core.block_arg body 0 in
    let iter_args = Dialects.Affine_ops.for_iter_args op in
    let inits = List.map (fun v -> lookup ctx v) (Dialects.Affine_ops.for_iter_inits op) in
    let rec iterate i acc =
      if i >= ub then acc
      else begin
        alu ctx op;
        bind ctx iv (I i);
        List.iter2 (fun a v -> bind ctx a v) iter_args acc;
        let yielded = exec_block ctx body in
        iterate (i + step) yielded
      end
    in
    let final = iterate lb inits in
    List.iteri (fun i rv -> bind_result i rv) final;
    `Next
  | "scf.if" ->
    alu ctx op;
    let c = as_int (operand 0) <> 0 in
    let results =
      if c then exec_region ctx op.Core.regions.(0)
      else if Core.num_regions op > 1 then exec_region ctx op.Core.regions.(1)
      else []
    in
    List.iteri (fun i rv -> bind_result i rv) results;
    `Next
  | "scf.yield" | "affine.yield" ->
    `Yield (List.map (fun v -> lookup ctx v) (Core.operands op))
  | "func.return" -> `Yield (List.map (fun v -> lookup ctx v) (Core.operands op))
  | "func.call" -> (
    match Core.attr_symbol op "callee" with
    | Some callee -> (
      match Hashtbl.find_opt ctx.funcs callee with
      | Some f ->
        let body = Core.func_body f in
        List.iteri
          (fun i a -> bind ctx a (lookup ctx (Core.operand op i)))
          (Core.block_args body);
        let results = exec_block ctx body in
        List.iteri (fun i rv -> bind_result i rv) results;
        `Next
      | None -> raise (Sim_error ("call to unknown device function " ^ callee)))
    | None -> raise (Sim_error "call without callee"))
  | "gpu.barrier" | "sycl.group_barrier" ->
    (* Remember which barrier op the group converges at, so the round
       charged by the scheduler can be attributed to it. Fibers of a
       group run sequentially, so this is deterministic. *)
    ctx.wg.cur_barrier <- Some op;
    Effect.perform Barrier;
    `Next
  (* --- SYCL getters --- *)
  | "sycl.item.get_id" | "sycl.nd_item.get_global_id" ->
    alu ctx op;
    bind_result 0 (I ctx.gid.(getter_dim ctx op));
    `Next
  | "sycl.nd_item.get_local_id" ->
    alu ctx op;
    bind_result 0 (I ctx.lid.(getter_dim ctx op));
    `Next
  | "sycl.nd_item.get_group_id" ->
    alu ctx op;
    bind_result 0 (I ctx.grp.(getter_dim ctx op));
    `Next
  | "sycl.item.get_range" | "sycl.nd_item.get_global_range" ->
    alu ctx op;
    bind_result 0 (I ctx.global_range.(getter_dim ctx op));
    `Next
  | "sycl.nd_item.get_local_range" ->
    alu ctx op;
    bind_result 0 (I ctx.local_range.(getter_dim ctx op));
    `Next
  | "sycl.item.get_linear_id" ->
    alu ctx op;
    let lin = ref 0 in
    Array.iteri (fun d g -> lin := (!lin * ctx.global_range.(d)) + g) ctx.gid;
    bind_result 0 (I !lin);
    `Next
  | "sycl.id.get" | "sycl.range.get" ->
    alu ctx op;
    let v = as_mem (operand 0) in
    bind_result 0 (I (Memory.cell_to_int (Memory.read v [ getter_dim ctx op ])));
    `Next
  | "sycl.constructor" ->
    let out = as_mem (operand 0) in
    List.iteri
      (fun i v ->
        alu ctx op;
        Memory.write out [ i ] (Memory.I (as_int (lookup ctx v))))
      (Sycl_ops.constructor_args op);
    `Next
  | "sycl.accessor.subscript" ->
    alu ctx op;
    bind_result 0 (Mem (subscript_view ctx op));
    `Next
  | "sycl.accessor.get_range" ->
    alu ctx op;
    bind_result 0 (I (as_acc (operand 0)).a_range.(getter_dim ctx op));
    `Next
  | "sycl.accessor.get_mem_range" ->
    alu ctx op;
    bind_result 0 (I (as_acc (operand 0)).a_mem_range.(getter_dim ctx op));
    `Next
  | "sycl.accessor.get_offset" ->
    alu ctx op;
    bind_result 0 (I (as_acc (operand 0)).a_offset.(getter_dim ctx op));
    `Next
  | "sycl.accessor.distinct" ->
    alu ctx op;
    let a = as_acc (operand 0) and b = as_acc (operand 1) in
    bind_result 0 (I (Bool.to_int (a.a_alloc.Memory.aid <> b.a_alloc.Memory.aid)));
    `Next
  | name -> raise (Sim_error ("device simulator: unsupported op " ^ name))

(* ------------------------------------------------------------------ *)
(* Work-group and launch scheduling                                    *)
(* ------------------------------------------------------------------ *)

type fiber_status =
  | Fiber_done
  | Fiber_at_barrier of (unit, fiber_status) Effect.Deep.continuation

let fiber_handler : (unit, fiber_status) Effect.Deep.handler =
  {
    Effect.Deep.retc = (fun () -> Fiber_done);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Barrier ->
          Some
            (fun (k : (a, fiber_status) Effect.Deep.continuation) ->
              Fiber_at_barrier k)
        | _ -> None);
  }

let run_workgroup (wg : wg_ctx) (thunks : (unit -> unit) list) =
  let statuses =
    List.map (fun t -> Effect.Deep.match_with t () fiber_handler) thunks
  in
  let rec rounds statuses =
    let done_count = List.length (List.filter (fun s -> s = Fiber_done) statuses) in
    if done_count = List.length statuses then ()
    else if done_count > 0 then raise Barrier_divergence
    else begin
      wg.wg_barriers <- wg.wg_barriers + 1;
      (match (wg.cur_barrier, wg.attribution) with
      | Some op, Some _ ->
        let c = op_charge wg op in
        c.oc_barriers <- c.oc_barriers + 1
      | _ -> ());
      let next =
        List.map
          (fun s ->
            match s with
            | Fiber_at_barrier k -> Effect.Deep.continue k ()
            | Fiber_done -> Fiber_done)
          statuses
      in
      rounds next
    end
  in
  rounds statuses

(* Distribute one work-group's charges over its charging ops into the
   attribution table. Memory transactions and barrier rounds carry exact
   per-op cycle costs; the compute quotient
   [(alu*alu_cycles + fdiv*fdiv_cycles) / subgroup_size] is divided once
   per group, so per-op shares use largest-remainder apportionment in
   canonical op (creation) order — the shares then sum exactly to the
   group's compute cycles, which makes the attribution total equal
   [total_wg_cycles] and keeps the result independent of domain
   chunking (everything here is per-group state). *)
let attribute_wg (wg : wg_ctx) (tab : Attribution.table) =
  let p = wg.params in
  (* Per-op transaction counts by class, recovered from the coalescing
     table (its key already names the op). *)
  let mem : (int, int array) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (oid, _, _) tbl ->
      let counts =
        match Hashtbl.find_opt mem oid with
        | Some a -> a
        | None ->
          let a = [| 0; 0; 0 |] in
          Hashtbl.replace mem oid a;
          a
      in
      Hashtbl.iter
        (fun (_, _, cls) () ->
          let i = if cls = 0 then 0 else if cls = 1 then 1 else 2 in
          counts.(i) <- counts.(i) + 1)
        tbl)
    wg.mem_table;
  let charges =
    Hashtbl.fold (fun _ c acc -> c :: acc) wg.op_charges []
    |> List.sort (fun a b -> compare a.oc_op.Core.oid b.oc_op.Core.oid)
  in
  let sgs = max 1 p.Cost.subgroup_size in
  let weight c = (c.oc_alu * p.Cost.alu_cycles) + (c.oc_fdiv * p.Cost.fdiv_cycles) in
  let total_weight = List.fold_left (fun acc c -> acc + weight c) 0 charges in
  let compute_cycles = total_weight / sgs in
  let base_sum = List.fold_left (fun acc c -> acc + (weight c / sgs)) 0 charges in
  let leftover = compute_cycles - base_sum in
  (* The ops receiving one extra cycle each: largest remainder first,
     ties by canonical op order. *)
  let extra : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.map (fun c -> (weight c mod sgs, c.oc_op.Core.oid)) charges
  |> List.filter (fun (r, _) -> r > 0)
  |> List.sort (fun (ra, oa) (rb, ob) -> compare (-ra, oa) (-rb, ob))
  |> List.iteri (fun i (_, oid) -> if i < leftover then Hashtbl.replace extra oid ());
  List.iter
    (fun c ->
      let oid = c.oc_op.Core.oid in
      let m = Option.value ~default:[| 0; 0; 0 |] (Hashtbl.find_opt mem oid) in
      (* The op's global term uses the same hit/miss-differentiated
         formula as the group total (per-op hits + misses = per-op
         global transactions, exactly), so per-row cycles still sum to
         [total_wg_cycles] with no epsilon under any cache model. *)
      let mem_cycles =
        Cost.global_cycles p ~model:wg.cache_model ~global:m.(0)
          ~hits:c.oc_hits ~misses:c.oc_misses
        + (m.(1) * p.Cost.local_mem_cycles)
        + (m.(2) * p.Cost.const_mem_cycles)
      in
      let compute_share =
        (weight c / sgs) + if Hashtbl.mem extra oid then 1 else 0
      in
      let cycles =
        compute_share + mem_cycles + (c.oc_barriers * p.Cost.barrier_cycles)
      in
      let row =
        Attribution.row tab ~op_name:c.oc_op.Core.name ~loc:c.oc_op.Core.loc
      in
      row.Attribution.c_alu <- row.Attribution.c_alu + c.oc_alu;
      row.Attribution.c_fdiv <- row.Attribution.c_fdiv + c.oc_fdiv;
      row.Attribution.c_global <- row.Attribution.c_global + m.(0);
      row.Attribution.c_local <- row.Attribution.c_local + m.(1);
      row.Attribution.c_const <- row.Attribution.c_const + m.(2);
      row.Attribution.c_accesses <- row.Attribution.c_accesses + c.oc_accesses;
      row.Attribution.c_barriers <- row.Attribution.c_barriers + c.oc_barriers;
      row.Attribution.c_cycles <- row.Attribution.c_cycles + cycles;
      row.Attribution.c_mem_cycles <- row.Attribution.c_mem_cycles + mem_cycles;
      row.Attribution.c_hits <- row.Attribution.c_hits + c.oc_hits;
      row.Attribution.c_misses <- row.Attribution.c_misses + c.oc_misses)
    charges

(* Flush one work-group's per-op cache probes into the cache table (rows
   keyed like attribution; the launch-global reuse histogram was already
   fed at probe time). Canonical op order for determinism. *)
let cache_attribute_wg (wg : wg_ctx) (tab : Cache.table) =
  Hashtbl.fold (fun _ c acc -> c :: acc) wg.op_charges []
  |> List.sort (fun a b -> compare a.oc_op.Core.oid b.oc_op.Core.oid)
  |> List.iter (fun c ->
         if c.oc_hits + c.oc_misses > 0 then begin
           let r =
             Cache.row tab ~op_name:c.oc_op.Core.name
               ~loc:(Loc.to_string c.oc_op.Core.loc)
           in
           r.Cache.r_hits <- r.Cache.r_hits + c.oc_hits;
           r.Cache.r_misses <- r.Cache.r_misses + c.oc_misses;
           r.Cache.r_evictions <- r.Cache.r_evictions + c.oc_evictions;
           r.Cache.r_dist_sum <- r.Cache.r_dist_sum + c.oc_dist_sum;
           r.Cache.r_dist_count <- r.Cache.r_dist_count + c.oc_dist_count
         end)

(** Flush a work-group's bookkeeping into the launch statistics. *)
let flush_wg (wg : wg_ctx) (n_items : int) =
  let s = wg.stats in
  let p = wg.params in
  let g = ref 0 and l = ref 0 and c = ref 0 in
  Hashtbl.iter
    (fun _ tbl ->
      Hashtbl.iter
        (fun (_, _, cls) () ->
          match cls with 0 -> incr g | 1 -> incr l | _ -> incr c)
        tbl)
    wg.mem_table;
  s.Cost.global_transactions <- s.Cost.global_transactions + !g;
  s.Cost.local_transactions <- s.Cost.local_transactions + !l;
  s.Cost.const_transactions <- s.Cost.const_transactions + !c;
  s.Cost.alu_ops <- s.Cost.alu_ops + wg.wg_alu;
  s.Cost.fdiv_ops <- s.Cost.fdiv_ops + wg.wg_fdiv;
  s.Cost.barriers <- s.Cost.barriers + wg.wg_barriers;
  s.Cost.work_groups <- s.Cost.work_groups + 1;
  s.Cost.work_items <- s.Cost.work_items + n_items;
  s.Cost.cache_hits <- s.Cost.cache_hits + wg.wg_hits;
  s.Cost.cache_misses <- s.Cost.cache_misses + wg.wg_misses;
  s.Cost.cache_evictions <- s.Cost.cache_evictions + wg.wg_evictions;
  s.Cost.cache_mem_wait_cycles <-
    s.Cost.cache_mem_wait_cycles + (wg.wg_misses * p.Cost.global_mem_cycles);
  let wg_cycles =
    Cost.wg_cycles p ~model:wg.cache_model ~hits:wg.wg_hits
      ~misses:wg.wg_misses ~alu:wg.wg_alu ~fdiv:wg.wg_fdiv ~global:!g ~local:!l
      ~const:!c ~barriers:wg.wg_barriers ()
  in
  s.Cost.total_wg_cycles <- s.Cost.total_wg_cycles + wg_cycles;
  if wg_cycles > s.Cost.max_wg_cycles then s.Cost.max_wg_cycles <- wg_cycles;
  Option.iter (attribute_wg wg) wg.attribution;
  Option.iter (cache_attribute_wg wg) wg.cache_tab

(* ------------------------------------------------------------------ *)
(* Cross-group race detection                                          *)
(* ------------------------------------------------------------------ *)

type race = {
  r_label : string;
  r_aid : int;
  r_cell : int;
  r_group_a : int;
  r_group_b : int;
  r_loc : Loc.t;  (* source location of a store that wrote the cell *)
}

exception Race_detected of race list

let describe_race (r : race) =
  Printf.sprintf "work-groups %d and %d both write %s[%d] (allocation %d)%s"
    r.r_group_a r.r_group_b
    (if r.r_label = "" then "?" else r.r_label)
    r.r_cell r.r_aid
    (if Loc.is_known r.r_loc then " at " ^ Loc.describe r.r_loc else "")

(* Intersect per-group footprints in canonical group order: the first
   writer of each (allocation, cell) is remembered; any later writer is
   a violation of SYCL's inter-group independence. Footprint cells are
   sorted and groups are walked in order, so the report is deterministic
   whatever the execution schedule was. *)
let detect_races (fps : Memory.footprint array) : race list =
  let first_writer : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let races = ref [] in
  Array.iteri
    (fun g fp ->
      List.iter
        (fun ((aid, cell) as key) ->
          match Hashtbl.find_opt first_writer key with
          | None -> Hashtbl.replace first_writer key g
          | Some g0 ->
            (* Prefer the later writer's recorded store location; fall
               back to the first writer's footprint. *)
            let loc =
              let l = Memory.footprint_loc fp key in
              if Loc.is_known l then l
              else Memory.footprint_loc fps.(g0) key
            in
            races :=
              { r_label = Memory.footprint_label fp aid; r_aid = aid;
                r_cell = cell; r_group_a = g0; r_group_b = g; r_loc = loc }
              :: !races)
        (Memory.footprint_cells fp))
    fps;
  List.rev !races

(* ------------------------------------------------------------------ *)
(* Launch                                                              *)
(* ------------------------------------------------------------------ *)

(* Process-wide defaults behind the --sim-domains / --sim-check-races
   CLI flags, so entry points configure the backend once instead of
   threading parameters through every call site. *)
let domains_default =
  (* SYCL_SIM_DOMAINS overrides the recommended count so a whole test or
     CI run can be forced onto the parallel backend without plumbing a
     flag through every entry point. *)
  let initial =
    match Option.bind (Sys.getenv_opt "SYCL_SIM_DOMAINS") int_of_string_opt with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ()
  in
  Atomic.make initial
let set_default_domains n = Atomic.set domains_default (max 1 n)
let default_domain_count () = Atomic.get domains_default
let check_races_default = Atomic.make false
let set_default_check_races b = Atomic.set check_races_default b
let default_check_races () = Atomic.get check_races_default

(* Process-wide default behind --cache-model. Flat keeps every output
   surface byte-identical to the pre-cache behaviour. *)
let cache_model_default = Atomic.make Cost.Flat
let set_default_cache_model m = Atomic.set cache_model_default m
let default_cache_model () = Atomic.get cache_model_default

(** Launch [kernel] over [global]/[wg_size]. [args.(i)] binds kernel
    argument i; the item-like argument must be bound to [Item]. Returns
    the accumulated launch statistics. When [metrics] is given, device
    execution counters (work-groups, work-items, barriers) are recorded
    into it through per-domain shards merged in canonical chunk order,
    so the registry contents are independent of the domain count. When
    [attribution] is given, every charge is additionally accounted to
    the charging op's source location into that table — through
    worker-private shards merged in the same canonical chunk order, so
    the table is byte-identical whatever the domain count. *)
let launch ?(params = Cost.default) ?domains ?check_races ?metrics ?attribution
    ?cache_model ?cache ~(module_op : Core.op) ~(kernel : Core.op)
    ~(args : rv array) ~(global : int list) ~(wg_size : int list) () :
    Cost.launch_stats =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Atomic.get domains_default
  in
  let check_races =
    match check_races with
    | Some b -> b
    | None -> Atomic.get check_races_default
  in
  let cache_model =
    match cache_model with
    | Some m -> m
    | None -> Atomic.get cache_model_default
  in
  let stats = Cost.fresh_launch_stats () in
  let global = Array.of_list global and wg_size = Array.of_list wg_size in
  let nd = Array.length global in
  Array.iteri
    (fun d g ->
      if wg_size.(d) <= 0 || g mod wg_size.(d) <> 0 then
        raise
          (Sim_error
             (Printf.sprintf
                "global range %d not divisible by work-group size %d" g
                wg_size.(d))))
    global;
  let group_range = Array.init nd (fun d -> global.(d) / wg_size.(d)) in
  let funcs = Hashtbl.create 8 in
  List.iter
    (fun f -> Hashtbl.replace funcs (Core.func_sym f) f)
    (Core.funcs module_op);
  let body = Core.func_body kernel in
  let params_list = Core.block_args body in
  (* Iterate over all work-groups. *)
  let n_groups = Array.fold_left ( * ) 1 group_range in
  let items_per_group = Array.fold_left ( * ) 1 wg_size in
  let unflatten range lin =
    let idx = Array.make nd 0 in
    let rest = ref lin in
    for d = nd - 1 downto 0 do
      idx.(d) <- !rest mod range.(d);
      rest := !rest / range.(d)
    done;
    idx
  in
  let footprints =
    if check_races then
      Some (Array.init n_groups (fun _ -> Memory.footprint ()))
    else None
  in
  (* Execute one work-group, accumulating into [into] (the launch stats
     in the sequential backend, a worker-private record in the parallel
     one — group results are independent, so where they accumulate only
     affects scheduling, never the merged totals). *)
  let run_group (into : Cost.launch_stats) (atab : Attribution.table option)
      (ctab : Cache.table option) (g : int) =
    let grp = unflatten group_range g in
    let wg =
      {
        params;
        stats = into;
        footprint =
          (match footprints with Some a -> Some a.(g) | None -> None);
        locals = Hashtbl.create 4;
        mem_table = Hashtbl.create 256;
        attribution = atab;
        op_charges = Hashtbl.create 64;
        cache_model;
        (* Fresh per-group cache + reuse state: groups own their core,
           so no cross-group (and thus no cross-domain) coupling. *)
        cache = Cache.create params cache_model;
        reuse =
          (match (ctab, cache_model) with
          | Some _, (Cost.Direct_mapped | Cost.Set_associative) ->
            Some (Cache.reuse_create ())
          | _ -> None);
        cache_tab = ctab;
        cur_barrier = None;
        wg_alu = 0;
        wg_fdiv = 0;
        wg_barriers = 0;
        wg_hits = 0;
        wg_misses = 0;
        wg_evictions = 0;
      }
    in
    let thunks =
      List.init items_per_group (fun li ->
          let lid = unflatten wg_size li in
          let gid = Array.init nd (fun d -> (grp.(d) * wg_size.(d)) + lid.(d)) in
          let lin_lid =
            let l = ref 0 in
            Array.iteri (fun d x -> l := (!l * wg_size.(d)) + x) lid;
            !l
          in
          let ctx =
            {
              wg;
              gid;
              lid;
              grp;
              global_range = global;
              local_range = wg_size;
              group_range;
              subgroup = lin_lid / params.Cost.subgroup_size;
              env = Hashtbl.create 64;
              occ = Hashtbl.create 16;
              funcs;
            }
          in
          fun () ->
            List.iteri
              (fun i p ->
                if i < Array.length args then bind ctx p args.(i)
                else raise (Sim_error "missing kernel argument"))
              params_list;
            ignore (exec_block ctx body))
    in
    run_workgroup wg thunks;
    flush_wg wg items_per_group
  in
  let d = min domains n_groups in
  (* One metrics shard per worker (shard 0 doubles as the sequential
     backend's); workers write only their own shard, and the owner folds
     them in index order after joining. *)
  let sharded =
    Option.map
      (fun _ -> Sycl_obs.Metrics.Sharded.create (max 1 d))
      metrics
  in
  let record_shard (r : Sycl_obs.Metrics.registry) (s : Cost.launch_stats) =
    Sycl_obs.Metrics.incr r ~by:s.Cost.work_groups "sim.work_groups";
    Sycl_obs.Metrics.incr r ~by:s.Cost.work_items "sim.work_items";
    Sycl_obs.Metrics.incr r ~by:s.Cost.barriers "sim.barriers"
  in
  if d <= 1 then begin
    (* Sequential backend: groups in canonical order into the shared
       stats record (and attribution / cache tables). *)
    for g = 0 to n_groups - 1 do
      run_group stats attribution cache g
    done;
    match sharded with
    | Some sh -> record_shard (Sycl_obs.Metrics.Sharded.shard sh 0) stats
    | None -> ()
  end
  else begin
    (* Parallel backend: balanced contiguous chunks of the canonical
       group order, one worker domain per chunk. Each worker accumulates
       a private launch_stats and stops its chunk at the first failing
       group, exactly as the sequential loop stops the launch. Merging
       worker stats in chunk order and re-raising the lowest failing
       group's exception makes stats and error identity independent of
       the interleaving. *)
    let q = n_groups / d and r = n_groups mod d in
    let chunk i =
      let start = (i * q) + min i r in
      (start, start + q + if i < r then 1 else 0)
    in
    let run_chunk i =
      let s = Cost.fresh_launch_stats () in
      (* Worker-private attribution and cache shards, merged in chunk
         order below. *)
      let at = Option.map (fun _ -> Attribution.create ()) attribution in
      let ct = Option.map (fun _ -> Cache.create_table ()) cache in
      let failure = ref None in
      let start, stop = chunk i in
      let g = ref start in
      (try
         while !g < stop do
           run_group s at ct !g;
           incr g
         done
       with e -> failure := Some (!g, e));
      (* Worker-private shard: recorded inside the worker domain, no
         contention with the other chunks. *)
      (match sharded with
      | Some sh -> record_shard (Sycl_obs.Metrics.Sharded.shard sh i) s
      | None -> ());
      (s, at, ct, !failure)
    in
    let workers =
      Array.init (d - 1) (fun i -> Domain.spawn (fun () -> run_chunk (i + 1)))
    in
    let first = run_chunk 0 in
    let results = Array.append [| first |] (Array.map Domain.join workers) in
    Array.iter (fun (s, _, _, _) -> Cost.merge_launch_stats ~into:stats s) results;
    (match attribution with
    | Some into ->
      Array.iter
        (fun (_, at, _, _) ->
          match at with Some src -> Attribution.merge ~into src | None -> ())
        results
    | None -> ());
    (match cache with
    | Some into ->
      Array.iter
        (fun (_, _, ct, _) ->
          match ct with Some src -> Cache.merge ~into src | None -> ())
        results
    | None -> ());
    let first_failure =
      Array.fold_left
        (fun acc (_, _, _, f) ->
          match (acc, f) with
          | None, f -> f
          | Some (g0, _), Some (g, _) when g < g0 -> f
          | acc, _ -> acc)
        None results
    in
    match first_failure with Some (_, e) -> raise e | None -> ()
  end;
  (match (metrics, sharded) with
  | Some reg, Some sh -> Sycl_obs.Metrics.Sharded.merge_into ~into:reg sh
  | _ -> ());
  (* Cache counters are recorded once from the merged totals (so they
     are deterministic whatever the domain count), and only when a
     non-flat model ran — a flat launch leaves the registry untouched,
     keeping --metrics-json byte-identical to the seed. *)
  (match metrics with
  | Some reg when cache_model <> Cost.Flat ->
    Sycl_obs.Metrics.incr reg ~by:stats.Cost.cache_hits "sim.cache.hits";
    Sycl_obs.Metrics.incr reg ~by:stats.Cost.cache_misses "sim.cache.misses";
    Sycl_obs.Metrics.incr reg ~by:stats.Cost.cache_evictions
      "sim.cache.evictions";
    Sycl_obs.Metrics.incr reg ~by:stats.Cost.cache_mem_wait_cycles
      "sim.cache.mem_wait_cycles";
    (match cache with
    | Some t ->
      (* Exact reuse-distance histogram (p50/p90/p99 are exact
         nearest-rank because the registry keeps a value->count table).
         Power-of-two bucket bounds for the rendered buckets. *)
      let bounds = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 |] in
      Cache.iter_hist t (fun dist count ->
          for _ = 1 to count do
            Sycl_obs.Metrics.observe reg ~bounds "sim.cache.reuse_distance"
              dist
          done)
    | None -> ())
  | _ -> ());
  (match footprints with
  | Some fps ->
    let races = detect_races fps in
    if races <> [] then raise (Race_detected races)
  | None -> ());
  stats
