(** Per-core (per-work-group) data cache model.

    One {!state} per work-group, probed by the interpreter exactly once
    per new coalesced global transaction, so
    [hits + misses = global_transactions] holds by construction —
    exactly, no epsilon ({!conserves}). Direct-mapped or set-associative
    LRU, selected by {!Cost.cache_model}; the set index is
    [line mod num_sets] (base-aligned allocation model) and the tag is
    the full [(allocation id, line)] pair.

    Work-items of a group run as fibers in canonical order on one
    domain, so the probe sequence is independent of the domain count;
    per-worker {!table} shards merge in canonical chunk order
    ({!merge}), making every surface byte-identical whatever the
    [--sim-domains] setting.

    Warm re-accesses additionally measure their exact LRU stack distance
    (distinct lines touched since the previous access of the same line)
    with a Fenwick tree; [distance < capacity] iff a fully-associative
    LRU cache of that capacity would hit, which grounds the
    [--print-analysis reuse] cross-check. *)

(** {1 Cache state (one per work-group)} *)

type state

(** [None] under {!Cost.Flat} (no cache is simulated). *)
val create : Cost.params -> Cost.cache_model -> state option

type outcome = { o_hit : bool; o_evicted : bool }

(** Probe for line [(aid, line)], updating LRU state and filling on a
    miss. *)
val access : state -> aid:int -> line:int -> outcome

(** {1 Exact reuse distances} *)

type reuse

val reuse_create : unit -> reuse

(** Record a probe; returns the exact LRU stack distance of a warm
    re-access, or [None] for a first touch. *)
val reuse_access : reuse -> aid:int -> line:int -> int option

(** {1 The per-launch counter table}

    Keyed like [Attribution]: the charging op's (name, source location
    string). *)

type row = {
  mutable r_hits : int;
  mutable r_misses : int;
  mutable r_evictions : int;
  mutable r_dist_sum : int;
  mutable r_dist_count : int;
}

type table

val create_table : unit -> table
val row : table -> op_name:string -> loc:string -> row

(** Add one measured reuse distance ([None] = cold first touch) to the
    launch-global histogram. *)
val observe_distance : table -> int option -> unit

(** Rows sorted by (location, op name). *)
val rows : table -> ((string * string) * row) list

(** Merge [src] into [into]; all fields sum, so canonical chunk-order
    merging reproduces the sequential table exactly. *)
val merge : into:table -> table -> unit

(** [(hits, misses, evictions)] summed over all rows. *)
val totals : table -> int * int * int

(** Exact conservation against the launch totals: row sums equal the
    launch cache counters and [hits + misses = global_transactions].
    Returns human-readable violations ([] = conserves). *)
val conserves : table -> Cost.launch_stats -> string list

(** Iterate the reuse-distance histogram (distance, count) in ascending
    distance order. *)
val iter_hist : table -> (int -> int -> unit) -> unit

(** Exact nearest-rank percentile of the reuse-distance histogram
    ([None] when no warm re-access was measured). *)
val percentile : table -> float -> int option

val hit_rate : hits:int -> misses:int -> float
val render : table -> string
val to_json : table -> Mlir.Json.t
