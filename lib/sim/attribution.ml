(* Source-attributed cost accounting: every charge the device simulator
   records (ALU, fdiv, memory transactions, barrier rounds) is accounted
   to the charging op and aggregated here, keyed by (op name, source
   location). The per-work-group cycle formula of {!Cost} divides the
   summed compute charges by the sub-group width once per group, so
   per-op cycle shares are distributed inside each work-group with a
   largest-remainder rule in canonical op order — making the per-line
   cycle totals sum *exactly* to [Cost.launch_stats.total_wg_cycles]
   (the conservation oracle) and keeping the distribution independent
   of how work-groups are chunked over worker domains.

   The parallel backend accumulates one private table per worker and
   merges them in canonical chunk order, mirroring
   [Cost.merge_launch_stats]: all row fields are sums, so the merged
   table is byte-identical to sequential accumulation whatever the
   domain count. *)

open Mlir

type counts = {
  mutable c_alu : int;  (** ALU-class op executions *)
  mutable c_fdiv : int;  (** divide/sqrt/exp-class executions *)
  mutable c_global : int;  (** coalesced global-memory transactions *)
  mutable c_local : int;  (** work-group-local transactions *)
  mutable c_const : int;  (** constant-cached transactions *)
  mutable c_accesses : int;  (** raw accesses before coalescing *)
  mutable c_barriers : int;  (** barrier rounds charged to this op *)
  mutable c_cycles : int;  (** total cycles attributed (conserved) *)
  mutable c_mem_cycles : int;  (** memory portion of [c_cycles] *)
  mutable c_hits : int;  (** cache hits among [c_global] (non-flat model) *)
  mutable c_misses : int;  (** cache misses among [c_global] *)
}

type key = {
  k_op : string;  (** op name, e.g. ["memref.load"] *)
  k_loc : Loc.t;  (** the op's source location *)
}

(* Rows are keyed by (op name, printed location): [Loc.to_string] is the
   textual syntax, so distinct locations never collide and the ordering
   is total. The original [Loc.t] is kept alongside for resolution. *)
type table = { rows : (string * string, key * counts) Hashtbl.t }

let create () = { rows = Hashtbl.create 64 }

let fresh_counts () =
  {
    c_alu = 0;
    c_fdiv = 0;
    c_global = 0;
    c_local = 0;
    c_const = 0;
    c_accesses = 0;
    c_barriers = 0;
    c_cycles = 0;
    c_mem_cycles = 0;
    c_hits = 0;
    c_misses = 0;
  }

(** The row for (op name, loc), created on first charge. *)
let row (t : table) ~(op_name : string) ~(loc : Loc.t) : counts =
  let k = (op_name, Loc.to_string loc) in
  match Hashtbl.find_opt t.rows k with
  | Some (_, c) -> c
  | None ->
    let c = fresh_counts () in
    Hashtbl.replace t.rows k ({ k_op = op_name; k_loc = loc }, c);
    c

(** Rows in canonical order: by printed location, then op name. Every
    rendering (digest, JSON, report) iterates in this order, so output
    is deterministic whatever the accumulation schedule was. *)
let rows (t : table) : (key * counts) list =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.rows []
  |> List.sort (fun ((na, la), _) ((nb, lb), _) -> compare (la, na) (lb, nb))
  |> List.map snd

(** Merge [src] into [into] in canonical row order (every field is a
    sum — the attribution counterpart of [Cost.merge_launch_stats]). *)
let merge ~(into : table) (src : table) =
  List.iter
    (fun (k, c) ->
      let d = row into ~op_name:k.k_op ~loc:k.k_loc in
      d.c_alu <- d.c_alu + c.c_alu;
      d.c_fdiv <- d.c_fdiv + c.c_fdiv;
      d.c_global <- d.c_global + c.c_global;
      d.c_local <- d.c_local + c.c_local;
      d.c_const <- d.c_const + c.c_const;
      d.c_accesses <- d.c_accesses + c.c_accesses;
      d.c_barriers <- d.c_barriers + c.c_barriers;
      d.c_cycles <- d.c_cycles + c.c_cycles;
      d.c_mem_cycles <- d.c_mem_cycles + c.c_mem_cycles;
      d.c_hits <- d.c_hits + c.c_hits;
      d.c_misses <- d.c_misses + c.c_misses)
    (rows src)

let total_cycles (t : table) =
  Hashtbl.fold (fun _ (_, c) acc -> acc + c.c_cycles) t.rows 0

(* ------------------------------------------------------------------ *)
(* Conservation oracle                                                 *)
(* ------------------------------------------------------------------ *)

(** Attribution must be an exact decomposition of the launch aggregates:
    every counter sums to its [Cost.launch_stats] field and the cycle
    column sums to [total_wg_cycles] exactly. *)
let conserves (t : table) (s : Cost.launch_stats) : (unit, string) result =
  let sum f = Hashtbl.fold (fun _ (_, c) acc -> acc + f c) t.rows 0 in
  let checks =
    [
      ("alu", sum (fun c -> c.c_alu), s.Cost.alu_ops);
      ("fdiv", sum (fun c -> c.c_fdiv), s.Cost.fdiv_ops);
      ("global", sum (fun c -> c.c_global), s.Cost.global_transactions);
      ("local", sum (fun c -> c.c_local), s.Cost.local_transactions);
      ("const", sum (fun c -> c.c_const), s.Cost.const_transactions);
      ("barriers", sum (fun c -> c.c_barriers), s.Cost.barriers);
      ("cycles", sum (fun c -> c.c_cycles), s.Cost.total_wg_cycles);
      ("cache hits", sum (fun c -> c.c_hits), s.Cost.cache_hits);
      ("cache misses", sum (fun c -> c.c_misses), s.Cost.cache_misses);
    ]
  in
  match
    List.find_opt (fun (_, got, want) -> got <> want) checks
  with
  | Some (what, got, want) ->
    Error
      (Printf.sprintf "attribution %s total %d != launch_stats %d" what got
         want)
  | None -> Ok ()

(* ------------------------------------------------------------------ *)
(* Source-line aggregation (perf-annotate view)                        *)
(* ------------------------------------------------------------------ *)

let unknown_line = "<unknown>"

(** The source line a row reports under: the location's first concrete
    [file:line] (Name children, CallSite callee-then-caller and Fused
    components are walked in order by {!Loc.resolve}). *)
let line_of_loc (l : Loc.t) =
  match Loc.resolve l with
  | Some (file, line, _) -> Printf.sprintf "%s:%d" file line
  | None -> unknown_line

type line_row = {
  l_line : string;  (** ["file:line"] or [unknown_line] *)
  l_cycles : int;
  l_mem_cycles : int;
  l_transactions : int;  (** coalesced transactions, all classes *)
  l_accesses : int;  (** raw accesses before coalescing *)
  l_hits : int;  (** cache hits (0 under the flat model) *)
  l_misses : int;  (** cache misses (0 under the flat model) *)
  l_ops : string list;  (** contributing op names, sorted *)
}

(** Per-line aggregation of the table, hottest line first (ties broken
    by line name, so the report is deterministic). *)
let by_line (t : table) : line_row list =
  let acc : (string, line_row ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (k, c) ->
      let line = line_of_loc k.k_loc in
      let r =
        match Hashtbl.find_opt acc line with
        | Some r -> r
        | None ->
          let r =
            ref
              {
                l_line = line;
                l_cycles = 0;
                l_mem_cycles = 0;
                l_transactions = 0;
                l_accesses = 0;
                l_hits = 0;
                l_misses = 0;
                l_ops = [];
              }
          in
          Hashtbl.replace acc line r;
          r
      in
      r :=
        {
          !r with
          l_cycles = !r.l_cycles + c.c_cycles;
          l_mem_cycles = !r.l_mem_cycles + c.c_mem_cycles;
          l_transactions = !r.l_transactions + c.c_global + c.c_local + c.c_const;
          l_accesses = !r.l_accesses + c.c_accesses;
          l_hits = !r.l_hits + c.c_hits;
          l_misses = !r.l_misses + c.c_misses;
          l_ops =
            (if List.mem k.k_op !r.l_ops then !r.l_ops else k.k_op :: !r.l_ops);
        })
    (rows t);
  Hashtbl.fold (fun _ r acc -> { !r with l_ops = List.sort compare !r.l_ops } :: acc) acc []
  |> List.sort (fun a b -> compare (-a.l_cycles, a.l_line) (-b.l_cycles, b.l_line))

(** Fraction of attributed cycles accounted to a known source line. *)
let known_cycle_fraction (t : table) =
  let total = total_cycles t in
  if total = 0 then 1.0
  else
    let known =
      List.fold_left
        (fun acc r -> if r.l_line = unknown_line then acc else acc + r.l_cycles)
        0 (by_line t)
    in
    float_of_int known /. float_of_int total

(** The perf-annotate-style hotspot report: top-[top] source lines with
    cycles, share of total, memory transactions and the coalescing ratio
    (raw accesses per coalesced transaction; "-" for pure-compute
    lines). *)
let pp_hotspots ?(top = 10) fmt (t : table) =
  let lines = by_line t in
  let total = total_cycles t in
  (* The hit/miss/hit-rate columns only appear when a non-flat cache
     model recorded probes, so flat-model reports stay byte-identical
     to the pre-cache golden format. *)
  let cached = List.exists (fun r -> r.l_hits + r.l_misses > 0) lines in
  Format.fprintf fmt "hotspots: %d source lines, %d attributed cycles@."
    (List.length lines) total;
  if cached then
    Format.fprintf fmt
      "    cycles   share    trans  coalesce     hits   misses  hitrate  line@."
  else Format.fprintf fmt "    cycles   share    trans  coalesce  line@.";
  List.iteri
    (fun i r ->
      if i < top then begin
        let share =
          if total = 0 then 0.0
          else 100.0 *. float_of_int r.l_cycles /. float_of_int total
        in
        let coalesce =
          if r.l_transactions = 0 then "-"
          else
            Printf.sprintf "%.2f"
              (float_of_int r.l_accesses /. float_of_int r.l_transactions)
        in
        if cached then begin
          let hitrate =
            if r.l_hits + r.l_misses = 0 then "-"
            else
              Printf.sprintf "%.1f%%"
                (100.0 *. float_of_int r.l_hits
                /. float_of_int (r.l_hits + r.l_misses))
          in
          Format.fprintf fmt "%10d  %5.1f%%  %7d  %8s  %7d  %7d  %7s  %s (%s)@."
            r.l_cycles share r.l_transactions coalesce r.l_hits r.l_misses
            hitrate r.l_line
            (String.concat ", " r.l_ops)
        end
        else
          Format.fprintf fmt "%10d  %5.1f%%  %7d  %8s  %s (%s)@." r.l_cycles
            share r.l_transactions coalesce r.l_line
            (String.concat ", " r.l_ops)
      end)
    lines

let hotspots_to_string ?top (t : table) =
  Format.asprintf "%a" (fun fmt -> pp_hotspots ?top fmt) t

(* ------------------------------------------------------------------ *)
(* Canonical textual rendering (determinism digest)                    *)
(* ------------------------------------------------------------------ *)

let pp_row fmt (k, c) =
  Format.fprintf fmt
    "%s @ %s: alu=%d fdiv=%d mem(g=%d l=%d c=%d acc=%d) barriers=%d \
     cycles=%d mem_cycles=%d"
    k.k_op (Loc.to_string k.k_loc) c.c_alu c.c_fdiv c.c_global c.c_local
    c.c_const c.c_accesses c.c_barriers c.c_cycles c.c_mem_cycles;
  (* Gated per row: flat-model rows never carry probes, so the digest
     stays byte-identical to the seed format. *)
  if c.c_hits + c.c_misses > 0 then
    Format.fprintf fmt " cache(h=%d m=%d)" c.c_hits c.c_misses

(** One line per row in canonical order — folded into the run digest so
    the determinism oracle covers attribution byte-for-byte. *)
let render (t : table) =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string buf (Format.asprintf "  %a" pp_row r);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let row_to_json (k, c) : Json.t =
  Json.Obj
    ([
       ("op", Json.String k.k_op);
       ("loc", Json.String (Loc.to_string k.k_loc));
       ("line", Json.String (line_of_loc k.k_loc));
       ("alu", Json.Int c.c_alu);
       ("fdiv", Json.Int c.c_fdiv);
       ("global", Json.Int c.c_global);
       ("local", Json.Int c.c_local);
       ("const", Json.Int c.c_const);
       ("accesses", Json.Int c.c_accesses);
       ("barriers", Json.Int c.c_barriers);
       ("cycles", Json.Int c.c_cycles);
       ("mem_cycles", Json.Int c.c_mem_cycles);
     ]
    @
    (* Gated: only rows with cache probes (non-flat model) carry the
       hit/miss fields, keeping flat-model JSON byte-identical. *)
    if c.c_hits + c.c_misses > 0 then
      [
        ("cache_hits", Json.Int c.c_hits);
        ("cache_misses", Json.Int c.c_misses);
        ( "cache_hit_rate",
          Json.Float
            (float_of_int c.c_hits /. float_of_int (c.c_hits + c.c_misses)) );
      ]
    else [])

let to_json (t : table) : Json.t =
  Json.Obj
    [
      ("total_cycles", Json.Int (total_cycles t));
      ("rows", Json.List (List.map row_to_json (rows t)));
    ]

(* ------------------------------------------------------------------ *)
(* Annotated IR                                                        *)
(* ------------------------------------------------------------------ *)

(** Record the attribution back into the IR as the discardable
    [sycl.cycles] / [sycl.mem_cycles] attributes (the analysis-printer
    convention: plain attribute constructs that round-trip through
    parser and verifier, and that [Analysis_printer.strip_annotations]
    removes). Ops sharing (name, location) — e.g. clones made by
    unrolling — each report the combined count of the row. *)
let annotate_module (t : table) (m : Core.op) =
  Core.walk m ~f:(fun op ->
      match Hashtbl.find_opt t.rows (op.Core.name, Loc.to_string op.Core.loc) with
      | Some (_, c) when c.c_cycles > 0 ->
        Core.set_attr op Sycl_core.Analysis_printer.cycles_attr
          (Attr.Int c.c_cycles);
        if c.c_mem_cycles > 0 then
          Core.set_attr op Sycl_core.Analysis_printer.mem_cycles_attr
            (Attr.Int c.c_mem_cycles);
        if c.c_hits > 0 then
          Core.set_attr op Sycl_core.Analysis_printer.cache_hits_attr
            (Attr.Int c.c_hits);
        if c.c_misses > 0 then
          Core.set_attr op Sycl_core.Analysis_printer.cache_misses_attr
            (Attr.Int c.c_misses)
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Optimization-delta join                                             *)
(* ------------------------------------------------------------------ *)

(** All concrete file positions appearing anywhere in a location tree,
    in walk order — the [Fused]/[CallSite] constituents a post-
    optimization row may carry. *)
let rec constituents (l : Loc.t) : (string * int) list =
  match l with
  | Loc.Unknown -> []
  | Loc.File { file; line; _ } -> [ (file, line) ]
  | Loc.Name (_, child) -> constituents child
  | Loc.CallSite { callee; caller } -> constituents callee @ constituents caller
  | Loc.Fused ls -> List.concat_map constituents ls

type delta_row = {
  d_line : string;
  d_before : int;  (** cycles attributed to the line, unoptimized run *)
  d_after : int;  (** cycles attributed to the line, optimized run *)
  d_remarks : Remarks.t list;  (** remarks whose location joins the line *)
}

(** Join two attribution tables (unoptimized vs optimized run) per
    source line, and attach each optimization remark to the line its
    location reaches. A remark joins a line directly when they resolve
    to the same [file:line]; additionally, any constituent of a fused or
    call-site location in either table forwards to that row's primary
    line — so a remark anchored at a source line that survived only as a
    [Fused]/[CallSite] component still lands on the row carrying its
    cycles. Rows are sorted by cycle delta ascending (largest saving
    first), ties by line. *)
let delta ~(before : table) ~(after : table) ~(remarks : Remarks.t list) :
    delta_row list =
  let line_cycles t =
    let acc = Hashtbl.create 32 in
    List.iter
      (fun (r : line_row) -> Hashtbl.replace acc r.l_line r.l_cycles)
      (by_line t);
    acc
  in
  let bmap = line_cycles before and amap = line_cycles after in
  (* Constituent forwarding: "file:line" -> the primary line of a row
     whose location contains it (first writer in canonical row order
     wins; primary lines forward to themselves). *)
  let forward = Hashtbl.create 32 in
  let note_row (k, _) =
    let primary = line_of_loc k.k_loc in
    List.iter
      (fun (file, line) ->
        let key = Printf.sprintf "%s:%d" file line in
        if not (Hashtbl.mem forward key) then Hashtbl.replace forward key primary)
      (constituents k.k_loc)
  in
  List.iter note_row (rows after);
  List.iter note_row (rows before);
  let remark_line (r : Remarks.t) =
    let direct =
      match Loc.resolve r.Remarks.r_loc with
      | Some (file, line, _) -> Printf.sprintf "%s:%d" file line
      | None -> unknown_line
    in
    match Hashtbl.find_opt forward direct with
    | Some primary -> primary
    | None -> direct
  in
  let lines =
    let seen = Hashtbl.create 32 in
    let out = ref [] in
    let add l = if not (Hashtbl.mem seen l) then (Hashtbl.replace seen l (); out := l :: !out) in
    Hashtbl.iter (fun l _ -> add l) bmap;
    Hashtbl.iter (fun l _ -> add l) amap;
    List.iter (fun r -> add (remark_line r)) remarks;
    !out
  in
  let get m l = Option.value ~default:0 (Hashtbl.find_opt m l) in
  List.map
    (fun l ->
      {
        d_line = l;
        d_before = get bmap l;
        d_after = get amap l;
        d_remarks = List.filter (fun r -> remark_line r = l) remarks;
      })
    lines
  |> List.sort (fun a b ->
         compare (a.d_after - a.d_before, a.d_line) (b.d_after - b.d_before, b.d_line))

(** Print the delta report: per-line cycle deltas next to the remarks
    that claimed them. Lines with neither a cycle change nor a remark
    are elided. *)
let pp_delta fmt (ds : delta_row list) =
  Format.fprintf fmt
    "optimization delta (device cycles, optimized - unoptimized):@.";
  List.iter
    (fun d ->
      let delta = d.d_after - d.d_before in
      if delta <> 0 || d.d_remarks <> [] then begin
        Format.fprintf fmt "  %+10d  (%d -> %d)  %s@." delta d.d_before
          d.d_after d.d_line;
        List.iter
          (fun (r : Remarks.t) ->
            Format.fprintf fmt "              [%s] %s: %s@." r.Remarks.r_pass
              (Remarks.kind_to_string r.Remarks.r_kind)
              r.Remarks.r_message)
          d.d_remarks
      end)
    ds

let delta_to_string ds = Format.asprintf "%a" pp_delta ds
