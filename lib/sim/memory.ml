(* Simulated device memory: allocations are cell arrays addressed at
   element granularity; views carry offset/shape/stride descriptors
   (memref semantics). SYCL struct types (id, range, item) occupy
   [Sycl_types.flat_cells] integer cells. *)

open Mlir

type cell =
  | I of int
  | F of float

type allocation = {
  aid : int;
  space : Types.memspace;
  data : cell array;
  (* Host-constant data propagated by the host-device analysis: reads go
     through the constant cache. *)
  mutable constant_cached : bool;
  label : string;
}

(* Atomic: the parallel simulator backend allocates work-group-local
   memory from several domains at once; racy increments could hand two
   allocations the same id, corrupting the coalescing tables. *)
let aid_counter = Atomic.make 0

let next_aid () = Atomic.fetch_and_add aid_counter 1 + 1

let alloc ?(label = "") ?(space = Types.Global) ~(size : int) () =
  { aid = next_aid (); space; data = Array.make (max size 1) (F 0.0);
    constant_cached = false; label }

let alloc_ints ?label ?space size =
  let a = alloc ?label ?space ~size () in
  Array.fill a.data 0 (Array.length a.data) (I 0);
  a

(** A memref-style view: element [i0, i1, ...] lives at
    [offset + sum(strides.(k) * ik)] in [alloc.data]. *)
type view = {
  base : allocation;
  offset : int;
  dims : int array;
  strides : int array;
}

let full_view ?(dims = [||]) (a : allocation) =
  let dims = if dims = [||] then [| Array.length a.data |] else dims in
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  { base = a; offset = 0; dims; strides }

exception Out_of_bounds of string

let linear_index (v : view) (idx : int list) =
  let i = ref v.offset in
  List.iteri
    (fun k x ->
      if k >= Array.length v.strides then
        raise (Out_of_bounds (Printf.sprintf "rank mismatch on %s" v.base.label));
      i := !i + (x * v.strides.(k)))
    idx;
  if !i < 0 || !i >= Array.length v.base.data then
    raise
      (Out_of_bounds
         (Printf.sprintf "index %d out of bounds for %s (size %d)" !i
            v.base.label (Array.length v.base.data)))
  else !i

let read (v : view) (idx : int list) =
  v.base.data.(linear_index v idx)

let write (v : view) (idx : int list) (c : cell) =
  v.base.data.(linear_index v idx) <- c

let cell_to_float = function F f -> f | I i -> float_of_int i
let cell_to_int = function I i -> i | F f -> int_of_float f

(** Copy [n] elements between allocations (host<->device transfers). *)
let blit ~(src : view) ~(dst : view) n =
  let si = src.offset and di = dst.offset in
  Array.blit src.base.data si dst.base.data di n

(* ------------------------------------------------------------------ *)
(* Write footprints (cross-group race detection)                       *)
(* ------------------------------------------------------------------ *)

(** The set of global-memory cells a work-group wrote, at element
    granularity, plus the labels of the allocations it touched (for
    reporting). Work-groups of one SYCL kernel must write disjoint
    global locations — the race detector intersects these footprints. *)
type footprint = {
  fp_cells : (int * int, unit) Hashtbl.t;  (** (allocation id, cell) *)
  fp_labels : (int, string) Hashtbl.t;  (** allocation id -> label *)
  (* First writing op's source location per cell, so a race report can
     point at the culprit store in the kernel source. *)
  fp_locs : (int * int, Loc.t) Hashtbl.t;
}

let footprint () =
  { fp_cells = Hashtbl.create 64; fp_labels = Hashtbl.create 4;
    fp_locs = Hashtbl.create 64 }

(** Record a write of cell [lin] (a {!linear_index} result) through [v],
    remembering the writing op's location [loc] (first writer wins).
    Only global-space writes are footprinted: local and private memory
    are per-group / per-item by construction. *)
let footprint_write ?(loc = Loc.Unknown) (fp : footprint) (v : view) (lin : int) =
  match v.base.space with
  | Types.Global ->
    let aid = v.base.aid in
    Hashtbl.replace fp.fp_cells (aid, lin) ();
    if Loc.is_known loc && not (Hashtbl.mem fp.fp_locs (aid, lin)) then
      Hashtbl.replace fp.fp_locs (aid, lin) loc;
    if not (Hashtbl.mem fp.fp_labels aid) then
      Hashtbl.replace fp.fp_labels aid v.base.label
  | Types.Local | Types.Private -> ()

(** Footprinted cells, sorted by (allocation id, cell) so reports are
    deterministic regardless of hash-table iteration order. *)
let footprint_cells (fp : footprint) : (int * int) list =
  Hashtbl.fold (fun k () acc -> k :: acc) fp.fp_cells []
  |> List.sort (fun (a1, c1) (a2, c2) ->
         match Int.compare a1 a2 with 0 -> Int.compare c1 c2 | n -> n)

let footprint_label (fp : footprint) aid =
  Option.value ~default:"?" (Hashtbl.find_opt fp.fp_labels aid)

(** Location of the (first) op that wrote a footprinted cell. *)
let footprint_loc (fp : footprint) key =
  Option.value ~default:Loc.Unknown (Hashtbl.find_opt fp.fp_locs key)
