(* Per-core (per-work-group) data cache model (ROADMAP item 3).

   The interpreter already coalesces every memory access into cache-line
   transactions per (instruction, occurrence, sub-group); this module
   simulates what those *global* transactions do to a per-core data
   cache. One [state] is created per work-group (work-groups own their
   core for the duration of a launch in the model, matching inter-group
   independence), and the coalescing code probes it exactly once per new
   global transaction — so

       hits + misses = global_transactions

   holds by construction, exactly, with no epsilon (the conservation
   oracle [conserves] checks it like [Attribution.conserves]).

   Two organizations are modelled, selected by [Cost.cache_model]:
   direct-mapped ([ways = 1]) and set-associative with true LRU
   replacement. The set index is [line mod num_sets] and the tag is the
   full [(allocation id, line)] pair: allocation ids come from an atomic
   counter, so involving them in the index would make placement depend
   on allocation order; using only the line index instead models
   base-aligned allocations (a conservative conflict model — distinct
   arrays with equal line offsets do conflict, as they would when the
   runtime base-aligns buffers).

   Determinism: work-items of a group run as fibers on one domain in
   canonical order, so the probe sequence — and therefore every counter
   — is independent of the domain count. Each worker accumulates a
   private [table] shard; shards are merged in canonical chunk order,
   like [Cost.merge_launch_stats] and [Attribution].

   Alongside the hit/miss counters the model measures the *reuse
   distance* of every warm re-access: the number of distinct lines
   touched since the previous access to the same line (the LRU stack
   distance). [distance < capacity] iff the access would hit in a
   fully-associative LRU cache of that capacity, which is what lets the
   static reuse analysis ([--print-analysis reuse]) be cross-checked
   against measured hit rates. Distances are computed exactly with a
   Fenwick tree over probe positions. *)

(* ------------------------------------------------------------------ *)
(* Cache state (one per work-group)                                    *)
(* ------------------------------------------------------------------ *)

type slot = {
  mutable tag : (int * int) option;  (* (allocation id, line) *)
  mutable stamp : int;  (* last-use tick, for LRU *)
}

type state = {
  sets : slot array array;  (* num_sets x ways *)
  mutable tick : int;
}

let create (p : Cost.params) (model : Cost.cache_model) : state option =
  match model with
  | Cost.Flat -> None
  | Cost.Direct_mapped | Cost.Set_associative ->
    let ways =
      match model with
      | Cost.Direct_mapped -> 1
      | _ -> max 1 p.Cost.cache_ways
    in
    let num_sets = max 1 (p.Cost.cache_lines / ways) in
    Some
      {
        sets =
          Array.init num_sets (fun _ ->
              Array.init ways (fun _ -> { tag = None; stamp = 0 }));
        tick = 0;
      }

type outcome = { o_hit : bool; o_evicted : bool }

(** Probe the cache for the line [(aid, line)]: on a hit the slot's LRU
    stamp is refreshed; on a miss the line is installed, evicting the
    least-recently-used valid way when the set is full. *)
let access (st : state) ~(aid : int) ~(line : int) : outcome =
  st.tick <- st.tick + 1;
  let set = st.sets.(line mod Array.length st.sets) in
  let tag = (aid, line) in
  match Array.find_opt (fun s -> s.tag = Some tag) set with
  | Some s ->
    s.stamp <- st.tick;
    { o_hit = true; o_evicted = false }
  | None ->
    (* Fill: an invalid way if any, else the LRU way (lowest stamp; ties
       impossible because stamps are distinct ticks). *)
    let victim = ref set.(0) in
    Array.iter
      (fun s ->
        if !victim.tag <> None && (s.tag = None || s.stamp < !victim.stamp)
        then victim := s)
      set;
    let evicted = !victim.tag <> None in
    !victim.tag <- Some tag;
    !victim.stamp <- st.tick;
    { o_hit = false; o_evicted = evicted }

(* ------------------------------------------------------------------ *)
(* Exact reuse distances (LRU stack distance)                          *)
(* ------------------------------------------------------------------ *)

(* Fenwick tree over probe positions: position p carries 1 iff it is the
   *most recent* access position of some line. The distance of a
   re-access whose previous position is [prev] is then the number of
   live positions in (prev, now) — the count of distinct lines touched
   in between. The tree grows by doubling; live positions are re-added
   on growth (amortized O(log n) per probe). *)
type reuse = {
  mutable bit : int array;  (* 1-based Fenwick array *)
  mutable pos : int;  (* last assigned position *)
  last : (int * int, int) Hashtbl.t;  (* line -> its live position *)
}

let reuse_create () = { bit = Array.make 1024 0; pos = 0; last = Hashtbl.create 64 }

let bit_add (r : reuse) i delta =
  let n = Array.length r.bit - 1 in
  let i = ref i in
  while !i <= n do
    r.bit.(!i) <- r.bit.(!i) + delta;
    i := !i + (!i land - !i)
  done

(* Sum of positions 1..i. *)
let bit_sum (r : reuse) i =
  let s = ref 0 in
  let i = ref i in
  while !i > 0 do
    s := !s + r.bit.(!i);
    i := !i - (!i land - !i)
  done;
  !s

let reuse_grow (r : reuse) =
  r.bit <- Array.make ((2 * (Array.length r.bit - 1)) + 1) 0;
  Hashtbl.iter (fun _ p -> bit_add r p 1) r.last

(** Record a probe of [(aid, line)]; returns the exact reuse distance,
    or [None] for a first touch (cold). *)
let reuse_access (r : reuse) ~(aid : int) ~(line : int) : int option =
  let key = (aid, line) in
  if r.pos >= Array.length r.bit - 1 then reuse_grow r;
  let now = r.pos + 1 in
  r.pos <- now;
  let dist =
    match Hashtbl.find_opt r.last key with
    | Some prev ->
      let d = bit_sum r (now - 1) - bit_sum r prev in
      bit_add r prev (-1);
      Some d
    | None -> None
  in
  bit_add r now 1;
  Hashtbl.replace r.last key now;
  dist

(* ------------------------------------------------------------------ *)
(* The per-launch counter table                                        *)
(* ------------------------------------------------------------------ *)

(** Per-op cache behaviour, keyed like [Attribution]: the charging op's
    (name, source location). *)
type row = {
  mutable r_hits : int;
  mutable r_misses : int;
  mutable r_evictions : int;
  mutable r_dist_sum : int;  (* sum of measured (warm) reuse distances *)
  mutable r_dist_count : int;  (* warm re-accesses *)
}

type table = {
  rows : (string * string, (string * string) * row) Hashtbl.t;
  hist : (int, int) Hashtbl.t;  (* reuse distance -> occurrences *)
  mutable t_cold : int;  (* first-touch probes (no finite distance) *)
}

let create_table () =
  { rows = Hashtbl.create 64; hist = Hashtbl.create 64; t_cold = 0 }

let row (t : table) ~op_name ~loc =
  let key = (op_name, loc) in
  match Hashtbl.find_opt t.rows key with
  | Some (_, r) -> r
  | None ->
    let r =
      { r_hits = 0; r_misses = 0; r_evictions = 0; r_dist_sum = 0;
        r_dist_count = 0 }
    in
    Hashtbl.replace t.rows key (key, r);
    r

let observe_distance (t : table) (d : int option) =
  match d with
  | None -> t.t_cold <- t.t_cold + 1
  | Some d ->
    Hashtbl.replace t.hist d
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.hist d))

(** Sorted by (location, op name), like [Attribution.rows]. *)
let rows (t : table) =
  Hashtbl.fold (fun _ v acc -> v :: acc) t.rows []
  |> List.sort (fun ((na, la), _) ((nb, lb), _) -> compare (la, na) (lb, nb))

(** Merge [src] into [into]. Every field is a sum, so merging the
    per-worker shards in canonical chunk order reproduces the
    sequential table exactly. *)
let merge ~(into : table) (src : table) =
  List.iter
    (fun ((name, loc), (r : row)) ->
      let d = row into ~op_name:name ~loc in
      d.r_hits <- d.r_hits + r.r_hits;
      d.r_misses <- d.r_misses + r.r_misses;
      d.r_evictions <- d.r_evictions + r.r_evictions;
      d.r_dist_sum <- d.r_dist_sum + r.r_dist_sum;
      d.r_dist_count <- d.r_dist_count + r.r_dist_count)
    (rows src);
  Hashtbl.iter
    (fun d c ->
      Hashtbl.replace into.hist d
        (c + Option.value ~default:0 (Hashtbl.find_opt into.hist d)))
    src.hist;
  into.t_cold <- into.t_cold + src.t_cold

let totals (t : table) =
  List.fold_left
    (fun (h, m, e) (_, r) -> (h + r.r_hits, m + r.r_misses, e + r.r_evictions))
    (0, 0, 0) (rows t)

(** Exact conservation against the launch totals, in the style of
    [Attribution.conserves]: table rows sum to the launch counters and
    every probe is a global transaction. No tolerance. *)
let conserves (t : table) (s : Cost.launch_stats) =
  let h, m, e = totals t in
  let checks =
    [
      ("hits", h, s.Cost.cache_hits);
      ("misses", m, s.Cost.cache_misses);
      ("evictions", e, s.Cost.cache_evictions);
      ( "probes",
        s.Cost.cache_hits + s.Cost.cache_misses,
        s.Cost.global_transactions );
    ]
  in
  List.filter_map
    (fun (what, got, want) ->
      if got = want then None
      else Some (Printf.sprintf "%s: table %d vs launch %d" what got want))
    checks

(** Iterate the reuse-distance histogram in ascending distance order
    (deterministic regardless of hash order). *)
let iter_hist (t : table) (f : int -> int -> unit) =
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) t.hist []
  |> List.sort compare
  |> List.iter (fun (d, c) -> f d c)

(* Exact nearest-rank percentile over the distance histogram. *)
let percentile (t : table) (p : float) =
  let total = Hashtbl.fold (fun _ c acc -> acc + c) t.hist 0 in
  if total = 0 then None
  else begin
    let rank =
      max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int total)))
    in
    let entries =
      Hashtbl.fold (fun d c acc -> (d, c) :: acc) t.hist []
      |> List.sort compare
    in
    let rec pick seen = function
      | [] -> None
      | (d, c) :: rest ->
        if seen + c >= rank then Some d else pick (seen + c) rest
    in
    pick 0 entries
  end

let hit_rate ~hits ~misses =
  if hits + misses = 0 then 0.0
  else float_of_int hits /. float_of_int (hits + misses)

let render (t : table) =
  let buf = Buffer.create 256 in
  let h, m, e = totals t in
  Buffer.add_string buf
    (Printf.sprintf "cache: hits=%d misses=%d evictions=%d hit_rate=%.4f\n" h m
       e (hit_rate ~hits:h ~misses:m));
  let pct p = match percentile t p with Some d -> string_of_int d | None -> "-" in
  Buffer.add_string buf
    (Printf.sprintf "  reuse distance: warm=%d cold=%d p50=%s p90=%s p99=%s\n"
       (Hashtbl.fold (fun _ c acc -> acc + c) t.hist 0)
       t.t_cold (pct 50.0) (pct 90.0) (pct 99.0));
  List.iter
    (fun ((name, loc), (r : row)) ->
      let mean =
        if r.r_dist_count = 0 then "-"
        else
          Printf.sprintf "%.1f"
            (float_of_int r.r_dist_sum /. float_of_int r.r_dist_count)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  %s @ %s: hits=%d misses=%d evictions=%d mean_reuse=%s\n" name loc
           r.r_hits r.r_misses r.r_evictions mean))
    (rows t);
  Buffer.contents buf

let row_to_json ((name, loc), (r : row)) =
  Mlir.Json.Obj
    [
      ("op", Mlir.Json.String name);
      ("loc", Mlir.Json.String loc);
      ("hits", Mlir.Json.Int r.r_hits);
      ("misses", Mlir.Json.Int r.r_misses);
      ("evictions", Mlir.Json.Int r.r_evictions);
      ("hit_rate", Mlir.Json.Float (hit_rate ~hits:r.r_hits ~misses:r.r_misses));
      ("reuse_dist_sum", Mlir.Json.Int r.r_dist_sum);
      ("reuse_count", Mlir.Json.Int r.r_dist_count);
    ]

let to_json (t : table) =
  let h, m, e = totals t in
  let pct p =
    match percentile t p with
    | Some d -> Mlir.Json.Int d
    | None -> Mlir.Json.Null
  in
  Mlir.Json.Obj
    [
      ("hits", Mlir.Json.Int h);
      ("misses", Mlir.Json.Int m);
      ("evictions", Mlir.Json.Int e);
      ("hit_rate", Mlir.Json.Float (hit_rate ~hits:h ~misses:m));
      ( "reuse_distance",
        Mlir.Json.Obj
          [
            ( "warm",
              Mlir.Json.Int (Hashtbl.fold (fun _ c acc -> acc + c) t.hist 0) );
            ("cold", Mlir.Json.Int t.t_cold);
            ("p50", pct 50.0);
            ("p90", pct 90.0);
            ("p99", pct 99.0);
          ] );
      ("rows", Mlir.Json.List (List.map row_to_json (rows t)));
    ]
