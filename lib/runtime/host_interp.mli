(** Host-program execution.

    Interprets the raised host module (the sycl.host ops plus the
    scalar/control ops the frontend emits around them), drives the
    scheduler, performs host<->device transfers, and launches kernels on
    the device simulator — accounting for every cost the evaluation
    measures (scheduler bookkeeping, launch overhead per live argument,
    transfers, device cycles, one-time JIT charges). *)

open Mlir
module Interp = Sycl_sim.Interp
module Memory = Sycl_sim.Memory
module Cost = Sycl_sim.Cost
module Profile = Sycl_sim.Profile

exception Host_error of string

(** Host values. Host data arrays are passed as
    [Scalar (Interp.Mem view)]. *)
type hv =
  | Scalar of Interp.rv
  | Queue of Objects.queue
  | Handler of Objects.handler
  | Buffer of Objects.buffer
  | Accessor of Objects.accessor
  | Usm of Memory.allocation

(** Runtime information handed to the JIT-specialization hook at the
    first launch of each kernel (AdaptiveCpp configuration). *)
type launch_info = {
  li_global : int list;
  li_wg : int list;
  li_noalias_pairs : (int * int) list;
  li_constant_args : int list;
}

type run_result = {
  total_cycles : int;
  device_cycles : int;
  launch_overhead_cycles : int;
  transfer_cycles : int;
  scheduler_cycles : int;
  jit_cycles : int;
  kernel_launches : int;
  dependency_edges : int;
  per_kernel : (string * Cost.launch_stats) list;
  per_kernel_attribution : (string * Sycl_sim.Attribution.table) list;
      (** per-op cycle/traffic attribution for each launch, in launch
          order parallel to [per_kernel]; always collected (a pure side
          table — it cannot perturb the simulation), rendered only when
          a profiling surface asks for it *)
  per_kernel_cache : (string * Sycl_sim.Cache.table) list;
      (** per-op cache hit/miss counters and the exact reuse-distance
          histogram for each launch, in launch order parallel to
          [per_kernel]; empty under the flat cache model *)
  events : Profile.event list;
      (** the run's charge timeline, for trace export / profiling *)
  metrics : Sycl_obs.Metrics.registry;
      (** runtime event counters and latency histograms ([runtime.*]:
          submits, DAG-wait edges, transfer bytes by direction, launch
          overhead, JIT specializations, launch-latency histogram) plus
          device execution counters ([sim.*]) *)
}

(** Execute host function [main] of the module. [launch_hook], when
    given, fires once per kernel at its first launch with the runtime
    launch information; [jit_cycles] is charged at the same time.
    [sim_domains], [check_races] and [cache_model] are passed through
    to every {!Interp.launch} (simulator backend selection, cross-group
    race checking and cache-hierarchy model); when omitted the
    simulator's process-wide defaults apply. *)
val run :
  ?params:Cost.params ->
  ?launch_hook:(Core.op -> launch_info -> unit) ->
  ?jit_cycles:int ->
  ?sim_domains:int ->
  ?check_races:bool ->
  ?cache_model:Cost.cache_model ->
  module_op:Core.op ->
  ?main:string ->
  hv list ->
  run_result
