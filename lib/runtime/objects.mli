(** SYCL runtime objects: buffers (owning memory, tracking where copies
    live), accessors, handlers and queues with dependency tracking — the
    buffer/accessor programming model of paper Section II-A. The runtime
    is identical for all three compiler configurations, as in the paper's
    methodology. *)

module Sycl_types = Sycl_core.Sycl_types
module Memory = Sycl_sim.Memory
module Cost = Sycl_sim.Cost

type buffer = {
  b_id : int;
  b_dims : int array;
  b_is_float : bool;
  b_host : Memory.allocation;  (** host-side storage (owned) *)
  mutable b_device : Memory.allocation option;
  mutable b_host_dirty : bool;  (** host copy newer than device copy *)
  mutable b_device_dirty : bool;
  mutable b_last_writer : int option;  (** command id, for the DAG *)
  mutable b_last_readers : int list;
}

val buffer_elems : buffer -> int

(** Simulated element width in bytes (every memory cell models a 4-byte
    f32/i32), for reporting transfer volume. *)
val elem_bytes : int

val buffer_bytes : buffer -> int

type accessor = {
  acc_buffer : buffer;
  acc_mode : Sycl_types.access_mode;
  acc_range : int array;  (** access range (= buffer range unless ranged) *)
  acc_offset : int array;
}

type capture =
  | Cap_accessor of accessor
  | Cap_scalar of Sycl_sim.Interp.rv
  | Cap_usm of Memory.allocation
  | Cap_host_mem of Memory.view  (** raw host data, e.g. a constant table *)

type handler = {
  h_id : int;
  mutable h_captures : (int * capture) list;
  mutable h_global : int list;
  mutable h_local : int list option;
  mutable h_kernel : string option;
}

type command = {
  cmd_id : int;
  cmd_kernel : string;
  cmd_deps : int list;
}

type queue = {
  q_id : int;
  mutable q_commands : command list;  (** newest first *)
  mutable q_next_cmd : int;
}

val make_queue : unit -> queue
val make_buffer : dims:int array -> is_float:bool -> Memory.allocation -> buffer
val make_handler : unit -> handler

(** Commands a command group must wait on: RAW on the last writer, WAR on
    outstanding readers, WAW on the last writer. *)
val dependencies_of : (int * capture) list -> int list

(** Update buffer dependency state after a command executed. *)
val note_command : (int * capture) list -> int -> unit

(** Ensure an up-to-date device copy exists; returns it with the transfer
    cost in cycles (0 when already resident and clean). *)
val ensure_on_device : Cost.params -> buffer -> Memory.allocation * int

(** Write the device copy back to the host if dirty; returns the cost. *)
val sync_to_host : Cost.params -> buffer -> int
