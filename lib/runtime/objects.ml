(* SYCL runtime objects: buffers (owning memory, tracking where copies
   live), accessors, handlers and queues with dependency tracking — the
   buffer/accessor programming model of Section II-A. The runtime is the
   same for all three compiler configurations, as in the paper's
   methodology ("the runtime component remains completely unchanged"). *)

module Sycl_types = Sycl_core.Sycl_types
module Memory = Sycl_sim.Memory
module Cost = Sycl_sim.Cost

type buffer = {
  b_id : int;
  b_dims : int array;
  b_is_float : bool;
  b_host : Memory.allocation;  (** host-side storage (owned) *)
  mutable b_device : Memory.allocation option;
  mutable b_host_dirty : bool;  (** host copy newer than device copy *)
  mutable b_device_dirty : bool;
  (* Dependency tracking: last command writing / reading this buffer. *)
  mutable b_last_writer : int option;
  mutable b_last_readers : int list;
}

let buffer_elems (b : buffer) = Array.fold_left ( * ) 1 b.b_dims

(* Simulated element width: every memory cell models a 4-byte f32/i32
   (the cost model's [transfer_line_elems] assumes the same), so
   telemetry can report transfer volume in bytes. *)
let elem_bytes = 4

let buffer_bytes (b : buffer) = buffer_elems b * elem_bytes

type accessor = {
  acc_buffer : buffer;
  acc_mode : Sycl_types.access_mode;
  acc_range : int array;  (** access range (= buffer range unless ranged) *)
  acc_offset : int array;
}

type capture =
  | Cap_accessor of accessor
  | Cap_scalar of Sycl_sim.Interp.rv
  | Cap_usm of Memory.allocation
  | Cap_host_mem of Memory.view  (** raw host data, e.g. a constant table *)

type handler = {
  h_id : int;
  mutable h_captures : (int * capture) list;
  mutable h_global : int list;
  mutable h_local : int list option;
  mutable h_kernel : string option;
}

type command = {
  cmd_id : int;
  cmd_kernel : string;
  cmd_deps : int list;  (** command ids this one waited on *)
}

type queue = {
  q_id : int;
  mutable q_commands : command list;  (** in submission order, newest first *)
  mutable q_next_cmd : int;
}

let next_id =
  let c = ref 0 in
  fun () -> incr c; !c

let make_queue () = { q_id = next_id (); q_commands = []; q_next_cmd = 1 }

let make_buffer ~(dims : int array) ~(is_float : bool)
    (host : Memory.allocation) =
  {
    b_id = next_id ();
    b_dims = dims;
    b_is_float = is_float;
    b_host = host;
    b_device = None;
    b_host_dirty = true;
    b_device_dirty = false;
    b_last_writer = None;
    b_last_readers = [];
  }

let make_handler () =
  {
    h_id = next_id ();
    h_captures = [];
    h_global = [];
    h_local = None;
    h_kernel = None;
  }

(** Dependencies a command-group with [captures] must wait on, per the
    buffer/accessor model: RAW on the last writer, WAR on outstanding
    readers, WAW on the last writer. *)
let dependencies_of (captures : (int * capture) list) : int list =
  List.concat_map
    (fun (_, c) ->
      match c with
      | Cap_accessor a -> (
        let b = a.acc_buffer in
        match a.acc_mode with
        | Sycl_types.Read -> Option.to_list b.b_last_writer
        | Sycl_types.Write | Sycl_types.Read_write ->
          Option.to_list b.b_last_writer @ b.b_last_readers)
      | _ -> [])
    captures
  |> List.sort_uniq compare

(** Update buffer dependency state after command [cmd_id] executed. *)
let note_command (captures : (int * capture) list) (cmd_id : int) =
  List.iter
    (fun (_, c) ->
      match c with
      | Cap_accessor a -> (
        let b = a.acc_buffer in
        match a.acc_mode with
        | Sycl_types.Read -> b.b_last_readers <- cmd_id :: b.b_last_readers
        | Sycl_types.Write | Sycl_types.Read_write ->
          b.b_last_writer <- Some cmd_id;
          b.b_last_readers <- [])
      | _ -> ())
    captures

(** Ensure the buffer has an up-to-date device allocation; returns the
    transfer cost in cycles (0 when already resident and clean). *)
let ensure_on_device (p : Cost.params) (b : buffer) : Memory.allocation * int =
  let elems = buffer_elems b in
  let dev =
    match b.b_device with
    | Some d -> d
    | None ->
      let d = Memory.alloc ~label:"device-buffer" ~space:Mlir.Types.Global ~size:elems () in
      b.b_device <- Some d;
      d
  in
  if b.b_host_dirty then begin
    Memory.blit ~src:(Memory.full_view b.b_host) ~dst:(Memory.full_view dev) elems;
    b.b_host_dirty <- false;
    (dev, Cost.transfer_cycles p ~elems)
  end
  else (dev, 0)

(** Write the device copy back to the host; returns the transfer cost. *)
let sync_to_host (p : Cost.params) (b : buffer) : int =
  match b.b_device with
  | Some d when b.b_device_dirty ->
    let elems = buffer_elems b in
    Memory.blit ~src:(Memory.full_view d) ~dst:(Memory.full_view b.b_host) elems;
    b.b_device_dirty <- false;
    Cost.transfer_cycles p ~elems
  | _ -> 0
