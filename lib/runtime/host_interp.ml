(* Host-program execution: interprets the raised host module (the
   sycl.host ops plus the scalar/control ops the frontend emits around
   them), drives the scheduler, performs host<->device transfers, and
   launches kernels on the device simulator.

   Cost accounting (everything the evaluation measures):
   - per command group: scheduler bookkeeping;
   - per launch: base overhead + per-argument overhead for the arguments
     the runtime actually passes (dead arguments, as marked by SYCL Dead
     Argument Elimination, are skipped — Section VII-B);
   - transfers host<->device per cache line;
   - device cycles from the simulator;
   - for AdaptiveCpp-style JIT configurations, a one-time JIT charge at
     first launch of each kernel (via [launch_hook]). *)

open Mlir
module Interp = Sycl_sim.Interp
module Memory = Sycl_sim.Memory
module Cost = Sycl_sim.Cost
module Profile = Sycl_sim.Profile
module Sycl_types = Sycl_core.Sycl_types
module Sycl_host_ops = Sycl_core.Sycl_host_ops
module Dead_arg_elim = Sycl_core.Dead_arg_elim
module Metrics = Sycl_obs.Metrics

exception Host_error of string

type hv =
  | Scalar of Interp.rv
  | Queue of Objects.queue
  | Handler of Objects.handler
  | Buffer of Objects.buffer
  | Accessor of Objects.accessor
  | Usm of Memory.allocation

let as_scalar = function Scalar rv -> rv | _ -> raise (Host_error "expected scalar")
let as_int v = Interp.as_int (as_scalar v)
let as_queue = function Queue q -> q | _ -> raise (Host_error "expected queue")
let as_handler = function Handler h -> h | _ -> raise (Host_error "expected handler")
let as_buffer = function Buffer b -> b | _ -> raise (Host_error "expected buffer")

(** Runtime information handed to the JIT specialization hook at first
    launch of a kernel (AdaptiveCpp configuration). *)
type launch_info = {
  li_global : int list;
  li_wg : int list;
  li_noalias_pairs : (int * int) list;
  li_constant_args : int list;
}

type run_result = {
  total_cycles : int;
  device_cycles : int;
  launch_overhead_cycles : int;
  transfer_cycles : int;
  scheduler_cycles : int;
  jit_cycles : int;
  kernel_launches : int;
  dependency_edges : int;
  per_kernel : (string * Cost.launch_stats) list;
  per_kernel_attribution : (string * Sycl_sim.Attribution.table) list;
      (** source-attributed charge tables, one per launch, in launch
          order (paired 1:1 with [per_kernel]) *)
  per_kernel_cache : (string * Sycl_sim.Cache.table) list;
      (** per-op cache counters + reuse-distance histogram per launch,
          in launch order; empty under the flat model *)
  events : Profile.event list;
      (** the run's charge timeline, for trace export / profiling *)
  metrics : Metrics.registry;
      (** runtime event counters and latency histograms ([runtime.*]),
          plus device execution counters ([sim.*]) *)
}

type state = {
  params : Cost.params;
  module_op : Core.op;
  env : (int, hv) Hashtbl.t;
  globals : (string, Memory.allocation) Hashtbl.t;
  (* Device copies of raw host data captures, keyed by host alloc id. *)
  device_copies : (int, Memory.allocation) Hashtbl.t;
  launch_hook : (Core.op -> launch_info -> unit) option;
  jit_cycles_per_kernel : int;
  jitted : (string, unit) Hashtbl.t;
  sim_domains : int option;  (* simulator backend knobs; None = defaults *)
  check_races : bool option;
  cache_model : Cost.cache_model option;
  recorder : Profile.recorder;
  metrics : Metrics.registry;
  mutable r_device : int;
  mutable r_launch : int;
  mutable r_transfer : int;
  mutable r_sched : int;
  mutable r_jit : int;
  mutable r_launch_count : int;
  mutable r_deps : int;
  mutable r_per_kernel : (string * Cost.launch_stats) list;
  mutable r_attribution : (string * Sycl_sim.Attribution.table) list;
  mutable r_cache : (string * Sycl_sim.Cache.table) list;
}

let lookup st (v : Core.value) =
  match Hashtbl.find_opt st.env v.Core.vid with
  | Some hv -> hv
  | None -> raise (Host_error "use of unbound host value")

let bind st (v : Core.value) hv = Hashtbl.replace st.env v.Core.vid hv

(* Host-side globals (constant tables such as the Sobel filter). *)
let global_alloc st name =
  match Hashtbl.find_opt st.globals name with
  | Some a -> a
  | None -> (
    match Dialects.Llvm.lookup_global st.module_op name with
    | Some g ->
      let data =
        match Core.attr g "value" with
        | Some (Attr.Dense_float xs) -> Array.map (fun f -> Memory.F f) xs
        | Some (Attr.Dense_int xs) -> Array.map (fun i -> Memory.I i) xs
        | _ -> raise (Host_error ("global without dense value: " ^ name))
      in
      let a =
        Memory.alloc ~label:("global:" ^ name) ~space:Types.Global
          ~size:(Array.length data) ()
      in
      Array.blit data 0 a.Memory.data 0 (Array.length data);
      if Core.attr g "constant" = Some (Attr.Bool true) then
        a.Memory.constant_cached <- true;
      Hashtbl.replace st.globals name a;
      a
    | None -> raise (Host_error ("unknown global " ^ name)))

(* ------------------------------------------------------------------ *)
(* Kernel launch                                                       *)
(* ------------------------------------------------------------------ *)

let accessor_desc (b : Objects.buffer) (a : Objects.accessor)
    (dev : Memory.allocation) : Interp.acc_desc =
  {
    Interp.a_alloc = dev;
    Interp.a_range = a.Objects.acc_range;
    Interp.a_mem_range = b.Objects.b_dims;
    Interp.a_offset = a.Objects.acc_offset;
    Interp.a_is_float = b.Objects.b_is_float;
  }

let launch_kernel st (q : Objects.queue) (h : Objects.handler) =
  let kernel_name =
    match h.Objects.h_kernel with
    | Some k -> k
    | None -> raise (Host_error "parallel_for without kernel")
  in
  let kernel =
    match Core.lookup_func st.module_op kernel_name with
    | Some k -> k
    | None -> raise (Host_error ("unknown kernel " ^ kernel_name))
  in
  let global = h.Objects.h_global in
  let wg =
    match h.Objects.h_local with
    | Some l -> l
    | None -> Sycl_core.Launch_policy.default_wg_size global
  in
  (* All of this launch's charges are recorded into a private segment
     and committed onto the run timeline in one step, so the charges of
     one launch are contiguous and interleaved launches (nested runs,
     parallel callers) cannot corrupt each other's timestamps. *)
  let sg = Profile.segment () in
  (* End-to-end latency of this launch: every cycle charged between
     queue submission and device completion (observed into the
     launch-latency histogram at the end). *)
  let latency = ref 0 in
  let charge c = latency := !latency + c in
  (* Queue submit: scheduler bookkeeping + dependency edges from the
     buffer/accessor model (the DAG waits this command group incurred). *)
  let deps = Objects.dependencies_of h.Objects.h_captures in
  st.r_deps <- st.r_deps + List.length deps;
  st.r_sched <- st.r_sched + st.params.Cost.scheduler_cycles;
  charge st.params.Cost.scheduler_cycles;
  Metrics.incr st.metrics "runtime.submits";
  Metrics.incr st.metrics ~by:(List.length deps) "runtime.dag_wait_edges";
  Profile.record_seg sg ~cat:"submit" ~name:("submit:" ^ kernel_name)
    ~args:[ ("dependency_edges", List.length deps) ]
    ~dur:st.params.Cost.scheduler_cycles ();
  (* Data movement + argument binding. *)
  let max_idx =
    List.fold_left (fun acc (i, _) -> max acc i) 0 h.Objects.h_captures
  in
  let args = Array.make (max_idx + 1) Interp.Item in
  let noalias = ref [] in
  let const_args = ref [] in
  let accessor_allocs = ref [] in
  List.iter
    (fun (idx, cap) ->
      match cap with
      | Objects.Cap_accessor a ->
        let b = a.Objects.acc_buffer in
        let dev, cost = Objects.ensure_on_device st.params b in
        st.r_transfer <- st.r_transfer + cost;
        charge cost;
        if cost > 0 then begin
          Metrics.incr st.metrics "runtime.transfers_h2d";
          Metrics.incr st.metrics ~by:(Objects.buffer_bytes b)
            "runtime.transfer_bytes_h2d"
        end;
        Profile.record_seg sg ~cat:"transfer"
          ~name:("h2d:" ^ b.Objects.b_host.Memory.label)
          ~args:[ ("bytes", Objects.buffer_bytes b) ]
          ~dur:cost ();
        (match a.Objects.acc_mode with
        | Sycl_types.Write | Sycl_types.Read_write -> b.Objects.b_device_dirty <- true
        | Sycl_types.Read -> ());
        args.(idx) <- Interp.Acc (accessor_desc b a dev);
        accessor_allocs := (idx, dev.Memory.aid) :: !accessor_allocs
      | Objects.Cap_scalar rv -> args.(idx) <- rv
      | Objects.Cap_usm alloc ->
        args.(idx) <- Interp.Mem (Memory.full_view alloc)
      | Objects.Cap_host_mem view ->
        (* Raw host data referenced from the kernel: copied to the device
           on first use. Whether the device may treat it as
           constant-cached is decided by compiler information (the
           sycl.constant_args attribute) or, for JIT configurations, the
           runtime's own knowledge surfaced through [li_constant_args] —
           never by default. *)
        let host = view.Memory.base in
        let dev =
          match Hashtbl.find_opt st.device_copies host.Memory.aid with
          | Some d -> d
          | None ->
            let elems = Array.length host.Memory.data in
            let d =
              Memory.alloc ~label:("dev:" ^ host.Memory.label)
                ~space:Types.Global ~size:elems ()
            in
            Memory.blit ~src:(Memory.full_view host) ~dst:(Memory.full_view d)
              elems;
            let cost = Cost.transfer_cycles st.params ~elems in
            st.r_transfer <- st.r_transfer + cost;
            charge cost;
            if cost > 0 then begin
              Metrics.incr st.metrics "runtime.transfers_h2d";
              Metrics.incr st.metrics ~by:(elems * Objects.elem_bytes)
                "runtime.transfer_bytes_h2d"
            end;
            Profile.record_seg sg ~cat:"transfer"
              ~name:("h2d:" ^ host.Memory.label)
              ~args:[ ("bytes", elems * Objects.elem_bytes) ]
              ~dur:cost ();
            Hashtbl.replace st.device_copies host.Memory.aid d;
            d
        in
        if host.Memory.constant_cached then const_args := idx :: !const_args;
        args.(idx) <- Interp.Mem (Memory.full_view ~dims:view.Memory.dims dev))
    h.Objects.h_captures;
  (* AdaptiveCpp-style JIT specialization at first launch. *)
  (match st.launch_hook with
  | Some hook when not (Hashtbl.mem st.jitted kernel_name) ->
    Hashtbl.replace st.jitted kernel_name ();
    st.r_jit <- st.r_jit + st.jit_cycles_per_kernel;
    charge st.jit_cycles_per_kernel;
    Metrics.incr st.metrics "runtime.jit_specializations";
    Profile.record_seg sg ~cat:"jit" ~name:("jit:" ^ kernel_name)
      ~dur:st.jit_cycles_per_kernel ();
    let pairs = ref [] in
    List.iteri
      (fun i (idx_a, aid_a) ->
        List.iteri
          (fun j (idx_b, aid_b) ->
            if j > i && aid_a <> aid_b then pairs := (idx_a, idx_b) :: !pairs)
          !accessor_allocs)
      !accessor_allocs;
    hook kernel
      {
        li_global = global;
        li_wg = wg;
        li_noalias_pairs = !pairs;
        li_constant_args = !const_args;
      }
  | _ -> ());
  (* Constant-cached arguments marked by compile-time host analysis. *)
  (match Core.attr kernel "sycl.constant_args" with
  | Some (Attr.Array xs) ->
    List.iter
      (fun a ->
        match Attr.as_int a with
        | Some idx when idx < Array.length args -> (
          match args.(idx) with
          | Interp.Mem v -> v.Memory.base.Memory.constant_cached <- true
          | Interp.Acc d -> d.Interp.a_alloc.Memory.constant_cached <- true
          | _ -> ())
        | _ -> ())
      xs
  | _ -> ());
  (* Lowered-ABI kernels (Lower_sycl) take DPC++'s flattened accessor
     arguments: expand each accessor capture into data + range +
     mem_range + offset scalars. *)
  let args, live_args =
    match Sycl_core.Lower_sycl.expansion_of_kernel kernel with
    | None ->
      (* Launch overhead covers the arguments actually passed: dead
         arguments (SYCL Dead Argument Elimination) are skipped. *)
      let dead = Dead_arg_elim.dead_args kernel in
      (args, max 0 (List.length h.Objects.h_captures - List.length dead))
    | Some expansion ->
      let expanded = ref [ Interp.Item ] in
      List.iteri
        (fun i d ->
          let idx = i + 1 in
          let plain = if idx < Array.length args then args.(idx) else Interp.Unit in
          match (plain, d) with
          | Interp.Acc desc, d when d > 0 ->
            let data =
              Interp.Mem (Memory.full_view desc.Interp.a_alloc)
            in
            let scalars arr = Array.to_list (Array.map (fun x -> Interp.I x) arr) in
            expanded :=
              !expanded
              @ (data :: scalars desc.Interp.a_range)
              @ scalars desc.Interp.a_mem_range
              @ scalars desc.Interp.a_offset
          | v, _ -> expanded := !expanded @ [ v ])
        expansion;
      let arr = Array.of_list !expanded in
      (arr, Array.length arr - 1)
  in
  let overhead = Cost.launch_overhead st.params ~live_args in
  st.r_launch <- st.r_launch + overhead;
  st.r_launch_count <- st.r_launch_count + 1;
  charge overhead;
  Metrics.incr st.metrics "runtime.kernel_launches";
  Metrics.incr st.metrics ~by:overhead "runtime.launch_overhead_cycles";
  Profile.record_seg sg ~cat:"launch" ~name:kernel_name
    ~args:[ ("live_args", live_args) ] ~dur:overhead ();
  (* Execute on the device simulator. Attribution is always collected:
     it is a pure side table (the conservation oracle checks it equals
     the aggregate stats exactly), so collection cannot perturb the
     run — rendering it is what the --annotate surfaces gate. *)
  let attribution = Sycl_sim.Attribution.create () in
  (* The cache table follows the same rule, but only exists under a
     non-flat --cache-model: the flat model simulates no cache, so there
     is nothing to collect and [per_kernel_cache] stays empty. *)
  let cache_model =
    match st.cache_model with
    | Some m -> m
    | None -> Interp.default_cache_model ()
  in
  let cache =
    match cache_model with
    | Cost.Flat -> None
    | Cost.Direct_mapped | Cost.Set_associative ->
      Some (Sycl_sim.Cache.create_table ())
  in
  let stats =
    Interp.launch ~params:st.params ?domains:st.sim_domains
      ?check_races:st.check_races ~metrics:st.metrics ~attribution
      ~cache_model ?cache ~module_op:st.module_op ~kernel ~args ~global
      ~wg_size:wg ()
  in
  let dev_cycles = Cost.device_cycles st.params stats in
  st.r_device <- st.r_device + dev_cycles;
  charge dev_cycles;
  Profile.record_seg sg ~cat:"kernel" ~name:kernel_name
    ~args:(Profile.breakdown st.params stats) ~dur:dev_cycles ();
  Profile.commit st.recorder sg;
  Metrics.observe st.metrics ~bounds:Metrics.latency_bounds
    "runtime.launch_latency_cycles" !latency;
  st.r_per_kernel <- (kernel_name, stats) :: st.r_per_kernel;
  st.r_attribution <- (kernel_name, attribution) :: st.r_attribution;
  (match cache with
  | Some t -> st.r_cache <- (kernel_name, t) :: st.r_cache
  | None -> ());
  let cmd_id = q.Objects.q_next_cmd in
  q.Objects.q_next_cmd <- cmd_id + 1;
  q.Objects.q_commands <-
    { Objects.cmd_id; Objects.cmd_kernel = kernel_name; Objects.cmd_deps = deps }
    :: q.Objects.q_commands;
  Objects.note_command h.Objects.h_captures cmd_id

(* ------------------------------------------------------------------ *)
(* Host op execution                                                   *)
(* ------------------------------------------------------------------ *)

let rec exec_block st (b : Core.block) : hv list =
  let rec go = function
    | [] -> []
    | op :: rest -> (
      match exec_op st op with
      | `Next -> go rest
      | `Yield vs -> vs)
  in
  go b.Core.body

and exec_op st (op : Core.op) : [ `Next | `Yield of hv list ] =
  let operand i = lookup st (Core.operand op i) in
  let bind_result i hv = bind st (Core.result op i) hv in
  match op.Core.name with
  | "arith.constant" -> (
    match Core.attr op "value" with
    | Some (Attr.Int i) -> bind_result 0 (Scalar (Interp.I i)); `Next
    | Some (Attr.Float f) -> bind_result 0 (Scalar (Interp.F f)); `Next
    | Some (Attr.Bool b) -> bind_result 0 (Scalar (Interp.I (Bool.to_int b))); `Next
    | _ -> raise (Host_error "host constant without numeric value"))
  | "arith.addi" -> bind_result 0 (Scalar (Interp.I (as_int (operand 0) + as_int (operand 1)))); `Next
  | "arith.subi" -> bind_result 0 (Scalar (Interp.I (as_int (operand 0) - as_int (operand 1)))); `Next
  | "arith.muli" -> bind_result 0 (Scalar (Interp.I (as_int (operand 0) * as_int (operand 1)))); `Next
  | "arith.divsi" -> bind_result 0 (Scalar (Interp.I (as_int (operand 0) / as_int (operand 1)))); `Next
  | "arith.cmpi" ->
    let p = Option.get (Dialects.Arith.icmp_predicate op) in
    bind_result 0
      (Scalar (Interp.I (Bool.to_int (Dialects.Arith.eval_icmp p (as_int (operand 0)) (as_int (operand 1))))));
    `Next
  | "arith.index_cast" -> bind_result 0 (operand 0); `Next
  | "scf.for" ->
    let lb = as_int (operand 0) and ub = as_int (operand 1) and step = as_int (operand 2) in
    let body = Dialects.Scf.for_body op in
    let iv = Core.block_arg body 0 in
    let rec iterate i =
      if i < ub then begin
        bind st iv (Scalar (Interp.I i));
        ignore (exec_block st body);
        iterate (i + step)
      end
    in
    iterate lb;
    `Next
  | "scf.if" ->
    let c = as_int (operand 0) <> 0 in
    if c then ignore (exec_block st (Core.entry_block op.Core.regions.(0)))
    else if Core.num_regions op > 1 then
      ignore (exec_block st (Core.entry_block op.Core.regions.(1)));
    `Next
  | "scf.yield" -> `Yield []
  | "llvm.addressof" -> (
    match Core.attr_symbol op "global_name" with
    | Some name ->
      let a = global_alloc st name in
      bind_result 0 (Scalar (Interp.Mem (Memory.full_view a)));
      `Next
    | None -> raise (Host_error "addressof without global"))
  | "sycl.host.queue_ctor" ->
    bind_result 0 (Queue (Objects.make_queue ()));
    `Next
  | "sycl.host.buffer_ctor" -> (
    let dims =
      List.tl (Core.operands op)
      |> List.map (fun v -> as_int (lookup st v))
      |> Array.of_list
    in
    match operand 0 with
    | Scalar (Interp.Mem host_view) ->
      let is_float =
        match (Core.result op 0).Core.vty with
        | Sycl_types.Buffer { buf_element; _ } -> Types.is_float buf_element
        | _ -> true
      in
      bind_result 0
        (Buffer (Objects.make_buffer ~dims ~is_float host_view.Memory.base));
      `Next
    | _ -> raise (Host_error "buffer_ctor over non-memory host data"))
  | "sycl.host.submit" ->
    bind_result 0 (Handler (Objects.make_handler ()));
    `Next
  | "sycl.host.accessor_ctor" ->
    let b = as_buffer (operand 0) in
    let mode =
      Option.value ~default:Sycl_types.Read_write
        (Sycl_core.Sycl_host_ops.accessor_ctor_mode op)
    in
    let n = Array.length b.Objects.b_dims in
    let ranged = Core.attr op "ranged" = Some (Attr.Bool true) in
    let range, offset =
      if ranged then begin
        let rest = List.filteri (fun i _ -> i >= 2) (Core.operands op) in
        let vals = List.map (fun v -> as_int (lookup st v)) rest in
        ( Array.of_list (List.filteri (fun i _ -> i < n) vals),
          Array.of_list (List.filteri (fun i _ -> i >= n) vals) )
      end
      else (Array.copy b.Objects.b_dims, Array.make n 0)
    in
    bind_result 0
      (Accessor { Objects.acc_buffer = b; acc_mode = mode; acc_range = range; acc_offset = offset });
    `Next
  | "sycl.host.set_captured" -> (
    let h = as_handler (operand 0) in
    let idx = Sycl_host_ops.set_captured_index op in
    let cap =
      match operand 1 with
      | Accessor a -> Objects.Cap_accessor a
      | Scalar (Interp.Mem v) -> Objects.Cap_host_mem v
      | Scalar rv -> Objects.Cap_scalar rv
      | Usm a -> Objects.Cap_usm a
      | Buffer _ | Queue _ | Handler _ ->
        raise (Host_error "cannot capture this host object")
    in
    h.Objects.h_captures <- (idx, cap) :: h.Objects.h_captures;
    `Next)
  | "sycl.host.set_nd_range" ->
    let h = as_handler (operand 0) in
    h.Objects.h_global <-
      List.map (fun v -> as_int (lookup st v)) (Sycl_host_ops.nd_range_global op);
    h.Objects.h_local <-
      Option.map
        (List.map (fun v -> as_int (lookup st v)))
        (Sycl_host_ops.nd_range_local op);
    `Next
  | "sycl.host.parallel_for" -> (
    let h = as_handler (operand 0) in
    h.Objects.h_kernel <- Sycl_host_ops.parallel_for_kernel op;
    (* In DPC++/SYCL-MLIR the command group executes when dependencies
       allow; our in-order host interp executes it here. *)
    match
      List.find_map
        (fun (_, c) -> match c with Objects.Cap_accessor _ -> Some () | _ -> None)
        h.Objects.h_captures
    with
    | _ ->
      let q =
        (* Queue recovered from the submit that produced the handler. *)
        match Core.defining_op (Core.operand op 0) with
        | Some sub when Sycl_host_ops.is_submit sub -> (
          match lookup st (Core.operand sub 0) with
          | Queue q -> q
          | _ -> raise (Host_error "submit on non-queue"))
        | _ -> raise (Host_error "handler without submit")
      in
      launch_kernel st q h;
      `Next)
  | "sycl.host.wait" -> `Next
  | "sycl.host.buffer_dtor" ->
    let b = as_buffer (operand 0) in
    let cost = Objects.sync_to_host st.params b in
    st.r_transfer <- st.r_transfer + cost;
    if cost > 0 then begin
      Metrics.incr st.metrics "runtime.transfers_d2h";
      Metrics.incr st.metrics ~by:(Objects.buffer_bytes b)
        "runtime.transfer_bytes_d2h"
    end;
    Profile.record st.recorder ~cat:"transfer"
      ~name:("d2h:" ^ b.Objects.b_host.Memory.label)
      ~args:[ ("bytes", Objects.buffer_bytes b) ]
      ~dur:cost ();
    `Next
  | "sycl.host.malloc_device" ->
    let n = as_int (operand 1) in
    let a = Memory.alloc ~label:"usm-device" ~space:Types.Global ~size:n () in
    bind_result 0 (Usm a);
    `Next
  | "sycl.host.memcpy" -> (
    let n = as_int (operand 3) in
    let view_of = function
      | Usm a -> Memory.full_view a
      | Scalar (Interp.Mem v) -> v
      | _ -> raise (Host_error "memcpy over non-memory value")
    in
    let dst = view_of (operand 1) and src = view_of (operand 2) in
    Memory.blit ~src ~dst n;
    let cost = Cost.transfer_cycles st.params ~elems:n in
    st.r_transfer <- st.r_transfer + cost;
    if cost > 0 then begin
      Metrics.incr st.metrics "runtime.memcpys";
      Metrics.incr st.metrics ~by:(n * Objects.elem_bytes)
        "runtime.memcpy_bytes"
    end;
    Profile.record st.recorder ~cat:"transfer" ~name:"memcpy"
      ~args:[ ("bytes", n * Objects.elem_bytes) ]
      ~dur:cost ();
    `Next)
  | "sycl.host.free" -> `Next
  | "func.return" -> `Yield []
  | name -> raise (Host_error ("host interpreter: unsupported op " ^ name))

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Execute host function [main] of [module_op]. [main_args.(i)] binds the
    i-th host argument, typically host data arrays wrapped as
    [Scalar (Interp.Mem view)]. *)
let run ?(params = Cost.default) ?launch_hook ?(jit_cycles = 0) ?sim_domains
    ?check_races ?cache_model ~(module_op : Core.op) ?(main = "main")
    (main_args : hv list) : run_result =
  let f =
    match Core.lookup_func module_op main with
    | Some f -> f
    | None -> raise (Host_error ("no host function " ^ main))
  in
  let st =
    {
      params;
      module_op;
      env = Hashtbl.create 128;
      globals = Hashtbl.create 8;
      device_copies = Hashtbl.create 8;
      launch_hook;
      jit_cycles_per_kernel = jit_cycles;
      jitted = Hashtbl.create 4;
      sim_domains;
      check_races;
      cache_model;
      recorder = Profile.recorder ();
      metrics = Metrics.create ();
      r_device = 0;
      r_launch = 0;
      r_transfer = 0;
      r_sched = 0;
      r_jit = 0;
      r_launch_count = 0;
      r_deps = 0;
      r_per_kernel = [];
      r_attribution = [];
      r_cache = [];
    }
  in
  let body = Core.func_body f in
  List.iteri
    (fun i arg ->
      match List.nth_opt main_args i with
      | Some hv -> bind st arg hv
      | None -> raise (Host_error "missing host main argument"))
    (Core.block_args body);
  ignore (exec_block st body);
  {
    total_cycles = st.r_device + st.r_launch + st.r_transfer + st.r_sched + st.r_jit;
    device_cycles = st.r_device;
    launch_overhead_cycles = st.r_launch;
    transfer_cycles = st.r_transfer;
    scheduler_cycles = st.r_sched;
    jit_cycles = st.r_jit;
    kernel_launches = st.r_launch_count;
    dependency_edges = st.r_deps;
    per_kernel = List.rev st.r_per_kernel;
    per_kernel_attribution = List.rev st.r_attribution;
    per_kernel_cache = List.rev st.r_cache;
    events = Profile.events st.recorder;
    metrics = st.metrics;
  }
