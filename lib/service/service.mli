(** The compile service: long-lived, concurrent, cached compilation of
    many modules through one pass pipeline (ROADMAP item 1).

    A service owns a fixed pass pipeline plus a content-addressed result
    cache and a pool of OCaml worker domains. Requests carry module
    {e text}; each request is parsed, canonicalized (printed back in the
    canonical textual form, so whitespace and SSA-name differences
    vanish), and looked up in the cache under

      [Digest (canonical module text ^ NUL ^ pipeline key)]

    — the pipeline key being a canonical serialization of the pass
    pipeline/driver configuration (see {!pipeline_key_of_passes} and
    [Sycl_core.Driver.config_key]). On a miss the pipeline runs and the
    printed result (or its deterministic pass failure) is cached; on a
    hit the cached output and its recorded optimization remarks are
    returned without running a single pass. Identical requests in flight
    at the same time are coalesced: exactly one compiles, the rest wait
    for its result and count as hits, so hit/miss totals are
    deterministic for a given request multiset no matter how many
    workers run or how they interleave (as long as nothing is evicted).

    The cache is bounded: beyond [cache_capacity] entries the least
    recently used entry is evicted (and re-requesting it recompiles).

    Thread-safety prerequisites (the service enforces/relies on these):
    - {!create} calls [Op_registry.freeze] — all dialects must be
      registered (init functions called) before the first service is
      created;
    - op/value ids come from an atomic counter ([Core.next_id]), so
      modules built on different domains never share ids;
    - remarks are captured per request with [Remarks.isolated] on the
      compiling domain and re-delivered via [Remarks.broadcast] on the
      {e calling} domain, in canonical request order — a sink installed
      by the caller sees every remark exactly once, even though worker
      domains start with an empty sink stack.

    Telemetry lands in a [Sycl_obs.Metrics] registry (see {!metrics}):
    - [service.requests], [service.cache_hits], [service.cache_misses],
      [service.cache_evictions], [service.coalesced_waits],
      [service.errors] (counters);
    - [service.compile_cost_units] (histogram over {e cold} compiles):
      the deterministic compile cost of a request — the sum over pipeline
      passes of the module's op count when the pass starts. This is the
      latency measure BENCH reports gate on, because it is byte-identical
      across machines and domain counts, unlike wall time;
    - [service.request_wall_us] (histogram over all requests): measured
      wall-clock latency in microseconds;
    - [service.batch_wall_us] (counter), [service.modules_per_sec]
      (gauge): batch throughput. *)

open Mlir

type request = {
  rq_name : string;  (** display name; also the parser's file for locations *)
  rq_text : string;  (** module source text *)
}

type outcome =
  | Success of string  (** printed module after the pipeline *)
  | Failure of string  (** parse error or pass failure, human-readable *)

type response = {
  rs_name : string;
  rs_outcome : outcome;
  rs_cache_hit : bool;
  rs_remarks : Remarks.t list;
      (** remarks emitted while compiling this module (replayed from the
          cache on a hit), in emission order *)
  rs_wall_us : int;  (** caller-observed latency, microseconds *)
  rs_cost_units : int;  (** deterministic compile cost; 0 on a hit *)
}

type t

(** [create ~pipeline ~pipeline_key ()] builds a service.
    [cache_capacity] (default 256, minimum 1) bounds the cache;
    [workers] (default [Domain.recommended_domain_count ()]) bounds the
    domain pool used by {!run_batch}; [verify_each] (default false) runs
    the verifier after every pass of every compile. Freezes the op
    registry. *)
val create :
  ?cache_capacity:int ->
  ?workers:int ->
  ?verify_each:bool ->
  pipeline:Pass.t list ->
  pipeline_key:string ->
  unit ->
  t

(** Canonical key for a pass pipeline: the comma-joined pass names.
    Pipeline aliases that resolve to the same pass sequence share a key;
    any difference in the pass list changes it. (Configuration switches
    that change pass {e options} rather than pass names must use
    [Sycl_core.Driver.config_key] instead.) *)
val pipeline_key_of_passes : Pass.t list -> string

(** The content-addressed cache key (hex digest), exposed so tests can
    state canonicalization properties directly. *)
val cache_key : pipeline_key:string -> canonical_text:string -> string

(** The canonical text of a parsed module — what the key digests. *)
val canonical_text : Core.op -> string

(** Compile one request on the calling domain (serve mode). Remarks are
    broadcast to the caller's sinks before returning. *)
val compile_one : t -> request -> response

(** Compile a batch concurrently on the worker-domain pool. Responses
    are returned in request order, and every response's remarks are
    broadcast to the caller's sinks in that canonical order after the
    workers join. *)
val run_batch : t -> request list -> response list

val workers : t -> int
val cache_capacity : t -> int

(** Current number of cached results (ready entries only). *)
val cache_length : t -> int

(** The service's telemetry registry (shared, mutex-protected). *)
val metrics : t -> Sycl_obs.Metrics.registry
